(** The encoded policy / encoded call byte string (§3.3–§3.4).

    The installer concatenates the policy elements into a self-contained
    byte string (the {e encoded policy}) and MACs it; at run time the
    kernel rebuilds the same byte string from the call's actual behavior
    (the {e encoded call}) and compares MACs. The two are equal exactly when the
    call complies with its policy, so one shared encoder is used by both
    sides — any asymmetry would be a soundness bug.

    Layout (all integers little-endian):
    - u32 syscall number, u32 call site, u32 policy descriptor, u64 block id
    - per numeric-constrained argument (descriptor bits 0–5, ascending):
      u8 index, u64 value
    - per string argument (descriptor bits 8–13, ascending):
      u8 index, u32 string address, u32 length, 16-byte string MAC
    - if the extension bit is set: u32 address, u32 length, 16-byte MAC of
      the extension block
    - if the control-flow bit is set: u32 predecessor-set address,
      u32 length, 16-byte MAC, u32 policy-state (lastBlock) address *)

type as_ref = {
  as_addr : int;   (** address of the string contents (header precedes it) *)
  as_len : int;
  as_mac : string; (** 16 bytes *)
}

type t = {
  e_number : int;
  e_site : int;
  e_descriptor : Descriptor.t;
  e_block : int;
  e_const_args : (int * int) list;    (** must match descriptor bits 0–5 *)
  e_string_args : (int * as_ref) list;(** must match descriptor bits 8–13 *)
  e_ext : as_ref option;
  e_control : (as_ref * int) option;  (** predecessor set, lastBlock addr *)
}

val encode : t -> string
(** @raise Invalid_argument if the argument lists disagree with the
    descriptor bits or a MAC is not 16 bytes. *)

val static_prefix_len : int
(** 16 — the first CMAC block of the encoded string. It contains the
    fields that are fixed for a call site across a process's lifetime:
    number, site, descriptor and the low half of the block id (the high
    half opens the suffix and is likewise a pure function of [e_block]).
    [Asc_core.Precomp] snapshots the CMAC chaining state after this block
    once per site and resumes it on later traps. *)

(** The dynamic fields of an encoded call at a fixed site — the values the
    kernel re-reads from registers / guest memory on every trap. [d_off] is
    the byte offset within {!encode}'s output, past the u8 argument-index
    byte for const/string fields (those index bytes, like every other
    byte outside the dynamic payloads, are pure functions of the
    descriptor). Payload widths: 8 bytes for a constant argument, 24 for a
    string/extension reference (u32 addr, u32 len, 16-byte MAC), 24+4 for
    the control-flow reference plus lastBlock pointer. *)
type dyn_field =
  | D_const of { d_off : int; d_arg : int }
  | D_string of { d_off : int; d_arg : int }
  | D_ext of { d_off : int }
  | D_control of { d_off : int }

val dyn_fields : Descriptor.t -> dyn_field list
(** The dynamic-field map determined by a descriptor, in layout order —
    mirrors {!encode} exactly (asserted by the precomp test suite). *)

val encoded_length : Descriptor.t -> int
(** Length of {!encode}'s output for any call with this descriptor (the
    layout is fully determined by the descriptor bits). *)

val set_u32 : bytes -> pos:int -> int -> unit
(** Write a little-endian u32 in place — {!encode}'s integer encoding, for
    patching a pre-serialized suffix template at a {!dyn_field} offset. *)

val set_u64 : bytes -> pos:int -> int -> unit

val set_as_ref : bytes -> pos:int -> as_ref -> unit
(** Write an as_ref (u32 addr, u32 len, 16-byte MAC) in place.
    @raise Invalid_argument if the MAC is not 16 bytes. *)

val predset_contents : int list -> string
(** Serialization of a predecessor set as AS contents: sorted unique u64
    little-endian block ids. *)

val predset_mem : string -> int -> bool
(** Membership test on serialized predecessor-set contents. *)

val state_bytes : counter:int -> last_block:int -> string
(** The 16 bytes MAC'd for the policy state: u64 counter, u64 lastBlock
    (the counter is the kernel-side nonce of the online memory checker). *)
