open Svm
open Oskernel
module Cmac = Asc_crypto.Cmac

type options = {
  control_flow : bool;
  use_extensions : bool;
  program_id : int;
}

let default_options = { control_flow = true; use_extensions = false; program_id = 1 }
let asc_section = ".asc"
let start_block opts = opts.program_id lsl 20

(* ----- deterministic phase tracing ----- *)

type tracer = {
  tr_events : Asc_obs.Trace.t;
  tr_clock : Asc_obs.Clock.t;
      (* step clock advanced by units of work done (blocks disassembled,
         sites analyzed, bytes emitted) rather than wall time, so phase
         durations are reproducible run to run *)
}

let new_tracer () =
  let tr_events = Asc_obs.Trace.create () in
  Asc_obs.Trace.name_process tr_events "asc-installer";
  Asc_obs.Trace.name_track tr_events ~track:0 "install phases";
  { tr_events; tr_clock = Asc_obs.Clock.create () }

let phase ?tracer name ~work f =
  match tracer with
  | None -> f ()
  | Some t ->
    Asc_obs.Trace.span t.tr_events ~cat:"installer" ~clock:t.tr_clock name (fun () ->
        let v = f () in
        Asc_obs.Clock.advance t.tr_clock (max 1 (work v));
        v)

let gauge_sites = Asc_obs.Metrics.gauge Asc_obs.Metrics.default "installer.sites"
let gauge_asc_bytes = Asc_obs.Metrics.gauge Asc_obs.Metrics.default "installer.asc_bytes"
let gauge_distinct = Asc_obs.Metrics.gauge Asc_obs.Metrics.default "installer.distinct_calls"

(* ----- reading string constants out of the source image ----- *)

let string_at (img : Obj_file.t) addr =
  match Obj_file.section_containing img addr with
  | Some s when s.sec_kind = Obj_file.Rodata || s.sec_kind = Obj_file.Data ->
    let off = addr - s.sec_addr in
    let limit = min s.sec_size (off + 4096) in
    let rec find i = if i >= limit then None else if s.sec_payload.[i] = '\000' then Some i else find (i + 1) in
    (match find off with
     | Some e -> Some (String.sub s.sec_payload off (e - off))
     | None -> None)
  | Some _ | None -> None

(* ----- analysis ----- *)

type site_info = {
  si_bid : int;
  si_number : int;
  si_sem : Syscall.sem option;
  si_args : Policy.arg_policy array;
  si_analysis : Policy.arg_analysis array;
  si_params : Syscall_sig.param array;
  si_preds : int list option;
  si_string_defs : (int * (int * int) list) list; (* arg idx -> movi def sites *)
}

let classify_arg source (p : Syscall_sig.param) (st : Plto.Dataflow.reg_state) ~use_extensions =
  match p with
  | Syscall_sig.P_out -> (Policy.A_any, Policy.An_out, [])
  | Syscall_sig.P_int | Syscall_sig.P_fd | Syscall_sig.P_path | Syscall_sig.P_in ->
    (match st with
     | Plto.Dataflow.Vals [ { av_kind = Plto.Dataflow.KConst; av_val = v; _ } ] ->
       (Policy.A_const v, Policy.An_const, [])
     | Plto.Dataflow.Vals [ { av_kind = Plto.Dataflow.KData; av_val = a; av_defs = defs } ] ->
       (match (p, string_at source a, defs) with
        | Syscall_sig.P_path, Some content, _ :: _ -> (Policy.A_string content, Policy.An_const, defs)
        | _ -> (Policy.A_data a, Policy.An_const, []))
     | Plto.Dataflow.Vals vs ->
       let n = List.length vs in
       let all_const = List.for_all (fun v -> v.Plto.Dataflow.av_kind = Plto.Dataflow.KConst) vs in
       if use_extensions && all_const then
         (Policy.A_one_of (List.map (fun v -> v.Plto.Dataflow.av_val) vs), Policy.An_multi n, [])
       else (Policy.A_any, Policy.An_multi n, [])
     | Plto.Dataflow.Res -> (Policy.A_any, Policy.An_sys_result, [])
     | Plto.Dataflow.Any | Plto.Dataflow.Bot -> (Policy.A_any, Policy.An_unknown, []))

(* bids of the blocks whose original addresses are the given roots (e.g. a
   library's exported functions) *)
let bids_of_addrs prog addrs =
  List.filter_map
    (fun (b : Plto.Ir.block) ->
      match b.Plto.Ir.orig_addr with
      | Some a when List.mem a addrs -> Some b.Plto.Ir.bid
      | _ -> None)
    prog.Plto.Ir.blocks

let analyze ?(keep_addrs = []) ?tracer ~personality ~options (img : Obj_file.t) =
  if options.program_id < 0 || options.program_id > 2047 then
    Error
      (Printf.sprintf
         "program id %d out of range [0, 2047] (block ids must fit a 32-bit immediate)"
         options.program_id)
  else
  let first_bid = (options.program_id lsl 20) + 1 in
  match
    phase ?tracer "disasm"
      ~work:(function Ok p -> List.length p.Plto.Ir.blocks | Error _ -> 1)
      (fun () -> Plto.Disasm.disassemble ~first_bid img)
  with
  | Error e -> Error e
  | Ok prog ->
    ignore
      (phase ?tracer "inline" ~work:(fun n -> n + 1) (fun () ->
           Plto.Inline.inline_stubs prog + Plto.Inline.split_multi_sys prog));
    ignore
      (phase ?tracer "cfg"
         ~work:(fun _ -> List.length prog.Plto.Ir.blocks + 1)
         (fun () -> Plto.Opt.remove_unreachable ~roots:(bids_of_addrs prog keep_addrs) prog));
    let states =
      phase ?tracer "dataflow" ~work:(fun s -> List.length s + 1) (fun () ->
          Plto.Dataflow.sys_states prog)
    in
    let preds_tbl =
      if options.control_flow then
        phase ?tracer "syscall-graph"
          ~work:(fun _ -> List.length states + 1)
          (fun () ->
            let tbl = Hashtbl.create 32 in
            List.iter
              (fun (bid, preds) -> Hashtbl.replace tbl bid preds)
              (Plto.Syscall_graph.compute prog ~start_bid:(start_block options));
            Some tbl)
      else None
    in
    let warnings = ref prog.Plto.Ir.warnings in
    let sites =
      phase ?tracer "classify" ~work:(fun s -> List.length s + 1) @@ fun () ->
      List.filter_map
        (fun (bid, _idx, (st : Plto.Dataflow.state)) ->
          match st.(0) with
          | Plto.Dataflow.Vals [ { av_kind = Plto.Dataflow.KConst; av_val = number; _ } ] ->
            let sem = Personality.sem_of personality number in
            let params =
              match sem with
              | Some s -> Array.of_list (Syscall_sig.params s)
              | None ->
                warnings :=
                  Printf.sprintf "block %d: unknown system call number %d" bid number
                  :: !warnings;
                [||]
            in
            let classified =
              Array.mapi
                (fun i p ->
                  classify_arg img p st.(i + 1) ~use_extensions:options.use_extensions)
                params
            in
            let args = Array.map (fun (a, _, _) -> a) classified in
            let analysis = Array.map (fun (_, a, _) -> a) classified in
            let string_defs =
              Array.to_list classified
              |> List.mapi (fun i (_, _, defs) -> (i, defs))
              |> List.filter (fun (_, defs) -> defs <> [])
            in
            let preds =
              match preds_tbl with
              | None -> None
              | Some tbl -> Some (try Hashtbl.find tbl bid with Not_found -> [])
            in
            Some
              { si_bid = bid; si_number = number; si_sem = sem; si_args = args;
                si_analysis = analysis; si_params = params; si_preds = preds;
                si_string_defs = string_defs }
          | _ ->
            warnings :=
              Printf.sprintf "block %d: system call number cannot be determined statically" bid
              :: !warnings;
            None)
        states
    in
    Ok (prog, sites, List.rev !warnings)

let policy_of_sites ~program ~personality sites warnings =
  { Policy.program;
    os = Personality.os_name personality;
    sites =
      List.map
        (fun si ->
          { Policy.s_block = si.si_bid; s_number = si.si_number; s_sem = si.si_sem;
            s_args = si.si_args; s_analysis = si.si_analysis; s_params = si.si_params;
            s_preds = si.si_preds })
        sites;
    warnings }

let generate_policy ?tracer ~personality ?(options = default_options) ~program img =
  match analyze ?tracer ~personality ~options img with
  | Error e -> Error e
  | Ok (_prog, sites, warnings) -> Ok (policy_of_sites ~program ~personality sites warnings)

(* ----- .asc section layout ----- *)

type asc_builder = {
  mutable cursor : int;
  mutable items : (int * [ `As of string | `State | `Mac of int ]) list;
      (* offset, payload kind; `Mac carries a site index *)
  strings : (string, int) Hashtbl.t; (* AS contents -> offset *)
}

let new_builder () = { cursor = 0; items = []; strings = Hashtbl.create 16 }

let align8 v = (v + 7) / 8 * 8

let alloc b size kind =
  let off = align8 b.cursor in
  b.cursor <- off + size;
  b.items <- (off, kind) :: b.items;
  off

let alloc_as b contents =
  match Hashtbl.find_opt b.strings contents with
  | Some off -> off
  | None ->
    let off = alloc b (Auth_string.total_size contents) (`As contents) in
    Hashtbl.replace b.strings contents off;
    off

(* ----- serialization of §5 extension blocks ----- *)

let ext_contents entries =
  (* entries : (arg idx, [`Set of int list | `Pattern of string]) list *)
  let buf = Buffer.create 64 in
  List.iter
    (fun (i, e) ->
      Buffer.add_char buf (Char.chr i);
      match e with
      | `Set vs ->
        Buffer.add_char buf '\001';
        Buffer.add_char buf (Char.chr (List.length vs land 0xff));
        List.iter
          (fun v ->
            for k = 0 to 7 do
              Buffer.add_char buf (Char.chr ((v lsr (8 * k)) land 0xff))
            done)
          (List.sort compare vs)
      | `Pattern p ->
        Buffer.add_char buf '\002';
        Buffer.add_char buf (Char.chr (String.length p land 0xff));
        Buffer.add_string buf p)
    entries;
  Buffer.contents buf

(* ----- installation ----- *)

type installed = {
  image : Obj_file.t;
  policy : Policy.t;
  sites : int;
  asc_bytes : int;
}

type planned_site = {
  ps_info : site_info;
  ps_descriptor : Descriptor.t;
  ps_const_args : (int * [ `Num of int | `Data of int ]) list;
  ps_string_args : (int * (int * string)) list; (* arg idx -> (as offset, contents) *)
  ps_predset : (int * string) option;           (* as offset, contents *)
  ps_ext : (int * string) option;
  ps_mac_off : int;
}

(* Administrator-supplied constraints from a filled policy template
   (§5.2): (block id, argument index, constraint). Only [A_const],
   [A_one_of] and [A_pattern] may be supplied — string constraints require
   a statically re-pointable definition, which is exactly what the static
   analysis could not find when it left the hole. *)
let apply_overrides overrides sites =
  match overrides with
  | [] -> Ok sites
  | _ ->
    let bad =
      List.find_opt
        (fun (_, _, v) ->
          match (v : Policy.arg_policy) with
          | Policy.A_string _ | Policy.A_data _ -> true
          | Policy.A_const _ | Policy.A_one_of _ | Policy.A_pattern _ | Policy.A_any -> false)
        overrides
    in
    (match bad with
     | Some (b, i, _) ->
       Error
         (Printf.sprintf
            "override for block %d arg %d: string/address constraints cannot be supplied by              hand (no re-pointable definition)" b i)
     | None ->
       Ok
         (List.map
            (fun si ->
              let args = Array.copy si.si_args in
              List.iter
                (fun (b, i, v) ->
                  if b = si.si_bid && i >= 0 && i < Array.length args then args.(i) <- v)
                overrides;
              { si with si_args = args })
            sites))

let rewrite_and_emit_untraced ~key ~options ~program ~personality prog sites warnings =
    let opaque = List.exists (fun b -> b.Plto.Ir.opaque <> None) prog.Plto.Ir.blocks in
    if opaque then
      Error "binary cannot be completely disassembled; refusing to rewrite (policy generation is still possible)"
    else begin
      let tbl = Plto.Ir.block_table prog in
      let builder = new_builder () in
      (* plan each site: descriptor, AS allocations *)
      let planned =
        List.map
          (fun si ->
            let descriptor = ref Descriptor.empty in
            let const_args = ref [] in
            let string_args = ref [] in
            let ext_entries = ref [] in
            Array.iteri
              (fun i (a : Policy.arg_policy) ->
                match a with
                | Policy.A_any -> ()
                | Policy.A_const v ->
                  descriptor := Descriptor.with_const_arg !descriptor i;
                  const_args := (i, `Num v) :: !const_args
                | Policy.A_data addr ->
                  descriptor := Descriptor.with_const_arg !descriptor i;
                  const_args := (i, `Data addr) :: !const_args
                | Policy.A_string contents ->
                  descriptor := Descriptor.with_string_arg !descriptor i;
                  (* the AS carries the NUL terminator: the kernel reads a
                     C string at the pointer, so the terminator is part of
                     the authenticated bytes (an attacker clearing it would
                     splice the next item's bytes into the argument) *)
                  let az = contents ^ "\000" in
                  let off = alloc_as builder az in
                  string_args := (i, (off, az)) :: !string_args
                | Policy.A_one_of vs -> ext_entries := (i, `Set vs) :: !ext_entries
                | Policy.A_pattern p -> ext_entries := (i, `Pattern p) :: !ext_entries)
              si.si_args;
            let predset =
              match si.si_preds with
              | None -> None
              | Some preds ->
                descriptor := Descriptor.with_control_flow !descriptor;
                let contents = Encoded.predset_contents preds in
                Some (alloc_as builder contents, contents)
            in
            let ext =
              match List.rev !ext_entries with
              | [] -> None
              | entries ->
                descriptor := Descriptor.with_ext !descriptor;
                let contents = ext_contents entries in
                Some (alloc_as builder contents, contents)
            in
            let mac_off = alloc builder 16 (`Mac si.si_bid) in
            { ps_info = si; ps_descriptor = !descriptor;
              ps_const_args = List.rev !const_args; ps_string_args = List.rev !string_args;
              ps_predset = predset; ps_ext = ext; ps_mac_off = mac_off })
          sites
      in
      let lb_off = alloc builder 24 `State in
      let asc_size = align8 builder.cursor in
      (* transform IR: re-point string-constant defs into the AS copies *)
      List.iter
        (fun ps ->
          List.iter
            (fun (argi, (as_off, _)) ->
              match List.assoc_opt argi ps.ps_info.si_string_defs with
              | None -> ()
              | Some defs ->
                List.iter
                  (fun (dbid, didx) ->
                    match Hashtbl.find_opt tbl dbid with
                    | None -> ()
                    | Some b ->
                      b.Plto.Ir.body <-
                        List.mapi
                          (fun k ins ->
                            if k = didx then
                              match ins with
                              | Plto.Ir.Movi (rd, Plto.Ir.DataRef _) ->
                                Plto.Ir.Movi
                                  (rd,
                                   Plto.Ir.NewRef
                                     (asc_section, as_off + Auth_string.header_size))
                              | other -> other
                            else ins)
                          b.Plto.Ir.body)
                  defs)
            ps.ps_string_args)
        planned;
      (* insert the extra-argument loads before each Sys *)
      List.iter
        (fun ps ->
          let si = ps.ps_info in
          match Hashtbl.find_opt tbl si.si_bid with
          | None -> ()
          | Some b ->
            let setup =
              [ Plto.Ir.Movi (7, Plto.Ir.Const ps.ps_descriptor);
                Plto.Ir.Movi (8, Plto.Ir.Const si.si_bid);
                (match ps.ps_predset with
                 | Some (off, _) ->
                   Plto.Ir.Movi (9, Plto.Ir.NewRef (asc_section, off + Auth_string.header_size))
                 | None -> Plto.Ir.Movi (9, Plto.Ir.Const 0));
                Plto.Ir.Movi (10, Plto.Ir.NewRef (asc_section, lb_off));
                Plto.Ir.Movi (11, Plto.Ir.NewRef (asc_section, ps.ps_mac_off)) ]
              @
              match ps.ps_ext with
              | Some (off, _) ->
                [ Plto.Ir.Movi (14, Plto.Ir.NewRef (asc_section, off + Auth_string.header_size)) ]
              | None -> []
            in
            let rec inject = function
              | [] -> []
              | Plto.Ir.Sys :: rest -> setup @ (Plto.Ir.Sys :: rest)
              | i :: rest -> i :: inject rest
            in
            b.Plto.Ir.body <- inject b.Plto.Ir.body)
        planned;
      (* emit, filling the .asc payload once the final layout is known *)
      let fill (layout : Plto.Emit.layout) =
        let asc_base = Plto.Emit.base_of layout asc_section in
        let payload = Bytes.make asc_size '\000' in
        let put off s = Bytes.blit_string s 0 payload off (String.length s) in
        (* authenticated strings (including predecessor sets and ext blocks) *)
        Hashtbl.iter (fun contents off -> put off (Auth_string.build key contents)) builder.strings;
        (* initial policy state: lastBlock = start sentinel, counter = 0 *)
        let sentinel = start_block options in
        let state0 = Encoded.state_bytes ~counter:0 ~last_block:sentinel in
        let lb_bytes = Bytes.create 8 in
        Bytes.set_int64_le lb_bytes 0 (Int64.of_int sentinel);
        put lb_off (Bytes.to_string lb_bytes);
        put (lb_off + 8) (Cmac.mac key state0);
        (* per-site call MACs over the encoded policy *)
        List.iter
          (fun ps ->
            let si = ps.ps_info in
            let b = Hashtbl.find tbl si.si_bid in
            let sys_idx =
              let rec find k = function
                | [] -> invalid_arg "installer: sys disappeared"
                | Plto.Ir.Sys :: _ -> k
                | _ :: rest -> find (k + 1) rest
              in
              find 0 b.Plto.Ir.body
            in
            let site_addr = Plto.Emit.addr_of_instr layout ~bid:si.si_bid ~idx:sys_idx in
            let const_args =
              List.map
                (fun (i, v) ->
                  match v with
                  | `Num v -> (i, v)
                  | `Data a ->
                    (match layout.Plto.Emit.data_shift a with
                     | Some a' -> (i, a')
                     | None -> (i, a)))
                ps.ps_const_args
            in
            let as_ref_of (off, contents) =
              { Encoded.as_addr = asc_base + off + Auth_string.header_size;
                as_len = String.length contents;
                as_mac = Auth_string.mac_of key contents }
            in
            let encoded =
              Encoded.encode
                { Encoded.e_number = si.si_number;
                  e_site = site_addr;
                  e_descriptor = ps.ps_descriptor;
                  e_block = si.si_bid;
                  e_const_args = const_args;
                  e_string_args = List.map (fun (i, s) -> (i, as_ref_of s)) ps.ps_string_args;
                  e_ext = Option.map as_ref_of ps.ps_ext;
                  e_control =
                    Option.map (fun ps' -> (as_ref_of ps', asc_base + lb_off)) ps.ps_predset }
            in
            put ps.ps_mac_off (Cmac.mac key encoded))
          planned;
        [ (asc_section, Bytes.to_string payload) ]
      in
      match
        Plto.Emit.emit ~extra_sections:[ (asc_section, Obj_file.Data, asc_size) ] ~fill prog
      with
      | Error e -> Error e
      | Ok (image, _layout) ->
        Ok
          { image;
            policy = policy_of_sites ~program ~personality sites warnings;
            sites = List.length sites;
            asc_bytes = asc_size }
    end

let rewrite_and_emit ?tracer ~key ~options ~program ~personality prog sites warnings =
  let r =
    phase ?tracer "emit"
      ~work:(function Ok i -> i.asc_bytes + (8 * i.sites) + 1 | Error _ -> 1)
      (fun () -> rewrite_and_emit_untraced ~key ~options ~program ~personality prog sites warnings)
  in
  (match r with
   | Ok inst ->
     Asc_obs.Metrics.set gauge_sites inst.sites;
     Asc_obs.Metrics.set gauge_asc_bytes inst.asc_bytes;
     Asc_obs.Metrics.set gauge_distinct
       (List.length (List.sort_uniq compare (List.map (fun si -> si.si_number) sites)))
   | Error _ -> ());
  r

let install ?tracer ~key ~personality ?(options = default_options) ?(overrides = []) ~program img =
  match analyze ?tracer ~personality ~options img with
  | Error e -> Error e
  | Ok (prog, sites0, warnings) ->
    (match apply_overrides overrides sites0 with
     | Error e -> Error e
     | Ok sites ->
       rewrite_and_emit ?tracer ~key ~options ~program ~personality prog sites warnings)


(* ----- §5.2: shared ("dynamic") libraries -----

   "The dynamic libraries on a machine are installed first before the
   application programs. During this process, if a system call in a dynamic
   library function cannot satisfy the metapolicy ... the specific function
   is removed from the dynamic library and set aside for static linking
   with application programs that require the function. Once this has been
   done for all system calls in the library, the functions that remain have
   their system calls transformed into authenticated calls in the same
   manner as before."

   Libraries are prelinked to a fixed per-library base, so their call sites
   are known at install time; their policies carry no control-flow
   (predecessor-set) component, because the predecessor of a library call
   depends on which application is running — library calls neither read nor
   advance the per-process policy state, which keeps every application's
   own control-flow chain intact across library calls. *)

type installed_library = {
  lib_image : Obj_file.t;
  lib_policy : Policy.t;
  lib_exports : (string * int) list;  (* kept exports, at final addresses *)
  lib_rejected : string list;         (* functions to set aside for static linking *)
}

let reachable_from prog bid =
  let seen = Hashtbl.create 32 in
  let tbl = Plto.Ir.block_table prog in
  let rec go bid =
    if not (Hashtbl.mem seen bid) then begin
      Hashtbl.replace seen bid ();
      match Hashtbl.find_opt tbl bid with
      | None -> ()
      | Some b ->
        List.iter go (Plto.Cfg.intra_succs prog b);
        (match b.Plto.Ir.term with Plto.Ir.CallT f -> go f | _ -> ())
    end
  in
  go bid;
  seen

let install_library ~key ~personality ?(options = default_options)
    ?(metapolicy = Metapolicy.strict_exec) ~program ~exports img =
  (* libraries never carry control-flow policies *)
  let options = { options with control_flow = false } in
  let export_addrs = List.map snd exports in
  (* pass 1: which exported functions reach a site that cannot satisfy the
     metapolicy? *)
  match analyze ~keep_addrs:export_addrs ~personality ~options img with
  | Error e -> Error e
  | Ok (prog, sites, _warnings) ->
    let policy0 = policy_of_sites ~program ~personality sites [] in
    let holes = Metapolicy.check metapolicy policy0 in
    let violating_bids = List.sort_uniq compare (List.map (fun h -> h.Metapolicy.h_block) holes) in
    let rejected =
      List.filter
        (fun (_, addr) ->
          match bids_of_addrs prog [ addr ] with
          | [ ebid ] ->
            let reach = reachable_from prog ebid in
            List.exists (fun vb -> Hashtbl.mem reach vb) violating_bids
          | _ -> true (* export not found: be conservative *))
        exports
    in
    let rejected_names = List.map fst rejected in
    let kept = List.filter (fun (n, _) -> not (List.mem n rejected_names)) exports in
    if kept = [] then
      Error
        (Printf.sprintf
           "library %s: every exported function fails the metapolicy (%s); nothing to install"
           program
           (String.concat ", " rejected_names))
    else begin
      (* pass 2: reinstall keeping only the accepted functions *)
      let kept_addrs = List.map snd kept in
      match analyze ~keep_addrs:kept_addrs ~personality ~options img with
      | Error e -> Error e
      | Ok (prog, sites, warnings) ->
        (* the image entry may have been a rejected function; re-point it at
           a kept export so emission has a live entry block *)
        let prog =
          match bids_of_addrs prog [ List.hd kept_addrs ] with
          | [ ebid ] when not (Hashtbl.mem (Plto.Cfg.reachable prog) ebid) ->
            { prog with Plto.Ir.entry = ebid }
          | _ -> prog
        in
        let prog =
          if List.exists (fun (b : Plto.Ir.block) -> b.Plto.Ir.bid = prog.Plto.Ir.entry)
               prog.Plto.Ir.blocks
          then prog
          else
            (match bids_of_addrs prog [ List.hd kept_addrs ] with
             | [ ebid ] -> { prog with Plto.Ir.entry = ebid }
             | _ -> prog)
        in
        (match rewrite_and_emit ~key ~options ~program ~personality prog sites warnings with
         | Error e -> Error e
         | Ok inst ->
           let final_exports =
             List.filter_map
               (fun (name, _) ->
                 match Obj_file.find_symbol inst.image name with
                 | Some addr -> Some (name, addr)
                 | None -> None)
               kept
           in
           Ok
             { lib_image = inst.image;
               lib_policy = inst.policy;
               lib_exports = final_exports;
               lib_rejected = rejected_names })
    end
