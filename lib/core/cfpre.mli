(** Per-pid, site-indexed precompiled control-flow policy — predecessor
    bitsets plus the per-pid lbMAC chain scratch, the exec-time fast path
    in front of the checker's step 3.

    The control-flow step pays, on every trap, for re-proving the
    predecessor-set authenticated string (a MAC or vcache probe) and for
    two full 16-byte CMAC computations over the nonce-fresh policy state.
    Both have precompilable structure:

    - the predecessor set is {e content-stable}: its bytes and tag are
      fixed at install time, so the first successful slow-path
      verification at a site {!compile}s them into a bitset (bit [b] set
      iff [Encoded.predset_mem contents b]) and the steady-state
      membership check becomes one load+test;
    - the policy state is exactly one complete CMAC block, so with the
      pid's chain scratch armed at exec time each lbMAC refresh is a
      single AES invocation ({!Asc_crypto.Cmac.mac_block_into}) instead
      of a from-scratch MAC — the nonce counter still changes every call
      and the tag is still computed fresh (§3.4's freshness guarantee is
      untouched); only setup and allocation are amortized.

    {!check} accepts an entry only when the live reference {e and} the
    live guest bytes equal the compiled ones — conditions under which the
    slow path's string MAC would necessarily verify with the same bytes —
    and anything else ({!constructor-Miss}, a moved reference, a changed
    byte) falls back to the untouched slow path, so denies are
    byte-identical with the table on or off. Per-pid state is (re)built on
    [Proc_spawn]/[Proc_exec] and dropped on [Proc_exit], like {!Precomp}.

    Counters/gauges are published in the registry passed at creation:
    [cfpre.hits], [cfpre.misses], [cfpre.fallbacks], [cfpre.compiles],
    [cfpre.invalidations], [cfpre.size], [cfpre.cycles_saved]. *)

type t

(** The pid's preallocated 16-byte scratch buffers: the policy-state block
    being MAC'd, the freshly computed tag, and the tag read back from
    guest memory. Reusing them is what takes the fast path's host
    allocation toward zero. *)
type scratch = {
  ps_state : Bytes.t;
  ps_tag : Bytes.t;
  ps_read : Bytes.t;
}

type entry
(** A compiled site: the verified predecessor reference, its contents and
    the derived bitset. *)

val create : ?max_sites:int -> ?block_limit:int -> registry:Asc_obs.Metrics.registry -> unit -> t
(** [max_sites] (default 4096, must be ≥ 1) bounds the compiled entries
    per pid. [block_limit] (default 65536, must be ≥ 1) bounds the {e
    span} of block ids a bitset may represent — block ids are globally
    unique (program id in the high bits), so each bitset is offset from
    its set's smallest id and only [max - min + 1] must stay dense. A
    verified set spanning beyond it is simply never compiled and its
    site keeps taking the slow path. *)

(** Why a compiled entry declined to decide (the slow path then
    re-verifies from the live bytes and decides, including the deny). *)
type fallback_cause =
  | Ref_mismatch       (** the live (addr, len, tag) reference differs
                           from the compiled one *)
  | Contents_mismatch  (** the reference matches but the guest bytes
                           moved out from under it *)

(** What {!check} proved: [Hit] means the live predecessor set is
    byte-identical to the slow-path-verified one — charge
    [Svm.Cost_model.cfpre_hit_cost] and decide membership with
    {!member}; [Miss]/[Fallback] mean nothing was proved and nothing was
    charged — run the slow path. *)
type verdict =
  | Miss
  | Hit of { entry : entry; scratch : scratch }
  | Fallback of fallback_cause

val check :
  t -> m:Svm.Machine.t -> pid:int -> site:int -> pred_ref:Encoded.as_ref -> verdict
(** Allocation-light probe (a handful of words, no byte copies): direct
    (pid, site) lookup, structural compare of the compiled reference, and
    an allocation-free compare of the live guest bytes against the
    compiled contents. *)

val compile : t -> pid:int -> site:int -> pred_ref:Encoded.as_ref -> contents:string -> unit
(** Compile a site entry from a predecessor set that just verified on the
    slow path: [contents] are the bytes [pred_ref.as_mac] was checked
    against. First writer wins; bounded by [max_sites]; declined (no
    entry, site stays on the slow path) when the set is malformed or
    names a block id outside [0, block_limit). Never call this on a
    failed verification. *)

val member : entry -> int -> bool
(** One load+test: equals [Encoded.predset_mem contents bid] for every
    [bid], by construction of the bitset. *)

val contents_length : entry -> int
(** Length in bytes of the compiled set (the charge parameter of
    [Svm.Cost_model.cfpre_hit_cost]). *)

val state_into : scratch -> counter:int -> last_block:int -> unit
(** Serialize the policy state [u64 counter || u64 lastBlock] (LE) into
    [ps_state] — the allocation-free counterpart of
    [Encoded.state_bytes]. *)

val prepare_pid : t -> int -> unit
(** Establish a fresh, empty site table and chain scratch for [pid],
    dropping anything an earlier image compiled — called on [Proc_spawn]
    and [Proc_exec]. *)

val invalidate_pid : t -> int -> unit
(** Drop every entry owned by [pid] — called on process teardown. *)

val clear : t -> unit
(** Drop everything (counted as invalidations). *)

val note_saved : t -> int -> unit
(** Credit [n] modeled cycles to the cycles-saved gauge (slow-path cost
    minus the fast-path charge, accounted by the checker). *)

val max_sites : t -> int
val block_limit : t -> int
val size : t -> int
val hits : t -> int
val misses : t -> int
val fallbacks : t -> int
val compiles : t -> int
val invalidations : t -> int
val cycles_saved : t -> int
