module Cmac = Asc_crypto.Cmac

(* Per-pid, site-indexed table of precompiled policy verification state.

   Soundness rests on what a compiled entry asserts and what the fast path
   re-checks. An entry is only created from a verification that just
   succeeded on the slow path, so it pins one full encoded byte string E
   with CMAC(key, E) = supplied tag. At a fixed site the *layout* of E —
   field order, the u8 argument-index bytes, every offset — is a pure
   function of the descriptor, and the 16-byte static prefix (number,
   site, descriptor, block low half) plus the block high half are pure
   functions of the fields the fast path compares structurally. So once
   the structural compare passes, the live call's encoded string differs
   from the template only at the dynamic-field offsets; patching those
   offsets with the live values reproduces Encoded.encode of the live
   call byte-for-byte, and resuming the saved chaining state over the
   patched suffix computes the exact MAC the slow path would compute.
   Any structural mismatch, missing entry or tag mismatch falls back to
   the untouched slow path, so denies are byte-identical with the table
   on or off (nothing is ever remembered from a failed verification). *)

type entry = {
  mutable pe_call : Encoded.t;   (* last verified call at this site (memo) *)
  mutable pe_mac : string;       (* its supplied = verified tag *)
  mutable pe_suffix : string;    (* encoded[16..] of that call (template) *)
  pe_fields : Encoded.dyn_field list;
  pe_state : Cmac.Streaming.saved; (* chaining state over encoded[0..15] *)
  pe_len : int;                   (* total encoded length (descriptor-fixed) *)
}

type t = {
  p_key : Cmac.key;
  max_sites : int;                (* per-pid bound on compiled entries *)
  tbl : (int, (int, entry) Hashtbl.t) Hashtbl.t;  (* pid -> site -> entry *)
  mutable hits : int;
  mutable resumes : int;
  mutable misses : int;
  mutable fallbacks : int;
  mutable compiles : int;
  mutable invalidations : int;
  mutable saved : int;
  ctr_hits : Asc_obs.Metrics.counter;
  ctr_resumes : Asc_obs.Metrics.counter;
  ctr_misses : Asc_obs.Metrics.counter;
  ctr_fallbacks : Asc_obs.Metrics.counter;
  ctr_compiles : Asc_obs.Metrics.counter;
  ctr_invalidations : Asc_obs.Metrics.counter;
  g_size : Asc_obs.Metrics.gauge;
  g_saved : Asc_obs.Metrics.gauge;
}

type fallback_cause =
  | Statics_mismatch
  | Tag_mismatch

type verdict =
  | Miss
  | Hit of { suffix_len : int; encoded_len : int }
  | Resumed of { suffix_len : int; encoded_len : int }
  | Fallback of fallback_cause

let create ?(max_sites = 4096) ~key ~registry () =
  if max_sites < 1 then invalid_arg "Precomp.create: max_sites must be >= 1";
  { p_key = key;
    max_sites;
    tbl = Hashtbl.create 16;
    hits = 0;
    resumes = 0;
    misses = 0;
    fallbacks = 0;
    compiles = 0;
    invalidations = 0;
    saved = 0;
    ctr_hits =
      Asc_obs.Metrics.counter registry "precomp.hits" ~help:"precompiled-site memo hits";
    ctr_resumes =
      Asc_obs.Metrics.counter registry "precomp.resumes"
        ~help:"suffix MACs resumed from a saved chaining state";
    ctr_misses = Asc_obs.Metrics.counter registry "precomp.misses";
    ctr_fallbacks =
      Asc_obs.Metrics.counter registry "precomp.fallbacks"
        ~help:"structural or tag mismatches sent to the slow path";
    ctr_compiles = Asc_obs.Metrics.counter registry "precomp.compiles";
    ctr_invalidations =
      Asc_obs.Metrics.counter registry "precomp.invalidations"
        ~help:"entries dropped on spawn / execve / process teardown";
    g_size = Asc_obs.Metrics.gauge registry "precomp.size";
    g_saved =
      Asc_obs.Metrics.gauge registry "precomp.cycles_saved"
        ~help:"modeled CMAC cycles skipped by the precompiled fast path" }

let max_sites t = t.max_sites
let hits t = t.hits
let resumes t = t.resumes
let misses t = t.misses
let fallbacks t = t.fallbacks
let compiles t = t.compiles
let invalidations t = t.invalidations
let cycles_saved t = t.saved

let size t = Hashtbl.fold (fun _ sites acc -> acc + Hashtbl.length sites) t.tbl 0
let set_size t = Asc_obs.Metrics.set t.g_size (size t)

let note_saved t n =
  t.saved <- t.saved + n;
  Asc_obs.Metrics.set t.g_saved t.saved

let drop_pid_entries t pid =
  match Hashtbl.find_opt t.tbl pid with
  | None -> ()
  | Some sites ->
    let n = Hashtbl.length sites in
    Hashtbl.remove t.tbl pid;
    if n > 0 then begin
      t.invalidations <- t.invalidations + n;
      Asc_obs.Metrics.add t.ctr_invalidations n
    end;
    set_size t

(* exec-time table creation: drop whatever an earlier image compiled for
   this pid and start it with a fresh, empty site index *)
let prepare_pid t pid =
  drop_pid_entries t pid;
  Hashtbl.replace t.tbl pid (Hashtbl.create 16)

let invalidate_pid t pid = drop_pid_entries t pid

let clear t =
  let n = size t in
  Hashtbl.reset t.tbl;
  if n > 0 then begin
    t.invalidations <- t.invalidations + n;
    Asc_obs.Metrics.add t.ctr_invalidations n
  end;
  set_size t

let statics_match entry (call : Encoded.t) =
  let e = entry.pe_call in
  e.Encoded.e_number = call.Encoded.e_number
  && e.Encoded.e_site = call.Encoded.e_site
  && e.Encoded.e_descriptor = call.Encoded.e_descriptor
  && e.Encoded.e_block = call.Encoded.e_block

(* With equal descriptors both calls have the same field shape, so
   comparing each dynamic field against the memo is full structural
   equality of the two records. Raises Not_found on a malformed argument
   list (a checker invariant violation) — the caller falls back. *)
let fields_match entry (call : Encoded.t) =
  let memo = entry.pe_call in
  List.for_all
    (fun f ->
      match f with
      | Encoded.D_const { d_arg; _ } ->
        List.assoc d_arg call.Encoded.e_const_args
        = List.assoc d_arg memo.Encoded.e_const_args
      | Encoded.D_string { d_arg; _ } ->
        List.assoc d_arg call.Encoded.e_string_args
        = List.assoc d_arg memo.Encoded.e_string_args
      | Encoded.D_ext _ -> call.Encoded.e_ext = memo.Encoded.e_ext
      | Encoded.D_control _ -> call.Encoded.e_control = memo.Encoded.e_control)
    entry.pe_fields

(* Rebuild the live call's dynamic suffix by patching the template at the
   precompiled offsets — equals Encoded.encode of the live call from byte
   16 on (every unpatched byte is a function of the statics just checked). *)
let patched_suffix entry (call : Encoded.t) =
  let b = Bytes.of_string entry.pe_suffix in
  let base = Encoded.static_prefix_len in
  List.iter
    (fun f ->
      match f with
      | Encoded.D_const { d_off; d_arg } ->
        Encoded.set_u64 b ~pos:(d_off - base) (List.assoc d_arg call.Encoded.e_const_args)
      | Encoded.D_string { d_off; d_arg } ->
        Encoded.set_as_ref b ~pos:(d_off - base) (List.assoc d_arg call.Encoded.e_string_args)
      | Encoded.D_ext { d_off } ->
        (match call.Encoded.e_ext with
         | Some r -> Encoded.set_as_ref b ~pos:(d_off - base) r
         | None -> raise Not_found)
      | Encoded.D_control { d_off } ->
        (match call.Encoded.e_control with
         | Some (r, lbptr) ->
           Encoded.set_as_ref b ~pos:(d_off - base) r;
           Encoded.set_u32 b ~pos:(d_off - base + 24) lbptr
         | None -> raise Not_found))
    entry.pe_fields;
  b

let check t ~pid ~(call : Encoded.t) ~supplied =
  let entry =
    match Hashtbl.find_opt t.tbl pid with
    | None -> None
    | Some sites -> Hashtbl.find_opt sites call.Encoded.e_site
  in
  match entry with
  | None ->
    t.misses <- t.misses + 1;
    Asc_obs.Metrics.inc t.ctr_misses;
    Miss
  | Some e ->
    let suffix_len = e.pe_len - Encoded.static_prefix_len in
    if not (statics_match e call) then begin
      t.fallbacks <- t.fallbacks + 1;
      Asc_obs.Metrics.inc t.ctr_fallbacks;
      Fallback Statics_mismatch
    end
    else begin
      match
        if fields_match e call && Cmac.equal_tags e.pe_mac supplied then `Hit
        else begin
          let suffix = patched_suffix e call in
          let st = Cmac.Streaming.resume t.p_key e.pe_state in
          Cmac.Streaming.update st suffix ~pos:0 ~len:(Bytes.length suffix);
          if Cmac.equal_tags (Cmac.Streaming.final st) supplied then `Resumed suffix
          else `Mismatch
        end
      with
      | `Hit ->
        t.hits <- t.hits + 1;
        Asc_obs.Metrics.inc t.ctr_hits;
        Hit { suffix_len; encoded_len = e.pe_len }
      | `Resumed suffix ->
        (* a second valid (call, tag) pair at this site: move the memo *)
        e.pe_call <- call;
        e.pe_mac <- supplied;
        e.pe_suffix <- Bytes.to_string suffix;
        t.resumes <- t.resumes + 1;
        Asc_obs.Metrics.inc t.ctr_resumes;
        Resumed { suffix_len; encoded_len = e.pe_len }
      | `Mismatch ->
        t.fallbacks <- t.fallbacks + 1;
        Asc_obs.Metrics.inc t.ctr_fallbacks;
        Fallback Tag_mismatch
      | exception Not_found ->
        (* malformed argument list during field compare/patch — a shape
           problem, not a tag problem *)
        t.fallbacks <- t.fallbacks + 1;
        Asc_obs.Metrics.inc t.ctr_fallbacks;
        Fallback Statics_mismatch
    end

let compile t ~pid ~(call : Encoded.t) ~encoded ~mac =
  let len = String.length encoded in
  if len > Encoded.static_prefix_len then begin
    let sites =
      match Hashtbl.find_opt t.tbl pid with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 16 in
        Hashtbl.replace t.tbl pid s;
        s
    in
    if (not (Hashtbl.mem sites call.Encoded.e_site)) && Hashtbl.length sites < t.max_sites
    then begin
      let st = Cmac.Streaming.init t.p_key in
      Cmac.Streaming.update st
        (Bytes.unsafe_of_string encoded)
        ~pos:0 ~len:Encoded.static_prefix_len;
      let entry =
        { pe_call = call;
          pe_mac = mac;
          pe_suffix =
            String.sub encoded Encoded.static_prefix_len (len - Encoded.static_prefix_len);
          pe_fields = Encoded.dyn_fields call.Encoded.e_descriptor;
          pe_state = Cmac.Streaming.save st;
          pe_len = len }
      in
      Hashtbl.replace sites call.Encoded.e_site entry;
      t.compiles <- t.compiles + 1;
      Asc_obs.Metrics.inc t.ctr_compiles;
      set_size t
    end
  end
