(** The trusted installer (§3.3): reads an application binary, derives a
    policy for every system-call site by conservative static analysis, and
    rewrites the binary so every system call is an authenticated system
    call.

    Pipeline (matching §4.1): disassemble → identify syscall blocks and
    numbers (the number is the value of register [r0] at the [Sys]
    instruction) → inline libc syscall stubs so each original call site
    gets its own policy → constant propagation to classify arguments →
    system-call graph for the control-flow policy → rewrite.

    The rewrite inserts, before each [Sys], loads of the five extra
    arguments (§3.2): policy descriptor → [r7], basic-block id → [r8],
    predecessor-set pointer → [r9], policy-state pointer → [r10], call-MAC
    pointer → [r11] (plus, when the §5 extensions are used, an extension
    block pointer → [r14]). Authenticated strings, predecessor sets, the
    policy state ([lastBlock], [lbMAC]) and the call MACs live in a new
    writable [.asc] section. Registers r7–r11/r14 are treated as
    caller-saved scratch at system calls, which the MiniC code generator
    guarantees. *)

type options = {
  control_flow : bool;    (** emit control-flow (predecessor set) policies *)
  use_extensions : bool;  (** §5: encode small value sets as extension blocks *)
  program_id : int;       (** 0–2047; makes block ids globally unique (§5.5) *)
}

val default_options : options
(** control flow on, extensions off, program id 1. *)

val asc_section : string
(** Name of the added section, [".asc"]. *)

val start_block : options -> int
(** The virtual start-node block id for this program
    ([program_id lsl 20]) — the sentinel initial value of [lastBlock]. *)

(** {2 Phase tracing} *)

type tracer = {
  tr_events : Asc_obs.Trace.t;
  tr_clock : Asc_obs.Clock.t;
}
(** Collects one span per installer phase (disasm, inline, cfg, dataflow,
    syscall-graph, classify, emit). Timestamps come from a step clock
    advanced by units of work done — blocks disassembled, sites analyzed,
    bytes emitted — not wall time, so traces are deterministic. Export
    with [Asc_obs.Trace.chrome_string tracer.tr_events]. *)

val new_tracer : unit -> tracer

val phase : ?tracer:tracer -> string -> work:('a -> int) -> (unit -> 'a) -> 'a
(** [phase ?tracer name ~work f] runs [f] inside a [name] span (a no-op
    without a tracer) and advances the step clock by [work result]. *)

type installed = {
  image : Svm.Obj_file.t;   (** the authenticated binary *)
  policy : Policy.t;
  sites : int;              (** number of rewritten system-call sites *)
  asc_bytes : int;          (** size of the added [.asc] section *)
}

val generate_policy :
  ?tracer:tracer ->
  personality:Oskernel.Personality.t ->
  ?options:options ->
  program:string ->
  Svm.Obj_file.t ->
  (Policy.t, string) result
(** Static analysis only — works even when parts of the binary cannot be
    disassembled (warnings are recorded in the policy, as with the OpenBSD
    [close] stub in Table 2). Used for the policy-comparison experiments. *)

val install :
  ?tracer:tracer ->
  key:Asc_crypto.Cmac.key ->
  personality:Oskernel.Personality.t ->
  ?options:options ->
  ?overrides:(int * int * Policy.arg_policy) list ->
  program:string ->
  Svm.Obj_file.t ->
  (installed, string) result
(** Full installation. Fails when the binary cannot be completely
    disassembled or a system call's number cannot be determined statically.
    A successful install also publishes the policy-size gauges
    [installer.sites], [installer.asc_bytes] and [installer.distinct_calls]
    to [Asc_obs.Metrics.default] (the Table 1/3 size columns).

    [overrides] supplies administrator-completed policy-template values
    (§5.2, see {!Metapolicy.to_overrides}): [(block, arg index,
    constraint)]. Only [A_const], [A_one_of] and [A_pattern] constraints
    can be supplied by hand. *)

(** {2 Shared libraries (§5.2)} *)

type installed_library = {
  lib_image : Svm.Obj_file.t;           (** the authenticated library *)
  lib_policy : Policy.t;
  lib_exports : (string * int) list;    (** functions kept, at final addresses *)
  lib_rejected : string list;           (** functions whose system calls cannot
                                            satisfy the metapolicy — "set aside
                                            for static linking with application
                                            programs that require" them *)
}

val install_library :
  key:Asc_crypto.Cmac.key ->
  personality:Oskernel.Personality.t ->
  ?options:options ->
  ?metapolicy:Metapolicy.t ->
  program:string ->
  exports:(string * int) list ->
  Svm.Obj_file.t ->
  (installed_library, string) result
(** Install a prelinked shared library (built by
    {!Minic.Driver.compile_library}). Exported functions that reach a
    system call unable to satisfy the [metapolicy] (default
    {!Metapolicy.strict_exec}) are rejected and stripped; the remaining
    functions get authenticated system calls as usual, but without
    control-flow policies — library calls neither consult nor advance the
    per-process policy state, so each application's own control-flow chain
    survives calls into the library. *)
