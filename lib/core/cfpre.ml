(* Per-pid, site-indexed precompiled control-flow policy: predecessor
   bitsets plus the per-pid lbMAC chain scratch.

   Soundness rests on what an entry asserts and what the fast path
   re-checks. An entry is only compiled from a predecessor set whose
   authenticated-string MAC just verified on the slow path, so it pins one
   (addr, len, tag) reference together with the exact contents the tag
   covers. On a later trap the fast path accepts the entry only when the
   live reference equals the compiled one *and* the live guest bytes equal
   the compiled contents — under which the slow path's string-MAC check
   would necessarily succeed with the same bytes, so replacing it with the
   bitset membership test (built from those same bytes, bit b set iff
   [Encoded.predset_mem contents b]) decides exactly what the slow path
   would decide. Any missing entry, changed reference or changed byte
   falls back to the untouched slow path, so denies are byte-identical
   with the table on or off. The nonce-fresh lbMAC is deliberately NOT
   cached here: the checker still recomputes it on every call; this module
   only hands out the per-pid scratch the amortized single-block chain
   step writes into. *)

type scratch = {
  ps_state : Bytes.t;  (* 16 B: u64 counter || u64 lastBlock (LE) *)
  ps_tag : Bytes.t;    (* 16 B: the freshly computed lbMAC *)
  ps_read : Bytes.t;   (* 16 B: the lbMAC read back from guest memory *)
}

type entry = {
  ce_ref : Encoded.as_ref;  (* compiled predecessor-set reference *)
  ce_contents : string;     (* the slow-path-verified set bytes *)
  ce_bits : Bytes.t;        (* bit (b - ce_base) set iff block b is in the set *)
  ce_base : int;            (* smallest id in the set (bitset offset) *)
  ce_span : int;            (* ids in [ce_base, ce_base + ce_span) are representable *)
}

type per_pid = {
  cs_sites : (int, entry) Hashtbl.t;
  cs_scratch : scratch;
}

type t = {
  max_sites : int;     (* per-pid bound on compiled entries *)
  block_limit : int;   (* sets whose ids span at least this are not compiled *)
  tbl : (int, per_pid) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable fallbacks : int;
  mutable compiles : int;
  mutable invalidations : int;
  mutable saved : int;
  ctr_hits : Asc_obs.Metrics.counter;
  ctr_misses : Asc_obs.Metrics.counter;
  ctr_fallbacks : Asc_obs.Metrics.counter;
  ctr_compiles : Asc_obs.Metrics.counter;
  ctr_invalidations : Asc_obs.Metrics.counter;
  g_size : Asc_obs.Metrics.gauge;
  g_saved : Asc_obs.Metrics.gauge;
}

type fallback_cause =
  | Ref_mismatch
  | Contents_mismatch

type verdict =
  | Miss
  | Hit of { entry : entry; scratch : scratch }
  | Fallback of fallback_cause

let create ?(max_sites = 4096) ?(block_limit = 65536) ~registry () =
  if max_sites < 1 then invalid_arg "Cfpre.create: max_sites must be >= 1";
  if block_limit < 1 then invalid_arg "Cfpre.create: block_limit must be >= 1";
  { max_sites;
    block_limit;
    tbl = Hashtbl.create 16;
    hits = 0;
    misses = 0;
    fallbacks = 0;
    compiles = 0;
    invalidations = 0;
    saved = 0;
    ctr_hits =
      Asc_obs.Metrics.counter registry "cfpre.hits"
        ~help:"control-flow bitset hits (predecessor check by load+test)";
    ctr_misses = Asc_obs.Metrics.counter registry "cfpre.misses";
    ctr_fallbacks =
      Asc_obs.Metrics.counter registry "cfpre.fallbacks"
        ~help:"reference or contents mismatches sent to the slow path";
    ctr_compiles = Asc_obs.Metrics.counter registry "cfpre.compiles";
    ctr_invalidations =
      Asc_obs.Metrics.counter registry "cfpre.invalidations"
        ~help:"entries dropped on spawn / execve / process teardown";
    g_size = Asc_obs.Metrics.gauge registry "cfpre.size";
    g_saved =
      Asc_obs.Metrics.gauge registry "cfpre.cycles_saved"
        ~help:"modeled cycles skipped by the bitset + lbMAC-chain fast path" }

let max_sites t = t.max_sites
let block_limit t = t.block_limit
let hits t = t.hits
let misses t = t.misses
let fallbacks t = t.fallbacks
let compiles t = t.compiles
let invalidations t = t.invalidations
let cycles_saved t = t.saved

let size t = Hashtbl.fold (fun _ pp acc -> acc + Hashtbl.length pp.cs_sites) t.tbl 0
let set_size t = Asc_obs.Metrics.set t.g_size (size t)

let note_saved t n =
  t.saved <- t.saved + n;
  Asc_obs.Metrics.set t.g_saved t.saved

let fresh_scratch () =
  { ps_state = Bytes.create 16; ps_tag = Bytes.create 16; ps_read = Bytes.create 16 }

let drop_pid_entries t pid =
  match Hashtbl.find_opt t.tbl pid with
  | None -> ()
  | Some pp ->
    let n = Hashtbl.length pp.cs_sites in
    Hashtbl.remove t.tbl pid;
    if n > 0 then begin
      t.invalidations <- t.invalidations + n;
      Asc_obs.Metrics.add t.ctr_invalidations n
    end;
    set_size t

(* exec-time table creation: drop whatever an earlier image compiled for
   this pid and arm a fresh site index plus the pid's chain scratch *)
let prepare_pid t pid =
  drop_pid_entries t pid;
  Hashtbl.replace t.tbl pid { cs_sites = Hashtbl.create 16; cs_scratch = fresh_scratch () }

let invalidate_pid t pid = drop_pid_entries t pid

let clear t =
  let n = size t in
  Hashtbl.reset t.tbl;
  if n > 0 then begin
    t.invalidations <- t.invalidations + n;
    Asc_obs.Metrics.add t.ctr_invalidations n
  end;
  set_size t

let member entry bid =
  let o = bid - entry.ce_base in
  o >= 0 && o < entry.ce_span
  && Char.code (Bytes.get entry.ce_bits (o lsr 3)) land (1 lsl (o land 7)) <> 0

let contents_length entry = String.length entry.ce_contents

let state_into sc ~counter ~last_block =
  Encoded.set_u64 sc.ps_state ~pos:0 counter;
  Encoded.set_u64 sc.ps_state ~pos:8 last_block

let ref_equal (a : Encoded.as_ref) (b : Encoded.as_ref) =
  a.Encoded.as_addr = b.Encoded.as_addr
  && a.Encoded.as_len = b.Encoded.as_len
  && String.equal a.Encoded.as_mac b.Encoded.as_mac

let miss t =
  t.misses <- t.misses + 1;
  Asc_obs.Metrics.inc t.ctr_misses;
  Miss

(* Deliberately flat, and the lookups use exception-style [Hashtbl.find]:
   the probe runs on every monitored call and its words count against the
   fast path's allocation budget — on the hit path only the [Hit] record
   itself is allocated, not two [find_opt] options. *)
let check t ~m ~pid ~site ~(pred_ref : Encoded.as_ref) =
  match Hashtbl.find t.tbl pid with
  | exception Not_found -> miss t
  | pp ->
    (match Hashtbl.find pp.cs_sites site with
     | exception Not_found -> miss t
     | e ->
       if not (ref_equal e.ce_ref pred_ref) then begin
         t.fallbacks <- t.fallbacks + 1;
         Asc_obs.Metrics.inc t.ctr_fallbacks;
         Fallback Ref_mismatch
       end
       else if not (Svm.Machine.mem_equal m ~addr:pred_ref.Encoded.as_addr e.ce_contents)
       then begin
         (* the reference (and its tag) matches but the guest bytes moved
            out from under it — the slow path re-reads and re-MACs, and
            denies *)
         t.fallbacks <- t.fallbacks + 1;
         Asc_obs.Metrics.inc t.ctr_fallbacks;
         Fallback Contents_mismatch
       end
       else begin
         t.hits <- t.hits + 1;
         Asc_obs.Metrics.inc t.ctr_hits;
         Hit { entry = e; scratch = pp.cs_scratch }
       end)

(* Parse the sorted-unique u64 LE block ids the verified set carries.
   Returns [None] — compile declined — on a malformed length, an id that
   overflows the host int (negative after 63-bit truncation), or a set
   whose ids span at least [block_limit] (ids are globally unique —
   program id in the high bits — so the bitset is offset from the set's
   smallest id and only the *span* must stay dense); such sites simply
   keep taking the slow path, which decides membership from the string
   itself. *)
let parse_ids t contents =
  let n = String.length contents in
  if n = 0 || n mod 8 <> 0 then None
  else begin
    let ids = ref [] in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n / 8 do
      let v = ref 0 in
      for k = 7 downto 0 do
        v := (!v lsl 8) lor Char.code contents.[(8 * !i) + k]
      done;
      if !v < 0 then ok := false else ids := !v :: !ids;
      incr i
    done;
    if not !ok then None
    else begin
      let base = List.fold_left min max_int !ids in
      let span = List.fold_left (fun acc v -> max acc (v - base + 1)) 0 !ids in
      if span > t.block_limit then None else Some (base, span, !ids)
    end
  end

let compile t ~pid ~site ~(pred_ref : Encoded.as_ref) ~contents =
  let pp =
    match Hashtbl.find_opt t.tbl pid with
    | Some pp -> pp
    | None ->
      let pp = { cs_sites = Hashtbl.create 16; cs_scratch = fresh_scratch () } in
      Hashtbl.replace t.tbl pid pp;
      pp
  in
  if (not (Hashtbl.mem pp.cs_sites site)) && Hashtbl.length pp.cs_sites < t.max_sites then begin
    match parse_ids t contents with
    | None -> ()
    | Some (base, span, ids) ->
      let bits = Bytes.make ((span + 7) / 8) '\000' in
      List.iter
        (fun v ->
          let o = v - base in
          Bytes.set bits (o lsr 3)
            (Char.chr (Char.code (Bytes.get bits (o lsr 3)) lor (1 lsl (o land 7)))))
        ids;
      Hashtbl.replace pp.cs_sites site
        { ce_ref = pred_ref; ce_contents = contents; ce_bits = bits; ce_base = base;
          ce_span = span };
      t.compiles <- t.compiles + 1;
      Asc_obs.Metrics.inc t.ctr_compiles;
      set_size t
  end
