(** Kernel-side system-call checking (§3.4) — the counterpart of the 248
    lines the paper adds to the Linux software trap handler.

    On every trap the checker: (1) rebuilds the *encoded call* from the
    call's actual behavior — trap number, trap site, the five extra
    arguments in r7–r11, and the constrained argument registers — and
    compares its MAC against the call MAC supplied by the application;
    (2) verifies the contents of every authenticated-string argument
    (including the predecessor set and any §5 extension block);
    (3) verifies and updates the control-flow policy state using the online
    memory checker: [lbMAC = MAC(counter ++ lastBlock)] with the nonce
    counter held in kernel memory ({!Oskernel.Process.t}'s [counter]).

    Any failure terminates the process with a structured
    [Kernel.Deny_violation] naming the failing step
    ({!Oskernel.Violation.step}) and, for MAC comparisons, hex prefixes of
    the expected and supplied tags; unauthenticated calls (descriptor
    marker absent) are likewise blocked. The checker charges
    the modeled verification cycles ({!Svm.Cost_model}) to the machine, so
    the Table 4/6 benchmarks reflect its cost.

    Every charged cycle is also attributed to exactly one per-step counter
    in the kernel's metrics registry — [checker.cycles.call_mac],
    [checker.cycles.string_mac], [checker.cycles.control_flow] and
    [checker.cycles.ext] — alongside [checker.cycles.total] and
    [checker.calls_verified], so the per-step breakdown always sums to the
    modeled total (the Table 4 decomposition).

    Every monitored call additionally records exactly one
    {!Asc_obs.Telemetry.reason} code — how its call MAC was resolved
    (precomp hit/resume, precomp fallback by cause, vcache hit, slow
    path) or which step denied it — into the kernel's telemetry plane
    ({!Oskernel.Kernel.telemetry}), together with the call's verification
    cycles (the [checker.cycles.total] delta). The recording itself
    charges [Svm.Cost_model.telemetry_record_cost] to the machine,
    credited to the plane's self-overhead meter but {e not} to the
    checker's step counters, so the Table 4 decomposition stays
    verification-only. *)

val monitor :
  kernel:Oskernel.Kernel.t ->
  key:Asc_crypto.Cmac.key ->
  ?normalize_paths:bool ->
  ?vcache:Vcache.t ->
  ?precomp:Precomp.t ->
  ?cfpre:Cfpre.t ->
  unit ->
  Oskernel.Kernel.monitor
(** [normalize_paths] additionally resolves every verified pathname
    argument through the VFS and denies the call when normalization
    changes it (the §5.4 symlink-race defense). Default [false].

    [vcache] attaches a verified-MAC cache ({!Vcache}): call-MAC and
    authenticated-string checks that hit it are charged
    [Svm.Cost_model.vcache_hit_cost] instead of the CMAC cost (still on
    the same per-step counter, so the decomposition keeps summing), while
    misses — including every tampered descriptor, string or tag, whose
    key cannot match — take the unchanged slow path to the same
    structured deny. The nonce-fresh control-flow [lbMAC] is always
    verified. The monitor registers a kernel lifecycle hook that
    invalidates the pid's entries on [execve] and process teardown.
    Default: no cache (every check recomputes, the pre-cache behavior).

    [precomp] attaches a precompiled-site table ({!Precomp}), the fast
    path {e in front of} step 1: per-pid tables are (re)built on
    [Proc_spawn]/[Proc_exec] and dropped on [Proc_exit] (via lifecycle
    hooks), a site's entry is compiled from its first successful
    slow-path verification, and later traps that the table proves — memo
    equality, or a streaming-CMAC resume over the dynamic suffix — are
    charged [Svm.Cost_model.precomp_hit_cost], respectively
    [precomp_lookup_cost + mac_resume_cost], on the call-MAC counter
    without serializing the encoded call at all. Misses and mismatches
    charge nothing and run the unchanged slow path (composing with
    [vcache]), so denies are byte-identical with the table on or off.
    Must be created with the same [key]. Default: no table. *)

(** {1 Fault injection} — regression-attribution test support. *)

val set_cost_injection : step:string -> pct:int -> unit
(** Inflate every cycle charge to the named checker step
    ([call_mac], [string_mac], [control_flow] or [ext]) by [pct] percent
    — through the machine's cycle counter, the per-step metrics and the
    profiler alike, so the decomposition invariants keep holding while
    the numbers move. This exists to prove the attribution pipeline:
    bench's [--inject-step-cost] uses it to trip the table4 gate
    deliberately and assert the failure names the step and site.
    @raise Invalid_argument on an unknown step name or [pct < 0]. *)

val clear_cost_injection : unit -> unit
