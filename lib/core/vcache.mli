(** Bounded LRU cache of successful MAC verifications — the kernel-side
    fast path that lets a hot loop calling the same site with the same
    constant arguments skip recomputing AES-CMAC on every trap.

    {b Soundness rule}: a hit is only legal when the cache key covers
    every byte the MAC computation covered. The two key forms enforce
    this by construction:

    - {!constructor-Call}[ { pid; site; encoded }] carries the {e complete}
      encoded call ({!Encoded.encode}'s output: trap number, site,
      descriptor, block id, constant arguments, authenticated-string
      references including their tags, extension and control references) —
      exactly the bytes the call MAC is computed over;
    - {!constructor-Str}[ { pid; bytes }] carries the full contents of an
      authenticated string (argument string, predecessor set or extension
      block) — exactly the bytes its tag covers.

    Together with the supplied 16-byte tag, an entry asserts
    "CMAC(k, bytes) = tag was verified before". Any tampered descriptor,
    argument, string or tag changes the key, misses, and takes the slow
    path to the same structured deny — so denials are byte-identical with
    the cache on or off. The control-flow [lbMAC] is nonce-fresh (the
    kernel-held counter changes every call) and is {e never} cached.

    The [pid] in both key forms is not needed for MAC soundness (the tag
    does not depend on it) but provides lifecycle isolation: entries are
    invalidated wholesale on [execve] and on process teardown, so a
    recycled pid can never observe another image's warm cache
    ({!invalidate_pid}, driven by [Oskernel.Kernel] lifecycle hooks).

    Only successful verifications are remembered. Hit/miss/eviction
    counters, a size gauge and a cycles-saved gauge are published into the
    registry passed at creation ([vcache.hits], [vcache.misses],
    [vcache.evictions], [vcache.invalidations], [vcache.size],
    [vcache.cycles_saved]). *)

type key =
  | Call of { pid : int; site : int; encoded : string }
      (** call-MAC check: [encoded] is the full rebuilt encoded call *)
  | Str of { pid : int; bytes : string }
      (** authenticated-string check: [bytes] is the full string contents *)

type t

val create : ?capacity:int -> registry:Asc_obs.Metrics.registry -> unit -> t
(** Bounded LRU holding at most [capacity] (default 1024, must be ≥ 1)
    verified entries; counters/gauges are registered in [registry]
    (typically the owning kernel's). *)

val check : t -> key -> mac:string -> bool
(** [check t key ~mac] is [true] iff [(key, mac)] was previously
    {!remember}ed (and not evicted or invalidated since). Bumps the entry
    to most-recently-used and the hit/miss counters either way. *)

val remember : t -> key -> mac:string -> unit
(** Record a verification that just succeeded on the slow path, evicting
    the least-recently-used entry when full. Never call this on a failed
    comparison. *)

val note_saved : t -> int -> unit
(** Credit [n] modeled cycles to the cycles-saved gauge (the slow-path
    MAC cost minus the hit cost, accounted by the checker on each hit). *)

val invalidate_pid : t -> int -> unit
(** Drop every entry owned by [pid] — called on [execve] (the image the
    entries were verified against is gone) and on process teardown (the
    pid may be reused). *)

val clear : t -> unit
(** Drop everything (counted as invalidations). *)

val capacity : t -> int
val size : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val invalidations : t -> int

val cycles_saved : t -> int
(** Total modeled cycles skipped by hits, per {!note_saved}. *)
