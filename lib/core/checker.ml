open Svm
open Oskernel
module Cmac = Asc_crypto.Cmac

(* A structured verification failure: which step of the pipeline refused
   the call, the human-readable detail, and — when the failure was a MAC
   comparison — hex prefixes of both sides, so the audit trail can show
   *what* disagreed rather than only that something did. *)
type fail = {
  f_step : Violation.step;
  f_reason : string;
  f_expected : string option;  (* hex prefix of the MAC the checker computed *)
  f_got : string option;       (* hex prefix of the MAC the process supplied *)
}

exception Deny of fail

let deny step fmt =
  Format.kasprintf
    (fun s -> raise (Deny { f_step = step; f_reason = s; f_expected = None; f_got = None }))
    fmt

let mac_prefix s =
  let n = min 8 (String.length s) in
  String.concat "" (List.init n (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let deny_mac step ~expected ~got fmt =
  Format.kasprintf
    (fun s ->
      raise
        (Deny
           { f_step = step;
             f_reason = s;
             f_expected = Some (mac_prefix expected);
             f_got = Some (mac_prefix got) }))
    fmt

(* Per-verification-step cycle attribution (§3.4 / Table 4): every cycle
   the checker charges to the machine is also credited to exactly one step
   counter, so the steps always sum to [steps.st_total]. *)
type steps = {
  st_call_mac : Asc_obs.Metrics.counter;      (* step 1: rebuild + call-MAC *)
  st_string_mac : Asc_obs.Metrics.counter;    (* step 2: authenticated strings *)
  st_control_flow : Asc_obs.Metrics.counter;  (* step 3: predset + lbMAC checker *)
  st_ext : Asc_obs.Metrics.counter;           (* §5 value sets and patterns *)
  st_total : Asc_obs.Metrics.counter;
  st_checked : Asc_obs.Metrics.counter;       (* calls that passed every step *)
  (* Host minor-words attribution — the memory analogue of the cycle
     decomposition. Each step's work runs inside a [step_region] that
     measures the [Gc.minor_words] delta across it, so every measured word
     is credited to exactly one step and the four verification steps sum
     to [sa_total]. The telemetry plane's own recording allocation is kept
     in its own counter, outside the step sum, mirroring [st_total]'s
     verification-only semantics. *)
  sa_call_mac : Asc_obs.Metrics.counter;
  sa_string_mac : Asc_obs.Metrics.counter;
  sa_control_flow : Asc_obs.Metrics.counter;
  sa_ext : Asc_obs.Metrics.counter;
  sa_telemetry : Asc_obs.Metrics.counter;
  sa_total : Asc_obs.Metrics.counter;
}

let steps_of registry =
  { st_call_mac = Asc_obs.Metrics.counter registry "checker.cycles.call_mac";
    st_string_mac = Asc_obs.Metrics.counter registry "checker.cycles.string_mac";
    st_control_flow = Asc_obs.Metrics.counter registry "checker.cycles.control_flow";
    st_ext = Asc_obs.Metrics.counter registry "checker.cycles.ext";
    st_total = Asc_obs.Metrics.counter registry "checker.cycles.total";
    st_checked = Asc_obs.Metrics.counter registry "checker.calls_verified";
    sa_call_mac = Asc_obs.Metrics.counter registry "checker.alloc.call_mac";
    sa_string_mac = Asc_obs.Metrics.counter registry "checker.alloc.string_mac";
    sa_control_flow = Asc_obs.Metrics.counter registry "checker.alloc.control_flow";
    sa_ext = Asc_obs.Metrics.counter registry "checker.alloc.ext";
    sa_telemetry = Asc_obs.Metrics.counter registry "checker.alloc.telemetry";
    sa_total = Asc_obs.Metrics.counter registry "checker.alloc.total" }

(* The verification step being charged; doubles as the metrics-counter
   selector and (when a profiler is attached) the synthetic frame name. *)
type step =
  | Call_mac
  | String_mac
  | Control_flow
  | Ext

let step_counter steps = function
  | Call_mac -> steps.st_call_mac
  | String_mac -> steps.st_string_mac
  | Control_flow -> steps.st_control_flow
  | Ext -> steps.st_ext

let step_alloc_counter steps = function
  | Call_mac -> steps.sa_call_mac
  | String_mac -> steps.sa_string_mac
  | Control_flow -> steps.sa_control_flow
  | Ext -> steps.sa_ext

(* Fault injection for the attribution pipeline: inflate one step's cycle
   charges by a percentage. The surcharge flows through [charge], so the
   machine counter, the per-step metrics, the profiler and telemetry all
   see the same inflated number — every "steps sum to total" invariant
   keeps holding while the step visibly regresses. *)
let cost_injection : (step * int) option ref = ref None

let set_cost_injection ~step ~pct =
  if pct < 0 then invalid_arg "Checker.set_cost_injection: pct must be >= 0";
  let step =
    match step with
    | "call_mac" -> Call_mac
    | "string_mac" -> String_mac
    | "control_flow" -> Control_flow
    | "ext" -> Ext
    | other -> invalid_arg (Printf.sprintf "Checker.set_cost_injection: unknown step %S" other)
  in
  cost_injection := Some (step, pct)

let clear_cost_injection () = cost_injection := None

let injected step n =
  match !cost_injection with
  | Some (s, pct) when s = step -> n + n * pct / 100
  | _ -> n

(* pre-built frames: constant constructors of string literals, so entering
   a region allocates nothing before the region's minor-words mark *)
let step_frame = function
  | Call_mac -> Asc_obs.Profile.Label "<kernel:call_mac>"
  | String_mac -> Asc_obs.Profile.Label "<kernel:string_mac>"
  | Control_flow -> Asc_obs.Profile.Label "<kernel:control_flow>"
  | Ext -> Asc_obs.Profile.Label "<kernel:ext>"

let charge (m : Machine.t) steps step n =
  let n = injected step n in
  m.cycles <- m.cycles + n;
  Asc_obs.Metrics.add (step_counter steps step) n;
  Asc_obs.Metrics.add steps.st_total n;
  (* every charge happens inside the matching [step_region], whose
     <kernel:step> frame is on top of the shadow stack — so verification
     cycles show up in flamegraphs as children of the syscall-site frame *)
  match m.profile with
  | Some p -> Asc_obs.Profile.charge p n
  | None -> ()

(* [step_region m steps step f] brackets one step's work: it pushes the
   step's <kernel:step> profile frame (an allocation sampling point, so
   pending words stay with the site frame) and marks the host minor-words
   counter; on exit — normal or [Deny] — the delta is credited to the
   step's alloc counter and the frame is popped, keeping the shadow stack
   balanced for the deny-time forensic snapshot. *)
let step_region (m : Machine.t) steps step f =
  (match m.Machine.profile with
   | Some p -> Asc_obs.Profile.enter p (step_frame step)
   | None -> ());
  let a0 = Asc_obs.Profile.minor_words () in
  let finish () =
    let d = Asc_obs.Profile.minor_words () - a0 in
    if d > 0 then begin
      Asc_obs.Metrics.add (step_alloc_counter steps step) d;
      Asc_obs.Metrics.add steps.sa_total d
    end;
    match m.Machine.profile with
    | Some p -> Asc_obs.Profile.leave p
    | None -> ()
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

(* charging-step → violation-step: the charge attribution is 4-way (the
   Table 4 decomposition) while violations name the finer-grained cause *)
let vstep_of = function
  | Call_mac -> Violation.Call_mac
  | String_mac -> Violation.String_mac
  | Control_flow -> Violation.Control_flow
  | Ext -> Violation.Ext

let read_mac m addr =
  match Machine.read_mem m ~addr ~len:16 with
  | Some s -> s
  | None -> deny Violation.Call_mac "call MAC pointer 0x%x unreadable" addr

let read_as_header m ~ptr what =
  match Auth_string.read_header (Machine.read_byte m) ~ptr with
  | Some (len, mac) -> { Encoded.as_addr = ptr; as_len = len; as_mac = mac }
  | None -> deny Violation.Call_mac "%s: bad authenticated-string header at 0x%x" what ptr

(* A cache hit replaces the modeled CMAC cycles with the (much cheaper)
   hit cost, still charged to the same step counter so the Table 4
   decomposition keeps summing; the skipped cycles feed the cache's
   cycles-saved gauge. The miss/slow path is byte-identical to the
   uncached checker, including what it denies and how. *)
let cache_hit vcache ckey ~mac =
  match vcache with
  | None -> false
  | Some vc -> Vcache.check vc ckey ~mac

let charge_hit m steps step vcache ~len =
  charge m steps step (Cost_model.vcache_hit_cost len);
  match vcache with
  | Some vc -> Vcache.note_saved vc (Cost_model.mac_cost len - Cost_model.vcache_hit_cost len)
  | None -> ()

let cache_remember vcache ckey ~mac =
  match vcache with
  | None -> ()
  | Some vc -> Vcache.remember vc ckey ~mac

let verify_as m steps step ~vcache ~pid key (r : Encoded.as_ref) what =
  match Machine.read_mem m ~addr:r.as_addr ~len:r.as_len with
  | None -> deny (vstep_of step) "%s: string contents unreadable" what
  | Some contents ->
    (* sound to cache: the key carries the full contents — every byte the
       string MAC covers — so tampered bytes or a tampered tag miss *)
    let ckey = Vcache.Str { pid; bytes = contents } in
    if cache_hit vcache ckey ~mac:r.as_mac then
      charge_hit m steps step vcache ~len:r.as_len
    else begin
      charge m steps step (Cost_model.mac_cost r.as_len);
      let expect = Auth_string.mac_of key contents in
      if not (Cmac.equal_tags expect r.as_mac) then
        deny_mac (vstep_of step) ~expected:expect ~got:r.as_mac
          "%s: string authentication failed" what;
      cache_remember vcache ckey ~mac:r.as_mac
    end;
    contents

(* parse a verified §5 extension block: sequence of
   [u8 argidx][u8 kind][u8 n][payload] entries *)
let parse_ext contents =
  let n = String.length contents in
  let byte i = Char.code contents.[i] in
  let rec go i acc =
    if i >= n then List.rev acc
    else if i + 3 > n then deny Violation.Ext "malformed extension block"
    else begin
      let argi = byte i and kind = byte (i + 1) and count = byte (i + 2) in
      match kind with
      | 1 ->
        let need = 8 * count in
        if i + 3 + need > n then deny Violation.Ext "malformed extension set";
        let vs =
          List.init count (fun k ->
              let base = i + 3 + (8 * k) in
              let v = ref 0 in
              for j = 7 downto 0 do
                v := (!v lsl 8) lor byte (base + j)
              done;
              !v)
        in
        go (i + 3 + need) ((argi, `Set vs) :: acc)
      | 2 ->
        if i + 3 + count > n then deny Violation.Ext "malformed extension pattern";
        go (i + 3 + count) ((argi, `Pattern (String.sub contents (i + 3) count)) :: acc)
      | k -> deny Violation.Ext "unknown extension kind %d" k
    end
  in
  go 0 []

let precomp_compile precomp ~pid ~call ~encoded ~mac =
  match precomp with
  | None -> ()
  | Some pc -> Precomp.compile pc ~pid ~call ~encoded ~mac

(* Step 3 slow path, byte-identical to the pre-cfpre checker: verify the
   predecessor-set authenticated string (vcache-aided), check the
   nonce-fresh lbMAC over the policy state, decide membership from the
   live set bytes, then advance the counter and rewrite lastBlock/lbMAC.
   A top-level function (not a per-call closure) so the steady-state fast
   path below allocates nothing for the code it skips. On full success the
   site's bitset is compiled so the next trap is one load+test. *)
let control_flow_slow ~m ~steps ~vcache ~cfpre ~key (p : Process.t) ~site
    ~(pred_ref : Encoded.as_ref) ~lbp ~block =
  let pred_contents =
    verify_as m steps Control_flow ~vcache ~pid:p.pid key pred_ref "predecessor set"
  in
  let last_block =
    match Machine.read_word m lbp with
    | Some v -> v
    | None -> deny Violation.Control_flow "policy state unreadable"
  in
  let lb_mac =
    match Machine.read_mem m ~addr:(lbp + 8) ~len:16 with
    | Some s -> s
    | None -> deny Violation.Control_flow "policy state MAC unreadable"
  in
  charge m steps Control_flow (Cost_model.mac_cost 16);
  let expect = Cmac.mac key (Encoded.state_bytes ~counter:p.counter ~last_block) in
  if not (Cmac.equal_tags expect lb_mac) then
    deny_mac Violation.Control_flow ~expected:expect ~got:lb_mac "policy state corrupted";
  if not (Encoded.predset_mem pred_contents last_block) then
    deny Violation.Control_flow
      "control-flow violation: block %d may not follow block %d" block last_block;
  (* update: counter++ in kernel space, lastBlock/lbMAC in the application *)
  p.counter <- p.counter + 1;
  charge m steps Control_flow (Cost_model.mac_cost 16);
  let new_mac = Cmac.mac key (Encoded.state_bytes ~counter:p.counter ~last_block:block) in
  if not (Machine.write_word m lbp block && Machine.write_mem m ~addr:(lbp + 8) new_mac)
  then deny Violation.Control_flow "policy state unwritable";
  (* the whole step just succeeded from the live bytes: compile the
     site's bitset so the next trap is one load+test *)
  match cfpre with
  | Some cf -> Cfpre.compile cf ~pid:p.pid ~site ~pred_ref ~contents:pred_contents
  | None -> ()

let pre ~kernel ~key ~normalize_paths ~vcache ~precomp ~cfpre ~cf_note ~steps (p : Process.t)
    ~site ~number =
  let m = p.machine in
  let r i = m.regs.(i) in
  (* --- step 1 (one alloc region): rebuild the encoded call and check the
     call MAC. The region returns the rebuilt references the later steps
     need, so their allocation is attributed here, where it happens. --- *)
  let reason, block, string_args, ext, control =
    step_region m steps Call_mac (fun () ->
      charge m steps Call_mac Cost_model.check_fixed;
      let descriptor = r 7 in
      if not (Descriptor.is_authenticated descriptor) then
        deny Violation.Unauthenticated "unauthenticated system call";
      let block = r 8 in
      let pred_ptr = r 9 and lb_ptr = r 10 and mac_ptr = r 11 and ext_ptr = r 14 in
      let const_args = List.map (fun i -> (i, r (i + 1))) (Descriptor.const_args descriptor) in
      let string_args =
        List.map
          (fun i -> (i, read_as_header m ~ptr:(r (i + 1)) (Printf.sprintf "argument %d" i)))
          (Descriptor.string_args descriptor)
      in
      let ext =
        if Descriptor.has_ext descriptor then Some (read_as_header m ~ptr:ext_ptr "extension block")
        else None
      in
      let control =
        if Descriptor.has_control_flow descriptor then
          Some (read_as_header m ~ptr:pred_ptr "predecessor set", lb_ptr)
        else None
      in
      let call =
        { Encoded.e_number = number;
          e_site = site;
          e_descriptor = descriptor;
          e_block = block;
          e_const_args = const_args;
          e_string_args = string_args;
          e_ext = ext;
          e_control = control }
      in
      let supplied = read_mac m mac_ptr in
      (* Step 1 resolution, reported as the call's telemetry reason code. The
         slow path (vcache probe, then full CMAC) is byte-identical to the
         pre-fast-path checker; [fb] remembers why an armed precomp table
         declined, so "the slow path verified it after a fallback" and "no
         precomp was armed at all" stay distinguishable in the ledger. *)
      let slow_path ~fb =
        let encoded = Encoded.encode call in
        (* sound to cache: [encoded] is the call MAC's exact input — trap number,
           site, descriptor, block id, constant args, string/ext/control
           references with their tags — so any tampered covered byte misses *)
        let call_key = Vcache.Call { pid = p.pid; site; encoded } in
        if cache_hit vcache call_key ~mac:supplied then begin
          charge_hit m steps Call_mac vcache ~len:(String.length encoded);
          precomp_compile precomp ~pid:p.pid ~call ~encoded ~mac:supplied;
          match fb with
          | Some f -> Asc_obs.Telemetry.Precomp_fallback f
          | None -> Asc_obs.Telemetry.Vcache_hit
        end
        else begin
          charge m steps Call_mac (Cost_model.mac_cost (String.length encoded));
          let call_mac = Cmac.mac key encoded in
          if not (Cmac.equal_tags call_mac supplied) then
            deny_mac Violation.Call_mac ~expected:call_mac ~got:supplied "call MAC mismatch";
          cache_remember vcache call_key ~mac:supplied;
          precomp_compile precomp ~pid:p.pid ~call ~encoded ~mac:supplied;
          match fb with
          | Some f -> Asc_obs.Telemetry.Precomp_fallback f
          | None -> Asc_obs.Telemetry.Slow_path
        end
      in
      let reason =
        match precomp with
        | None -> slow_path ~fb:None
        | Some pc ->
          (* Precompiled-site fast path (step 1 only): when the per-pid table
             proves the call MAC — by memo equality or by resuming the saved
             chaining state over the dynamic suffix — charge the precomp cost
             into the same call-MAC counter and skip both the encoded-string
             serialization and the vcache probe. Miss/Fallback charge nothing
             here; the slow path above decides. *)
          (match Precomp.check pc ~pid:p.pid ~call ~supplied with
           | Precomp.Hit { suffix_len; encoded_len } ->
             let cost = Cost_model.precomp_hit_cost suffix_len in
             charge m steps Call_mac cost;
             Precomp.note_saved pc (Cost_model.mac_cost encoded_len - cost);
             Asc_obs.Telemetry.Precomp_hit
           | Precomp.Resumed { suffix_len; encoded_len } ->
             let cost = Cost_model.precomp_lookup_cost + Cost_model.mac_resume_cost suffix_len in
             charge m steps Call_mac cost;
             Precomp.note_saved pc (Cost_model.mac_cost encoded_len - cost);
             Asc_obs.Telemetry.Precomp_resumed
           | Precomp.Miss -> slow_path ~fb:(Some Asc_obs.Telemetry.F_no_entry)
           | Precomp.Fallback Precomp.Statics_mismatch ->
             slow_path ~fb:(Some Asc_obs.Telemetry.F_statics)
           | Precomp.Fallback Precomp.Tag_mismatch ->
             slow_path ~fb:(Some Asc_obs.Telemetry.F_tag))
      in
      (reason, block, string_args, ext, control))
  in
  (* --- step 2: verify authenticated string contents --- *)
  let verified_strings =
    match string_args with
    | [] -> []
    | args ->
      step_region m steps String_mac (fun () ->
        List.map
          (fun (i, ar) ->
            (i, verify_as m steps String_mac ~vcache ~pid:p.pid key ar (Printf.sprintf "argument %d" i)))
          args)
  in
  let ext_contents =
    match ext with
    | None -> None
    | Some ar ->
      step_region m steps Ext (fun () ->
        Some (verify_as m steps Ext ~vcache ~pid:p.pid key ar "extension block"))
  in
  (* --- step 3: control-flow policy --- *)
  (match control with
   | None -> ()
   | Some (pred_ref, lbp) ->
     step_region m steps Control_flow (fun () ->
       (* The predecessor set is content-stable (cacheable like any
          authenticated string); the lbMAC below is nonce-fresh by design —
          the kernel-held counter changes every call — and is never cached.
          The match is deliberately flat (no intermediate option/tuple):
          the hit branch's whole host-allocation budget is Cfpre.check's
          probe plus one [read_word] option. *)
       match cfpre with
       | Some cf ->
         (match Cfpre.check cf ~m ~pid:p.pid ~site ~pred_ref with
          | Cfpre.Hit { entry; scratch = sc } ->
            (* Bitset fast path: the live reference and the live guest bytes
               equal the slow-path-verified ones (Cfpre.check just compared
               both), so the set's string MAC would necessarily verify — the
               predecessor check is one load+test in the compiled bitset. The
               lbMAC is still verified and rewritten fresh on this very call
               (§3.4 nonce-freshness is untouched); the per-pid chain scratch
               and single-block CMAC only amortize setup and allocation. *)
            cf_note := Asc_obs.Telemetry.Cf_hit;
            let len = Cfpre.contents_length entry in
            charge m steps Control_flow (Cost_model.cfpre_hit_cost len);
            if not (Machine.word_ok m lbp) then
              deny Violation.Control_flow "policy state unreadable";
            let last_block = Machine.word_at m lbp in
            if not (Machine.read_into m ~addr:(lbp + 8) ~buf:sc.Cfpre.ps_read ~pos:0 ~len:16)
            then deny Violation.Control_flow "policy state MAC unreadable";
            charge m steps Control_flow Cost_model.lbmac_chain_cost;
            Cfpre.state_into sc ~counter:p.counter ~last_block;
            Cmac.mac_block_into key sc.Cfpre.ps_state ~dst:sc.Cfpre.ps_tag;
            if not (Cmac.equal_tags_bytes sc.Cfpre.ps_tag sc.Cfpre.ps_read) then
              deny_mac Violation.Control_flow
                ~expected:(Bytes.to_string sc.Cfpre.ps_tag)
                ~got:(Bytes.to_string sc.Cfpre.ps_read)
                "policy state corrupted";
            if not (Cfpre.member entry last_block) then
              deny Violation.Control_flow
                "control-flow violation: block %d may not follow block %d" block last_block;
            (* update: counter++ in kernel space, lastBlock/lbMAC in the
               application *)
            p.counter <- p.counter + 1;
            charge m steps Control_flow Cost_model.lbmac_chain_cost;
            Cfpre.state_into sc ~counter:p.counter ~last_block:block;
            Cmac.mac_block_into key sc.Cfpre.ps_state ~dst:sc.Cfpre.ps_tag;
            if
              not
                (Machine.word_ok m lbp
                 && Machine.write_from m ~addr:(lbp + 8) ~buf:sc.Cfpre.ps_tag ~pos:0 ~len:16)
            then deny Violation.Control_flow "policy state unwritable";
            Machine.set_word m lbp block;
            Cfpre.note_saved cf
              (Cost_model.mac_cost len - Cost_model.cfpre_hit_cost len
               + (2 * (Cost_model.mac_cost 16 - Cost_model.lbmac_chain_cost)))
          | declined ->
            (match declined with
             | Cfpre.Miss -> cf_note := Asc_obs.Telemetry.Cf_slow
             | Cfpre.Fallback Cfpre.Ref_mismatch ->
               cf_note := Asc_obs.Telemetry.Cf_fallback_ref
             | Cfpre.Fallback Cfpre.Contents_mismatch ->
               cf_note := Asc_obs.Telemetry.Cf_fallback_contents
             | Cfpre.Hit _ -> ());
            control_flow_slow ~m ~steps ~vcache ~cfpre ~key p ~site ~pred_ref ~lbp ~block)
       | None -> control_flow_slow ~m ~steps ~vcache ~cfpre ~key p ~site ~pred_ref ~lbp ~block));
  (* --- §5 extensions: allowed-value sets and argument patterns --- *)
  (match ext_contents with
   | None -> ()
   | Some contents ->
     step_region m steps Ext (fun () ->
       List.iter
         (fun (argi, e) ->
           match e with
           | `Set vs ->
             if not (List.mem (r (argi + 1)) vs) then
               deny Violation.Ext "argument %d value %d not in allowed set" argi (r (argi + 1))
           | `Pattern pat ->
             (match Machine.read_cstring m ~addr:(r (argi + 1)) ~max:4096 with
              | None ->
                deny Violation.Pattern "argument %d: unreadable string for pattern check" argi
              | Some s ->
                (match Patterns.compile pat with
                 | Error e -> deny Violation.Pattern "argument %d: bad pattern (%s)" argi e
                 | Ok cp ->
                   charge m steps Ext (Patterns.match_cost cp s);
                   if not (Patterns.matches cp s) then
                     deny Violation.Pattern
                       "argument %d: %S does not match pattern %S" argi s pat)))
         (parse_ext contents)));
  (* --- §5.4: in-kernel file name normalization --- *)
  if normalize_paths then begin
    match Personality.sem_of kernel.Kernel.pers number with
    | None -> ()
    | Some sem ->
      let params = Array.of_list (Syscall_sig.params sem) in
      List.iter
        (fun (i, contents) ->
          if i < Array.length params && params.(i) = Syscall_sig.P_path then begin
            (* AS contents carry the NUL terminator; the pathname is the
               prefix up to it *)
            let path =
              match String.index_opt contents '\000' with
              | Some cut -> String.sub contents 0 cut
              | None -> contents
            in
            match Vfs.normalize kernel.Kernel.vfs ~cwd:p.cwd path with
            | Ok canon when canon <> path ->
              deny Violation.Normalization
                "path %S normalizes to %S (possible symlink attack)" path canon
            | Ok _ | Error _ -> ()
          end)
        verified_strings
  end;
  reason

let monitor ~kernel ~key ?(normalize_paths = false) ?vcache ?precomp ?cfpre () =
  let steps = steps_of kernel.Kernel.obs in
  (* lifecycle invalidation: execve replaces the image the cached
     verifications were performed against, and teardown frees the pid for
     reuse — both drop every entry the pid owns *)
  (match vcache with
   | Some vc ->
     Kernel.add_lifecycle_hook kernel (function
       | Kernel.Proc_spawn _ -> () (* a fresh pid was already invalidated at exit *)
       | Kernel.Proc_exec { pid } | Kernel.Proc_exit { pid } -> Vcache.invalidate_pid vc pid)
   | None -> ());
  (* the precompiled-site table is (re)built whenever a pid's image is
     established — spawn and execve — and dropped at teardown *)
  (match precomp with
   | Some pc ->
     Kernel.add_lifecycle_hook kernel (function
       | Kernel.Proc_spawn { pid } | Kernel.Proc_exec { pid } -> Precomp.prepare_pid pc pid
       | Kernel.Proc_exit { pid } -> Precomp.invalidate_pid pc pid)
   | None -> ());
  (* the control-flow bitset table shares Precomp's lifecycle: entries are
     image-specific, so exec rebuilds the pid's table and teardown drops it *)
  (match cfpre with
   | Some cf ->
     Kernel.add_lifecycle_hook kernel (function
       | Kernel.Proc_spawn { pid } | Kernel.Proc_exec { pid } -> Cfpre.prepare_pid cf pid
       | Kernel.Proc_exit { pid } -> Cfpre.invalidate_pid cf pid)
   | None -> ());
  (* one cell for the whole monitor (single-threaded kernel): reset per
     call, read by [finish] on the allow and deny paths alike — so the
     fast path allocates nothing to report its resolution *)
  let cf_note = ref Asc_obs.Telemetry.Cf_none in
  let telemetry = Kernel.telemetry kernel in
  { Kernel.monitor_name = "asc-checker";
    pre_syscall =
      (fun p ~site ~number ->
        let m = p.Process.machine in
        let shard = Asc_obs.Telemetry.shard telemetry ~pid:p.Process.pid in
        let total0 = Asc_obs.Metrics.counter_value steps.st_total in
        let alloc0 = Asc_obs.Profile.minor_words () in
        (* Exactly one reason code per monitored call — the exhaustiveness
           invariant the telemetry tests pin. The recording cost is charged
           to the machine (the kernel spends those cycles) but deliberately
           NOT to the checker.cycles.* step counters: the Table 4
           decomposition stays verification-only, and the plane's
           self-overhead meter is gauged against it. The same split holds
           for memory: [alloc] below is the words the verification itself
           allocated, while the plane's own recording allocation is
           measured separately into checker.alloc.telemetry. *)
        let telemetry_frame = Asc_obs.Profile.Label "<kernel:telemetry>" in
        let finish reason =
          let cycles = Asc_obs.Metrics.counter_value steps.st_total - total0 in
          let alloc = Asc_obs.Profile.minor_words () - alloc0 in
          m.Machine.cycles <- m.Machine.cycles + Cost_model.telemetry_record_cost;
          (match m.Machine.profile with
           | Some prof -> Asc_obs.Profile.enter prof telemetry_frame
           | None -> ());
          let ta0 = Asc_obs.Profile.minor_words () in
          (match m.Machine.profile with
           | Some prof -> Asc_obs.Profile.charge prof Cost_model.telemetry_record_cost
           | None -> ());
          Asc_obs.Telemetry.note_self telemetry shard Cost_model.telemetry_record_cost;
          let sem =
            match Personality.sem_of kernel.Kernel.pers number with
            | Some s -> Syscall.name s
            | None -> Printf.sprintf "syscall#%d" number
          in
          Asc_obs.Telemetry.record telemetry shard ~site ~sem ~reason ~cf:!cf_note ~cycles
            ~alloc ~now:m.Machine.cycles;
          let td = Asc_obs.Profile.minor_words () - ta0 in
          if td > 0 then Asc_obs.Metrics.add steps.sa_telemetry td;
          match m.Machine.profile with
          | Some prof -> Asc_obs.Profile.leave prof
          | None -> ()
        in
        cf_note := Asc_obs.Telemetry.Cf_none;
        match
          pre ~kernel ~key ~normalize_paths ~vcache ~precomp ~cfpre ~cf_note ~steps p ~site
            ~number
        with
        | reason ->
          finish reason;
          Asc_obs.Metrics.inc steps.st_checked;
          Kernel.Allow
        | exception Deny f ->
          finish (Asc_obs.Telemetry.Deny (Violation.step_name f.f_step));
          Kernel.Deny_violation
            { Violation.v_step = f.f_step;
              v_site = site;
              v_number = number;
              v_sem = None;
              v_reason = f.f_reason;
              v_expected_mac = f.f_expected;
              v_got_mac = f.f_got });
    post_syscall = Kernel.no_post }
