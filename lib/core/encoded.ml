type as_ref = {
  as_addr : int;
  as_len : int;
  as_mac : string;
}

type t = {
  e_number : int;
  e_site : int;
  e_descriptor : Descriptor.t;
  e_block : int;
  e_const_args : (int * int) list;
  e_string_args : (int * as_ref) list;
  e_ext : as_ref option;
  e_control : (as_ref * int) option;
}

let u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let u64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_as_ref buf r =
  if String.length r.as_mac <> 16 then invalid_arg "Encoded: string MAC must be 16 bytes";
  u32 buf r.as_addr;
  u32 buf r.as_len;
  Buffer.add_string buf r.as_mac

let encode e =
  let buf = Buffer.create 96 in
  u32 buf e.e_number;
  u32 buf e.e_site;
  u32 buf e.e_descriptor;
  u64 buf e.e_block;
  let const_idx = List.map fst e.e_const_args in
  if List.sort compare const_idx <> Descriptor.const_args e.e_descriptor then
    invalid_arg "Encoded: constant args disagree with descriptor";
  List.iter
    (fun (i, v) ->
      Buffer.add_char buf (Char.chr i);
      u64 buf v)
    (List.sort compare e.e_const_args);
  let str_idx = List.map fst e.e_string_args in
  if List.sort compare str_idx <> Descriptor.string_args e.e_descriptor then
    invalid_arg "Encoded: string args disagree with descriptor";
  List.iter
    (fun (i, r) ->
      Buffer.add_char buf (Char.chr i);
      add_as_ref buf r)
    (List.sort (fun (a, _) (b, _) -> compare a b) e.e_string_args);
  (match (Descriptor.has_ext e.e_descriptor, e.e_ext) with
   | true, Some r -> add_as_ref buf r
   | false, None -> ()
   | true, None | false, Some _ -> invalid_arg "Encoded: ext disagrees with descriptor");
  (match (Descriptor.has_control_flow e.e_descriptor, e.e_control) with
   | true, Some (r, lbptr) ->
     add_as_ref buf r;
     u32 buf lbptr
   | false, None -> ()
   | true, None | false, Some _ -> invalid_arg "Encoded: control flow disagrees with descriptor");
  Buffer.contents buf

let static_prefix_len = 16

type dyn_field =
  | D_const of { d_off : int; d_arg : int }
  | D_string of { d_off : int; d_arg : int }
  | D_ext of { d_off : int }
  | D_control of { d_off : int }

(* Walk [encode]'s layout without serializing: the fixed header is 20 bytes
   (u32 number/site/descriptor + u64 block), then 1+8 bytes per constant
   argument, 1+24 per string argument, 24 for the extension reference and
   24+4 for the control-flow reference. For const/string fields the offset
   points past the u8 index byte at the dynamic payload itself — the index
   bytes, like the field order, are functions of the descriptor alone. *)
let dyn_fields descriptor =
  let off = ref 20 in
  let fields = ref [] in
  List.iter
    (fun i ->
      fields := D_const { d_off = !off + 1; d_arg = i } :: !fields;
      off := !off + 9)
    (Descriptor.const_args descriptor);
  List.iter
    (fun i ->
      fields := D_string { d_off = !off + 1; d_arg = i } :: !fields;
      off := !off + 25)
    (Descriptor.string_args descriptor);
  if Descriptor.has_ext descriptor then begin
    fields := D_ext { d_off = !off } :: !fields;
    off := !off + 24
  end;
  if Descriptor.has_control_flow descriptor then begin
    fields := D_control { d_off = !off } :: !fields;
    off := !off + 28
  end;
  List.rev !fields

let encoded_length descriptor =
  20
  + (9 * List.length (Descriptor.const_args descriptor))
  + (25 * List.length (Descriptor.string_args descriptor))
  + (if Descriptor.has_ext descriptor then 24 else 0)
  + if Descriptor.has_control_flow descriptor then 28 else 0

let set_u32 b ~pos v =
  for i = 0 to 3 do
    Bytes.set b (pos + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let set_u64 b ~pos v =
  for i = 0 to 7 do
    Bytes.set b (pos + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let set_as_ref b ~pos r =
  if String.length r.as_mac <> 16 then invalid_arg "Encoded: string MAC must be 16 bytes";
  set_u32 b ~pos r.as_addr;
  set_u32 b ~pos:(pos + 4) r.as_len;
  Bytes.blit_string r.as_mac 0 b (pos + 8) 16

let predset_contents preds =
  let preds = List.sort_uniq compare preds in
  let buf = Buffer.create (8 * List.length preds) in
  List.iter (u64 buf) preds;
  Buffer.contents buf

let predset_mem contents bid =
  let n = String.length contents / 8 in
  let rec go i =
    if i >= n then false
    else begin
      let v = ref 0 in
      for k = 7 downto 0 do
        v := (!v lsl 8) lor Char.code contents.[(8 * i) + k]
      done;
      !v = bid || go (i + 1)
    end
  in
  go 0

let state_bytes ~counter ~last_block =
  let buf = Buffer.create 16 in
  u64 buf counter;
  u64 buf last_block;
  Buffer.contents buf
