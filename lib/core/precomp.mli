(** Per-pid, site-indexed precompiled policy verification state — the
    exec-time fast path in front of the call-MAC check.

    The vcache ({!Vcache}) removes repeated CMAC computations but still
    pays, on every trap, for serializing the encoded call and hashing it
    as the cache key. This table moves that work to (at most) once per
    call site: the pid's table is created when the image is established
    ([Proc_spawn]/[Proc_exec]), and the first successful slow-path
    verification at a site {e compiles} an entry holding

    - the full verified call and its supplied tag (the memo),
    - the encoded string's dynamic-field offset map
      ({!Encoded.dyn_fields}) and its suffix bytes (the template),
    - a saved CMAC chaining state ({!Asc_crypto.Cmac.Streaming}) over the
      16-byte static prefix ({!Encoded.static_prefix_len}).

    On later traps {!check} compares the structural statics (number, site,
    descriptor, block id — which pin the whole static prefix and every
    template byte outside the dynamic payloads) and then either

    - {b memo hit}: every dynamic field and the supplied tag equal the
      memo — the verification is the same byte string as the compiled one,
      no MAC work at all; or
    - {b resume}: some dynamic field changed — patch the template at the
      precompiled offsets (reproducing [Encoded.encode] of the live call
      from byte 16 on) and resume the saved chaining state over the
      suffix, paying AES only for the suffix blocks. Success moves the
      memo to the new call.

    Anything else — no entry, structural mismatch, tag mismatch — is a
    {!constructor-Fallback}: the caller runs the unchanged slow path
    (composing with the vcache), so denies are byte-identical with the
    table on or off. Entries are only ever created from successful
    verifications; a failed resume remembers nothing.

    Counters/gauges are published in the registry passed at creation:
    [precomp.hits], [precomp.resumes], [precomp.misses],
    [precomp.fallbacks], [precomp.compiles], [precomp.invalidations],
    [precomp.size], [precomp.cycles_saved]. *)

type t

val create :
  ?max_sites:int -> key:Asc_crypto.Cmac.key -> registry:Asc_obs.Metrics.registry -> unit -> t
(** [max_sites] (default 4096, must be ≥ 1) bounds the compiled entries
    per pid; sites beyond the bound simply keep taking the slow path.
    [key] must be the checker's verification key — the saved chaining
    states are key-specific. *)

(** Why a compiled entry declined to decide — surfaced so the telemetry
    plane can distinguish "the site's structure changed" from "the tag
    didn't verify" in its fallback rollups. *)
type fallback_cause =
  | Statics_mismatch  (** number/site/descriptor/block differ from the
                          compiled statics (also covers a malformed
                          argument list during field comparison) *)
  | Tag_mismatch      (** the resumed MAC did not match the supplied tag *)

(** What {!check} proved, and what the checker should charge:
    [Hit]/[Resumed] mean the call MAC is verified (charge
    [Svm.Cost_model.precomp_hit_cost suffix_len], respectively
    [precomp_lookup_cost + mac_resume_cost suffix_len]); [Miss]/[Fallback]
    mean nothing was proved and nothing was charged — run the slow path. *)
type verdict =
  | Miss       (** no compiled entry for (pid, site) *)
  | Hit of { suffix_len : int; encoded_len : int }
  | Resumed of { suffix_len : int; encoded_len : int }
  | Fallback of fallback_cause
      (** structural or tag mismatch — slow path decides *)

val check : t -> pid:int -> call:Encoded.t -> supplied:string -> verdict

val compile : t -> pid:int -> call:Encoded.t -> encoded:string -> mac:string -> unit
(** Compile a site entry from a verification that just succeeded on the
    slow path: [encoded] = [Encoded.encode call], [mac] = the supplied tag
    that matched. First writer wins (the statics are site-fixed, so
    recompiling would store the same prefix state); bounded by
    [max_sites]. Never call this on a failed comparison. *)

val prepare_pid : t -> int -> unit
(** Establish a fresh, empty site table for [pid], dropping anything an
    earlier image compiled — called on [Proc_spawn] and [Proc_exec]. *)

val invalidate_pid : t -> int -> unit
(** Drop every entry owned by [pid] — called on process teardown. *)

val clear : t -> unit
(** Drop everything (counted as invalidations). *)

val note_saved : t -> int -> unit
(** Credit [n] modeled cycles to the cycles-saved gauge (slow-path MAC
    cost minus the fast-path charge, accounted by the checker). *)

val max_sites : t -> int
val size : t -> int
val hits : t -> int
val resumes : t -> int
val misses : t -> int
val fallbacks : t -> int
val compiles : t -> int
val invalidations : t -> int
val cycles_saved : t -> int
