(* Bounded LRU cache of *successful* MAC verifications.

   Soundness rests on the key: an entry is (key material, supplied MAC)
   where the key material contains every byte the MAC computation covered
   — the full encoded call for call MACs, the full contents for
   authenticated strings — plus the owning pid for lifecycle isolation.
   A hit therefore proves "CMAC(k, bytes) = mac was checked before for
   exactly these bytes", so replaying the comparison is redundant; any
   tampering with the covered bytes or the tag changes the key and misses.
   Only successful verifications are remembered: the deny path always
   recomputes, so denials are byte-identical with the cache on or off. *)

type key =
  | Call of { pid : int; site : int; encoded : string }
  | Str of { pid : int; bytes : string }

type entry = {
  e_key : key;
  e_mac : string;
}

(* intrusive doubly-linked LRU list; head = most recently used *)
type node = {
  n_entry : entry;
  mutable n_prev : node option;
  mutable n_next : node option;
}

type t = {
  capacity : int;
  tbl : (entry, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable saved : int;
  ctr_hits : Asc_obs.Metrics.counter;
  ctr_misses : Asc_obs.Metrics.counter;
  ctr_evictions : Asc_obs.Metrics.counter;
  ctr_invalidations : Asc_obs.Metrics.counter;
  g_size : Asc_obs.Metrics.gauge;
  g_saved : Asc_obs.Metrics.gauge;
}

let create ?(capacity = 1024) ~registry () =
  if capacity < 1 then invalid_arg "Vcache.create: capacity must be >= 1";
  { capacity;
    tbl = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    saved = 0;
    ctr_hits = Asc_obs.Metrics.counter registry "vcache.hits" ~help:"verified-MAC cache hits";
    ctr_misses = Asc_obs.Metrics.counter registry "vcache.misses";
    ctr_evictions = Asc_obs.Metrics.counter registry "vcache.evictions";
    ctr_invalidations =
      Asc_obs.Metrics.counter registry "vcache.invalidations"
        ~help:"entries dropped on execve / process teardown";
    g_size = Asc_obs.Metrics.gauge registry "vcache.size";
    g_saved =
      Asc_obs.Metrics.gauge registry "vcache.cycles_saved"
        ~help:"modeled CMAC cycles skipped by cache hits" }

let capacity t = t.capacity
let size t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let invalidations t = t.invalidations
let cycles_saved t = t.saved

let unlink t n =
  (match n.n_prev with Some p -> p.n_next <- n.n_next | None -> t.head <- n.n_next);
  (match n.n_next with Some s -> s.n_prev <- n.n_prev | None -> t.tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front t n =
  n.n_next <- t.head;
  (match t.head with Some h -> h.n_prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let set_size t = Asc_obs.Metrics.set t.g_size (Hashtbl.length t.tbl)

let check t key ~mac =
  match Hashtbl.find_opt t.tbl { e_key = key; e_mac = mac } with
  | Some n ->
    unlink t n;
    push_front t n;
    t.hits <- t.hits + 1;
    Asc_obs.Metrics.inc t.ctr_hits;
    true
  | None ->
    t.misses <- t.misses + 1;
    Asc_obs.Metrics.inc t.ctr_misses;
    false

let remember t key ~mac =
  let e = { e_key = key; e_mac = mac } in
  if not (Hashtbl.mem t.tbl e) then begin
    if Hashtbl.length t.tbl >= t.capacity then begin
      match t.tail with
      | Some lru ->
        unlink t lru;
        Hashtbl.remove t.tbl lru.n_entry;
        t.evictions <- t.evictions + 1;
        Asc_obs.Metrics.inc t.ctr_evictions
      | None -> ()
    end;
    let n = { n_entry = e; n_prev = None; n_next = None } in
    push_front t n;
    Hashtbl.replace t.tbl e n;
    set_size t
  end

let note_saved t n =
  t.saved <- t.saved + n;
  Asc_obs.Metrics.set t.g_saved t.saved

let pid_of = function
  | Call { pid; _ } -> pid
  | Str { pid; _ } -> pid

let invalidate_pid t pid =
  let doomed =
    Hashtbl.fold
      (fun e n acc -> if pid_of e.e_key = pid then (e, n) :: acc else acc)
      t.tbl []
  in
  List.iter
    (fun (e, n) ->
      unlink t n;
      Hashtbl.remove t.tbl e;
      t.invalidations <- t.invalidations + 1;
      Asc_obs.Metrics.inc t.ctr_invalidations)
    doomed;
  set_size t

let clear t =
  let n = Hashtbl.length t.tbl in
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.invalidations <- t.invalidations + n;
  Asc_obs.Metrics.add t.ctr_invalidations n;
  set_size t
