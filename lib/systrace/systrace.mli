(** The Systrace-style baseline monitor (Provos, USENIX Security 2003),
    reproduced for the policy-comparison experiments (Tables 1–2) and the
    user-space-daemon cost ablation.

    Policies are produced by {e training}: the application is run under a
    tracer on sample inputs and every observed operation becomes a permit
    rule. As in the published Project Hairy Eyeball policies, filesystem
    reads and writes are then hand-generalized to the [fsread] / [fswrite]
    aliases, which implicitly grant {e every} member of those sets —
    including calls the application never makes (Table 2's mkdir /
    readlink / rmdir / unlink rows).

    Enforcement runs in a user-space policy daemon, so every checked call
    pays two context switches ({!Svm.Cost_model.context_switch}) — the cost
    structure the paper contrasts with in-kernel authenticated checking. *)

type policy = {
  named : Oskernel.Syscall.Set.t;  (** operations observed during training *)
  use_aliases : bool;              (** fsread/fswrite hand-edit applied *)
}

val fsread_sems : Oskernel.Syscall.sem list
(** Read-related filesystem calls covered by the [fsread] alias. *)

val fswrite_sems : Oskernel.Syscall.sem list
(** Write-related filesystem calls covered by the [fswrite] alias. *)

val train :
  personality:Oskernel.Personality.t ->
  image:Svm.Obj_file.t ->
  runs:(Oskernel.Kernel.t -> unit) list ->
  stdins:string list ->
  use_aliases:bool ->
  policy
(** Run the program once per setup/stdin pair under the tracer and collect
    the observed operations. *)

val granted : policy -> Oskernel.Syscall.Set.t
(** Everything the policy permits: the named set plus, with aliases, the
    full fsread/fswrite sets. *)

val named_rule_count : policy -> int
(** Number of rules as a published policy would list them: named non-alias
    operations, with the alias-covered ones collapsed into the two alias
    rules (Table 1's Systrace column counts these). *)

val monitor :
  personality:Oskernel.Personality.t -> policy -> Oskernel.Kernel.monitor
(** User-space enforcement of the trained policy. Each checked call also
    adds 2 to the process-wide [systrace.context_switches] counter in
    [Asc_obs.Metrics.default]. *)

val pp_policy : Format.formatter -> policy -> unit
