open Oskernel

type policy = {
  named : Syscall.Set.t;
  use_aliases : bool;
}

let fsread_sems =
  [ Syscall.Open; Syscall.Read; Syscall.Stat; Syscall.Fstat; Syscall.Access;
    Syscall.Readlink; Syscall.Getdirentries; Syscall.Lseek ]

let fswrite_sems =
  [ Syscall.Write; Syscall.Mkdir; Syscall.Rmdir; Syscall.Unlink; Syscall.Rename;
    Syscall.Symlink; Syscall.Chmod ]

let train ~personality ~image ~runs ~stdins ~use_aliases =
  let observed = ref Syscall.Set.empty in
  let pairs =
    match (runs, stdins) with
    | [], [] -> [ ((fun (_ : Kernel.t) -> ()), "") ]
    | rs, ss ->
      let n = max (List.length rs) (List.length ss) in
      List.init n (fun i ->
          ( (try List.nth rs i with _ -> fun (_ : Kernel.t) -> ()),
            try List.nth ss i with _ -> "" ))
  in
  List.iter
    (fun (setup, stdin) ->
      let kernel = Kernel.create ~personality () in
      setup kernel;
      kernel.Kernel.tracing <- true;
      let proc = Kernel.spawn kernel ~stdin ~program:"train" image in
      ignore (Kernel.run kernel proc ~max_cycles:500_000_000);
      List.iter
        (fun t ->
          match t.Kernel.t_sem with
          | Some s -> observed := Syscall.Set.add s !observed
          | None -> ())
        (Kernel.trace kernel))
    pairs;
  { named = !observed; use_aliases }

let granted p =
  if not p.use_aliases then p.named
  else
    List.fold_left
      (fun acc s -> Syscall.Set.add s acc)
      p.named (fsread_sems @ fswrite_sems)

let named_rule_count p =
  if not p.use_aliases then Syscall.Set.cardinal p.named
  else begin
    let aliased = Syscall.Set.of_list (fsread_sems @ fswrite_sems) in
    let plain = Syscall.Set.diff p.named aliased in
    (* the policy file lists the plain rules plus the two alias rules *)
    Syscall.Set.cardinal plain + 2
  end

let ctr_switches =
  Asc_obs.Metrics.counter Asc_obs.Metrics.default "systrace.context_switches"

let monitor ~personality p =
  let allowed = granted p in
  { Kernel.monitor_name = "systrace";
    pre_syscall =
      (fun proc ~site:_ ~number ->
        let m = proc.Process.machine in
        (* user-space daemon: switch to the monitor process and back *)
        Asc_obs.Metrics.add ctr_switches 2;
        let cost = 2 * Svm.Cost_model.context_switch in
        m.Svm.Machine.cycles <- m.Svm.Machine.cycles + cost;
        (match m.Svm.Machine.profile with
         | Some prof -> Asc_obs.Profile.charge_label prof "<kernel:context_switch>" cost
         | None -> ());
        let sem =
          match Personality.sem_of personality number with
          | Some Syscall.Indirect ->
            Personality.indirect_target personality m.Svm.Machine.regs.(1)
          | other -> other
        in
        match sem with
        | Some s when Syscall.Set.mem s allowed -> Kernel.Allow
        | Some s -> Kernel.Deny (Printf.sprintf "systrace: %s not permitted" (Syscall.name s))
        | None -> Kernel.Deny (Printf.sprintf "systrace: unknown syscall %d" number));
    post_syscall = Kernel.no_post }

let pp_policy ppf p =
  Format.fprintf ppf "policy (%d rules%s):@\n" (named_rule_count p)
    (if p.use_aliases then ", fsread/fswrite" else "");
  Syscall.Set.iter (fun s -> Format.fprintf ppf "  permit %s@\n" (Syscall.name s)) p.named
