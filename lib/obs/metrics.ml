type counter = { mutable c_value : int }
type gauge = { mutable g_value : int }

type histogram = {
  bounds : int array;        (* inclusive upper bounds, strictly increasing *)
  counts : int array;        (* length = Array.length bounds + 1; last = overflow *)
  mutable h_sum : int;
  mutable h_count : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type registered = {
  r_instrument : instrument;
  r_help : string;
}

type registry = { tbl : (string, registered) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let default = create ()

let default_buckets = [ 100; 300; 1_000; 3_000; 10_000; 30_000; 100_000; 300_000; 1_000_000 ]

(* Log-linear bounds (HDR-histogram style): within each decade [d, 10d)
   the bounds are the multiples of d, so the bucket containing a value v
   is never wider than the decade-leading digit allows — the width of the
   bucket (k*d, (k+1)*d] is d <= v, which is what makes the quantile
   estimator's error provably at most one bucket width. *)
let log_linear_buckets ~lo ~hi =
  if lo < 1 then invalid_arg "Metrics.log_linear_buckets: lo must be >= 1";
  if hi <= lo then invalid_arg "Metrics.log_linear_buckets: hi must exceed lo";
  (* first decade at or below lo *)
  let d = ref 1 in
  while !d * 10 <= lo do
    d := !d * 10
  done;
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    for k = 1 to 9 do
      let b = k * !d in
      if b >= lo && b < hi && (match !acc with x :: _ -> b > x | [] -> true) then
        acc := b :: !acc
    done;
    if !d > hi / 10 then continue := false else d := !d * 10
  done;
  List.rev (hi :: !acc)

let register registry name help make same =
  match Hashtbl.find_opt registry.tbl name with
  | Some { r_instrument; _ } ->
    (match same r_instrument with
     | Some x -> x
     | None -> invalid_arg (Printf.sprintf "Metrics: %S already registered as another kind" name))
  | None ->
    let x, instrument = make () in
    Hashtbl.replace registry.tbl name { r_instrument = instrument; r_help = help };
    x

let counter ?(help = "") registry name =
  register registry name help
    (fun () ->
      let c = { c_value = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge ?(help = "") registry name =
  register registry name help
    (fun () ->
      let g = { g_value = 0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let histogram ?(help = "") ?(buckets = default_buckets) registry name =
  let bounds = Array.of_list buckets in
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty buckets";
  Array.iteri
    (fun i b -> if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    bounds;
  register registry name help
    (fun () ->
      let h = { bounds; counts = Array.make (Array.length bounds + 1) 0; h_sum = 0; h_count = 0 } in
      (h, Histogram h))
    (function
      | Histogram h when h.bounds = bounds -> Some h
      | Histogram _ ->
        invalid_arg (Printf.sprintf "Metrics: histogram %S re-registered with different buckets" name)
      | _ -> None)

let inc c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let set g v = g.g_value <- v

let observe h v =
  (* linear scan: bucket arrays are small (~10) and fixed, and the common
     case (cheap syscalls) exits in the first few probes *)
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  h.counts.(slot 0) <- h.counts.(slot 0) + 1;
  h.h_sum <- h.h_sum + v;
  h.h_count <- h.h_count + 1

let counter_value c = c.c_value
let gauge_value g = g.g_value

type histogram_snapshot = {
  h_buckets : (int * int) list;
  h_overflow : int;
  h_count : int;
  h_sum : int;
}

let histogram_value h =
  { h_buckets = Array.to_list (Array.mapi (fun i b -> (b, h.counts.(i))) h.bounds);
    h_overflow = h.counts.(Array.length h.bounds);
    h_count = h.h_count;
    h_sum = h.h_sum }

(* Estimate the q-quantile from bucket counts: find the bucket holding the
   ceil(q*count)-th smallest observation and interpolate linearly inside
   it. The true observation lies in the same (lower, upper] interval as
   the estimate, so the absolute error is bounded by that bucket's width —
   with log-linear bounds, a bounded *relative* error. Observations above
   the last bound cannot be located; the last bound is returned (a
   documented underestimate). *)
let quantile snap q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Metrics.quantile: q outside [0,1]";
  if snap.h_count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int snap.h_count)) in
      if r < 1 then 1 else if r > snap.h_count then snap.h_count else r
    in
    let rec walk lower cum = function
      | [] ->
        (* rank falls in the overflow bucket: clamp to the last bound *)
        lower
      | (upper, c) :: rest ->
        if c > 0 && cum + c >= rank then begin
          let pos = float_of_int (rank - cum) /. float_of_int c in
          lower + int_of_float (ceil (pos *. float_of_int (upper - lower)))
        end
        else walk upper (cum + c) rest
    in
    walk 0 0 snap.h_buckets
  end

let value registry name =
  match Hashtbl.find_opt registry.tbl name with
  | Some { r_instrument = Counter c; _ } -> Some c.c_value
  | Some { r_instrument = Gauge g; _ } -> Some g.g_value
  | Some { r_instrument = Histogram _; _ } | None -> None

let sorted registry =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry.tbl [])

let names registry = List.map fst (sorted registry)

let reset registry =
  Hashtbl.iter
    (fun _ { r_instrument; _ } ->
      match r_instrument with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0
      | Histogram h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.h_sum <- 0;
        h.h_count <- 0)
    registry.tbl

let instrument_json name { r_instrument; r_help } =
  let base kind rest =
    Json.Obj
      (("name", Json.Str name) :: ("kind", Json.Str kind)
       :: (if r_help = "" then rest else ("help", Json.Str r_help) :: rest))
  in
  match r_instrument with
  | Counter c -> base "counter" [ ("value", Json.Int c.c_value) ]
  | Gauge g -> base "gauge" [ ("value", Json.Int g.g_value) ]
  | Histogram h ->
    let snap = histogram_value h in
    base "histogram"
      [ ("count", Json.Int snap.h_count);
        ("sum", Json.Int snap.h_sum);
        ( "buckets",
          Json.List
            (List.map
               (fun (le, n) -> Json.Obj [ ("le", Json.Int le); ("count", Json.Int n) ])
               snap.h_buckets) );
        ("overflow", Json.Int snap.h_overflow) ]

let to_json registry =
  Json.List (List.map (fun (name, r) -> instrument_json name r) (sorted registry))

let pp_summary ppf registry =
  List.iter
    (fun (name, { r_instrument; _ }) ->
      match r_instrument with
      | Counter c -> Format.fprintf ppf "%-40s %12d@." name c.c_value
      | Gauge g -> Format.fprintf ppf "%-40s %12d (gauge)@." name g.g_value
      | Histogram h ->
        if h.h_count = 0 then Format.fprintf ppf "%-40s (no observations)@." name
        else
          Format.fprintf ppf "%-40s %12d obs, sum %d, mean %d@." name h.h_count h.h_sum
            (h.h_sum / h.h_count))
    (sorted registry)
