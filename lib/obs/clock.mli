(** A deterministic logical clock for span timestamps.

    Traces must be reproducible run-to-run (the whole evaluation rests on
    the deterministic cycle model), so spans are never stamped from the
    wall clock. Layers with a natural time base use it directly — the
    kernel stamps spans with the machine's cycle counter — and layers
    without one (the installer pipeline) advance one of these step clocks
    by an explicit work measure per phase. *)

type t

val create : ?start:int -> unit -> t
(** Default [start] is 0. *)

val now : t -> int
val advance : t -> int -> unit
val tick : t -> unit
(** [advance t 1]. *)
