(** A minimal JSON tree, emitter and parser.

    The observability layer needs machine-readable output (Chrome
    trace-event files, JSON-lines event logs, benchmark artifacts) and the
    tests need to re-parse what was emitted, but the container pins the
    dependency set — so this is a small self-contained implementation
    rather than a new dependency. Integers are kept exact (cycle counts
    routinely exceed 2^53 semantics mattering is unlikely, but exactness is
    free here); floats are only produced when a document contains a
    fraction or exponent. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping. *)

val to_buffer : Buffer.t -> t -> unit

val pp : Format.formatter -> t -> unit
(** Indented rendering for humans. *)

val parse : string -> (t, string) result
(** Strict parser for the grammar emitted by {!to_string} (standard JSON:
    objects, arrays, strings with escapes including [\uXXXX], numbers,
    booleans, null). Errors carry a byte offset. *)

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
