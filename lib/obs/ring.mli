(** A bounded ring buffer.

    Replaces the kernel's previously unbounded trace and audit lists: long
    Andrew or scale runs push millions of entries, so retention is capped
    at a fixed capacity while [pushed] keeps the exact total for counting.
    Push is O(1) and allocation-free after creation. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Appends, evicting the oldest element when full. *)

val length : 'a t -> int
(** Elements currently retained ([<= capacity]). *)

val pushed : 'a t -> int
(** Total elements ever pushed (never decreases, survives eviction;
    {!clear} resets it). *)

val dropped : 'a t -> int
(** [pushed - length]: elements lost to eviction since the last clear. *)

val peek_oldest : 'a t -> 'a option
(** The element eviction would discard next; [None] when empty. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Oldest first. *)
