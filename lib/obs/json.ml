type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ----- emission ----- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f ->
    let buf = Buffer.create 24 in
    add_float buf f;
    Format.pp_print_string ppf (Buffer.contents buf)
  | Str s ->
    let buf = Buffer.create (String.length s + 2) in
    add_escaped buf s;
    Format.pp_print_string ppf (Buffer.contents buf)
  | List [] -> Format.pp_print_string ppf "[]"
  | List items ->
    Format.fprintf ppf "@[<v 2>[@,%a@]@,]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") pp)
      items
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
    let field ppf (k, v) =
      let buf = Buffer.create (String.length k + 2) in
      add_escaped buf k;
      Format.fprintf ppf "@[<hov 2>%s:@ %a@]" (Buffer.contents buf) pp v
    in
    Format.fprintf ppf "@[<v 2>{@,%a@]@,}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") field)
      fields

(* ----- parsing ----- *)

exception Parse_error of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub input !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
         | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
         | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
         | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
         | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
         | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
         | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
         | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
         | Some 'u' ->
           advance ();
           add_utf8 buf (parse_hex4 ());
           go ()
         | _ -> fail "bad escape")
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
        advance ();
        digits ()
      | _ -> ()
    in
    (* the integer part: a lone 0, or a nonzero digit followed by more —
       JSON forbids leading zeros *)
    (match peek () with
     | Some '0' -> advance ()
     | Some ('1' .. '9') -> digits ()
     | _ -> fail "bad number");
    (match peek () with
     | Some ('0' .. '9') -> fail "leading zero in number"
     | _ -> ());
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let s = String.sub input start (!pos - start) in
    if !is_float then
      match float_of_string_opt s with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None ->
        (match float_of_string_opt s with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

(* ----- accessors ----- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
