type t = { mutable now : int }

let create ?(start = 0) () = { now = start }
let now t = t.now
let advance t n = t.now <- t.now + n
let tick t = advance t 1
