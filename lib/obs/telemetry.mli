(** The fleet telemetry plane: sharded per-pid verification statistics,
    the fast-path decision ledger, and periodic time-series snapshots.

    Every monitored system call resolves its call-MAC verification through
    exactly one of the fast/slow paths, or is denied. The checker reports
    that resolution here as a compact {!reason} code, together with the
    call's site and its modeled verification cycles. The plane keeps the
    data {e sharded by pid} — each process owns its shard and only its
    shard is touched on the trap path — so aggregation is a read-side walk
    over shards ({!aggregate}) built on an explicit, order-insensitive,
    count-conserving {!merge}. This is exactly the state layout a
    multi-domain fleet kernel needs: writers never share a shard, and the
    reader merges immutable {!stats} snapshots.

    {b Exhaustiveness invariant}: for a kernel whose monitor records from
    the first trap on, the sum of all reason counts in {!aggregate} equals
    the number of monitored calls (every trap records exactly one code —
    the tests and the [BENCH_telemetry] gate assert this).

    {b Self-overhead}: recording is not free. The checker charges
    [Svm.Cost_model.telemetry_record_cost] modeled cycles per recorded
    call and reports the charge via [~self]; the plane accumulates it so
    the observability overhead itself is observable (and gated, at <1% of
    verification cycles, by [BENCH_telemetry.json]). *)

(** Why a precompiled-site table consulted on the trap did not decide the
    call (the slow path — vcache or full CMAC — then verified it). *)
type fallback =
  | F_no_entry  (** no compiled entry for the site (first visit, or past
                    the [max_sites] bound) *)
  | F_statics   (** a structural field changed: number, descriptor, block
                    id or argument shape *)
  | F_tag       (** the resumed MAC did not match the supplied tag (the
                    slow path re-checks and decides the deny) *)

(** How a monitored call's verification was resolved — exactly one code
    per call. *)
type reason =
  | Precomp_hit               (** precompiled-site memo equality *)
  | Precomp_resumed           (** streaming-CMAC resume over the suffix *)
  | Precomp_fallback of fallback
      (** a precomp table was armed but did not decide; the slow path
          (vcache or CMAC) verified the call *)
  | Vcache_hit                (** no precomp armed; verified-MAC cache hit
                                  on the call MAC *)
  | Slow_path                 (** full CMAC recomputation *)
  | Deny of string            (** the call was denied; payload is the
                                  violation step name *)

val num_reasons : int
(** Number of distinct reason buckets (fallback causes counted
    separately, all [Deny] steps folded into one bucket). *)

val reason_index : reason -> int
(** Stable index in [0, num_reasons): the per-shard and per-site count
    arrays are indexed by it. *)

val reason_label : reason -> string
(** Short machine-stable label ([precomp_hit], [fallback_no_entry],
    [deny], ...). *)

val reason_labels : string array
(** Labels by {!reason_index} — the exhaustive bucket list, used by the
    exporters and the schema self-checks. *)

(** How a monitored call's control-flow step (predecessor check + lbMAC
    update) was resolved — the second exhaustive per-call dimension,
    orthogonal to {!reason} (which reports the call-MAC resolution).
    Exactly one code per call. *)
type cf_reason =
  | Cf_none               (** no control-flow policy on the call, or no
                              cfpre table armed *)
  | Cf_hit                (** precompiled bitset decided the predecessor
                              check; lbMAC refreshed via the amortized
                              chain *)
  | Cf_slow               (** cfpre armed but no compiled entry for the
                              site — full slow-path step 3 (which may then
                              compile one) *)
  | Cf_fallback_ref       (** the live predecessor reference differs from
                              the compiled one; slow path decided *)
  | Cf_fallback_contents  (** the reference matched but the guest bytes
                              changed; slow path decided (and denies) *)

val num_cf_reasons : int

val cf_index : cf_reason -> int
(** Stable index in [0, num_cf_reasons). *)

val cf_label : cf_reason -> string

val cf_labels : string array
(** Labels by {!cf_index} ([cf_none], [cf_hit], ...). *)

(** {1 The plane and its shards} *)

type t
type shard

type ledger_entry = {
  le_site : int;
  le_sem : string;            (** resolved syscall name, or [syscall#N] *)
  le_reason : reason;
  le_cycles : int;            (** modeled verification cycles of the call *)
  le_alloc : int;             (** host minor words the verification allocated *)
  le_ts : int;                (** machine cycle timestamp *)
}

val create : ?ring_capacity:int -> ?buckets:int list -> ?alloc_buckets:int list -> unit -> t
(** [ring_capacity] (default 256) bounds each pid's decision ledger;
    [buckets] (default [Metrics.log_linear_buckets ~lo:100 ~hi:1_000_000])
    are the shared bounds of every per-syscall verification-cycles
    histogram — shared so shard merge is element-wise. [alloc_buckets]
    (default [log_linear_buckets ~lo:10 ~hi:1_000_000]) are the separate
    bounds of the per-call minor-words histograms, scaled down because a
    verified call allocates orders of magnitude fewer words than it
    spends cycles. *)

val shard : t -> pid:int -> shard
(** The pid's live shard, created on first use (the kernel calls this
    from [spawn]). *)

val record :
  t -> ?cf:cf_reason -> shard -> site:int -> sem:string -> reason:reason -> cycles:int ->
  alloc:int -> now:int -> unit
(** The hot-path write: bump the shard's reason/site/syscall statistics
    and alloc rollups ([alloc] = host minor words the call's verification
    allocated), append to its ledger ring, and (when an emitter is armed)
    cut a snapshot if [now] crossed the emission interval. Touches only
    the one shard plus plane-global counters. *)

val note_self : t -> shard -> int -> unit
(** Account [n] modeled cycles of telemetry self-overhead (the
    [telemetry_record_cost] the checker charged to the machine). *)

val retire_pid : t -> pid:int -> unit
(** Fold the pid's live shard into the plane's retired aggregate and drop
    it (called at process teardown). Aggregates are conserved: a retired
    pid's counts remain visible in {!aggregate}; only its ledger ring is
    released. *)

val ledger : t -> pid:int -> ledger_entry list
(** The pid's retained decision ledger, oldest first (empty after
    {!retire_pid}). *)

val live_pids : t -> int list
(** Pids with a live shard, sorted. *)

(** {1 Aggregation} *)

(** Mergeable histogram: counts over shared bucket bounds (last slot =
    overflow), plus exact sum/count. *)
type hist = {
  q_counts : int array;
  q_sum : int;
  q_count : int;
}

(** An immutable aggregate of one or more shards. All maps are sorted
    assoc lists so equal aggregates compare structurally equal. *)
type stats = {
  t_shards : int;                      (** shards folded in *)
  t_calls : int;                       (** monitored calls recorded *)
  t_cycles : int;                      (** verification cycles recorded *)
  t_self_cycles : int;                 (** telemetry's own charged cycles *)
  t_alloc_words : int;                 (** minor words recorded ([t_alloc] sum) *)
  t_reasons : int array;               (** indexed by {!reason_index} *)
  t_cf : int array;                    (** indexed by {!cf_index} *)
  t_deny_steps : (string * int) list;  (** violation step name -> denies *)
  t_per_sem : (string * hist) list;    (** syscall name -> cycle histogram *)
  t_sites : (int * int array) list;    (** site -> per-reason counts *)
  t_site_alloc : (int * int) list;     (** site -> minor words rollup *)
  t_alloc : hist;                      (** per-call minor words (alloc bounds) *)
}

val hist_snapshot : t -> hist -> Metrics.histogram_snapshot
(** View over the plane's cycle bounds, for {!Metrics.quantile}. *)

val alloc_hist_snapshot : t -> hist -> Metrics.histogram_snapshot
(** View over the plane's alloc (minor-words) bounds. *)

val empty_stats : stats
val stats_of_shard : t -> shard -> stats

val merge : stats -> stats -> stats
(** Pointwise sum. Commutative and associative up to structural equality,
    and count-conserving: every scalar, array slot and assoc value of the
    result is the sum of its operands' (the QCheck property in
    [test_telemetry] pins both). *)

val aggregate : t -> stats
(** Retired aggregate ⊕ every live shard. *)

val reasons_total : stats -> int
(** Sum of every reason bucket — equals [t_calls] by construction (the
    exhaustiveness invariant). *)

val cf_total : stats -> int
(** Sum of every control-flow bucket — likewise equals [t_calls] (every
    recorded call carries exactly one {!cf_reason}, [Cf_none]
    included). *)

(** {1 Snapshots (time series)} *)

val set_emitter : t -> interval:int -> unit
(** Arm the periodic snapshot emitter: whenever a recorded call's [now]
    timestamp crosses a multiple of [interval] virtual cycles, one
    time-series row is cut. Each row carries the virtual timestamp,
    cumulative and per-interval call/deny/cycle/minor-word counters,
    per-reason cumulative counts and p50/p95/p99 of the interval's
    verification cycles (quantiles over the bucket deltas since the
    previous row).
    @raise Invalid_argument when [interval < 1]. *)

val snapshots : t -> Json.t list
(** Rows cut so far, oldest first. *)

val snapshots_jsonl : t -> string
(** One compact JSON object per line. *)

val self_cycles : t -> int
val records : t -> int

(** {1 Export} *)

val stats_to_json : t -> stats -> Json.t
(** Full aggregate: totals (cycles and minor words), reason buckets (all
    {!reason_labels}, zeros included, plus a [reasons_total] the consumers
    can check against [calls]), deny steps, per-syscall cycle quantiles,
    fleet-wide per-call alloc quantiles, per-site rollups (reason counts
    plus [alloc_words]). *)
