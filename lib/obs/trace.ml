type event = {
  ev_name : string;
  ev_cat : string;
  ev_track : int;
  ev_ts : int;
  ev_dur : int;
  ev_args : (string * Json.t) list;
}

type t = {
  ring : event Ring.t;
  track_names : (int, string) Hashtbl.t;
  mutable process_name : string option;
}

let create ?(capacity = 65536) () =
  { ring = Ring.create ~capacity; track_names = Hashtbl.create 8; process_name = None }

let name_process t name = t.process_name <- Some name

let name_track t ~track name = Hashtbl.replace t.track_names track name

let track_name t ~track = Hashtbl.find_opt t.track_names track

let complete t ?(cat = "") ?(track = 0) ?(args = []) ~name ~ts ~dur () =
  Ring.push t.ring
    { ev_name = name; ev_cat = cat; ev_track = track; ev_ts = ts; ev_dur = dur; ev_args = args }

let span t ?cat ?track ?args ~clock name f =
  let ts = Clock.now clock in
  let finish () = complete t ?cat ?track ?args ~name ~ts ~dur:(Clock.now clock - ts) () in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let events t = Ring.to_list t.ring
let length t = Ring.length t.ring
let dropped t = Ring.dropped t.ring
let clear t = Ring.clear t.ring

let event_json ev =
  Json.Obj
    [ ("name", Json.Str ev.ev_name);
      ("cat", Json.Str (if ev.ev_cat = "" then "default" else ev.ev_cat));
      ("ph", Json.Str "X");
      ("ts", Json.Int ev.ev_ts);
      ("dur", Json.Int ev.ev_dur);
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.ev_track);
      ("args", Json.Obj ev.ev_args) ]

(* Chrome trace-event metadata ("ph":"M"): process_name labels the single
   simulated process, thread_name labels each track (kernel pids, installer
   phases) so chrome://tracing shows names instead of bare tids. *)
let metadata_events t =
  let process =
    match t.process_name with
    | None -> []
    | Some name ->
      [ Json.Obj
          [ ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 1);
            ("args", Json.Obj [ ("name", Json.Str name) ]) ] ]
  in
  let tracks =
    Hashtbl.fold (fun track name acc -> (track, name) :: acc) t.track_names []
    |> List.sort compare
    |> List.map (fun (track, name) ->
           Json.Obj
             [ ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int track);
               ("args", Json.Obj [ ("name", Json.Str name) ]) ])
  in
  process @ tracks

let to_chrome t =
  Json.Obj
    [ ("traceEvents", Json.List (metadata_events t @ List.map event_json (events t)));
      ("displayTimeUnit", Json.Str "ns") ]

let chrome_string t = Json.to_string (to_chrome t)

let to_json_lines t =
  let buf = Buffer.create 4096 in
  Ring.iter
    (fun ev ->
      Json.to_buffer buf (event_json ev);
      Buffer.add_char buf '\n')
    t.ring;
  Buffer.contents buf

type agg = {
  mutable a_count : int;
  mutable a_total : int;
  mutable a_min : int;
  mutable a_max : int;
}

let pp_summary ppf t =
  let tbl = Hashtbl.create 16 in
  Ring.iter
    (fun ev ->
      let a =
        match Hashtbl.find_opt tbl ev.ev_name with
        | Some a -> a
        | None ->
          let a = { a_count = 0; a_total = 0; a_min = max_int; a_max = min_int } in
          Hashtbl.replace tbl ev.ev_name a;
          a
      in
      a.a_count <- a.a_count + 1;
      a.a_total <- a.a_total + ev.ev_dur;
      a.a_min <- min a.a_min ev.ev_dur;
      a.a_max <- max a.a_max ev.ev_dur)
    t.ring;
  let rows = Hashtbl.fold (fun name a acc -> (name, a) :: acc) tbl [] in
  let rows = List.sort (fun (_, a) (_, b) -> compare b.a_total a.a_total) rows in
  Format.fprintf ppf "%-24s %8s %12s %10s %10s %10s@." "span" "count" "total" "mean" "min" "max";
  List.iter
    (fun (name, a) ->
      Format.fprintf ppf "%-24s %8d %12d %10d %10d %10d@." name a.a_count a.a_total
        (a.a_total / a.a_count) a.a_min a.a_max)
    rows;
  if dropped t > 0 then Format.fprintf ppf "(%d events dropped by the bounded collector)@." (dropped t)
