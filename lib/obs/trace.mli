(** Lightweight span tracing with deterministic timestamps.

    A collector holds complete spans ("X" events in Chrome trace-event
    terms) in a bounded ring. Timestamps come from whatever deterministic
    clock the instrumented layer owns — machine cycles in the kernel, a
    {!Clock} advanced by work units in the installer — never the wall
    clock, so a given run always produces byte-identical traces.

    Exporters: Chrome trace-event JSON (loadable in [chrome://tracing] /
    Perfetto), JSON-lines (one event object per line), and a per-name
    aggregate summary for terminals. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_track : int;  (** rendered as the Chrome [tid]; the kernel uses the pid *)
  ev_ts : int;     (** deterministic start timestamp *)
  ev_dur : int;
  ev_args : (string * Json.t) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Bounded collector; default capacity 65536 events. *)

val name_process : t -> string -> unit
(** Label the collector's (single) process; rendered as a ["ph":"M"]
    [process_name] metadata event by {!to_chrome}. *)

val name_track : t -> track:int -> string -> unit
(** Label a track (e.g. a kernel pid with its program name); rendered as a
    [thread_name] metadata event by {!to_chrome}. Names are identity, not
    events: they survive {!clear} and ring eviction. *)

val track_name : t -> track:int -> string option

val complete :
  t -> ?cat:string -> ?track:int -> ?args:(string * Json.t) list ->
  name:string -> ts:int -> dur:int -> unit -> unit
(** Record an already-measured span. *)

val span :
  t -> ?cat:string -> ?track:int -> ?args:(string * Json.t) list ->
  clock:Clock.t -> string -> (unit -> 'a) -> 'a
(** [span t ~clock name f] runs [f], stamping the span from [clock] before
    and after — [f] (or the instrumented code it calls) is responsible for
    advancing the clock by its work measure. The span is recorded even if
    [f] raises. *)

val events : t -> event list
(** Retained events, oldest first. *)

val length : t -> int
val dropped : t -> int
val clear : t -> unit

(** {1 Exporters} *)

val to_chrome : t -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ns"}] with one ["ph":"X"]
    event per span; timestamps are the deterministic clock values.
    {!name_process} / {!name_track} labels lead the list as ["ph":"M"]
    metadata events so chrome://tracing shows names instead of bare
    pid/tid numbers. *)

val chrome_string : t -> string

val to_json_lines : t -> string
(** One compact JSON object per line, oldest first. *)

val pp_summary : Format.formatter -> t -> unit
(** Per-name aggregation: count, total/mean/min/max duration, sorted by
    total duration descending. *)
