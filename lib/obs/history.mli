(** Bounded JSONL history files.

    The bench exporter keeps an append-only record of how each document's
    numbers move across runs ([DIR/<name>.jsonl], one JSON object per
    line). Unbounded append is fine for a workstation and wrong for a
    fleet, so the appender optionally caps each file: after appending,
    the file is truncated to the newest [keep] rows (atomically, via a
    temp file rename, so a crash never leaves a half-written history). *)

val append : dir:string -> name:string -> ?keep:int -> Json.t -> unit
(** Append one row to [dir/name.jsonl], creating [dir] if needed. With
    [keep] (>= 1), the file is truncated to its newest [keep] lines.
    @raise Invalid_argument when [keep < 1]. *)

val read : dir:string -> name:string -> (Json.t list, string) result
(** Parse every row of [dir/name.jsonl], oldest first. [Ok []] when the
    file does not exist; [Error] names the first malformed line. *)
