(** A cycle- and allocation-exact call-graph profiler.

    The instrumented interpreter maintains a *shadow call stack*: {!enter}
    on every call, {!leave} on every return, and {!charge} for each retired
    instruction's modeled cycles, which are credited to the node currently
    on top of the stack. Because every charged cycle lands on exactly one
    node, the sum over all nodes equals the machine's retired cycle counter
    — the invariant the exporters (and [asc_profile]'s self-check) rely on.

    The same discipline applies to a second resource: host minor-heap
    words. When armed with {!track_alloc}, every shadow-stack transition
    ({!enter}, {!leave}, {!reset_stack}) is also a *sampling point*: the
    [Gc.minor_words] delta since the previous sample is charged to the
    node that was current across the span. The deltas telescope, so
    {!total_alloc_words} equals the machine-scope minor-words delta
    between arming and the last sample — GC runs between samples cannot
    break this, because [Gc.minor_words] counts cumulative allocation, not
    live heap.

    Frames are either raw program counters ([Pc] — call targets, resolved
    to names only at report time via the caller's [symbolize]) or
    pre-named synthetic frames ([Label] — kernel-side work such as
    [<kernel:call_mac>], attributed under the application stack that
    triggered it).

    The profiler is deliberately independent of the SVM: it never decodes
    instructions or reads images, so the kernel, the checker and any future
    interpreter can all charge into the same profile. *)

type frame =
  | Pc of int        (** call-target address; symbolized at report time *)
  | Label of string  (** synthetic frame, used verbatim *)

type t

val create : unit -> t
(** Empty profile; the shadow stack holds only the implicit root.
    Allocation tracking starts disarmed. *)

(** {1 Hot-path updates} *)

val enter : t -> frame -> unit
(** Push a frame (descend into the matching child node, creating it on
    first use). An allocation sampling point: pending words are charged to
    the {e caller} before the stack changes. *)

val leave : t -> unit
(** Pop to the parent frame. A [leave] at the root is a no-op, so
    unmatched returns (e.g. from code the profiler never saw call) cannot
    corrupt the stack. An allocation sampling point: the span since the
    last sample ran inside the leaving frame. *)

val charge : t -> int -> unit
(** Credit cycles to the frame currently on top of the stack. *)

val charge_label : t -> string -> int -> unit
(** [charge_label t name n] charges [n] cycles to a synthetic [Label name]
    child of the current frame — equivalent to
    [enter t (Label name); charge t n; leave t]. *)

val reset_stack : t -> unit
(** Unwind the shadow stack to the root without touching accumulated
    cycles (sampling pending allocation first). Used on [execve], when the
    application call stack it mirrored ceases to exist. *)

(** {1 Allocation tracking} *)

val minor_words : unit -> int
(** The host's cumulative [Gc.minor_words] reading as an int — the clock
    every allocation measurement (here and in the checker's step regions)
    reads. Monotonic across GCs and allocation-free to sample in native
    code. *)

val track_alloc : t -> unit
(** Arm minor-words sampling: record the current cumulative
    [Gc.minor_words] reading as the first mark. Idempotent. *)

val alloc_tracked : t -> bool

val sample_alloc : t -> unit
(** Charge the words allocated since the previous sample to the current
    frame and advance the mark. Callers flush with this before reading
    {!total_alloc_words}; no-op while tracking is disarmed. Sampling
    itself allocates nothing ([Gc.minor_words] is an unboxed [@@noalloc]
    external), so it cannot perturb what it measures. *)

val total_alloc_words : t -> int
(** Sum of every sampled word — after a flush, exactly the machine-scope
    [Gc.minor_words] delta since {!track_alloc}. *)

(** {1 Reading} *)

val depth : t -> int
(** Current shadow-stack depth (0 at the root). *)

val total_cycles : t -> int
(** Sum of every charge; equals the machine's retired cycle counter when
    every cycle source is instrumented. *)

val current_stack : symbolize:(frame -> string) -> t -> string list
(** The live shadow stack, outermost frame first (empty at the root). Used
    by the kernel's forensic snapshot to record what the process was
    executing when a violation killed it. *)

(** {1 Exporters} *)

val folded : symbolize:(frame -> string) -> t -> (string list * int) list
(** One entry per stack with non-zero self cycles:
    [(\[caller; ...; leaf\], self_cycles)], sorted by stack for
    deterministic output. The entries' cycles sum to {!total_cycles}. *)

val folded_alloc : symbolize:(frame -> string) -> t -> (string list * int) list
(** Same shape keyed by sampled minor words; entries sum to
    {!total_alloc_words}. *)

val folded_string : symbolize:(frame -> string) -> t -> string
(** flamegraph.pl-compatible folded stacks: one
    ["frame;frame;frame cycles"] line per entry of {!folded}. *)

val folded_alloc_string : symbolize:(frame -> string) -> t -> string
(** {!folded_alloc} in the same line format (weights are words). *)

val parse_folded : string -> ((string list * int) list, string) result
(** Parse folded-stacks text back into stacks ([Error] describes the first
    malformed line). [parse_folded (folded_string ~symbolize t)]
    round-trips whenever frame names contain no [' '] or [';']. *)

type row = {
  r_name : string;        (** symbolized frame name *)
  r_calls : int;          (** times the frame was entered *)
  r_self : int;           (** cycles charged directly to the frame *)
  r_total : int;          (** self + descendants (recursion counted once) *)
  r_alloc : int;          (** minor words sampled directly onto the frame *)
  r_total_alloc : int;    (** alloc + descendants (recursion counted once) *)
}

val top : symbolize:(frame -> string) -> t -> row list
(** Per-name aggregation over the whole tree, sorted by self cycles
    descending (ties by name). The [r_self] column sums to
    {!total_cycles} and [r_alloc] to {!total_alloc_words}. *)

val to_json : symbolize:(frame -> string) -> t -> Json.t
(** [{"total_cycles": n, "total_alloc_words": n,
     "stacks": [{"stack": [...], "cycles": n}, ...],
     "alloc_stacks": [{"stack": [...], "words": n}, ...]}] *)
