(** A metrics registry: named counters, gauges and fixed-bucket
    histograms.

    Hot-path discipline: instruments are resolved by name once (at
    registration — kernel creation, monitor construction) and the returned
    handle is a bare mutable cell, so {!inc}/{!add}/{!observe} on the trap
    path are O(1) and allocation-free. Registries are independent; a fresh
    kernel gets a fresh registry so benchmark runs do not bleed into each
    other (including the per-kernel [svm.instructions]/[svm.cycles]
    mirrors), while truly process-wide layers (the PLTO passes, the
    installer gauges) publish into {!default}. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val default : registry
(** Process-wide registry for layers that have no natural owner. *)

(** {1 Registration} — get-or-create by name.
    @raise Invalid_argument if the name is already registered as a
    different instrument kind (or, for histograms, different buckets). *)

val counter : ?help:string -> registry -> string -> counter
val gauge : ?help:string -> registry -> string -> gauge

val histogram : ?help:string -> ?buckets:int list -> registry -> string -> histogram
(** [buckets] are inclusive upper bounds, strictly increasing; an implicit
    overflow bucket catches the rest. The default buckets suit modeled
    cycle counts (100 .. 1_000_000, roughly logarithmic). *)

(** {1 Hot-path updates} *)

val inc : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit
val observe : histogram -> int -> unit

(** {1 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> int

type histogram_snapshot = {
  h_buckets : (int * int) list;  (** (inclusive upper bound, count) *)
  h_overflow : int;              (** observations above the last bound *)
  h_count : int;
  h_sum : int;
}

val histogram_value : histogram -> histogram_snapshot

val value : registry -> string -> int option
(** Counter or gauge value by name; [None] if absent or a histogram. *)

val names : registry -> string list
(** Sorted. *)

val reset : registry -> unit
(** Zero every instrument; registrations (and handles) stay valid. *)

val to_json : registry -> Json.t
(** One object per instrument, sorted by name:
    [{"name","kind","value"}] for counters/gauges, and buckets/sum/count
    for histograms. *)

val pp_summary : Format.formatter -> registry -> unit
