(** A metrics registry: named counters, gauges and fixed-bucket
    histograms.

    Hot-path discipline: instruments are resolved by name once (at
    registration — kernel creation, monitor construction) and the returned
    handle is a bare mutable cell, so {!inc}/{!add}/{!observe} on the trap
    path are O(1) and allocation-free. Registries are independent; a fresh
    kernel gets a fresh registry so benchmark runs do not bleed into each
    other (including the per-kernel [svm.instructions]/[svm.cycles]
    mirrors), while truly process-wide layers (the PLTO passes, the
    installer gauges) publish into {!default}. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val default : registry
(** Process-wide registry for layers that have no natural owner. *)

(** {1 Registration} — get-or-create by name.
    @raise Invalid_argument if the name is already registered as a
    different instrument kind (or, for histograms, different buckets). *)

val counter : ?help:string -> registry -> string -> counter
val gauge : ?help:string -> registry -> string -> gauge

val histogram : ?help:string -> ?buckets:int list -> registry -> string -> histogram
(** [buckets] are inclusive upper bounds, strictly increasing; an implicit
    overflow bucket catches the rest. The default buckets suit modeled
    cycle counts (100 .. 1_000_000, roughly logarithmic). *)

val log_linear_buckets : lo:int -> hi:int -> int list
(** HDR-style log-linear bucket bounds: within each decade [d, 10d) the
    bounds are the multiples of d, clipped to [lo, hi] and terminated by
    [hi] itself. The containing bucket of any value v <= hi is at most one
    leading-digit step wide, which bounds {!quantile}'s error by that
    bucket's width — i.e. a bounded relative error for values >= lo.
    @raise Invalid_argument when [lo < 1] or [hi <= lo]. *)

(** {1 Hot-path updates} *)

val inc : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit
val observe : histogram -> int -> unit

(** {1 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> int

type histogram_snapshot = {
  h_buckets : (int * int) list;  (** (inclusive upper bound, count) *)
  h_overflow : int;              (** observations above the last bound *)
  h_count : int;
  h_sum : int;
}

val histogram_value : histogram -> histogram_snapshot

val quantile : histogram_snapshot -> float -> int
(** [quantile snap q] estimates the q-quantile (q in [0,1]) of the
    observations by locating the bucket of the ceil(q*count)-th smallest
    one and interpolating linearly within it. The estimate and the true
    observation share a bucket, so the absolute error is at most that
    bucket's width; observations beyond the last bound clamp to it. 0 when
    the histogram is empty.
    @raise Invalid_argument when q is outside [0,1]. *)

val value : registry -> string -> int option
(** Counter or gauge value by name; [None] if absent or a histogram. *)

val names : registry -> string list
(** Sorted. *)

val reset : registry -> unit
(** Zero every instrument; registrations (and handles) stay valid. *)

val to_json : registry -> Json.t
(** One object per instrument, sorted by name:
    [{"name","kind","value"}] for counters/gauges, and buckets/sum/count
    for histograms. *)

val pp_summary : Format.formatter -> registry -> unit
