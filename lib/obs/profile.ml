type frame =
  | Pc of int
  | Label of string

type node = {
  n_frame : frame;
  n_parent : node option;            (* None only for the root *)
  n_children : (frame, node) Hashtbl.t;
  mutable n_self : int;
  mutable n_calls : int;
}

type t = {
  root : node;
  mutable current : node;
  mutable total : int;
}

let make_node ?parent frame =
  { n_frame = frame;
    n_parent = parent;
    n_children = Hashtbl.create 4;
    n_self = 0;
    n_calls = 0 }

let create () =
  let root = make_node (Label "(root)") in
  { root; current = root; total = 0 }

let enter t frame =
  let child =
    match Hashtbl.find_opt t.current.n_children frame with
    | Some c -> c
    | None ->
      let c = make_node ~parent:t.current frame in
      Hashtbl.replace t.current.n_children frame c;
      c
  in
  child.n_calls <- child.n_calls + 1;
  t.current <- child

let leave t =
  match t.current.n_parent with
  | Some p -> t.current <- p
  | None -> ()

let charge t n =
  t.current.n_self <- t.current.n_self + n;
  t.total <- t.total + n

let charge_label t name n =
  enter t (Label name);
  charge t n;
  leave t

let reset_stack t = t.current <- t.root

let depth t =
  let rec go n acc = match n.n_parent with None -> acc | Some p -> go p (acc + 1) in
  go t.current 0

let total_cycles t = t.total

let current_stack ~symbolize t =
  let rec go n acc =
    match n.n_parent with None -> acc | Some p -> go p (symbolize n.n_frame :: acc)
  in
  go t.current []

(* ----- exporters ----- *)

let children_sorted ~symbolize node =
  Hashtbl.fold (fun _ c acc -> c :: acc) node.n_children []
  |> List.map (fun c -> (symbolize c.n_frame, c))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let folded ~symbolize t =
  let out = ref [] in
  let rec go path node =
    (* the root is not a real frame: its own charges (cycles retired before
       any call) are reported under the root pseudo-name *)
    let path =
      match node.n_parent with None -> path | Some _ -> symbolize node.n_frame :: path
    in
    if node.n_self > 0 then begin
      let stack = match path with [] -> [ "(root)" ] | p -> List.rev p in
      out := (stack, node.n_self) :: !out
    end;
    List.iter (fun (_, c) -> go path c) (children_sorted ~symbolize node)
  in
  go [] t.root;
  List.sort compare (List.rev !out)

let folded_string ~symbolize t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (stack, cycles) ->
      Buffer.add_string buf (String.concat ";" stack);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int cycles);
      Buffer.add_char buf '\n')
    (folded ~symbolize t);
  Buffer.contents buf

let parse_folded s =
  let parse_line lineno line =
    match String.rindex_opt line ' ' with
    | None -> Error (Printf.sprintf "line %d: missing cycle count in %S" lineno line)
    | Some i ->
      let stack_str = String.sub line 0 i in
      let count_str = String.sub line (i + 1) (String.length line - i - 1) in
      (match int_of_string_opt count_str with
       | None -> Error (Printf.sprintf "line %d: bad cycle count %S" lineno count_str)
       | Some n when n < 0 -> Error (Printf.sprintf "line %d: negative cycle count" lineno)
       | Some n ->
         let stack = String.split_on_char ';' stack_str in
         if stack = [] || List.exists (fun f -> f = "") stack then
           Error (Printf.sprintf "line %d: empty frame in %S" lineno stack_str)
         else Ok (stack, n))
  in
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go (lineno + 1) acc rest
    | line :: rest ->
      (match parse_line lineno line with
       | Ok entry -> go (lineno + 1) (entry :: acc) rest
       | Error _ as e -> e)
  in
  go 1 [] lines

type row = {
  r_name : string;
  r_calls : int;
  r_self : int;
  r_total : int;
}

let top ~symbolize t =
  let tbl : (string, row ref) Hashtbl.t = Hashtbl.create 64 in
  let cell name =
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
      let r = ref { r_name = name; r_calls = 0; r_self = 0; r_total = 0 } in
      Hashtbl.replace tbl name r;
      r
  in
  (* DFS carrying the set of names already on the path, so recursive frames
     contribute their subtree to r_total only once *)
  let rec go active node =
    let name = match node.n_parent with None -> None | Some _ -> Some (symbolize node.n_frame) in
    (match name with
     | Some nm ->
       let r = cell nm in
       r := { !r with r_calls = !r.r_calls + node.n_calls; r_self = !r.r_self + node.n_self }
     | None -> ());
    let active' = match name with Some nm -> nm :: active | None -> active in
    let subtree =
      Hashtbl.fold (fun _ c acc -> acc + go active' c) node.n_children node.n_self
    in
    (match name with
     | Some nm when not (List.mem nm active) ->
       let r = cell nm in
       r := { !r with r_total = !r.r_total + subtree }
     | _ -> ());
    subtree
  in
  ignore (go [] t.root);
  (* root self-cycles (work outside any call) appear as their own row *)
  if t.root.n_self > 0 then begin
    let r = cell "(root)" in
    r :=
      { !r with
        r_self = !r.r_self + t.root.n_self;
        r_total = !r.r_total + t.root.n_self }
  end;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.r_self a.r_self with 0 -> compare a.r_name b.r_name | c -> c)

let to_json ~symbolize t =
  Json.Obj
    [ ("total_cycles", Json.Int t.total);
      ( "stacks",
        Json.List
          (List.map
             (fun (stack, cycles) ->
               Json.Obj
                 [ ("stack", Json.List (List.map (fun f -> Json.Str f) stack));
                   ("cycles", Json.Int cycles) ])
             (folded ~symbolize t)) ) ]
