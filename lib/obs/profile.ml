type frame =
  | Pc of int
  | Label of string

type node = {
  n_frame : frame;
  n_parent : node option;            (* None only for the root *)
  n_children : (frame, node) Hashtbl.t;
  mutable n_self : int;
  mutable n_calls : int;
  mutable n_alloc : int;             (* minor words sampled onto this frame *)
}

type t = {
  root : node;
  mutable current : node;
  mutable total : int;
  (* allocation sampling: [alloc_mark] is the host's cumulative
     [Gc.minor_words] reading (as an int) at the last sample point, or -1
     while tracking is off. Every word allocated between two sample points
     is charged to the node that was current across that span, so the
     charges telescope to exactly the machine-scope minor-words delta. *)
  mutable alloc_mark : int;
  mutable total_alloc : int;
}

(* [Gc.minor_words] is an unboxed [@@noalloc] external in native code, and
   the immediate [int_of_float] keeps the result unboxed — so taking a
   sample allocates nothing and cannot perturb what it measures. *)
let minor_words_now () = int_of_float (Gc.minor_words ())
let minor_words = minor_words_now

let make_node ?parent frame =
  { n_frame = frame;
    n_parent = parent;
    n_children = Hashtbl.create 4;
    n_self = 0;
    n_calls = 0;
    n_alloc = 0 }

let create () =
  let root = make_node (Label "(root)") in
  { root; current = root; total = 0; alloc_mark = -1; total_alloc = 0 }

let track_alloc t = if t.alloc_mark < 0 then t.alloc_mark <- minor_words_now ()
let alloc_tracked t = t.alloc_mark >= 0

let sample_alloc t =
  if t.alloc_mark >= 0 then begin
    let now = minor_words_now () in
    let d = now - t.alloc_mark in
    if d > 0 then begin
      t.current.n_alloc <- t.current.n_alloc + d;
      t.total_alloc <- t.total_alloc + d
    end;
    t.alloc_mark <- now
  end

let enter t frame =
  (* words allocated since the last sample belong to the caller, not the
     frame being entered *)
  sample_alloc t;
  let child =
    match Hashtbl.find_opt t.current.n_children frame with
    | Some c -> c
    | None ->
      let c = make_node ~parent:t.current frame in
      Hashtbl.replace t.current.n_children frame c;
      c
  in
  child.n_calls <- child.n_calls + 1;
  t.current <- child

let leave t =
  (* the span since the last sample ran inside the leaving frame *)
  sample_alloc t;
  match t.current.n_parent with
  | Some p -> t.current <- p
  | None -> ()

let charge t n =
  t.current.n_self <- t.current.n_self + n;
  t.total <- t.total + n

let charge_label t name n =
  enter t (Label name);
  charge t n;
  leave t

let reset_stack t =
  (* flush pending words onto the stack being abandoned (execve) *)
  sample_alloc t;
  t.current <- t.root

let depth t =
  let rec go n acc = match n.n_parent with None -> acc | Some p -> go p (acc + 1) in
  go t.current 0

let total_cycles t = t.total
let total_alloc_words t = t.total_alloc

let current_stack ~symbolize t =
  let rec go n acc =
    match n.n_parent with None -> acc | Some p -> go p (symbolize n.n_frame :: acc)
  in
  go t.current []

(* ----- exporters ----- *)

let children_sorted ~symbolize node =
  Hashtbl.fold (fun _ c acc -> c :: acc) node.n_children []
  |> List.map (fun c -> (symbolize c.n_frame, c))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let folded_by ~symbolize ~weight t =
  let out = ref [] in
  let rec go path node =
    (* the root is not a real frame: its own charges (cycles retired before
       any call) are reported under the root pseudo-name *)
    let path =
      match node.n_parent with None -> path | Some _ -> symbolize node.n_frame :: path
    in
    let w = weight node in
    if w > 0 then begin
      let stack = match path with [] -> [ "(root)" ] | p -> List.rev p in
      out := (stack, w) :: !out
    end;
    List.iter (fun (_, c) -> go path c) (children_sorted ~symbolize node)
  in
  go [] t.root;
  List.sort compare (List.rev !out)

let folded ~symbolize t = folded_by ~symbolize ~weight:(fun n -> n.n_self) t
let folded_alloc ~symbolize t = folded_by ~symbolize ~weight:(fun n -> n.n_alloc) t

let folded_string_of entries =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (stack, w) ->
      Buffer.add_string buf (String.concat ";" stack);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int w);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let folded_string ~symbolize t = folded_string_of (folded ~symbolize t)
let folded_alloc_string ~symbolize t = folded_string_of (folded_alloc ~symbolize t)

let parse_folded s =
  let parse_line lineno line =
    match String.rindex_opt line ' ' with
    | None -> Error (Printf.sprintf "line %d: missing cycle count in %S" lineno line)
    | Some i ->
      let stack_str = String.sub line 0 i in
      let count_str = String.sub line (i + 1) (String.length line - i - 1) in
      (match int_of_string_opt count_str with
       | None -> Error (Printf.sprintf "line %d: bad cycle count %S" lineno count_str)
       | Some n when n < 0 -> Error (Printf.sprintf "line %d: negative cycle count" lineno)
       | Some n ->
         let stack = String.split_on_char ';' stack_str in
         if stack = [] || List.exists (fun f -> f = "") stack then
           Error (Printf.sprintf "line %d: empty frame in %S" lineno stack_str)
         else Ok (stack, n))
  in
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go (lineno + 1) acc rest
    | line :: rest ->
      (match parse_line lineno line with
       | Ok entry -> go (lineno + 1) (entry :: acc) rest
       | Error _ as e -> e)
  in
  go 1 [] lines

type row = {
  r_name : string;
  r_calls : int;
  r_self : int;
  r_total : int;
  r_alloc : int;
  r_total_alloc : int;
}

let top ~symbolize t =
  let tbl : (string, row ref) Hashtbl.t = Hashtbl.create 64 in
  let cell name =
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
      let r =
        ref { r_name = name; r_calls = 0; r_self = 0; r_total = 0; r_alloc = 0;
              r_total_alloc = 0 }
      in
      Hashtbl.replace tbl name r;
      r
  in
  (* DFS carrying the set of names already on the path, so recursive frames
     contribute their subtree to r_total only once *)
  let rec go active node =
    let name = match node.n_parent with None -> None | Some _ -> Some (symbolize node.n_frame) in
    (match name with
     | Some nm ->
       let r = cell nm in
       r :=
         { !r with
           r_calls = !r.r_calls + node.n_calls;
           r_self = !r.r_self + node.n_self;
           r_alloc = !r.r_alloc + node.n_alloc }
     | None -> ());
    let active' = match name with Some nm -> nm :: active | None -> active in
    let subtree, subtree_alloc =
      Hashtbl.fold
        (fun _ c (acc, acca) ->
          let s, sa = go active' c in
          (acc + s, acca + sa))
        node.n_children
        (node.n_self, node.n_alloc)
    in
    (match name with
     | Some nm when not (List.mem nm active) ->
       let r = cell nm in
       r := { !r with r_total = !r.r_total + subtree;
                      r_total_alloc = !r.r_total_alloc + subtree_alloc }
     | _ -> ());
    (subtree, subtree_alloc)
  in
  ignore (go [] t.root);
  (* root self-cycles (work outside any call) appear as their own row *)
  if t.root.n_self > 0 || t.root.n_alloc > 0 then begin
    let r = cell "(root)" in
    r :=
      { !r with
        r_self = !r.r_self + t.root.n_self;
        r_total = !r.r_total + t.root.n_self;
        r_alloc = !r.r_alloc + t.root.n_alloc;
        r_total_alloc = !r.r_total_alloc + t.root.n_alloc }
  end;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.r_self a.r_self with 0 -> compare a.r_name b.r_name | c -> c)

let to_json ~symbolize t =
  let stacks_json entries key =
    Json.List
      (List.map
         (fun (stack, w) ->
           Json.Obj
             [ ("stack", Json.List (List.map (fun f -> Json.Str f) stack)); (key, Json.Int w) ])
         entries)
  in
  Json.Obj
    [ ("total_cycles", Json.Int t.total);
      ("total_alloc_words", Json.Int t.total_alloc);
      ("stacks", stacks_json (folded ~symbolize t) "cycles");
      ("alloc_stacks", stacks_json (folded_alloc ~symbolize t) "words") ]
