(** A tamper-evident audit chain.

    Audit entries are worth little in a forensic investigation if the
    attacker who triggered them can also doctor the log. This module
    protects the audit trail with the same AES-CMAC primitive the paper
    uses for system calls: every appended entry [e_i] extends a running
    chain

    {[ m_i = MAC(key, m_{i-1} ++ encode(e_i)) ]}

    where [encode] is the entry's compact JSON rendering and [m_0] is a
    fixed genesis MAC. Each retained record stores its own chain value, so
    a verifier holding the key can recompute the chain and pinpoint the
    first record that was bit-flipped, reordered or dropped.

    Retention is bounded like the kernel's audit ring. Eviction is safe:
    when the oldest record is dropped, its chain value becomes the
    {e anchor} from which verification of the retained suffix restarts —
    dropping old entries never breaks the chain over what remains, and the
    exported anchor still commits to the full evicted prefix.

    The JSONL export is one object per line: a header carrying the anchor,
    one record per entry, and a trailer committing to the head of the
    chain. Truncating the file removes the trailer (or breaks its MAC),
    reordering breaks the sequence numbers and the chain, and any bit flip
    in a retained record breaks that record's MAC — {!verify_string}
    reports each with the offending line. *)

type t

type record = {
  seq : int;           (** 1-based position in the full (pre-eviction) log *)
  entry : Json.t;
  mac : string;        (** raw 16-byte chain value [m_seq] *)
}

val create : key:Asc_crypto.Cmac.key -> ?capacity:int -> unit -> t
(** Empty chain. [capacity] (default 4096) bounds retained records. *)

val append : t -> Json.t -> unit
(** Extend the chain with an entry. O(entry size). *)

val length : t -> int
(** Records currently retained. *)

val appended : t -> int
(** Records ever appended (survives eviction). *)

val records : t -> record list
(** Retained records, oldest first. *)

val head_mac : t -> string
(** Raw 16-byte chain value of the newest record (the genesis MAC when
    the chain is empty). *)

val hex : string -> string
(** Lowercase hex of a raw MAC — the encoding used throughout the export
    (and the form {!verify_string}'s [expect_head] takes). *)

val export_string : t -> string
(** The JSONL rendering described above. *)

val export_file : t -> string -> unit
(** [export_file t path] writes {!export_string} to [path]. *)

type verify_error = {
  ve_line : int;          (** 1-based line number of the offending line *)
  ve_seq : int option;    (** sequence number, when the line carried one *)
  ve_what : string;       (** what failed: tampered, truncated, reordered... *)
}

val pp_verify_error : Format.formatter -> verify_error -> unit

val verify_string :
  ?expect_head:string -> key:Asc_crypto.Cmac.key -> string -> (int, verify_error) result
(** Re-derive the chain over an exported log. [Ok n] means all [n] records
    (plus header and trailer) verified; [Error e] pinpoints the first bad
    line. Detects bit flips in any retained record, truncation (missing or
    mismatched trailer), reordering and gaps (sequence or chain breaks),
    and a forged anchor (header MAC of the wrong shape).

    Cutting the file back to a prefix {e and} rewriting the trailer from a
    chain value visible in that prefix is the one edit the file alone
    cannot expose — it is indistinguishable from an earlier honest export.
    Pass [expect_head] (the hex {!head_mac} recorded out of band, e.g. from
    the kernel operator's console) to close it: the trailer must then match
    that exact head. *)

val verify_records :
  key:Asc_crypto.Cmac.key -> anchor_seq:int -> anchor_mac:string -> record list ->
  (int, verify_error) result
(** The in-memory core of {!verify_string}, for callers that already hold
    parsed records (line numbers in errors count records from 1). *)
