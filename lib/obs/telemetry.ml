type fallback = F_no_entry | F_statics | F_tag

type reason =
  | Precomp_hit
  | Precomp_resumed
  | Precomp_fallback of fallback
  | Vcache_hit
  | Slow_path
  | Deny of string

let num_reasons = 8

let reason_index = function
  | Precomp_hit -> 0
  | Precomp_resumed -> 1
  | Precomp_fallback F_no_entry -> 2
  | Precomp_fallback F_statics -> 3
  | Precomp_fallback F_tag -> 4
  | Vcache_hit -> 5
  | Slow_path -> 6
  | Deny _ -> 7

let reason_labels =
  [| "precomp_hit"; "precomp_resumed"; "fallback_no_entry"; "fallback_statics";
     "fallback_tag"; "vcache_hit"; "slow_path"; "deny" |]

let reason_label r = reason_labels.(reason_index r)

(* Second exhaustive per-call dimension: how the control-flow step (the
   predecessor check + lbMAC update) was resolved. Orthogonal to [reason],
   which reports the call-MAC resolution — a call can be a precomp hit on
   step 1 and a bitset fallback on step 3. Exactly one code per monitored
   call; [Cf_none] covers calls with no control-flow policy (or no cfpre
   armed), so the buckets always sum to the call count. *)
type cf_reason =
  | Cf_none
  | Cf_hit
  | Cf_slow
  | Cf_fallback_ref
  | Cf_fallback_contents

let num_cf_reasons = 5

let cf_index = function
  | Cf_none -> 0
  | Cf_hit -> 1
  | Cf_slow -> 2
  | Cf_fallback_ref -> 3
  | Cf_fallback_contents -> 4

let cf_labels = [| "cf_none"; "cf_hit"; "cf_slow"; "cf_fallback_ref"; "cf_fallback_contents" |]
let cf_label c = cf_labels.(cf_index c)

type ledger_entry = {
  le_site : int;
  le_sem : string;
  le_reason : reason;
  le_cycles : int;
  le_alloc : int;
  le_ts : int;
}

(* Shard-internal histogram: mutable counterpart of the exported [hist].
   Counts are over the plane's shared bucket bounds (last slot = overflow)
   so merging reduces to element-wise addition. *)
type mhist = {
  m_counts : int array;
  mutable m_sum : int;
  mutable m_count : int;
}

type hist = {
  q_counts : int array;
  q_sum : int;
  q_count : int;
}

type shard = {
  sh_pid : int;
  sh_reasons : int array;
  sh_cf : int array;
  sh_deny : (string, int) Hashtbl.t;
  sh_per_sem : (string, mhist) Hashtbl.t;
  sh_sites : (int, int array) Hashtbl.t;
  sh_site_alloc : (int, int) Hashtbl.t;   (* site -> minor words rollup *)
  sh_alloc : mhist;                       (* per-call minor words, alloc bounds *)
  sh_ledger : ledger_entry Ring.t;
  mutable sh_calls : int;
  mutable sh_cycles : int;
  mutable sh_self : int;
}

type stats = {
  t_shards : int;
  t_calls : int;
  t_cycles : int;
  t_self_cycles : int;
  t_alloc_words : int;
  t_reasons : int array;
  t_cf : int array;
  t_deny_steps : (string * int) list;
  t_per_sem : (string * hist) list;
  t_sites : (int * int array) list;
  t_site_alloc : (int * int) list;
  t_alloc : hist;                         (* per-call minor words, alloc bounds *)
}

type t = {
  bounds : int array;          (* shared cycle-histogram bucket bounds *)
  nslots : int;                (* Array.length bounds + 1 (overflow) *)
  a_bounds : int array;        (* alloc-histogram bucket bounds (words) *)
  a_nslots : int;
  ring_capacity : int;
  shards : (int, shard) Hashtbl.t;
  mutable retired : stats;
  (* plane-global cumulative mirrors, feeding the snapshot emitter *)
  g_hist : mhist;
  g_alloc : mhist;
  g_reasons : int array;
  g_cf : int array;
  mutable g_records : int;
  mutable g_denies : int;
  mutable g_self : int;
  (* emitter state *)
  mutable em_interval : int;   (* 0 = disarmed *)
  mutable em_next : int;
  mutable em_rows : Json.t list;  (* newest first *)
  mutable em_last_counts : int array;  (* g_hist.m_counts at the last row *)
  mutable em_last_calls : int;
  mutable em_last_denies : int;
  mutable em_last_cycles : int;
  mutable em_last_alloc : int;
}

let default_buckets = lazy (Metrics.log_linear_buckets ~lo:100 ~hi:1_000_000)

(* per-call minor words run two orders of magnitude below per-call cycles
   (~10^2..10^3 words vs ~10^3..10^6 cycles), so the alloc histograms get
   their own log-linear ladder starting at 10 words *)
let default_alloc_buckets = lazy (Metrics.log_linear_buckets ~lo:10 ~hi:1_000_000)

let empty_hist = { q_counts = [||]; q_sum = 0; q_count = 0 }

let empty_stats = {
  t_shards = 0;
  t_calls = 0;
  t_cycles = 0;
  t_self_cycles = 0;
  t_alloc_words = 0;
  t_reasons = Array.make num_reasons 0;
  t_cf = Array.make num_cf_reasons 0;
  t_deny_steps = [];
  t_per_sem = [];
  t_sites = [];
  t_site_alloc = [];
  t_alloc = empty_hist;
}

let check_bounds what bounds =
  if Array.length bounds = 0 then invalid_arg ("Telemetry.create: empty " ^ what);
  Array.iteri
    (fun i b -> if i > 0 && b <= bounds.(i - 1) then
        invalid_arg ("Telemetry.create: " ^ what ^ " must be strictly increasing"))
    bounds

let create ?(ring_capacity = 256) ?buckets ?alloc_buckets () =
  let buckets = match buckets with Some b -> b | None -> Lazy.force default_buckets in
  let alloc_buckets =
    match alloc_buckets with Some b -> b | None -> Lazy.force default_alloc_buckets
  in
  let bounds = Array.of_list buckets in
  let a_bounds = Array.of_list alloc_buckets in
  check_bounds "buckets" bounds;
  check_bounds "alloc buckets" a_bounds;
  let nslots = Array.length bounds + 1 in
  let a_nslots = Array.length a_bounds + 1 in
  { bounds;
    nslots;
    a_bounds;
    a_nslots;
    ring_capacity;
    shards = Hashtbl.create 16;
    (* the retired aggregate's alloc hist must be shaped like the live
       shards' so [merge]'s element-wise bucket addition lines up *)
    retired = { empty_stats with t_alloc = { empty_hist with q_counts = Array.make a_nslots 0 } };
    g_hist = { m_counts = Array.make nslots 0; m_sum = 0; m_count = 0 };
    g_alloc = { m_counts = Array.make a_nslots 0; m_sum = 0; m_count = 0 };
    g_reasons = Array.make num_reasons 0;
    g_cf = Array.make num_cf_reasons 0;
    g_records = 0;
    g_denies = 0;
    g_self = 0;
    em_interval = 0;
    em_next = 0;
    em_rows = [];
    em_last_counts = Array.make nslots 0;
    em_last_calls = 0;
    em_last_denies = 0;
    em_last_cycles = 0;
    em_last_alloc = 0 }

let shard t ~pid =
  match Hashtbl.find_opt t.shards pid with
  | Some sh -> sh
  | None ->
    let sh = {
      sh_pid = pid;
      sh_reasons = Array.make num_reasons 0;
      sh_cf = Array.make num_cf_reasons 0;
      sh_deny = Hashtbl.create 4;
      sh_per_sem = Hashtbl.create 16;
      sh_sites = Hashtbl.create 32;
      sh_site_alloc = Hashtbl.create 32;
      sh_alloc = { m_counts = Array.make t.a_nslots 0; m_sum = 0; m_count = 0 };
      sh_ledger = Ring.create ~capacity:t.ring_capacity;
      sh_calls = 0;
      sh_cycles = 0;
      sh_self = 0 }
    in
    Hashtbl.replace t.shards pid sh;
    sh

let mhist_observe bounds h v =
  let n = Array.length bounds in
  let rec slot i = if i >= n || v <= bounds.(i) then i else slot (i + 1) in
  h.m_counts.(slot 0) <- h.m_counts.(slot 0) + 1;
  h.m_sum <- h.m_sum + v;
  h.m_count <- h.m_count + 1

let snapshot_of_counts bounds counts sum count =
  { Metrics.h_buckets =
      Array.to_list (Array.mapi (fun i b -> (b, counts.(i))) bounds);
    h_overflow = counts.(Array.length bounds);
    h_count = count;
    h_sum = sum }

let hist_snapshot_of bounds h = snapshot_of_counts bounds h.q_counts h.q_sum h.q_count
let hist_snapshot t h = hist_snapshot_of t.bounds h
let alloc_hist_snapshot t h = hist_snapshot_of t.a_bounds h

(* Cut one time-series row: cumulative counters, the interval's deltas,
   and p50/p95/p99 over the interval's verification-cycle observations
   (quantiles of the bucket-count deltas since the previous row). *)
let cut_row t ~now =
  let d_counts = Array.mapi (fun i c -> c - t.em_last_counts.(i)) t.g_hist.m_counts in
  let d_calls = t.g_hist.m_count - t.em_last_calls in
  let d_cycles = t.g_hist.m_sum - t.em_last_cycles in
  let d_denies = t.g_denies - t.em_last_denies in
  let d_alloc = t.g_alloc.m_sum - t.em_last_alloc in
  let snap = snapshot_of_counts t.bounds d_counts d_cycles d_calls in
  let q p = Metrics.quantile snap p in
  let row =
    Json.Obj [
      ("ts", Json.Int now);
      ("calls", Json.Int t.g_hist.m_count);
      ("denies", Json.Int t.g_denies);
      ("cycles", Json.Int t.g_hist.m_sum);
      ("self_cycles", Json.Int t.g_self);
      ("alloc_words", Json.Int t.g_alloc.m_sum);
      ("interval_calls", Json.Int d_calls);
      ("interval_denies", Json.Int d_denies);
      ("interval_cycles", Json.Int d_cycles);
      ("interval_alloc_words", Json.Int d_alloc);
      ("reasons",
       Json.Obj
         (Array.to_list
            (Array.mapi (fun i l -> (l, Json.Int t.g_reasons.(i))) reason_labels)));
      ("p50", Json.Int (q 0.50));
      ("p95", Json.Int (q 0.95));
      ("p99", Json.Int (q 0.99));
    ]
  in
  t.em_rows <- row :: t.em_rows;
  t.em_last_counts <- Array.copy t.g_hist.m_counts;
  t.em_last_calls <- t.g_hist.m_count;
  t.em_last_denies <- t.g_denies;
  t.em_last_cycles <- t.g_hist.m_sum;
  t.em_last_alloc <- t.g_alloc.m_sum

let record t ?(cf = Cf_none) sh ~site ~sem ~reason ~cycles ~alloc ~now =
  let idx = reason_index reason in
  sh.sh_reasons.(idx) <- sh.sh_reasons.(idx) + 1;
  let cfi = cf_index cf in
  sh.sh_cf.(cfi) <- sh.sh_cf.(cfi) + 1;
  t.g_cf.(cfi) <- t.g_cf.(cfi) + 1;
  sh.sh_calls <- sh.sh_calls + 1;
  sh.sh_cycles <- sh.sh_cycles + cycles;
  (match reason with
   | Deny step ->
     Hashtbl.replace sh.sh_deny step
       (1 + (match Hashtbl.find_opt sh.sh_deny step with Some n -> n | None -> 0))
   | _ -> ());
  let sem_hist =
    match Hashtbl.find_opt sh.sh_per_sem sem with
    | Some h -> h
    | None ->
      let h = { m_counts = Array.make t.nslots 0; m_sum = 0; m_count = 0 } in
      Hashtbl.replace sh.sh_per_sem sem h;
      h
  in
  mhist_observe t.bounds sem_hist cycles;
  mhist_observe t.a_bounds sh.sh_alloc alloc;
  let site_counts =
    match Hashtbl.find_opt sh.sh_sites site with
    | Some a -> a
    | None ->
      let a = Array.make num_reasons 0 in
      Hashtbl.replace sh.sh_sites site a;
      a
  in
  site_counts.(idx) <- site_counts.(idx) + 1;
  Hashtbl.replace sh.sh_site_alloc site
    (alloc + (match Hashtbl.find_opt sh.sh_site_alloc site with Some w -> w | None -> 0));
  Ring.push sh.sh_ledger
    { le_site = site; le_sem = sem; le_reason = reason; le_cycles = cycles;
      le_alloc = alloc; le_ts = now };
  t.g_records <- t.g_records + 1;
  t.g_reasons.(idx) <- t.g_reasons.(idx) + 1;
  if idx = reason_index (Deny "") then t.g_denies <- t.g_denies + 1;
  mhist_observe t.bounds t.g_hist cycles;
  mhist_observe t.a_bounds t.g_alloc alloc;
  if t.em_interval > 0 && now >= t.em_next then begin
    cut_row t ~now;
    t.em_next <- now + t.em_interval
  end

let note_self t sh n =
  sh.sh_self <- sh.sh_self + n;
  t.g_self <- t.g_self + n

(* Sorted-assoc helpers: shard hashtables are exported as sorted assoc
   lists so aggregates built in any order compare structurally equal. *)
let sorted_assoc tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let stats_of_shard _t sh =
  { t_shards = 1;
    t_calls = sh.sh_calls;
    t_cycles = sh.sh_cycles;
    t_self_cycles = sh.sh_self;
    t_alloc_words = sh.sh_alloc.m_sum;
    t_reasons = Array.copy sh.sh_reasons;
    t_cf = Array.copy sh.sh_cf;
    t_deny_steps = sorted_assoc sh.sh_deny;
    t_per_sem =
      List.map
        (fun (k, h) ->
          (k, { q_counts = Array.copy h.m_counts; q_sum = h.m_sum; q_count = h.m_count }))
        (sorted_assoc sh.sh_per_sem);
    t_sites = List.map (fun (k, a) -> (k, Array.copy a)) (sorted_assoc sh.sh_sites);
    t_site_alloc = sorted_assoc sh.sh_site_alloc;
    t_alloc =
      { q_counts = Array.copy sh.sh_alloc.m_counts;
        q_sum = sh.sh_alloc.m_sum;
        q_count = sh.sh_alloc.m_count } }

let add_arrays a b =
  if Array.length a <> Array.length b then
    invalid_arg "Telemetry.merge: mismatched array shapes";
  Array.mapi (fun i x -> x + b.(i)) a

let merge_hist a b =
  (* a zero-length histogram is the merge identity (e.g. [empty_stats]
     before any plane sized its bucket array) *)
  if Array.length a.q_counts = 0 then b
  else if Array.length b.q_counts = 0 then a
  else
    { q_counts = add_arrays a.q_counts b.q_counts;
      q_sum = a.q_sum + b.q_sum;
      q_count = a.q_count + b.q_count }

(* Union of two sorted assoc lists, combining values on key collision.
   Output stays sorted, so the merge result is independent of operand
   order up to structural equality. *)
let rec assoc_union combine xs ys =
  match (xs, ys) with
  | [], rest | rest, [] -> rest
  | (kx, vx) :: xs', (ky, vy) :: ys' ->
    if kx < ky then (kx, vx) :: assoc_union combine xs' ys
    else if ky < kx then (ky, vy) :: assoc_union combine xs ys'
    else (kx, combine vx vy) :: assoc_union combine xs' ys'

let merge a b =
  { t_shards = a.t_shards + b.t_shards;
    t_calls = a.t_calls + b.t_calls;
    t_cycles = a.t_cycles + b.t_cycles;
    t_self_cycles = a.t_self_cycles + b.t_self_cycles;
    t_alloc_words = a.t_alloc_words + b.t_alloc_words;
    t_reasons = add_arrays a.t_reasons b.t_reasons;
    t_cf = add_arrays a.t_cf b.t_cf;
    t_deny_steps = assoc_union ( + ) a.t_deny_steps b.t_deny_steps;
    t_per_sem = assoc_union merge_hist a.t_per_sem b.t_per_sem;
    t_sites = assoc_union add_arrays a.t_sites b.t_sites;
    t_site_alloc = assoc_union ( + ) a.t_site_alloc b.t_site_alloc;
    t_alloc = merge_hist a.t_alloc b.t_alloc }

let aggregate t =
  Hashtbl.fold (fun _ sh acc -> merge acc (stats_of_shard t sh)) t.shards t.retired

let reasons_total s = Array.fold_left ( + ) 0 s.t_reasons
let cf_total s = Array.fold_left ( + ) 0 s.t_cf

let retire_pid t ~pid =
  match Hashtbl.find_opt t.shards pid with
  | None -> ()
  | Some sh ->
    t.retired <- merge t.retired (stats_of_shard t sh);
    Hashtbl.remove t.shards pid

let ledger t ~pid =
  match Hashtbl.find_opt t.shards pid with
  | Some sh -> Ring.to_list sh.sh_ledger
  | None -> []

let live_pids t =
  List.sort compare (Hashtbl.fold (fun pid _ acc -> pid :: acc) t.shards [])

let set_emitter t ~interval =
  if interval < 1 then invalid_arg "Telemetry.set_emitter: interval must be >= 1";
  t.em_interval <- interval;
  t.em_next <- interval

let snapshots t = List.rev t.em_rows

let snapshots_jsonl t =
  String.concat "" (List.map (fun row -> Json.to_string row ^ "\n") (snapshots t))

let self_cycles t = t.g_self
let records t = t.g_records

let stats_to_json t s =
  let quantiles bounds unit h =
    let snap = hist_snapshot_of bounds h in
    Json.Obj [
      ("count", Json.Int h.q_count);
      ("sum_" ^ unit, Json.Int h.q_sum);
      ("mean_" ^ unit, Json.Int (if h.q_count = 0 then 0 else h.q_sum / h.q_count));
      ("p50", Json.Int (Metrics.quantile snap 0.50));
      ("p95", Json.Int (Metrics.quantile snap 0.95));
      ("p99", Json.Int (Metrics.quantile snap 0.99));
    ]
  in
  Json.Obj [
    ("shards", Json.Int s.t_shards);
    ("calls", Json.Int s.t_calls);
    ("cycles", Json.Int s.t_cycles);
    ("self_cycles", Json.Int s.t_self_cycles);
    ("alloc_words", Json.Int s.t_alloc_words);
    ("reasons_total", Json.Int (reasons_total s));
    ("reasons",
     Json.Obj
       (Array.to_list (Array.mapi (fun i l -> (l, Json.Int s.t_reasons.(i))) reason_labels)));
    ("cf_reasons",
     Json.Obj
       (Array.to_list (Array.mapi (fun i l -> (l, Json.Int s.t_cf.(i))) cf_labels)));
    ("deny_steps",
     Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) s.t_deny_steps));
    ("per_syscall",
     Json.Obj (List.map (fun (k, h) -> (k, quantiles t.bounds "cycles" h)) s.t_per_sem));
    ("alloc",
     if Array.length s.t_alloc.q_counts = 0 then
       quantiles [||] "words" { s.t_alloc with q_counts = [| 0 |] }
     else quantiles t.a_bounds "words" s.t_alloc);
    ("sites",
     Json.List
       (List.map
          (fun (site, counts) ->
            Json.Obj
              (("site", Json.Int site)
               :: ("alloc_words",
                   Json.Int
                     (match List.assoc_opt site s.t_site_alloc with Some w -> w | None -> 0))
               :: Array.to_list
                    (Array.mapi (fun i l -> (l, Json.Int counts.(i))) reason_labels)))
          s.t_sites));
  ]
