module Cmac = Asc_crypto.Cmac

type record = {
  seq : int;
  entry : Json.t;
  mac : string;
}

type t = {
  key : Cmac.key;
  ring : record Ring.t;
  genesis : string;
  mutable anchor_seq : int;   (* seq of the last evicted record; 0 = genesis *)
  mutable anchor_mac : string;
  mutable head : string;      (* chain value of the newest record *)
  mutable next_seq : int;
}

let genesis_of key = Cmac.mac key "asc-authlog/v1/genesis"

let create ~key ?(capacity = 4096) () =
  let genesis = genesis_of key in
  { key;
    ring = Ring.create ~capacity;
    genesis;
    anchor_seq = 0;
    anchor_mac = genesis;
    head = genesis;
    next_seq = 1 }

let append t entry =
  (* the record about to be evicted becomes the verification anchor: its
     chain value commits to the whole dropped prefix *)
  if Ring.length t.ring = Ring.capacity t.ring then begin
    match Ring.peek_oldest t.ring with
    | Some r ->
      t.anchor_seq <- r.seq;
      t.anchor_mac <- r.mac
    | None -> ()
  end;
  let mac = Cmac.mac t.key (t.head ^ Json.to_string entry) in
  Ring.push t.ring { seq = t.next_seq; entry; mac };
  t.head <- mac;
  t.next_seq <- t.next_seq + 1

let length t = Ring.length t.ring
let appended t = t.next_seq - 1
let records t = Ring.to_list t.ring
let head_mac t = t.head

(* ----- export ----- *)

let hex s =
  String.concat "" (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

(* strict inverse of [hex]: lowercase digits only, so there is exactly one
   accepted encoding of each MAC (uppercase would give tampered bytes that
   decode to the same value) *)
let unhex s =
  let digit = function
    | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
    | _ -> None
  in
  if String.length s mod 2 <> 0 then None
  else
    try
      Some
        (String.init (String.length s / 2) (fun i ->
             match (digit s.[2 * i], digit s.[(2 * i) + 1]) with
             | Some hi, Some lo -> Char.chr ((hi lsl 4) lor lo)
             | _ -> raise Exit))
    with Exit -> None

let export_string t =
  let buf = Buffer.create 4096 in
  let line j =
    Buffer.add_string buf (Json.to_string j);
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       [ ("kind", Json.Str "authlog");
         ("version", Json.Int 1);
         ("anchor_seq", Json.Int t.anchor_seq);
         ("anchor_mac", Json.Str (hex t.anchor_mac)) ]);
  Ring.iter
    (fun r ->
      line
        (Json.Obj
           [ ("kind", Json.Str "record");
             ("seq", Json.Int r.seq);
             ("entry", r.entry);
             ("mac", Json.Str (hex r.mac)) ]))
    t.ring;
  line
    (Json.Obj
       [ ("kind", Json.Str "head");
         ("seq", Json.Int (t.next_seq - 1));
         ("mac", Json.Str (hex t.head)) ]);
  Buffer.contents buf

let export_file t path =
  let oc = open_out_bin path in
  output_string oc (export_string t);
  close_out oc

(* ----- verification ----- *)

type verify_error = {
  ve_line : int;
  ve_seq : int option;
  ve_what : string;
}

let pp_verify_error ppf e =
  Format.fprintf ppf "line %d%s: %s" e.ve_line
    (match e.ve_seq with Some s -> Printf.sprintf " (seq %d)" s | None -> "")
    e.ve_what

let verify_records ~key ~anchor_seq ~anchor_mac records =
  let err line seq what = Error { ve_line = line; ve_seq = seq; ve_what = what } in
  let rec go line prev_seq prev_mac count = function
    | [] -> Ok count
    | r :: rest ->
      if r.seq <> prev_seq + 1 then
        err line (Some r.seq)
          (Printf.sprintf "sequence break: expected seq %d (reordered or dropped record)"
             (prev_seq + 1))
      else begin
        let expect = Cmac.mac key (prev_mac ^ Json.to_string r.entry) in
        if not (Cmac.equal_tags expect r.mac) then
          err line (Some r.seq) "chain MAC mismatch (record tampered or out of order)"
        else go (line + 1) r.seq r.mac (count + 1) rest
      end
  in
  go 1 anchor_seq anchor_mac 0 records

let verify_string ?expect_head ~key input =
  let err line seq what = Error { ve_line = line; ve_seq = seq; ve_what = what } in
  let lines =
    String.split_on_char '\n' input
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  let parsed =
    List.map
      (fun (n, l) -> match Json.parse l with Ok j -> Ok (n, j) | Error e -> Error (n, e))
      lines
  in
  let ( let* ) = Result.bind in
  let first_parse_error =
    List.find_map (function Error (n, e) -> Some (n, e) | Ok _ -> None) parsed
  in
  match first_parse_error with
  | Some (n, e) -> err n None ("unparseable line: " ^ e)
  | None ->
    let docs = List.filter_map (function Ok d -> Some d | Error _ -> None) parsed in
    let kind_of j = Option.bind (Json.member "kind" j) Json.to_str in
    (match docs with
     | [] -> err 1 None "empty log (no header)"
     | (hline, header) :: rest ->
       let* anchor_seq, anchor_mac =
         if kind_of header <> Some "authlog" then err hline None "missing authlog header"
         else if Option.bind (Json.member "version" header) Json.to_int <> Some 1 then
           err hline None "unsupported authlog version"
         else
           match
             ( Option.bind (Json.member "anchor_seq" header) Json.to_int,
               Option.bind (Json.member "anchor_mac" header) Json.to_str )
           with
           | Some s, Some m ->
             (match unhex m with
              | Some raw when String.length raw = Cmac.tag_len -> Ok (s, raw)
              | _ -> err hline None "malformed anchor MAC")
           | _ -> err hline None "header missing anchor fields"
       in
       let* trailer, record_lines =
         match List.rev rest with
         | [] -> err (hline + 1) None "truncated log: no records and no head trailer"
         | (tline, t) :: rev_records ->
           if kind_of t <> Some "head" then
             err tline None "truncated log: last line is not the head trailer"
           else Ok ((tline, t), List.rev rev_records)
       in
       let* records =
         List.fold_left
           (fun acc (n, j) ->
             let* acc = acc in
             if kind_of j <> Some "record" then err n None "unexpected line kind"
             else
               match
                 ( Option.bind (Json.member "seq" j) Json.to_int,
                   Json.member "entry" j,
                   Option.bind (Json.member "mac" j) Json.to_str )
               with
               | Some seq, Some entry, Some mac_hex ->
                 (match unhex mac_hex with
                  | Some mac when String.length mac = Cmac.tag_len ->
                    Ok ((n, { seq; entry; mac }) :: acc)
                  | _ -> err n (Some seq) "malformed record MAC")
               | _ -> err n None "record missing seq/entry/mac")
           (Ok []) record_lines
         |> Result.map List.rev
       in
       (* re-derive the chain from the anchor *)
       let* count =
         match verify_records ~key ~anchor_seq ~anchor_mac (List.map snd records) with
         | Ok n -> Ok n
         | Error e ->
           (* map the record index back to its file line *)
           let line =
             match List.nth_opt records (e.ve_line - 1) with
             | Some (n, _) -> n
             | None -> e.ve_line
           in
           Error { e with ve_line = line }
       in
       let last_seq, last_mac =
         match List.rev records with
         | (_, r) :: _ -> (r.seq, r.mac)
         | [] -> (anchor_seq, anchor_mac)
       in
       let tline, t = trailer in
       (match
          ( Option.bind (Json.member "seq" t) Json.to_int,
            Option.bind (Json.member "mac" t) Json.to_str )
        with
        | Some seq, Some mac_hex ->
          (match unhex mac_hex with
           | Some mac when String.length mac = Cmac.tag_len ->
             if seq <> last_seq then
               err tline (Some seq)
                 (Printf.sprintf "truncated log: head claims seq %d but last record is %d" seq
                    last_seq)
             else if not (Cmac.equal_tags mac last_mac) then
               err tline (Some seq) "head MAC does not match the chain (tail tampered)"
             else begin
               match expect_head with
               | Some h when String.lowercase_ascii h <> hex mac ->
                 err tline (Some seq)
                   "head MAC differs from the expected head (log truncated to an older \
                    prefix)"
               | _ -> Ok count
             end
           | _ -> err tline None "malformed head MAC")
        | _ -> err tline None "head trailer missing seq/mac"))
