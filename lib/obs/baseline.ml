let number_of = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let within ~tolerance a b =
  Float.abs (a -. b) <= tolerance /. 100. *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let kind = function
  | Json.Null -> "null"
  | Json.Bool _ -> "bool"
  | Json.Int _ | Json.Float _ -> "number"
  | Json.Str _ -> "string"
  | Json.List _ -> "list"
  | Json.Obj _ -> "object"

let compare ~tolerance ~baseline ~actual =
  let problems = ref [] in
  let fail path fmt =
    Format.kasprintf (fun msg -> problems := Printf.sprintf "%s: %s" path msg :: !problems) fmt
  in
  let rec go path base act =
    match number_of base, number_of act with
    | Some b, Some a ->
      if not (within ~tolerance b a) then
        fail path "%g outside %g%% tolerance of baseline %g (drift %+.2f%%)" a tolerance b
          (if b = 0. then Float.infinity else 100. *. (a -. b) /. Float.abs b)
    | _ ->
      (match base, act with
       | Json.Null, Json.Null -> ()
       | Json.Bool b, Json.Bool a -> if b <> a then fail path "expected %b, got %b" b a
       | Json.Str b, Json.Str a -> if b <> a then fail path "expected %S, got %S" b a
       | Json.List bs, Json.List as_ ->
         if List.length bs <> List.length as_ then
           fail path "list length changed: baseline %d, got %d" (List.length bs)
             (List.length as_)
         else
           List.iteri
             (fun i (b, a) -> go (Printf.sprintf "%s[%d]" path i) b a)
             (List.combine bs as_)
       | Json.Obj bs, Json.Obj as_ ->
         let keys l = List.sort Stdlib.compare (List.map fst l) in
         let bkeys = keys bs and akeys = keys as_ in
         if bkeys <> akeys then begin
           let missing = List.filter (fun k -> not (List.mem k akeys)) bkeys in
           let extra = List.filter (fun k -> not (List.mem k bkeys)) akeys in
           List.iter (fun k -> fail path "missing key %S" k) missing;
           List.iter (fun k -> fail path "unexpected key %S" k) extra
         end
         else
           List.iter
             (fun (k, b) -> go (path ^ "." ^ k) b (List.assoc k as_))
             bs
       | b, a -> fail path "kind changed: baseline %s, got %s" (kind b) (kind a))
  in
  go "$" baseline actual;
  match List.rev !problems with [] -> Ok () | ps -> Error ps
