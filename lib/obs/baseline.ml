let number_of = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let within ~tolerance a b =
  Float.abs (a -. b) <= tolerance /. 100. *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let kind = function
  | Json.Null -> "null"
  | Json.Bool _ -> "bool"
  | Json.Int _ | Json.Float _ -> "number"
  | Json.Str _ -> "string"
  | Json.List _ -> "list"
  | Json.Obj _ -> "object"

(* A baseline leaf may be a tolerance-spec object instead of a bare number:
     {"value": 42, "tolerance": {"kind": "abs", "max": 8}}
     {"value": 42, "tolerance": {"kind": "pct", "max": 25}}
   This overrides the comparison for that one field — the way to pin a
   near-zero field (where percentage tolerance is meaningless) to an
   absolute word/cycle budget, or to widen a single noisy field without
   loosening the whole table. *)
let spec_of = function
  | Json.Obj kvs -> (
    match (List.assoc_opt "value" kvs, List.assoc_opt "tolerance" kvs) with
    | Some v, Some (Json.Obj tkvs) when List.length kvs = 2 -> (
      match (number_of v, List.assoc_opt "kind" tkvs, Option.bind (List.assoc_opt "max" tkvs) number_of) with
      | Some value, Some (Json.Str ("abs" as k)), Some max
      | Some value, Some (Json.Str ("pct" as k)), Some max
        when List.length tkvs = 2 ->
        Some (value, k, max)
      | _ -> None)
    | _ -> None)
  | _ -> None

let compare ~tolerance ?(tolerance_abs = 0.) ~baseline ~actual () =
  let problems = ref [] in
  let fail path fmt =
    Format.kasprintf (fun msg -> problems := Printf.sprintf "%s: %s" path msg :: !problems) fmt
  in
  let drift b a = if b = 0. then Float.infinity else 100. *. (a -. b) /. Float.abs b in
  let rec go path base act =
    match spec_of base with
    | Some (b, tkind, max) -> (
      match number_of act with
      | None -> fail path "kind changed: baseline number (spec), got %s" (kind act)
      | Some a -> (
        match tkind with
        | "abs" ->
          if Float.abs (a -. b) > max then
            fail path "%g outside abs tolerance %g of baseline %g (delta %+g)" a max b (a -. b)
        | _ ->
          if not (within ~tolerance:max a b) then
            fail path "%g outside %g%% tolerance of baseline %g (drift %+.2f%%)" a max b
              (drift b a)))
    | None -> (
      match number_of base, number_of act with
      | Some b, Some a ->
        (* the global absolute floor rescues near-zero fields where any
           change is a huge percentage; a field passes on either criterion *)
        if not (within ~tolerance b a || Float.abs (a -. b) <= tolerance_abs) then
          fail path "%g outside %g%% tolerance of baseline %g (drift %+.2f%%)" a tolerance b
            (drift b a)
      | _ ->
        (match base, act with
         | Json.Null, Json.Null -> ()
         | Json.Bool b, Json.Bool a -> if b <> a then fail path "expected %b, got %b" b a
         | Json.Str b, Json.Str a -> if b <> a then fail path "expected %S, got %S" b a
         | Json.List bs, Json.List as_ ->
           if List.length bs <> List.length as_ then
             fail path "list length changed: baseline %d, got %d" (List.length bs)
               (List.length as_)
           else
             List.iteri
               (fun i (b, a) -> go (Printf.sprintf "%s[%d]" path i) b a)
               (List.combine bs as_)
         | Json.Obj bs, Json.Obj as_ ->
           let keys l = List.sort Stdlib.compare (List.map fst l) in
           let bkeys = keys bs and akeys = keys as_ in
           if bkeys <> akeys then begin
             let missing = List.filter (fun k -> not (List.mem k akeys)) bkeys in
             let extra = List.filter (fun k -> not (List.mem k bkeys)) akeys in
             List.iter (fun k -> fail path "missing key %S" k) missing;
             List.iter (fun k -> fail path "unexpected key %S" k) extra
           end
           else
             List.iter
               (fun (k, b) -> go (path ^ "." ^ k) b (List.assoc k as_))
               bs
         | b, a -> fail path "kind changed: baseline %s, got %s" (kind b) (kind a)))
  in
  go "$" baseline actual;
  match List.rev !problems with [] -> Ok () | ps -> Error ps
