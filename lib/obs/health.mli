(** Fleet health: a declarative SLO rule engine over {!Telemetry}
    snapshot rows.

    Rules are evaluated once per snapshot row (one per emitter interval).
    Each rule computes one {e signal} from the row — a raw field, a ratio
    of two fields, or one of the built-in rates derived from the
    cumulative reason counters (the engine remembers the previous row, so
    cumulative counters become per-interval deltas) — and compares it to a
    threshold, either directly or as a {e burn rate} (the mean over a
    sliding window of recent intervals, the SLO error-budget view).

    Breaches do not flap: a rule arms on its first breaching interval,
    fires only after [for] {e consecutive} breaches, and once fired clears
    only after [cool] consecutive healthy intervals. Every state change is
    emitted as a {!transition}; the conservation invariant
    [fired = cleared + currently firing] holds at every point (each fired
    alert is either cleared already or still active — the QCheck test in
    [test_obs] pins this). An interval in which a rule's signal is
    undefined (e.g. a rate over zero calls) changes nothing. *)

type signal =
  | Deny_rate           (** 100 * interval_denies / interval_calls *)
  | Precomp_hit_rate    (** 100 * Δ(precomp_hit + precomp_resumed) / interval_calls *)
  | Vcache_hit_rate     (** 100 * Δvcache_hit / interval_calls *)
  | P99_cycles          (** the row's [p99] field *)
  | Alloc_per_call      (** interval_alloc_words / interval_calls *)
  | Field of string     (** any numeric row field, verbatim *)
  | Ratio of string * string  (** 100 * field_a / field_b (undefined when b = 0) *)

type op = Gt | Ge | Lt | Le

type rule = {
  r_name : string;
  r_signal : signal;
  r_op : op;
  r_threshold : float;
  r_window : int;   (** 1 = plain threshold; > 1 = burn rate (mean over
                        the last [window] defined signal values) *)
  r_for : int;      (** consecutive breaching intervals before firing *)
  r_cool : int;     (** consecutive healthy intervals before clearing *)
}

val default_rules : rule list
(** Compiled-in defaults covering the four SLOs the ISSUE names: deny
    rate (threshold + burn rate), precomp hit rate, p99 dispatch cycles
    and per-call minor words. *)

val rules_of_json : Json.t -> (rule list, string) result
(** Parse a rule spec: [{"rules": [{"name", "signal", "op", "threshold",
    "window"?, "for"?, "cool"?}, ...]}]. ["signal"] is a built-in name
    ([deny_rate_pct], [precomp_hit_rate_pct], [vcache_hit_rate_pct],
    [p99_cycles], [alloc_words_per_call]), [{"field": f}], or
    [{"ratio": [num, den]}]. ["op"] is one of [">" ">=" "<" "<="].
    [window]/[for]/[cool] default to 1. *)

val rules_of_string : string -> (rule list, string) result
val rule_to_json : rule -> Json.t
(** Round-trips through {!rules_of_json} (built-in signals keep their
    names; thresholds and hysteresis parameters are preserved). *)

(** {1 Evaluation} *)

type event = Armed | Disarmed | Fired | Cleared

val event_label : event -> string

type transition = {
  tr_rule : string;
  tr_event : event;
  tr_ts : int;          (** the triggering row's [ts] *)
  tr_value : float;     (** the evaluated signal (windowed mean for burn rules) *)
  tr_threshold : float;
}

val transition_to_json : transition -> Json.t
(** [{"ts", "rule", "event", "value", "threshold"}]. *)

type t

val create : rule list -> t
(** Fresh engine, every rule healthy.
    @raise Invalid_argument on a rule with [window], [for] or [cool] < 1,
    or a duplicate rule name. *)

val observe : t -> Json.t -> transition list
(** Evaluate every rule against one snapshot row (rows must be fed oldest
    first — the engine deltas the cumulative reason counters between
    consecutive calls). Returns the transitions this row caused, in rule
    order. *)

val observe_all : t -> Json.t list -> transition list
(** Fold {!observe} over rows, concatenating transitions. *)

val transitions : t -> transition list
(** Every transition emitted so far, oldest first. *)

val firing : t -> string list
(** Names of rules currently in the fired (active alert) state. *)

val counts : t -> int * int * int * int
(** (armed, disarmed, fired, cleared) totals. Conservation:
    [fired = cleared + List.length (firing t)]. *)

val summary : t -> string
(** One human line per rule: state, last value, threshold. *)
