type 'a t = {
  slots : 'a option array;
  mutable start : int;   (* index of the oldest element *)
  mutable len : int;
  mutable pushed : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { slots = Array.make capacity None; start = 0; len = 0; pushed = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let pushed t = t.pushed
let dropped t = t.pushed - t.len

let peek_oldest t = if t.len = 0 then None else t.slots.(t.start)

let push t x =
  let cap = Array.length t.slots in
  if t.len < cap then begin
    t.slots.((t.start + t.len) mod cap) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    t.slots.(t.start) <- Some x;
    t.start <- (t.start + 1) mod cap
  end;
  t.pushed <- t.pushed + 1

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.start <- 0;
  t.len <- 0;
  t.pushed <- 0

let iter f t =
  let cap = Array.length t.slots in
  for i = 0 to t.len - 1 do
    match t.slots.((t.start + i) mod cap) with
    | Some x -> f x
    | None -> ()
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)
