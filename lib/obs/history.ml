let path_of ~dir ~name = Filename.concat dir (name ^ ".jsonl")

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let rec go acc =
      match input_line ic with
      | line -> go (if String.trim line = "" then acc else line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = go [] in
    close_in ic;
    lines
  end

let append ~dir ~name ?keep row =
  (match keep with
  | Some k when k < 1 -> invalid_arg "History.append: keep must be >= 1"
  | _ -> ());
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = path_of ~dir ~name in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Json.to_string row);
  output_char oc '\n';
  close_out oc;
  match keep with
  | None -> ()
  | Some k ->
      let lines = read_lines path in
      let n = List.length lines in
      if n > k then begin
        let newest = List.filteri (fun i _ -> i >= n - k) lines in
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          newest;
        close_out oc;
        Sys.rename tmp path
      end

let read ~dir ~name =
  let path = path_of ~dir ~name in
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match Json.parse line with
        | Ok j -> go (j :: acc) (i + 1) rest
        | Error e -> Error (Printf.sprintf "%s:%d: %s" path i e))
  in
  go [] 1 (read_lines path)
