(** Baseline regression checking for exported benchmark documents.

    A baseline is a previously committed JSON snapshot of a benchmark
    table (a [BENCH_<table>.json] file). {!compare} diffs a freshly
    produced document against it: the *schema* must match exactly — same
    object keys, same list lengths, same value kinds, identical strings,
    booleans and nulls — while *numeric* leaves may drift within a
    relative tolerance. This is what lets the deterministic cycle model
    act as a regression gate: a refactor that shifts a table's numbers
    beyond tolerance (or changes its shape at all) fails the benchmark
    run instead of silently rewriting history. *)

val compare :
  tolerance:float ->
  ?tolerance_abs:float ->
  baseline:Json.t ->
  actual:Json.t ->
  unit ->
  (unit, string list) result
(** [compare ~tolerance ~baseline ~actual ()] is [Ok ()] when [actual]
    matches [baseline] as described above. [tolerance] is a percentage:
    a numeric leaf passes when
    [|actual - baseline| <= tolerance/100 * max(|baseline|, |actual|, 1)]
    (the [1] floor keeps near-zero values from demanding exact equality).
    [tolerance_abs] (default 0) is a global absolute floor: a numeric
    leaf also passes when [|actual - baseline| <= tolerance_abs] — the
    sane gate for fields whose expected value is at or near zero, where
    any drift is an enormous percentage. A leaf passes on {e either}
    criterion.

    A baseline leaf may also be a per-field tolerance spec instead of a
    bare number:
    {[ {"value": 42, "tolerance": {"kind": "abs", "max": 8}} ]}
    with [kind] one of ["abs"] (absolute units) or ["pct"] (percentage,
    same formula as [tolerance]). The spec overrides both global
    tolerances for that leaf; the actual document still carries a plain
    number there. [Int] and [Float] are numerically interchangeable. On
    mismatch, returns every offending leaf as a ["$.path: reason"]
    message. *)
