(** Baseline regression checking for exported benchmark documents.

    A baseline is a previously committed JSON snapshot of a benchmark
    table (a [BENCH_<table>.json] file). {!compare} diffs a freshly
    produced document against it: the *schema* must match exactly — same
    object keys, same list lengths, same value kinds, identical strings,
    booleans and nulls — while *numeric* leaves may drift within a
    relative tolerance. This is what lets the deterministic cycle model
    act as a regression gate: a refactor that shifts a table's numbers
    beyond tolerance (or changes its shape at all) fails the benchmark
    run instead of silently rewriting history. *)

val compare :
  tolerance:float -> baseline:Json.t -> actual:Json.t -> (unit, string list) result
(** [compare ~tolerance ~baseline ~actual] is [Ok ()] when [actual]
    matches [baseline] as described above. [tolerance] is a percentage:
    a numeric leaf passes when
    [|actual - baseline| <= tolerance/100 * max(|baseline|, |actual|, 1)]
    (the [1] floor keeps near-zero values from demanding exact equality).
    [Int] and [Float] are numerically interchangeable. On mismatch,
    returns every offending leaf as a ["$.path: reason"] message. *)
