type entry = string list * int

type delta = {
  d_key : string;
  d_base : int;
  d_actual : int;
}

let d_delta d = d.d_actual - d.d_base

let d_rel d =
  if d.d_base = 0 then 0.0
  else 100.0 *. float_of_int (d_delta d) /. float_of_int (abs d.d_base)

type report = {
  rp_resource : string;
  rp_noise : int;
  rp_total_base : int;
  rp_total_actual : int;
  rp_stacks : delta list;
  rp_frames : delta list;
  rp_steps : delta list;
  rp_sites : delta list;
}

let is_step_frame name =
  String.length name > 9
  && String.sub name 0 8 = "<kernel:"
  && name.[String.length name - 1] = '>'

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let is_site_frame name = contains_sub name "@site_"

(* Aggregate (base, actual) pairs under string keys, preserving exact
   integer weights; the same accumulator serves stacks and every rollup. *)
let acc_add tbl key base actual =
  match Hashtbl.find_opt tbl key with
  | Some (b, a) -> Hashtbl.replace tbl key (b + base, a + actual)
  | None -> Hashtbl.add tbl key (base, actual)

let ranked ~noise tbl =
  Hashtbl.fold
    (fun key (b, a) acc ->
      if abs (a - b) > noise then { d_key = key; d_base = b; d_actual = a } :: acc
      else acc)
    tbl []
  |> List.sort (fun x y ->
         match compare (abs (d_delta y)) (abs (d_delta x)) with
         | 0 -> (
             match compare (abs_float (d_rel y)) (abs_float (d_rel x)) with
             | 0 -> compare x.d_key y.d_key
             | c -> c)
         | c -> c)

let deepest_site stack =
  List.fold_left (fun acc f -> if is_site_frame f then Some f else acc) None stack

let leaf stack = match List.rev stack with [] -> None | l :: _ -> Some l

let diff ?(noise = 0) ~base ~actual ~resource () =
  let stacks = Hashtbl.create 64 in
  let add side entries =
    List.iter
      (fun (stack, w) ->
        let key = String.concat ";" stack in
        let b, a = match Hashtbl.find_opt stacks key with Some p -> p | None -> (0, 0) in
        Hashtbl.replace stacks key (match side with `Base -> (b + w, a) | `Actual -> (b, a + w)))
      entries
  in
  add `Base base;
  add `Actual actual;
  (* Rollups re-walk the original entries so frame classification sees the
     real stack structure, not the joined key. *)
  let frames = Hashtbl.create 64 in
  let steps = Hashtbl.create 16 in
  let sites = Hashtbl.create 16 in
  let roll side entries =
    List.iter
      (fun (stack, w) ->
        let b, a = match side with `Base -> (w, 0) | `Actual -> (0, w) in
        (match leaf stack with
        | Some l ->
            acc_add frames l b a;
            if is_step_frame l then acc_add steps l b a
        | None -> ());
        match deepest_site stack with
        | Some s -> acc_add sites s b a
        | None -> ())
      entries
  in
  roll `Base base;
  roll `Actual actual;
  let total entries = List.fold_left (fun acc (_, w) -> acc + w) 0 entries in
  {
    rp_resource = resource;
    rp_noise = noise;
    rp_total_base = total base;
    rp_total_actual = total actual;
    rp_stacks = ranked ~noise stacks;
    rp_frames = ranked ~noise frames;
    rp_steps = ranked ~noise steps;
    rp_sites = ranked ~noise sites;
  }

let is_empty rp =
  rp.rp_stacks = [] && rp.rp_frames = [] && rp.rp_steps = [] && rp.rp_sites = []
  && abs (rp.rp_total_actual - rp.rp_total_base) <= rp.rp_noise

type side = { s_cycles : entry list; s_alloc : entry list }

let ( let* ) = Result.bind

let entries_of_member ~key ~weight j =
  match Json.member key j with
  | None -> Ok []
  | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            let stack =
              match Json.member "stack" item with
              | Some (Json.List fs) ->
                  let names = List.filter_map Json.to_str fs in
                  if List.length names = List.length fs then Some names else None
              | _ -> None
            in
            let w = Option.bind (Json.member weight item) Json.to_int in
            match (stack, w) with
            | Some stack, Some w -> go ((stack, w) :: acc) rest
            | _ -> Error (Printf.sprintf "malformed %s entry (want {\"stack\":[...],\"%s\":n})" key weight))
      in
      go [] items
  | Some _ -> Error (Printf.sprintf "\"%s\" is not an array" key)

let of_json j =
  let unwrap j =
    match Json.member "stacks" j with
    | Some _ -> Ok j
    | None -> (
        match Json.member "profile" j with
        | Some (Json.Obj _ as p) -> Ok p
        | _ -> Error "not a profile export: no \"stacks\" and no nested \"profile\" object")
  in
  let* p = unwrap j in
  let* s_cycles = entries_of_member ~key:"stacks" ~weight:"cycles" p in
  let* s_alloc = entries_of_member ~key:"alloc_stacks" ~weight:"words" p in
  Ok { s_cycles; s_alloc }

let diff_sides ?noise ~base ~actual () =
  ( diff ?noise ~base:base.s_cycles ~actual:actual.s_cycles ~resource:"cycles" (),
    diff ?noise ~base:base.s_alloc ~actual:actual.s_alloc ~resource:"words" () )

let folded_diff rp =
  let buf = Buffer.create 256 in
  List.iter
    (fun d -> Buffer.add_string buf (Printf.sprintf "%s %+d\n" d.d_key (d_delta d)))
    rp.rp_stacks;
  Buffer.contents buf

let delta_line unit_ d =
  if d.d_base = 0 then
    Printf.sprintf "%-40s %+d %s  (new: 0 -> %d)" d.d_key (d_delta d) unit_ d.d_actual
  else
    Printf.sprintf "%-40s %+d %s  (%d -> %d, %+.1f%%)" d.d_key (d_delta d) unit_ d.d_base
      d.d_actual (d_rel d)

let take n l =
  let rec go n = function x :: rest when n > 0 -> x :: go (n - 1) rest | _ -> [] in
  go n l

let blame_table ?(top = 10) rp =
  if is_empty rp then ""
  else begin
    let buf = Buffer.create 512 in
    let section title ds =
      if ds <> [] then begin
        Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" rp.rp_resource title);
        List.iter
          (fun d -> Buffer.add_string buf ("  " ^ delta_line rp.rp_resource d ^ "\n"))
          (take top ds)
      end
    in
    Buffer.add_string buf
      (Printf.sprintf "total %s: %d -> %d (%+d)\n" rp.rp_resource rp.rp_total_base
         rp.rp_total_actual (rp.rp_total_actual - rp.rp_total_base));
    section "frames (self)" rp.rp_frames;
    section "checker steps" rp.rp_steps;
    section "call sites (inclusive)" rp.rp_sites;
    Buffer.contents buf
  end

type leaf_delta = {
  l_path : string;
  l_base : float;
  l_actual : float;
}

let diff_doc ~base ~actual =
  let acc = ref [] in
  let num = function Json.Int n -> Some (float_of_int n) | Json.Float f -> Some f | _ -> None in
  let rec walk path b a =
    match (b, a) with
    | Json.Obj bs, Json.Obj as_ ->
        List.iter
          (fun (k, bv) ->
            match List.assoc_opt k as_ with
            | Some av -> walk (path ^ "." ^ k) bv av
            | None -> ())
          bs
    | Json.List bs, Json.List as_ ->
        List.iteri
          (fun i bv ->
            match List.nth_opt as_ i with
            | Some av -> walk (Printf.sprintf "%s[%d]" path i) bv av
            | None -> ())
          bs
    | _ -> (
        match (num b, num a) with
        | Some bf, Some af when bf <> af -> acc := { l_path = path; l_base = bf; l_actual = af } :: !acc
        | _ -> ())
  in
  walk "$" base actual;
  List.sort
    (fun x y ->
      match compare (abs_float (y.l_actual -. y.l_base)) (abs_float (x.l_actual -. x.l_base)) with
      | 0 -> compare x.l_path y.l_path
      | c -> c)
    !acc

let steps = [ "call_mac"; "string_mac"; "control_flow"; "ext" ]

let step_of_path path =
  let seg =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  if List.mem seg steps then Some seg else None

let fnum v =
  if Float.is_integer v then Printf.sprintf "%.0f" v else Printf.sprintf "%.4g" v

let fnum_signed v =
  if Float.is_integer v then Printf.sprintf "%+.0f" v else Printf.sprintf "%+.4g" v

let render_doc_blame ?(top = 8) deltas =
  if deltas = [] then ""
  else begin
    let buf = Buffer.create 256 in
    List.iter
      (fun l ->
        let d = l.l_actual -. l.l_base in
        let rel =
          if l.l_base = 0.0 then "" else Printf.sprintf ", %+.1f%%" (100.0 *. d /. abs_float l.l_base)
        in
        let tag =
          match step_of_path l.l_path with
          | Some s -> Printf.sprintf "  [<kernel:%s>]" s
          | None -> ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s  %s  (%s -> %s%s)%s\n" l.l_path (fnum_signed d) (fnum l.l_base)
             (fnum l.l_actual) rel tag))
      (take top deltas);
    Buffer.contents buf
  end
