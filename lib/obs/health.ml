type signal =
  | Deny_rate
  | Precomp_hit_rate
  | Vcache_hit_rate
  | P99_cycles
  | Alloc_per_call
  | Field of string
  | Ratio of string * string

type op = Gt | Ge | Lt | Le

type rule = {
  r_name : string;
  r_signal : signal;
  r_op : op;
  r_threshold : float;
  r_window : int;
  r_for : int;
  r_cool : int;
}

let default_rules =
  [
    { r_name = "deny-rate"; r_signal = Deny_rate; r_op = Gt; r_threshold = 1.0;
      r_window = 1; r_for = 2; r_cool = 2 };
    { r_name = "deny-burn"; r_signal = Deny_rate; r_op = Gt; r_threshold = 0.5;
      r_window = 5; r_for = 1; r_cool = 2 };
    { r_name = "precomp-hit-rate"; r_signal = Precomp_hit_rate; r_op = Lt; r_threshold = 40.0;
      r_window = 1; r_for = 3; r_cool = 3 };
    { r_name = "p99-dispatch"; r_signal = P99_cycles; r_op = Gt; r_threshold = 60_000.0;
      r_window = 1; r_for = 2; r_cool = 2 };
    { r_name = "alloc-per-call"; r_signal = Alloc_per_call; r_op = Gt; r_threshold = 1_500.0;
      r_window = 1; r_for = 2; r_cool = 2 };
  ]

let signal_names =
  [
    ("deny_rate_pct", Deny_rate);
    ("precomp_hit_rate_pct", Precomp_hit_rate);
    ("vcache_hit_rate_pct", Vcache_hit_rate);
    ("p99_cycles", P99_cycles);
    ("alloc_words_per_call", Alloc_per_call);
  ]

let signal_name s =
  match List.find_opt (fun (_, s') -> s' = s) signal_names with
  | Some (n, _) -> Some n
  | None -> None

let op_names = [ (">", Gt); (">=", Ge); ("<", Lt); ("<=", Le) ]
let op_label op = fst (List.find (fun (_, o) -> o = op) op_names)

let ( let* ) = Result.bind

let signal_of_json = function
  | Json.Str name -> (
      match List.assoc_opt name signal_names with
      | Some s -> Ok s
      | None ->
          Error
            (Printf.sprintf "unknown signal %S (want one of %s, {\"field\":f} or {\"ratio\":[a,b]})"
               name
               (String.concat ", " (List.map fst signal_names))))
  | Json.Obj _ as j -> (
      match (Json.member "field" j, Json.member "ratio" j) with
      | Some (Json.Str f), None -> Ok (Field f)
      | None, Some (Json.List [ Json.Str a; Json.Str b ]) -> Ok (Ratio (a, b))
      | _ -> Error "malformed signal object (want {\"field\":f} or {\"ratio\":[a,b]})")
  | _ -> Error "signal must be a string or an object"

let rule_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let fnum k = Option.bind (Json.member k j) Json.to_float in
  let inum ~default k =
    match Json.member k j with
    | None -> Ok default
    | Some v -> (
        match Json.to_int v with
        | Some n when n >= 1 -> Ok n
        | _ -> Error (Printf.sprintf "%S must be an integer >= 1" k))
  in
  let* name = Option.to_result ~none:"rule missing \"name\"" (str "name") in
  let ctx msg = Printf.sprintf "rule %S: %s" name msg in
  let* signal =
    match Json.member "signal" j with
    | None -> Error (ctx "missing \"signal\"")
    | Some s -> Result.map_error ctx (signal_of_json s)
  in
  let* op =
    match str "op" with
    | Some o -> (
        match List.assoc_opt o op_names with
        | Some op -> Ok op
        | None -> Error (ctx (Printf.sprintf "unknown op %S (want > >= < <=)" o)))
    | None -> Error (ctx "missing \"op\"")
  in
  let* threshold =
    Option.to_result ~none:(ctx "missing numeric \"threshold\"") (fnum "threshold")
  in
  let* window = Result.map_error ctx (inum ~default:1 "window") in
  let* r_for = Result.map_error ctx (inum ~default:1 "for") in
  let* cool = Result.map_error ctx (inum ~default:1 "cool") in
  Ok
    { r_name = name; r_signal = signal; r_op = op; r_threshold = threshold;
      r_window = window; r_for; r_cool = cool }

let rules_of_json j =
  match Json.member "rules" j with
  | Some (Json.List rs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest ->
            let* rule = rule_of_json r in
            go (rule :: acc) rest
      in
      go [] rs
  | _ -> Error "rule spec must be {\"rules\": [...]}"

let rules_of_string s =
  let* j = Json.parse s in
  rules_of_json j

let rule_to_json r =
  let signal =
    match r.r_signal with
    | Field f -> Json.Obj [ ("field", Json.Str f) ]
    | Ratio (a, b) -> Json.Obj [ ("ratio", Json.List [ Json.Str a; Json.Str b ]) ]
    | s -> Json.Str (Option.get (signal_name s))
  in
  Json.Obj
    [
      ("name", Json.Str r.r_name);
      ("signal", signal);
      ("op", Json.Str (op_label r.r_op));
      ("threshold", Json.Float r.r_threshold);
      ("window", Json.Int r.r_window);
      ("for", Json.Int r.r_for);
      ("cool", Json.Int r.r_cool);
    ]

type event = Armed | Disarmed | Fired | Cleared

let event_label = function
  | Armed -> "armed"
  | Disarmed -> "disarmed"
  | Fired -> "fired"
  | Cleared -> "cleared"

type transition = {
  tr_rule : string;
  tr_event : event;
  tr_ts : int;
  tr_value : float;
  tr_threshold : float;
}

let transition_to_json tr =
  Json.Obj
    [
      ("ts", Json.Int tr.tr_ts);
      ("rule", Json.Str tr.tr_rule);
      ("event", Json.Str (event_label tr.tr_event));
      ("value", Json.Float tr.tr_value);
      ("threshold", Json.Float tr.tr_threshold);
    ]

(* Per-rule hysteresis state: [Pending] counts consecutive breaches on
   the way to firing, [Firing] counts consecutive healthy intervals on
   the way to clearing. *)
type state = Healthy | Pending of int | Firing of int

type rstate = {
  rs_rule : rule;
  mutable rs_state : state;
  mutable rs_window : float list;  (* recent defined signal values, newest first *)
  mutable rs_last : float option;  (* last evaluated (windowed) value *)
}

type t = {
  rules : rstate list;
  mutable last_reasons : (string * int) list;  (* cumulative, from the previous row *)
  mutable trs : transition list;  (* newest first *)
  mutable n_armed : int;
  mutable n_disarmed : int;
  mutable n_fired : int;
  mutable n_cleared : int;
}

let create rules =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun r ->
      if r.r_window < 1 || r.r_for < 1 || r.r_cool < 1 then
        invalid_arg (Printf.sprintf "Health.create: rule %S: window/for/cool must be >= 1" r.r_name);
      if Hashtbl.mem seen r.r_name then
        invalid_arg (Printf.sprintf "Health.create: duplicate rule name %S" r.r_name);
      Hashtbl.add seen r.r_name ())
    rules;
  {
    rules = List.map (fun r -> { rs_rule = r; rs_state = Healthy; rs_window = []; rs_last = None }) rules;
    last_reasons = [];
    trs = [];
    n_armed = 0;
    n_disarmed = 0;
    n_fired = 0;
    n_cleared = 0;
  }

let field row k = Option.bind (Json.member k row) Json.to_float

let eval_signal ~row ~reason_delta = function
  | Field f -> field row f
  | P99_cycles -> field row "p99"
  | Ratio (a, b) -> (
      match (field row a, field row b) with
      | Some av, Some bv when bv > 0.0 -> Some (100.0 *. av /. bv)
      | _ -> None)
  | (Deny_rate | Precomp_hit_rate | Vcache_hit_rate | Alloc_per_call) as s -> (
      match field row "interval_calls" with
      | Some calls when calls > 0.0 -> (
          match s with
          | Deny_rate ->
              Option.map (fun d -> 100.0 *. d /. calls) (field row "interval_denies")
          | Alloc_per_call ->
              Option.map (fun w -> w /. calls) (field row "interval_alloc_words")
          | Precomp_hit_rate ->
              Some (100.0 *. float_of_int (reason_delta "precomp_hit" + reason_delta "precomp_resumed") /. calls)
          | Vcache_hit_rate -> Some (100.0 *. float_of_int (reason_delta "vcache_hit") /. calls)
          | _ -> None)
      | _ -> None)

let breaches op threshold v =
  match op with Gt -> v > threshold | Ge -> v >= threshold | Lt -> v < threshold | Le -> v <= threshold

let take n l =
  let rec go n = function x :: rest when n > 0 -> x :: go (n - 1) rest | _ -> [] in
  go n l

let observe t row =
  let ts = match Option.bind (Json.member "ts" row) Json.to_int with Some n -> n | None -> 0 in
  let cur_reasons =
    match Json.member "reasons" row with
    | Some (Json.Obj kvs) -> List.filter_map (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v)) kvs
    | _ -> []
  in
  let prev_reasons = t.last_reasons in
  let reason_delta label =
    let cur = match List.assoc_opt label cur_reasons with Some n -> n | None -> 0 in
    let prev = match List.assoc_opt label prev_reasons with Some n -> n | None -> 0 in
    cur - prev
  in
  if cur_reasons <> [] then t.last_reasons <- cur_reasons;
  let emitted = ref [] in
  List.iter
    (fun rs ->
      let r = rs.rs_rule in
      match eval_signal ~row ~reason_delta r.r_signal with
      | None -> ()  (* undefined this interval: no state change *)
      | Some raw ->
          rs.rs_window <- take r.r_window (raw :: rs.rs_window);
          let value =
            if r.r_window = 1 then raw
            else
              List.fold_left ( +. ) 0.0 rs.rs_window /. float_of_int (List.length rs.rs_window)
          in
          rs.rs_last <- Some value;
          let emit ev =
            (match ev with
            | Armed -> t.n_armed <- t.n_armed + 1
            | Disarmed -> t.n_disarmed <- t.n_disarmed + 1
            | Fired -> t.n_fired <- t.n_fired + 1
            | Cleared -> t.n_cleared <- t.n_cleared + 1);
            let tr =
              { tr_rule = r.r_name; tr_event = ev; tr_ts = ts; tr_value = value;
                tr_threshold = r.r_threshold }
            in
            t.trs <- tr :: t.trs;
            emitted := tr :: !emitted
          in
          let breach = breaches r.r_op r.r_threshold value in
          (match (rs.rs_state, breach) with
          | Healthy, false -> ()
          | Healthy, true ->
              if r.r_for <= 1 then begin rs.rs_state <- Firing 0; emit Fired end
              else begin rs.rs_state <- Pending 1; emit Armed end
          | Pending k, true ->
              if k + 1 >= r.r_for then begin rs.rs_state <- Firing 0; emit Fired end
              else rs.rs_state <- Pending (k + 1)
          | Pending _, false -> rs.rs_state <- Healthy; emit Disarmed
          | Firing _, true -> rs.rs_state <- Firing 0
          | Firing h, false ->
              if h + 1 >= r.r_cool then begin rs.rs_state <- Healthy; emit Cleared end
              else rs.rs_state <- Firing (h + 1)))
    t.rules;
  List.rev !emitted

let observe_all t rows = List.concat_map (observe t) rows

let transitions t = List.rev t.trs
let firing t =
  List.filter_map
    (fun rs -> match rs.rs_state with Firing _ -> Some rs.rs_rule.r_name | _ -> None)
    t.rules

let counts t = (t.n_armed, t.n_disarmed, t.n_fired, t.n_cleared)

let summary t =
  let buf = Buffer.create 256 in
  List.iter
    (fun rs ->
      let r = rs.rs_rule in
      let state =
        match rs.rs_state with
        | Healthy -> "ok"
        | Pending k -> Printf.sprintf "armed(%d/%d)" k r.r_for
        | Firing _ -> "FIRING"
      in
      let last = match rs.rs_last with Some v -> Printf.sprintf "%.2f" v | None -> "-" in
      Buffer.add_string buf
        (Printf.sprintf "%-18s %-10s last=%-10s %s %.2f%s\n" r.r_name state last
           (op_label r.r_op) r.r_threshold
           (if r.r_window > 1 then Printf.sprintf " (burn, window %d)" r.r_window else "")))
    t.rules;
  Buffer.contents buf
