(** Differential profiles: structural diff of two {!Profile} exports.

    A profile export is a set of folded stacks per resource (cycles and
    minor words). [Diffprof] aligns the two sides' stacks by exact frame
    sequence, computes signed per-stack deltas, and rolls them up three
    ways — per leaf frame (self weight), per checker step (the
    [<kernel:...>] synthetic frames) and per call site (the
    [name@site_0x...] frames the kernel pushes per trap, attributed with
    inclusive subtree weight). A noise floor suppresses deltas whose
    magnitude does not exceed it, so a profile diffed against itself is
    always empty and model-exact reproductions stay quiet.

    The same machinery covers benchmark documents: {!diff_doc} walks two
    JSON trees and ranks every numeric leaf that moved, which is what the
    bench baseline gate uses to say {e which} field regressed instead of
    only that one did. *)

type entry = string list * int
(** One folded stack: outermost frame first, with its self weight —
    exactly the shape {!Profile.folded} / {!Profile.folded_alloc}
    produce. *)

type delta = {
  d_key : string;      (** stack rendered [f;g;h], or rollup frame name *)
  d_base : int;
  d_actual : int;
}

val d_delta : delta -> int
(** [actual - base], signed. *)

val d_rel : delta -> float
(** Relative delta in percent against the base weight; 0 when the base is
    0 (a frame that only exists on one side is ranked by magnitude). *)

type report = {
  rp_resource : string;        (** ["cycles"] or ["words"] *)
  rp_noise : int;              (** the floor the deltas were filtered at *)
  rp_total_base : int;
  rp_total_actual : int;
  rp_stacks : delta list;      (** per-stack, |delta| > noise, ranked *)
  rp_frames : delta list;      (** per leaf frame (self weight), ranked *)
  rp_steps : delta list;       (** the [<kernel:...>] subset of frames *)
  rp_sites : delta list;       (** per deepest [@site_] frame, inclusive *)
}

val is_step_frame : string -> bool
(** [<kernel:...>] synthetic frames — the checker's charged steps. *)

val is_site_frame : string -> bool
(** Frames containing [@site_] — the kernel's per-trap call-site tags. *)

val diff : ?noise:int -> base:entry list -> actual:entry list -> resource:string -> unit -> report
(** Align and diff two folded-stack sets. [noise] (default 0) is the
    absolute floor: only deltas with [abs (actual - base) > noise]
    survive, in every rollup. Ranking is by absolute delta descending,
    ties by relative delta then key. *)

val is_empty : report -> bool
(** No surviving delta in any rollup and the totals agree within the
    noise floor. [diff] of any entry set against itself is empty. *)

type side = { s_cycles : entry list; s_alloc : entry list }

val of_json : Json.t -> (side, string) result
(** Load a profile export: accepts both the bare {!Profile.to_json}
    object and the [asc_profile --json] document that nests it under a
    ["profile"] member. *)

val diff_sides : ?noise:int -> base:side -> actual:side -> unit -> report * report
(** Cycles report and minor-words report, in that order. *)

val folded_diff : report -> string
(** flamegraph-style folded delta lines, ["f;g;h +123"], one per
    surviving stack delta, in ranked order. *)

val blame_table : ?top:int -> report -> string
(** Human-readable top-N (default 10) blame table over the frame, step
    and site rollups: signed absolute and relative delta per row. Empty
    string when the report {!is_empty}. *)

(** {1 Document attribution} — numeric-leaf diff of two JSON trees. *)

type leaf_delta = {
  l_path : string;    (** [$.rows[3].verification.control_flow] *)
  l_base : float;
  l_actual : float;
}

val diff_doc : base:Json.t -> actual:Json.t -> leaf_delta list
(** Every numeric leaf present in both trees whose value moved, ranked by
    absolute delta descending (ties by path). Leaves present on only one
    side, and non-numeric leaves, are ignored — {!Baseline.compare}
    already reports shape mismatches. *)

val step_of_path : string -> string option
(** The checker step name if the leaf path ends in one
    ([call_mac], [string_mac], [control_flow], [ext]). *)

val render_doc_blame : ?top:int -> leaf_delta list -> string
(** Top-N (default 8) blame lines for a document diff; step-classified
    leaves are tagged with their [<kernel:...>] frame name. Empty string
    for an empty diff. *)
