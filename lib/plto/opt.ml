let ctr_unreachable = Asc_obs.Metrics.counter Asc_obs.Metrics.default "plto.blocks_removed"
let ctr_nops = Asc_obs.Metrics.counter Asc_obs.Metrics.default "plto.nops_removed"

let remove_unreachable ?roots t =
  let live = Cfg.reachable ?roots t in
  let before = List.length t.Ir.blocks in
  t.Ir.blocks <- List.filter (fun (b : Ir.block) -> Hashtbl.mem live b.bid) t.Ir.blocks;
  let removed = before - List.length t.Ir.blocks in
  Asc_obs.Metrics.add ctr_unreachable removed;
  removed

let remove_nops t =
  let removed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let keep =
        List.filter
          (fun (i : Ir.tinstr) ->
            match i with
            | Ir.Plain Svm.Isa.Nop ->
              incr removed;
              false
            | Ir.Plain _ | Ir.Movi _ | Ir.Sys -> true)
          b.body
      in
      b.body <- keep)
    t.Ir.blocks;
  Asc_obs.Metrics.add ctr_nops !removed;
  !removed
