let max_stub_body = 12

let body_is_setup body =
  List.for_all
    (fun (i : Ir.tinstr) ->
      match i with
      | Ir.Sys -> true
      | Ir.Movi _ -> true
      | Ir.Plain (Svm.Isa.Mov _) -> true
      | Ir.Plain _ -> false)
    body

let is_stub t bid =
  match Ir.find_block t bid with
  | exception Not_found -> false
  | b ->
    b.opaque = None
    && b.term = Ir.Return
    && List.length b.body <= max_stub_body
    && Ir.sys_count b = 1
    && body_is_setup b.body

let stub_entries t =
  Cfg.call_edges t
  |> List.map snd
  |> List.sort_uniq compare
  |> List.filter (is_stub t)

let ctr_inlined = Asc_obs.Metrics.counter Asc_obs.Metrics.default "plto.stubs_inlined"
let ctr_split = Asc_obs.Metrics.counter Asc_obs.Metrics.default "plto.sites_split"

let inline_stubs t =
  let stubs = stub_entries t in
  let stub_tbl = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace stub_tbl s (Ir.find_block t s)) stubs;
  let count = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      match b.term with
      | Ir.CallT f when Hashtbl.mem stub_tbl f && b.opaque = None ->
        let stub = Hashtbl.find stub_tbl f in
        b.body <- b.body @ stub.Ir.body;
        b.term <- Ir.Fall;
        incr count
      | _ -> ())
    t.Ir.blocks;
  Asc_obs.Metrics.add ctr_inlined !count;
  !count

let split_multi_sys t =
  let splits = ref 0 in
  let rec split_block (b : Ir.block) =
    if Ir.sys_count b >= 2 then begin
      (* cut immediately after the first Sys *)
      let rec cut acc = function
        | [] -> (List.rev acc, [])
        | Ir.Sys :: rest -> (List.rev (Ir.Sys :: acc), rest)
        | i :: rest -> cut (i :: acc) rest
      in
      let prefix, rest = cut [] b.body in
      let nb =
        { Ir.bid = Ir.fresh_bid t;
          body = rest;
          term = b.term;
          orig_addr = None;
          opaque = None }
      in
      b.body <- prefix;
      b.term <- Ir.Fall;
      (* insert nb directly after b to preserve fall-through adjacency *)
      let rec insert = function
        | [] -> []
        | x :: rest when x == b -> x :: nb :: rest
        | x :: rest -> x :: insert rest
      in
      t.Ir.blocks <- insert t.Ir.blocks;
      incr splits;
      split_block nb
    end
  in
  List.iter split_block (List.filter (fun b -> b.Ir.opaque = None) t.Ir.blocks);
  Asc_obs.Metrics.add ctr_split !splits;
  !splits
