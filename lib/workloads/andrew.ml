open Oskernel

type result = {
  iterations : int;
  tasks : int;
  syscalls : int;
  cycles : int;
  failures : int;
}

let tools =
  [ ("cat", W_tools.cat); ("cp", W_tools.cp); ("mv", W_tools.mv); ("rm", W_tools.rm);
    ("chmod", W_tools.chmod_tool); ("mkdir", W_tools.mkdir_tool); ("sort", W_tools.sort_tool);
    ("gzip", W_tools.gzip_rle); ("gunzip", W_tools.gunzip_rle) ]

let tool_names = List.map fst tools
let tool_source name = List.assoc name tools

let default_key = lazy (Asc_crypto.Cmac.of_raw "andrew-bench-key") (* 16 bytes *)

let compressible_text n =
  let buf = Buffer.create n in
  for i = 0 to n - 1 do
    let c =
      if i mod 80 = 79 then '\n'
      else if i mod 160 < 100 then Char.chr (97 + (i / 23 mod 26))
      else ' '
    in
    Buffer.add_char buf c
  done;
  Buffer.contents buf

let file_count = 16
let file_bytes = 4096

(* One iteration's task script: (tool, stdin lines). *)
let script iter =
  let d i = Printf.sprintf "/work/i%d/d%d" iter (i mod 4) in
  let seed i = Printf.sprintf "/data/seed%d" (i mod file_count) in
  let f i = Printf.sprintf "%s/f%d" (d i) i in
  List.concat
    [ (* directory creation *)
      List.init 4 (fun i -> ("mkdir", [ Printf.sprintf "/work/i%d/d%d" iter i ]));
      (* file creation (copy in) *)
      List.init file_count (fun i -> ("cp", [ seed i; f i ]));
      (* permission checking *)
      List.init file_count (fun i -> ("chmod", [ "420"; f i ]));
      (* compression *)
      List.init file_count (fun i -> ("gzip", [ f i; f i ^ ".rle" ]));
      (* decompression *)
      List.init file_count (fun i -> ("gunzip", [ f i ^ ".rle"; f i ^ ".out" ]));
      (* read back *)
      List.init 4 (fun i -> ("cat", [ f i ]));
      (* sorting file contents *)
      [ ("sort", [ f 0 ]); ("sort", [ f 1 ]) ];
      (* moving files *)
      List.init file_count (fun i -> ("mv", [ f i ^ ".out"; f i ^ ".final" ]));
      (* deletion *)
      List.init file_count (fun i -> ("rm", [ f i ^ ".rle" ]));
      List.init file_count (fun i -> ("rm", [ f i ^ ".final" ])) ]

let run ?(authenticated = false) ?key ~iterations () =
  let key = match key with Some k -> k | None -> Lazy.force default_key in
  let personality = Personality.linux in
  (* compile (and optionally install) each tool once *)
  let images =
    List.mapi
      (fun idx (name, src) ->
        let img =
          match Minic.Driver.compile ~personality src with
          | Ok img -> img
          | Error e -> failwith (Printf.sprintf "tool %s: %s" name e)
        in
        if not authenticated then (name, img)
        else
          let options = { Asc_core.Installer.default_options with program_id = idx + 1 } in
          match Asc_core.Installer.install ~key ~personality ~options ~program:name img with
          | Ok inst -> (name, inst.Asc_core.Installer.image)
          | Error e -> failwith (Printf.sprintf "install %s: %s" name e))
      tools
  in
  let kernel = Kernel.create ~personality () in
  if authenticated then
    Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  Vfs.mkdir_p kernel.Kernel.vfs "/data";
  Vfs.mkdir_p kernel.Kernel.vfs "/work";
  for i = 0 to file_count - 1 do
    match
      Vfs.create_file kernel.Kernel.vfs ~cwd:"/" (Printf.sprintf "/data/seed%d" i)
        ~contents:(compressible_text file_bytes)
    with
    | Ok () -> ()
    | Error e -> failwith (Errno.name e)
  done;
  let tasks = ref 0 in
  let cycles = ref 0 in
  let failures = ref 0 in
  for iter = 0 to iterations - 1 do
    Vfs.mkdir_p kernel.Kernel.vfs (Printf.sprintf "/work/i%d" iter);
    List.iter
      (fun (tool, args) ->
        let img = List.assoc tool images in
        let stdin = String.concat "\n" args ^ "\n" in
        let proc = Kernel.spawn kernel ~stdin ~program:tool img in
        (match Kernel.run kernel proc ~max_cycles:200_000_000 with
         | Svm.Machine.Halted 0 -> ()
         | Svm.Machine.Halted _ -> incr failures
         | Svm.Machine.Killed _ | Svm.Machine.Faulted _ | Svm.Machine.Cycle_limit ->
           incr failures);
        incr tasks;
        cycles := !cycles + proc.Process.machine.Svm.Machine.cycles)
      (script iter)
  done;
  let syscalls = Kernel.syscall_count kernel in
  { iterations; tasks = !tasks; syscalls; cycles = !cycles; failures = !failures }
