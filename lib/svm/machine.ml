type fault =
  | Bad_opcode of int
  | Bad_address of int
  | Div_by_zero

type stop =
  | Halted of int
  | Faulted of fault * int
  | Killed of string
  | Cycle_limit

type t = {
  mem : Bytes.t;
  regs : int array;
  mutable pc : int;
  mutable cycles : int;
  mutable instrs : int;
  mutable stopped : stop option;
  mutable profile : Asc_obs.Profile.t option;
}

type sys_action =
  | Sys_continue
  | Sys_kill of string

let default_mem_size = 4 * 1024 * 1024

let create ~mem_size =
  { mem = Bytes.make mem_size '\000';
    regs = Array.make Isa.num_regs 0;
    pc = 0;
    cycles = 0;
    instrs = 0;
    stopped = None;
    profile = None }

let attach_profile ?(alloc = false) t p =
  t.profile <- Some p;
  if alloc then Asc_obs.Profile.track_alloc p

let stack_top t = Bytes.length t.mem - 16

let in_range t addr len = addr >= 0 && len >= 0 && addr + len <= Bytes.length t.mem

let read_word t addr =
  if in_range t addr 8 then Some (Int64.to_int (Bytes.get_int64_le t.mem addr)) else None

let write_word t addr v =
  if in_range t addr 8 then begin
    Bytes.set_int64_le t.mem addr (Int64.of_int v);
    true
  end
  else false

let read_byte t addr =
  if in_range t addr 1 then Some (Char.code (Bytes.get t.mem addr)) else None

let write_byte t addr v =
  if in_range t addr 1 then begin
    Bytes.set t.mem addr (Char.chr (v land 0xff));
    true
  end
  else false

let read_mem t ~addr ~len =
  if in_range t addr len then Some (Bytes.sub_string t.mem addr len) else None

let write_mem t ~addr s =
  if in_range t addr (String.length s) then begin
    Bytes.blit_string s 0 t.mem addr (String.length s);
    true
  end
  else false

let read_into t ~addr ~buf ~pos ~len =
  if in_range t addr len && pos >= 0 && len >= 0 && pos + len <= Bytes.length buf then begin
    Bytes.blit t.mem addr buf pos len;
    true
  end
  else false

let write_from t ~addr ~buf ~pos ~len =
  if in_range t addr len && pos >= 0 && len >= 0 && pos + len <= Bytes.length buf then begin
    Bytes.blit buf pos t.mem addr len;
    true
  end
  else false

(* a while loop rather than an inner recursive function: this runs on the
   checker's per-trap fast path, where even one closure allocation counts
   against the step's host-allocation budget *)
let mem_equal t ~addr s =
  let len = String.length s in
  in_range t addr len
  && begin
    let i = ref 0 in
    while !i < len && Bytes.get t.mem (addr + !i) = s.[!i] do
      incr i
    done;
    !i = len
  end

(* Allocation-free word accessors: compose the LE word with int
   arithmetic instead of a boxed Int64. [lsl]/[asr] keep the low 63 bits
   exactly as [Int64.to_int]/[Int64.of_int] do, so the values and bytes
   round-trip identically with [read_word]/[write_word]. *)
let word_ok t addr = in_range t addr 8

let word_at t addr =
  if not (in_range t addr 8) then invalid_arg "Machine.word_at: out of range";
  let mem = t.mem in
  Char.code (Bytes.unsafe_get mem addr)
  lor (Char.code (Bytes.unsafe_get mem (addr + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get mem (addr + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get mem (addr + 3)) lsl 24)
  lor (Char.code (Bytes.unsafe_get mem (addr + 4)) lsl 32)
  lor (Char.code (Bytes.unsafe_get mem (addr + 5)) lsl 40)
  lor (Char.code (Bytes.unsafe_get mem (addr + 6)) lsl 48)
  lor (Char.code (Bytes.unsafe_get mem (addr + 7)) lsl 56)

let set_word t addr v =
  if not (in_range t addr 8) then invalid_arg "Machine.set_word: out of range";
  for i = 0 to 7 do
    Bytes.unsafe_set t.mem (addr + i) (Char.unsafe_chr ((v asr (8 * i)) land 0xff))
  done

let read_cstring t ~addr ~max =
  if addr < 0 || addr >= Bytes.length t.mem then None
  else begin
    let limit = min (addr + max) (Bytes.length t.mem) in
    let rec find i = if i >= limit then None else if Bytes.get t.mem i = '\000' then Some i else find (i + 1) in
    match find addr with
    | Some e -> Some (Bytes.sub_string t.mem addr (e - addr))
    | None -> None
  end

exception Fault of fault

let word_or_fault t addr = match read_word t addr with Some v -> v | None -> raise (Fault (Bad_address addr))
let byte_or_fault t addr = match read_byte t addr with Some v -> v | None -> raise (Fault (Bad_address addr))
let store_or_fault t addr v = if not (write_word t addr v) then raise (Fault (Bad_address addr))
let storeb_or_fault t addr v = if not (write_byte t addr v) then raise (Fault (Bad_address addr))

let eval_binop op a b =
  match (op : Isa.binop) with
  | Isa.Add -> a + b
  | Isa.Sub -> a - b
  | Isa.Mul -> a * b
  | Isa.Div -> if b = 0 then raise (Fault Div_by_zero) else a / b
  | Isa.Mod -> if b = 0 then raise (Fault Div_by_zero) else a mod b
  | Isa.And -> a land b
  | Isa.Or -> a lor b
  | Isa.Xor -> a lxor b
  | Isa.Shl -> a lsl (b land 63)
  | Isa.Shr -> a asr (b land 63)
  | Isa.Slt -> if a < b then 1 else 0
  | Isa.Sle -> if a <= b then 1 else 0
  | Isa.Seq -> if a = b then 1 else 0
  | Isa.Sne -> if a <> b then 1 else 0

let eval_cond c a b =
  match (c : Isa.cond) with
  | Isa.Eq -> a = b
  | Isa.Ne -> a <> b
  | Isa.Lt -> a < b
  | Isa.Ge -> a >= b
  | Isa.Le -> a <= b
  | Isa.Gt -> a > b

let run t ~on_sys ~max_cycles =
  let r = t.regs in
  let push v =
    r.(Isa.sp) <- r.(Isa.sp) - 8;
    store_or_fault t r.(Isa.sp) v
  in
  let pop () =
    let v = word_or_fault t r.(Isa.sp) in
    r.(Isa.sp) <- r.(Isa.sp) + 8;
    v
  in
  let rec loop () =
    match t.stopped with
    | Some s -> s
    | None ->
      if t.cycles > max_cycles then begin
        t.stopped <- Some Cycle_limit;
        Cycle_limit
      end
      else begin
        let pc = t.pc in
        (try
           if not (in_range t pc Isa.instr_size) then raise (Fault (Bad_address pc));
           match Isa.decode t.mem ~pos:pc with
           | None -> raise (Fault (Bad_opcode pc))
           | Some i ->
             let cost = Cost_model.instr_cost i in
             t.cycles <- t.cycles + cost;
             t.instrs <- t.instrs + 1;
             (* the instruction's cost belongs to the frame executing it:
                charge before Call pushes / Ret pops the shadow stack *)
             (match t.profile with
              | Some p -> Asc_obs.Profile.charge p cost
              | None -> ());
             t.pc <- pc + Isa.instr_size;
             (match i with
              | Isa.Halt -> t.stopped <- Some (Halted r.(0))
              | Isa.Nop -> ()
              | Isa.Movi (rd, v) -> r.(rd) <- v
              | Isa.Mov (rd, rs) -> r.(rd) <- r.(rs)
              | Isa.Ld (rd, rs, off) -> r.(rd) <- word_or_fault t (r.(rs) + off)
              | Isa.St (rd, off, rs) -> store_or_fault t (r.(rd) + off) r.(rs)
              | Isa.Ldb (rd, rs, off) -> r.(rd) <- byte_or_fault t (r.(rs) + off)
              | Isa.Stb (rd, off, rs) -> storeb_or_fault t (r.(rd) + off) r.(rs)
              | Isa.Binop (op, rd, rs, rt) -> r.(rd) <- eval_binop op r.(rs) r.(rt)
              | Isa.Addi (rd, rs, v) -> r.(rd) <- r.(rs) + v
              | Isa.Br (c, rs, rt, target) -> if eval_cond c r.(rs) r.(rt) then t.pc <- target
              | Isa.Jmp target -> t.pc <- target
              | Isa.Jr rs -> t.pc <- r.(rs)
              | Isa.Call target ->
                push t.pc;
                t.pc <- target;
                (match t.profile with
                 | Some p -> Asc_obs.Profile.enter p (Asc_obs.Profile.Pc target)
                 | None -> ())
              | Isa.Callr rs ->
                push t.pc;
                t.pc <- r.(rs);
                (match t.profile with
                 | Some p -> Asc_obs.Profile.enter p (Asc_obs.Profile.Pc t.pc)
                 | None -> ())
              | Isa.Ret ->
                t.pc <- pop ();
                (match t.profile with
                 | Some p -> Asc_obs.Profile.leave p
                 | None -> ())
              | Isa.Push rs -> push r.(rs)
              | Isa.Pop rd -> r.(rd) <- pop ()
              | Isa.Sys ->
                (match on_sys t with
                 | Sys_continue -> ()
                 | Sys_kill reason -> t.stopped <- Some (Killed reason))
              | Isa.Rdcyc rd -> r.(rd) <- t.cycles)
         with Fault f -> t.stopped <- Some (Faulted (f, pc)));
        loop ()
      end
  in
  loop ()
