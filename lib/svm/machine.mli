(** The SVM interpreter: a flat-memory machine with a deterministic cycle
    counter (standing in for [rdtsc]) and a kernel trap hook for [Sys].

    There is deliberately no W^X protection and return addresses live on the
    in-memory stack, so stack-smashing attacks behave as on the paper's
    x86/Linux platform: an overflowed buffer can overwrite a return address
    and divert control into injected code. System call *monitoring*, not
    memory safety, is the defense under evaluation. *)

type fault =
  | Bad_opcode of int        (** undecodable instruction byte at address *)
  | Bad_address of int       (** out-of-bounds load/store/fetch *)
  | Div_by_zero

type stop =
  | Halted of int            (** [Halt] executed; value of r0 as exit status *)
  | Faulted of fault * int   (** fault and faulting pc *)
  | Killed of string         (** terminated by the kernel (policy violation) *)
  | Cycle_limit

type t = {
  mem : Bytes.t;
  regs : int array;
  mutable pc : int;
  mutable cycles : int;
  mutable instrs : int;      (** instructions retired (deterministic) *)
  mutable stopped : stop option;
  mutable profile : Asc_obs.Profile.t option;
  (** When set, [run] mirrors control flow onto the profiler's shadow call
      stack: each retired instruction's modeled cost is charged to the
      current frame, [Call]/[Callr] enter a [Pc target] frame, [Ret]
      leaves. [None] (the default) costs nothing and changes nothing —
      cycle accounting is identical either way. *)
}

type sys_action =
  | Sys_continue           (** kernel handled the call; r0 holds the result *)
  | Sys_kill of string     (** kernel terminates the process *)

val create : mem_size:int -> t
(** Fresh machine with zeroed memory and registers, pc = 0. *)

val default_mem_size : int
(** 4 MiB. *)

val stack_top : t -> int

val attach_profile : ?alloc:bool -> t -> Asc_obs.Profile.t -> unit
(** [attach_profile t p] sets [t.profile]. With [~alloc:true] it also arms
    the profiler's minor-words sampling ([Profile.track_alloc]) so every
    shadow-stack transition attributes host allocation alongside cycles. *)

val run : t -> on_sys:(t -> sys_action) -> max_cycles:int -> stop
(** Execute until halt, fault, kill or cycle budget exhaustion. [on_sys] is
    invoked for every [Sys] with pc already advanced past the instruction,
    so the call site is [t.pc - Isa.instr_size]. Instruction/cycle totals
    live only in [t.instrs]/[t.cycles]; metric accounting is the caller's
    concern (the kernel mirrors deltas into its per-kernel registry), so
    concurrent machines never bleed into a shared counter. *)

(** {2 Memory accessors (bounds-checked; [None] on out-of-range)} *)

val read_word : t -> int -> int option
val write_word : t -> int -> int -> bool
val read_byte : t -> int -> int option
val write_byte : t -> int -> int -> bool
val read_mem : t -> addr:int -> len:int -> string option
val write_mem : t -> addr:int -> string -> bool
val read_into : t -> addr:int -> buf:Bytes.t -> pos:int -> len:int -> bool
(** Copy [len] guest bytes at [addr] into [buf] at [pos] without
    allocating; [false] (and no write) if either range is out of
    bounds. *)

val write_from : t -> addr:int -> buf:Bytes.t -> pos:int -> len:int -> bool
(** Copy [len] bytes of [buf] at [pos] into guest memory at [addr]
    without allocating; [false] (and no write) on a bad range. *)

val mem_equal : t -> addr:int -> string -> bool
(** [mem_equal t ~addr s] is [true] iff the guest bytes at
    [addr .. addr+|s|-1] are in range and equal [s] — an allocation-free
    [read_mem]-and-compare. *)

(** {3 Allocation-free word accessors}

    [read_word]/[write_word] box an [Int64] per call; on per-trap fast
    paths that boxing alone blows the step's host-allocation budget.
    Check bounds once with [word_ok], then [word_at]/[set_word] compose
    the LE word with int arithmetic — same value/bytes as the boxed
    pair. [word_at]/[set_word] on an address [word_ok] rejected raise
    [Invalid_argument]. *)

val word_ok : t -> int -> bool
val word_at : t -> int -> int
val set_word : t -> int -> int -> unit

val read_cstring : t -> addr:int -> max:int -> string option
(** NUL-terminated string at [addr]; [None] if unterminated within [max]
    bytes or out of range. *)
