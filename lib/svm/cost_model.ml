let instr_cost (i : Isa.instr) =
  match i with
  | Isa.Halt | Isa.Nop -> 1
  | Isa.Movi _ | Isa.Mov _ | Isa.Addi _ -> 1
  | Isa.Ld _ | Isa.Ldb _ | Isa.St _ | Isa.Stb _ -> 3
  | Isa.Binop (op, _, _, _) ->
    (match op with
     | Isa.Mul -> 3
     | Isa.Div | Isa.Mod -> 12
     | Isa.Add | Isa.Sub | Isa.And | Isa.Or | Isa.Xor | Isa.Shl | Isa.Shr
     | Isa.Slt | Isa.Sle | Isa.Seq | Isa.Sne -> 1)
  | Isa.Br _ -> 2
  | Isa.Jmp _ | Isa.Jr _ -> 2
  | Isa.Call _ | Isa.Callr _ | Isa.Ret -> 4
  | Isa.Push _ | Isa.Pop _ -> 3
  | Isa.Sys -> 0 (* the kernel charges trap costs itself *)
  | Isa.Rdcyc _ -> 84

let rdcyc_cost = 84
let trap_entry = 900
let syscall_dispatch = 180
let per_byte_copy = 3
let per_byte_copy_denom = 2
let write_buffer_per_byte = 8
let aes_block = 280
let mac_setup = 150
let check_fixed = 250
let context_switch = 2600

let vcache_hit_base = 60
let vcache_hit_per_block = 4

let precomp_lookup_cost = 30
let precomp_hit_per_block = 4

let cfpre_lookup_cost = 8
let cfpre_hit_per_block = 2

let lbmac_chain_cost = aes_block

let telemetry_record_cost = 10

let mac_cost len = mac_setup + (aes_block * ((len + 16) / 16))
let copy_cost len = len * per_byte_copy / per_byte_copy_denom
let vcache_hit_cost len = vcache_hit_base + (vcache_hit_per_block * ((len + 16) / 16))
let precomp_hit_cost slen = precomp_lookup_cost + (precomp_hit_per_block * ((slen + 16) / 16))
let mac_resume_cost slen = aes_block * ((slen + 16) / 16)
let cfpre_hit_cost len = cfpre_lookup_cost + (cfpre_hit_per_block * ((len + 16) / 16))
