(** Deterministic cycle-cost model.

    The paper measures CPU cycles with the Pentium [rdtsc] instruction. Our
    substitute is a deterministic model: the machine charges each instruction
    a fixed cost, and the simulated kernel charges trap entry, per-byte copy
    and per-AES-block costs. Constants are calibrated so the *shape* of
    Table 4 holds: an unmodified trivial system call (getpid) costs ≈1100
    cycles, and full authenticated-call verification adds ≈4000 cycles. *)

val instr_cost : Isa.instr -> int
(** Cost charged by the machine for one executed instruction. *)

val rdcyc_cost : int
(** Extra cost of reading the cycle counter (the paper reports an rdtsc cost
    of 84 cycles). *)

val trap_entry : int
(** Kernel trap entry + return (mode switch, register save/restore). *)

val syscall_dispatch : int
(** Base cost of syscall-number dispatch inside the trap handler. *)

val per_byte_copy : int
(** Cost per byte of copying between user and kernel space (numerator of a
    fixed-point ratio with {!per_byte_copy_denom}). *)

val per_byte_copy_denom : int

val write_buffer_per_byte : int
(** Additional per-byte cost on the write path (buffer-cache bookkeeping
    dominates writes in the paper's Table 4). *)

val aes_block : int
(** Cost of one AES block operation inside the kernel's MAC computation. *)

val mac_setup : int
(** Fixed cost of one MAC computation (subkey selection, finalization). *)

val check_fixed : int
(** Fixed bookkeeping cost of the authenticated-call check (argument fetch,
    policy-descriptor decoding, control-flow set membership). *)

val context_switch : int
(** Cost of one context switch; used by the user-space-daemon ablation (the
    Systrace-style monitor pays two of these per checked call). *)

val vcache_hit_base : int
(** Fixed cost of a verified-MAC cache hit: hash of the key material plus
    the bucket probe. *)

val vcache_hit_per_block : int
(** Per-16-byte-block cost of confirming a cache hit (the kernel compares
    the stored key bytes against the bytes the MAC covers, so a hit is
    never cheaper than reading its own key). *)

val precomp_lookup_cost : int
(** Fixed cost of probing the per-pid site-indexed precompiled-policy
    table on a trap: direct site index plus the structural compare of the
    static fields (number/descriptor/block) against the entry. Cheaper
    than {!vcache_hit_base} because no key material is hashed — the site
    id indexes the table directly. *)

val precomp_hit_per_block : int
(** Per-16-byte-block cost of confirming a precomp memo hit: the kernel
    compares only the dynamic-suffix words it just read from registers /
    guest memory against the entry's remembered values (the static prefix
    was already pinned by the structural compare). *)

val cfpre_lookup_cost : int
(** Fixed cost of probing the per-pid control-flow bitset table on a trap:
    the site id indexes the table directly and the entry's compiled
    predecessor reference is compared structurally (addr/len/tag) — no key
    material is hashed and no MAC state is touched, so the base sits well
    below even {!precomp_lookup_cost}. *)

val cfpre_hit_per_block : int
(** Per-16-byte-block cost of confirming a bitset hit: the kernel compares
    the live predecessor-set bytes it can already address against the
    compiled contents (a hit is never cheaper than reading its own set),
    then the membership test itself is one load+test in the bitset. *)

val lbmac_chain_cost : int
(** Cost of one step of the amortized lbMAC nonce chain: the policy-state
    block is exactly one complete 16-byte CMAC block, so with the per-pid
    chain state armed at exec time (subkeys scheduled, scratch resident)
    each refresh is a single AES invocation — [aes_block] — instead of a
    full {!mac_cost}[ 16] ([mac_setup] is paid once per pid, not per
    call). The MAC itself is still computed fresh on every call (the §3.4
    nonce-freshness guarantee is untouched); only the modeled setup charge
    is amortized. *)

val telemetry_record_cost : int
(** Per-monitored-call cost of the telemetry plane's shard update (reason
    bump, histogram observe, ledger ring push — all O(1), no hashing of
    call bytes). Charged by the checker on every recorded call and
    credited to the plane's self-overhead meter, which the
    [BENCH_telemetry] gate bounds below 1% of total verification
    cycles. *)

val mac_cost : int -> int
(** [mac_cost len] is the modeled cost of MACing [len] bytes:
    [mac_setup + aes_block * ceil((len+1)/16)] (+1 for padding block). *)

val copy_cost : int -> int
(** [copy_cost len] is the modeled user/kernel copy cost for [len] bytes. *)

val vcache_hit_cost : int -> int
(** [vcache_hit_cost len] is the modeled cost of a verified-MAC cache hit
    whose key covers [len] bytes:
    [vcache_hit_base + vcache_hit_per_block * ceil((len+1)/16)]. Strictly
    below {!mac_cost} for every length (the base and per-block constants
    are both smaller), so skipping a MAC via the cache always saves
    cycles. *)

val precomp_hit_cost : int -> int
(** [precomp_hit_cost slen] is the modeled cost of a precompiled-site memo
    hit whose dynamic suffix is [slen] bytes:
    [precomp_lookup_cost + precomp_hit_per_block * ceil((slen+1)/16)].
    Strictly below {!vcache_hit_cost} of the whole encoded call for every
    layout: the suffix is one block shorter than the encoded string and
    the lookup base is 30 below the vcache's hash-and-probe base — the
    precomp-beats-vcache gate the table4 benchmark enforces. *)

val cfpre_hit_cost : int -> int
(** [cfpre_hit_cost len] is the modeled cost of a control-flow bitset hit
    whose compiled predecessor set is [len] bytes:
    [cfpre_lookup_cost + cfpre_hit_per_block * ceil((len+1)/16)]. Strictly
    below {!vcache_hit_cost} for every length (both constants are
    smaller), so the bitset path always beats re-verifying the set through
    the verified-MAC cache — the gate the table4 benchmark enforces. *)

val mac_resume_cost : int -> int
(** [mac_resume_cost slen] is the modeled cost of resuming a saved CMAC
    chaining state over an [slen]-byte suffix:
    [aes_block * ceil((slen+1)/16)] — the suffix blocks only; the prefix
    block was paid once at compile time and {!mac_setup} is replaced by
    {!precomp_lookup_cost} (charged separately by the checker). *)
