open Svm
open Oskernel
module Cmac = Asc_crypto.Cmac

type block = {
  b_reason : string;
  b_step : Violation.step option;
}

type outcome =
  | Succeeded of string
  | Blocked of block
  | Crashed of string

let pp_outcome ppf = function
  | Succeeded e -> Format.fprintf ppf "SUCCEEDED (%s)" e
  | Blocked { b_reason; b_step = Some s } ->
    Format.fprintf ppf "BLOCKED[%s] (%s)" (Violation.step_name s) b_reason
  | Blocked { b_reason; b_step = None } -> Format.fprintf ppf "BLOCKED (%s)" b_reason
  | Crashed r -> Format.fprintf ppf "CRASHED (%s)" r

let key = Cmac.of_raw "attack-demo-key!"
let personality = Personality.linux

let num sem = Option.get (Personality.number_of personality sem)

let compile src = Minic.Driver.compile_exn ~personality src

let install ~program_id ~program img =
  let options = { Asc_core.Installer.default_options with program_id } in
  match Asc_core.Installer.install ~key ~personality ~options ~program img with
  | Ok inst -> inst.Asc_core.Installer.image
  | Error e -> failwith (Printf.sprintf "install %s: %s" program e)

let victim_plain = lazy (compile Workloads.W_tools.victim)
let victim_auth = lazy (install ~program_id:1 ~program:"victim" (Lazy.force victim_plain))
let ls_plain = lazy (compile Workloads.W_tools.ls)
let ls_auth = lazy (install ~program_id:2 ~program:"ls" (Lazy.force ls_plain))
let sh_plain = lazy (compile Workloads.W_tools.sh)
let sh_auth = lazy (install ~program_id:3 ~program:"sh" (Lazy.force sh_plain))

(* ----- locating the stack buffer (attacker reconnaissance) ----- *)

(* get_filename's frame: char buf[32] at fp-40 (below the out-param slot),
   so the saved frame pointer sits at buf+40 and the return address at
   buf+48. *)
let ret_distance = 48

let le64 v = String.init 8 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

(* The threat model grants the attacker simulators and debuggers: run the
   victim on a marker payload whose smashed return address points into
   zeroed memory (opcode 0 halts), freezing the machine with the buffer
   intact, then scan memory for the marker. *)
let probe_buffer_addr image =
  let marker = "PROBE_MARKER_XYZQ" in
  (* slots smashed on the way to the return address: the out parameter (must
     stay a valid pointer or strcpy faults first) and the saved frame
     pointer; the return address lands in zeroed memory (opcode 0 halts) *)
  let payload =
    marker
    ^ String.make (32 - String.length marker) 'P'
    ^ le64 0x100000 (* out param: scratch memory *)
    ^ String.make 8 'P' (* saved fp *)
    ^ le64 0x200000 (* return address: zeroed memory halts *)
  in
  let kernel = Kernel.create ~personality () in
  let proc = Kernel.spawn kernel ~stdin:payload ~program:"victim" image in
  ignore (Kernel.run kernel proc ~max_cycles:50_000_000);
  let mem = proc.Process.machine.Machine.mem in
  let n = Bytes.length mem in
  let mlen = String.length marker in
  let rec scan i =
    if i + mlen > n then failwith "attacks: probe marker not found"
    else if Bytes.sub_string mem i mlen = marker then i
    else scan (i + 1)
  in
  (* the buffer lives on the stack, above the data sections *)
  scan (n / 2)

let check_no_newline payload what =
  String.iteri
    (fun i c ->
      if c = '\n' then
        failwith
          (Printf.sprintf "attacks: %s payload contains a newline at byte %d; cannot be \
                           delivered through read_line" what i))
    payload

(* [use_vcache] arms the checker's verified-MAC cache, [use_precomp] the
   precompiled-site table and [use_cfpre] the control-flow bitsets, used to
   assert that every attack trips the exact same violation step with the
   fast paths on: tampered bytes can never hit the cache, and every
   precomp/cfpre mismatch falls back to the slow path, so the deny is
   unchanged. *)
let checker_monitor ~use_vcache ~use_precomp ~use_cfpre kernel =
  let vcache =
    if use_vcache then
      Some (Asc_core.Vcache.create ~capacity:256 ~registry:(Kernel.metrics kernel) ())
    else None
  in
  let precomp =
    if use_precomp then
      Some (Asc_core.Precomp.create ~key ~registry:(Kernel.metrics kernel) ())
    else None
  in
  let cfpre =
    if use_cfpre then Some (Asc_core.Cfpre.create ~registry:(Kernel.metrics kernel) ())
    else None
  in
  Asc_core.Checker.monitor ~kernel ~key ?vcache ?precomp ?cfpre ()

let run_victim ~protected ?(use_vcache = false) ?(use_precomp = false) ?(use_cfpre = false)
    ?(prepare = fun (_ : Kernel.t) -> ()) ~payload ?(patch = fun (_ : Machine.t) -> ()) () =
  let kernel = Kernel.create ~personality () in
  if protected then
    Kernel.set_monitor kernel (Some (checker_monitor ~use_vcache ~use_precomp ~use_cfpre kernel));
  kernel.Kernel.tracing <- true;
  prepare kernel;
  let ls = Lazy.force (if protected then ls_auth else ls_plain) in
  let sh = Lazy.force (if protected then sh_auth else sh_plain) in
  Kernel.install_binary kernel ~path:"/bin/ls" ls;
  Kernel.install_binary kernel ~path:"/bin/sh" sh;
  let image = Lazy.force (if protected then victim_auth else victim_plain) in
  let proc = Kernel.spawn kernel ~stdin:payload ~program:"victim" image in
  patch proc.Process.machine;
  let stop = Kernel.run kernel proc ~max_cycles:100_000_000 in
  (kernel, proc, stop)

(* the last structured violation the kernel audited for this pid — the
   checker's account of *which verification step* refused the call *)
let last_violation kernel pid =
  List.fold_left
    (fun acc e ->
      match e with
      | Kernel.Violation { pid = p; violation; _ } when p = pid -> Some violation
      | _ -> acc)
    None (Kernel.audit_log kernel)

let blocked kernel (proc : Process.t) reason =
  Blocked
    { b_reason = reason;
      b_step =
        Option.map (fun v -> v.Violation.v_step) (last_violation kernel proc.Process.pid) }

let classify ~goal (kernel, proc, stop) =
  let out = Kernel.stdout_of proc in
  match stop with
  | Machine.Killed reason -> blocked kernel proc reason
  | Machine.Halted _ | Machine.Faulted _ | Machine.Cycle_limit ->
    (match goal kernel out with
     | Some evidence -> Succeeded evidence
     | None ->
       (match stop with
        | Machine.Faulted (_, pc) -> Crashed (Printf.sprintf "fault at 0x%x" pc)
        | _ -> Crashed "goal not reached"))

(* Classify, then — for protected runs that were blocked — require the
   structured violation step to be the one this attack is supposed to trip:
   the assertion is on the step variant, not a substring of the reason. *)
let finish what ~protected ~expect ~goal run =
  match classify ~goal run with
  | Blocked b when protected ->
    (match b.b_step with
     | Some s when List.mem s expect -> Blocked b
     | Some s ->
       failwith
         (Printf.sprintf "attacks: %s blocked at step %s, expected one of [%s]" what
            (Violation.step_name s)
            (String.concat "; " (List.map Violation.step_name expect)))
     | None ->
       failwith
         (Printf.sprintf "attacks: %s blocked without a structured violation (%s)" what
            b.b_reason))
  | outcome -> outcome

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let pwned_goal _kernel out = if contains out "pwned shell" then Some "shell executed" else None

(* ----- attack 1: classic shellcode injection ----- *)

let run_shellcode ~protected ?use_vcache ?use_precomp ?use_cfpre ~prepare () =
  let image = Lazy.force (if protected then victim_auth else victim_plain) in
  let buf = probe_buffer_addr image in
  (* shellcode: execve("/bin/sh") with the string carried in the payload.
     Like any raw shellcode it sets up its own register state — including
     the descriptor register, which it has no authenticated value for: the
     call reaches the kernel without the authentication marker, rather
     than riding whatever descriptor the interrupted call left behind. *)
  let code = Bytes.create 32 in
  Isa.encode (Isa.Movi (7, 0)) code ~pos:0;
  Isa.encode (Isa.Movi (1, buf + ret_distance + 8)) code ~pos:8;
  Isa.encode (Isa.Movi (0, num Syscall.Execve)) code ~pos:16;
  Isa.encode Isa.Sys code ~pos:24;
  let payload =
    Bytes.to_string code (* fills the 32-byte buffer exactly *)
    ^ le64 buf (* out param: self-copy keeps the payload intact *)
    ^ String.make 8 'F' (* saved fp *)
    ^ le64 buf (* return address -> shellcode *)
    ^ "/bin/sh\000" (* at buf + ret_distance + 8 *)
  in
  check_no_newline payload "shellcode";
  run_victim ~protected ?use_vcache ?use_precomp ?use_cfpre ~prepare ~payload ()

let shellcode_expect = [ Violation.Unauthenticated ]

let shellcode ?use_vcache ?use_precomp ?use_cfpre ~protected () =
  finish "shellcode" ~protected ~expect:shellcode_expect ~goal:pwned_goal
    (run_shellcode ~protected ?use_vcache ?use_precomp ?use_cfpre ~prepare:ignore ())

(* ----- attack 2: mimicry via authenticated calls from another binary ----- *)

(* Extract, from an installed image, the byte run of [movi...movi sys]
   implementing one authenticated call site. *)
let extract_auth_site image =
  let text = Obj_file.text_section image in
  let payload = Bytes.of_string text.Obj_file.sec_payload in
  let slots = Bytes.length payload / Isa.instr_size in
  let decode i = Isa.decode payload ~pos:(i * Isa.instr_size) in
  let sites = ref [] in
  for i = 0 to slots - 1 do
    if decode i = Some Isa.Sys then begin
      (* walk back over the contiguous movi run *)
      let rec back j =
        if j < 0 then 0
        else
          match decode j with
          | Some (Isa.Movi _) -> back (j - 1)
          | _ -> j + 1
      in
      let start = back (i - 1) in
      if i - start >= 5 then
        sites :=
          ( text.Obj_file.sec_addr + (start * Isa.instr_size),
            Bytes.sub_string payload (start * Isa.instr_size)
              ((i - start + 1) * Isa.instr_size) )
          :: !sites
    end
  done;
  List.rev !sites

let mimicry_goal kernel _out =
  let socket_number = num Syscall.Socket in
  let made_socket =
    List.exists
      (fun t -> t.Kernel.t_sem = Some Syscall.Socket && t.Kernel.t_number = socket_number)
      (Kernel.trace kernel)
  in
  if made_socket then Some "foreign authenticated syscall executed" else None

let run_mimicry ~protected ?use_vcache ?use_precomp ?use_cfpre ~prepare () =
  (* donor application: makes a socket call the victim never makes *)
  let donor_src = "int main() { socket(1, 1, 0); return 0; }" in
  let donor = install ~program_id:9 ~program:"donor" (compile donor_src) in
  let image = Lazy.force (if protected then victim_auth else victim_plain) in
  let buf = probe_buffer_addr image in
  let socket_number = num Syscall.Socket in
  (* pick the donor site that actually issues socket() *)
  let is_socket_site bytes =
    let b = Bytes.of_string bytes in
    let rec scan i =
      if i + Isa.instr_size > Bytes.length b then false
      else
        match Isa.decode b ~pos:i with
        | Some (Isa.Movi (0, v)) when v = socket_number -> true
        | _ -> scan (i + Isa.instr_size)
    in
    scan 0
  in
  let sites = List.filter (fun (_, bytes) -> is_socket_site bytes) (extract_auth_site donor) in
  let usable =
    List.filter_map
      (fun (_, bytes) ->
        (* splice after the return-address slot; ends with a halt *)
        let halt = Bytes.create 8 in
        Isa.encode Isa.Halt halt ~pos:0;
        let payload =
          String.make 32 'A'
          ^ le64 buf (* out param: harmless self-copy *)
          ^ String.make 8 'A' (* saved fp *)
          ^ le64 (buf + ret_distance + 8) (* return into the spliced code *)
          ^ bytes ^ Bytes.to_string halt
        in
        if String.contains payload '\n' then None else Some payload)
      sites
  in
  match usable with
  | [] -> failwith "attacks: no newline-free mimicry payload found"
  | payload :: _ -> run_victim ~protected ?use_vcache ?use_precomp ?use_cfpre ~prepare ~payload ()

(* the spliced site sits at a different address than the donor's, so the
   rebuilt encoded call (step 1) no longer matches the carried call MAC *)
let mimicry_expect = [ Violation.Call_mac; Violation.Control_flow ]

let mimicry ?use_vcache ?use_precomp ?use_cfpre ~protected () =
  finish "mimicry" ~protected ~expect:mimicry_expect ~goal:mimicry_goal
    (run_mimicry ~protected ?use_vcache ?use_precomp ?use_cfpre ~prepare:ignore ())

(* ----- attack 3: non-control data ----- *)

(* "tried to replace the argument /bin/ls of the existing authenticated
   execve system call with /bin/sh": a pure data overwrite — control flow
   is never hijacked. We grant the attacker an arbitrary-write primitive
   (e.g. a heap overflow) by patching the string in process memory. *)
let run_non_control_data ~protected ?use_vcache ?use_precomp ?use_cfpre ~prepare () =
  let patch (m : Machine.t) =
    (* overwrite every occurrence of "/bin/ls" in writable+readable memory *)
    let needle = "/bin/ls" in
    let mem = m.Machine.mem in
    let found = ref 0 in
    for a = 0 to Bytes.length mem - String.length needle - 1 do
      if Bytes.sub_string mem a (String.length needle) = needle then begin
        Bytes.blit_string "/bin/sh" 0 mem a 7;
        incr found
      end
    done;
    if !found = 0 then failwith "attacks: /bin/ls not found in memory"
  in
  run_victim ~protected ?use_vcache ?use_precomp ?use_cfpre ~prepare ~payload:"notes.txt\n"
    ~patch ()

let non_control_data_expect = [ Violation.String_mac ]

let non_control_data ?use_vcache ?use_precomp ?use_cfpre ~protected () =
  finish "non-control-data" ~protected ~expect:non_control_data_expect ~goal:pwned_goal
    (run_non_control_data ~protected ?use_vcache ?use_precomp ?use_cfpre ~prepare:ignore ())

(* ----- §5.5: Frankenstein ----- *)

let padding_src =
  let buf = Buffer.create 20000 in
  Buffer.add_string buf "int never = 0;\nint pad(int x) {\n";
  for _ = 1 to 2500 do
    Buffer.add_string buf "  x = x + 3;\n"
  done;
  Buffer.add_string buf "  return x;\n}\n";
  Buffer.contents buf

(* Application A: padded so that its call sites and .asc land far above
   application B's whole image, letting the Frankenstein composition place
   both binaries' fragments in one address space at their original
   (MAC-bound) addresses. *)
let app_a_src =
  padding_src ^ "int main() { if (never) { pad(1); } socket(1, 1, 0); return 0; }"

let app_b_src = "int main() { getpid(); time(0); return 0; }"

let frankenstein ?(use_vcache = false) ?(use_precomp = false) ?(use_cfpre = false) ~cross () =
  let a_img = install ~program_id:21 ~program:"appA" (compile app_a_src) in
  let b_img = install ~program_id:22 ~program:"appB" (compile app_b_src) in
  let b_extent =
    List.fold_left
      (fun acc (s : Obj_file.section) -> max acc (s.sec_addr + s.sec_size))
      0 b_img.Obj_file.sections
  in
  (* pick an A site above B's extent *)
  let a_sites = List.filter (fun (addr, _) -> addr > b_extent) (extract_auth_site a_img) in
  let a_site_addr, a_site_bytes =
    match a_sites with
    | s :: _ -> s
    | [] -> failwith "attacks: padding failed to lift appA's sites above appB"
  in
  let kernel = Kernel.create ~personality () in
  Kernel.set_monitor kernel
    (Some (checker_monitor ~use_vcache ~use_precomp ~use_cfpre kernel));
  kernel.Kernel.tracing <- true;
  let proc = Kernel.spawn kernel ~program:"frankenstein" b_img in
  let m = proc.Process.machine in
  (* splice A's authenticated site and A's high sections (rodata/.asc) *)
  ignore (Machine.write_mem m ~addr:a_site_addr a_site_bytes);
  let halt = Bytes.create 8 in
  Isa.encode Isa.Halt halt ~pos:0;
  ignore
    (Machine.write_mem m
       ~addr:(a_site_addr + String.length a_site_bytes)
       (Bytes.to_string halt));
  List.iter
    (fun (s : Obj_file.section) ->
      if s.sec_addr > b_extent && s.sec_kind <> Obj_file.Text then
        ignore (Machine.write_mem m ~addr:s.sec_addr s.sec_payload))
    a_img.Obj_file.sections;
  if cross then begin
    (* after B executes its getpid call, divert into A's spliced call *)
    let text = Obj_file.text_section b_img in
    let payload = Bytes.of_string text.Obj_file.sec_payload in
    let slots = Bytes.length payload / Isa.instr_size in
    let getpid_number = num Syscall.Getpid in
    let rec getpid_sys i saw_getpid =
      if i >= slots then failwith "attacks: appB getpid site not found"
      else
        match Isa.decode payload ~pos:(i * Isa.instr_size) with
        | Some (Isa.Movi (0, v)) when v = getpid_number -> getpid_sys (i + 1) true
        | Some Isa.Sys when saw_getpid -> i
        | Some (Isa.Movi _) -> getpid_sys (i + 1) saw_getpid
        | _ -> getpid_sys (i + 1) false
    in
    let sys_slot = getpid_sys 0 false in
    let jmp = Bytes.create 8 in
    Isa.encode (Isa.Jmp a_site_addr) jmp ~pos:0;
    ignore
      (Machine.write_mem m
         ~addr:(text.Obj_file.sec_addr + ((sys_slot + 1) * Isa.instr_size))
         (Bytes.to_string jmp))
  end;
  let stop = Kernel.run kernel proc ~max_cycles:100_000_000 in
  match stop with
  | Machine.Killed reason ->
    (match blocked kernel proc reason with
     | Blocked b as outcome when cross ->
       (* A's spliced site carries valid MACs, so it must be the
          control-flow policy (predecessor set / state MAC) that trips *)
       (match b.b_step with
        | Some Violation.Control_flow -> outcome
        | Some s ->
          failwith
            (Printf.sprintf "attacks: frankenstein blocked at step %s, expected control_flow"
               (Violation.step_name s))
        | None -> failwith "attacks: frankenstein blocked without a structured violation")
     | outcome -> outcome)
  | Machine.Halted _ ->
    if cross then Crashed "cross-application call was not blocked"
    else Succeeded "single-application chain permitted"
  | Machine.Faulted (_, pc) -> Crashed (Printf.sprintf "fault at 0x%x" pc)
  | Machine.Cycle_limit -> Crashed "cycle limit"

(* ----- forensic runs: the §4.1 attacks with the flight recorder on ----- *)

let forensic_expectations =
  [ ("shellcode", shellcode_expect);
    ("mimicry", mimicry_expect);
    ("non-control-data", non_control_data_expect) ]

let forensic_runs () =
  let runners =
    [ ("shellcode", shellcode_expect, pwned_goal,
       run_shellcode ?use_vcache:None ?use_precomp:None ?use_cfpre:None);
      ("mimicry", mimicry_expect, mimicry_goal,
       run_mimicry ?use_vcache:None ?use_precomp:None ?use_cfpre:None);
      ("non-control-data", non_control_data_expect, pwned_goal,
       run_non_control_data ?use_vcache:None ?use_precomp:None ?use_cfpre:None) ]
  in
  List.map
    (fun (name, expect, goal, runf) ->
      let log = Asc_obs.Authlog.create ~key () in
      let prepare kernel = Kernel.set_authlog kernel (Some log) in
      let ((kernel, _, _) as run) = runf ~protected:true ~prepare () in
      (name, kernel, finish name ~protected:true ~expect ~goal run))
    runners
