(** The attack experiments of §4.1 and §5.5.

    The victim is the paper's: a program that reads a file name into a
    32-byte stack buffer through an unbounded read and then invokes
    [/bin/ls]. The attacker controls stdin, knows the binary (the threat
    model grants access to source, binary, debuggers and simulators) and
    smashes the stack to divert control.

    Three §4.1 attacks, each run unprotected (must succeed — the baseline
    vulnerability is real) and under authenticated system calls (must be
    blocked):
    - {!shellcode}: inject code that issues [execve("/bin/sh")];
    - {!mimicry}: reuse a complete authenticated call sequence copied from
      another installed application;
    - {!non_control_data}: overwrite the [execve] argument string
      ["/bin/ls"] with ["/bin/sh"] in place (no control-flow hijack).

    Plus §5.5's {!frankenstein}: a program composed of authenticated calls
    from two applications; with globally unique block ids it is forced to
    execute the calls of a single application only. *)

type block = {
  b_reason : string;  (** the kill reason, verbatim *)
  b_step : Oskernel.Violation.step option;
      (** which verification step refused the call, from the kernel's
          structured audit entry; [None] when the deny came from an
          unstructured monitor *)
}

type outcome =
  | Succeeded of string  (** attacker's goal reached; payload = evidence *)
  | Blocked of block     (** monitor killed the process *)
  | Crashed of string    (** process faulted before reaching the goal *)

val pp_outcome : Format.formatter -> outcome -> unit

val key : Asc_crypto.Cmac.key
(** The install/verification key shared by every attack experiment (also
    the chain key of {!forensic_runs}' authenticated audit logs). *)

(** Each protected run additionally asserts (raising [Failure] otherwise)
    that the structured violation step is the one the attack is supposed
    to trip: shellcode ⇒ [Unauthenticated], mimicry ⇒ [Call_mac] (the
    spliced site address breaks the rebuilt encoded call), non-control
    data ⇒ [String_mac], cross-application Frankenstein ⇒
    [Control_flow]. *)

(** [use_vcache] (default [false]) attaches a verified-MAC cache
    ({!Asc_core.Vcache}) to the checker. The cache only accelerates
    successful verifications, so every attack must trip the exact same
    violation step with it on — the deny-parity property the cache's
    soundness argument rests on (and that [asc_bench vcache] gates).

    [use_precomp] (default [false]) likewise attaches a precompiled-site
    table ({!Asc_core.Precomp}). Its fast path proves only calls whose
    rebuilt MAC matches the supplied tag; every structural or tag
    mismatch falls back to the unchanged slow path, so the same
    deny-parity must hold with it on (gated by [asc_bench precomp]).

    [use_cfpre] (default [false]) attaches the precompiled control-flow
    bitsets ({!Asc_core.Cfpre}). The fast path applies only when the live
    predecessor-set reference and bytes equal the slow-path-verified
    ones; anything else falls back, so the same deny-parity must hold
    with it on (gated by [asc_bench cfpre]). *)

val shellcode :
  ?use_vcache:bool -> ?use_precomp:bool -> ?use_cfpre:bool -> protected:bool -> unit -> outcome

val mimicry :
  ?use_vcache:bool -> ?use_precomp:bool -> ?use_cfpre:bool -> protected:bool -> unit -> outcome

val non_control_data :
  ?use_vcache:bool -> ?use_precomp:bool -> ?use_cfpre:bool -> protected:bool -> unit -> outcome

val forensic_expectations : (string * Oskernel.Violation.step list) list
(** attack name ⇒ acceptable violation steps, as asserted by the runs. *)

val forensic_runs : unit -> (string * Oskernel.Kernel.t * outcome) list
(** Run the three §4.1 attacks protected, each against a fresh kernel with
    a tamper-evident audit chain attached ({!Oskernel.Kernel.set_authlog},
    chain key = {!key}). Returns [(name, kernel, outcome)] so callers can
    inspect the forensic {!Oskernel.Violation.snapshot} in the kernel's
    audit log and verify the chain — the corpus behind
    [asc_audit classify]. *)

val frankenstein :
  ?use_vcache:bool -> ?use_precomp:bool -> ?use_cfpre:bool -> cross:bool -> unit -> outcome
(** [cross:true] splices application B's authenticated call after
    application A's chain (must be blocked); [cross:false] runs B's own
    chain alone from start (allowed — the Frankenstein program is confined
    to a single application's calls, the paper's stated guarantee). *)
