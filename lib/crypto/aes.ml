(* AES-128 (FIPS-197). The S-box is derived from first principles
   (multiplicative inverse in GF(2^8) followed by the affine map) rather than
   transcribed, to avoid transcription errors; correctness is pinned by the
   FIPS-197 and NIST test vectors in the test suite. *)

let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1b) land 0xff else b2 land 0xff

(* Multiplication in GF(2^8) with the AES polynomial. *)
let gmul a b =
  let rec loop a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      loop (xtime a) (b lsr 1) acc
  in
  loop a b 0

let sbox = Array.make 256 0
let inv_sbox = Array.make 256 0

let () =
  (* Build the multiplicative inverse table by brute force (256^2 ops, once). *)
  let inverse = Array.make 256 0 in
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gmul a b = 1 then inverse.(a) <- b
    done
  done;
  let rotl8 x n = ((x lsl n) lor (x lsr (8 - n))) land 0xff in
  for i = 0 to 255 do
    let x = inverse.(i) in
    let s = x lxor rotl8 x 1 lxor rotl8 x 2 lxor rotl8 x 3 lxor rotl8 x 4 lxor 0x63 in
    sbox.(i) <- s;
    inv_sbox.(s) <- i
  done

type key = int array
(* 44 32-bit words of the expanded key schedule, stored big-endian wordwise:
   word = b0<<24 | b1<<16 | b2<<8 | b3 where b0 is the first byte. *)

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

let expand raw =
  if String.length raw <> 16 then invalid_arg "Aes.expand: key must be 16 bytes";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <-
      (Char.code raw.[4 * i] lsl 24)
      lor (Char.code raw.[(4 * i) + 1] lsl 16)
      lor (Char.code raw.[(4 * i) + 2] lsl 8)
      lor Char.code raw.[(4 * i) + 3]
  done;
  let sub_word x =
    (sbox.((x lsr 24) land 0xff) lsl 24)
    lor (sbox.((x lsr 16) land 0xff) lsl 16)
    lor (sbox.((x lsr 8) land 0xff) lsl 8)
    lor sbox.(x land 0xff)
  in
  let rot_word x = ((x lsl 8) lor (x lsr 24)) land 0xffffffff in
  for i = 4 to 43 do
    let temp = w.(i - 1) in
    let temp =
      if i mod 4 = 0 then sub_word (rot_word temp) lxor (rcon.((i / 4) - 1) lsl 24)
      else temp
    in
    w.(i) <- w.(i - 4) lxor temp
  done;
  w

(* State is a 16-element int array in column-major order as in FIPS-197:
   state.(r + 4*c). Input byte i maps to state.(i mod 4 + 4*(i/4)) — i.e.
   bytes fill columns. We simply keep the state as the 16 input bytes in
   order and index accordingly. *)

let add_round_key st (w : key) round =
  for c = 0 to 3 do
    let word = w.((round * 4) + c) in
    st.((4 * c) + 0) <- st.((4 * c) + 0) lxor ((word lsr 24) land 0xff);
    st.((4 * c) + 1) <- st.((4 * c) + 1) lxor ((word lsr 16) land 0xff);
    st.((4 * c) + 2) <- st.((4 * c) + 2) lxor ((word lsr 8) land 0xff);
    st.((4 * c) + 3) <- st.((4 * c) + 3) lxor (word land 0xff)
  done

let sub_bytes st =
  for i = 0 to 15 do
    st.(i) <- sbox.(st.(i))
  done

(* Row r of the state is the bytes st.(r), st.(r+4), st.(r+8), st.(r+12);
   ShiftRows rotates row r left by r. *)
let shift_rows st =
  let t1 = st.(1) in
  st.(1) <- st.(5); st.(5) <- st.(9); st.(9) <- st.(13); st.(13) <- t1;
  let t2 = st.(2) and t6 = st.(6) in
  st.(2) <- st.(10); st.(10) <- t2; st.(6) <- st.(14); st.(14) <- t6;
  let t15 = st.(15) in
  st.(15) <- st.(11); st.(11) <- st.(7); st.(7) <- st.(3); st.(3) <- t15

let mix_columns st =
  for c = 0 to 3 do
    let i = 4 * c in
    let a0 = st.(i) and a1 = st.(i + 1) and a2 = st.(i + 2) and a3 = st.(i + 3) in
    st.(i) <- xtime a0 lxor (xtime a1 lxor a1) lxor a2 lxor a3;
    st.(i + 1) <- a0 lxor xtime a1 lxor (xtime a2 lxor a2) lxor a3;
    st.(i + 2) <- a0 lxor a1 lxor xtime a2 lxor (xtime a3 lxor a3);
    st.(i + 3) <- (xtime a0 lxor a0) lxor a1 lxor a2 lxor xtime a3
  done

(* One shared state buffer (the kernel is single-threaded and a block
   encryption fully consumes it before returning): block encryption is on
   the checker's per-trap path, where a fresh 16-element array per call
   would dominate the fast paths' host-allocation budget. *)
let st_scratch = Array.make 16 0

let encrypt_block key src ~pos dst ~dst_pos =
  let st = st_scratch in
  for i = 0 to 15 do
    st.(i) <- Char.code (Bytes.get src (pos + i))
  done;
  add_round_key st key 0;
  for round = 1 to 9 do
    sub_bytes st;
    shift_rows st;
    mix_columns st;
    add_round_key st key round
  done;
  sub_bytes st;
  shift_rows st;
  add_round_key st key 10;
  for i = 0 to 15 do
    Bytes.set dst (dst_pos + i) (Char.chr st.(i))
  done

let encrypt key block =
  if String.length block <> 16 then invalid_arg "Aes.encrypt: block must be 16 bytes";
  let src = Bytes.of_string block in
  let dst = Bytes.create 16 in
  encrypt_block key src ~pos:0 dst ~dst_pos:0;
  Bytes.to_string dst
