(** CMAC (OMAC1) over AES-128, per RFC 4493 / Iwata-Kurosawa "OMAC: One-Key
    CBC MAC" — the MAC construction the paper's prototype uses
    ("AES-CBC-OMAC", producing a 128-bit code). *)

type key
(** A CMAC key: the expanded AES key, the two derived subkeys, and reusable
    scratch buffers for the MAC computations (derive a key once per kernel
    and reuse it; [of_raw] is the only allocation point). *)

val of_raw : string -> key
(** [of_raw raw] derives a CMAC key from a 16-byte raw AES key.
    @raise Invalid_argument if [raw] is not 16 bytes. *)

val mac : key -> string -> string
(** [mac k msg] returns the 16-byte CMAC tag of [msg] (any length,
    including empty). *)

val mac_bytes : key -> bytes -> pos:int -> len:int -> string
(** [mac_bytes k b ~pos ~len] MACs the slice [b.[pos .. pos+len-1]]. *)

val mac_block_into : key -> bytes -> dst:bytes -> unit
(** [mac_block_into k b ~dst] writes the 16-byte CMAC tag of the single
    complete block [b.[0..15]] into [dst.[0..15]] without allocating. A
    complete block is its own final block, so the tag is
    [AES(b xor k1)] — one AES invocation, the degenerate case of the
    {!Streaming} chain whose saved empty-prefix state is the subkey
    schedule itself. Always equal to [mac k] of the same 16 bytes; this is
    the amortized per-call step of the checker's lbMAC nonce chain.
    @raise Invalid_argument if [b] or [dst] is shorter than 16 bytes. *)

val equal_tags : string -> string -> bool
(** Constant-time comparison of two 16-byte tags. Returns [false] when
    lengths differ. *)

val equal_tags_bytes : bytes -> bytes -> bool
(** {!equal_tags} over scratch buffers (no string conversion on the
    comparison path). *)

val tag_len : int
(** Length of a tag in bytes (16). *)

(** Incremental CMAC over the same key: absorb a message in arbitrary
    pieces, snapshot the chaining state after a known prefix, and later
    resume from that snapshot to authenticate [prefix ++ suffix] while
    paying AES only for the suffix blocks. For every split of a message,
    [init; update*; final] equals the one-shot {!mac} of the whole message
    (the property the precompiled fast path of [Asc_core.Precomp] rests
    on). A state always withholds its most recent <= 16 bytes from the CBC
    chain, because the final block needs the RFC 4493 k1/k2 treatment —
    so a {!saved} snapshot carries the chaining value plus that pending
    tail, and resuming replays no message bytes. *)
module Streaming : sig
  type state

  type saved
  (** An immutable snapshot of a state: safe to store long-term (e.g. in a
      per-site precompiled table) and to {!resume} from any number of
      times. *)

  val init : key -> state

  val update : state -> bytes -> pos:int -> len:int -> unit
  (** Absorb the slice [b.[pos .. pos+len-1]].
      @raise Invalid_argument if the slice is out of bounds. *)

  val update_string : state -> string -> unit

  val final : state -> string
  (** The 16-byte tag of everything absorbed so far. Non-destructive: the
      state may keep absorbing afterwards, and finalizing twice yields the
      same tag. *)

  val save : state -> saved

  val resume : key -> saved -> state
  (** A fresh state positioned exactly where {!save} left off.
      @raise Invalid_argument if the snapshot is structurally invalid
      (wrong chaining-value length, pending tail longer than a block, or
      an impossible total/tail combination). *)

  val total : state -> int
  (** Bytes absorbed so far. *)
end
