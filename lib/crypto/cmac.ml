type key = {
  aes : Aes.key;
  k1 : bytes;
  k2 : bytes;
  (* per-key scratch reused by [mac_bytes] and [Streaming.final], hoisted
     out of the per-call path so the verification hot path allocates only
     its returned tag. Sound because MAC computations never nest: each one
     runs to completion before the next starts (no concurrency in the
     simulated kernel), and the tag is copied out before returning. *)
  s_x : bytes;
  s_block : bytes;
  s_last : bytes;
}

let tag_len = 16

(* Left shift of a 16-byte block by one bit; XORs in the GF(2^128) reduction
   constant 0x87 when the input block's MSB was set, per RFC 4493. *)
let double block =
  let msb_set = Char.code (Bytes.get block 0) land 0x80 <> 0 in
  let out = Bytes.create 16 in
  let carry = ref 0 in
  for i = 15 downto 0 do
    let b = Char.code (Bytes.get block i) in
    Bytes.set out i (Char.chr (((b lsl 1) lor !carry) land 0xff));
    carry := b lsr 7
  done;
  if msb_set then Bytes.set out 15 (Char.chr (Char.code (Bytes.get out 15) lxor 0x87));
  out

let of_raw raw =
  let aes = Aes.expand raw in
  let zero = Bytes.make 16 '\000' in
  let l = Bytes.create 16 in
  Aes.encrypt_block aes zero ~pos:0 l ~dst_pos:0;
  let k1 = double l in
  let k2 = double k1 in
  { aes; k1; k2; s_x = Bytes.create 16; s_block = Bytes.create 16; s_last = Bytes.create 16 }

let xor_into dst src =
  for i = 0 to 15 do
    Bytes.set dst i (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let mac_bytes key msg ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length msg then
    invalid_arg "Cmac.mac_bytes: slice out of bounds";
  let n_full = len / 16 and rem = len mod 16 in
  (* Number of blocks processed before the (padded or complete) last block. *)
  let head_blocks = if len = 0 then 0 else if rem = 0 then n_full - 1 else n_full in
  let x = key.s_x and block = key.s_block and last = key.s_last in
  Bytes.fill x 0 16 '\000';
  for i = 0 to head_blocks - 1 do
    Bytes.blit msg (pos + (16 * i)) block 0 16;
    xor_into x block;
    Aes.encrypt_block key.aes x ~pos:0 x ~dst_pos:0
  done;
  let complete = len > 0 && rem = 0 in
  if complete then begin
    Bytes.blit msg (pos + (16 * head_blocks)) last 0 16;
    xor_into last key.k1
  end
  else begin
    Bytes.fill last 0 16 '\000';
    let tail = len - (16 * head_blocks) in
    Bytes.blit msg (pos + (16 * head_blocks)) last 0 tail;
    Bytes.set last tail '\x80';
    xor_into last key.k2
  end;
  xor_into x last;
  Aes.encrypt_block key.aes x ~pos:0 x ~dst_pos:0;
  Bytes.to_string x

let mac key msg = mac_bytes key (Bytes.unsafe_of_string msg) ~pos:0 ~len:(String.length msg)

(* CMAC of a single complete 16-byte block, written into [dst] without
   allocating: the message is its own (complete) final block, so the tag is
   AES(M1 xor k1) — the degenerate case of the streaming chain, where the
   saved state over the empty prefix is just the subkey schedule. Equal to
   [mac] of the same 16 bytes (pinned by the unit tests). *)
let mac_block_into key b ~dst =
  if Bytes.length b < 16 then invalid_arg "Cmac.mac_block_into: block must be 16 bytes";
  if Bytes.length dst < 16 then invalid_arg "Cmac.mac_block_into: dst must hold 16 bytes";
  let x = key.s_x in
  Bytes.blit b 0 x 0 16;
  xor_into x key.k1;
  Aes.encrypt_block key.aes x ~pos:0 x ~dst_pos:0;
  Bytes.blit x 0 dst 0 16

let equal_tags a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let equal_tags_bytes a b =
  if Bytes.length a <> Bytes.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to Bytes.length a - 1 do
      acc := !acc lor (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i))
    done;
    !acc = 0
  end

(* Incremental CMAC. The invariant mirrors the one-shot computation: [st_x]
   is the CBC chaining value over every *completed* block, and the most
   recent <= 16 bytes wait in [st_buf] — a full buffered block is only
   encrypted once more data arrives, because the final block must still be
   available for the k1/k2 treatment at [final] time. Consequently after any
   nonempty absorption [st_len] is in 1..16, and [st_len = 0] iff no bytes
   were absorbed at all — exactly the two shapes [final] distinguishes. *)
module Streaming = struct
  type state = {
    st_key : key;
    st_x : bytes;
    st_buf : bytes;
    mutable st_len : int;
    mutable st_total : int;
  }

  type saved = {
    sv_x : string;
    sv_buf : string;
    sv_total : int;
  }

  let init key =
    { st_key = key;
      st_x = Bytes.make 16 '\000';
      st_buf = Bytes.create 16;
      st_len = 0;
      st_total = 0 }

  let total st = st.st_total

  (* fold the full buffered block into the chain; only called when more
     data follows, so the last block is always withheld *)
  let flush st =
    xor_into st.st_x st.st_buf;
    Aes.encrypt_block st.st_key.aes st.st_x ~pos:0 st.st_x ~dst_pos:0;
    st.st_len <- 0

  let update st msg ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length msg then
      invalid_arg "Cmac.Streaming.update: slice out of bounds";
    let i = ref pos and remaining = ref len in
    while !remaining > 0 do
      if st.st_len = 16 then flush st;
      let n = min !remaining (16 - st.st_len) in
      Bytes.blit msg !i st.st_buf st.st_len n;
      st.st_len <- st.st_len + n;
      i := !i + n;
      remaining := !remaining - n
    done;
    st.st_total <- st.st_total + len

  let update_string st s =
    update st (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

  let save st =
    { sv_x = Bytes.to_string st.st_x;
      sv_buf = Bytes.sub_string st.st_buf 0 st.st_len;
      sv_total = st.st_total }

  let resume key sv =
    if String.length sv.sv_x <> 16 then invalid_arg "Cmac.Streaming.resume: bad chaining value";
    let len = String.length sv.sv_buf in
    if len > 16 || sv.sv_total < len || (sv.sv_total > 0 && len = 0) then
      invalid_arg "Cmac.Streaming.resume: inconsistent saved state";
    let st =
      { st_key = key;
        st_x = Bytes.of_string sv.sv_x;
        st_buf = Bytes.create 16;
        st_len = len;
        st_total = sv.sv_total }
    in
    Bytes.blit_string sv.sv_buf 0 st.st_buf 0 len;
    st

  (* Non-destructive: works on the per-key scratch so the state can keep
     absorbing afterwards (or be finalized again). *)
  let final st =
    let k = st.st_key in
    Bytes.blit st.st_x 0 k.s_x 0 16;
    if st.st_total > 0 && st.st_len = 16 then begin
      Bytes.blit st.st_buf 0 k.s_last 0 16;
      xor_into k.s_last k.k1
    end
    else begin
      Bytes.fill k.s_last 0 16 '\000';
      Bytes.blit st.st_buf 0 k.s_last 0 st.st_len;
      Bytes.set k.s_last st.st_len '\x80';
      xor_into k.s_last k.k2
    end;
    xor_into k.s_x k.s_last;
    Aes.encrypt_block k.aes k.s_x ~pos:0 k.s_x ~dst_pos:0;
    Bytes.to_string k.s_x
end
