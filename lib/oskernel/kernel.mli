(** The simulated kernel: system-call dispatch, the software trap handler,
    and the monitor hook where the paper's 248-line kernel modification
    plugs in.

    The kernel exposes a single [monitor] slot invoked on every trap before
    dispatch. The authenticated-system-call checker ([Asc_core.Checker])
    registers here, as does the Systrace-style user-space baseline; a
    machine with no monitor runs unprotected, which is the paper's
    "original binaries" baseline. *)

type verdict =
  | Allow
  | Deny of string  (** process is terminated; reason is audited *)
  | Deny_violation of Violation.t
      (** Like [Deny] but structured: the kernel audits a {!Violation}
          entry carrying the failing verification step and a forensic
          snapshot captured before teardown. The kill reason is the
          violation's [v_reason]. The kernel overwrites [v_site]/[v_number]
          with the actual trap coordinates and resolves [v_sem] when the
          monitor left it [None]. *)

type monitor = {
  monitor_name : string;
  pre_syscall : Process.t -> site:int -> number:int -> verdict;
      (** Called with the trap site (address of the [Sys] instruction) and
          raw trap number before dispatch. May read/write process memory
          (policy state updates) and charge cycles to the machine. *)
  post_syscall : Process.t -> site:int -> sem:Syscall.sem option -> result:int -> unit;
      (** Called after dispatch with the resolved operation and its result;
          used by capability tracking (§5.3) to observe returned file
          descriptors. *)
}

val no_post : Process.t -> site:int -> sem:Syscall.sem option -> result:int -> unit
(** A post hook that does nothing. *)

(** Process lifecycle notifications, delivered to {!add_lifecycle_hook}
    subscribers. Monitors that keep per-pid state subscribe here:
    [Proc_spawn] fires from {!spawn} once the image is loaded and the pid
    assigned — the point where exec-time per-pid tables (the checker's
    precompiled-policy table) are created; [Proc_exec] fires after
    [execve] replaced the image any cached facts were derived from;
    [Proc_exit] fires when {!run} ends in a terminal stop (halt, kill or
    fault — not a resumable cycle-limit stop), after which the pid could
    in principle be reused. *)
type lifecycle =
  | Proc_spawn of { pid : int }
  | Proc_exec of { pid : int }
  | Proc_exit of { pid : int }

val compose_monitors : string -> monitor list -> monitor
(** Run pre hooks in order (first [Deny] wins) and all post hooks. *)

type trace_entry = {
  t_sem : Syscall.sem option;  (** [None] for unknown trap numbers *)
  t_number : int;
  t_site : int;
  t_args : int array;          (** r1..r6 at trap time *)
  t_result : int;
}

(** Structured audit events: what the kernel records about security-
    relevant outcomes. Consumers match on the variant (or export it as
    JSON) instead of string-parsing pre-formatted log lines. *)
type audit_entry =
  | Denied of { pid : int; program : string; site : int; number : int; reason : string }
      (** an unstructured monitor (e.g. Systrace, capability tracking)
          denied the call *)
  | Execve of { pid : int; program : string; path : string }
      (** [program] is the image that issued the call, [path] the image
          exec'd into *)
  | Violation of {
      pid : int;
      program : string;
      violation : Violation.t;
      snapshot : Violation.snapshot;
    }  (** a structured deny: which verification step failed, plus the
           machine/policy state at deny time *)
  | Alert of {
      pid : int;          (** 0 for fleet-scope alerts *)
      program : string;   (** alert source, e.g. ["fleet"] *)
      rule : string;      (** the {!Asc_obs.Health} rule name *)
      event : string;     (** transition: armed / disarmed / fired / cleared *)
      ts : int;           (** virtual-cycle timestamp of the snapshot row *)
      value : float;      (** the evaluated signal *)
      threshold : float;
    }  (** a fleet-health rule transition ({!Asc_obs.Health}), recorded so
           SLO incidents are tamper-evident alongside violations *)

val audit_to_string : audit_entry -> string
(** The traditional one-line rendering. *)

val audit_to_json : audit_entry -> Asc_obs.Json.t
(** Uniform schema: every variant carries ["kind"], ["pid"] and
    ["program"]; call-shaped variants share ["site"]/["number"]; the
    violation variant flattens {!Violation.to_json} into the envelope and
    nests the snapshot under ["snapshot"]. *)

val audit_of_json : Asc_obs.Json.t -> (audit_entry, string) result
(** Inverse of {!audit_to_json}: [audit_of_json (audit_to_json e) = Ok e]. *)

val snapshot_history : int
(** Number of trace-ring entries embedded in a forensic snapshot (8). *)

type t = {
  vfs : Vfs.t;
  pers : Personality.t;
  obs : Asc_obs.Metrics.registry;       (** per-kernel metrics; see {!metrics} *)
  telemetry : Asc_obs.Telemetry.t;
  (** always-on fleet telemetry plane: per-pid shards are created by
      {!spawn} and retired (folded into the plane's aggregate) when {!run}
      ends in a terminal stop. The checker records one decision reason per
      monitored call here; see {!telemetry}. *)
  spans : Asc_obs.Trace.t;              (** per-syscall spans (cycle timestamps) *)
  trace : trace_entry Asc_obs.Ring.t;   (** bounded; see {!trace} *)
  audit : audit_entry Asc_obs.Ring.t;   (** bounded; see {!audit_log} *)
  mutable next_pid : int;
  mutable monitor : monitor option;
  mutable tracing : bool;               (** gates the trace ring and span collector *)
  mutable authlog : Asc_obs.Authlog.t option;
  (** when set, every audit entry is also appended to this tamper-evident
      CMAC chain; see {!set_authlog} *)
  mutable lifecycle_hooks : (lifecycle -> unit) list;
  (** subscribers to process lifecycle events; see {!add_lifecycle_hook} *)
  ctr_syscalls : Asc_obs.Metrics.counter;
  ctr_allowed : Asc_obs.Metrics.counter;
  ctr_denied : Asc_obs.Metrics.counter;
  ctr_vm_instrs : Asc_obs.Metrics.counter;
  (** [svm.instructions] in {!metrics}: instructions retired under this
      kernel, mirrored from machine deltas by {!run} so kernels with
      separate registries never bleed into each other. *)
  ctr_vm_cycles : Asc_obs.Metrics.counter;   (** likewise [svm.cycles] *)
  ctr_host_minor_words : Asc_obs.Metrics.counter;
  (** [kernel.host_minor_words]: host minor-heap words allocated while
      this kernel's processes ran (interpreter + checker + telemetry),
      measured as [Gc.minor_words] deltas around {!run}. *)
  hist_syscall_cycles : Asc_obs.Metrics.histogram;
  sem_counters : (Syscall.sem, Asc_obs.Metrics.counter) Hashtbl.t;
}

val create :
  ?personality:Personality.t -> ?obs:Asc_obs.Metrics.registry -> ?trace_capacity:int ->
  ?audit_capacity:int -> unit -> t
(** Fresh kernel (default personality {!Personality.linux}) with an empty
    filesystem containing [/], [/tmp], [/etc], [/bin], [/dev]. By default
    every kernel gets its own metrics registry so concurrent benchmark
    runs stay isolated; pass [obs] to share one. [trace_capacity]
    (default 65536) and [audit_capacity] (default 4096) bound the
    retention of the trace and audit rings — total counts survive
    eviction via {!syscall_count} / [Asc_obs.Ring.pushed]. *)

val metrics : t -> Asc_obs.Metrics.registry

val telemetry : t -> Asc_obs.Telemetry.t
(** The kernel's fleet telemetry plane (always on; empty unless a monitor
    records into it). *)

val spans : t -> Asc_obs.Trace.t

val syscall_count : t -> int
(** Traps taken since creation (monitored-and-denied ones included),
    independent of tracing and of ring eviction. *)

val denied_count : t -> int

val set_monitor : t -> monitor option -> unit

val add_lifecycle_hook : t -> (lifecycle -> unit) -> unit
(** Subscribe to {!lifecycle} events; hooks run in subscription order,
    synchronously, from {!spawn} ([Proc_spawn]), from [execve] dispatch
    ([Proc_exec]) and from the tail of {!run} ([Proc_exit]). *)

val set_authlog : t -> Asc_obs.Authlog.t option -> unit
(** Attach (or detach) a tamper-evident audit chain. While attached, every
    audit entry's JSON rendering is appended to the chain as it is pushed
    to the ring; {!clear_audit} empties the ring but never rewrites the
    chain — the chain is the part the process under test cannot undo. *)

val authlog : t -> Asc_obs.Authlog.t option

val install_binary : t -> path:string -> Svm.Obj_file.t -> unit
(** Serialize a SEF image into the VFS so [execve] can load it. *)

val spawn :
  t -> ?stdin:string -> ?libs:Svm.Obj_file.t list -> program:string -> Svm.Obj_file.t ->
  Process.t
(** Create a process running the given image. [libs] are shared-library
    images mapped into the address space at their fixed (prelinked) bases;
    their sections must not overlap the program's or each other's.
    @raise Invalid_argument on a malformed image or an overlap. *)

val spawn_path : t -> ?stdin:string -> string -> (Process.t, string) result
(** Load and spawn the SEF binary installed at a VFS path. *)

val run : t -> Process.t -> max_cycles:int -> Svm.Machine.stop
(** Run the process to completion (exit, fault, kill or cycle budget). *)

val trace : t -> trace_entry list
(** Retained trace, oldest first (at most [trace_capacity] entries). *)

val clear_trace : t -> unit
(** Empties the trace ring and the span collector. *)

val audit_log : t -> audit_entry list
(** Retained audit entries, oldest first. *)

val clear_audit : t -> unit

val record_alert :
  t -> pid:int -> program:string -> rule:string -> event:string -> ts:int -> value:float ->
  threshold:float -> unit
(** Push an {!audit_entry.Alert} through the audit funnel: the bounded
    ring plus, when attached, the tamper-evident authlog chain — the same
    path denies and violations take, so fleet-health incidents share
    their integrity guarantees. Use [pid:0]/[program:"fleet"] for
    fleet-scope alerts. *)

val stdout_of : Process.t -> string
val stderr_of : Process.t -> string
