(** Structured security violations and the forensic snapshot captured when
    the kernel kills a process.

    The paper's monitor terminates a process on any verification failure;
    this module makes the *report* of that failure a first-class artifact:
    which verification step failed ({!step}), where, on which call, with the
    expected-vs-got MAC prefixes when a MAC comparison was involved — plus a
    {!snapshot} of the machine at deny time (registers, recent syscall
    history, control-flow policy state, shadow call stack) so an
    investigator can reconstruct what the process was doing without
    re-running it. *)

(** The verification step that failed. The first three mirror the checker's
    §3.4 pipeline; [Unauthenticated] is the descriptor-marker gate before
    step 1; [Pattern], [Normalization] and [Ext] are the §5 extensions. *)
type step =
  | Call_mac          (** step 1: encoded-call rebuild / call-MAC compare *)
  | String_mac        (** step 2: authenticated-string contents *)
  | Control_flow      (** step 3: predecessor set / lbMAC state checker *)
  | Unauthenticated   (** descriptor marker absent: foreign or injected site *)
  | Pattern           (** §5.1 argument-pattern mismatch *)
  | Normalization     (** §5.4 pathname normalization changed the argument *)
  | Ext               (** §5 extension block: value sets, malformed blocks *)

val step_name : step -> string
(** Stable lower-snake-case name ([call_mac], [string_mac], ...). *)

val step_of_name : string -> step option

val all_steps : step list

val attack_class : step -> string
(** The §4.1 attack class whose forensic signature the step is:
    [Unauthenticated] is shellcode (an injected, never-installed site);
    [Call_mac] and [Control_flow] are mimicry (replayed or re-sequenced
    authenticated calls); [String_mac], [Pattern] and [Ext] are
    non-control-data (argument tampering without control-flow hijack);
    [Normalization] is the §5.4 symlink race. *)

type t = {
  v_step : step;
  v_site : int;                   (** address of the trapping [Sys] *)
  v_number : int;                 (** raw trap number *)
  v_sem : string option;          (** resolved syscall name, when known *)
  v_reason : string;              (** human-readable detail (the legacy string) *)
  v_expected_mac : string option; (** hex prefix of the MAC the kernel computed *)
  v_got_mac : string option;      (** hex prefix of the MAC the process supplied *)
}

(** One entry of the recent-syscall history embedded in a snapshot. *)
type call = {
  c_name : string;
  c_number : int;
  c_site : int;
  c_result : int;
}

(** Machine and policy state at deny time, captured by the kernel before the
    process is torn down. [sn_last_block]/[sn_lb_mac] are best-effort reads
    of the application-held policy state at the lbMAC pointer (r10); they
    are [None] when that memory is unreadable (e.g. the register holds
    garbage because the call site was injected). *)
type snapshot = {
  sn_regs : int array;            (** r0..r11 at trap time *)
  sn_pc : int;
  sn_cycles : int;
  sn_instrs : int;
  sn_counter : int;               (** kernel-held nonce counter (§3.3) *)
  sn_last_block : int option;     (** lastBlock word at the lbMAC pointer *)
  sn_lb_mac : string option;      (** hex of the 16-byte lbMAC *)
  sn_recent : call list;          (** tail of the kernel trace ring, oldest first *)
  sn_shadow_stack : string list;  (** profiler shadow stack, outermost first;
                                      empty when profiling is off *)
}

val snapshot_regs : int
(** Number of registers captured (12: r0..r11 — the argument, descriptor
    and policy-pointer registers the checker consumes). *)

val to_string : t -> string
(** One-line rendering: step, site, number and reason. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Asc_obs.Json.t
val of_json : Asc_obs.Json.t -> (t, string) result
(** [of_json (to_json v) = Ok v]. *)

val snapshot_to_json : snapshot -> Asc_obs.Json.t
val snapshot_of_json : Asc_obs.Json.t -> (snapshot, string) result
(** [snapshot_of_json (snapshot_to_json s) = Ok s]. *)
