open Svm

type verdict =
  | Allow
  | Deny of string
  | Deny_violation of Violation.t

type monitor = {
  monitor_name : string;
  pre_syscall : Process.t -> site:int -> number:int -> verdict;
  post_syscall : Process.t -> site:int -> sem:Syscall.sem option -> result:int -> unit;
}

let no_post _ ~site:_ ~sem:_ ~result:_ = ()

let compose_monitors name monitors =
  { monitor_name = name;
    pre_syscall =
      (fun p ~site ~number ->
        let rec go = function
          | [] -> Allow
          | m :: rest ->
            (match m.pre_syscall p ~site ~number with
             | Allow -> go rest
             | (Deny _ | Deny_violation _) as d -> d)
        in
        go monitors);
    post_syscall =
      (fun p ~site ~sem ~result ->
        List.iter (fun m -> m.post_syscall p ~site ~sem ~result) monitors) }

(* Process lifecycle notifications for caches keyed by pid: spawn and
   execve (re)establish which image a pid runs — per-pid tables are
   (re)built there — and teardown frees the pid for reuse, so per-pid
   state must be dropped. *)
type lifecycle =
  | Proc_spawn of { pid : int }
  | Proc_exec of { pid : int }
  | Proc_exit of { pid : int }

type trace_entry = {
  t_sem : Syscall.sem option;
  t_number : int;
  t_site : int;
  t_args : int array;
  t_result : int;
}

type audit_entry =
  | Denied of { pid : int; program : string; site : int; number : int; reason : string }
  | Execve of { pid : int; program : string; path : string }
  | Violation of {
      pid : int;
      program : string;
      violation : Violation.t;
      snapshot : Violation.snapshot;
    }
  | Alert of {
      pid : int;
      program : string;
      rule : string;
      event : string;
      ts : int;
      value : float;
      threshold : float;
    }

let audit_to_string = function
  | Denied { pid; program; site; number; reason } ->
    Printf.sprintf "pid %d DENIED %s at site 0x%x number %d: %s" pid program site number reason
  | Execve { pid; program = _; path } -> Printf.sprintf "pid %d execve %s" pid path
  | Violation { pid; program; violation; snapshot = _ } ->
    Printf.sprintf "pid %d VIOLATION %s %s" pid program (Violation.to_string violation)
  | Alert { pid = _; program; rule; event; ts; value; threshold } ->
    Printf.sprintf "ALERT %s rule %s %s at ts %d (value %.2f, threshold %.2f)" program rule
      event ts value threshold

(* Every variant carries the same envelope — "kind", "pid", "program" — and
   call-shaped variants share the "site"/"number" field names, so consumers
   can dispatch on "kind" without per-variant null checks. *)
let audit_to_json entry =
  let open Asc_obs.Json in
  let envelope kind pid program rest = Obj (("kind", Str kind) :: ("pid", Int pid) :: ("program", Str program) :: rest) in
  match entry with
  | Denied { pid; program; site; number; reason } ->
    envelope "denied" pid program
      [ ("site", Int site); ("number", Int number); ("reason", Str reason) ]
  | Execve { pid; program; path } -> envelope "execve" pid program [ ("path", Str path) ]
  | Violation { pid; program; violation; snapshot } ->
    let fields = match Violation.to_json violation with Obj f -> f | _ -> [] in
    envelope "violation" pid program
      (fields @ [ ("snapshot", Violation.snapshot_to_json snapshot) ])
  | Alert { pid; program; rule; event; ts; value; threshold } ->
    envelope "alert" pid program
      [ ("rule", Str rule); ("event", Str event); ("ts", Int ts);
        ("value", Float value); ("threshold", Float threshold) ]

let audit_of_json j =
  let open Asc_obs.Json in
  let ( let* ) = Result.bind in
  let get_int k =
    match Option.bind (member k j) to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "audit entry: missing int field %S" k)
  in
  let get_str k =
    match Option.bind (member k j) to_str with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "audit entry: missing string field %S" k)
  in
  let get_float k =
    match Option.bind (member k j) to_float with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "audit entry: missing numeric field %S" k)
  in
  let* kind = get_str "kind" in
  let* pid = get_int "pid" in
  let* program = get_str "program" in
  match kind with
  | "denied" ->
    let* site = get_int "site" in
    let* number = get_int "number" in
    let* reason = get_str "reason" in
    Ok (Denied { pid; program; site; number; reason })
  | "execve" ->
    let* path = get_str "path" in
    Ok (Execve { pid; program; path })
  | "violation" ->
    let* violation = Violation.of_json j in
    let* snapshot =
      match member "snapshot" j with
      | Some s -> Violation.snapshot_of_json s
      | None -> Error "audit entry: violation missing snapshot"
    in
    Ok (Violation { pid; program; violation; snapshot })
  | "alert" ->
    let* rule = get_str "rule" in
    let* event = get_str "event" in
    let* ts = get_int "ts" in
    let* value = get_float "value" in
    let* threshold = get_float "threshold" in
    Ok (Alert { pid; program; rule; event; ts; value; threshold })
  | k -> Error (Printf.sprintf "audit entry: unknown kind %S" k)

type t = {
  vfs : Vfs.t;
  pers : Personality.t;
  obs : Asc_obs.Metrics.registry;
  telemetry : Asc_obs.Telemetry.t;
  spans : Asc_obs.Trace.t;
  trace : trace_entry Asc_obs.Ring.t;
  audit : audit_entry Asc_obs.Ring.t;
  mutable next_pid : int;
  mutable monitor : monitor option;
  mutable tracing : bool;
  mutable authlog : Asc_obs.Authlog.t option;
  mutable lifecycle_hooks : (lifecycle -> unit) list;
  ctr_syscalls : Asc_obs.Metrics.counter;
  ctr_allowed : Asc_obs.Metrics.counter;
  ctr_denied : Asc_obs.Metrics.counter;
  ctr_vm_instrs : Asc_obs.Metrics.counter;
  ctr_vm_cycles : Asc_obs.Metrics.counter;
  ctr_host_minor_words : Asc_obs.Metrics.counter;
  hist_syscall_cycles : Asc_obs.Metrics.histogram;
  sem_counters : (Syscall.sem, Asc_obs.Metrics.counter) Hashtbl.t;
}

let create ?(personality = Personality.linux) ?obs ?(trace_capacity = 65536)
    ?(audit_capacity = 4096) () =
  let vfs = Vfs.create () in
  List.iter (Vfs.mkdir_p vfs) [ "/tmp"; "/etc"; "/bin"; "/dev"; "/home" ];
  let obs = match obs with Some r -> r | None -> Asc_obs.Metrics.create () in
  let spans = Asc_obs.Trace.create () in
  Asc_obs.Trace.name_process spans "asc-kernel";
  { vfs;
    pers = personality;
    obs;
    (* always-on: the fleet telemetry plane shares the kernel's lifetime
       so per-pid shards track process lifecycle exactly *)
    telemetry = Asc_obs.Telemetry.create ();
    spans;
    trace = Asc_obs.Ring.create ~capacity:trace_capacity;
    audit = Asc_obs.Ring.create ~capacity:audit_capacity;
    next_pid = 1;
    monitor = None;
    tracing = false;
    authlog = None;
    lifecycle_hooks = [];
    ctr_syscalls =
      Asc_obs.Metrics.counter obs "kernel.syscalls.total" ~help:"traps taken (incl. denied)";
    ctr_allowed = Asc_obs.Metrics.counter obs "kernel.syscalls.allowed";
    ctr_denied = Asc_obs.Metrics.counter obs "kernel.syscalls.denied";
    ctr_vm_instrs =
      Asc_obs.Metrics.counter obs "svm.instructions"
        ~help:"instructions retired by this kernel's processes";
    ctr_vm_cycles =
      Asc_obs.Metrics.counter obs "svm.cycles" ~help:"modeled cycles (app + kernel charges)";
    ctr_host_minor_words =
      Asc_obs.Metrics.counter obs "kernel.host_minor_words"
        ~help:"host minor words allocated inside Machine.run (interpreter + checker)";
    hist_syscall_cycles =
      Asc_obs.Metrics.histogram obs "kernel.syscall_cycles"
        ~help:"modeled cycles per dispatched syscall (trap + check + work)";
    sem_counters = Hashtbl.create 32 }

let metrics t = t.obs
let telemetry t = t.telemetry
let spans t = t.spans

let sem_counter t sem =
  match Hashtbl.find_opt t.sem_counters sem with
  | Some c -> c
  | None ->
    let c = Asc_obs.Metrics.counter t.obs ("kernel.syscall." ^ Syscall.name sem) in
    Hashtbl.replace t.sem_counters sem c;
    c

let set_monitor t m = t.monitor <- m
let set_authlog t l = t.authlog <- l
let authlog t = t.authlog

let add_lifecycle_hook t f = t.lifecycle_hooks <- t.lifecycle_hooks @ [ f ]
let lifecycle_event t ev = List.iter (fun f -> f ev) t.lifecycle_hooks

(* All audit events funnel through here: the bounded ring for cheap
   retention, plus (when attached) the tamper-evident CMAC chain. *)
let audit_push t entry =
  Asc_obs.Ring.push t.audit entry;
  match t.authlog with
  | Some log -> Asc_obs.Authlog.append log (audit_to_json entry)
  | None -> ()

let install_binary t ~path img =
  match Vfs.create_file t.vfs ~cwd:"/" path ~contents:(Obj_file.serialize img) with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "install_binary %s: %s" path (Errno.name e))

let extent (img : Obj_file.t) =
  List.fold_left
    (fun (lo, hi) (s : Obj_file.section) ->
      (min lo s.sec_addr, max hi (s.sec_addr + s.sec_size)))
    (max_int, 0) img.sections

let spawn t ?(stdin = "") ?(libs = []) ~program img =
  let machine = Loader.load img in
  (* map shared libraries at their fixed bases, refusing overlaps *)
  let ranges = ref [ extent img ] in
  List.iter
    (fun (lib : Obj_file.t) ->
      let lo, hi = extent lib in
      List.iter
        (fun (l, h) ->
          if lo < h && l < hi then
            invalid_arg
              (Printf.sprintf "Kernel.spawn: library [0x%x,0x%x) overlaps [0x%x,0x%x)" lo hi l
                 h))
        !ranges;
      ranges := (lo, hi) :: !ranges;
      List.iter
        (fun (s : Obj_file.section) ->
          match s.sec_kind with
          | Obj_file.Bss -> ()
          | Obj_file.Text | Obj_file.Rodata | Obj_file.Data ->
            if not (Machine.write_mem machine ~addr:s.sec_addr s.sec_payload) then
              invalid_arg "Kernel.spawn: library section outside memory")
        lib.sections)
    libs;
  (* the heap starts above everything mapped *)
  let top = List.fold_left (fun acc (_, hi) -> max acc hi) 0 !ranges in
  let heap_start = (top + Svm.Asm.page_size - 1) / Svm.Asm.page_size * Svm.Asm.page_size in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  (* the pid's telemetry shard exists from the first instruction on, so
     monitored calls never race shard creation on the trap path *)
  ignore (Asc_obs.Telemetry.shard t.telemetry ~pid);
  Asc_obs.Trace.name_track t.spans ~track:pid program;
  let proc = Process.create ~pid ~program ~machine ~heap_start in
  proc.Process.stdin <- stdin;
  lifecycle_event t (Proc_spawn { pid });
  proc

let spawn_path t ?(stdin = "") path =
  match Vfs.read_file t.vfs ~cwd:"/" path with
  | Error e -> Error (Printf.sprintf "%s: %s" path (Errno.name e))
  | Ok contents ->
    (match Obj_file.parse contents with
     | Error e -> Error (Printf.sprintf "%s: not a SEF binary (%s)" path e)
     | Ok img -> Ok (spawn t ~stdin ~program:path img))

(* ----- syscall implementation ----- *)

type outcome =
  | Ret of int
  | Exited of int

let err e = Ret (-Errno.code e)
let lift = function Ok v -> v | Error e -> -Errno.code e
let lift_unit = function Ok () -> 0 | Error e -> -Errno.code e

(* Every kernel-side cycle charge goes through here so the shadow-stack
   profiler (when attached) sees the same total the machine counts. *)
let charge (m : Machine.t) n =
  m.cycles <- m.cycles + n;
  match m.profile with
  | Some p -> Asc_obs.Profile.charge p n
  | None -> ()

let max_io = 1 lsl 20

(* Flags shared with the MiniC libc. *)
let o_wronly = 1
let o_rdwr = 2
let o_creat = 64
let o_trunc = 512
let o_append = 1024

let cstring m addr = Machine.read_cstring m ~addr ~max:4096

let sys_open t (p : Process.t) path flags =
  let cwd = p.cwd in
  match Vfs.normalize t.vfs ~cwd path with
  | Error e -> Ret (-Errno.code e)
  | Ok canon ->
    let exists = Vfs.exists t.vfs ~cwd:"/" canon in
    if Vfs.is_dir t.vfs ~cwd:"/" canon then begin
      if flags land (o_wronly lor o_rdwr) <> 0 then err Errno.EISDIR
      else Ret (Process.fresh_fd p (Process.Dir { path = canon; consumed = false }))
    end
    else if (not exists) && flags land o_creat = 0 then err Errno.ENOENT
    else begin
      let create_or_trunc =
        ((not exists) && flags land o_creat <> 0) || flags land o_trunc <> 0
      in
      let r =
        if create_or_trunc then Vfs.create_file t.vfs ~cwd:"/" canon ~contents:""
        else Ok ()
      in
      match r with
      | Error e -> Ret (-Errno.code e)
      | Ok () ->
        let append = flags land o_append <> 0 in
        let pos =
          if append then match Vfs.file_size t.vfs ~cwd:"/" canon with Ok n -> n | Error _ -> 0
          else 0
        in
        Ret (Process.fresh_fd p (Process.File { path = canon; pos; append }))
    end

let sys_read t (p : Process.t) fd buf len =
  if len < 0 then err Errno.EINVAL
  else begin
    let len = min len max_io in
    let m = p.machine in
    let deliver data =
      if Machine.write_mem m ~addr:buf data then begin
        charge m (Cost_model.copy_cost (String.length data));
        Ret (String.length data)
      end
      else err Errno.EFAULT
    in
    match Process.fd p fd with
    | None -> err Errno.EBADF
    | Some Process.Console_in ->
      let avail = String.length p.stdin - p.stdin_pos in
      let n = min len avail in
      let data = String.sub p.stdin p.stdin_pos n in
      p.stdin_pos <- p.stdin_pos + n;
      deliver data
    | Some (Process.File f) ->
      (match Vfs.read_at t.vfs ~cwd:"/" f.path ~pos:f.pos ~len with
       | Error e -> Ret (-Errno.code e)
       | Ok data ->
         f.pos <- f.pos + String.length data;
         deliver data)
    | Some (Process.Dir _) -> err Errno.EISDIR
    | Some (Process.Sock _) -> Ret 0
    | Some (Process.Console_out | Process.Console_err) -> err Errno.EBADF
  end

let write_payload t (p : Process.t) fd data =
  let n = String.length data in
  let m = p.machine in
  charge m (Cost_model.copy_cost n + (Cost_model.write_buffer_per_byte * n));
  match Process.fd p fd with
  | None -> err Errno.EBADF
  | Some Process.Console_out ->
    Buffer.add_string p.stdout data;
    Ret n
  | Some Process.Console_err ->
    Buffer.add_string p.stderr data;
    Ret n
  | Some (Process.File f) ->
    (match Vfs.write_at t.vfs ~cwd:"/" f.path ~pos:f.pos data with
     | Error e -> Ret (-Errno.code e)
     | Ok written ->
       f.pos <- f.pos + written;
       Ret written)
  | Some (Process.Sock s) ->
    s.sent <- s.sent + n;
    Ret n
  | Some (Process.Dir _) -> err Errno.EISDIR
  | Some Process.Console_in -> err Errno.EBADF

let sys_write t (p : Process.t) fd buf len =
  if len < 0 then err Errno.EINVAL
  else begin
    let len = min len max_io in
    match Machine.read_mem p.machine ~addr:buf ~len with
    | None -> err Errno.EFAULT
    | Some data -> write_payload t p fd data
  end

let sys_writev t (p : Process.t) fd iov cnt =
  if cnt < 0 || cnt > 64 then err Errno.EINVAL
  else begin
    let m = p.machine in
    let rec gather acc i =
      if i >= cnt then Some (String.concat "" (List.rev acc))
      else
        match (Machine.read_word m (iov + (16 * i)), Machine.read_word m (iov + (16 * i) + 8)) with
        | Some base, Some len when len >= 0 && len <= max_io ->
          (match Machine.read_mem m ~addr:base ~len with
           | Some d -> gather (d :: acc) (i + 1)
           | None -> None)
        | _ -> None
    in
    match gather [] 0 with
    | None -> err Errno.EFAULT
    | Some data -> write_payload t p fd data
  end

let sys_lseek t (p : Process.t) fd off whence =
  match Process.fd p fd with
  | Some (Process.File f) ->
    let base =
      match whence with
      | 0 -> 0
      | 1 -> f.pos
      | 2 -> (match Vfs.file_size t.vfs ~cwd:"/" f.path with Ok n -> n | Error _ -> -1)
      | _ -> -1
    in
    if base < 0 || base + off < 0 then err Errno.EINVAL
    else begin
      f.pos <- base + off;
      Ret f.pos
    end
  | Some _ -> err Errno.EINVAL
  | None -> err Errno.EBADF

let sys_getdirentries t (p : Process.t) fd buf nbytes =
  match Process.fd p fd with
  | Some (Process.Dir d) ->
    if d.consumed then Ret 0
    else begin
      match Vfs.readdir t.vfs ~cwd:"/" d.path with
      | Error e -> Ret (-Errno.code e)
      | Ok names ->
        d.consumed <- true;
        let serialized = String.concat "" (List.map (fun n -> n ^ "\000") names) in
        let out =
          if String.length serialized > nbytes then String.sub serialized 0 nbytes
          else serialized
        in
        if Machine.write_mem p.machine ~addr:buf out then begin
          charge p.machine (Cost_model.copy_cost (String.length out));
          Ret (String.length out)
        end
        else err Errno.EFAULT
    end
  | Some _ -> err Errno.ENOTDIR
  | None -> err Errno.EBADF

let sys_stat t (p : Process.t) path buf =
  match Vfs.stat t.vfs ~cwd:p.cwd path with
  | Error e -> Ret (-Errno.code e)
  | Ok st ->
    let kind = match st.Vfs.st_kind with `File -> 0 | `Dir -> 1 | `Symlink -> 2 in
    if Machine.write_word p.machine buf st.Vfs.st_size && Machine.write_word p.machine (buf + 8) kind
    then Ret 0
    else err Errno.EFAULT

let sys_fstat t (p : Process.t) fd buf =
  let put size kind =
    if Machine.write_word p.machine buf size && Machine.write_word p.machine (buf + 8) kind then
      Ret 0
    else err Errno.EFAULT
  in
  match Process.fd p fd with
  | None -> err Errno.EBADF
  | Some (Process.File f) ->
    (match Vfs.file_size t.vfs ~cwd:"/" f.path with
     | Ok n -> put n 0
     | Error e -> Ret (-Errno.code e))
  | Some (Process.Dir _) -> put 0 1
  | Some (Process.Console_in | Process.Console_out | Process.Console_err) -> put 0 3
  | Some (Process.Sock _) -> put 0 4

let sys_execve t (p : Process.t) path =
  let caller = p.program in
  match Vfs.normalize t.vfs ~cwd:p.cwd path with
  | Error e -> Ret (-Errno.code e)
  | Ok canon ->
    (match Vfs.read_file t.vfs ~cwd:"/" canon with
     | Error e -> Ret (-Errno.code e)
     | Ok contents ->
       (match Obj_file.parse contents with
        | Error _ -> err Errno.EINVAL
        | Ok img ->
          let m = p.machine in
          charge m 50_000;
          Bytes.fill m.mem 0 (Bytes.length m.mem) '\000';
          List.iter
            (fun (s : Obj_file.section) ->
              match s.sec_kind with
              | Obj_file.Bss -> ()
              | Obj_file.Text | Obj_file.Rodata | Obj_file.Data ->
                ignore (Machine.write_mem m ~addr:s.sec_addr s.sec_payload))
            img.Obj_file.sections;
          Array.fill m.regs 0 Isa.num_regs 0;
          m.regs.(Isa.sp) <- Machine.stack_top m;
          m.pc <- img.Obj_file.entry;
          Process.reset_for_exec p ~program:canon ~heap_start:(Loader.initial_brk img);
          (* the old image's shadow call stack is gone with its memory; leave
             a single <kernel:execve> frame for the dispatcher's trailing
             [Profile.leave] to pop, landing the new image at the root *)
          (match m.profile with
           | Some prof ->
             Asc_obs.Profile.reset_stack prof;
             Asc_obs.Profile.enter prof (Asc_obs.Profile.Label "<kernel:execve>")
           | None -> ());
          audit_push t (Execve { pid = p.pid; program = caller; path = canon });
          lifecycle_event t (Proc_exec { pid = p.pid });
          Ret 0))

let path_arg (p : Process.t) addr k =
  match cstring p.machine addr with
  | None -> err Errno.EFAULT
  | Some s -> k s

(* Dispatch one semantic operation. *)
let exec_sem t (p : Process.t) sem (args : int array) =
  let m = p.machine in
  match (sem : Syscall.sem) with
  | Syscall.Exit -> Exited args.(0)
  | Syscall.Open -> path_arg p args.(0) (fun path -> sys_open t p path args.(1))
  | Syscall.Close ->
    if Process.close_fd p args.(0) then Ret 0 else err Errno.EBADF
  | Syscall.Read -> sys_read t p args.(0) args.(1) args.(2)
  | Syscall.Write -> sys_write t p args.(0) args.(1) args.(2)
  | Syscall.Lseek -> sys_lseek t p args.(0) args.(1) args.(2)
  | Syscall.Brk ->
    let addr = args.(0) in
    if addr = 0 then Ret p.brk_addr
    else if addr >= p.heap_start && addr < p.mmap_next then begin
      p.brk_addr <- addr;
      Ret addr
    end
    else err Errno.ENOMEM
  | Syscall.Mmap ->
    let len = args.(1) in
    if len <= 0 then err Errno.EINVAL
    else begin
      let aligned = (len + 4095) / 4096 * 4096 in
      let addr = p.mmap_next in
      let limit = Machine.stack_top p.machine - 65536 in
      if addr + aligned > limit then err Errno.ENOMEM
      else begin
        p.mmap_next <- addr + aligned;
        (* file-backed mapping: copy contents when fd argument names a file *)
        (match Process.fd p args.(4) with
         | Some (Process.File f) ->
           (match Vfs.read_file t.vfs ~cwd:"/" f.path with
            | Ok data ->
              let n = min (String.length data) len in
              ignore (Machine.write_mem m ~addr (String.sub data 0 n))
            | Error _ -> ())
         | Some _ | None -> ());
        Ret addr
      end
    end
  | Syscall.Munmap -> Ret 0
  | Syscall.Madvise -> Ret 0
  | Syscall.Getpid -> Ret p.pid
  | Syscall.Getppid -> Ret 1
  | Syscall.Getuid | Syscall.Geteuid -> Ret 1000
  | Syscall.Getgid -> Ret 100
  | Syscall.Issetugid -> Ret 0
  | Syscall.Gettimeofday ->
    let usec_total = m.cycles / 1000 in
    if Machine.write_word m args.(0) (usec_total / 1_000_000)
       && Machine.write_word m (args.(0) + 8) (usec_total mod 1_000_000)
    then Ret 0
    else err Errno.EFAULT
  | Syscall.Time -> Ret (m.cycles / 1_000_000_000)
  | Syscall.Nanosleep ->
    charge m 10_000;
    Ret 0
  | Syscall.Kill -> Ret 0
  | Syscall.Sigaction -> Ret 0
  | Syscall.Uname ->
    let s = Personality.os_name t.pers ^ "\000" in
    if Machine.write_mem m ~addr:args.(0) s then Ret 0 else err Errno.EFAULT
  | Syscall.Sysconf -> Ret 4096
  | Syscall.Sysctl -> Ret 0
  | Syscall.Fstatfs ->
    if Machine.write_word m args.(1) 4096 && Machine.write_word m (args.(1) + 8) 0 then Ret 0
    else err Errno.EFAULT
  | Syscall.Mkdir -> path_arg p args.(0) (fun s -> Ret (lift_unit (Vfs.mkdir t.vfs ~cwd:p.cwd s)))
  | Syscall.Rmdir -> path_arg p args.(0) (fun s -> Ret (lift_unit (Vfs.rmdir t.vfs ~cwd:p.cwd s)))
  | Syscall.Unlink -> path_arg p args.(0) (fun s -> Ret (lift_unit (Vfs.unlink t.vfs ~cwd:p.cwd s)))
  | Syscall.Readlink ->
    path_arg p args.(0) (fun s ->
        match Vfs.readlink t.vfs ~cwd:p.cwd s with
        | Error e -> Ret (-Errno.code e)
        | Ok target ->
          let out = if String.length target > args.(2) then String.sub target 0 args.(2) else target in
          if Machine.write_mem m ~addr:args.(1) out then Ret (String.length out)
          else err Errno.EFAULT)
  | Syscall.Symlink ->
    path_arg p args.(0) (fun target ->
        path_arg p args.(1) (fun linkpath ->
            Ret (lift_unit (Vfs.symlink t.vfs ~cwd:p.cwd ~target ~linkpath))))
  | Syscall.Rename ->
    path_arg p args.(0) (fun src ->
        path_arg p args.(1) (fun dst -> Ret (lift_unit (Vfs.rename t.vfs ~cwd:p.cwd ~src ~dst))))
  | Syscall.Stat -> path_arg p args.(0) (fun s -> sys_stat t p s args.(1))
  | Syscall.Fstat -> sys_fstat t p args.(0) args.(1)
  | Syscall.Access ->
    path_arg p args.(0) (fun s ->
        if Vfs.exists t.vfs ~cwd:p.cwd s then Ret 0 else err Errno.ENOENT)
  | Syscall.Chmod ->
    path_arg p args.(0) (fun s ->
        if Vfs.exists t.vfs ~cwd:p.cwd s then Ret 0 else err Errno.ENOENT)
  | Syscall.Chdir ->
    path_arg p args.(0) (fun s ->
        match Vfs.normalize t.vfs ~cwd:p.cwd s with
        | Error e -> Ret (-Errno.code e)
        | Ok canon ->
          if Vfs.is_dir t.vfs ~cwd:"/" canon then begin
            p.cwd <- canon;
            Ret 0
          end
          else err Errno.ENOTDIR)
  | Syscall.Getcwd ->
    let s = p.cwd ^ "\000" in
    if String.length s > args.(1) then err Errno.EINVAL
    else if Machine.write_mem m ~addr:args.(0) s then Ret (String.length s)
    else err Errno.EFAULT
  | Syscall.Dup ->
    (match Process.fd p args.(0) with
     | Some k -> Ret (Process.fresh_fd p k)
     | None -> err Errno.EBADF)
  | Syscall.Dup2 ->
    (match Process.fd p args.(0) with
     | Some k ->
       Hashtbl.replace p.fds args.(1) k;
       Ret args.(1)
     | None -> err Errno.EBADF)
  | Syscall.Fcntl ->
    (match Process.fd p args.(0) with Some _ -> Ret 0 | None -> err Errno.EBADF)
  | Syscall.Ioctl ->
    (match Process.fd p args.(0) with
     | Some (Process.Console_in | Process.Console_out | Process.Console_err) -> Ret 0
     | Some _ -> err Errno.ENOTTY
     | None -> err Errno.EBADF)
  | Syscall.Getdirentries -> sys_getdirentries t p args.(0) args.(1) args.(2)
  | Syscall.Socket -> Ret (Process.fresh_fd p (Process.Sock { sent = 0 }))
  | Syscall.Connect | Syscall.Bind ->
    (match Process.fd p args.(0) with
     | Some (Process.Sock _) -> Ret 0
     | Some _ -> err Errno.EINVAL
     | None -> err Errno.EBADF)
  | Syscall.Sendto -> sys_write t p args.(0) args.(1) args.(2)
  | Syscall.Recvfrom -> Ret 0
  | Syscall.Writev -> sys_writev t p args.(0) args.(1) args.(2)
  | Syscall.Execve -> path_arg p args.(0) (fun s -> sys_execve t p s)
  | Syscall.Select -> Ret 0
  | Syscall.Indirect -> err Errno.EINVAL (* resolved by the dispatcher *)

let sem_name t number sem =
  match sem with
  | Some s -> Syscall.name s
  | None ->
    (match Personality.sem_of t.pers number with
     | Some s -> Syscall.name s
     | None -> Printf.sprintf "syscall#%d" number)

(* ----- forensic snapshot (captured at deny time, before teardown) ----- *)

let snapshot_history = 8

let hex_of s =
  String.concat ""
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let ring_tail n ring =
  let l = Asc_obs.Ring.to_list ring in
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let capture_snapshot t (p : Process.t) =
  let m = p.machine in
  (* the policy-state pointer of the trapping call, when the site follows
     the authenticated calling convention; garbage registers simply yield
     unreadable (None) state, which is itself forensic signal *)
  let lbp = m.Machine.regs.(10) in
  { Violation.sn_regs = Array.sub m.Machine.regs 0 Violation.snapshot_regs;
    sn_pc = m.Machine.pc;
    sn_cycles = m.Machine.cycles;
    sn_instrs = m.Machine.instrs;
    sn_counter = p.Process.counter;
    sn_last_block = Machine.read_word m lbp;
    sn_lb_mac = Option.map hex_of (Machine.read_mem m ~addr:(lbp + 8) ~len:16);
    sn_recent =
      List.map
        (fun e ->
          { Violation.c_name = sem_name t e.t_number e.t_sem;
            c_number = e.t_number;
            c_site = e.t_site;
            c_result = e.t_result })
        (ring_tail snapshot_history t.trace);
    sn_shadow_stack =
      (match m.Machine.profile with
       | Some prof ->
         Asc_obs.Profile.current_stack
           ~symbolize:(function
             | Asc_obs.Profile.Pc a -> Printf.sprintf "0x%x" a
             | Asc_obs.Profile.Label l -> l)
           prof
       | None -> []) }

let run t (p : Process.t) ~max_cycles =
  let on_sys (m : Machine.t) =
    let site = m.pc - Isa.instr_size in
    let number = m.regs.(0) in
    let args = Array.init 6 (fun i -> m.regs.(i + 1)) in
    let ts0 = m.cycles in
    (* kernel-side work (trap, checks, dispatch) profiles under a synthetic
       per-call-site frame, e.g. [write@site_0x1a0] *)
    (match m.profile with
     | Some prof ->
       Asc_obs.Profile.enter prof
         (Asc_obs.Profile.Label
            (Printf.sprintf "%s@site_0x%x" (sem_name t number None) site))
     | None -> ());
    Asc_obs.Metrics.inc t.ctr_syscalls;
    charge m (Cost_model.trap_entry + Cost_model.syscall_dispatch);
    let verdict =
      match t.monitor with
      | None -> Allow
      | Some mon -> mon.pre_syscall p ~site ~number
    in
    let deny_span ~reason ~step =
      if t.tracing then
        Asc_obs.Trace.complete t.spans ~cat:"syscall" ~track:p.pid
          ~args:
            ([ ("site", Asc_obs.Json.Int site);
               ("number", Asc_obs.Json.Int number);
               ("verdict", Asc_obs.Json.Str "deny");
               ("reason", Asc_obs.Json.Str reason) ]
            @ match step with None -> [] | Some s -> [ ("step", Asc_obs.Json.Str s) ])
          ~name:(sem_name t number None) ~ts:ts0 ~dur:(m.cycles - ts0) ()
    in
    let action =
      match verdict with
    | Deny reason ->
      Asc_obs.Metrics.inc t.ctr_denied;
      audit_push t (Denied { pid = p.pid; program = p.program; site; number; reason });
      deny_span ~reason ~step:None;
      Machine.Sys_kill reason
    | Deny_violation v ->
      Asc_obs.Metrics.inc t.ctr_denied;
      (* the kernel, not the monitor, is authoritative for where the trap
         came from and what was asked *)
      let v =
        { v with
          Violation.v_site = site;
          v_number = number;
          v_sem =
            (match v.Violation.v_sem with
             | Some _ as s -> s
             | None -> Option.map Syscall.name (Personality.sem_of t.pers number)) }
      in
      audit_push t
        (Violation
           { pid = p.pid;
             program = p.program;
             violation = v;
             snapshot = capture_snapshot t p });
      deny_span ~reason:v.Violation.v_reason
        ~step:(Some (Violation.step_name v.Violation.v_step));
      Machine.Sys_kill v.Violation.v_reason
    | Allow ->
      Asc_obs.Metrics.inc t.ctr_allowed;
      (* resolve semantics, following the OpenBSD-style indirect call *)
      let sem, eff_args =
        match Personality.sem_of t.pers number with
        | Some Syscall.Indirect ->
          (match Personality.indirect_target t.pers args.(0) with
           | Some s -> (Some s, Array.init 6 (fun i -> if i < 5 then args.(i + 1) else 0))
           | None -> (None, args))
        | other -> (other, args)
      in
      (match sem with Some s -> Asc_obs.Metrics.inc (sem_counter t s) | None -> ());
      let outcome =
        match sem with
        | None -> Ret (-Errno.code Errno.ENOSYS)
        | Some s -> exec_sem t p s eff_args
      in
      let result = match outcome with Ret v -> v | Exited status -> status in
      Asc_obs.Metrics.observe t.hist_syscall_cycles (m.cycles - ts0);
      if t.tracing then begin
        Asc_obs.Ring.push t.trace
          { t_sem = sem; t_number = number; t_site = site; t_args = args; t_result = result };
        Asc_obs.Trace.complete t.spans ~cat:"syscall" ~track:p.pid
          ~args:
            [ ("site", Asc_obs.Json.Int site);
              ("number", Asc_obs.Json.Int number);
              ("result", Asc_obs.Json.Int result) ]
          ~name:(sem_name t number sem) ~ts:ts0 ~dur:(m.cycles - ts0) ()
      end;
      (match t.monitor with
       | Some mon -> mon.post_syscall p ~site ~sem ~result
       | None -> ());
      (match outcome with
       | Exited status ->
         m.stopped <- Some (Machine.Halted status);
         Machine.Sys_continue
       | Ret v ->
         m.regs.(0) <- v;
         Machine.Sys_continue)
    in
    (match m.profile with
     | Some prof -> Asc_obs.Profile.leave prof
     | None -> ());
    action
  in
  let m = p.machine in
  let start_instrs = m.instrs and start_cycles = m.cycles in
  let start_minor = Asc_obs.Profile.minor_words () in
  let stop = Machine.run m ~on_sys ~max_cycles in
  (* per-kernel mirrors of the machine totals: registries created per
     kernel (the default) never see another run's instructions *)
  Asc_obs.Metrics.add t.ctr_vm_instrs (m.instrs - start_instrs);
  Asc_obs.Metrics.add t.ctr_vm_cycles (m.cycles - start_cycles);
  Asc_obs.Metrics.add t.ctr_host_minor_words (Asc_obs.Profile.minor_words () - start_minor);
  (* terminal stops tear the process down; a cycle-limit stop may resume *)
  (match stop with
   | Machine.Halted _ | Machine.Killed _ | Machine.Faulted _ ->
     lifecycle_event t (Proc_exit { pid = p.pid });
     (* fold the pid's live shard into the retired aggregate: counts stay
        visible in fleet aggregation, and a reused pid starts clean *)
     Asc_obs.Telemetry.retire_pid t.telemetry ~pid:p.pid
   | Machine.Cycle_limit -> ());
  stop

let trace t = Asc_obs.Ring.to_list t.trace

let clear_trace t =
  Asc_obs.Ring.clear t.trace;
  Asc_obs.Trace.clear t.spans

let audit_log t = Asc_obs.Ring.to_list t.audit
let clear_audit t = Asc_obs.Ring.clear t.audit

(* Fleet-health alert transitions enter the audit stream through the same
   funnel as denies and violations, so an attached authlog chains them
   tamper-evidently and asc_audit can report them alongside. *)
let record_alert t ~pid ~program ~rule ~event ~ts ~value ~threshold =
  audit_push t (Alert { pid; program; rule; event; ts; value; threshold })
let syscall_count t = Asc_obs.Metrics.counter_value t.ctr_syscalls
let denied_count t = Asc_obs.Metrics.counter_value t.ctr_denied
let stdout_of (p : Process.t) = Buffer.contents p.stdout
let stderr_of (p : Process.t) = Buffer.contents p.stderr
let _ = lift
