type step =
  | Call_mac
  | String_mac
  | Control_flow
  | Unauthenticated
  | Pattern
  | Normalization
  | Ext

let all_steps =
  [ Call_mac; String_mac; Control_flow; Unauthenticated; Pattern; Normalization; Ext ]

let step_name = function
  | Call_mac -> "call_mac"
  | String_mac -> "string_mac"
  | Control_flow -> "control_flow"
  | Unauthenticated -> "unauthenticated"
  | Pattern -> "pattern"
  | Normalization -> "normalization"
  | Ext -> "ext"

let step_of_name s = List.find_opt (fun st -> step_name st = s) all_steps

let attack_class = function
  | Unauthenticated -> "shellcode"
  | Call_mac | Control_flow -> "mimicry"
  | String_mac | Pattern | Ext -> "non-control-data"
  | Normalization -> "symlink-race"

type t = {
  v_step : step;
  v_site : int;
  v_number : int;
  v_sem : string option;
  v_reason : string;
  v_expected_mac : string option;
  v_got_mac : string option;
}

type call = {
  c_name : string;
  c_number : int;
  c_site : int;
  c_result : int;
}

type snapshot = {
  sn_regs : int array;
  sn_pc : int;
  sn_cycles : int;
  sn_instrs : int;
  sn_counter : int;
  sn_last_block : int option;
  sn_lb_mac : string option;
  sn_recent : call list;
  sn_shadow_stack : string list;
}

let snapshot_regs = 12

let to_string v =
  Printf.sprintf "%s at site 0x%x number %d%s: %s" (step_name v.v_step) v.v_site v.v_number
    (match v.v_sem with Some s -> " (" ^ s ^ ")" | None -> "")
    v.v_reason

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ----- JSON ----- *)

open Asc_obs.Json

let opt_str = function Some s -> Str s | None -> Null
let opt_int = function Some i -> Int i | None -> Null

let to_json v =
  Obj
    [ ("step", Str (step_name v.v_step));
      ("site", Int v.v_site);
      ("number", Int v.v_number);
      ("sem", opt_str v.v_sem);
      ("reason", Str v.v_reason);
      ("expected_mac", opt_str v.v_expected_mac);
      ("got_mac", opt_str v.v_got_mac) ]

(* total accessors: a [required]-style combinator would hide which field was
   missing, and the error messages matter to the asc_audit verifier *)
let get_int j k =
  match Option.bind (member k j) to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "violation: missing int field %S" k)

let get_str j k =
  match Option.bind (member k j) to_str with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "violation: missing string field %S" k)

let get_opt_str j k =
  match member k j with Some (Str s) -> Some s | _ -> None

let get_opt_int j k =
  match member k j with Some (Int i) -> Some i | _ -> None

let of_json j =
  let ( let* ) = Result.bind in
  let* step_s = get_str j "step" in
  let* step =
    match step_of_name step_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "violation: unknown step %S" step_s)
  in
  let* site = get_int j "site" in
  let* number = get_int j "number" in
  let* reason = get_str j "reason" in
  Ok
    { v_step = step;
      v_site = site;
      v_number = number;
      v_sem = get_opt_str j "sem";
      v_reason = reason;
      v_expected_mac = get_opt_str j "expected_mac";
      v_got_mac = get_opt_str j "got_mac" }

let call_to_json c =
  Obj
    [ ("name", Str c.c_name);
      ("number", Int c.c_number);
      ("site", Int c.c_site);
      ("result", Int c.c_result) ]

let call_of_json j =
  let ( let* ) = Result.bind in
  let* name = get_str j "name" in
  let* number = get_int j "number" in
  let* site = get_int j "site" in
  let* result = get_int j "result" in
  Ok { c_name = name; c_number = number; c_site = site; c_result = result }

let snapshot_to_json s =
  Obj
    [ ("regs", List (Array.to_list (Array.map (fun r -> Int r) s.sn_regs)));
      ("pc", Int s.sn_pc);
      ("cycles", Int s.sn_cycles);
      ("instrs", Int s.sn_instrs);
      ("counter", Int s.sn_counter);
      ("last_block", opt_int s.sn_last_block);
      ("lb_mac", opt_str s.sn_lb_mac);
      ("recent", List (List.map call_to_json s.sn_recent));
      ("shadow_stack", List (List.map (fun f -> Str f) s.sn_shadow_stack)) ]

let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let* regs =
    match Option.bind (member "regs" j) to_list with
    | Some l ->
      let rec ints acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | Int i :: rest -> ints (i :: acc) rest
        | _ -> Error "snapshot: non-integer register"
      in
      ints [] l
    | None -> Error "snapshot: missing regs"
  in
  let* pc = get_int j "pc" in
  let* cycles = get_int j "cycles" in
  let* instrs = get_int j "instrs" in
  let* counter = get_int j "counter" in
  let* recent =
    match Option.bind (member "recent" j) to_list with
    | Some l ->
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          let* c = call_of_json c in
          Ok (c :: acc))
        (Ok []) l
      |> Result.map List.rev
    | None -> Error "snapshot: missing recent"
  in
  let* stack =
    match Option.bind (member "shadow_stack" j) to_list with
    | Some l ->
      let rec strs acc = function
        | [] -> Ok (List.rev acc)
        | Str s :: rest -> strs (s :: acc) rest
        | _ -> Error "snapshot: non-string shadow frame"
      in
      strs [] l
    | None -> Error "snapshot: missing shadow_stack"
  in
  Ok
    { sn_regs = regs;
      sn_pc = pc;
      sn_cycles = cycles;
      sn_instrs = instrs;
      sn_counter = counter;
      sn_last_block = get_opt_int j "last_block";
      sn_lb_mac = get_opt_str j "lb_mac";
      sn_recent = recent;
      sn_shadow_stack = stack }
