(* Forensic toolbox over the kernel's tamper-evident audit chain: verify a
   JSONL export, render violation flight-recorder reports, and map forensic
   signatures back to the §4.1 attack classes. *)

open Cmdliner
open Oskernel
module Json = Asc_obs.Json
module Authlog = Asc_obs.Authlog

let ( let* ) = Result.bind

(* ----- reading an exported chain back into audit entries ----- *)

(* Each "record" line of an Authlog export carries one audit entry under
   "entry". Lines that are not records (header, trailer) or whose entries
   are not kernel audit entries are skipped. *)
let entries_of_export contents =
  let lines = String.split_on_char '\n' contents in
  List.filteri (fun _ l -> String.trim l <> "") lines
  |> List.filter_map (fun line ->
         match Json.parse line with
         | Error _ -> None
         | Ok j ->
           (match Option.bind (Json.member "kind" j) Json.to_str with
            | Some "record" ->
              Option.bind (Json.member "entry" j) (fun e ->
                  match Kernel.audit_of_json e with
                  | Ok entry ->
                    let seq =
                      Option.value ~default:0
                        (Option.bind (Json.member "seq" j) Json.to_int)
                    in
                    Some (seq, entry)
                  | Error _ -> None)
            | _ -> None))

let violations_of_export contents =
  List.filter_map
    (fun (seq, entry) ->
      match entry with
      | Kernel.Violation { pid; program; violation; snapshot } ->
        Some (seq, pid, program, violation, snapshot)
      | _ -> None)
    (entries_of_export contents)

let alerts_of_export contents =
  List.filter_map
    (fun (seq, entry) ->
      match entry with Kernel.Alert _ -> Some (seq, entry) | _ -> None)
    (entries_of_export contents)

(* ----- verify ----- *)

let verify log key_hex expect_head =
  let result =
    let* key = Common.key_of_hex key_hex in
    let* contents = try Ok (Common.read_file log) with Sys_error e -> Error e in
    match Authlog.verify_string ?expect_head ~key contents with
    | Ok n ->
      Format.printf "%s: OK — %d record%s verified, chain intact@." log n
        (if n = 1 then "" else "s");
      Ok 0
    | Error e ->
      Format.printf "%s: TAMPERED — %a@." log Authlog.pp_verify_error e;
      Ok 3
  in
  match result with
  | Ok code -> code
  | Error e ->
    Format.eprintf "asc-audit: %s@." e;
    1

(* ----- report ----- *)

let pp_opt_hex ppf = function
  | Some h -> Format.fprintf ppf "%s" h
  | None -> Format.fprintf ppf "-"

let disasm_window img site =
  let text = Svm.Obj_file.text_section img in
  let payload = Bytes.of_string text.Svm.Obj_file.sec_payload in
  let base = text.Svm.Obj_file.sec_addr in
  let slots = Bytes.length payload / Svm.Isa.instr_size in
  let slot = (site - base) / Svm.Isa.instr_size in
  if site < base || slot >= slots then
    Format.printf "  site 0x%x is outside the text section [0x%x, 0x%x)@." site base
      (base + Bytes.length payload)
  else begin
    let lo = max 0 (slot - 6) and hi = min (slots - 1) (slot + 2) in
    for i = lo to hi do
      let addr = base + (i * Svm.Isa.instr_size) in
      let marker = if i = slot then ">" else " " in
      match Svm.Isa.decode payload ~pos:(i * Svm.Isa.instr_size) with
      | Some instr -> Format.printf "  %s 0x%06x  %a@." marker addr Svm.Isa.pp instr
      | None -> Format.printf "  %s 0x%06x  (undecodable)@." marker addr
    done
  end

let print_report ?img (seq, pid, program, (v : Violation.t), (sn : Violation.snapshot)) =
  Format.printf "=== violation (record %d): pid %d, program %s ===@." seq pid program;
  Format.printf "failing step:   %s (attack class: %s)@."
    (Violation.step_name v.Violation.v_step)
    (Violation.attack_class v.Violation.v_step);
  let sem = Option.value ~default:(Printf.sprintf "syscall#%d" v.v_number) v.v_sem in
  Format.printf "call:           %s (number %d) at site 0x%x@." sem v.v_number v.v_site;
  Format.printf "reason:         %s@." v.v_reason;
  (match (v.v_expected_mac, v.v_got_mac) with
   | None, None -> ()
   | e, g ->
     Format.printf "MAC diff:       expected %a@." pp_opt_hex e;
     Format.printf "                supplied %a@." pp_opt_hex g);
  Format.printf "machine:        pc=0x%x cycles=%d instructions=%d@." sn.sn_pc sn.sn_cycles
    sn.sn_instrs;
  Format.printf "registers:     ";
  Array.iteri (fun i r -> Format.printf " r%d=0x%x" i r) sn.sn_regs;
  Format.printf "@.";
  Format.printf "policy state:   kernel counter=%d lastBlock=%s lbMAC=%s@." sn.sn_counter
    (match sn.sn_last_block with Some b -> string_of_int b | None -> "(unreadable)")
    (match sn.sn_lb_mac with Some h -> h | None -> "(unreadable)");
  (match sn.sn_shadow_stack with
   | [] -> ()
   | stack -> Format.printf "shadow stack:   %s@." (String.concat " > " stack));
  (match sn.sn_recent with
   | [] -> Format.printf "recent syscalls: (none recorded)@."
   | recent ->
     Format.printf "recent syscalls (oldest first):@.";
     List.iter
       (fun (c : Violation.call) ->
         Format.printf "  %s(#%d) @@ 0x%x = %d@." c.c_name c.c_number c.c_site c.c_result)
       recent);
  (match img with
   | None -> ()
   | Some img ->
     Format.printf "disassembly around site:@.";
     disasm_window img v.v_site);
  Format.printf "@."

let report log program os =
  let result =
    let* personality = Common.personality_of_string os in
    let* contents = try Ok (Common.read_file log) with Sys_error e -> Error e in
    let* img =
      match program with
      | None -> Ok None
      | Some p ->
        let* img, _ = Common.load_program ~personality p in
        Ok (Some img)
    in
    let vs = violations_of_export contents in
    let alerts = alerts_of_export contents in
    (match vs with
     | [] -> Format.printf "%s: no violation records@." log
     | vs -> List.iter (fun v -> print_report ?img v) vs);
    (* fleet-health alerts travel the same chain as violations (asc-top
       --rules --audit-out); report them side by side so an SLO incident
       and the violations around it read as one timeline *)
    (match alerts with
     | [] -> ()
     | alerts ->
       Format.printf "=== health alerts (%d record%s) ===@." (List.length alerts)
         (if List.length alerts = 1 then "" else "s");
       List.iter
         (fun (seq, entry) ->
           Format.printf "record %d: %s@." seq (Kernel.audit_to_string entry))
         alerts;
       Format.printf "@.");
    Ok 0
  in
  match result with
  | Ok code -> code
  | Error e ->
    Format.eprintf "asc-audit: %s@." e;
    1

(* ----- classify ----- *)

let classify log =
  let result =
    let* contents = try Ok (Common.read_file log) with Sys_error e -> Error e in
    match violations_of_export contents with
    | [] ->
      Format.printf "%s: no violation records@." log;
      Ok 2
    | vs ->
      List.iter
        (fun (seq, pid, program, (v : Violation.t), _) ->
          Format.printf "record %d: %s — step=%s pid=%d program=%s site=0x%x (%s)@." seq
            (Violation.attack_class v.Violation.v_step)
            (Violation.step_name v.Violation.v_step)
            pid program v.v_site v.v_reason)
        vs;
      Ok 0
  in
  match result with
  | Ok code -> code
  | Error e ->
    Format.eprintf "asc-audit: %s@." e;
    1

(* ----- selftest: the §4.1 attacks against the whole forensic pipeline ----- *)

(* Flip one bit in the middle of an export (inside some record's payload). *)
let flip_bit s =
  let b = Bytes.of_string s in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  Bytes.to_string b

(* Drop the trailer and the last record line: a truncation that keeps every
   remaining line intact. *)
let truncate_export s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "") in
  let n = List.length lines in
  let kept = List.filteri (fun i _ -> i < n - 2) lines in
  String.concat "\n" kept ^ "\n"

let selftest () =
  let failures = ref 0 in
  let check what ok = if not ok then begin incr failures; Format.printf "FAIL: %s@." what end in
  let runs = try Ok (Attacks.forensic_runs ()) with Failure e -> Error e in
  match runs with
  | Error e ->
    Format.eprintf "asc-audit selftest: %s@." e;
    1
  | Ok runs ->
    List.iter
      (fun (name, kernel, outcome) ->
        (match outcome with
         | Attacks.Blocked _ -> ()
         | o ->
           check (Format.asprintf "%s: expected Blocked, got %a" name Attacks.pp_outcome o)
             false);
        match Kernel.authlog kernel with
        | None -> check (name ^ ": kernel has no authlog attached") false
        | Some log ->
          let exported = Authlog.export_string log in
          (* the untouched chain must verify, with the out-of-band head *)
          let expect_head = Authlog.hex (Authlog.head_mac log) in
          (match Authlog.verify_string ~expect_head ~key:Attacks.key exported with
           | Ok _ -> ()
           | Error e ->
             check
               (Format.asprintf "%s: pristine chain failed to verify (%a)" name
                  Authlog.pp_verify_error e)
               false);
          (* a single flipped bit must be detected *)
          (match Authlog.verify_string ~key:Attacks.key (flip_bit exported) with
           | Error _ -> ()
           | Ok _ -> check (name ^ ": bit flip went undetected") false);
          (* so must cutting records off the end *)
          (match Authlog.verify_string ~key:Attacks.key (truncate_export exported) with
           | Error _ -> ()
           | Ok _ -> check (name ^ ": truncation went undetected") false);
          (* classification from the recorded forensics alone *)
          (match violations_of_export exported with
           | [] -> check (name ^ ": no violation record in the chain") false
           | (_, _, _, v, _) :: _ ->
             let cls = Violation.attack_class v.Violation.v_step in
             Format.printf "%-18s -> step=%-15s class=%s@." name
               (Violation.step_name v.Violation.v_step)
               cls;
             check
               (Printf.sprintf "%s: classified as %s" name cls)
               (cls = name)))
      runs;
    if !failures = 0 then begin
      Format.printf "selftest: %d attacks — chains verified, tampering detected, all classified@."
        (List.length runs);
      0
    end
    else 1

(* ----- cmdliner plumbing ----- *)

let log_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LOG"
         ~doc:"JSONL audit-chain export (asc-run --audit-out).")

let key_arg =
  Arg.(value & opt string "000102030405060708090a0b0c0d0e0f"
       & info [ "k"; "key" ] ~docv:"HEX" ~doc:"128-bit chain key (must match the kernel's).")

let expect_head_arg =
  Arg.(value & opt (some string) None & info [ "expect-head" ] ~docv:"HEX"
         ~doc:"Out-of-band head commitment: require the trailer to match this exact chain \
               head (closes the truncate-and-rewrite-trailer edit the file alone cannot \
               expose).")

let program_arg =
  Arg.(value & opt (some string) None & info [ "program" ] ~docv:"PROGRAM"
         ~doc:"The SEF binary (or MiniC source / workload:NAME) the log came from; enables \
               the disassembly window around each violation site.")

let os_arg =
  Arg.(value & opt string "linux" & info [ "os" ] ~docv:"OS" ~doc:"linux or openbsd.")

let verify_cmd =
  let doc = "verify the integrity of an exported audit chain" in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const verify $ log_arg $ key_arg $ expect_head_arg)

let report_cmd =
  let doc = "render the forensic flight-recorder report of each violation" in
  Cmd.v (Cmd.info "report" ~doc) Term.(const report $ log_arg $ program_arg $ os_arg)

let classify_cmd =
  let doc = "map each violation's forensic signature to its §4.1 attack class" in
  Cmd.v (Cmd.info "classify" ~doc) Term.(const classify $ log_arg)

let selftest_cmd =
  let doc =
    "run the §4.1 attacks under enforcement and assert the forensic pipeline end to end: \
     chains verify, tampering (bit flips, truncation) is detected, and every attack is \
     classified correctly from its recorded violation"
  in
  Cmd.v (Cmd.info "selftest" ~doc) Term.(const selftest $ const ())

let cmd =
  let doc = "verify and investigate tamper-evident audit chains" in
  Cmd.group (Cmd.info "asc-audit" ~doc) [ verify_cmd; report_cmd; classify_cmd; selftest_cmd ]

let () = exit (Cmd.eval' cmd)
