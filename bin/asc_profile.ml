(* Cycle-exact profiler: run a program on the simulated kernel with the
   shadow-call-stack profiler attached and export flamegraph-ready data.

   By default the program is installed (authenticated system calls) and run
   under the in-kernel checker, so kernel-side verification work appears in
   the profile as synthetic <kernel:...> frames under each syscall-site
   frame. Every run self-checks that the profiler accounted for exactly the
   cycles the machine retired and that the folded output round-trips. *)

open Cmdliner
open Oskernel
module Profile = Asc_obs.Profile
module Json = Asc_obs.Json

(* addr -> name resolution: the image's symbol table first, then PLTO CFG
   function entries (call targets) for code without symbols. *)
let build_symbolizer (img : Svm.Obj_file.t) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s : Svm.Obj_file.symbol) ->
      if not (Hashtbl.mem tbl s.sym_addr) then Hashtbl.replace tbl s.sym_addr s.sym_name)
    img.symbols;
  (match Plto.Disasm.disassemble img with
   | Error _ -> ()
   | Ok ir ->
     List.iter
       (fun bid ->
         match (Plto.Ir.find_block ir bid).Plto.Ir.orig_addr with
         | Some addr when not (Hashtbl.mem tbl addr) ->
           Hashtbl.replace tbl addr (Printf.sprintf "fn_0x%x" addr)
         | Some _ | None -> ())
       (Plto.Cfg.function_entries ir));
  let entries =
    Hashtbl.fold (fun a n acc -> (a, n) :: acc) tbl []
    |> List.sort compare |> Array.of_list
  in
  fun (f : Profile.frame) ->
    match f with
    | Profile.Label s -> s
    | Profile.Pc a ->
      (match Hashtbl.find_opt tbl a with
       | Some n -> n
       | None ->
         (* nearest entry at or below the address *)
         let lo = ref 0 and hi = ref (Array.length entries - 1) and best = ref None in
         while !lo <= !hi do
           let mid = (!lo + !hi) / 2 in
           let (addr, _) = entries.(mid) in
           if addr <= a then begin
             best := Some entries.(mid);
             lo := mid + 1
           end
           else hi := mid - 1
         done;
         (match !best with
          | Some (addr, name) -> Printf.sprintf "%s+0x%x" name (a - addr)
          | None -> Printf.sprintf "0x%x" a))

let is_site_frame name =
  match String.index_opt name '@' with
  | Some i ->
    String.length name >= i + 6 && String.sub name i 6 = "@site_"
  | None -> false

(* With --alloc the tables are keyed by sampled minor words instead of
   cycles: same frames, same shape, second resource. *)
let self_of ~alloc (r : Profile.row) = if alloc then r.r_alloc else r.r_self
let total_of ~alloc (r : Profile.row) = if alloc then r.r_total_alloc else r.r_total

(* Per-call-site heat: a site frame's children are the checker's
   <kernel:step> frames, so subtree-minus-self is verification cost and
   self is trap + dispatch + syscall work. *)
let site_rows ~alloc rows =
  List.filter (fun (r : Profile.row) -> is_site_frame r.r_name) rows
  |> List.map (fun (r : Profile.row) -> (r, total_of ~alloc r - self_of ~alloc r))
  |> List.sort (fun (a, va) (b, vb) ->
         match compare vb va with
         | 0 -> compare (total_of ~alloc b) (total_of ~alloc a)
         | c -> c)

let render_top ~alloc buf n rows =
  let unit = if alloc then "words" else "cycles" in
  Printf.bprintf buf "%-44s %8s %12s %12s\n" "frame" "calls" ("self " ^ unit)
    ("total " ^ unit);
  List.iteri
    (fun i (r : Profile.row) ->
      if i < n then
        Printf.bprintf buf "%-44s %8d %12d %12d\n" r.r_name r.r_calls (self_of ~alloc r)
          (total_of ~alloc r))
    rows

let render_sites ~alloc buf rows =
  let unit = if alloc then " (words)" else "" in
  Printf.bprintf buf "%-44s %8s %12s %12s %12s\n" ("site" ^ unit) "calls" "verify" "kernel"
    "total";
  List.iter
    (fun ((r : Profile.row), verify) ->
      Printf.bprintf buf "%-44s %8d %12d %12d %12d\n" r.r_name r.r_calls verify
        (self_of ~alloc r) (total_of ~alloc r))
    rows

let stop_json = function
  | Svm.Machine.Halted code -> Json.Obj [ ("kind", Json.Str "halted"); ("code", Json.Int code) ]
  | Svm.Machine.Killed reason ->
    Json.Obj [ ("kind", Json.Str "killed"); ("reason", Json.Str reason) ]
  | Svm.Machine.Faulted (_, pc) ->
    Json.Obj [ ("kind", Json.Str "faulted"); ("pc", Json.Int pc) ]
  | Svm.Machine.Cycle_limit -> Json.Obj [ ("kind", Json.Str "cycle_limit") ]

let run input key_hex os no_enforce stdin_text folded top_n sites alloc json output =
  let ( let* ) = Result.bind in
  let result =
    let* personality = Common.personality_of_string os in
    let* img, w = Common.load_program ~personality input in
    let* key = Common.key_of_hex key_hex in
    let program = Filename.basename input in
    let* run_img =
      if no_enforce then Ok img
      else
        match Asc_core.Installer.install ~key ~personality ~program img with
        | Ok inst -> Ok inst.Asc_core.Installer.image
        | Error e -> Error (Printf.sprintf "install failed: %s" e)
    in
    let kernel = Kernel.create ~personality () in
    (match w with Some w -> w.Workloads.Registry.setup kernel | None -> ());
    if not no_enforce then
      Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
    let stdin =
      match (stdin_text, w) with
      | Some s, _ -> s
      | None, Some w -> w.Workloads.Registry.stdin
      | None, None -> ""
    in
    let* proc =
      try Ok (Kernel.spawn kernel ~stdin ~program run_img)
      with Invalid_argument e -> Error e
    in
    let prof = Profile.create () in
    (* with --alloc, arm minor-words sampling, then read the machine-scope
       base mark immediately after: [track_alloc] and [minor_words] both
       allocate nothing, so the profiler's mark and [alloc0] coincide *)
    Svm.Machine.attach_profile ~alloc proc.Process.machine prof;
    let alloc0 = Profile.minor_words () in
    let stop = Kernel.run kernel proc ~max_cycles:2_000_000_000 in
    (* flush pending words onto the final stack, then close the scope *)
    Profile.sample_alloc prof;
    let alloc1 = Profile.minor_words () in
    let m = proc.Process.machine in
    let symbolize = build_symbolizer run_img in
    (* --- self checks --- *)
    let* () =
      if Profile.total_cycles prof <> m.Svm.Machine.cycles then
        Error
          (Printf.sprintf "profiler accounted %d cycles but the machine retired %d"
             (Profile.total_cycles prof) m.Svm.Machine.cycles)
      else Ok ()
    in
    let stacks = Profile.folded ~symbolize prof in
    let folded_sum = List.fold_left (fun acc (_, c) -> acc + c) 0 stacks in
    let* () =
      if folded_sum <> Profile.total_cycles prof then
        Error
          (Printf.sprintf "folded stacks sum to %d, expected %d" folded_sum
             (Profile.total_cycles prof))
      else Ok ()
    in
    let folded_text = Profile.folded_string ~symbolize prof in
    let* () =
      match Profile.parse_folded folded_text with
      | Ok reparsed when reparsed = stacks -> Ok ()
      | Ok _ -> Error "folded output did not round-trip"
      | Error e -> Error (Printf.sprintf "folded output did not parse: %s" e)
    in
    let* () =
      if no_enforce || Kernel.syscall_count kernel = 0 then Ok ()
      else if
        List.exists
          (fun (stack, _) -> List.mem "<kernel:call_mac>" stack)
          stacks
      then Ok ()
      else Error "enforced run produced no <kernel:call_mac> frames"
    in
    (* --alloc conservation self-check: every charged word landed on
       exactly one frame, and the charges telescope to the machine-scope
       Gc.minor_words delta between arming and the final flush *)
    let* () =
      if not alloc then Ok ()
      else begin
        let charged = Profile.total_alloc_words prof in
        let machine_delta = alloc1 - alloc0 in
        if charged <> machine_delta then
          Error
            (Printf.sprintf
               "profiler charged %d minor words but the machine scope allocated %d" charged
               machine_delta)
        else
          let astacks = Profile.folded_alloc ~symbolize prof in
          let asum = List.fold_left (fun acc (_, w) -> acc + w) 0 astacks in
          if asum <> charged then
            Error (Printf.sprintf "alloc folded stacks sum to %d, expected %d" asum charged)
          else Ok ()
      end
    in
    let rows = Profile.top ~symbolize prof in
    let rows =
      if alloc then
        List.sort
          (fun (a : Profile.row) (b : Profile.row) ->
            match compare b.r_alloc a.r_alloc with
            | 0 -> compare a.r_name b.r_name
            | c -> c)
          rows
      else rows
    in
    let buf = Buffer.create 4096 in
    let default = not (folded || top_n > 0 || sites || json) in
    if folded then
      Buffer.add_string buf
        (if alloc then Profile.folded_alloc_string ~symbolize prof else folded_text);
    if top_n > 0 || default then render_top ~alloc buf (if top_n > 0 then top_n else 20) rows;
    if sites || default then begin
      if default then Buffer.add_char buf '\n';
      render_sites ~alloc buf (site_rows ~alloc rows)
    end;
    if json then begin
      let site_list =
        List.map
          (fun ((r : Profile.row), verify) ->
            Json.Obj
              [ ("site", Json.Str r.r_name);
                ("calls", Json.Int r.r_calls);
                ("verify_cycles", Json.Int verify);
                ("kernel_cycles", Json.Int r.r_self);
                ("total_cycles", Json.Int r.r_total);
                ("verify_words", Json.Int (r.r_total_alloc - r.r_alloc));
                ("kernel_words", Json.Int r.r_alloc);
                ("total_words", Json.Int r.r_total_alloc) ])
          (site_rows ~alloc:false rows)
      in
      Json.to_buffer buf
        (Json.Obj
           [ ("program", Json.Str program);
             ("stop", stop_json stop);
             ("cycles", Json.Int m.Svm.Machine.cycles);
             ("instructions", Json.Int m.Svm.Machine.instrs);
             ("syscalls", Json.Int (Kernel.syscall_count kernel));
             ("profile", Profile.to_json ~symbolize prof);
             ("sites", Json.List site_list) ]);
      Buffer.add_char buf '\n'
    end;
    (match output with
     | Some path -> Common.write_file path (Buffer.contents buf)
     | None -> print_string (Buffer.contents buf));
    if alloc then
      Format.eprintf "[%d cycles, %d instructions, %d syscalls, %d minor words]@."
        m.Svm.Machine.cycles m.Svm.Machine.instrs
        (Kernel.syscall_count kernel)
        (Profile.total_alloc_words prof)
    else
      Format.eprintf "[%d cycles, %d instructions, %d syscalls]@." m.Svm.Machine.cycles
        m.Svm.Machine.instrs
        (Kernel.syscall_count kernel);
    (match stop with
     | Svm.Machine.Halted code -> Format.eprintf "[exit %d]@." code
     | Svm.Machine.Killed reason -> Format.eprintf "[killed: %s]@." reason
     | Svm.Machine.Faulted (_, pc) -> Format.eprintf "[fault at 0x%x]@." pc
     | Svm.Machine.Cycle_limit -> Format.eprintf "[cycle limit]@.");
    Ok 0
  in
  match result with
  | Ok code -> code
  | Error e ->
    Format.eprintf "asc-profile: %s@." e;
    1

let input_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
         ~doc:"SEF binary, MiniC source (.mc), or workload:NAME.")

let key_arg =
  Arg.(value & opt string "000102030405060708090a0b0c0d0e0f"
       & info [ "k"; "key" ] ~docv:"HEX" ~doc:"128-bit MAC key.")

let os_arg =
  Arg.(value & opt string "linux" & info [ "os" ] ~docv:"OS" ~doc:"linux or openbsd.")

let no_enforce_arg =
  Arg.(value & flag & info [ "no-enforce" ]
         ~doc:"Profile the original binary without installing authenticated system \
               calls (no <kernel:...> verification frames).")

let stdin_arg =
  Arg.(value & opt (some string) None & info [ "stdin" ] ~docv:"TEXT"
         ~doc:"Text supplied on the program's standard input.")

let folded_arg =
  Arg.(value & flag & info [ "folded" ]
         ~doc:"Emit folded stacks (flamegraph.pl-compatible): one \
               'frame;frame;frame cycles' line per distinct stack.")

let top_arg =
  Arg.(value & opt int 0 & info [ "top" ] ~docv:"N"
         ~doc:"Emit the top-N frames by self cycles (calls/self/total table).")

let sites_arg =
  Arg.(value & flag & info [ "sites" ]
         ~doc:"Emit per-call-site syscall heat, ranked by verification cycles.")

let alloc_arg =
  Arg.(value & flag & info [ "alloc" ]
         ~doc:"Profile host minor-heap allocation alongside cycles: arm the \
               profiler's Gc.minor_words sampling, key --folded/--top/--sites \
               by words, and self-check that the charged words equal the \
               machine-scope minor-words delta (conservation).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the whole profile as JSON.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write output to FILE instead of standard output.")

let cmd =
  let doc =
    "cycle-exact profile of a program under the simulated kernel (invoke as asc-profile \
     --diff A.json B.json to diff two exported profiles instead)"
  in
  Cmd.v
    (Cmd.info "asc-profile" ~doc)
    Term.(
      const run $ input_arg $ key_arg $ os_arg $ no_enforce_arg $ stdin_arg $ folded_arg
      $ top_arg $ sites_arg $ alloc_arg $ json_arg $ output_arg)

(* --- differential mode -------------------------------------------------

   asc_profile --diff A.json B.json [--noise N] [--top N] [--folded]

   A and B are profile exports (either `asc_profile --json` documents or
   the bare "profile" object inside one). Aligns the folded stacks of
   both resources (cycles and minor words), applies the noise floor, and
   prints the blame table (or folded delta lines with --folded).

   Exit status: 0 when no delta survives the noise floor on either
   resource, 1 when something moved, 2 on unreadable input — so a
   self-diff gates in CI and a regression diff reads as a failure. *)

let run_diff args =
  let noise = ref 0 and top = ref 10 and folded = ref false and files = ref [] in
  let rec parse = function
    | [] -> Ok ()
    | "--noise" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 0 ->
          noise := n;
          parse rest
        | _ -> Error "--noise wants a non-negative integer")
    | "--top" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
          top := n;
          parse rest
        | _ -> Error "--top wants a positive integer")
    | "--folded" :: rest ->
      folded := true;
      parse rest
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  let ( let* ) = Result.bind in
  let load path =
    let* text =
      try Ok (Common.read_file path) with Sys_error e -> Error e
    in
    let* j = Result.map_error (fun e -> path ^ ": " ^ e) (Json.parse text) in
    Result.map_error (fun e -> path ^ ": " ^ e) (Asc_obs.Diffprof.of_json j)
  in
  let result =
    let* () = parse args in
    let* a, b =
      match List.rev !files with
      | [ a; b ] -> Ok (a, b)
      | _ -> Error "--diff wants exactly two profile JSON files"
    in
    let* base = load a in
    let* actual = load b in
    let cycles, words =
      Asc_obs.Diffprof.diff_sides ~noise:!noise ~base ~actual ()
    in
    let print rp =
      if !folded then print_string (Asc_obs.Diffprof.folded_diff rp)
      else print_string (Asc_obs.Diffprof.blame_table ~top:!top rp)
    in
    print cycles;
    print words;
    if Asc_obs.Diffprof.is_empty cycles && Asc_obs.Diffprof.is_empty words then begin
      Printf.printf "diff: no deltas above the noise floor (%d) between %s and %s\n" !noise a b;
      Ok 0
    end
    else Ok 1
  in
  match result with
  | Ok code -> code
  | Error e ->
    Format.eprintf "asc-profile --diff: %s@." e;
    2

let () =
  match Array.to_list Sys.argv with
  | _ :: "--diff" :: rest -> exit (run_diff rest)
  | _ -> exit (Cmd.eval' cmd)
