(* Run a program on the simulated kernel, optionally under authenticated-
   system-call enforcement. *)

open Cmdliner
open Oskernel

(* One machine-readable stats document for the whole run: machine cycles,
   fast-path cache counters, the host GC's work during the run (deltas of
   Gc.quick_stat around Kernel.run) and the kernel telemetry plane's
   aggregate (reason mix, per-syscall quantiles, per-site rollups). *)
let stats_json kernel proc ~vcache ~precomp ~cfpre ~gc0 ~gc1 ~minor0 ~minor1 =
  let module Json = Asc_obs.Json in
  let gc_fields =
    let dw f = Json.Int (int_of_float (f gc1 -. f gc0)) in
    (* minor_words comes from the precise allocation counter, not the
       quick_stat field — the latter is only folded forward at minor
       collections, so a short run would read 0 *)
    [ ( "gc",
        Json.Obj
          [ ("minor_words", Json.Int (minor1 - minor0));
            ("major_words", dw (fun (s : Gc.stat) -> s.Gc.major_words));
            ("promoted_words", dw (fun (s : Gc.stat) -> s.Gc.promoted_words));
            ( "minor_collections",
              Json.Int (gc1.Gc.minor_collections - gc0.Gc.minor_collections) ) ] ) ]
  in
  let tel = Kernel.telemetry kernel in
  let cache_fields =
    (match vcache with
     | None -> []
     | Some vc ->
       [ ( "vcache",
           Json.Obj
             [ ("hits", Json.Int (Asc_core.Vcache.hits vc));
               ("misses", Json.Int (Asc_core.Vcache.misses vc));
               ("evictions", Json.Int (Asc_core.Vcache.evictions vc));
               ("invalidations", Json.Int (Asc_core.Vcache.invalidations vc));
               ("cycles_saved", Json.Int (Asc_core.Vcache.cycles_saved vc)) ] ) ])
    @
    (match precomp with
     | None -> []
     | Some pc ->
       [ ( "precomp",
           Json.Obj
             [ ("hits", Json.Int (Asc_core.Precomp.hits pc));
               ("resumes", Json.Int (Asc_core.Precomp.resumes pc));
               ("fallbacks", Json.Int (Asc_core.Precomp.fallbacks pc));
               ("compiles", Json.Int (Asc_core.Precomp.compiles pc));
               ("invalidations", Json.Int (Asc_core.Precomp.invalidations pc));
               ("cycles_saved", Json.Int (Asc_core.Precomp.cycles_saved pc)) ] ) ])
    @
    (match cfpre with
     | None -> []
     | Some cf ->
       [ ( "cfpre",
           Json.Obj
             [ ("hits", Json.Int (Asc_core.Cfpre.hits cf));
               ("misses", Json.Int (Asc_core.Cfpre.misses cf));
               ("fallbacks", Json.Int (Asc_core.Cfpre.fallbacks cf));
               ("compiles", Json.Int (Asc_core.Cfpre.compiles cf));
               ("invalidations", Json.Int (Asc_core.Cfpre.invalidations cf));
               ("cycles_saved", Json.Int (Asc_core.Cfpre.cycles_saved cf)) ] ) ])
  in
  Json.Obj
    ([ ("tool", Json.Str "asc-run");
       ("cycles", Json.Int proc.Process.machine.Svm.Machine.cycles);
       ("syscalls", Json.Int (Kernel.syscall_count kernel));
       ("denied", Json.Int (Kernel.denied_count kernel)) ]
     @ cache_fields @ gc_fields
     @ [ ("telemetry", Asc_obs.Telemetry.stats_to_json tel (Asc_obs.Telemetry.aggregate tel)) ])

let run input key_hex os enforce stdin_text normalize files libs audit_out stats_out
    verbose_stats no_vcache vcache_size no_precomp no_cfpre =
  let ( let* ) = Result.bind in
  let result =
    let* personality = Common.personality_of_string os in
    let* img, w = Common.load_program ~personality input in
    let kernel = Kernel.create ~personality () in
    (match w with Some w -> w.Workloads.Registry.setup kernel | None -> ());
    (* --file path=contents entries populate the VFS *)
    let* () =
      List.fold_left
        (fun acc spec ->
          let* () = acc in
          match String.index_opt spec '=' with
          | None -> Error (Printf.sprintf "--file expects PATH=CONTENTS, got %S" spec)
          | Some i ->
            let path = String.sub spec 0 i in
            let contents = String.sub spec (i + 1) (String.length spec - i - 1) in
            (match Vfs.create_file kernel.Kernel.vfs ~cwd:"/" path ~contents with
             | Ok () -> Ok ()
             | Error e -> Error (Oskernel.Errno.name e)))
        (Ok ()) files
    in
    let* vcache, precomp, cfpre =
      if not enforce then Ok (None, None, None)
      else
        let* key = Common.key_of_hex key_hex in
        let* vcache =
          if no_vcache then Ok None
          else if vcache_size < 1 then
            Error (Printf.sprintf "--vcache-size must be >= 1, got %d" vcache_size)
          else
            Ok
              (Some
                 (Asc_core.Vcache.create ~capacity:vcache_size
                    ~registry:(Kernel.metrics kernel) ()))
        in
        let precomp =
          if no_precomp then None
          else Some (Asc_core.Precomp.create ~key ~registry:(Kernel.metrics kernel) ())
        in
        let cfpre =
          if no_cfpre then None
          else Some (Asc_core.Cfpre.create ~registry:(Kernel.metrics kernel) ())
        in
        Kernel.set_monitor kernel
          (Some
             (Asc_core.Checker.monitor ~kernel ~key ~normalize_paths:normalize ?vcache
                ?precomp ?cfpre ()));
        Ok (vcache, precomp, cfpre)
    in
    (* --audit-out: record every audit entry in a tamper-evident CMAC chain
       (keyed like the checker) and export it as JSONL after the run *)
    let* authlog =
      match audit_out with
      | None -> Ok None
      | Some _ ->
        let* key = Common.key_of_hex key_hex in
        let log = Asc_obs.Authlog.create ~key () in
        Kernel.set_authlog kernel (Some log);
        Ok (Some log)
    in
    let stdin =
      match (stdin_text, w) with
      | Some s, _ -> s
      | None, Some w -> w.Workloads.Registry.stdin
      | None, None -> ""
    in
    let* lib_imgs =
      List.fold_left
        (fun acc path ->
          let* acc = acc in
          let* contents = (try Ok (Common.read_file path) with Sys_error e -> Error e) in
          match Svm.Obj_file.parse contents with
          | Ok img -> Ok (img :: acc)
          | Error e -> Error (Printf.sprintf "%s: %s" path e))
        (Ok []) libs
    in
    let* proc =
      try
        Ok
          (Kernel.spawn kernel ~stdin ~libs:(List.rev lib_imgs)
             ~program:(Filename.basename input) img)
      with Invalid_argument e -> Error e
    in
    let gc0 = Gc.quick_stat () in
    let minor0 = Asc_obs.Profile.minor_words () in
    let stop = Kernel.run kernel proc ~max_cycles:2_000_000_000 in
    let minor1 = Asc_obs.Profile.minor_words () in
    let gc1 = Gc.quick_stat () in
    print_string (Kernel.stdout_of proc);
    let err = Kernel.stderr_of proc in
    if err <> "" then Format.eprintf "%s" err;
    Format.eprintf "[%d cycles]@." proc.Process.machine.Svm.Machine.cycles;
    if verbose_stats then begin
      (match vcache with
       | Some vc ->
         Format.eprintf
           "[vcache: %d hits, %d misses, %d evictions, %d invalidations, %d cycles saved]@."
           (Asc_core.Vcache.hits vc) (Asc_core.Vcache.misses vc)
           (Asc_core.Vcache.evictions vc) (Asc_core.Vcache.invalidations vc)
           (Asc_core.Vcache.cycles_saved vc)
       | None -> ());
      (match precomp with
       | Some pc ->
         Format.eprintf
           "[precomp: %d hits, %d resumes, %d fallbacks, %d compiles, %d invalidations, %d \
            cycles saved]@."
           (Asc_core.Precomp.hits pc) (Asc_core.Precomp.resumes pc)
           (Asc_core.Precomp.fallbacks pc) (Asc_core.Precomp.compiles pc)
           (Asc_core.Precomp.invalidations pc) (Asc_core.Precomp.cycles_saved pc)
       | None -> ());
      (match cfpre with
       | Some cf ->
         Format.eprintf
           "[cfpre: %d hits, %d misses, %d fallbacks, %d compiles, %d invalidations, %d \
            cycles saved]@."
           (Asc_core.Cfpre.hits cf) (Asc_core.Cfpre.misses cf)
           (Asc_core.Cfpre.fallbacks cf) (Asc_core.Cfpre.compiles cf)
           (Asc_core.Cfpre.invalidations cf) (Asc_core.Cfpre.cycles_saved cf)
       | None -> ())
    end;
    (match stats_out with
     | Some path ->
       Common.write_file path
         (Asc_obs.Json.to_string
            (stats_json kernel proc ~vcache ~precomp ~cfpre ~gc0 ~gc1 ~minor0 ~minor1)
          ^ "\n")
     | None -> ());
    (match (authlog, audit_out) with
     | Some log, Some path ->
       Asc_obs.Authlog.export_file log path;
       (* the head is the out-of-band commitment: record it somewhere the
          process under test cannot reach (here: the operator's console) *)
       Format.eprintf "[audit chain: %d records -> %s, head %s]@."
         (Asc_obs.Authlog.appended log) path
         (Asc_obs.Authlog.hex (Asc_obs.Authlog.head_mac log))
     | _ -> ());
    (match stop with
     | Svm.Machine.Halted code ->
       Format.eprintf "[exit %d]@." code;
       Ok code
     | Svm.Machine.Killed reason ->
       Format.eprintf "[killed: %s]@." reason;
       (* one-line forensic summary of the structured violation, when the
          deny produced one *)
       List.iter
         (fun e ->
           match e with
           | Kernel.Violation { violation = v; _ } ->
             Format.eprintf "[violation] step=%s class=%s site=0x%x: %s@."
               (Violation.step_name v.Violation.v_step)
               (Violation.attack_class v.Violation.v_step)
               v.Violation.v_site v.Violation.v_reason
           | _ -> ())
         (Kernel.audit_log kernel);
       List.iter
         (fun e -> Format.eprintf "[audit] %s@." (Kernel.audit_to_string e))
         (Kernel.audit_log kernel);
       Ok 137
     | Svm.Machine.Faulted (_, pc) ->
       Format.eprintf "[fault at 0x%x]@." pc;
       Ok 139
     | Svm.Machine.Cycle_limit ->
       Format.eprintf "[cycle limit]@.";
       Ok 124)
  in
  match result with
  | Ok code -> code
  | Error e ->
    Format.eprintf "asc-run: %s@." e;
    1

let input_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
         ~doc:"SEF binary, MiniC source (.mc), or workload:NAME.")

let key_arg =
  Arg.(value & opt string "000102030405060708090a0b0c0d0e0f"
       & info [ "k"; "key" ] ~docv:"HEX" ~doc:"128-bit MAC key (must match the installer's).")

let os_arg =
  Arg.(value & opt string "linux" & info [ "os" ] ~docv:"OS" ~doc:"linux or openbsd.")

let enforce_arg =
  Arg.(value & flag & info [ "e"; "enforce" ]
         ~doc:"Enable the in-kernel authenticated-system-call checker.")

let stdin_arg =
  Arg.(value & opt (some string) None & info [ "stdin" ] ~docv:"TEXT"
         ~doc:"Text supplied on the program's standard input.")

let normalize_arg =
  Arg.(value & flag & info [ "normalize-paths" ]
         ~doc:"Also apply §5.4 in-kernel file name normalization.")

let file_arg =
  Arg.(value & opt_all string [] & info [ "file" ] ~docv:"PATH=CONTENTS"
         ~doc:"Create a file in the simulated VFS before the run (repeatable).")

let lib_arg =
  Arg.(value & opt_all string [] & info [ "lib" ] ~docv:"FILE"
         ~doc:"Map a shared-library SEF image (from asc-install --library) into the \
               process (repeatable).")

let audit_out_arg =
  Arg.(value & opt (some string) None & info [ "audit-out" ] ~docv:"FILE"
         ~doc:"Export the run's audit log as a tamper-evident JSONL chain (keyed with \
               $(b,--key)); inspect it with asc-audit.")

let stats_out_arg =
  Arg.(value & opt (some string) None & info [ "stats-out" ] ~docv:"FILE"
         ~doc:"Write a machine-readable JSON stats document after the run: machine \
               cycles, vcache/precomp counters, host GC deltas (minor/major/promoted \
               words, minor collections) and the kernel telemetry aggregate \
               (reason mix, per-syscall latency quantiles, per-site rollups).")

let verbose_stats_arg =
  Arg.(value & flag & info [ "verbose-stats" ]
         ~doc:"Also print the human-readable vcache/precomp summary lines on stderr \
               (prefer $(b,--stats-out) for tooling).")

let no_vcache_arg =
  Arg.(value & flag & info [ "no-vcache" ]
         ~doc:"Disable the checker's verified-MAC cache (every call recomputes its CMACs). \
               Only meaningful with $(b,--enforce).")

let vcache_size_arg =
  Arg.(value & opt int 1024 & info [ "vcache-size" ] ~docv:"N"
         ~doc:"Capacity (entries) of the checker's verified-MAC cache; least-recently-used \
               entries are evicted beyond it.")

let no_precomp_arg =
  Arg.(value & flag & info [ "no-precomp" ]
         ~doc:"Disable the checker's precompiled-site table (no exec-time per-site fast \
               path; every call serializes and verifies through the slow path / vcache). \
               Only meaningful with $(b,--enforce).")

let no_cfpre_arg =
  Arg.(value & flag & info [ "no-cfpre" ]
         ~doc:"Disable the checker's precompiled control-flow bitsets and amortized \
               lbMAC chain (every call re-verifies the predecessor-set string and \
               recomputes both policy-state CMACs from scratch). Only meaningful with \
               $(b,--enforce).")

let cmd =
  let doc = "run a program on the simulated kernel" in
  Cmd.v
    (Cmd.info "asc-run" ~doc)
    Term.(
      const run $ input_arg $ key_arg $ os_arg $ enforce_arg $ stdin_arg $ normalize_arg
      $ file_arg $ lib_arg $ audit_out_arg $ stats_out_arg $ verbose_stats_arg
      $ no_vcache_arg $ vcache_size_arg $ no_precomp_arg $ no_cfpre_arg)

let () = exit (Cmd.eval' cmd)
