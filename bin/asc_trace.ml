(* strace(1) analogue for the simulated kernel: print every system call a
   program makes — the tool used to "verify by hand using a system call
   tracer on actual runs" (§4.2), and the data source for Systrace-style
   training. *)

open Cmdliner
open Oskernel

let sem_name t =
  match t.Kernel.t_sem with
  | Some s -> Syscall.name s
  | None -> Printf.sprintf "syscall#%d" t.Kernel.t_number

(* Per-syscall counts plus dispatch-cycle quantiles. Durations come from
   the kernel's span collector (cycle-stamped, so deterministic); the
   quantiles use the same log-linear estimator as the telemetry plane, so
   each estimate is within its containing bucket's width of exact. *)
let print_summary kernel trace =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun t ->
      let name = sem_name t in
      Hashtbl.replace counts name (1 + try Hashtbl.find counts name with Not_found -> 0))
    trace;
  let buckets = Asc_obs.Metrics.log_linear_buckets ~lo:10 ~hi:1_000_000 in
  let reg = Asc_obs.Metrics.create () in
  let hists = Hashtbl.create 16 in
  List.iter
    (fun (ev : Asc_obs.Trace.event) ->
      let h =
        match Hashtbl.find_opt hists ev.Asc_obs.Trace.ev_name with
        | Some h -> h
        | None ->
          let h = Asc_obs.Metrics.histogram ~buckets reg ev.Asc_obs.Trace.ev_name in
          Hashtbl.add hists ev.Asc_obs.Trace.ev_name h;
          h
      in
      Asc_obs.Metrics.observe h ev.Asc_obs.Trace.ev_dur)
    (Asc_obs.Trace.events (Kernel.spans kernel));
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] in
  Format.printf "%6s %8s %8s %8s %8s  %s@." "calls" "mean" "p50" "p95" "p99" "syscall";
  List.iter
    (fun (name, n) ->
      match Hashtbl.find_opt hists name with
      | Some h ->
        let snap = Asc_obs.Metrics.histogram_value h in
        let q p = Asc_obs.Metrics.quantile snap p in
        let mean =
          if snap.Asc_obs.Metrics.h_count = 0 then 0
          else snap.Asc_obs.Metrics.h_sum / snap.Asc_obs.Metrics.h_count
        in
        Format.printf "%6d %8d %8d %8d %8d  %s@." n mean (q 0.50) (q 0.95) (q 0.99) name
      | None -> Format.printf "%6d %8s %8s %8s %8s  %s@." n "-" "-" "-" "-" name)
    (List.sort (fun (_, a) (_, b) -> compare b a) rows);
  Format.printf "%6d  total (cycles per dispatched call, quantiles estimated)@."
    (List.length trace);
  (* denied calls never reach the trace ring (the monitor kills the process
     before dispatch), so their counts come from the telemetry plane's
     reason codes: one [Deny step] code per denied call, keyed by the
     failing verification step *)
  let agg = Asc_obs.Telemetry.aggregate (Kernel.telemetry kernel) in
  let deny_idx = Asc_obs.Telemetry.reason_index (Asc_obs.Telemetry.Deny "") in
  if agg.Asc_obs.Telemetry.t_reasons.(deny_idx) > 0 then begin
    Format.printf "@.%6s  %s@." "denies" "reason (telemetry reason codes)";
    List.iter
      (fun (step, n) -> Format.printf "%6d  %s@." n step)
      (List.sort
         (fun (_, a) (_, b) -> compare b a)
         agg.Asc_obs.Telemetry.t_deny_steps);
    Format.printf "%6d  total denied@." agg.Asc_obs.Telemetry.t_reasons.(deny_idx)
  end

let print_log trace =
  List.iter
    (fun t ->
      Format.printf "%s(%s) @@ 0x%x = %d@." (sem_name t)
        (String.concat ", " (Array.to_list (Array.map string_of_int t.Kernel.t_args)))
        t.Kernel.t_site t.Kernel.t_result)
    trace

let print_json kernel trace =
  let open Asc_obs.Json in
  let entry t =
    Obj
      [ ("name", Str (sem_name t));
        ("number", Int t.Kernel.t_number);
        ("site", Int t.Kernel.t_site);
        ("args", List (Array.to_list (Array.map (fun a -> Int a) t.Kernel.t_args)));
        ("result", Int t.Kernel.t_result) ]
  in
  print_endline
    (to_string
       (Obj
          [ ("trace", List (List.map entry trace));
            ("syscalls", Int (Kernel.syscall_count kernel));
            ("denied", Int (Kernel.denied_count kernel));
            ("audit", List (List.map Kernel.audit_to_json (Kernel.audit_log kernel))) ]))

let run input os stdin_text summary format enforce key_hex =
  let ( let* ) = Result.bind in
  let result =
    let* personality = Common.personality_of_string os in
    let* format =
      match (format, summary) with
      | ("log" | "summary" | "json" | "chrome" | "audit"), true -> Ok "summary"
      | (("log" | "summary" | "json" | "chrome" | "audit") as f), false -> Ok f
      | f, _ ->
        Error
          (Printf.sprintf "unknown format %S (expected log, summary, json, chrome or audit)" f)
    in
    let* img, w = Common.load_program ~personality input in
    let kernel = Kernel.create ~personality () in
    (match w with Some w -> w.Workloads.Registry.setup kernel | None -> ());
    (* --enforce: trace under the checker so the summary's deny-reason
       counts (telemetry reason codes) are live. Inputs compiled here
       (MiniC source, workload:NAME) are MAC-installed first so their
       legitimate calls verify; a SEF binary is traced as supplied — if it
       was never asc-installed, the denies themselves are the data. *)
    let* img =
      if not enforce then Ok img
      else
        let* key = Common.key_of_hex key_hex in
        Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
        let compiled =
          w <> None || Filename.check_suffix input ".mc" || Filename.check_suffix input ".c"
        in
        if not compiled then Ok img
        else begin
          match
            Asc_core.Installer.install ~key ~personality ~program:(Filename.basename input) img
          with
          | Ok inst -> Ok inst.Asc_core.Installer.image
          | Error e -> Error e
        end
    in
    kernel.Kernel.tracing <- true;
    let stdin =
      match (stdin_text, w) with
      | Some s, _ -> s
      | None, Some w -> w.Workloads.Registry.stdin
      | None, None -> ""
    in
    let proc = Kernel.spawn kernel ~stdin ~program:(Filename.basename input) img in
    let stop = Kernel.run kernel proc ~max_cycles:2_000_000_000 in
    let trace = Kernel.trace kernel in
    (match format with
     | "summary" -> print_summary kernel trace
     | "json" -> print_json kernel trace
     | "chrome" -> print_endline (Asc_obs.Trace.chrome_string (Kernel.spans kernel))
     | "audit" ->
       (* one audit entry per line, in the same JSON schema the
          tamper-evident chain records (asc-run --audit-out / asc-audit) *)
       List.iter
         (fun e -> print_endline (Asc_obs.Json.to_string (Kernel.audit_to_json e)))
         (Kernel.audit_log kernel)
     | _ -> print_log trace);
    (match stop with
     | Svm.Machine.Halted code ->
       Format.eprintf "[exit %d]@." code;
       Ok 0
     | Svm.Machine.Killed reason ->
       Format.eprintf "[killed: %s]@." reason;
       Ok 137
     | Svm.Machine.Faulted (_, pc) ->
       Format.eprintf "[fault at 0x%x]@." pc;
       Ok 139
     | Svm.Machine.Cycle_limit ->
       Format.eprintf "[cycle limit]@.";
       Ok 124)
  in
  match result with
  | Ok code -> code
  | Error e ->
    Format.eprintf "asc-trace: %s@." e;
    1

let input_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
         ~doc:"SEF binary, MiniC source (.mc), or workload:NAME.")

let os_arg = Arg.(value & opt string "linux" & info [ "os" ] ~docv:"OS" ~doc:"linux or openbsd.")

let stdin_arg =
  Arg.(value & opt (some string) None & info [ "stdin" ] ~docv:"TEXT"
         ~doc:"Text supplied on standard input.")

let summary_arg =
  Arg.(value & flag & info [ "c"; "summary" ] ~doc:"Print per-syscall counts instead of a log.")

let enforce_arg =
  Arg.(value & flag & info [ "e"; "enforce" ]
         ~doc:"Trace under the authenticated-system-call checker (compiled inputs are \
               MAC-installed first); $(b,--format summary) then reports deny counts by \
               telemetry reason code.")

let key_arg =
  Arg.(value & opt string "000102030405060708090a0b0c0d0e0f"
       & info [ "k"; "key" ] ~docv:"HEX" ~doc:"128-bit MAC key used with $(b,--enforce).")

let format_arg =
  Arg.(value & opt string "log" & info [ "format" ] ~docv:"FORMAT"
         ~doc:"Output format: $(b,log) (one line per call), $(b,summary) (per-syscall counts), \
               $(b,json) (machine-readable trace + audit log), $(b,chrome) (trace-event JSON \
               of the kernel's per-syscall spans, loadable in chrome://tracing or Perfetto), \
               or $(b,audit) (one audit entry per line, JSONL).")

let cmd =
  let doc = "trace the system calls of a program on the simulated kernel" in
  Cmd.v (Cmd.info "asc-trace" ~doc)
    Term.(
      const run $ input_arg $ os_arg $ stdin_arg $ summary_arg $ format_arg $ enforce_arg
      $ key_arg)

let () = exit (Cmd.eval' cmd)
