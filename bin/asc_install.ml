(* The trusted installer CLI: reads a program (SEF binary, MiniC source, or
   a named workload), generates its policy by static analysis and rewrites
   it with authenticated system calls. *)

open Cmdliner

let run input output key_hex os policy_only no_cf extensions program_id library lib_base
    trace_out =
  let ( let* ) = Result.bind in
  let tracer = Option.map (fun _ -> Asc_core.Installer.new_tracer ()) trace_out in
  let dump_trace () =
    match (trace_out, tracer) with
    | Some path, Some t ->
      (try
         Common.write_file path
           (Asc_obs.Trace.chrome_string t.Asc_core.Installer.tr_events);
         Format.printf "wrote installer phase trace to %s@." path;
         0
       with Sys_error e ->
         Format.eprintf "asc-install: cannot write trace: %s@." e;
         1)
    | _ -> 0
  in
  let result =
    let* personality = Common.personality_of_string os in
    if library then begin
      (* §5.2: install a shared library from MiniC source *)
      let* src = (try Ok (Common.read_file input) with Sys_error e -> Error e) in
      let* img = Minic.Driver.compile_library ~personality ~base:lib_base src in
      let exports = Minic.Driver.exports img ~prefix_blacklist:[ "str_"; "L"; "__" ] in
      let* key = Common.key_of_hex key_hex in
      let options =
        { Asc_core.Installer.control_flow = false; use_extensions = extensions; program_id }
      in
      let* lib =
        Asc_core.Installer.install_library ~key ~personality ~options
          ~program:(Filename.basename input) ~exports img
      in
      let out = match output with Some o -> o | None -> input ^ ".lib.sef" in
      Common.write_file out (Svm.Obj_file.serialize lib.Asc_core.Installer.lib_image);
      Format.printf "installed library %s -> %s (base 0x%x)@." input out lib_base;
      List.iter
        (fun (n, a) -> Format.printf "  export %-24s 0x%x@." n a)
        lib.Asc_core.Installer.lib_exports;
      List.iter
        (Format.printf "  set aside for static linking: %s@.")
        lib.Asc_core.Installer.lib_rejected;
      Ok ()
    end
    else
    let* img, _w = Common.load_program ~personality input in
    let options =
      { Asc_core.Installer.control_flow = not no_cf;
        use_extensions = extensions;
        program_id }
    in
    let program = Filename.basename input in
    if policy_only then begin
      let* policy =
        Asc_core.Installer.generate_policy ?tracer ~personality ~options ~program img
      in
      Format.printf "# policy for %s on %s@." program (Oskernel.Personality.os_name personality);
      List.iter (Format.printf "%a@." Asc_core.Policy.pp_site) policy.Asc_core.Policy.sites;
      List.iter (Format.printf "# warning: %s@.") policy.Asc_core.Policy.warnings;
      Format.printf "# %d sites, %d distinct system calls@."
        (List.length policy.Asc_core.Policy.sites)
        (List.length (Asc_core.Policy.distinct_calls policy));
      Ok ()
    end
    else begin
      let* key = Common.key_of_hex key_hex in
      let* inst = Asc_core.Installer.install ?tracer ~key ~personality ~options ~program img in
      let out = match output with Some o -> o | None -> input ^ ".asc" in
      Common.write_file out (Svm.Obj_file.serialize inst.Asc_core.Installer.image);
      Format.printf "installed %s -> %s: %d sites authenticated, %d bytes of .asc@." input out
        inst.Asc_core.Installer.sites inst.Asc_core.Installer.asc_bytes;
      List.iter (Format.printf "warning: %s@.") inst.Asc_core.Installer.policy.Asc_core.Policy.warnings;
      Ok ()
    end
  in
  match result with
  | Ok () -> dump_trace ()
  | Error e ->
    Format.eprintf "asc-install: %s@." e;
    1

let input_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
         ~doc:"Input: a SEF binary, MiniC source (.mc), or workload:NAME.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Output path for the authenticated binary (default: input + .asc).")

let key_arg =
  Arg.(value & opt string "000102030405060708090a0b0c0d0e0f"
       & info [ "k"; "key" ] ~docv:"HEX" ~doc:"128-bit MAC key as 32 hex digits.")

let os_arg =
  Arg.(value & opt string "linux" & info [ "os" ] ~docv:"OS"
         ~doc:"OS personality: linux or openbsd.")

let policy_only_arg =
  Arg.(value & flag & info [ "p"; "policy-only" ]
         ~doc:"Only generate and print the policy (works even for binaries that \
               cannot be completely disassembled).")

let no_cf_arg =
  Arg.(value & flag & info [ "no-control-flow" ]
         ~doc:"Omit control-flow (predecessor set) policies.")

let ext_arg =
  Arg.(value & flag & info [ "extensions" ]
         ~doc:"Enable the §5 extensions (multi-value argument sets).")

let pid_arg =
  Arg.(value & opt int 1 & info [ "program-id" ] ~docv:"N"
         ~doc:"Program identifier making block ids globally unique (§5.5).")

let library_arg =
  Arg.(value & flag & info [ "library" ]
         ~doc:"Treat the input as MiniC shared-library source (§5.2): compile at \
               --base, partition by the strict metapolicy, authenticate the rest.")

let base_arg =
  Arg.(value & opt int 0x100000 & info [ "base" ] ~docv:"ADDR"
         ~doc:"Fixed load address for --library.")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON file of the installer phases (disasm, \
               inline, cfg, dataflow, syscall-graph, classify, emit) with deterministic \
               work-unit timestamps.")

let cmd =
  let doc = "generate system-call policies and install authenticated system calls" in
  Cmd.v
    (Cmd.info "asc-install" ~doc)
    Term.(
      const run $ input_arg $ output_arg $ key_arg $ os_arg $ policy_only_arg $ no_cf_arg
      $ ext_arg $ pid_arg $ library_arg $ base_arg $ trace_out_arg)

let () = exit (Cmd.eval' cmd)
