(* Fleet-level telemetry viewer: run a simulated fleet of authenticated
   processes on one shared kernel and aggregate its telemetry plane across
   pids — verified syscalls/sec, per-syscall latency quantiles, fast-path
   reason mix, per-site fallback rollups and per-pid rows. The top(1)
   analogue for the measurement plane ROADMAP Open item 1's sharded
   kernel will be tuned against. *)

open Cmdliner
open Oskernel
module Telemetry = Asc_obs.Telemetry
module Health = Asc_obs.Health
module Json = Asc_obs.Json

let pct part total = if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let stop_name = function
  | Svm.Machine.Halted c -> Printf.sprintf "halted:%d" c
  | Svm.Machine.Killed r -> "killed:" ^ r
  | Svm.Machine.Faulted (_, pc) -> Printf.sprintf "faulted:0x%x" pc
  | Svm.Machine.Cycle_limit -> "cycle-limit"

type pid_row = {
  pr_pid : int;
  pr_workload : string;
  pr_calls : int;
  pr_cycles : int;       (* verification cycles recorded for this pid *)
  pr_alloc : int;        (* checker minor words recorded for this pid *)
  pr_reasons : int array;
  pr_stop : string;
}

(* The fleet itself: [procs] processes round-robinning over the named
   workloads, every one spawned on the SAME kernel so the telemetry plane
   sees concurrent shards the way a real fleet kernel would. Per-pid rows
   are aggregate deltas around each run — exact, because [Telemetry.merge]
   is count-conserving. *)
let run_fleet ~personality ~key ~procs ~scale ~interval ~no_vcache ~no_precomp ~no_cfpre
    ?authlog names =
  let ( let* ) = Result.bind in
  let* workloads =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        match Workloads.Registry.by_name ~scale name with
        | Some w -> Ok (w :: acc)
        | None -> Error (Printf.sprintf "unknown workload %S" name))
      (Ok []) names
  in
  let workloads = List.rev workloads in
  let kernel = Kernel.create ~personality () in
  (match authlog with
   | Some log -> Kernel.set_authlog kernel (Some log)
   | None -> ());
  let tel = Kernel.telemetry kernel in
  if interval > 0 then Telemetry.set_emitter tel ~interval;
  let vcache =
    if no_vcache then None
    else Some (Asc_core.Vcache.create ~capacity:1024 ~registry:(Kernel.metrics kernel) ())
  in
  let precomp =
    if no_precomp then None
    else Some (Asc_core.Precomp.create ~key ~registry:(Kernel.metrics kernel) ())
  in
  let cfpre =
    if no_cfpre then None
    else Some (Asc_core.Cfpre.create ~registry:(Kernel.metrics kernel) ())
  in
  Kernel.set_monitor kernel
    (Some (Asc_core.Checker.monitor ~kernel ~key ?vcache ?precomp ?cfpre ()));
  let* images =
    List.fold_left
      (fun acc (w : Workloads.Registry.t) ->
        let* acc = acc in
        w.Workloads.Registry.setup kernel;
        let img = Workloads.Registry.compile ~personality w in
        match
          Asc_core.Installer.install ~key ~personality ~program:w.Workloads.Registry.name img
        with
        | Ok inst -> Ok ((w, inst.Asc_core.Installer.image) :: acc)
        | Error e -> Error (w.Workloads.Registry.name ^ ": " ^ e))
      (Ok []) workloads
  in
  let images = Array.of_list (List.rev images) in
  let minor0 = Gc.minor_words () in
  let machine_cycles = ref 0 in
  let rows =
    List.init procs (fun i ->
        let w, image = images.(i mod Array.length images) in
        let before = Telemetry.aggregate tel in
        let proc =
          Kernel.spawn kernel ~stdin:w.Workloads.Registry.stdin
            ~program:w.Workloads.Registry.name image
        in
        let stop = Kernel.run kernel proc ~max_cycles:4_000_000_000 in
        machine_cycles := !machine_cycles + proc.Process.machine.Svm.Machine.cycles;
        let after = Telemetry.aggregate tel in
        { pr_pid = proc.Process.pid;
          pr_workload = w.Workloads.Registry.name;
          pr_calls = after.Telemetry.t_calls - before.Telemetry.t_calls;
          pr_cycles = after.Telemetry.t_cycles - before.Telemetry.t_cycles;
          pr_alloc = after.Telemetry.t_alloc_words - before.Telemetry.t_alloc_words;
          pr_reasons =
            Array.mapi (fun k v -> v - before.Telemetry.t_reasons.(k)) after.Telemetry.t_reasons;
          pr_stop = stop_name stop })
  in
  let minor_words = int_of_float (Gc.minor_words () -. minor0) in
  Ok (kernel, tel, rows, !machine_cycles, minor_words, vcache, precomp, cfpre)

let deny_idx = Telemetry.reason_index (Telemetry.Deny "")
let fallback_indices = [ 2; 3; 4 ] (* no_entry, statics, tag *)

(* --rules: load the SLO rule spec. "default" selects the compiled-in
   rules; anything else is a JSON file ({"rules": [...]}). *)
let load_rules spec =
  if spec = "default" then Ok Health.default_rules
  else
    match (try Ok (Common.read_file spec) with Sys_error e -> Error e) with
    | Error e -> Error e
    | Ok text -> (
        match Health.rules_of_string text with
        | Ok rules -> Ok rules
        | Error e -> Error (spec ^ ": " ^ e))

let health_json (engine, trs) =
  let armed, disarmed, fired, cleared = Health.counts engine in
  Json.Obj
    [ ("transitions", Json.List (List.map Health.transition_to_json trs));
      ("firing", Json.List (List.map (fun n -> Json.Str n) (Health.firing engine)));
      ("armed", Json.Int armed);
      ("disarmed", Json.Int disarmed);
      ("fired", Json.Int fired);
      ("cleared", Json.Int cleared) ]

let fleet_json ~procs ~scale ~names ~interval ?health tel rows machine_cycles minor_words =
  let agg = Telemetry.aggregate tel in
  let calls = agg.Telemetry.t_calls in
  let seconds = float_of_int machine_cycles *. 1e-9 (* 1 modeled cycle = 1ns *) in
  let syscalls_per_sec = if seconds > 0.0 then float_of_int calls /. seconds else 0.0 in
  let fleet =
    match Telemetry.stats_to_json tel agg with
    | Json.Obj fields ->
      Json.Obj
        (fields
         @ [ ("machine_cycles", Json.Int machine_cycles);
             ("verified_syscalls_per_sec", Json.Float syscalls_per_sec);
             ( "self_overhead_pct",
               Json.Float (pct agg.Telemetry.t_self_cycles agg.Telemetry.t_cycles) );
             ( "minor_words_per_call",
               Json.Float (if calls = 0 then 0.0 else float_of_int minor_words /. float_of_int calls) );
             ( "deny_rate_pct",
               Json.Float (pct agg.Telemetry.t_reasons.(deny_idx) calls) ) ])
    | other -> other
  in
  Json.Obj
    [ ("tool", Json.Str "asc-top");
      ("procs", Json.Int procs);
      ("scale", Json.Int scale);
      ("workloads", Json.List (List.map (fun n -> Json.Str n) names));
      ("snapshot_interval", Json.Int interval);
      ("fleet", fleet);
      ( "per_pid",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [ ("pid", Json.Int r.pr_pid);
                   ("workload", Json.Str r.pr_workload);
                   ("calls", Json.Int r.pr_calls);
                   ("verification_cycles", Json.Int r.pr_cycles);
                   ("alloc_words", Json.Int r.pr_alloc);
                   ("denies", Json.Int r.pr_reasons.(deny_idx));
                   ("stop", Json.Str r.pr_stop) ])
             rows) );
      ("snapshots", Json.List (Telemetry.snapshots tel)) ]
  |> fun doc ->
  match (doc, health) with
  | Json.Obj fields, Some h -> Json.Obj (fields @ [ ("health", health_json h) ])
  | _ -> doc

(* Schema self-check: re-parse the emitted document and assert the fields
   every consumer (the dune smoke rule, the bench diff tool) relies on.
   Returns an error rather than emitting a document that would break them. *)
let self_check doc =
  let s = Json.to_string doc in
  match Json.parse s with
  | Error e -> Error ("asc-top --json: emitted document does not re-parse: " ^ e)
  | Ok parsed ->
    let need what = function
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "asc-top --json: schema self-check: missing %s" what)
    in
    let ( let* ) = Result.bind in
    let* () = need "tool" (Json.member "tool" parsed) in
    let* () = need "procs" (Json.member "procs" parsed) in
    let* () = need "fleet" (Json.member "fleet" parsed) in
    let* () = need "per_pid" (Json.member "per_pid" parsed) in
    let* () = need "snapshots" (Json.member "snapshots" parsed) in
    let fleet = Option.get (Json.member "fleet" parsed) in
    let* () = need "fleet.calls" (Json.member "calls" fleet) in
    let* () = need "fleet.reasons" (Json.member "reasons" fleet) in
    let* () = need "fleet.per_syscall" (Json.member "per_syscall" fleet) in
    let* () = need "fleet.alloc_words" (Json.member "alloc_words" fleet) in
    let* () = need "fleet.alloc" (Json.member "alloc" fleet) in
    let reasons = Option.get (Json.member "reasons" fleet) in
    let* () =
      Array.fold_left
        (fun acc label ->
          let* () = acc in
          need ("fleet.reasons." ^ label) (Json.member label reasons))
        (Ok ()) Telemetry.reason_labels
    in
    (* the exhaustiveness invariant, re-checked on the wire format *)
    let calls = Option.bind (Json.member "calls" fleet) Json.to_int in
    let total = Option.bind (Json.member "reasons_total" fleet) Json.to_int in
    match (calls, total) with
    | Some c, Some t when c = t -> Ok s
    | Some c, Some t ->
      Error (Printf.sprintf "asc-top --json: reason counts (%d) do not cover calls (%d)" t c)
    | _ -> Error "asc-top --json: schema self-check: calls/reasons_total not integers"

let print_health (engine, trs) =
  let armed, disarmed, fired, cleared = Health.counts engine in
  Format.printf "@.  health rules:@.";
  print_string
    (String.concat ""
       (List.map (fun l -> "    " ^ l ^ "\n")
          (String.split_on_char '\n' (Health.summary engine) |> List.filter (fun l -> l <> ""))));
  Format.printf "    transitions: %d armed, %d disarmed, %d fired, %d cleared@." armed disarmed
    fired cleared;
  List.iter
    (fun (tr : Health.transition) ->
      Format.printf "    [%s] %s at ts %d (value %.2f, threshold %.2f)@."
        (Health.event_label tr.Health.tr_event) tr.Health.tr_rule tr.Health.tr_ts
        tr.Health.tr_value tr.Health.tr_threshold)
    trs

let print_human ~procs ~scale ~names ~interval ?health tel rows machine_cycles minor_words =
  let agg = Telemetry.aggregate tel in
  let calls = agg.Telemetry.t_calls in
  let seconds = float_of_int machine_cycles *. 1e-9 in
  Format.printf "asc-top: %d procs over %s (scale %d)@." procs (String.concat "," names) scale;
  Format.printf "  monitored calls        %12d@." calls;
  Format.printf "  verification cycles    %12d@." agg.Telemetry.t_cycles;
  Format.printf "  verified syscalls/sec  %12.0f  (1 cycle = 1ns)@."
    (if seconds > 0.0 then float_of_int calls /. seconds else 0.0);
  Format.printf "  telemetry self cycles  %12d  (%.3f%% of verification)@."
    agg.Telemetry.t_self_cycles
    (pct agg.Telemetry.t_self_cycles agg.Telemetry.t_cycles);
  Format.printf "  minor words/call       %12.1f@."
    (if calls = 0 then 0.0 else float_of_int minor_words /. float_of_int calls);
  Format.printf "  checker words          %12d@." agg.Telemetry.t_alloc_words;
  if agg.Telemetry.t_alloc.Telemetry.q_count > 0 then begin
    let snap = Telemetry.alloc_hist_snapshot tel agg.Telemetry.t_alloc in
    let q p = Asc_obs.Metrics.quantile snap p in
    Format.printf "  checker words/call     %12d  p50 %d  p95 %d  p99 %d@."
      (agg.Telemetry.t_alloc.Telemetry.q_sum / agg.Telemetry.t_alloc.Telemetry.q_count)
      (q 0.50) (q 0.95) (q 0.99)
  end;
  Format.printf "  deny rate              %11.2f%%@."
    (pct agg.Telemetry.t_reasons.(deny_idx) calls);
  Format.printf "@.  reason mix:@.";
  Array.iteri
    (fun i label ->
      if agg.Telemetry.t_reasons.(i) > 0 then
        Format.printf "    %-20s %10d  %6.2f%%@." label agg.Telemetry.t_reasons.(i)
          (pct agg.Telemetry.t_reasons.(i) calls))
    Telemetry.reason_labels;
  Format.printf "@.  per-syscall verification cycles:@.";
  Format.printf "    %-16s %8s %8s %8s %8s %8s@." "syscall" "calls" "mean" "p50" "p95" "p99";
  List.iter
    (fun (sem, h) ->
      let snap = Telemetry.hist_snapshot tel h in
      let q p = Asc_obs.Metrics.quantile snap p in
      Format.printf "    %-16s %8d %8d %8d %8d %8d@." sem h.Telemetry.q_count
        (if h.Telemetry.q_count = 0 then 0 else h.Telemetry.q_sum / h.Telemetry.q_count)
        (q 0.50) (q 0.95) (q 0.99))
    (List.sort
       (fun (_, a) (_, b) -> compare b.Telemetry.q_count a.Telemetry.q_count)
       agg.Telemetry.t_per_sem);
  let falling =
    List.filter_map
      (fun (site, counts) ->
        let fb = List.fold_left (fun acc i -> acc + counts.(i)) 0 fallback_indices in
        if fb > 0 then Some (site, counts, fb) else None)
      agg.Telemetry.t_sites
  in
  if falling <> [] then begin
    Format.printf "@.  fallback sites (top %d):@." (min 10 (List.length falling));
    Format.printf "    %-10s %10s %10s %10s@." "site" "no_entry" "statics" "tag";
    List.iteri
      (fun i (site, counts, _) ->
        if i < 10 then
          Format.printf "    0x%-8x %10d %10d %10d@." site counts.(2) counts.(3) counts.(4))
      (List.sort (fun (_, _, a) (_, _, b) -> compare b a) falling)
  end;
  Format.printf "@.  per-pid:@.";
  Format.printf "    %-5s %-10s %10s %14s %10s %8s  %s@." "pid" "workload" "calls"
    "verif-cycles" "words" "denies" "stop";
  List.iter
    (fun r ->
      Format.printf "    %-5d %-10s %10d %14d %10d %8d  %s@." r.pr_pid r.pr_workload
        r.pr_calls r.pr_cycles r.pr_alloc r.pr_reasons.(deny_idx) r.pr_stop)
    rows;
  let snaps = Telemetry.snapshots tel in
  if snaps <> [] then
    Format.printf "@.  snapshots: %d rows at interval %d cycles (--snapshots-out to export)@."
      (List.length snaps) interval;
  match health with Some h -> print_health h | None -> ()

let run procs workloads_csv scale key_hex os json interval snapshots_out no_vcache no_precomp
    no_cfpre rules_spec alerts_out audit_out verbose_stats =
  let ( let* ) = Result.bind in
  let result =
    let* () = if procs < 1 then Error "--procs must be >= 1" else Ok () in
    let* () = if scale < 1 then Error "--scale must be >= 1" else Ok () in
    let* personality = Common.personality_of_string os in
    let* key = Common.key_of_hex key_hex in
    let names = List.filter (fun s -> s <> "") (String.split_on_char ',' workloads_csv) in
    let* () = if names = [] then Error "--workloads must name at least one workload" else Ok () in
    let* rules =
      match rules_spec with
      | None -> Ok None
      | Some spec ->
        let* rules = load_rules spec in
        Ok (Some rules)
    in
    (* --audit-out: chain every audit entry (execve, violations and the
       alerts recorded below) in a tamper-evident CMAC log, keyed like the
       checker, and export it after the run — asc_run's convention. *)
    let authlog =
      match audit_out with Some _ -> Some (Asc_obs.Authlog.create ~key ()) | None -> None
    in
    let* kernel, tel, rows, machine_cycles, minor_words, vcache, precomp, cfpre =
      run_fleet ~personality ~key ~procs ~scale ~interval ~no_vcache ~no_precomp ~no_cfpre
        ?authlog names
    in
    (match snapshots_out with
     | Some path -> Common.write_file path (Telemetry.snapshots_jsonl tel)
     | None -> ());
    (* Evaluate the SLO rules over the run's snapshot rows (oldest first,
       one per emitter interval) and route every transition both to the
       structured JSONL stream and — as Alert audit entries — into the
       kernel's audit funnel, where the authlog chains them. *)
    let health =
      match rules with
      | None -> None
      | Some rules ->
        let engine = Health.create rules in
        let trs = Health.observe_all engine (Telemetry.snapshots tel) in
        List.iter
          (fun (tr : Health.transition) ->
            Kernel.record_alert kernel ~pid:0 ~program:"fleet" ~rule:tr.Health.tr_rule
              ~event:(Health.event_label tr.Health.tr_event) ~ts:tr.Health.tr_ts
              ~value:tr.Health.tr_value ~threshold:tr.Health.tr_threshold)
          trs;
        (match alerts_out with
         | Some path ->
           Common.write_file path
             (String.concat ""
                (List.map
                   (fun tr -> Json.to_string (Health.transition_to_json tr) ^ "\n")
                   trs))
         | None -> ());
        Some (engine, trs)
    in
    if verbose_stats then begin
      (match vcache with
       | Some vc ->
         Format.eprintf
           "[vcache: %d hits, %d misses, %d evictions, %d invalidations, %d cycles saved]@."
           (Asc_core.Vcache.hits vc) (Asc_core.Vcache.misses vc)
           (Asc_core.Vcache.evictions vc) (Asc_core.Vcache.invalidations vc)
           (Asc_core.Vcache.cycles_saved vc)
       | None -> ());
      (match precomp with
       | Some pc ->
         Format.eprintf
           "[precomp: %d hits, %d resumes, %d fallbacks, %d compiles, %d invalidations, %d \
            cycles saved]@."
           (Asc_core.Precomp.hits pc) (Asc_core.Precomp.resumes pc)
           (Asc_core.Precomp.fallbacks pc) (Asc_core.Precomp.compiles pc)
           (Asc_core.Precomp.invalidations pc) (Asc_core.Precomp.cycles_saved pc)
       | None -> ());
      (match cfpre with
       | Some cf ->
         Format.eprintf
           "[cfpre: %d hits, %d misses, %d fallbacks, %d compiles, %d invalidations, %d \
            cycles saved]@."
           (Asc_core.Cfpre.hits cf) (Asc_core.Cfpre.misses cf)
           (Asc_core.Cfpre.fallbacks cf) (Asc_core.Cfpre.compiles cf)
           (Asc_core.Cfpre.invalidations cf) (Asc_core.Cfpre.cycles_saved cf)
       | None -> ())
    end;
    (match (authlog, audit_out) with
     | Some log, Some path ->
       Asc_obs.Authlog.export_file log path;
       Format.eprintf "[audit chain: %d records -> %s, head %s]@."
         (Asc_obs.Authlog.appended log) path
         (Asc_obs.Authlog.hex (Asc_obs.Authlog.head_mac log))
     | _ -> ());
    if json then
      let doc =
        fleet_json ~procs ~scale ~names ~interval ?health tel rows machine_cycles minor_words
      in
      let* s = self_check doc in
      print_endline s;
      Ok 0
    else begin
      print_human ~procs ~scale ~names ~interval ?health tel rows machine_cycles minor_words;
      Ok 0
    end
  in
  match result with
  | Ok code -> code
  | Error e ->
    Format.eprintf "asc-top: %s@." e;
    1

let procs_arg =
  Arg.(value & opt int 6 & info [ "procs" ] ~docv:"N"
         ~doc:"Number of processes in the simulated fleet (round-robin over the workloads).")

let workloads_arg =
  Arg.(value & opt string "pyramid" & info [ "workloads" ] ~docv:"NAMES"
         ~doc:"Comma-separated workload names from the registry (e.g. pyramid,gzip,tar).")

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

let key_arg =
  Arg.(value & opt string "000102030405060708090a0b0c0d0e0f"
       & info [ "k"; "key" ] ~docv:"HEX" ~doc:"128-bit MAC key used to install and verify.")

let os_arg =
  Arg.(value & opt string "linux" & info [ "os" ] ~docv:"OS" ~doc:"linux or openbsd.")

let json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the machine-readable fleet summary (schema self-checked) instead of \
               the human table.")

let interval_arg =
  Arg.(value & opt int 2_000_000 & info [ "interval" ] ~docv:"CYCLES"
         ~doc:"Snapshot emitter interval in virtual cycles (0 disables the time series).")

let snapshots_out_arg =
  Arg.(value & opt (some string) None & info [ "snapshots-out" ] ~docv:"FILE"
         ~doc:"Write the time-series snapshots as JSONL (one row per interval).")

let no_vcache_arg =
  Arg.(value & flag & info [ "no-vcache" ] ~doc:"Disable the verified-MAC cache.")

let no_precomp_arg =
  Arg.(value & flag & info [ "no-precomp" ] ~doc:"Disable the precompiled-site table.")

let no_cfpre_arg =
  Arg.(value & flag & info [ "no-cfpre" ]
         ~doc:"Disable the precompiled control-flow bitsets and amortized lbMAC chain.")

let rules_arg =
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"FILE"
         ~doc:"Evaluate fleet-health SLO rules over the telemetry snapshots: $(b,default) \
               for the compiled-in rules, or a JSON spec ({\"rules\": [...]}).")

let alerts_out_arg =
  Arg.(value & opt (some string) None & info [ "alerts-out" ] ~docv:"FILE"
         ~doc:"Write rule transitions (armed/disarmed/fired/cleared) as JSONL, one per line.")

let audit_out_arg =
  Arg.(value & opt (some string) None & info [ "audit-out" ] ~docv:"FILE"
         ~doc:"Chain audit entries (execve, violations, health alerts) in a tamper-evident \
               CMAC log and export it as JSONL.")

let verbose_stats_arg =
  Arg.(value & flag & info [ "verbose-stats" ]
         ~doc:"Print verification-cache and precompiled-policy statistics to stderr after \
               the run (asc-run's format).")

let cmd =
  let doc = "aggregate fleet telemetry from a simulated multi-process run" in
  Cmd.v (Cmd.info "asc-top" ~doc)
    Term.(
      const run $ procs_arg $ workloads_arg $ scale_arg $ key_arg $ os_arg $ json_arg
      $ interval_arg $ snapshots_out_arg $ no_vcache_arg $ no_precomp_arg $ no_cfpre_arg
      $ rules_arg
      $ alerts_out_arg $ audit_out_arg $ verbose_stats_arg)

let () = exit (Cmd.eval' cmd)
