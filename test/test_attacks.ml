(* The §4.1 / §5.5 attack experiments. Each attack must genuinely succeed
   against the unprotected system (the vulnerability is real) and be blocked
   by authenticated system calls. *)

let check_succeeded what = function
  | Attacks.Succeeded _ -> ()
  | o -> Alcotest.failf "%s: expected success, got %a" what Attacks.pp_outcome o

let check_blocked what = function
  | Attacks.Blocked _ -> ()
  | o -> Alcotest.failf "%s: expected block, got %a" what Attacks.pp_outcome o

let check_blocked_step what expected = function
  | Attacks.Blocked { Attacks.b_step = Some s; _ } ->
    if not (List.mem s expected) then
      Alcotest.failf "%s: blocked at %s, expected one of [%s]" what
        (Oskernel.Violation.step_name s)
        (String.concat "; " (List.map Oskernel.Violation.step_name expected))
  | Attacks.Blocked { Attacks.b_step = None; _ } ->
    Alcotest.failf "%s: blocked without a structured violation" what
  | o -> Alcotest.failf "%s: expected block, got %a" what Attacks.pp_outcome o

let test_shellcode_unprotected () =
  check_succeeded "shellcode vs unprotected" (Attacks.shellcode ~protected:false ())

let test_shellcode_blocked () =
  check_blocked "shellcode vs ASC" (Attacks.shellcode ~protected:true ())

let test_mimicry_unprotected () =
  check_succeeded "mimicry vs unprotected" (Attacks.mimicry ~protected:false ())

let test_mimicry_blocked () =
  check_blocked "mimicry vs ASC" (Attacks.mimicry ~protected:true ())

let test_ncd_unprotected () =
  check_succeeded "non-control-data vs unprotected"
    (Attacks.non_control_data ~protected:false ())

let test_ncd_blocked () =
  check_blocked "non-control-data vs ASC" (Attacks.non_control_data ~protected:true ())

let test_frankenstein_cross_blocked () =
  check_blocked_step "frankenstein cross-app" [ Oskernel.Violation.Control_flow ]
    (Attacks.frankenstein ~cross:true ())

let test_frankenstein_single_app_confined () =
  check_succeeded "frankenstein single-app chain" (Attacks.frankenstein ~cross:false ())

(* --- deny parity: the verified-MAC cache must not change any verdict --- *)

(* The cache only remembers *successful* verifications, so every attack must
   be blocked at the exact same violation step with it enabled. Each run*
   function already asserts the expected step internally; here we addition-
   ally compare the step against the cache-off run of the same attack. *)
let step_of what = function
  | Attacks.Blocked { Attacks.b_step = Some s; _ } -> s
  | o -> Alcotest.failf "%s: expected a structured block, got %a" what Attacks.pp_outcome o

let attack_triple :
    (string * (?use_vcache:bool -> ?use_precomp:bool -> ?use_cfpre:bool -> protected:bool -> unit -> Attacks.outcome))
    list =
  [ ("shellcode", Attacks.shellcode);
    ("mimicry", Attacks.mimicry);
    ("non-control-data", Attacks.non_control_data) ]

let test_vcache_deny_parity () =
  List.iter
    (fun ((name : string),
          (attack :
            ?use_vcache:bool -> ?use_precomp:bool -> ?use_cfpre:bool -> protected:bool -> unit -> Attacks.outcome)) ->
      let off = step_of (name ^ " (cache off)") (attack ~use_vcache:false ~protected:true ()) in
      let on = step_of (name ^ " (cache on)") (attack ~use_vcache:true ~protected:true ()) in
      Alcotest.(check string)
        (name ^ ": same violation step with the vcache enabled")
        (Oskernel.Violation.step_name off)
        (Oskernel.Violation.step_name on))
    attack_triple

(* Same property for the precompiled-site table, armed on top of the vcache
   (the deployment configuration): its fast path only proves calls whose
   rebuilt MAC matches the supplied tag, so every attack must trip the
   identical step with it on. *)
let test_precomp_deny_parity () =
  List.iter
    (fun ((name : string),
          (attack :
            ?use_vcache:bool -> ?use_precomp:bool -> ?use_cfpre:bool -> protected:bool -> unit -> Attacks.outcome)) ->
      let off =
        step_of (name ^ " (precomp off)")
          (attack ~use_vcache:true ~use_precomp:false ~protected:true ())
      in
      let on =
        step_of (name ^ " (precomp on)")
          (attack ~use_vcache:true ~use_precomp:true ~protected:true ())
      in
      Alcotest.(check string)
        (name ^ ": same violation step with the precomp table enabled")
        (Oskernel.Violation.step_name off)
        (Oskernel.Violation.step_name on))
    attack_triple;
  let off =
    step_of "frankenstein cross (precomp off)"
      (Attacks.frankenstein ~use_precomp:false ~cross:true ())
  in
  let on =
    step_of "frankenstein cross (precomp on)"
      (Attacks.frankenstein ~use_precomp:true ~cross:true ())
  in
  Alcotest.(check string) "frankenstein cross: same step with the precomp table enabled"
    (Oskernel.Violation.step_name off)
    (Oskernel.Violation.step_name on);
  check_succeeded "frankenstein single-app chain (precomp on)"
    (Attacks.frankenstein ~use_precomp:true ~cross:false ())

let test_vcache_frankenstein_parity () =
  let off =
    step_of "frankenstein cross (cache off)"
      (Attacks.frankenstein ~use_vcache:false ~cross:true ())
  in
  let on =
    step_of "frankenstein cross (cache on)"
      (Attacks.frankenstein ~use_vcache:true ~cross:true ())
  in
  Alcotest.(check string) "frankenstein cross: same step with the vcache enabled"
    (Oskernel.Violation.step_name off)
    (Oskernel.Violation.step_name on);
  (* and the legal single-application chain still runs to completion *)
  check_succeeded "frankenstein single-app chain (cache on)"
    (Attacks.frankenstein ~use_vcache:true ~cross:false ())

(* --- the classification table (§4.1 forensic signatures) --- *)

(* Every step an attack may legitimately trip must classify to the attack's
   own name — the table asc_audit's classifier implements. *)
let test_classification_table () =
  List.iter
    (fun (name, steps) ->
      List.iter
        (fun step ->
          Alcotest.(check string)
            (Printf.sprintf "%s via %s" name (Oskernel.Violation.step_name step))
            name
            (Oskernel.Violation.attack_class step))
        steps)
    Attacks.forensic_expectations;
  (* and the remaining steps map to their own documented classes *)
  Alcotest.(check string) "pattern is non-control-data" "non-control-data"
    (Oskernel.Violation.attack_class Oskernel.Violation.Pattern);
  Alcotest.(check string) "ext is non-control-data" "non-control-data"
    (Oskernel.Violation.attack_class Oskernel.Violation.Ext);
  Alcotest.(check string) "normalization is the symlink race" "symlink-race"
    (Oskernel.Violation.attack_class Oskernel.Violation.Normalization)

(* The full forensic pipeline: each protected attack leaves a verifiable
   tamper-evident chain whose violation record classifies the attack. *)
let test_forensic_runs () =
  let runs = Attacks.forensic_runs () in
  Alcotest.(check int) "three attacks" 3 (List.length runs);
  List.iter
    (fun (name, kernel, outcome) ->
      check_blocked name outcome;
      match Oskernel.Kernel.authlog kernel with
      | None -> Alcotest.failf "%s: no authlog attached" name
      | Some log ->
        let exported = Asc_obs.Authlog.export_string log in
        (match Asc_obs.Authlog.verify_string ~key:Attacks.key exported with
         | Ok n -> Alcotest.(check bool) (name ^ ": chain non-empty") true (n > 0)
         | Error e -> Alcotest.failf "%s: chain broken: %a" name Asc_obs.Authlog.pp_verify_error e);
        let violation_class =
          List.find_map
            (function
              | Oskernel.Kernel.Violation { violation = v; _ } ->
                Some (Oskernel.Violation.attack_class v.Oskernel.Violation.v_step)
              | _ -> None)
            (Oskernel.Kernel.audit_log kernel)
        in
        Alcotest.(check (option string)) (name ^ ": classified from the record") (Some name)
          violation_class)
    runs

let () =
  Alcotest.run "attacks"
    [ ( "attacks",
        [ Alcotest.test_case "shellcode succeeds unprotected" `Quick test_shellcode_unprotected;
          Alcotest.test_case "shellcode blocked by ASC" `Quick test_shellcode_blocked;
          Alcotest.test_case "mimicry succeeds unprotected" `Quick test_mimicry_unprotected;
          Alcotest.test_case "mimicry blocked by ASC" `Quick test_mimicry_blocked;
          Alcotest.test_case "non-control-data succeeds unprotected" `Quick test_ncd_unprotected;
          Alcotest.test_case "non-control-data blocked by ASC" `Quick test_ncd_blocked;
          Alcotest.test_case "frankenstein cross-app blocked" `Quick
            test_frankenstein_cross_blocked;
          Alcotest.test_case "frankenstein confined to one app" `Quick
            test_frankenstein_single_app_confined;
          Alcotest.test_case "vcache deny parity (shellcode/mimicry/ncd)" `Quick
            test_vcache_deny_parity;
          Alcotest.test_case "vcache deny parity (frankenstein)" `Quick
            test_vcache_frankenstein_parity;
          Alcotest.test_case "precomp deny parity (full suite)" `Quick
            test_precomp_deny_parity;
          Alcotest.test_case "classification table" `Quick test_classification_table;
          Alcotest.test_case "forensic runs verify + classify" `Quick test_forensic_runs ] ) ]
