(* The verified-MAC cache (Asc_core.Vcache).

   The cache is a pure accelerator: it may only skip CMAC recomputation for
   byte-identical successful verifications, never change a verdict. The
   differential properties here run randomly generated programs — and random
   byte mutations of an installed binary — on a cache-on and a cache-off
   kernel and require identical observable behavior (exit status, stdout,
   syscall trace, audit verdicts), with the cached run never costing more
   cycles. The unit tests pin the lifecycle: LRU eviction at capacity,
   invalidation on execve and process teardown, and pid isolation. *)

open Oskernel
module Cmac = Asc_crypto.Cmac
module Vcache = Asc_core.Vcache

let key = Cmac.of_raw "vcache-test-key!"
let personality = Personality.linux

(* ---- unit tests on the cache proper ---- *)

let mac_a = String.make 16 'a'
let mac_b = String.make 16 'b'
let ckey ?(pid = 1) site = Vcache.Call { pid; site; encoded = Printf.sprintf "enc%d" site }

let test_lru_eviction () =
  let vc = Vcache.create ~capacity:2 ~registry:(Asc_obs.Metrics.create ()) () in
  Vcache.remember vc (ckey 1) ~mac:mac_a;
  Vcache.remember vc (ckey 2) ~mac:mac_a;
  Alcotest.(check int) "full" 2 (Vcache.size vc);
  (* touch entry 1 so entry 2 becomes least-recently-used *)
  Alcotest.(check bool) "entry 1 hits" true (Vcache.check vc (ckey 1) ~mac:mac_a);
  Vcache.remember vc (ckey 3) ~mac:mac_a;
  Alcotest.(check int) "still bounded" 2 (Vcache.size vc);
  Alcotest.(check int) "one eviction" 1 (Vcache.evictions vc);
  Alcotest.(check bool) "LRU entry 2 evicted" false (Vcache.check vc (ckey 2) ~mac:mac_a);
  Alcotest.(check bool) "entry 1 survives" true (Vcache.check vc (ckey 1) ~mac:mac_a);
  Alcotest.(check bool) "entry 3 present" true (Vcache.check vc (ckey 3) ~mac:mac_a)

let test_key_covers_tag () =
  (* the supplied tag is part of the entry: a tampered MAC misses even when
     the covered bytes match, and tampered bytes miss under the right MAC *)
  let vc = Vcache.create ~capacity:8 ~registry:(Asc_obs.Metrics.create ()) () in
  Vcache.remember vc (ckey 1) ~mac:mac_a;
  Alcotest.(check bool) "same bytes, same tag" true (Vcache.check vc (ckey 1) ~mac:mac_a);
  Alcotest.(check bool) "same bytes, forged tag" false (Vcache.check vc (ckey 1) ~mac:mac_b);
  Alcotest.(check bool) "tampered bytes" false
    (Vcache.check vc (Vcache.Call { pid = 1; site = 1; encoded = "ENC1" }) ~mac:mac_a);
  let s = Vcache.Str { pid = 1; bytes = "/bin/ls" } in
  Vcache.remember vc s ~mac:mac_a;
  Alcotest.(check bool) "string hit" true (Vcache.check vc s ~mac:mac_a);
  Alcotest.(check bool) "tampered string" false
    (Vcache.check vc (Vcache.Str { pid = 1; bytes = "/bin/sh" }) ~mac:mac_a)

let test_pid_isolation () =
  (* invalidating pid 1 must drop exactly its entries: a recycled pid 1
     starts cold while pid 2's warm entries are untouched *)
  let vc = Vcache.create ~capacity:8 ~registry:(Asc_obs.Metrics.create ()) () in
  Vcache.remember vc (ckey ~pid:1 1) ~mac:mac_a;
  Vcache.remember vc (ckey ~pid:1 2) ~mac:mac_a;
  Vcache.remember vc (ckey ~pid:2 1) ~mac:mac_a;
  Vcache.remember vc (Vcache.Str { pid = 1; bytes = "s" }) ~mac:mac_a;
  Vcache.invalidate_pid vc 1;
  Alcotest.(check int) "three entries dropped" 3 (Vcache.invalidations vc);
  Alcotest.(check int) "pid 2's entry remains" 1 (Vcache.size vc);
  Alcotest.(check bool) "pid 1 call cold" false (Vcache.check vc (ckey ~pid:1 1) ~mac:mac_a);
  Alcotest.(check bool) "pid 1 string cold" false
    (Vcache.check vc (Vcache.Str { pid = 1; bytes = "s" }) ~mac:mac_a);
  Alcotest.(check bool) "pid 2 still warm" true (Vcache.check vc (ckey ~pid:2 1) ~mac:mac_a)

let test_capacity_validated () =
  Alcotest.check_raises "capacity 0 refused"
    (Invalid_argument "Vcache.create: capacity must be >= 1") (fun () ->
      ignore (Vcache.create ~capacity:0 ~registry:(Asc_obs.Metrics.create ()) ()))

(* ---- kernel-level lifecycle: execve and teardown invalidation ---- *)

let install ?(program_id = 1) ~program src =
  let img = Minic.Driver.compile_exn ~personality src in
  match
    Asc_core.Installer.install ~key ~personality
      ~options:{ Asc_core.Installer.default_options with program_id }
      ~program img
  with
  | Ok inst -> inst.Asc_core.Installer.image
  | Error e -> Alcotest.failf "install %s: %s" program e

let run_image ?(use_vcache = false) ?(capacity = 1024) ?(setup = fun _ -> ()) image =
  let kernel = Kernel.create ~personality () in
  kernel.Kernel.tracing <- true;
  let vcache =
    if use_vcache then
      Some (Vcache.create ~capacity ~registry:(Kernel.metrics kernel) ())
    else None
  in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ?vcache ()));
  setup kernel;
  let proc = Kernel.spawn kernel ~program:"vt" image in
  let stop = Kernel.run kernel proc ~max_cycles:200_000_000 in
  (kernel, proc, stop, vcache)

let test_execve_invalidation () =
  (* A warms the cache, then execs B: A's entries were verified against an
     image that is gone, so the exec must flush them (and B then warms its
     own). The invalidations counter proves the flush happened. *)
  let b_img = install ~program_id:2 ~program:"progB" "int main() { getpid(); return 4; }" in
  let a_img =
    install ~program_id:1 ~program:"progA"
      {|
int main() {
  int k;
  for (k = 0; k < 5; k = k + 1) { getpid(); }
  execve("/bin/progB", 0, 0);
  return 1;
}
|}
  in
  let _, _, stop, vcache =
    run_image ~use_vcache:true
      ~setup:(fun kernel -> Kernel.install_binary kernel ~path:"/bin/progB" b_img)
      a_img
  in
  (match stop with
   | Svm.Machine.Halted 4 -> ()
   | Svm.Machine.Killed r -> Alcotest.failf "killed: %s" r
   | _ -> Alcotest.fail "execve chain did not reach B's exit");
  let vc = Option.get vcache in
  Alcotest.(check bool) "the loop hit the cache" true (Vcache.hits vc > 0);
  Alcotest.(check bool) "exec flushed the pid's entries" true (Vcache.invalidations vc > 0)

let test_teardown_invalidation () =
  (* process exit drops the pid's entries, so a later process that happens
     to get the same pid can never see this image's warm cache *)
  let img =
    install ~program:"loop"
      "int main() { int k; for (k = 0; k < 8; k = k + 1) { getpid(); } return 0; }"
  in
  let _, _, stop, vcache = run_image ~use_vcache:true img in
  (match stop with
   | Svm.Machine.Halted 0 -> ()
   | _ -> Alcotest.fail "run did not halt cleanly");
  let vc = Option.get vcache in
  Alcotest.(check bool) "the run populated the cache" true (Vcache.hits vc > 0);
  Alcotest.(check int) "teardown left it empty" 0 (Vcache.size vc)

let test_tiny_capacity_still_sound () =
  (* a 1-entry cache thrashes (every distinct site evicts the previous one)
     but must stay sound and cheap: same behavior, no extra cycles *)
  let src =
    {|
int main() {
  int k;
  for (k = 0; k < 6; k = k + 1) { getpid(); write(1, "x", 1); }
  return 0;
}
|}
  in
  let img = install ~program:"thrash" src in
  let _, p_off, stop_off, _ = run_image ~use_vcache:false img in
  let _, p_on, stop_on, vcache = run_image ~use_vcache:true ~capacity:1 img in
  (match (stop_off, stop_on) with
   | Svm.Machine.Halted a, Svm.Machine.Halted b -> Alcotest.(check int) "same exit" a b
   | _ -> Alcotest.fail "runs did not halt");
  Alcotest.(check string) "same stdout" (Kernel.stdout_of p_off) (Kernel.stdout_of p_on);
  let vc = Option.get vcache in
  Alcotest.(check bool) "thrashing evicts" true (Vcache.evictions vc > 0);
  Alcotest.(check bool) "never more cycles than cache-off" true
    (p_on.Process.machine.Svm.Machine.cycles <= p_off.Process.machine.Svm.Machine.cycles)

let test_hot_loop_accounting () =
  (* the cycles the cached run saves are exactly the cycles-saved gauge:
     every divergence from the slow path is accounted, nothing else moved *)
  let img =
    install ~program:"hot"
      "int main() { int k; for (k = 0; k < 50; k = k + 1) { getpid(); } return 0; }"
  in
  let _, p_off, _, _ = run_image ~use_vcache:false img in
  let _, p_on, _, vcache = run_image ~use_vcache:true img in
  let vc = Option.get vcache in
  let off = p_off.Process.machine.Svm.Machine.cycles in
  let on = p_on.Process.machine.Svm.Machine.cycles in
  Alcotest.(check bool) "cache saves cycles" true (on < off);
  Alcotest.(check int) "savings fully accounted" (off - on) (Vcache.cycles_saved vc)

(* ---- differential property: cache on vs off on random programs ---- *)

let loop_counter = ref 0

let fresh () =
  incr loop_counter;
  Printf.sprintf "u%d" !loop_counter

(* Small terminating MiniC programs biased toward repeated syscalls (loops
   around call statements) so the cache actually gets traffic. *)
let gen_program =
  let open QCheck.Gen in
  let var i = Printf.sprintf "v%d" (i mod 3) in
  let gen_call =
    let* c = int_bound 5 in
    let u = fresh () in
    return
      (match c with
       | 0 -> "getpid();"
       | 1 -> "write(1, \"ab\", 2);"
       | 2 ->
         Printf.sprintf
           "{ int f%s = open(\"/tmp/v\", 65, 420); if (f%s >= 0) { write(f%s, \"y\", 1); close(f%s); } }"
           u u u u
       | 3 -> "access(\"/etc/q\", 4);"
       | 4 -> Printf.sprintf "{ char t%s[16]; gettimeofday(t%s, 0); }" u u
       | _ -> "puts_str(\"t\\n\");")
  in
  let gen_stmt =
    oneof
      [ (let* i = int_bound 2 in
         let* v = int_bound 999 in
         return (Printf.sprintf "%s = %s + %d;" (var i) (var ((i + 1) mod 3)) v));
        gen_call;
        (let* body = gen_call in
         let k = fresh () in
         return
           (Printf.sprintf "{ int %s; for (%s = 0; %s < 4; %s = %s + 1) { %s } }" k k k k k
              body)) ]
  in
  let* stmts = list_size (int_range 1 10) gen_stmt in
  return
    (Printf.sprintf "int v0; int v1; int v2;\nint main() {\n  %s\n  return v0 %% 100;\n}"
       (String.concat "\n  " stmts))

let arbitrary_program = QCheck.make ~print:(fun s -> s) gen_program

(* Everything a run observably did: how it stopped, what it printed, every
   trace entry, and the audit verdicts (violation steps only — forensic
   snapshots embed cycle counts, which legitimately differ between cache
   modes). *)
let observed kernel (proc : Process.t) stop =
  let verdicts =
    List.filter_map
      (function
        | Kernel.Violation { violation = v; _ } -> Some ("v:" ^ Violation.step_name v.Violation.v_step)
        | Kernel.Denied { reason; _ } -> Some ("d:" ^ reason)
        | Kernel.Execve { path; _ } -> Some ("e:" ^ path)
        | Kernel.Alert _ -> None)
      (Kernel.audit_log kernel)
  in
  (stop, Kernel.stdout_of proc, Kernel.trace kernel, verdicts)

let prop_differential =
  QCheck.Test.make ~name:"cache on/off runs are observably identical" ~count:40
    arbitrary_program (fun src ->
      match Minic.Driver.compile ~personality src with
      | Error e -> QCheck.Test.fail_reportf "generated program does not compile: %s" e
      | Ok img ->
        (match Asc_core.Installer.install ~key ~personality ~program:"vt" img with
         | Error e -> QCheck.Test.fail_reportf "install failed: %s" e
         | Ok inst ->
           let image = inst.Asc_core.Installer.image in
           let k_off, p_off, stop_off, _ = run_image ~use_vcache:false image in
           let k_on, p_on, stop_on, vcache = run_image ~use_vcache:true image in
           let obs_off = observed k_off p_off stop_off in
           let obs_on = observed k_on p_on stop_on in
           if obs_off <> obs_on then
             QCheck.Test.fail_reportf "cache-on run diverged from cache-off";
           (match stop_off with
            | Svm.Machine.Killed r -> QCheck.Test.fail_reportf "false alarm: %s" r
            | _ -> ());
           let vc = Option.get vcache in
           let off = p_off.Process.machine.Svm.Machine.cycles in
           let on = p_on.Process.machine.Svm.Machine.cycles in
           if on > off then
             QCheck.Test.fail_reportf "cache-on run cost more cycles (%d > %d)" on off;
           off - on = Vcache.cycles_saved vc))

(* ---- differential property: mutations deny identically ---- *)

let fixed_victim =
  lazy
    (let src =
       {|
int main() {
  int k;
  for (k = 0; k < 3; k = k + 1) {
    int fd = open("/tmp/f", 65, 420);
    write(fd, "fuzzdata", 8);
    close(fd);
  }
  puts_str("done\n");
  return 0;
}
|}
     in
     let img = Minic.Driver.compile_exn ~personality src in
     match Asc_core.Installer.install ~key ~personality ~program:"fuzz" img with
     | Ok inst -> Svm.Obj_file.serialize inst.Asc_core.Installer.image
     | Error e -> failwith e)

let run_mutated ~use_vcache img =
  let kernel = Kernel.create ~personality () in
  let vcache =
    if use_vcache then Some (Vcache.create ~registry:(Kernel.metrics kernel) ()) else None
  in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ?vcache ()));
  match Kernel.spawn kernel ~program:"mut" img with
  | exception Invalid_argument _ -> None (* image refused before any code ran *)
  | proc ->
    let stop = Kernel.run kernel proc ~max_cycles:200_000_000 in
    let steps =
      List.filter_map
        (function
          | Kernel.Violation { violation = v; _ } -> Some (Violation.step_name v.Violation.v_step)
          | _ -> None)
        (Kernel.audit_log kernel)
    in
    Some (stop, Kernel.stdout_of proc, steps)

let prop_mutation_deny_parity =
  QCheck.Test.make ~name:"mutations trip identical verdicts cache on/off" ~count:200
    QCheck.(pair small_nat (int_bound 255))
    (fun (pos, byte) ->
      let serialized = Lazy.force fixed_victim in
      let b = Bytes.of_string serialized in
      let pos = 8 + (pos * 131 mod (Bytes.length b - 8)) in
      Bytes.set b pos (Char.chr byte);
      match Svm.Obj_file.parse (Bytes.to_string b) with
      | Error _ -> true (* corrupt image rejected at parse time *)
      | Ok img ->
        (match (run_mutated ~use_vcache:false img, run_mutated ~use_vcache:true img) with
         | None, None -> true
         | Some (Svm.Machine.Cycle_limit, _, _), Some _
         | Some _, Some (Svm.Machine.Cycle_limit, _, _) ->
           true (* a runaway loop hits the budget at different points *)
         | Some a, Some b ->
           if a = b then true
           else QCheck.Test.fail_reportf "mutation verdict diverged cache on/off"
         | Some _, None | None, Some _ ->
           QCheck.Test.fail_reportf "image load diverged cache on/off"))

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_differential; prop_mutation_deny_parity ]

let () =
  Alcotest.run "vcache"
    [ ( "unit",
        [ Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
          Alcotest.test_case "key covers bytes and tag" `Quick test_key_covers_tag;
          Alcotest.test_case "pid isolation on invalidate" `Quick test_pid_isolation;
          Alcotest.test_case "capacity validated" `Quick test_capacity_validated ] );
      ( "lifecycle",
        [ Alcotest.test_case "execve flushes the pid" `Quick test_execve_invalidation;
          Alcotest.test_case "teardown empties the cache" `Quick test_teardown_invalidation;
          Alcotest.test_case "tiny capacity thrashes soundly" `Quick
            test_tiny_capacity_still_sound;
          Alcotest.test_case "hot loop savings accounted" `Quick test_hot_loop_accounting ] );
      ("differential", props) ]
