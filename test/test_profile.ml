(* Tests for the shadow-call-stack profiler: the Profile tree itself, the
   folded-stacks exporter and parser, and the end-to-end invariant that a
   profiled run accounts for exactly the cycles the machine retires —
   application instructions, kernel dispatch and the checker's per-step
   verification charges alike. *)

open Oskernel
module Profile = Asc_obs.Profile
module Metrics = Asc_obs.Metrics

let sym = function
  | Profile.Label s -> s
  | Profile.Pc a -> Printf.sprintf "0x%x" a

(* --- the tree --- *)

let test_enter_charge_leave () =
  let p = Profile.create () in
  Profile.charge p 5;
  Profile.enter p (Profile.Label "main");
  Profile.charge p 10;
  Profile.enter p (Profile.Pc 0x100);
  Profile.charge p 7;
  Profile.leave p;
  Profile.enter p (Profile.Pc 0x100);
  Profile.charge p 3;
  Profile.leave p;
  Profile.leave p;
  Alcotest.(check int) "total" 25 (Profile.total_cycles p);
  Alcotest.(check int) "depth back at root" 0 (Profile.depth p);
  Alcotest.(check
              (list (pair (list string) int)))
    "folded stacks"
    [ ([ "(root)" ], 5); ([ "main" ], 10); ([ "main"; "0x100" ], 10) ]
    (Profile.folded ~symbolize:sym p);
  match Profile.top ~symbolize:sym p with
  | rows ->
    let find name = List.find (fun r -> r.Profile.r_name = name) rows in
    let m = find "main" in
    Alcotest.(check int) "main calls" 1 m.Profile.r_calls;
    Alcotest.(check int) "main self" 10 m.Profile.r_self;
    Alcotest.(check int) "main total" 20 m.Profile.r_total;
    let c = find "0x100" in
    Alcotest.(check int) "child called twice" 2 c.Profile.r_calls;
    Alcotest.(check int) "child self = total" c.Profile.r_self c.Profile.r_total

let test_leave_at_root_is_noop () =
  let p = Profile.create () in
  Profile.leave p;
  Profile.leave p;
  Profile.charge p 1;
  Alcotest.(check int) "still accounted" 1 (Profile.total_cycles p);
  Alcotest.(check int) "depth" 0 (Profile.depth p)

let test_charge_label () =
  let p = Profile.create () in
  Profile.enter p (Profile.Label "write@site_0x40");
  Profile.charge_label p "<kernel:call_mac>" 1520;
  Profile.charge_label p "<kernel:call_mac>" 1520;
  Profile.charge p 900;
  Profile.leave p;
  Alcotest.(check int) "depth" 0 (Profile.depth p);
  Alcotest.(check
              (list (pair (list string) int)))
    "labelled child accumulates"
    [ ([ "write@site_0x40" ], 900);
      ([ "write@site_0x40"; "<kernel:call_mac>" ], 3040) ]
    (Profile.folded ~symbolize:sym p)

let test_recursion_total_counted_once () =
  let p = Profile.create () in
  (* f -> f -> f, 10 cycles at each level *)
  Profile.enter p (Profile.Pc 1);
  Profile.charge p 10;
  Profile.enter p (Profile.Pc 1);
  Profile.charge p 10;
  Profile.enter p (Profile.Pc 1);
  Profile.charge p 10;
  Profile.leave p;
  Profile.leave p;
  Profile.leave p;
  let rows = Profile.top ~symbolize:sym p in
  let f = List.find (fun r -> r.Profile.r_name = "0x1") rows in
  Alcotest.(check int) "three activations" 3 f.Profile.r_calls;
  Alcotest.(check int) "self sums levels" 30 f.Profile.r_self;
  Alcotest.(check int) "recursive total not double-counted" 30 f.Profile.r_total

let test_reset_stack () =
  let p = Profile.create () in
  Profile.enter p (Profile.Pc 1);
  Profile.enter p (Profile.Pc 2);
  Alcotest.(check int) "depth 2" 2 (Profile.depth p);
  Profile.reset_stack p;
  Alcotest.(check int) "depth 0" 0 (Profile.depth p);
  Profile.charge p 4;
  Alcotest.(check
              (list (pair (list string) int)))
    "charges land at root after reset"
    [ ([ "(root)" ], 4) ]
    (Profile.folded ~symbolize:sym p)

(* --- the alloc plane of the tree --- *)

let test_alloc_tracking () =
  let p = Profile.create () in
  Alcotest.(check bool) "alloc sampling off by default" false (Profile.alloc_tracked p);
  Alcotest.(check int) "no words charged while off" 0 (Profile.total_alloc_words p);
  Profile.track_alloc p;
  (* read the reference point immediately: track_alloc arms the mark and
     minor_words does not allocate, so mark and a0 coincide — anything
     allocated after this line (including the checks below) is charged *)
  let a0 = Profile.minor_words () in
  Alcotest.(check bool) "armed" true (Profile.alloc_tracked p);
  Profile.enter p (Profile.Label "f");
  let junk = Sys.opaque_identity (Array.make 100 0) in
  ignore (Sys.opaque_identity junk.(0));
  Profile.leave p;
  Profile.sample_alloc p;
  let a1 = Profile.minor_words () in
  (* telescoping conservation: everything allocated between the first and
     last sample is charged to exactly one frame *)
  Alcotest.(check int) "charged words = machine-scope delta" (a1 - a0)
    (Profile.total_alloc_words p);
  let folded = Profile.folded_alloc ~symbolize:sym p in
  let sum = List.fold_left (fun acc (_, w) -> acc + w) 0 folded in
  Alcotest.(check int) "folded words sum to total" (Profile.total_alloc_words p) sum;
  (* the 101-word array was allocated inside f's span, so f's frame owns it *)
  let f_words =
    List.fold_left
      (fun acc (stack, w) -> if List.mem "f" stack then acc + w else acc)
      0 folded
  in
  Alcotest.(check bool) "array charged to the live frame" true (f_words >= 101)

(* --- folded text round-trip --- *)

let test_folded_roundtrip () =
  let p = Profile.create () in
  Profile.charge p 2;
  Profile.enter p (Profile.Label "main");
  Profile.charge p 11;
  Profile.enter p (Profile.Label "write@site_0x1a0");
  Profile.charge_label p "<kernel:call_mac>" 1520;
  Profile.charge p 900;
  Profile.leave p;
  Profile.leave p;
  let stacks = Profile.folded ~symbolize:sym p in
  let text = Profile.folded_string ~symbolize:sym p in
  (match Profile.parse_folded text with
   | Ok reparsed ->
     Alcotest.(check (list (pair (list string) int))) "round-trip" stacks reparsed
   | Error e -> Alcotest.failf "parse_folded failed: %s" e);
  let sum = List.fold_left (fun acc (_, c) -> acc + c) 0 stacks in
  Alcotest.(check int) "stacks sum to total" (Profile.total_cycles p) sum

let test_parse_folded_errors () =
  let bad =
    [ "main;f";              (* no count *)
      "main;f x";            (* non-numeric count *)
      "main;f -3";           (* negative count *)
      "main;;f 10";          (* empty frame *)
      " 10" ]                (* empty stack *)
  in
  List.iter
    (fun s ->
      match Profile.parse_folded s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    bad;
  match Profile.parse_folded "a;b 1\n\nc 2\n" with
  | Ok [ ([ "a"; "b" ], 1); ([ "c" ], 2) ] -> ()
  | Ok _ -> Alcotest.fail "unexpected parse"
  | Error e -> Alcotest.failf "blank lines should be skipped: %s" e

(* --- end-to-end: profiled authenticated run --- *)

let key = Asc_crypto.Cmac.of_raw "0123456789abcdef"

let compile_workload name =
  let personality = Personality.linux in
  match Workloads.Registry.by_name ~scale:1 name with
  | None -> Alcotest.failf "workload %s missing" name
  | Some w -> (w, Workloads.Registry.compile ~personality w)

let profiled_run () =
  let personality = Personality.linux in
  let w, img = compile_workload "calc" in
  let inst =
    match
      Asc_core.Installer.install ~key ~personality ~program:w.Workloads.Registry.name img
    with
    | Ok i -> i
    | Error e -> Alcotest.failf "install failed: %s" e
  in
  let kernel = Kernel.create ~personality () in
  w.Workloads.Registry.setup kernel;
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  let proc =
    Kernel.spawn kernel ~stdin:w.Workloads.Registry.stdin
      ~program:w.Workloads.Registry.name inst.Asc_core.Installer.image
  in
  let prof = Profile.create () in
  proc.Process.machine.Svm.Machine.profile <- Some prof;
  let stop = Kernel.run kernel proc ~max_cycles:200_000_000 in
  (kernel, proc, prof, stop)

let test_total_cycles_invariant () =
  let _, proc, prof, stop = profiled_run () in
  (match stop with
   | Svm.Machine.Halted 0 -> ()
   | _ -> Alcotest.fail "calc did not halt cleanly");
  let m = proc.Process.machine in
  Alcotest.(check int) "profiler accounts every retired cycle"
    m.Svm.Machine.cycles (Profile.total_cycles prof);
  let stacks = Profile.folded ~symbolize:sym prof in
  Alcotest.(check bool) "non-empty" true (stacks <> []);
  let sum = List.fold_left (fun acc (_, c) -> acc + c) 0 stacks in
  Alcotest.(check int) "folded sums to the same total" m.Svm.Machine.cycles sum;
  Alcotest.(check bool) "kernel verification frames present" true
    (List.exists (fun (stack, _) -> List.mem "<kernel:call_mac>" stack) stacks)

let test_checker_cycles_match_kernel_frames () =
  let kernel, _, prof, _ = profiled_run () in
  (* the <kernel:step> verification frames must sum to exactly the
     checker's own per-step counters. <kernel:execve> (policy reload) and
     <kernel:telemetry> (the plane's per-call recording charge) are
     kernel work but not verification, so they stay outside the Table 4
     decomposition on both sides. *)
  let checker_total =
    match Metrics.value (Kernel.metrics kernel) "checker.cycles.total" with
    | Some v -> v
    | None -> Alcotest.fail "checker counters missing"
  in
  let frame_total =
    List.fold_left
      (fun acc (stack, c) ->
        match List.rev stack with
        | leaf :: _
          when String.length leaf > 8
               && String.sub leaf 0 8 = "<kernel:"
               && leaf <> "<kernel:execve>"
               && leaf <> "<kernel:telemetry>" ->
          acc + c
        | _ -> acc)
      0
      (Profile.folded ~symbolize:sym prof)
  in
  Alcotest.(check int) "<kernel:*> frames = checker cycle counters"
    checker_total frame_total

let test_unprofiled_run_identical () =
  (* attaching the profiler must not change the cycle accounting *)
  let _, proc1, _, _ = profiled_run () in
  let personality = Personality.linux in
  let w, img = compile_workload "calc" in
  let inst =
    match
      Asc_core.Installer.install ~key ~personality ~program:w.Workloads.Registry.name img
    with
    | Ok i -> i
    | Error e -> Alcotest.failf "install failed: %s" e
  in
  let kernel = Kernel.create ~personality () in
  w.Workloads.Registry.setup kernel;
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  let proc2 =
    Kernel.spawn kernel ~stdin:w.Workloads.Registry.stdin
      ~program:w.Workloads.Registry.name inst.Asc_core.Installer.image
  in
  ignore (Kernel.run kernel proc2 ~max_cycles:200_000_000);
  Alcotest.(check int) "same cycles with and without profiler"
    proc2.Process.machine.Svm.Machine.cycles proc1.Process.machine.Svm.Machine.cycles;
  Alcotest.(check int) "same instruction count"
    proc2.Process.machine.Svm.Machine.instrs proc1.Process.machine.Svm.Machine.instrs

(* --- QCheck: alloc conservation over random programs ---

   Over arbitrary terminating MiniC programs (biased toward syscalls so
   the checker's step regions get traffic), the words the armed profiler
   charges to its frames must equal the machine-scope Gc.minor_words
   delta exactly — the property that makes alloc flamegraphs trustworthy:
   nothing the host allocated during the run escapes attribution. *)

let loop_counter = ref 0

let fresh () =
  incr loop_counter;
  Printf.sprintf "q%d" !loop_counter

let gen_program =
  let open QCheck.Gen in
  let var i = Printf.sprintf "v%d" (i mod 3) in
  let gen_call =
    let* c = int_bound 5 in
    let u = fresh () in
    return
      (match c with
       | 0 -> "getpid();"
       | 1 -> "write(1, \"ab\", 2);"
       | 2 ->
         Printf.sprintf
           "{ int f%s = open(\"/tmp/v\", 65, 420); if (f%s >= 0) { write(f%s, \"y\", 1); close(f%s); } }"
           u u u u
       | 3 -> "access(\"/etc/q\", 4);"
       | 4 -> Printf.sprintf "{ char t%s[16]; gettimeofday(t%s, 0); }" u u
       | _ -> "puts_str(\"t\\n\");")
  in
  let gen_stmt =
    oneof
      [ (let* i = int_bound 2 in
         let* v = int_bound 999 in
         return (Printf.sprintf "%s = %s + %d;" (var i) (var ((i + 1) mod 3)) v));
        gen_call;
        (let* body = gen_call in
         let k = fresh () in
         return
           (Printf.sprintf "{ int %s; for (%s = 0; %s < 4; %s = %s + 1) { %s } }" k k k k k
              body)) ]
  in
  let* stmts = list_size (int_range 1 10) gen_stmt in
  return
    (Printf.sprintf "int v0; int v1; int v2;\nint main() {\n  %s\n  return v0 %% 100;\n}"
       (String.concat "\n  " stmts))

let arbitrary_program = QCheck.make ~print:(fun s -> s) gen_program

let qcheck_alloc_conservation =
  QCheck.Test.make ~name:"charged minor words = machine-scope Gc delta" ~count:25
    arbitrary_program (fun src ->
      let personality = Personality.linux in
      match Minic.Driver.compile ~personality src with
      | Error e -> QCheck.Test.fail_reportf "generated program does not compile: %s" e
      | Ok img ->
        (match Asc_core.Installer.install ~key ~personality ~program:"qp" img with
         | Error e -> QCheck.Test.fail_reportf "install failed: %s" e
         | Ok inst ->
           let kernel = Kernel.create ~personality () in
           Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
           let proc =
             Kernel.spawn kernel ~program:"qp" inst.Asc_core.Installer.image
           in
           let prof = Profile.create () in
           (* arm first, then mark: attach_profile itself allocates, the
              reads below do not *)
           Svm.Machine.attach_profile ~alloc:true proc.Process.machine prof;
           let a0 = Profile.minor_words () in
           let _stop = Kernel.run kernel proc ~max_cycles:200_000_000 in
           Profile.sample_alloc prof;
           let a1 = Profile.minor_words () in
           let charged = Profile.total_alloc_words prof in
           if charged <> a1 - a0 then
             QCheck.Test.fail_reportf "profiler charged %d words but the machine allocated %d"
               charged (a1 - a0);
           let folded = Profile.folded_alloc ~symbolize:sym prof in
           List.fold_left (fun acc (_, w) -> acc + w) 0 folded = charged))

(* --- satellite: per-kernel svm counters do not bleed --- *)

let test_vm_counters_isolated () =
  let kernel_a, proc, _, _ = profiled_run () in
  let kernel_b = Kernel.create () in
  let m = proc.Process.machine in
  Alcotest.(check (option int)) "kernel A saw the run's instructions"
    (Some m.Svm.Machine.instrs)
    (Metrics.value (Kernel.metrics kernel_a) "svm.instructions");
  Alcotest.(check (option int)) "kernel A saw the run's cycles"
    (Some m.Svm.Machine.cycles)
    (Metrics.value (Kernel.metrics kernel_a) "svm.cycles");
  Alcotest.(check (option int)) "kernel B saw nothing" (Some 0)
    (Metrics.value (Kernel.metrics kernel_b) "svm.instructions");
  (* the process-wide default registry no longer aggregates machine runs *)
  Alcotest.(check (option int)) "default registry untouched" None
    (Metrics.value Metrics.default "svm.instructions")

let () =
  Alcotest.run "profile"
    [ ( "tree",
        [ Alcotest.test_case "enter/charge/leave" `Quick test_enter_charge_leave;
          Alcotest.test_case "leave at root is a no-op" `Quick test_leave_at_root_is_noop;
          Alcotest.test_case "charge_label" `Quick test_charge_label;
          Alcotest.test_case "recursion counted once in totals" `Quick
            test_recursion_total_counted_once;
          Alcotest.test_case "reset_stack" `Quick test_reset_stack;
          Alcotest.test_case "alloc sampling and conservation" `Quick test_alloc_tracking ] );
      ( "folded",
        [ Alcotest.test_case "round-trip" `Quick test_folded_roundtrip;
          Alcotest.test_case "malformed inputs rejected" `Quick test_parse_folded_errors ] );
      ( "end-to-end",
        [ Alcotest.test_case "every retired cycle accounted" `Quick
            test_total_cycles_invariant;
          Alcotest.test_case "kernel frames = checker counters" `Quick
            test_checker_cycles_match_kernel_frames;
          Alcotest.test_case "profiler does not perturb cycles" `Quick
            test_unprofiled_run_identical;
          Alcotest.test_case "per-kernel vm counters isolated" `Quick
            test_vm_counters_isolated;
          QCheck_alcotest.to_alcotest qcheck_alloc_conservation ] ) ]
