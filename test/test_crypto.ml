(* Known-answer tests for the crypto substrate: FIPS-197 AES vectors and
   RFC 4493 CMAC vectors, plus property tests on the MAC. *)

open Asc_crypto

let hex = Hex.decode

let check_hex msg expected actual = Alcotest.(check string) msg expected (Hex.encode actual)

(* --- AES-128 known answers --- *)

let test_aes_fips197 () =
  (* FIPS-197 Appendix B. *)
  let key = Aes.expand (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  check_hex "FIPS-197 B"
    "3925841d02dc09fbdc118597196a0b32"
    (Aes.encrypt key (hex "3243f6a8885a308d313198a2e0370734"))

let test_aes_fips197_c1 () =
  (* FIPS-197 Appendix C.1. *)
  let key = Aes.expand (hex "000102030405060708090a0b0c0d0e0f") in
  check_hex "FIPS-197 C.1"
    "69c4e0d86a7b0430d8cdb78070b4c55a"
    (Aes.encrypt key (hex "00112233445566778899aabbccddeeff"))

let test_aes_nist_ecb () =
  (* NIST SP 800-38A F.1.1 ECB-AES128 encrypt, all four blocks. *)
  let key = Aes.expand (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let cases =
    [ ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97");
      ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf");
      ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688");
      ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4") ]
  in
  List.iter
    (fun (pt, ct) -> check_hex ("ECB " ^ pt) ct (Aes.encrypt key (hex pt)))
    cases

let test_aes_bad_key () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes.expand: key must be 16 bytes")
    (fun () -> ignore (Aes.expand "short"))

(* --- CMAC known answers (RFC 4493 section 4) --- *)

let cmac_key = Cmac.of_raw (hex "2b7e151628aed2a6abf7158809cf4f3c")

let test_cmac_empty () =
  check_hex "CMAC len 0" "bb1d6929e95937287fa37d129b756746" (Cmac.mac cmac_key "")

let test_cmac_16 () =
  check_hex "CMAC len 16" "070a16b46b4d4144f79bdd9dd04a287c"
    (Cmac.mac cmac_key (hex "6bc1bee22e409f96e93d7e117393172a"))

let test_cmac_40 () =
  check_hex "CMAC len 40" "dfa66747de9ae63030ca32611497c827"
    (Cmac.mac cmac_key
       (hex
          "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411"))

let test_cmac_64 () =
  check_hex "CMAC len 64" "51f0bebf7e3b9d92fc49741779363cfe"
    (Cmac.mac cmac_key
       (hex
          "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"))

let test_cmac_slice () =
  (* mac_bytes on an inner slice must equal mac on the substring. *)
  let msg = "prefix--the real message--suffix" in
  let inner = "the real message" in
  let whole = Cmac.mac cmac_key inner in
  let sliced =
    Cmac.mac_bytes cmac_key (Bytes.of_string msg) ~pos:8 ~len:(String.length inner)
  in
  Alcotest.(check string) "slice equals substring" (Hex.encode whole) (Hex.encode sliced)

let test_equal_tags () =
  let t = Cmac.mac cmac_key "x" in
  Alcotest.(check bool) "tag equals itself" true (Cmac.equal_tags t t);
  Alcotest.(check bool) "different length" false (Cmac.equal_tags t "short");
  let t' = Bytes.of_string t in
  Bytes.set t' 15 (Char.chr (Char.code (Bytes.get t' 15) lxor 1));
  Alcotest.(check bool) "flipped bit" false (Cmac.equal_tags t (Bytes.to_string t'))

(* --- Hex --- *)

let test_hex_roundtrip () =
  let s = String.init 256 Char.chr in
  Alcotest.(check string) "roundtrip" s (Hex.decode (Hex.encode s));
  Alcotest.(check string) "uppercase accepted" "\xab\xcd" (Hex.decode "ABCD")

let test_hex_errors () =
  Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad char" (Invalid_argument "Hex.decode: non-hex character")
    (fun () -> ignore (Hex.decode "zz"))

(* --- Properties --- *)

let prop_mac_deterministic =
  QCheck.Test.make ~name:"cmac deterministic" ~count:200 QCheck.string (fun s ->
      Cmac.mac cmac_key s = Cmac.mac cmac_key s)

let prop_mac_distinguishes =
  (* Flipping any byte of a message changes the tag (overwhelming probability;
     a failure here would indicate a real implementation bug). *)
  QCheck.Test.make ~name:"cmac sensitive to message"
    ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 1 200)) small_nat)
    (fun (s, i) ->
      let i = i mod String.length s in
      let s' = Bytes.of_string s in
      Bytes.set s' i (Char.chr (Char.code (Bytes.get s' i) lxor 0x5a));
      Cmac.mac cmac_key s <> Cmac.mac cmac_key (Bytes.to_string s'))

let prop_mac_key_separation =
  QCheck.Test.make ~name:"cmac distinct keys give distinct tags" ~count:100
    QCheck.(string_of_size (Gen.int_range 0 64))
    (fun s ->
      let k2 = Cmac.of_raw (Hex.decode "000102030405060708090a0b0c0d0e0f") in
      Cmac.mac cmac_key s <> Cmac.mac k2 s)

let prop_tag_len =
  QCheck.Test.make ~name:"tags are 16 bytes" ~count:100 QCheck.string (fun s ->
      String.length (Cmac.mac cmac_key s) = Cmac.tag_len)

(* --- Streaming CMAC --- *)

(* Edge lengths around the block size: empty, partial, exact single and
   multi block, and >1-block tails after a save point. *)
let edge_lengths = [ 0; 1; 15; 16; 17; 31; 32; 33; 48; 49 ]

let test_streaming_edges () =
  List.iter
    (fun n ->
      let msg = String.init n (fun i -> Char.chr ((i * 7 + n) land 0xff)) in
      let st = Cmac.Streaming.init cmac_key in
      Cmac.Streaming.update_string st msg;
      Alcotest.(check string)
        (Printf.sprintf "streaming = one-shot at len %d" n)
        (Hex.encode (Cmac.mac cmac_key msg))
        (Hex.encode (Cmac.Streaming.final st)))
    edge_lengths

(* Every (prefix length, tail length) pair from the edge set, absorbed
   through a save/resume boundary: the chaining state saved after the
   prefix must finish to the one-shot tag of prefix ^ tail. *)
let test_streaming_save_resume_edges () =
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          let msg = String.init (p + q) (fun i -> Char.chr ((i * 13 + p + q) land 0xff)) in
          let st = Cmac.Streaming.init cmac_key in
          Cmac.Streaming.update_string st (String.sub msg 0 p);
          let sv = Cmac.Streaming.save st in
          let st' = Cmac.Streaming.resume cmac_key sv in
          Cmac.Streaming.update_string st' (String.sub msg p q);
          Alcotest.(check string)
            (Printf.sprintf "save@%d resume +%d" p q)
            (Hex.encode (Cmac.mac cmac_key msg))
            (Hex.encode (Cmac.Streaming.final st')))
        edge_lengths)
    edge_lengths

(* [final] must not disturb the state: finalizing mid-stream and then
   continuing gives the same tag as never finalizing, and a saved state
   can be resumed any number of times. *)
let test_streaming_final_nondestructive () =
  let msg = String.init 77 (fun i -> Char.chr ((i * 31) land 0xff)) in
  let st = Cmac.Streaming.init cmac_key in
  Cmac.Streaming.update_string st (String.sub msg 0 30);
  let mid = Cmac.Streaming.final st in
  Alcotest.(check string) "mid-stream tag" (Hex.encode (Cmac.mac cmac_key (String.sub msg 0 30)))
    (Hex.encode mid);
  Cmac.Streaming.update_string st (String.sub msg 30 47);
  Alcotest.(check string) "continue after final" (Hex.encode (Cmac.mac cmac_key msg))
    (Hex.encode (Cmac.Streaming.final st));
  let sv = Cmac.Streaming.save st in
  let once = Cmac.Streaming.final (Cmac.Streaming.resume cmac_key sv) in
  let twice = Cmac.Streaming.final (Cmac.Streaming.resume cmac_key sv) in
  Alcotest.(check string) "saved state re-resumable" (Hex.encode once) (Hex.encode twice)

let prop_streaming_split =
  (* Absorbing a message in arbitrary chunks equals the one-shot CMAC: the
     cut list is interpreted as successive chunk sizes over the message. *)
  QCheck.Test.make ~name:"streaming cmac = one-shot under arbitrary splits" ~count:500
    QCheck.(pair (string_of_size (Gen.int_range 0 200)) (list small_nat))
    (fun (s, cuts) ->
      let st = Cmac.Streaming.init cmac_key in
      let n = String.length s in
      let pos = ref 0 in
      List.iter
        (fun c ->
          let len = min c (n - !pos) in
          Cmac.Streaming.update st (Bytes.unsafe_of_string s) ~pos:!pos ~len;
          pos := !pos + len)
        cuts;
      Cmac.Streaming.update st (Bytes.unsafe_of_string s) ~pos:!pos ~len:(n - !pos);
      Cmac.Streaming.total st = n && Cmac.Streaming.final st = Cmac.mac cmac_key s)

let prop_streaming_save_resume =
  (* Saving at an arbitrary point and resuming (possibly into a fresh state
     while the original keeps running) reproduces the one-shot tag. *)
  QCheck.Test.make ~name:"streaming cmac save/resume at arbitrary points" ~count:500
    QCheck.(pair (string_of_size (Gen.int_range 0 200)) small_nat)
    (fun (s, cut) ->
      let n = String.length s in
      let cut = if n = 0 then 0 else cut mod (n + 1) in
      let st = Cmac.Streaming.init cmac_key in
      Cmac.Streaming.update_string st (String.sub s 0 cut);
      let sv = Cmac.Streaming.save st in
      (* the original state keeps absorbing — interleaved with the resumed
         copy, proving the two share no mutable scratch *)
      let st' = Cmac.Streaming.resume cmac_key sv in
      Cmac.Streaming.update_string st (String.sub s cut (n - cut));
      Cmac.Streaming.update_string st' (String.sub s cut (n - cut));
      let expect = Cmac.mac cmac_key s in
      Cmac.Streaming.final st = expect && Cmac.Streaming.final st' = expect)

let suite =
  [ Alcotest.test_case "aes fips197 appendix B" `Quick test_aes_fips197;
    Alcotest.test_case "aes fips197 appendix C.1" `Quick test_aes_fips197_c1;
    Alcotest.test_case "aes nist ecb vectors" `Quick test_aes_nist_ecb;
    Alcotest.test_case "aes rejects bad key" `Quick test_aes_bad_key;
    Alcotest.test_case "cmac rfc4493 empty" `Quick test_cmac_empty;
    Alcotest.test_case "cmac rfc4493 16B" `Quick test_cmac_16;
    Alcotest.test_case "cmac rfc4493 40B" `Quick test_cmac_40;
    Alcotest.test_case "cmac rfc4493 64B" `Quick test_cmac_64;
    Alcotest.test_case "cmac slice" `Quick test_cmac_slice;
    Alcotest.test_case "constant-time tag compare" `Quick test_equal_tags;
    Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
    Alcotest.test_case "hex errors" `Quick test_hex_errors;
    Alcotest.test_case "streaming cmac edge lengths" `Quick test_streaming_edges;
    Alcotest.test_case "streaming save/resume edge pairs" `Quick
      test_streaming_save_resume_edges;
    Alcotest.test_case "streaming final is non-destructive" `Quick
      test_streaming_final_nondestructive ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_mac_deterministic; prop_mac_distinguishes; prop_mac_key_separation;
        prop_tag_len; prop_streaming_split; prop_streaming_save_resume ]

let () = Alcotest.run "asc_crypto" [ ("crypto", suite) ]
