(* Tests for the simulated kernel substrate: VFS semantics (including the
   symlink-normalization machinery of §5.4), OS personalities (including the
   OpenBSD-style __syscall indirection of Table 2), and syscall dispatch via
   real machine programs. *)

open Oskernel

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected errno %s" (Errno.name e)

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected %s" (Errno.name expected)
  | Error e -> Alcotest.(check string) "errno" (Errno.name expected) (Errno.name e)

(* --- VFS --- *)

let fs_with_tree () =
  let fs = Vfs.create () in
  Vfs.mkdir_p fs "/tmp";
  Vfs.mkdir_p fs "/etc";
  Vfs.mkdir_p fs "/home/user/docs";
  ok (Vfs.create_file fs ~cwd:"/" "/etc/passwd" ~contents:"root:0\nuser:1000\n");
  ok (Vfs.create_file fs ~cwd:"/" "/home/user/docs/a.txt" ~contents:"alpha");
  fs

let test_vfs_basic () =
  let fs = fs_with_tree () in
  Alcotest.(check string) "read" "alpha" (ok (Vfs.read_file fs ~cwd:"/" "/home/user/docs/a.txt"));
  Alcotest.(check int) "size" 5 (ok (Vfs.file_size fs ~cwd:"/" "/home/user/docs/a.txt"));
  Alcotest.(check bool) "exists" true (Vfs.exists fs ~cwd:"/" "/etc/passwd");
  Alcotest.(check bool) "is_dir" true (Vfs.is_dir fs ~cwd:"/" "/etc");
  expect_err Errno.ENOENT (Vfs.read_file fs ~cwd:"/" "/etc/shadow");
  expect_err Errno.EISDIR (Vfs.read_file fs ~cwd:"/" "/etc")

let test_vfs_relative_paths () =
  let fs = fs_with_tree () in
  Alcotest.(check string) "relative read" "alpha"
    (ok (Vfs.read_file fs ~cwd:"/home/user" "docs/a.txt"));
  Alcotest.(check string) "dot-dot" "root:0\nuser:1000\n"
    (ok (Vfs.read_file fs ~cwd:"/home/user" "../../etc/passwd"));
  Alcotest.(check string) "normalize dots" "/etc/passwd"
    (ok (Vfs.normalize fs ~cwd:"/home" "./../etc/./passwd"))

let test_vfs_symlinks () =
  let fs = fs_with_tree () in
  ok (Vfs.symlink fs ~cwd:"/" ~target:"/etc/passwd" ~linkpath:"/tmp/link");
  Alcotest.(check string) "follow symlink" "root:0\nuser:1000\n"
    (ok (Vfs.read_file fs ~cwd:"/" "/tmp/link"));
  Alcotest.(check string) "normalize resolves" "/etc/passwd"
    (ok (Vfs.normalize fs ~cwd:"/" "/tmp/link"));
  Alcotest.(check string) "readlink keeps link" "/etc/passwd"
    (ok (Vfs.readlink fs ~cwd:"/" "/tmp/link"));
  (* relative symlink *)
  ok (Vfs.symlink fs ~cwd:"/" ~target:"docs/a.txt" ~linkpath:"/home/user/rel");
  Alcotest.(check string) "relative target" "alpha" (ok (Vfs.read_file fs ~cwd:"/" "/home/user/rel"));
  (* the §5.4 attack scenario: policy says /tmp/foo, attacker points it at
     /etc/passwd; normalization exposes the real target *)
  ok (Vfs.symlink fs ~cwd:"/" ~target:"/etc/passwd" ~linkpath:"/tmp/foo");
  Alcotest.(check string) "attack visible after normalization" "/etc/passwd"
    (ok (Vfs.normalize fs ~cwd:"/" "/tmp/foo"))

let test_vfs_symlink_loop () =
  let fs = fs_with_tree () in
  ok (Vfs.symlink fs ~cwd:"/" ~target:"/tmp/b" ~linkpath:"/tmp/a");
  ok (Vfs.symlink fs ~cwd:"/" ~target:"/tmp/a" ~linkpath:"/tmp/b");
  expect_err Errno.ELOOP (Vfs.read_file fs ~cwd:"/" "/tmp/a")

let test_vfs_mutations () =
  let fs = fs_with_tree () in
  ok (Vfs.mkdir fs ~cwd:"/" "/tmp/sub");
  expect_err Errno.EEXIST (Vfs.mkdir fs ~cwd:"/" "/tmp/sub");
  ok (Vfs.create_file fs ~cwd:"/" "/tmp/sub/f" ~contents:"x");
  expect_err Errno.ENOTEMPTY (Vfs.rmdir fs ~cwd:"/" "/tmp/sub");
  ok (Vfs.unlink fs ~cwd:"/" "/tmp/sub/f");
  ok (Vfs.rmdir fs ~cwd:"/" "/tmp/sub");
  ok (Vfs.create_file fs ~cwd:"/" "/tmp/one" ~contents:"1");
  ok (Vfs.rename fs ~cwd:"/" ~src:"/tmp/one" ~dst:"/tmp/two");
  Alcotest.(check bool) "src gone" false (Vfs.exists fs ~cwd:"/" "/tmp/one");
  Alcotest.(check string) "dst has data" "1" (ok (Vfs.read_file fs ~cwd:"/" "/tmp/two"));
  Alcotest.(check (list string)) "readdir"
    [ "passwd" ] (ok (Vfs.readdir fs ~cwd:"/" "/etc"))

let test_vfs_read_write_at () =
  let fs = fs_with_tree () in
  ok (Vfs.create_file fs ~cwd:"/" "/tmp/f" ~contents:"hello");
  Alcotest.(check string) "middle" "ell" (ok (Vfs.read_at fs ~cwd:"/" "/tmp/f" ~pos:1 ~len:3));
  Alcotest.(check string) "past eof" "" (ok (Vfs.read_at fs ~cwd:"/" "/tmp/f" ~pos:10 ~len:3));
  Alcotest.(check int) "extend write" 3 (ok (Vfs.write_at fs ~cwd:"/" "/tmp/f" ~pos:8 "xyz"));
  Alcotest.(check string) "gap zero filled" "hello\000\000\000xyz"
    (ok (Vfs.read_file fs ~cwd:"/" "/tmp/f"))

let prop_vfs_write_read_roundtrip =
  QCheck.Test.make ~name:"vfs write_at/read_at roundtrip" ~count:200
    QCheck.(pair (int_bound 2000) (string_of_size (Gen.int_range 1 100)))
    (fun (pos, data) ->
      let fs = Vfs.create () in
      Result.is_ok (Vfs.create_file fs ~cwd:"/" "/f" ~contents:"")
      &&
      match Vfs.write_at fs ~cwd:"/" "/f" ~pos data with
      | Error _ -> false
      | Ok _ ->
        Vfs.read_at fs ~cwd:"/" "/f" ~pos ~len:(String.length data) = Ok data)

(* --- personalities --- *)

let test_personality_tables () =
  let lin = Personality.linux and bsd = Personality.openbsd in
  (* every direct number roundtrips *)
  List.iter
    (fun pers ->
      List.iter
        (fun sem ->
          match Personality.number_of pers sem with
          | None -> ()
          | Some n ->
            Alcotest.(check bool)
              (Printf.sprintf "%s roundtrip on %s" (Syscall.name sem) (Personality.os_name pers))
              true
              (Personality.sem_of pers n = Some sem))
        Syscall.all)
    [ lin; bsd ];
  (* divergences that drive Table 2 *)
  Alcotest.(check bool) "linux mmap direct" true (Personality.number_of lin Syscall.Mmap <> None);
  Alcotest.(check bool) "openbsd mmap not direct" true
    (Personality.number_of bsd Syscall.Mmap = None);
  Alcotest.(check bool) "openbsd has __syscall" true
    (Personality.number_of bsd Syscall.Indirect <> None);
  Alcotest.(check bool) "linux has no __syscall" true
    (Personality.number_of lin Syscall.Indirect = None);
  Alcotest.(check bool) "indirect reaches mmap" true
    (Personality.indirect_target bsd 197 = Some Syscall.Mmap);
  Alcotest.(check bool) "linux issetugid absent" true
    (Personality.number_of lin Syscall.Issetugid = None)

let test_syscall_names () =
  List.iter
    (fun s -> Alcotest.(check bool) (Syscall.name s) true (Syscall.of_name (Syscall.name s) = Some s))
    Syscall.all

(* --- kernel dispatch via machine programs --- *)

let num sem =
  match Personality.number_of Personality.linux sem with
  | Some n -> n
  | None -> Alcotest.failf "no number for %s" (Syscall.name sem)

let run_program ?(stdin = "") ?(kernel = Kernel.create ()) src =
  let img = Svm.Asm.assemble_exn src in
  let proc = Kernel.spawn kernel ~stdin ~program:"test" img in
  let stop = Kernel.run kernel proc ~max_cycles:10_000_000 in
  (kernel, proc, stop)

let check_exit what expected stop =
  match (stop : Svm.Machine.stop) with
  | Svm.Machine.Halted v -> Alcotest.(check int) what expected v
  | Svm.Machine.Faulted (_, pc) -> Alcotest.failf "%s: faulted at 0x%x" what pc
  | Svm.Machine.Killed r -> Alcotest.failf "%s: killed (%s)" what r
  | Svm.Machine.Cycle_limit -> Alcotest.failf "%s: cycle limit" what

let test_hello_stdout () =
  let src =
    Printf.sprintf
      {|
_start: movi r0, %d       ; write
        movi r1, 1        ; stdout
        movi r2, msg
        movi r3, 6
        sys
        movi r0, %d       ; exit
        movi r1, 0
        sys
        halt
        .rodata
msg:    .ascii "hello\n"
|}
      (num Syscall.Write) (num Syscall.Exit)
  in
  let _, proc, stop = run_program src in
  check_exit "exit 0" 0 stop;
  Alcotest.(check string) "stdout" "hello\n" (Kernel.stdout_of proc)

let test_open_read_close () =
  let kernel = Kernel.create () in
  (match Vfs.create_file kernel.Kernel.vfs ~cwd:"/" "/etc/motd" ~contents:"welcome" with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "setup");
  let src =
    Printf.sprintf
      {|
_start: movi r0, %d       ; open
        movi r1, path
        movi r2, 0        ; O_RDONLY
        movi r3, 0
        sys
        mov r7, r0        ; fd
        movi r0, %d       ; read
        mov r1, r7
        movi r2, buf
        movi r3, 64
        sys
        mov r8, r0        ; nread
        movi r0, %d       ; close
        mov r1, r7
        sys
        movi r0, %d       ; exit(nread)
        mov r1, r8
        sys
        halt
        .rodata
path:   .asciz "/etc/motd"
        .bss
buf:    .space 64
|}
      (num Syscall.Open) (num Syscall.Read) (num Syscall.Close) (num Syscall.Exit)
  in
  let _, _, stop = run_program ~kernel src in
  check_exit "read 7 bytes" 7 stop

let test_write_creates_file () =
  let src =
    Printf.sprintf
      {|
_start: movi r0, %d       ; open(path, O_CREAT|O_WRONLY)
        movi r1, path
        movi r2, 65       ; O_WRONLY | O_CREAT
        movi r3, 420
        sys
        mov r7, r0
        movi r0, %d       ; write
        mov r1, r7
        movi r2, data
        movi r3, 4
        sys
        movi r0, %d       ; exit(0)
        movi r1, 0
        sys
        halt
        .rodata
path:   .asciz "/tmp/out.txt"
data:   .ascii "data"
|}
      (num Syscall.Open) (num Syscall.Write) (num Syscall.Exit)
  in
  let kernel, _, stop = run_program src in
  check_exit "exit" 0 stop;
  Alcotest.(check string) "file contents" "data"
    (ok (Vfs.read_file kernel.Kernel.vfs ~cwd:"/" "/tmp/out.txt"))

let test_stdin_read () =
  let src =
    Printf.sprintf
      {|
_start: movi r0, %d       ; read(0, buf, 16)
        movi r1, 0
        movi r2, buf
        movi r3, 16
        sys
        mov r8, r0
        movi r0, %d
        mov r1, r8
        sys
        halt
        .bss
buf:    .space 16
|}
      (num Syscall.Read) (num Syscall.Exit)
  in
  let _, _, stop = run_program ~stdin:"abcde" src in
  check_exit "read 5 from stdin" 5 stop

let test_brk_and_getpid () =
  let src =
    Printf.sprintf
      {|
_start: movi r0, %d       ; brk(0)
        movi r1, 0
        sys
        mov r7, r0        ; current break
        movi r0, %d       ; brk(cur + 4096)
        movi r2, 4096
        add r1, r7, r2
        sys
        sub r8, r0, r7    ; should be 4096
        movi r0, %d       ; getpid
        sys
        mov r9, r0
        movi r0, %d       ; exit(delta + pid)
        add r1, r8, r9
        sys
        halt
|}
      (num Syscall.Brk) (num Syscall.Brk) (num Syscall.Getpid) (num Syscall.Exit)
  in
  let _, _, stop = run_program src in
  check_exit "brk grew by 4096, pid 1" 4097 stop

let test_bad_pointer_efault () =
  let src =
    Printf.sprintf
      {|
_start: movi r0, %d       ; open with wild pointer
        movi r1, 0x3fffff8
        movi r2, 0
        sys
        movi r0, %d
        mov r1, r0
        sys
        halt
|}
      (num Syscall.Open) (num Syscall.Exit)
  in
  (* exit code is the open result (negative EFAULT) passed through r0->r1;
     note movi r0 clobbers before mov, so just check it didn't crash *)
  let _, _, stop = run_program src in
  match stop with
  | Svm.Machine.Halted _ -> ()
  | _ -> Alcotest.fail "expected graceful errno, not a crash"

let test_unknown_syscall_enosys () =
  let src =
    Printf.sprintf
      {|
_start: movi r0, 9999
        sys
        mov r8, r0
        movi r0, %d
        mov r1, r8
        sys
        halt
|}
      (num Syscall.Exit)
  in
  let _, _, stop = run_program src in
  check_exit "ENOSYS" (-Errno.code Errno.ENOSYS) stop

let test_execve_replaces_image () =
  let kernel = Kernel.create () in
  (* target program: exits 42 *)
  let target =
    Svm.Asm.assemble_exn
      (Printf.sprintf "_start: movi r0, %d\n movi r1, 42\n sys\n halt" (num Syscall.Exit))
  in
  Kernel.install_binary kernel ~path:"/bin/target" target;
  let src =
    Printf.sprintf
      {|
_start: movi r0, %d       ; execve("/bin/target")
        movi r1, path
        movi r2, 0
        movi r3, 0
        sys
        movi r0, %d       ; not reached on success
        movi r1, 7
        sys
        halt
        .rodata
path:   .asciz "/bin/target"
|}
      (num Syscall.Execve) (num Syscall.Exit)
  in
  let _, proc, stop = run_program ~kernel src in
  check_exit "exec'd program exit code" 42 stop;
  Alcotest.(check string) "program name updated" "/bin/target" proc.Process.program

let test_monitor_deny () =
  let kernel = Kernel.create () in
  let deny_all =
    { Kernel.monitor_name = "deny-all";
      pre_syscall = (fun _ ~site:_ ~number:_ -> Kernel.Deny "not authenticated");
      post_syscall = Kernel.no_post }
  in
  Kernel.set_monitor kernel (Some deny_all);
  let src = Printf.sprintf "_start: movi r0, %d\n sys\n halt" (num Syscall.Getpid) in
  let _, _, stop = run_program ~kernel src in
  (match stop with
   | Svm.Machine.Killed reason -> Alcotest.(check string) "reason" "not authenticated" reason
   | _ -> Alcotest.fail "expected kill");
  Alcotest.(check int) "deny counted" 1 (Kernel.denied_count kernel);
  Alcotest.(check int) "trap counted" 1 (Kernel.syscall_count kernel);
  (match Kernel.audit_log kernel with
   | [ Kernel.Denied d ] ->
     Alcotest.(check int) "audited number" (num Syscall.Getpid) d.number;
     Alcotest.(check string) "audited reason" "not authenticated" d.reason;
     let rendered = Kernel.audit_to_string (Kernel.Denied d) in
     let contains ~sub s =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool) "rendering mentions DENIED" true (contains ~sub:"DENIED" rendered);
     Alcotest.(check bool) "rendering carries the reason" true
       (contains ~sub:"not authenticated" rendered)
   | _ -> Alcotest.fail "expected exactly one Denied audit entry")

(* --- structured violations: forensic snapshot + audit chain entry --- *)

let test_violation_snapshot () =
  let kernel = Kernel.create () in
  kernel.Kernel.tracing <- true;
  let calls = ref 0 in
  (* allow four calls, then produce a structured deny; the kernel must
     overwrite the monitor's placeholder site/number with the real trap
     coordinates and resolve the syscall name *)
  let mon =
    { Kernel.monitor_name = "deny-fifth";
      pre_syscall =
        (fun _ ~site:_ ~number:_ ->
          incr calls;
          if !calls < 5 then Kernel.Allow
          else
            Kernel.Deny_violation
              { Violation.v_step = Violation.Control_flow;
                v_site = 0;
                v_number = 0;
                v_sem = None;
                v_reason = "policy violation";
                v_expected_mac = Some "00ff";
                v_got_mac = Some "ff00" });
      post_syscall = Kernel.no_post }
  in
  Kernel.set_monitor kernel (Some mon);
  let getpid = Printf.sprintf " movi r0, %d\n sys\n" (num Syscall.Getpid) in
  let src = "_start:" ^ String.concat "" (List.init 5 (fun _ -> getpid)) ^ " halt" in
  let kernel, _, stop = run_program ~kernel src in
  (match stop with
   | Svm.Machine.Killed reason -> Alcotest.(check string) "kill reason" "policy violation" reason
   | _ -> Alcotest.fail "expected kill");
  match Kernel.audit_log kernel with
  | [ Kernel.Violation { violation = v; snapshot = sn; pid; program } ] ->
    Alcotest.(check int) "pid" 1 pid;
    Alcotest.(check string) "program" "test" program;
    Alcotest.(check string) "step survives" "control_flow" (Violation.step_name v.Violation.v_step);
    Alcotest.(check (option string)) "sem resolved by the kernel" (Some "getpid")
      v.Violation.v_sem;
    Alcotest.(check int) "number overridden" (num Syscall.Getpid) v.Violation.v_number;
    Alcotest.(check bool) "site overridden" true (v.Violation.v_site > 0);
    Alcotest.(check (option string)) "expected MAC kept" (Some "00ff") v.Violation.v_expected_mac;
    Alcotest.(check int) "r0..r11 captured" Violation.snapshot_regs
      (Array.length sn.Violation.sn_regs);
    Alcotest.(check int) "r0 holds the trap number" (num Syscall.Getpid)
      sn.Violation.sn_regs.(0);
    Alcotest.(check int) "kernel nonce counter" 0 sn.Violation.sn_counter;
    (* the snapshot's recent-call history must be exactly the tail of the
       kernel's trace ring (the denied call itself is never dispatched, so
       it appears in neither) *)
    let trace = Kernel.trace kernel in
    Alcotest.(check int) "four calls dispatched before the deny" 4 (List.length trace);
    let tail =
      let n = List.length trace in
      List.filteri (fun i _ -> i >= n - Kernel.snapshot_history) trace
    in
    Alcotest.(check int) "history length" (List.length tail)
      (List.length sn.Violation.sn_recent);
    List.iter2
      (fun (c : Violation.call) (t : Kernel.trace_entry) ->
        Alcotest.(check int) "history number" t.Kernel.t_number c.Violation.c_number;
        Alcotest.(check int) "history site" t.Kernel.t_site c.Violation.c_site;
        Alcotest.(check int) "history result" t.Kernel.t_result c.Violation.c_result)
      sn.Violation.sn_recent tail
  | entries -> Alcotest.failf "expected exactly one Violation entry, got %d" (List.length entries)

(* audit entries survive the JSON round trip, and every variant carries the
   uniform envelope (kind/pid/program) *)
let qcheck_audit_json_roundtrip =
  let open QCheck.Gen in
  let s = string_size ~gen:printable (0 -- 10) in
  let nat = 0 -- 100_000 in
  let opt_s = opt s in
  let gen_call =
    map
      (fun ((c_name, c_number), (c_site, c_result)) ->
        { Violation.c_name; c_number; c_site; c_result })
      (pair (pair s nat) (pair nat nat))
  in
  let gen_violation =
    oneofl Violation.all_steps >>= fun v_step ->
    nat >>= fun v_site ->
    nat >>= fun v_number ->
    opt_s >>= fun v_sem ->
    s >>= fun v_reason ->
    opt_s >>= fun v_expected_mac ->
    opt_s >>= fun v_got_mac ->
    return { Violation.v_step; v_site; v_number; v_sem; v_reason; v_expected_mac; v_got_mac }
  in
  let gen_snapshot =
    array_size (return Violation.snapshot_regs) nat >>= fun sn_regs ->
    nat >>= fun sn_pc ->
    nat >>= fun sn_cycles ->
    nat >>= fun sn_instrs ->
    nat >>= fun sn_counter ->
    opt nat >>= fun sn_last_block ->
    opt_s >>= fun sn_lb_mac ->
    list_size (0 -- 4) gen_call >>= fun sn_recent ->
    list_size (0 -- 3) s >>= fun sn_shadow_stack ->
    return
      { Violation.sn_regs;
        sn_pc;
        sn_cycles;
        sn_instrs;
        sn_counter;
        sn_last_block;
        sn_lb_mac;
        sn_recent;
        sn_shadow_stack }
  in
  let gen_entry =
    oneof
      [ map
          (fun ((pid, program), ((site, number), reason)) ->
            Kernel.Denied { pid; program; site; number; reason })
          (pair (pair nat s) (pair (pair nat nat) s));
        map
          (fun ((pid, program), path) -> Kernel.Execve { pid; program; path })
          (pair (pair nat s) s);
        (pair (pair nat s) (pair gen_violation gen_snapshot)
        >>= fun ((pid, program), (violation, snapshot)) ->
         return (Kernel.Violation { pid; program; violation; snapshot }));
        (pair (pair nat s) (pair (pair s s) (pair nat (pair nat nat)))
        >>= fun ((pid, program), ((rule, event), (ts, (v, th)))) ->
         (* dyadic fractions survive the JSON float representation exactly *)
         return
           (Kernel.Alert
              { pid; program; rule; event; ts;
                value = float_of_int v /. 8.0;
                threshold = float_of_int th /. 8.0 })) ]
  in
  QCheck.Test.make ~name:"audit_to_json round-trip" ~count:300 (QCheck.make gen_entry)
    (fun entry ->
      let j = Kernel.audit_to_json entry in
      let has k = Asc_obs.Json.member k j <> None in
      has "kind" && has "pid" && has "program"
      &&
      match Kernel.audit_of_json j with
      | Ok entry' -> entry' = entry
      | Error _ -> false)

let test_tracing () =
  let kernel = Kernel.create () in
  kernel.Kernel.tracing <- true;
  let src =
    Printf.sprintf "_start: movi r0, %d\n sys\n movi r0, %d\n movi r1, 0\n sys\n halt"
      (num Syscall.Getpid) (num Syscall.Exit)
  in
  let _, _, stop = run_program ~kernel src in
  check_exit "exit" 0 stop;
  let tr = Kernel.trace kernel in
  Alcotest.(check int) "two syscalls traced" 2 (List.length tr);
  (match tr with
   | first :: _ ->
     Alcotest.(check bool) "first is getpid" true (first.Kernel.t_sem = Some Syscall.Getpid);
     Alcotest.(check int) "result is pid" 1 first.Kernel.t_result
   | [] -> Alcotest.fail "empty trace")

(* the trace ring is bounded but syscall_count sees every trap *)
let test_trace_ring_cap () =
  let kernel = Kernel.create ~trace_capacity:3 () in
  kernel.Kernel.tracing <- true;
  let getpid = Printf.sprintf " movi r0, %d\n sys\n" (num Syscall.Getpid) in
  let src = "_start:" ^ String.concat "" (List.init 5 (fun _ -> getpid)) ^ " halt" in
  let _, _, stop = run_program ~kernel src in
  check_exit "exit" 1 stop;
  (* the last getpid leaves pid 1 in r0; Halted reports r0 *)
  Alcotest.(check int) "all traps counted" 5 (Kernel.syscall_count kernel);
  Alcotest.(check int) "ring keeps newest 3" 3 (List.length (Kernel.trace kernel));
  Alcotest.(check int) "per-sem counter" 5
    (Option.value ~default:0 (Asc_obs.Metrics.value (Kernel.metrics kernel) "kernel.syscall.getpid"));
  Kernel.clear_trace kernel;
  Alcotest.(check int) "trace cleared" 0 (List.length (Kernel.trace kernel));
  Alcotest.(check int) "spans cleared too" 0 (Asc_obs.Trace.length (Kernel.spans kernel));
  Alcotest.(check int) "count survives clear" 5 (Kernel.syscall_count kernel)

let test_audit_ring_cap () =
  let kernel = Kernel.create ~audit_capacity:2 () in
  let deny_all =
    { Kernel.monitor_name = "deny-all";
      pre_syscall = (fun _ ~site:_ ~number:_ -> Kernel.Deny "no");
      post_syscall = Kernel.no_post }
  in
  Kernel.set_monitor kernel (Some deny_all);
  let src = Printf.sprintf "_start: movi r0, %d\n sys\n halt" (num Syscall.Getpid) in
  for _ = 1 to 3 do ignore (run_program ~kernel src) done;
  Alcotest.(check int) "audit ring capped" 2 (List.length (Kernel.audit_log kernel));
  Alcotest.(check int) "every denial counted" 3 (Kernel.denied_count kernel);
  Kernel.clear_audit kernel;
  Alcotest.(check (list string)) "audit cleared" []
    (List.map Kernel.audit_to_string (Kernel.audit_log kernel));
  Alcotest.(check int) "denied_count survives clear" 3 (Kernel.denied_count kernel)

let test_openbsd_indirect_mmap () =
  let kernel = Kernel.create ~personality:Personality.openbsd () in
  let n_ind = Option.get (Personality.number_of Personality.openbsd Syscall.Indirect) in
  let n_exit = Option.get (Personality.number_of Personality.openbsd Syscall.Exit) in
  let src =
    Printf.sprintf
      {|
_start: movi r0, %d       ; __syscall
        movi r1, 197      ; SYS_mmap
        movi r2, 0        ; addr hint
        movi r3, 8192     ; length
        sys
        mov r8, r0
        movi r0, %d
        mov r1, r8
        sys
        halt
|}
      n_ind n_exit
  in
  let _, _, stop = run_program ~kernel src in
  match stop with
  | Svm.Machine.Halted addr -> Alcotest.(check bool) "mmap returned an address" true (addr > 0)
  | _ -> Alcotest.fail "mmap via __syscall failed"

let test_getdirentries () =
  let kernel = Kernel.create () in
  ok (Vfs.create_file kernel.Kernel.vfs ~cwd:"/" "/etc/a" ~contents:"");
  ok (Vfs.create_file kernel.Kernel.vfs ~cwd:"/" "/etc/b" ~contents:"");
  let src =
    Printf.sprintf
      {|
_start: movi r0, %d       ; open("/etc", O_RDONLY)
        movi r1, path
        movi r2, 0
        sys
        mov r7, r0
        movi r0, %d       ; getdirentries(fd, buf, 64)
        mov r1, r7
        movi r2, buf
        movi r3, 64
        sys
        mov r8, r0
        movi r0, %d
        mov r1, r8
        sys
        halt
        .rodata
path:   .asciz "/etc"
        .bss
buf:    .space 64
|}
      (num Syscall.Open) (num Syscall.Getdirentries) (num Syscall.Exit)
  in
  let _, _, stop = run_program ~kernel src in
  check_exit "two entries a\\0b\\0" 4 stop

let suite_vfs =
  [ Alcotest.test_case "basic files" `Quick test_vfs_basic;
    Alcotest.test_case "relative paths" `Quick test_vfs_relative_paths;
    Alcotest.test_case "symlinks + normalization" `Quick test_vfs_symlinks;
    Alcotest.test_case "symlink loop -> ELOOP" `Quick test_vfs_symlink_loop;
    Alcotest.test_case "mkdir/rmdir/rename/readdir" `Quick test_vfs_mutations;
    Alcotest.test_case "read_at/write_at" `Quick test_vfs_read_write_at;
    QCheck_alcotest.to_alcotest prop_vfs_write_read_roundtrip ]

let suite_pers =
  [ Alcotest.test_case "tables roundtrip + divergences" `Quick test_personality_tables;
    Alcotest.test_case "syscall names" `Quick test_syscall_names ]

let suite_kernel =
  [ Alcotest.test_case "hello stdout" `Quick test_hello_stdout;
    Alcotest.test_case "open/read/close" `Quick test_open_read_close;
    Alcotest.test_case "write creates file" `Quick test_write_creates_file;
    Alcotest.test_case "stdin read" `Quick test_stdin_read;
    Alcotest.test_case "brk + getpid" `Quick test_brk_and_getpid;
    Alcotest.test_case "bad pointer -> errno" `Quick test_bad_pointer_efault;
    Alcotest.test_case "unknown syscall -> ENOSYS" `Quick test_unknown_syscall_enosys;
    Alcotest.test_case "execve replaces image" `Quick test_execve_replaces_image;
    Alcotest.test_case "monitor can deny" `Quick test_monitor_deny;
    Alcotest.test_case "violation snapshot" `Quick test_violation_snapshot;
    QCheck_alcotest.to_alcotest qcheck_audit_json_roundtrip;
    Alcotest.test_case "tracing" `Quick test_tracing;
    Alcotest.test_case "trace ring cap" `Quick test_trace_ring_cap;
    Alcotest.test_case "audit ring cap" `Quick test_audit_ring_cap;
    Alcotest.test_case "openbsd __syscall -> mmap" `Quick test_openbsd_indirect_mmap;
    Alcotest.test_case "getdirentries" `Quick test_getdirentries ]

let () =
  Alcotest.run "oskernel"
    [ ("vfs", suite_vfs); ("personality", suite_pers); ("kernel", suite_kernel) ]
