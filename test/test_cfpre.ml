(* The precompiled control-flow table (Asc_core.Cfpre).

   Like the vcache and the precompiled-site table, the bitset table is a
   pure accelerator: its fast path may only decide a predecessor check
   whose live reference AND live guest bytes equal the slow-path-verified
   ones, never change a verdict. The unit tests pin the verdict lattice
   (miss / hit / ref fallback / contents fallback), the base-offset bitset
   against globally-unique block ids (program id in the high bits), the
   span bound, the single-block CMAC chain step against the one-shot MAC,
   and the per-pid lifecycle. The differential properties run randomly
   generated programs — and random byte mutations of an installed binary —
   on a cfpre-on and a cfpre-off kernel and require identical observable
   behavior, with the saved cycles exactly accounted. *)

open Oskernel
module Cmac = Asc_crypto.Cmac
module Encoded = Asc_core.Encoded
module Cfpre = Asc_core.Cfpre
module Machine = Svm.Machine

let key = Cmac.of_raw "cfpre-test-key!!"
let personality = Personality.linux

(* ---- unit tests on the table proper ---- *)

let create ?max_sites ?block_limit () =
  Cfpre.create ?max_sites ?block_limit ~registry:(Asc_obs.Metrics.create ()) ()

(* a machine holding one predecessor set at [addr], plus the matching
   verified reference *)
let machine_with_set ~addr ids =
  let m = Machine.create ~mem_size:4096 in
  let contents = Encoded.predset_contents ids in
  assert (Machine.write_mem m ~addr contents);
  let r =
    { Encoded.as_addr = addr; as_len = String.length contents; as_mac = Cmac.mac key contents }
  in
  (m, r, contents)

let verdict_name = function
  | Cfpre.Miss -> "Miss"
  | Cfpre.Hit _ -> "Hit"
  | Cfpre.Fallback Cfpre.Ref_mismatch -> "Fallback(ref)"
  | Cfpre.Fallback Cfpre.Contents_mismatch -> "Fallback(contents)"

let check_is what expected t ~m ~pid ~site ~pred_ref =
  let got = verdict_name (Cfpre.check t ~m ~pid ~site ~pred_ref) in
  Alcotest.(check string) what expected got

let test_compile_and_hit () =
  let t = create () in
  let m, r, contents = machine_with_set ~addr:0x100 [ 3; 7; 9 ] in
  check_is "cold table misses" "Miss" t ~m ~pid:1 ~site:0x40 ~pred_ref:r;
  Cfpre.compile t ~pid:1 ~site:0x40 ~pred_ref:r ~contents;
  Alcotest.(check int) "one entry" 1 (Cfpre.size t);
  (match Cfpre.check t ~m ~pid:1 ~site:0x40 ~pred_ref:r with
   | Cfpre.Hit { entry; _ } ->
     (* the bitset decides exactly what predset_mem decides *)
     for b = 0 to 16 do
       Alcotest.(check bool)
         (Printf.sprintf "member %d" b)
         (Encoded.predset_mem contents b) (Cfpre.member entry b)
     done
   | v -> Alcotest.failf "expected Hit, got %s" (verdict_name v));
  Alcotest.(check int) "hit counted" 1 (Cfpre.hits t);
  check_is "other site misses" "Miss" t ~m ~pid:1 ~site:0x44 ~pred_ref:r;
  check_is "other pid misses" "Miss" t ~m ~pid:2 ~site:0x40 ~pred_ref:r

let test_globally_unique_ids () =
  (* block ids carry the program id in the high bits (program_id lsl 20 lor
     local), so the absolute values dwarf any sane dense bound; the bitset
     is offset from the set's smallest id and only the span matters *)
  let pid_bits = 7 lsl 20 in
  let ids = [ pid_bits lor 2; pid_bits lor 5; pid_bits lor 40 ] in
  let t = create ~block_limit:64 () in
  let m, r, contents = machine_with_set ~addr:0x100 ids in
  Cfpre.compile t ~pid:1 ~site:0x40 ~pred_ref:r ~contents;
  Alcotest.(check int) "wide ids still compile" 1 (Cfpre.size t);
  (match Cfpre.check t ~m ~pid:1 ~site:0x40 ~pred_ref:r with
   | Cfpre.Hit { entry; _ } ->
     List.iter
       (fun b -> Alcotest.(check bool) "compiled id is a member" true (Cfpre.member entry b))
       ids;
     Alcotest.(check bool) "below base is not" false (Cfpre.member entry (pid_bits lor 1));
     Alcotest.(check bool) "gap id is not" false (Cfpre.member entry (pid_bits lor 3));
     Alcotest.(check bool) "other program's block is not" false
       (Cfpre.member entry ((8 lsl 20) lor 2));
     Alcotest.(check bool) "negative id is not" false (Cfpre.member entry (-1))
   | v -> Alcotest.failf "expected Hit, got %s" (verdict_name v))

let test_span_bound_declines () =
  let t = create ~block_limit:64 () in
  (* span 65 (> 64) must decline; the site simply stays on the slow path *)
  let _, r, contents = machine_with_set ~addr:0x100 [ 100; 164 ] in
  Cfpre.compile t ~pid:1 ~site:0x40 ~pred_ref:r ~contents;
  Alcotest.(check int) "over-span set not compiled" 0 (Cfpre.size t);
  (* span exactly 64 is fine *)
  let _, r2, c2 = machine_with_set ~addr:0x200 [ 100; 163 ] in
  Cfpre.compile t ~pid:1 ~site:0x44 ~pred_ref:r2 ~contents:c2;
  Alcotest.(check int) "at-span set compiled" 1 (Cfpre.size t);
  (* malformed contents (not a multiple of 8, or empty) decline too *)
  Cfpre.compile t ~pid:1 ~site:0x48 ~pred_ref:r ~contents:"short";
  Cfpre.compile t ~pid:1 ~site:0x4c ~pred_ref:r ~contents:"";
  Alcotest.(check int) "malformed sets not compiled" 1 (Cfpre.size t)

let test_fallbacks () =
  let t = create () in
  let m, r, contents = machine_with_set ~addr:0x100 [ 3; 7 ] in
  Cfpre.compile t ~pid:1 ~site:0x40 ~pred_ref:r ~contents;
  (* a moved/forged reference: same site, different (addr, len, mac) *)
  check_is "forged mac falls back" "Fallback(ref)" t ~m ~pid:1 ~site:0x40
    ~pred_ref:{ r with Encoded.as_mac = String.make 16 'f' };
  check_is "moved addr falls back" "Fallback(ref)" t ~m ~pid:1 ~site:0x40
    ~pred_ref:{ r with Encoded.as_addr = 0x104 };
  (* the reference matches but the guest bytes moved out from under it *)
  assert (Machine.write_byte m (0x100 + 3) 0xff);
  check_is "mutated guest bytes fall back" "Fallback(contents)" t ~m ~pid:1 ~site:0x40
    ~pred_ref:r;
  Alcotest.(check int) "fallbacks counted" 3 (Cfpre.fallbacks t);
  Alcotest.(check int) "no false hits" 0 (Cfpre.hits t)

let test_pid_lifecycle () =
  let t = create () in
  let m, r, contents = machine_with_set ~addr:0x100 [ 3 ] in
  Cfpre.compile t ~pid:1 ~site:0x40 ~pred_ref:r ~contents;
  Cfpre.compile t ~pid:2 ~site:0x40 ~pred_ref:r ~contents;
  Alcotest.(check int) "two entries" 2 (Cfpre.size t);
  Cfpre.prepare_pid t 1;
  check_is "exec emptied pid 1" "Miss" t ~m ~pid:1 ~site:0x40 ~pred_ref:r;
  check_is "pid 2 stays warm" "Hit" t ~m ~pid:2 ~site:0x40 ~pred_ref:r;
  Cfpre.invalidate_pid t 2;
  Alcotest.(check int) "both invalidations counted" 2 (Cfpre.invalidations t);
  Alcotest.(check int) "table empty" 0 (Cfpre.size t)

let test_max_sites_bound () =
  let t = create ~max_sites:1 () in
  let _, r, contents = machine_with_set ~addr:0x100 [ 3 ] in
  Cfpre.compile t ~pid:1 ~site:0x40 ~pred_ref:r ~contents;
  Cfpre.compile t ~pid:1 ~site:0x44 ~pred_ref:r ~contents;
  Alcotest.(check int) "bound holds" 1 (Cfpre.size t);
  Alcotest.(check int) "one compile" 1 (Cfpre.compiles t);
  Alcotest.check_raises "max_sites 0 refused"
    (Invalid_argument "Cfpre.create: max_sites must be >= 1") (fun () ->
      ignore (create ~max_sites:0 ()));
  Alcotest.check_raises "block_limit 0 refused"
    (Invalid_argument "Cfpre.create: block_limit must be >= 1") (fun () ->
      ignore (create ~block_limit:0 ()))

(* ---- the amortized chain step vs the one-shot MAC ---- *)

let test_chain_step_equals_one_shot () =
  (* the fast path's single-block CMAC over the serialized policy state
     must equal the slow path's Cmac.mac of Encoded.state_bytes — the tag
     written back to guest memory is bit-identical on both paths *)
  let t = create () in
  let _, r, contents = machine_with_set ~addr:0x100 [ 3 ] in
  Cfpre.compile t ~pid:1 ~site:0x40 ~pred_ref:r ~contents;
  let m2, _, _ = machine_with_set ~addr:0x100 [ 3 ] in
  match Cfpre.check t ~m:m2 ~pid:1 ~site:0x40 ~pred_ref:r with
  | Cfpre.Hit { scratch = sc; _ } ->
    List.iter
      (fun (counter, last_block) ->
        Cfpre.state_into sc ~counter ~last_block;
        Alcotest.(check string)
          (Printf.sprintf "state (%d, %d)" counter last_block)
          (Encoded.state_bytes ~counter ~last_block)
          (Bytes.to_string sc.Cfpre.ps_state);
        Cmac.mac_block_into key sc.Cfpre.ps_state ~dst:sc.Cfpre.ps_tag;
        Alcotest.(check string)
          (Printf.sprintf "tag (%d, %d)" counter last_block)
          (Cmac.mac key (Encoded.state_bytes ~counter ~last_block))
          (Bytes.to_string sc.Cfpre.ps_tag))
      [ (0, 0); (1, 7); (12345, (9 lsl 20) lor 3); (max_int, max_int) ]
  | v -> Alcotest.failf "expected Hit, got %s" (verdict_name v)

let test_word_accessors_round_trip () =
  (* the allocation-free word accessors must agree with the boxed pair for
     every byte pattern, including the sign bit *)
  let m = Machine.create ~mem_size:64 in
  List.iter
    (fun v ->
      Machine.set_word m 8 v;
      Alcotest.(check int) (Printf.sprintf "word_at %d" v) v (Machine.word_at m 8);
      Alcotest.(check (option int))
        (Printf.sprintf "read_word %d" v)
        (Some v) (Machine.read_word m 8);
      assert (Machine.write_word m 16 v);
      Alcotest.(check int) (Printf.sprintf "write_word/word_at %d" v) v (Machine.word_at m 16))
    [ 0; 1; 255; 0x0123_4567_89ab; max_int; -1; min_int; (1 lsl 20) lor 3 ];
  Alcotest.(check bool) "word_ok in range" true (Machine.word_ok m 56);
  Alcotest.(check bool) "word_ok out of range" false (Machine.word_ok m 57);
  Alcotest.check_raises "word_at out of range"
    (Invalid_argument "Machine.word_at: out of range") (fun () ->
      ignore (Machine.word_at m 57))

(* ---- kernel-level lifecycle: execve and teardown invalidation ---- *)

let install ?(program_id = 1) ~program src =
  let img = Minic.Driver.compile_exn ~personality src in
  match
    Asc_core.Installer.install ~key ~personality
      ~options:{ Asc_core.Installer.default_options with program_id }
      ~program img
  with
  | Ok inst -> inst.Asc_core.Installer.image
  | Error e -> Alcotest.failf "install %s: %s" program e

let run_image ?(use_cfpre = false) ?(setup = fun _ -> ()) image =
  let kernel = Kernel.create ~personality () in
  kernel.Kernel.tracing <- true;
  let cfpre =
    if use_cfpre then Some (Cfpre.create ~registry:(Kernel.metrics kernel) ()) else None
  in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ?cfpre ()));
  setup kernel;
  let proc = Kernel.spawn kernel ~program:"ct" image in
  let stop = Kernel.run kernel proc ~max_cycles:200_000_000 in
  (kernel, proc, stop, cfpre)

let test_execve_invalidation () =
  (* A warms its bitset table, then execs B: A's entries were compiled
     against an image that is gone, so the exec must rebuild the pid's
     table (and B then compiles its own sites). *)
  let b_img = install ~program_id:2 ~program:"progB" "int main() { getpid(); return 4; }" in
  let a_img =
    install ~program_id:1 ~program:"progA"
      {|
int main() {
  int k;
  for (k = 0; k < 5; k = k + 1) { getpid(); }
  execve("/bin/progB", 0, 0);
  return 1;
}
|}
  in
  let _, _, stop, cfpre =
    run_image ~use_cfpre:true
      ~setup:(fun kernel -> Kernel.install_binary kernel ~path:"/bin/progB" b_img)
      a_img
  in
  (match stop with
   | Svm.Machine.Halted 4 -> ()
   | Svm.Machine.Killed r -> Alcotest.failf "killed: %s" r
   | _ -> Alcotest.fail "execve chain did not reach B's exit");
  let cf = Option.get cfpre in
  Alcotest.(check bool) "the loop hit the table" true (Cfpre.hits cf > 0);
  Alcotest.(check bool) "exec dropped the pid's entries" true (Cfpre.invalidations cf > 0)

let test_teardown_invalidation () =
  let img =
    install ~program:"loop"
      "int main() { int k; for (k = 0; k < 8; k = k + 1) { getpid(); } return 0; }"
  in
  let _, _, stop, cfpre = run_image ~use_cfpre:true img in
  (match stop with
   | Svm.Machine.Halted 0 -> ()
   | _ -> Alcotest.fail "run did not halt cleanly");
  let cf = Option.get cfpre in
  Alcotest.(check bool) "the run populated the table" true (Cfpre.hits cf > 0);
  Alcotest.(check int) "teardown left it empty" 0 (Cfpre.size cf)

let test_hot_loop_accounting () =
  (* with no vcache and no precomp in either run, the only divergence is
     the control-flow fast path — so the cycles the cfpre run saves are
     exactly the cycles-saved gauge *)
  let img =
    install ~program:"hot"
      "int main() { int k; for (k = 0; k < 50; k = k + 1) { getpid(); } return 0; }"
  in
  let _, p_off, _, _ = run_image ~use_cfpre:false img in
  let _, p_on, _, cfpre = run_image ~use_cfpre:true img in
  let cf = Option.get cfpre in
  let off = p_off.Process.machine.Svm.Machine.cycles in
  let on = p_on.Process.machine.Svm.Machine.cycles in
  Alcotest.(check bool) "table saves cycles" true (on < off);
  Alcotest.(check int) "savings fully accounted" (off - on) (Cfpre.cycles_saved cf)

(* ---- differential property: cfpre on vs off on random programs ---- *)

let loop_counter = ref 0

let fresh () =
  incr loop_counter;
  Printf.sprintf "p%d" !loop_counter

(* Small terminating MiniC programs biased toward repeated syscalls (loops
   around call statements) so the bitset table actually gets traffic. *)
let gen_program =
  let open QCheck.Gen in
  let var i = Printf.sprintf "v%d" (i mod 3) in
  let gen_call =
    let* c = int_bound 5 in
    let u = fresh () in
    return
      (match c with
       | 0 -> "getpid();"
       | 1 -> "write(1, \"ab\", 2);"
       | 2 ->
         Printf.sprintf
           "{ int f%s = open(\"/tmp/v\", 65, 420); if (f%s >= 0) { write(f%s, \"y\", 1); close(f%s); } }"
           u u u u
       | 3 -> "access(\"/etc/q\", 4);"
       | 4 -> Printf.sprintf "{ char t%s[16]; gettimeofday(t%s, 0); }" u u
       | _ -> "puts_str(\"t\\n\");")
  in
  let gen_stmt =
    oneof
      [ (let* i = int_bound 2 in
         let* v = int_bound 999 in
         return (Printf.sprintf "%s = %s + %d;" (var i) (var ((i + 1) mod 3)) v));
        gen_call;
        (let* body = gen_call in
         let k = fresh () in
         return
           (Printf.sprintf "{ int %s; for (%s = 0; %s < 4; %s = %s + 1) { %s } }" k k k k k
              body)) ]
  in
  let* stmts = list_size (int_range 1 10) gen_stmt in
  return
    (Printf.sprintf "int v0; int v1; int v2;\nint main() {\n  %s\n  return v0 %% 100;\n}"
       (String.concat "\n  " stmts))

let arbitrary_program = QCheck.make ~print:(fun s -> s) gen_program

(* Everything a run observably did: how it stopped, what it printed, every
   trace entry, and the audit verdicts (violation steps only — forensic
   snapshots embed cycle counts, which legitimately differ between
   configurations). *)
let observed kernel (proc : Process.t) stop =
  let verdicts =
    List.filter_map
      (function
        | Kernel.Violation { violation = v; _ } ->
          Some ("v:" ^ Violation.step_name v.Violation.v_step)
        | Kernel.Denied { reason; _ } -> Some ("d:" ^ reason)
        | Kernel.Execve { path; _ } -> Some ("e:" ^ path)
        | Kernel.Alert _ -> None)
      (Kernel.audit_log kernel)
  in
  (stop, Kernel.stdout_of proc, Kernel.trace kernel, verdicts)

let prop_differential =
  QCheck.Test.make ~name:"cfpre on/off runs are observably identical" ~count:40
    arbitrary_program (fun src ->
      match Minic.Driver.compile ~personality src with
      | Error e -> QCheck.Test.fail_reportf "generated program does not compile: %s" e
      | Ok img ->
        (match Asc_core.Installer.install ~key ~personality ~program:"ct" img with
         | Error e -> QCheck.Test.fail_reportf "install failed: %s" e
         | Ok inst ->
           let image = inst.Asc_core.Installer.image in
           let k_off, p_off, stop_off, _ = run_image ~use_cfpre:false image in
           let k_on, p_on, stop_on, cfpre = run_image ~use_cfpre:true image in
           let obs_off = observed k_off p_off stop_off in
           let obs_on = observed k_on p_on stop_on in
           if obs_off <> obs_on then
             QCheck.Test.fail_reportf "cfpre-on run diverged from cfpre-off";
           (match stop_off with
            | Svm.Machine.Killed r -> QCheck.Test.fail_reportf "false alarm: %s" r
            | _ -> ());
           let cf = Option.get cfpre in
           let off = p_off.Process.machine.Svm.Machine.cycles in
           let on = p_on.Process.machine.Svm.Machine.cycles in
           if on > off then
             QCheck.Test.fail_reportf "cfpre-on run cost more cycles (%d > %d)" on off;
           off - on = Cfpre.cycles_saved cf))

(* ---- differential property: mutations deny identically ---- *)

let fixed_victim =
  lazy
    (let src =
       {|
int main() {
  int k;
  for (k = 0; k < 3; k = k + 1) {
    int fd = open("/tmp/f", 65, 420);
    write(fd, "fuzzdata", 8);
    close(fd);
  }
  puts_str("done\n");
  return 0;
}
|}
     in
     let img = Minic.Driver.compile_exn ~personality src in
     match Asc_core.Installer.install ~key ~personality ~program:"fuzz" img with
     | Ok inst -> Svm.Obj_file.serialize inst.Asc_core.Installer.image
     | Error e -> failwith e)

let run_mutated ~use_cfpre img =
  let kernel = Kernel.create ~personality () in
  let cfpre =
    if use_cfpre then Some (Cfpre.create ~registry:(Kernel.metrics kernel) ()) else None
  in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ?cfpre ()));
  match Kernel.spawn kernel ~program:"mut" img with
  | exception Invalid_argument _ -> None (* image refused before any code ran *)
  | proc ->
    let stop = Kernel.run kernel proc ~max_cycles:200_000_000 in
    let steps =
      List.filter_map
        (function
          | Kernel.Violation { violation = v; _ } ->
            Some (Violation.step_name v.Violation.v_step)
          | _ -> None)
        (Kernel.audit_log kernel)
    in
    Some (stop, Kernel.stdout_of proc, steps)

let prop_mutation_deny_parity =
  QCheck.Test.make ~name:"mutations trip identical verdicts cfpre on/off" ~count:200
    QCheck.(pair small_nat (int_bound 255))
    (fun (pos, byte) ->
      let serialized = Lazy.force fixed_victim in
      let b = Bytes.of_string serialized in
      let pos = 8 + (pos * 131 mod (Bytes.length b - 8)) in
      Bytes.set b pos (Char.chr byte);
      match Svm.Obj_file.parse (Bytes.to_string b) with
      | Error _ -> true (* corrupt image rejected at parse time *)
      | Ok img ->
        (match (run_mutated ~use_cfpre:false img, run_mutated ~use_cfpre:true img) with
         | None, None -> true
         | Some (Svm.Machine.Cycle_limit, _, _), Some _
         | Some _, Some (Svm.Machine.Cycle_limit, _, _) ->
           true (* a runaway loop hits the budget at different points *)
         | Some a, Some b ->
           if a = b then true
           else QCheck.Test.fail_reportf "mutation verdict diverged cfpre on/off"
         | Some _, None | None, Some _ ->
           QCheck.Test.fail_reportf "image load diverged cfpre on/off"))

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_differential; prop_mutation_deny_parity ]

let () =
  Alcotest.run "cfpre"
    [ ( "unit",
        [ Alcotest.test_case "compile then hit" `Quick test_compile_and_hit;
          Alcotest.test_case "globally-unique ids use the base offset" `Quick
            test_globally_unique_ids;
          Alcotest.test_case "span bound declines compilation" `Quick
            test_span_bound_declines;
          Alcotest.test_case "forged ref / mutated bytes fall back" `Quick test_fallbacks;
          Alcotest.test_case "pid lifecycle" `Quick test_pid_lifecycle;
          Alcotest.test_case "max_sites and block_limit bounds" `Quick test_max_sites_bound ] );
      ( "chain",
        [ Alcotest.test_case "chain step equals one-shot MAC" `Quick
            test_chain_step_equals_one_shot;
          Alcotest.test_case "word accessors round-trip" `Quick
            test_word_accessors_round_trip ] );
      ( "lifecycle",
        [ Alcotest.test_case "execve rebuilds the pid's table" `Quick
            test_execve_invalidation;
          Alcotest.test_case "teardown empties the table" `Quick test_teardown_invalidation;
          Alcotest.test_case "hot loop savings accounted" `Quick test_hot_loop_accounting ] );
      ("differential", props) ]
