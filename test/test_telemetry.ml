(* The fleet telemetry plane (Asc_obs.Telemetry).

   End-to-end: an enforced run must record exactly one reason code per
   monitored call (the exhaustiveness invariant — reason buckets sum to
   the kernel's trap count), charge exactly telemetry_record_cost per call
   to the self-overhead meter, and retire shards losslessly at process
   teardown. The QCheck properties pin the merge algebra: commutative,
   associative, and count-conserving on every scalar, bucket and assoc
   leaf — the contract that makes read-side aggregation order-independent
   over concurrently written shards. *)

open Oskernel
module T = Asc_obs.Telemetry
module Cmac = Asc_crypto.Cmac

let key = Cmac.of_raw "telemetry-tstkey"
let personality = Personality.linux

let install ~program src =
  let img = Minic.Driver.compile_exn ~personality src in
  match Asc_core.Installer.install ~key ~personality ~program img with
  | Ok inst -> inst.Asc_core.Installer.image
  | Error e -> Alcotest.failf "install %s: %s" program e

let enforced_kernel () =
  let kernel = Kernel.create ~personality () in
  let vcache = Asc_core.Vcache.create ~registry:(Kernel.metrics kernel) () in
  let precomp = Asc_core.Precomp.create ~key ~registry:(Kernel.metrics kernel) () in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ~vcache ~precomp ()));
  kernel

let loop_src =
  "int main() { int k; for (k = 0; k < 20; k = k + 1) { getpid(); } return 0; }"

(* ---- end-to-end invariants on a real enforced run ---- *)

let test_exhaustiveness () =
  let image = install ~program:"loop" loop_src in
  let kernel = enforced_kernel () in
  let proc = Kernel.spawn kernel ~program:"loop" image in
  (match Kernel.run kernel proc ~max_cycles:200_000_000 with
   | Svm.Machine.Halted 0 -> ()
   | _ -> Alcotest.fail "run did not halt cleanly");
  let agg = T.aggregate (Kernel.telemetry kernel) in
  Alcotest.(check bool) "calls recorded" true (agg.T.t_calls > 0);
  Alcotest.(check int) "one reason per monitored call" agg.T.t_calls (T.reasons_total agg);
  Alcotest.(check int) "every trap recorded" (Kernel.syscall_count kernel) agg.T.t_calls;
  Alcotest.(check int) "self-overhead exactly accounted"
    (agg.T.t_calls * Svm.Cost_model.telemetry_record_cost)
    agg.T.t_self_cycles;
  Alcotest.(check bool) "verification cycles recorded" true (agg.T.t_cycles > 0);
  (* the hot loop must have taken the precomp fast path at least once *)
  Alcotest.(check bool) "precomp hits recorded" true
    (agg.T.t_reasons.(T.reason_index T.Precomp_hit) > 0)

let test_deny_recorded () =
  (* an unauthenticated image (no install) is denied on its first trap —
     which still records exactly one reason, a Deny with the step name *)
  let img = Minic.Driver.compile_exn ~personality "int main() { getpid(); return 0; }" in
  let kernel = enforced_kernel () in
  let proc = Kernel.spawn kernel ~program:"raw" img in
  (match Kernel.run kernel proc ~max_cycles:200_000_000 with
   | Svm.Machine.Killed _ -> ()
   | _ -> Alcotest.fail "unauthenticated run was not killed");
  let agg = T.aggregate (Kernel.telemetry kernel) in
  Alcotest.(check int) "one reason per call" agg.T.t_calls (T.reasons_total agg);
  Alcotest.(check int) "the deny is bucketed" 1 agg.T.t_reasons.(T.reason_index (T.Deny ""));
  Alcotest.(check bool) "deny step named" true
    (List.mem_assoc "unauthenticated" agg.T.t_deny_steps)

let test_shard_lifecycle () =
  let image = install ~program:"loop" loop_src in
  let kernel = enforced_kernel () in
  let tel = Kernel.telemetry kernel in
  let proc = Kernel.spawn kernel ~program:"loop" image in
  Alcotest.(check (list int)) "shard live after spawn" [ proc.Process.pid ]
    (T.live_pids tel);
  ignore (Kernel.run kernel proc ~max_cycles:200_000_000);
  (* terminal stop retired the shard; its counts survive in the aggregate *)
  Alcotest.(check (list int)) "shard retired at teardown" [] (T.live_pids tel);
  Alcotest.(check (list (pair int string))) "ledger released" []
    (List.map (fun _ -> (0, "")) (T.ledger tel ~pid:proc.Process.pid));
  let agg = T.aggregate tel in
  Alcotest.(check int) "retired counts conserved" (Kernel.syscall_count kernel) agg.T.t_calls;
  Alcotest.(check int) "one retired shard folded" 1 agg.T.t_shards

let test_ledger_entries () =
  let t = T.create ~ring_capacity:4 () in
  let sh = T.shard t ~pid:9 in
  for i = 1 to 6 do
    T.record t sh ~site:(0x40 + i) ~sem:"read" ~reason:T.Slow_path ~cycles:(100 * i)
      ~alloc:(10 * i) ~now:(1000 * i)
  done;
  let entries = T.ledger t ~pid:9 in
  Alcotest.(check int) "ring bounded" 4 (List.length entries);
  (* oldest two dropped; remaining are in order with their stamps intact *)
  Alcotest.(check (list int)) "oldest first, bounded"
    [ 0x43; 0x44; 0x45; 0x46 ]
    (List.map (fun e -> e.T.le_site) entries);
  List.iter
    (fun e ->
      Alcotest.(check string) "sem kept" "read" e.T.le_sem;
      Alcotest.(check bool) "stamp kept" true (e.T.le_ts > 0))
    entries;
  Alcotest.(check (list int)) "alloc stamps kept" [ 30; 40; 50; 60 ]
    (List.map (fun e -> e.T.le_alloc) entries)

(* ---- the merge algebra ---- *)

let reasons_pool =
  [| T.Precomp_hit; T.Precomp_resumed; T.Precomp_fallback T.F_no_entry;
     T.Precomp_fallback T.F_statics; T.Precomp_fallback T.F_tag; T.Vcache_hit;
     T.Slow_path; T.Deny "call_mac"; T.Deny "control_flow" |]

let sems_pool = [| "read"; "write"; "open"; "close" |]

(* one synthetic record: (site, sem index, reason index, cycles) *)
let ops_arb =
  QCheck.(
    list_of_size Gen.(int_range 0 60)
      (quad (int_range 0 5) (int_range 0 (Array.length sems_pool - 1))
         (int_range 0 (Array.length reasons_pool - 1))
         (int_range 1 500_000)))

(* each synthetic record's minor-words charge is derived deterministically
   from its cycles so the alloc plane gets the same variety as the cycle
   plane without widening the generator tuple *)
let alloc_of_cycles cycles = (cycles mod 977) + 1

let stats_of_ops t ~pid ops =
  let sh = T.shard t ~pid in
  List.iteri
    (fun i (site, sem, reason, cycles) ->
      T.record t sh ~site:(0x100 + site) ~sem:sems_pool.(sem)
        ~reason:reasons_pool.(reason) ~cycles ~alloc:(alloc_of_cycles cycles) ~now:(i + 1))
    ops;
  T.stats_of_shard t sh

let hist_count (_, h) = h.T.q_count
let hist_sum (_, h) = h.T.q_sum

let site_alloc_total s = List.fold_left (fun acc (_, w) -> acc + w) 0 s.T.t_site_alloc

(* the alloc plane must conserve under merge exactly like the call counts:
   total words, the histogram's count/sum, and the per-site word rollup *)
let alloc_conserved a b m =
  m.T.t_alloc_words = a.T.t_alloc_words + b.T.t_alloc_words
  && m.T.t_alloc.T.q_count = a.T.t_alloc.T.q_count + b.T.t_alloc.T.q_count
  && m.T.t_alloc.T.q_sum = a.T.t_alloc.T.q_sum + b.T.t_alloc.T.q_sum
  && site_alloc_total m = site_alloc_total a + site_alloc_total b
  && m.T.t_alloc.T.q_sum = m.T.t_alloc_words

let conserved a b m =
  m.T.t_calls = a.T.t_calls + b.T.t_calls
  && m.T.t_cycles = a.T.t_cycles + b.T.t_cycles
  && m.T.t_shards = a.T.t_shards + b.T.t_shards
  && T.reasons_total m = T.reasons_total a + T.reasons_total b
  && Array.for_all (fun x -> x)
       (Array.mapi (fun i x -> x = a.T.t_reasons.(i) + b.T.t_reasons.(i)) m.T.t_reasons)
  && List.fold_left ( + ) 0 (List.map hist_count m.T.t_per_sem)
     = List.fold_left ( + ) 0 (List.map hist_count a.T.t_per_sem)
       + List.fold_left ( + ) 0 (List.map hist_count b.T.t_per_sem)
  && List.fold_left ( + ) 0 (List.map hist_sum m.T.t_per_sem)
     = List.fold_left ( + ) 0 (List.map hist_sum a.T.t_per_sem)
       + List.fold_left ( + ) 0 (List.map hist_sum b.T.t_per_sem)
  && alloc_conserved a b m

let qcheck_merge_commutes =
  QCheck.Test.make ~name:"merge is order-insensitive and count-conserving" ~count:100
    QCheck.(pair ops_arb ops_arb)
    (fun (opsa, opsb) ->
      let t = T.create () in
      let sa = stats_of_ops t ~pid:1 opsa in
      let sb = stats_of_ops t ~pid:2 opsb in
      let ab = T.merge sa sb in
      ab = T.merge sb sa && conserved sa sb ab
      && T.merge T.empty_stats sa = sa && T.merge sa T.empty_stats = sa)

let qcheck_merge_associates =
  QCheck.Test.make ~name:"merge associates (any aggregation tree agrees)" ~count:100
    QCheck.(triple ops_arb ops_arb ops_arb)
    (fun (opsa, opsb, opsc) ->
      let t = T.create () in
      let sa = stats_of_ops t ~pid:1 opsa in
      let sb = stats_of_ops t ~pid:2 opsb in
      let sc = stats_of_ops t ~pid:3 opsc in
      T.merge (T.merge sa sb) sc = T.merge sa (T.merge sb sc))

let qcheck_aggregate_equals_fold =
  QCheck.Test.make ~name:"aggregate = fold of per-shard stats" ~count:50
    QCheck.(pair ops_arb ops_arb)
    (fun (opsa, opsb) ->
      let t = T.create () in
      let sa = stats_of_ops t ~pid:1 opsa in
      let sb = stats_of_ops t ~pid:2 opsb in
      (* retiring one shard must not change the aggregate *)
      let before = T.aggregate t in
      T.retire_pid t ~pid:1;
      let after = T.aggregate t in
      before = T.merge sa sb && after.T.t_calls = before.T.t_calls
      && T.reasons_total after = T.reasons_total before)

(* ---- reason taxonomy ---- *)

let test_reason_taxonomy () =
  Alcotest.(check int) "labels cover every bucket" T.num_reasons
    (Array.length T.reason_labels);
  let distinct = List.sort_uniq compare (Array.to_list T.reason_labels) in
  Alcotest.(check int) "labels distinct" T.num_reasons (List.length distinct);
  Array.iter
    (fun r ->
      let i = T.reason_index r in
      Alcotest.(check bool) "index in range" true (i >= 0 && i < T.num_reasons);
      Alcotest.(check string) "label agrees with index" T.reason_labels.(i)
        (T.reason_label r))
    reasons_pool;
  (* all Deny steps share one bucket *)
  Alcotest.(check int) "deny folds to one bucket"
    (T.reason_index (T.Deny "call_mac"))
    (T.reason_index (T.Deny "control_flow"))

(* ---- snapshot emitter ---- *)

let test_emitter_rows () =
  let t = T.create () in
  T.set_emitter t ~interval:1000;
  let sh = T.shard t ~pid:1 in
  let record ~now =
    T.record t sh ~site:0x40 ~sem:"read" ~reason:T.Slow_path ~cycles:500 ~alloc:32 ~now
  in
  record ~now:400;   (* below the first boundary: no row *)
  record ~now:1200;  (* crosses 1000: row 1 *)
  record ~now:1300;  (* next boundary now 2200: no row *)
  record ~now:2500;  (* crosses 2200: row 2 *)
  let rows = T.snapshots t in
  Alcotest.(check int) "two rows cut" 2 (List.length rows);
  let ts_of row =
    match Asc_obs.Json.member "ts" row with
    | Some ts -> Option.get (Asc_obs.Json.to_int ts)
    | None -> Alcotest.fail "row missing ts"
  in
  Alcotest.(check (list int)) "stamped at the crossing calls" [ 1200; 2500 ]
    (List.map ts_of rows);
  (* cumulative counters are monotone; interval deltas cover all calls *)
  let calls_of row = Option.get (Asc_obs.Json.to_int (Option.get (Asc_obs.Json.member "calls" row))) in
  Alcotest.(check (list int)) "cumulative calls" [ 2; 4 ] (List.map calls_of rows);
  let jsonl = T.snapshots_jsonl t in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  Alcotest.(check int) "jsonl row per snapshot" 2 (List.length lines);
  List.iter
    (fun line ->
      match Asc_obs.Json.parse line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "snapshot line unreadable: %s" e)
    lines

let () =
  Alcotest.run "telemetry"
    [ ( "end-to-end",
        [ Alcotest.test_case "reason exhaustiveness" `Quick test_exhaustiveness;
          Alcotest.test_case "deny recorded with step" `Quick test_deny_recorded;
          Alcotest.test_case "shard lifecycle" `Quick test_shard_lifecycle;
          Alcotest.test_case "bounded ledger" `Quick test_ledger_entries ] );
      ( "merge",
        [ QCheck_alcotest.to_alcotest qcheck_merge_commutes;
          QCheck_alcotest.to_alcotest qcheck_merge_associates;
          QCheck_alcotest.to_alcotest qcheck_aggregate_equals_fold ] );
      ( "taxonomy",
        [ Alcotest.test_case "labels exhaustive and distinct" `Quick test_reason_taxonomy ] );
      ( "emitter",
        [ Alcotest.test_case "interval rows" `Quick test_emitter_rows ] ) ]
