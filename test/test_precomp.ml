(* The precompiled-site table (Asc_core.Precomp).

   Like the vcache, the table is a pure accelerator: its fast path may only
   prove calls whose rebuilt MAC matches the supplied tag, never change a
   verdict. The unit tests pin the verdict lattice (miss / memo hit /
   streaming resume / fallback), the suffix-patching soundness (a resumed
   MAC is exactly the slow path's MAC of the live call), the per-pid
   lifecycle and the site bound. The differential properties run randomly
   generated programs — and random byte mutations of an installed binary —
   on a precomp-on and a precomp-off kernel and require identical
   observable behavior, with the saved cycles exactly accounted. *)

open Oskernel
module Cmac = Asc_crypto.Cmac
module Encoded = Asc_core.Encoded
module Descriptor = Asc_core.Descriptor
module Precomp = Asc_core.Precomp

let key = Cmac.of_raw "precomp-test-key"
let personality = Personality.linux

(* ---- unit tests on the table proper ---- *)

let create ?max_sites () =
  Precomp.create ?max_sites ~key ~registry:(Asc_obs.Metrics.create ()) ()

(* a site with one constrained numeric argument *)
let mk ?(site = 0x40) ?(block = 7) ?(cval = 42) () =
  let d = Descriptor.(with_const_arg empty 1) in
  { Encoded.e_number = 20; e_site = site; e_descriptor = d; e_block = block;
    e_const_args = [ (1, cval) ]; e_string_args = []; e_ext = None; e_control = None }

(* a site exercising every dynamic-field kind: const, string, extension and
   control-flow reference *)
let rich ?(cval = 5) ?(s = ("/tmp/a", 0x900)) ?(ext_addr = 0xa00) ?(cf = (0xb00, 0xc00)) () =
  let d =
    Descriptor.(with_control_flow (with_ext (with_string_arg (with_const_arg empty 0) 2)))
  in
  let asref contents addr =
    { Encoded.as_addr = addr;
      as_len = String.length contents;
      as_mac = Cmac.mac key contents }
  in
  let contents, s_addr = s in
  let cf_addr, lbptr = cf in
  { Encoded.e_number = 11; e_site = 0x80; e_descriptor = d; e_block = 9;
    e_const_args = [ (0, cval) ];
    e_string_args = [ (2, asref contents s_addr) ];
    e_ext = Some (asref "extblock" ext_addr);
    e_control = Some (asref "preds" cf_addr, lbptr) }

let mac_of call = Cmac.mac key (Encoded.encode call)

let compile_call t ~pid call =
  Precomp.compile t ~pid ~call ~encoded:(Encoded.encode call) ~mac:(mac_of call)

let verdict =
  Alcotest.testable
    (fun ppf -> function
      | Precomp.Miss -> Format.fprintf ppf "Miss"
      | Precomp.Hit { suffix_len; encoded_len } ->
        Format.fprintf ppf "Hit(%d/%d)" suffix_len encoded_len
      | Precomp.Resumed { suffix_len; encoded_len } ->
        Format.fprintf ppf "Resumed(%d/%d)" suffix_len encoded_len
      | Precomp.Fallback Precomp.Statics_mismatch -> Format.fprintf ppf "Fallback(statics)"
      | Precomp.Fallback Precomp.Tag_mismatch -> Format.fprintf ppf "Fallback(tag)")
    ( = )

let test_compile_and_hit () =
  let t = create () in
  let call = mk () in
  let len = String.length (Encoded.encode call) in
  Alcotest.check verdict "cold table misses" Precomp.Miss
    (Precomp.check t ~pid:1 ~call ~supplied:(mac_of call));
  compile_call t ~pid:1 call;
  Alcotest.(check int) "one entry" 1 (Precomp.size t);
  Alcotest.check verdict "same call memo-hits"
    (Precomp.Hit { suffix_len = len - Encoded.static_prefix_len; encoded_len = len })
    (Precomp.check t ~pid:1 ~call ~supplied:(mac_of call));
  Alcotest.(check int) "hit counted" 1 (Precomp.hits t);
  (* a forged tag on otherwise-identical bytes must not be proved *)
  Alcotest.check verdict "forged tag falls back" (Precomp.Fallback Precomp.Tag_mismatch)
    (Precomp.check t ~pid:1 ~call ~supplied:(String.make 16 'f'))

let test_statics_mismatch_falls_back () =
  let t = create () in
  let call = mk () in
  compile_call t ~pid:1 call;
  Alcotest.check verdict "different block id" (Precomp.Fallback Precomp.Statics_mismatch)
    (Precomp.check t ~pid:1 ~call:(mk ~block:8 ()) ~supplied:(mac_of (mk ~block:8 ())));
  Alcotest.check verdict "different site misses" Precomp.Miss
    (Precomp.check t ~pid:1 ~call:(mk ~site:0x44 ()) ~supplied:(mac_of (mk ~site:0x44 ())));
  Alcotest.check verdict "different pid misses" Precomp.Miss
    (Precomp.check t ~pid:2 ~call ~supplied:(mac_of call));
  Alcotest.(check int) "no false hits" 0 (Precomp.hits t)

let test_resume_moves_memo () =
  let t = create () in
  compile_call t ~pid:1 (mk ~cval:42 ());
  let call' = mk ~cval:43 () in
  let len = String.length (Encoded.encode call') in
  Alcotest.check verdict "changed argument resumes"
    (Precomp.Resumed { suffix_len = len - Encoded.static_prefix_len; encoded_len = len })
    (Precomp.check t ~pid:1 ~call:call' ~supplied:(mac_of call'));
  Alcotest.check verdict "memo moved: second time is a hit"
    (Precomp.Hit { suffix_len = len - Encoded.static_prefix_len; encoded_len = len })
    (Precomp.check t ~pid:1 ~call:call' ~supplied:(mac_of call'));
  (* a resume against a wrong tag proves nothing and remembers nothing *)
  Alcotest.check verdict "wrong tag on a changed call falls back"
    (Precomp.Fallback Precomp.Tag_mismatch)
    (Precomp.check t ~pid:1 ~call:(mk ~cval:44 ()) ~supplied:(mac_of call'));
  Alcotest.check verdict "failed resume did not move the memo"
    (Precomp.Hit { suffix_len = len - Encoded.static_prefix_len; encoded_len = len })
    (Precomp.check t ~pid:1 ~call:call' ~supplied:(mac_of call'))

let test_patching_covers_every_field_kind () =
  (* Compile from one rich call, then present calls differing in each
     dynamic field in turn (and in all at once). A Resumed verdict means
     the patched template MAC'd to the slow path's tag — i.e. patching
     reproduced Encoded.encode of the live call byte-for-byte. *)
  let t = create () in
  compile_call t ~pid:1 (rich ());
  let resumed what call =
    match Precomp.check t ~pid:1 ~call ~supplied:(mac_of call) with
    | Precomp.Resumed _ | Precomp.Hit _ -> ()
    | v -> Alcotest.failf "%s: expected Resumed, got %a" what (Alcotest.pp verdict) v
  in
  resumed "const value" (rich ~cval:6 ());
  resumed "string contents + address" (rich ~s:("/tmp/bb", 0x910) ());
  resumed "extension address" (rich ~ext_addr:0xa40 ());
  resumed "control-flow ref + lbptr" (rich ~cf:(0xb40, 0xc40) ());
  resumed "all fields at once" (rich ~cval:7 ~s:("/x", 0x920) ~ext_addr:0xa80 ~cf:(0xb80, 0xc80) ())

let test_pid_lifecycle () =
  let t = create () in
  let call = mk () in
  compile_call t ~pid:1 call;
  compile_call t ~pid:2 call;
  Alcotest.(check int) "two entries" 2 (Precomp.size t);
  Precomp.prepare_pid t 1;
  Alcotest.check verdict "exec emptied pid 1" Precomp.Miss
    (Precomp.check t ~pid:1 ~call ~supplied:(mac_of call));
  (match Precomp.check t ~pid:2 ~call ~supplied:(mac_of call) with
   | Precomp.Hit _ -> ()
   | v -> Alcotest.failf "pid 2 should stay warm, got %a" (Alcotest.pp verdict) v);
  Precomp.invalidate_pid t 2;
  Alcotest.(check int) "both invalidations counted" 2 (Precomp.invalidations t);
  Alcotest.(check int) "table empty" 0 (Precomp.size t)

let test_max_sites_bound () =
  let t = create ~max_sites:1 () in
  compile_call t ~pid:1 (mk ~site:0x40 ());
  compile_call t ~pid:1 (mk ~site:0x44 ());
  Alcotest.(check int) "bound holds" 1 (Precomp.size t);
  Alcotest.(check int) "one compile" 1 (Precomp.compiles t);
  Alcotest.check verdict "beyond-bound site keeps missing" Precomp.Miss
    (Precomp.check t ~pid:1 ~call:(mk ~site:0x44 ()) ~supplied:(mac_of (mk ~site:0x44 ())));
  Alcotest.check_raises "max_sites 0 refused"
    (Invalid_argument "Precomp.create: max_sites must be >= 1") (fun () ->
      ignore (create ~max_sites:0 ()))

(* ---- kernel-level lifecycle: execve and teardown invalidation ---- *)

let install ?(program_id = 1) ~program src =
  let img = Minic.Driver.compile_exn ~personality src in
  match
    Asc_core.Installer.install ~key ~personality
      ~options:{ Asc_core.Installer.default_options with program_id }
      ~program img
  with
  | Ok inst -> inst.Asc_core.Installer.image
  | Error e -> Alcotest.failf "install %s: %s" program e

let run_image ?(use_precomp = false) ?(setup = fun _ -> ()) image =
  let kernel = Kernel.create ~personality () in
  kernel.Kernel.tracing <- true;
  let precomp =
    if use_precomp then Some (Precomp.create ~key ~registry:(Kernel.metrics kernel) ())
    else None
  in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ?precomp ()));
  setup kernel;
  let proc = Kernel.spawn kernel ~program:"pt" image in
  let stop = Kernel.run kernel proc ~max_cycles:200_000_000 in
  (kernel, proc, stop, precomp)

let test_execve_invalidation () =
  (* A warms its site table, then execs B: A's entries were compiled against
     an image that is gone, so the exec must rebuild the pid's table (and B
     then compiles its own sites). *)
  let b_img = install ~program_id:2 ~program:"progB" "int main() { getpid(); return 4; }" in
  let a_img =
    install ~program_id:1 ~program:"progA"
      {|
int main() {
  int k;
  for (k = 0; k < 5; k = k + 1) { getpid(); }
  execve("/bin/progB", 0, 0);
  return 1;
}
|}
  in
  let _, _, stop, precomp =
    run_image ~use_precomp:true
      ~setup:(fun kernel -> Kernel.install_binary kernel ~path:"/bin/progB" b_img)
      a_img
  in
  (match stop with
   | Svm.Machine.Halted 4 -> ()
   | Svm.Machine.Killed r -> Alcotest.failf "killed: %s" r
   | _ -> Alcotest.fail "execve chain did not reach B's exit");
  let pc = Option.get precomp in
  Alcotest.(check bool) "the loop hit the table" true (Precomp.hits pc > 0);
  Alcotest.(check bool) "exec dropped the pid's entries" true (Precomp.invalidations pc > 0)

let test_teardown_invalidation () =
  let img =
    install ~program:"loop"
      "int main() { int k; for (k = 0; k < 8; k = k + 1) { getpid(); } return 0; }"
  in
  let _, _, stop, precomp = run_image ~use_precomp:true img in
  (match stop with
   | Svm.Machine.Halted 0 -> ()
   | _ -> Alcotest.fail "run did not halt cleanly");
  let pc = Option.get precomp in
  Alcotest.(check bool) "the run populated the table" true (Precomp.hits pc > 0);
  Alcotest.(check int) "teardown left it empty" 0 (Precomp.size pc)

let test_hot_loop_accounting () =
  (* the cycles the precompiled run saves are exactly the cycles-saved
     gauge: every divergence from the slow path is accounted *)
  let img =
    install ~program:"hot"
      "int main() { int k; for (k = 0; k < 50; k = k + 1) { getpid(); } return 0; }"
  in
  let _, p_off, _, _ = run_image ~use_precomp:false img in
  let _, p_on, _, precomp = run_image ~use_precomp:true img in
  let pc = Option.get precomp in
  let off = p_off.Process.machine.Svm.Machine.cycles in
  let on = p_on.Process.machine.Svm.Machine.cycles in
  Alcotest.(check bool) "table saves cycles" true (on < off);
  Alcotest.(check int) "savings fully accounted" (off - on) (Precomp.cycles_saved pc)

(* ---- differential property: precomp on vs off on random programs ---- *)

let loop_counter = ref 0

let fresh () =
  incr loop_counter;
  Printf.sprintf "p%d" !loop_counter

(* Small terminating MiniC programs biased toward repeated syscalls (loops
   around call statements) so the site table actually gets traffic. *)
let gen_program =
  let open QCheck.Gen in
  let var i = Printf.sprintf "v%d" (i mod 3) in
  let gen_call =
    let* c = int_bound 5 in
    let u = fresh () in
    return
      (match c with
       | 0 -> "getpid();"
       | 1 -> "write(1, \"ab\", 2);"
       | 2 ->
         Printf.sprintf
           "{ int f%s = open(\"/tmp/v\", 65, 420); if (f%s >= 0) { write(f%s, \"y\", 1); close(f%s); } }"
           u u u u
       | 3 -> "access(\"/etc/q\", 4);"
       | 4 -> Printf.sprintf "{ char t%s[16]; gettimeofday(t%s, 0); }" u u
       | _ -> "puts_str(\"t\\n\");")
  in
  let gen_stmt =
    oneof
      [ (let* i = int_bound 2 in
         let* v = int_bound 999 in
         return (Printf.sprintf "%s = %s + %d;" (var i) (var ((i + 1) mod 3)) v));
        gen_call;
        (let* body = gen_call in
         let k = fresh () in
         return
           (Printf.sprintf "{ int %s; for (%s = 0; %s < 4; %s = %s + 1) { %s } }" k k k k k
              body)) ]
  in
  let* stmts = list_size (int_range 1 10) gen_stmt in
  return
    (Printf.sprintf "int v0; int v1; int v2;\nint main() {\n  %s\n  return v0 %% 100;\n}"
       (String.concat "\n  " stmts))

let arbitrary_program = QCheck.make ~print:(fun s -> s) gen_program

(* Everything a run observably did: how it stopped, what it printed, every
   trace entry, and the audit verdicts (violation steps only — forensic
   snapshots embed cycle counts, which legitimately differ between
   configurations). *)
let observed kernel (proc : Process.t) stop =
  let verdicts =
    List.filter_map
      (function
        | Kernel.Violation { violation = v; _ } -> Some ("v:" ^ Violation.step_name v.Violation.v_step)
        | Kernel.Denied { reason; _ } -> Some ("d:" ^ reason)
        | Kernel.Execve { path; _ } -> Some ("e:" ^ path)
        | Kernel.Alert _ -> None)
      (Kernel.audit_log kernel)
  in
  (stop, Kernel.stdout_of proc, Kernel.trace kernel, verdicts)

let prop_differential =
  QCheck.Test.make ~name:"precomp on/off runs are observably identical" ~count:40
    arbitrary_program (fun src ->
      match Minic.Driver.compile ~personality src with
      | Error e -> QCheck.Test.fail_reportf "generated program does not compile: %s" e
      | Ok img ->
        (match Asc_core.Installer.install ~key ~personality ~program:"pt" img with
         | Error e -> QCheck.Test.fail_reportf "install failed: %s" e
         | Ok inst ->
           let image = inst.Asc_core.Installer.image in
           let k_off, p_off, stop_off, _ = run_image ~use_precomp:false image in
           let k_on, p_on, stop_on, precomp = run_image ~use_precomp:true image in
           let obs_off = observed k_off p_off stop_off in
           let obs_on = observed k_on p_on stop_on in
           if obs_off <> obs_on then
             QCheck.Test.fail_reportf "precomp-on run diverged from precomp-off";
           (match stop_off with
            | Svm.Machine.Killed r -> QCheck.Test.fail_reportf "false alarm: %s" r
            | _ -> ());
           let pc = Option.get precomp in
           let off = p_off.Process.machine.Svm.Machine.cycles in
           let on = p_on.Process.machine.Svm.Machine.cycles in
           if on > off then
             QCheck.Test.fail_reportf "precomp-on run cost more cycles (%d > %d)" on off;
           off - on = Precomp.cycles_saved pc))

(* ---- differential property: mutations deny identically ---- *)

let fixed_victim =
  lazy
    (let src =
       {|
int main() {
  int k;
  for (k = 0; k < 3; k = k + 1) {
    int fd = open("/tmp/f", 65, 420);
    write(fd, "fuzzdata", 8);
    close(fd);
  }
  puts_str("done\n");
  return 0;
}
|}
     in
     let img = Minic.Driver.compile_exn ~personality src in
     match Asc_core.Installer.install ~key ~personality ~program:"fuzz" img with
     | Ok inst -> Svm.Obj_file.serialize inst.Asc_core.Installer.image
     | Error e -> failwith e)

let run_mutated ~use_precomp img =
  let kernel = Kernel.create ~personality () in
  let precomp =
    if use_precomp then Some (Precomp.create ~key ~registry:(Kernel.metrics kernel) ())
    else None
  in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ?precomp ()));
  match Kernel.spawn kernel ~program:"mut" img with
  | exception Invalid_argument _ -> None (* image refused before any code ran *)
  | proc ->
    let stop = Kernel.run kernel proc ~max_cycles:200_000_000 in
    let steps =
      List.filter_map
        (function
          | Kernel.Violation { violation = v; _ } -> Some (Violation.step_name v.Violation.v_step)
          | _ -> None)
        (Kernel.audit_log kernel)
    in
    Some (stop, Kernel.stdout_of proc, steps)

let prop_mutation_deny_parity =
  QCheck.Test.make ~name:"mutations trip identical verdicts precomp on/off" ~count:200
    QCheck.(pair small_nat (int_bound 255))
    (fun (pos, byte) ->
      let serialized = Lazy.force fixed_victim in
      let b = Bytes.of_string serialized in
      let pos = 8 + (pos * 131 mod (Bytes.length b - 8)) in
      Bytes.set b pos (Char.chr byte);
      match Svm.Obj_file.parse (Bytes.to_string b) with
      | Error _ -> true (* corrupt image rejected at parse time *)
      | Ok img ->
        (match (run_mutated ~use_precomp:false img, run_mutated ~use_precomp:true img) with
         | None, None -> true
         | Some (Svm.Machine.Cycle_limit, _, _), Some _
         | Some _, Some (Svm.Machine.Cycle_limit, _, _) ->
           true (* a runaway loop hits the budget at different points *)
         | Some a, Some b ->
           if a = b then true
           else QCheck.Test.fail_reportf "mutation verdict diverged precomp on/off"
         | Some _, None | None, Some _ ->
           QCheck.Test.fail_reportf "image load diverged precomp on/off"))

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_differential; prop_mutation_deny_parity ]

let () =
  Alcotest.run "precomp"
    [ ( "unit",
        [ Alcotest.test_case "compile then memo hit" `Quick test_compile_and_hit;
          Alcotest.test_case "statics mismatch falls back" `Quick
            test_statics_mismatch_falls_back;
          Alcotest.test_case "resume verifies and moves the memo" `Quick
            test_resume_moves_memo;
          Alcotest.test_case "patching covers every field kind" `Quick
            test_patching_covers_every_field_kind;
          Alcotest.test_case "pid lifecycle" `Quick test_pid_lifecycle;
          Alcotest.test_case "max_sites bound" `Quick test_max_sites_bound ] );
      ( "lifecycle",
        [ Alcotest.test_case "execve rebuilds the pid's table" `Quick
            test_execve_invalidation;
          Alcotest.test_case "teardown empties the table" `Quick test_teardown_invalidation;
          Alcotest.test_case "hot loop savings accounted" `Quick test_hot_loop_accounting ] );
      ("differential", props) ]
