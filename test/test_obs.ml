(* Tests for the observability library: the metrics registry (hot-path
   counters, gauges, fixed-bucket histograms), the bounded ring buffer, the
   span tracer and its exporters, and the self-contained JSON
   emitter/parser that backs them. *)

module Json = Asc_obs.Json
module Ring = Asc_obs.Ring
module Clock = Asc_obs.Clock
module Metrics = Asc_obs.Metrics
module Trace = Asc_obs.Trace
module Authlog = Asc_obs.Authlog

(* --- metrics registry --- *)

let test_counter_gauge () =
  let r = Metrics.create () in
  let c = Metrics.counter r "calls" in
  Metrics.inc c;
  Metrics.inc c;
  Metrics.add c 40;
  Alcotest.(check int) "counter" 42 (Metrics.counter_value c);
  Alcotest.(check (option int)) "by name" (Some 42) (Metrics.value r "calls");
  let g = Metrics.gauge r "depth" in
  Metrics.set g 7;
  Metrics.set g 3;
  Alcotest.(check int) "gauge keeps last" 3 (Metrics.gauge_value g);
  (* get-or-create returns the same cell *)
  Metrics.inc (Metrics.counter r "calls");
  Alcotest.(check int) "same handle" 43 (Metrics.counter_value c);
  Alcotest.(check (list string)) "names sorted" [ "calls"; "depth" ] (Metrics.names r)

let test_kind_mismatch () =
  let r = Metrics.create () in
  ignore (Metrics.counter r "x");
  Alcotest.check_raises "counter vs gauge"
    (Invalid_argument "Metrics: \"x\" already registered as another kind") (fun () ->
      ignore (Metrics.gauge r "x"))

let test_histogram_bucket_edges () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:[ 10; 100; 1000 ] r "lat" in
  (* exactly on a bound lands in that bucket (bounds are inclusive) *)
  List.iter (Metrics.observe h) [ 0; 10; 11; 100; 1000; 1001 ];
  let s = Metrics.histogram_value h in
  Alcotest.(check (list (pair int int)))
    "bucket counts"
    [ (10, 2); (100, 2); (1000, 1) ]
    s.Metrics.h_buckets;
  Alcotest.(check int) "overflow" 1 s.Metrics.h_overflow;
  Alcotest.(check int) "count" 6 s.Metrics.h_count;
  Alcotest.(check int) "sum" (0 + 10 + 11 + 100 + 1000 + 1001) s.Metrics.h_sum;
  Alcotest.(check (option int)) "histograms have no scalar value" None (Metrics.value r "lat")

let test_reset () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  let h = Metrics.histogram r "h" in
  Metrics.add c 5;
  Metrics.observe h 123;
  Metrics.reset r;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_value h).Metrics.h_count;
  (* old handles still feed the registry *)
  Metrics.inc c;
  Alcotest.(check (option int)) "handle alive" (Some 1) (Metrics.value r "c")

let test_metrics_json () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "a") 3;
  Metrics.set (Metrics.gauge r "b") (-2);
  Metrics.observe (Metrics.histogram ~buckets:[ 5 ] r "c") 4;
  let doc = Metrics.to_json r in
  (* round-trips through the parser *)
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "metrics json does not parse: %s" e
  | Ok parsed ->
    let items = Option.get (Json.to_list parsed) in
    Alcotest.(check int) "three instruments" 3 (List.length items);
    let first = List.hd items in
    Alcotest.(check (option string)) "sorted by name" (Some "a")
      (Option.bind (Json.member "name" first) Json.to_str);
    Alcotest.(check (option int)) "counter value" (Some 3)
      (Option.bind (Json.member "value" first) Json.to_int)

let qcheck_histogram_conservation =
  (* whatever is observed, every observation lands in exactly one bucket:
     h_count = sum of bucket counts + h_overflow, and sum/count track the
     raw observations *)
  QCheck.Test.make ~name:"histogram count = buckets + overflow" ~count:200
    QCheck.(list (int_bound 5000))
    (fun obs ->
      let r = Metrics.create () in
      let h = Metrics.histogram ~buckets:[ 10; 100; 1000 ] r "lat" in
      List.iter (Metrics.observe h) obs;
      let s = Metrics.histogram_value h in
      let in_buckets = List.fold_left (fun acc (_, c) -> acc + c) 0 s.Metrics.h_buckets in
      s.Metrics.h_count = in_buckets + s.Metrics.h_overflow
      && s.Metrics.h_count = List.length obs
      && s.Metrics.h_sum = List.fold_left ( + ) 0 obs)

(* --- ring buffer --- *)

let test_ring () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Ring.length r);
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (Ring.to_list r);
  List.iter (Ring.push r) [ 4; 5 ];
  Alcotest.(check (list int)) "evicts oldest" [ 3; 4; 5 ] (Ring.to_list r);
  Alcotest.(check int) "pushed counts everything" 5 (Ring.pushed r);
  Alcotest.(check int) "dropped" 2 (Ring.dropped r);
  Alcotest.(check int) "fold sees retained" 12 (Ring.fold (fun acc x -> acc + x) 0 r);
  Ring.clear r;
  Alcotest.(check (list int)) "cleared" [] (Ring.to_list r);
  Alcotest.(check int) "clear resets the totals" 0 (Ring.pushed r);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Ring.create: capacity must be >= 1") (fun () ->
      ignore (Ring.create ~capacity:0))

(* --- span tracing + exporters --- *)

let test_span_clock () =
  let t = Trace.create () in
  let clock = Clock.create () in
  let v =
    Trace.span t ~cat:"phase" ~clock "outer" (fun () ->
        Clock.advance clock 10;
        Trace.span t ~clock "inner" (fun () ->
            Clock.advance clock 5;
            17))
  in
  Alcotest.(check int) "body result" 17 v;
  match Trace.events t with
  | [ inner; outer ] ->
    (* inner completes (and is recorded) first *)
    Alcotest.(check string) "inner name" "inner" inner.Trace.ev_name;
    Alcotest.(check int) "inner ts" 10 inner.Trace.ev_ts;
    Alcotest.(check int) "inner dur" 5 inner.Trace.ev_dur;
    Alcotest.(check string) "outer name" "outer" outer.Trace.ev_name;
    Alcotest.(check int) "outer ts" 0 outer.Trace.ev_ts;
    Alcotest.(check int) "outer dur" 15 outer.Trace.ev_dur
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_records_on_raise () =
  let t = Trace.create () in
  let clock = Clock.create () in
  (try
     Trace.span t ~clock "boom" (fun () ->
         Clock.advance clock 3;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (Trace.length t);
  Alcotest.(check int) "duration kept" 3 (List.hd (Trace.events t)).Trace.ev_dur

let test_chrome_roundtrip () =
  let t = Trace.create () in
  Trace.complete t ~cat:"syscall" ~track:2
    ~args:[ ("site", Json.Int 0x40); ("verdict", Json.Str "allow \"quoted\"") ]
    ~name:"open" ~ts:100 ~dur:25 ();
  Trace.complete t ~name:"read" ~ts:125 ~dur:7 ();
  let s = Trace.chrome_string t in
  match Json.parse s with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok doc ->
    let events = Option.get (Option.bind (Json.member "traceEvents" doc) Json.to_list) in
    Alcotest.(check int) "two events" 2 (List.length events);
    let first = List.hd events in
    let get k conv = Option.bind (Json.member k first) conv in
    Alcotest.(check (option string)) "name" (Some "open") (get "name" Json.to_str);
    Alcotest.(check (option string)) "phase is complete" (Some "X") (get "ph" Json.to_str);
    Alcotest.(check (option int)) "ts" (Some 100) (get "ts" Json.to_int);
    Alcotest.(check (option int)) "dur" (Some 25) (get "dur" Json.to_int);
    Alcotest.(check (option int)) "tid" (Some 2) (get "tid" Json.to_int);
    let args = Option.get (get "args" Option.some) in
    Alcotest.(check (option string)) "escaped arg survives" (Some "allow \"quoted\"")
      (Option.bind (Json.member "verdict" args) Json.to_str)

let test_chrome_metadata () =
  let t = Trace.create () in
  Trace.name_process t "asc-kernel";
  Trace.name_track t ~track:2 "/bin/calc";
  Trace.name_track t ~track:1 "init";
  Trace.complete t ~name:"open" ~track:2 ~ts:0 ~dur:1 ();
  Alcotest.(check (option string)) "track name kept" (Some "/bin/calc")
    (Trace.track_name t ~track:2);
  Alcotest.(check (option string)) "unnamed track" None (Trace.track_name t ~track:9);
  match Json.parse (Trace.chrome_string t) with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok doc ->
    let events = Option.get (Option.bind (Json.member "traceEvents" doc) Json.to_list) in
    Alcotest.(check int) "1 process + 2 thread metadata + 1 span" 4 (List.length events);
    let get ev k conv = Option.bind (Json.member k ev) conv in
    (match events with
     | [ proc; t1; t2; span ] ->
       Alcotest.(check (option string)) "process_name first" (Some "process_name")
         (get proc "name" Json.to_str);
       Alcotest.(check (option string)) "metadata phase" (Some "M") (get proc "ph" Json.to_str);
       Alcotest.(check (option string)) "process label" (Some "asc-kernel")
         (Option.bind (get proc "args" Option.some) (fun a ->
              Option.bind (Json.member "name" a) Json.to_str));
       Alcotest.(check (option string)) "thread_name" (Some "thread_name")
         (get t1 "name" Json.to_str);
       Alcotest.(check (option int)) "tracks sorted" (Some 1) (get t1 "tid" Json.to_int);
       Alcotest.(check (option int)) "second track" (Some 2) (get t2 "tid" Json.to_int);
       Alcotest.(check (option string)) "track label" (Some "/bin/calc")
         (Option.bind (get t2 "args" Option.some) (fun a ->
              Option.bind (Json.member "name" a) Json.to_str));
       Alcotest.(check (option string)) "span still X" (Some "X") (get span "ph" Json.to_str)
     | _ -> Alcotest.fail "unexpected event shape")

let test_json_lines () =
  let t = Trace.create () in
  Trace.complete t ~name:"a" ~ts:0 ~dur:1 ();
  Trace.complete t ~name:"b" ~ts:1 ~dur:2 ();
  let lines = String.split_on_char '\n' (String.trim (Trace.to_json_lines t)) in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "line %S does not parse: %s" line e)
    lines

let test_trace_bounded () =
  let t = Trace.create ~capacity:2 () in
  for i = 1 to 5 do
    Trace.complete t ~name:"e" ~ts:i ~dur:1 ()
  done;
  Alcotest.(check int) "bounded" 2 (Trace.length t);
  Alcotest.(check int) "dropped" 3 (Trace.dropped t);
  Alcotest.(check (list int)) "newest kept" [ 4; 5 ]
    (List.map (fun e -> e.Trace.ev_ts) (Trace.events t))

(* --- baseline regression gate --- *)

module Baseline = Asc_obs.Baseline

let bench_doc rows =
  Json.Obj
    [ ("table", Json.Str "table4");
      ("rows",
       Json.List
         (List.map
            (fun (name, cycles) ->
              Json.Obj [ ("name", Json.Str name); ("cycles", Json.Int cycles) ])
            rows)) ]

let test_baseline_within_tolerance () =
  let base = bench_doc [ ("getpid", 1000); ("read", 7000) ] in
  let actual = bench_doc [ ("getpid", 1040); ("read", 6800) ] in
  (match Baseline.compare ~tolerance:5.0 ~baseline:base ~actual () with
   | Ok () -> ()
   | Error ps -> Alcotest.failf "4%% drift rejected at 5%%: %s" (String.concat "; " ps));
  (* Int and Float are numerically interchangeable *)
  match
    Baseline.compare ~tolerance:1.0 ~baseline:(Json.Obj [ ("x", Json.Int 10) ])
      ~actual:(Json.Obj [ ("x", Json.Float 10.0) ]) ()
  with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "10 vs 10.0 should compare equal"

let test_baseline_regression_detected () =
  let base = bench_doc [ ("getpid", 1000); ("read", 7000) ] in
  let actual = bench_doc [ ("getpid", 1200); ("read", 7000) ] in
  match Baseline.compare ~tolerance:10.0 ~baseline:base ~actual () with
  | Ok () -> Alcotest.fail "20% drift passed a 10% gate"
  | Error [ msg ] ->
    Alcotest.(check bool) "message names the path" true
      (String.length msg > 0 && String.sub msg 0 1 = "$")
  | Error ps -> Alcotest.failf "expected one problem, got %d" (List.length ps)

let test_baseline_near_zero_floor () =
  (* the max(...,1) floor keeps near-zero leaves from demanding equality *)
  match
    Baseline.compare ~tolerance:10.0 ~baseline:(Json.Obj [ ("x", Json.Int 0) ])
      ~actual:(Json.Obj [ ("x", Json.Float 0.05) ]) ()
  with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "tiny absolute drift rejected: %s" (String.concat "; " ps)

let test_baseline_abs_tolerance () =
  (* global absolute floor: a zero-expected leaf drifting by a few units
     passes with --tolerance-abs even though the drift is infinite in
     percent terms... *)
  (match
     Baseline.compare ~tolerance:1.0 ~tolerance_abs:8.0
       ~baseline:(Json.Obj [ ("words", Json.Int 0) ])
       ~actual:(Json.Obj [ ("words", Json.Int 6) ]) ()
   with
   | Ok () -> ()
   | Error ps -> Alcotest.failf "abs floor did not rescue 0->6: %s" (String.concat "; " ps));
  (* ...but drift beyond the floor still fails *)
  (match
     Baseline.compare ~tolerance:1.0 ~tolerance_abs:8.0
       ~baseline:(Json.Obj [ ("words", Json.Int 0) ])
       ~actual:(Json.Obj [ ("words", Json.Int 9) ]) ()
   with
   | Ok () -> Alcotest.fail "0->9 passed an abs floor of 8"
   | Error _ -> ());
  (* the floor is a disjunct: a large leaf still passes on percentage *)
  match
    Baseline.compare ~tolerance:10.0 ~tolerance_abs:8.0
      ~baseline:(Json.Obj [ ("cycles", Json.Int 10_000) ])
      ~actual:(Json.Obj [ ("cycles", Json.Int 10_500) ]) ()
  with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "5%% drift rejected at 10%%: %s" (String.concat "; " ps)

let test_baseline_per_field_spec () =
  let spec value kind max =
    Json.Obj
      [ ("value", value);
        ("tolerance", Json.Obj [ ("kind", Json.Str kind); ("max", Json.Int max) ]) ]
  in
  (* per-field abs spec admits small drift on a zero-expected leaf even
     with no global tolerances at all *)
  (match
     Baseline.compare ~tolerance:0.0
       ~baseline:(Json.Obj [ ("words", spec (Json.Int 0) "abs" 8) ])
       ~actual:(Json.Obj [ ("words", Json.Int 5) ]) ()
   with
   | Ok () -> ()
   | Error ps -> Alcotest.failf "abs spec did not admit 0->5: %s" (String.concat "; " ps));
  (* and rejects drift beyond its own max, even when the global gates are
     wide open — the spec overrides them *)
  (match
     Baseline.compare ~tolerance:100.0 ~tolerance_abs:1000.0
       ~baseline:(Json.Obj [ ("words", spec (Json.Int 0) "abs" 8) ])
       ~actual:(Json.Obj [ ("words", Json.Int 20) ]) ()
   with
   | Ok () -> Alcotest.fail "abs spec max=8 admitted a drift of 20"
   | Error _ -> ());
  (* pct specs use the same formula as the global percentage gate *)
  (match
     Baseline.compare ~tolerance:0.0
       ~baseline:(Json.Obj [ ("cycles", spec (Json.Int 1000) "pct" 10) ])
       ~actual:(Json.Obj [ ("cycles", Json.Int 1050) ]) ()
   with
   | Ok () -> ()
   | Error ps -> Alcotest.failf "pct spec rejected 5%% drift: %s" (String.concat "; " ps));
  (* an object that merely resembles a spec (wrong keys) is still compared
     structurally, so typos fail loudly instead of passing silently *)
  match
    Baseline.compare ~tolerance:100.0
      ~baseline:(Json.Obj [ ("x", Json.Obj [ ("value", Json.Int 1) ]) ])
      ~actual:(Json.Obj [ ("x", Json.Int 1) ]) ()
  with
  | Ok () -> Alcotest.fail "non-spec object compared as a spec"
  | Error _ -> ()

let test_baseline_schema_strict () =
  let check_fails name base actual =
    match Baseline.compare ~tolerance:100.0 ~baseline:base ~actual () with
    | Ok () -> Alcotest.failf "%s should fail regardless of tolerance" name
    | Error _ -> ()
  in
  check_fails "missing key"
    (Json.Obj [ ("a", Json.Int 1); ("b", Json.Int 2) ])
    (Json.Obj [ ("a", Json.Int 1) ]);
  check_fails "unexpected key"
    (Json.Obj [ ("a", Json.Int 1) ])
    (Json.Obj [ ("a", Json.Int 1); ("b", Json.Int 2) ]);
  check_fails "list length" (Json.List [ Json.Int 1 ]) (Json.List [ Json.Int 1; Json.Int 2 ]);
  check_fails "kind change" (Json.Obj [ ("a", Json.Str "x") ]) (Json.Obj [ ("a", Json.Int 3) ]);
  check_fails "string change"
    (Json.Obj [ ("name", Json.Str "getpid") ])
    (Json.Obj [ ("name", Json.Str "getppid") ]);
  check_fails "bool change" (Json.Bool true) (Json.Bool false);
  (* every offending leaf is reported, not just the first *)
  match
    Baseline.compare ~tolerance:1.0
      ~baseline:(bench_doc [ ("a", 100); ("b", 100) ])
      ~actual:(bench_doc [ ("a", 200); ("b", 300) ]) ()
  with
  | Error [ _; _ ] -> ()
  | Error ps -> Alcotest.failf "expected 2 problems, got %d" (List.length ps)
  | Ok () -> Alcotest.fail "regressions not detected"

(* --- JSON parser --- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\nd\tune\x01deux");
        ("i", Json.Int (-123));
        ("big", Json.Int max_int);
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Str "x"; Json.Obj [] ]);
        ("empty", Json.Obj []) ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "round-trip equal" true (parsed = doc)
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e

let test_json_unicode_escape () =
  match Json.parse {|"a\u00e9A\u20ac"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "utf-8 decoded" "a\xc3\xa9A\xe2\x82\xac" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_errors () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "01"; "{\"a\" 1}"; "" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    bad;
  (* trailing garbage is rejected *)
  match Json.parse "1 2" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ()

let qcheck_json_roundtrip =
  (* strings chosen to exercise escaping; structure exercises nesting *)
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [ return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) int;
                map (fun s -> Json.Str s) (string_size (0 -- 10)) ]
          in
          if n = 0 then leaf
          else
            frequency
              [ (2, leaf);
                (1, map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2))));
                ( 1,
                  map
                    (fun kvs -> Json.Obj kvs)
                    (list_size (0 -- 4)
                       (pair (string_size (0 -- 6)) (self (n / 2)))) ) ]))
  in
  QCheck.Test.make ~name:"json print/parse round-trip" ~count:200 (QCheck.make gen) (fun doc ->
      match Json.parse (Json.to_string doc) with
      | Ok parsed -> parsed = doc
      | Error _ -> false)

(* --- tamper-evident audit chain --- *)

let auth_key = Asc_crypto.Cmac.of_raw "0123456789abcdef"

let auth_entry i = Json.Obj [ ("kind", Json.Str "event"); ("n", Json.Int i) ]

let export_of ?capacity n =
  let log = Authlog.create ~key:auth_key ?capacity () in
  for i = 1 to n do
    Authlog.append log (auth_entry i)
  done;
  (log, Authlog.export_string log)

let nonempty_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

let check_verifies what ?expect_head expect_n exported =
  match Authlog.verify_string ?expect_head ~key:auth_key exported with
  | Ok n -> Alcotest.(check int) what expect_n n
  | Error e -> Alcotest.failf "%s: %a" what Authlog.pp_verify_error e

let check_tampered what ?expect_head exported =
  match Authlog.verify_string ?expect_head ~key:auth_key exported with
  | Error _ -> ()
  | Ok n -> Alcotest.failf "%s: verified %d records of a doctored log" what n

let test_authlog_chain () =
  let log, exported = export_of 5 in
  Alcotest.(check int) "length" 5 (Authlog.length log);
  Alcotest.(check int) "appended" 5 (Authlog.appended log);
  check_verifies "pristine chain" 5 exported;
  check_verifies "with out-of-band head" ~expect_head:(Authlog.hex (Authlog.head_mac log)) 5
    exported;
  check_tampered "wrong expected head" ~expect_head:(String.make 32 '0') exported;
  (* the empty chain exports a verifiable header + trailer *)
  let _, empty = export_of 0 in
  check_verifies "empty chain" 0 empty;
  (* a different key must refuse the chain *)
  (match Authlog.verify_string ~key:(Asc_crypto.Cmac.of_raw "fedcba9876543210") exported with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "verified under the wrong key")

let test_authlog_eviction () =
  let log, exported = export_of ~capacity:3 10 in
  Alcotest.(check int) "retained" 3 (Authlog.length log);
  Alcotest.(check int) "appended survives eviction" 10 (Authlog.appended log);
  (* the anchor is the chain value of the last evicted record (seq 7) *)
  (match nonempty_lines exported with
   | header :: _ ->
     let j = Result.get_ok (Json.parse header) in
     Alcotest.(check (option int)) "anchor seq" (Some 7)
       (Option.bind (Json.member "anchor_seq" j) Json.to_int)
   | [] -> Alcotest.fail "empty export");
  check_verifies "chain verifies after eviction" 3 exported

let test_authlog_bitflip () =
  let _, exported = export_of 4 in
  (* a single flipped bit anywhere in the file must be detected; vary the
     flipped bit with the position so every bit index is exercised too *)
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string exported in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (i mod 8))));
      check_tampered (Printf.sprintf "bit flip at byte %d" i) (Bytes.to_string b))
    exported

let test_authlog_truncation () =
  let log, exported = export_of 4 in
  let lines = nonempty_lines exported in
  let rejoin ls = String.concat "\n" ls ^ "\n" in
  let n = List.length lines in
  (* dropping the trailer (or the trailer plus records) must be detected *)
  check_tampered "no trailer" (rejoin (List.filteri (fun i _ -> i < n - 1) lines));
  check_tampered "last record cut, trailer kept"
    (rejoin (List.filteri (fun i _ -> i <> n - 2) lines));
  (* the one file-only blind spot: truncate to a prefix AND forge the
     trailer from a chain value visible in that prefix. The file alone
     verifies — the out-of-band head commitment is what catches it. *)
  let kept_record = List.nth lines 2 (* header, record 1, record 2 *) in
  let j = Result.get_ok (Json.parse kept_record) in
  let seq = Option.get (Option.bind (Json.member "seq" j) Json.to_int) in
  let mac = Option.get (Option.bind (Json.member "mac" j) Json.to_str) in
  let forged_trailer =
    Json.to_string
      (Json.Obj [ ("kind", Json.Str "head"); ("seq", Json.Int seq); ("mac", Json.Str mac) ])
  in
  let forged = rejoin (List.filteri (fun i _ -> i < 3) lines @ [ forged_trailer ]) in
  check_verifies "forged-trailer prefix passes the file-only check" 2 forged;
  check_tampered "out-of-band head catches the forged trailer"
    ~expect_head:(Authlog.hex (Authlog.head_mac log)) forged

let test_authlog_reorder () =
  let _, exported = export_of 4 in
  let lines = nonempty_lines exported in
  (* swap records 2 and 3 (lines 2 and 3 after the header) *)
  let swapped =
    List.mapi
      (fun i l -> if i = 2 then List.nth lines 3 else if i = 3 then List.nth lines 2 else l)
      lines
  in
  check_tampered "reordered records" (String.concat "\n" swapped ^ "\n")

(* --- quantile estimation --- *)

let test_log_linear_buckets () =
  let b = Metrics.log_linear_buckets ~lo:100 ~hi:1_000_000 in
  (* strictly increasing, starts at lo, terminated by hi *)
  Alcotest.(check int) "first" 100 (List.hd b);
  Alcotest.(check int) "last" 1_000_000 (List.nth b (List.length b - 1));
  ignore
    (List.fold_left
       (fun prev x ->
         Alcotest.(check bool) "strictly increasing" true (x > prev);
         x)
       0 b);
  (* within a decade the bounds are the multiples of the decade, so the
     containing bucket of any v is at most one leading-digit step wide *)
  Alcotest.(check bool) "300 is a bound" true (List.mem 300 b);
  Alcotest.(check bool) "30_000 is a bound" true (List.mem 30_000 b);
  Alcotest.check_raises "lo < 1 rejected"
    (Invalid_argument "Metrics.log_linear_buckets: lo must be >= 1") (fun () ->
      ignore (Metrics.log_linear_buckets ~lo:0 ~hi:10))

(* The documented accuracy contract: the estimate and the true quantile
   share a bucket, so |estimate - exact| <= that bucket's width. Checked
   against the exact (sorted-order) quantile on random samples. *)
let qcheck_quantile_error_bound =
  QCheck.Test.make ~name:"quantile estimate within containing bucket width" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 200) (int_range 1 900_000))
              (int_range 0 100))
    (fun (sample, qpct) ->
      QCheck.assume (sample <> []);
      let q = float_of_int qpct /. 100.0 in
      let buckets = Metrics.log_linear_buckets ~lo:100 ~hi:1_000_000 in
      let r = Metrics.create () in
      let h = Metrics.histogram ~buckets r "q" in
      List.iter (Metrics.observe h) sample;
      let snap = Metrics.histogram_value h in
      let est = Metrics.quantile snap q in
      (* exact q-quantile: the ceil(q*n)-th smallest observation *)
      let sorted = List.sort compare sample in
      let n = List.length sorted in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let exact = List.nth sorted (rank - 1) in
      (* width of the bucket containing the exact observation *)
      let rec width lo = function
        | [] -> max_int (* overflow bucket: estimate clamps to last bound *)
        | b :: rest -> if exact <= b then b - lo else width b rest
      in
      let w = width 0 buckets in
      if w = max_int then est = 1_000_000
      else abs (est - exact) <= w)

let test_quantile_exact_cases () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:[ 10; 20; 30 ] r "q" in
  Alcotest.(check int) "empty histogram" 0 (Metrics.quantile (Metrics.histogram_value h) 0.5);
  List.iter (Metrics.observe h) [ 5; 15; 25 ];
  let snap = Metrics.histogram_value h in
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metrics.quantile: q outside [0,1]") (fun () ->
      ignore (Metrics.quantile snap 1.5));
  (* p100 of a sample whose max is 25 lands in the (20,30] bucket *)
  let p100 = Metrics.quantile snap 1.0 in
  Alcotest.(check bool) "p100 in max's bucket" true (p100 > 20 && p100 <= 30)

(* --- differential profiles --- *)

module Diffprof = Asc_obs.Diffprof

let find_delta key ds = List.find_opt (fun (d : Diffprof.delta) -> d.Diffprof.d_key = key) ds

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_diffprof_rollups () =
  let base =
    [ ([ "main"; "f"; "<kernel:call_mac>" ], 100);
      ([ "main"; "getpid@site_0x40"; "<kernel:control_flow>" ], 200);
      ([ "main"; "g" ], 50) ]
  in
  let actual =
    [ ([ "main"; "f"; "<kernel:call_mac>" ], 100);
      ([ "main"; "getpid@site_0x40"; "<kernel:control_flow>" ], 320);
      ([ "main"; "h" ], 30) ]
  in
  let rp = Diffprof.diff ~base ~actual ~resource:"cycles" () in
  Alcotest.(check int) "total base" 350 rp.Diffprof.rp_total_base;
  Alcotest.(check int) "total actual" 450 rp.Diffprof.rp_total_actual;
  (* the control-flow stack moved most and ranks first in every rollup *)
  (match rp.Diffprof.rp_stacks with
   | top :: _ ->
     Alcotest.(check int) "top stack delta" 120 (Diffprof.d_delta top);
     Alcotest.(check string) "top stack key"
       "main;getpid@site_0x40;<kernel:control_flow>" top.Diffprof.d_key
   | [] -> Alcotest.fail "no stack deltas");
  (match find_delta "<kernel:control_flow>" rp.Diffprof.rp_steps with
   | Some d ->
     Alcotest.(check int) "step delta" 120 (Diffprof.d_delta d);
     Alcotest.(check (float 0.01)) "step rel pct" 60.0 (Diffprof.d_rel d)
   | None -> Alcotest.fail "control_flow step missing");
  (* sites aggregate inclusively: the step frame below the site charges it *)
  (match find_delta "getpid@site_0x40" rp.Diffprof.rp_sites with
   | Some d -> Alcotest.(check int) "site delta inclusive" 120 (Diffprof.d_delta d)
   | None -> Alcotest.fail "site rollup missing");
  (* one-sided stacks survive as whole-weight deltas *)
  (match find_delta "g" rp.Diffprof.rp_frames with
   | Some d -> Alcotest.(check int) "removed frame" (-50) (Diffprof.d_delta d)
   | None -> Alcotest.fail "removed frame missing");
  (match find_delta "h" rp.Diffprof.rp_frames with
   | Some d -> Alcotest.(check int) "added frame" 30 (Diffprof.d_delta d)
   | None -> Alcotest.fail "added frame missing");
  Alcotest.(check bool) "not empty" false (Diffprof.is_empty rp);
  (* a noise floor above the largest delta silences the whole report *)
  let quiet = Diffprof.diff ~noise:120 ~base ~actual ~resource:"cycles" () in
  Alcotest.(check bool) "floored stacks gone" true (quiet.Diffprof.rp_stacks = []);
  (* the folded output carries signed weights in ranked order *)
  let folded = Diffprof.folded_diff rp in
  Alcotest.(check bool) "folded has signed top line" true
    (String.length folded > 0
    && String.sub folded 0 (String.length "main;getpid@site_0x40;<kernel:control_flow> +120")
       = "main;getpid@site_0x40;<kernel:control_flow> +120");
  Alcotest.(check bool) "blame table mentions the step" true
    (contains (Diffprof.blame_table rp) "<kernel:control_flow>")

let test_diffprof_of_json () =
  let profile =
    Json.Obj
      [ ("total_cycles", Json.Int 10);
        ("total_alloc_words", Json.Int 4);
        ( "stacks",
          Json.List
            [ Json.Obj
                [ ("stack", Json.List [ Json.Str "main"; Json.Str "f" ]);
                  ("cycles", Json.Int 10) ] ] );
        ( "alloc_stacks",
          Json.List
            [ Json.Obj
                [ ("stack", Json.List [ Json.Str "main" ]); ("words", Json.Int 4) ] ] ) ]
  in
  (* both the bare export and the asc_profile --json wrapper load *)
  let check_side what j =
    match Diffprof.of_json j with
    | Error e -> Alcotest.failf "%s: %s" what e
    | Ok side ->
      Alcotest.(check int) (what ^ " cycles entries") 1 (List.length side.Diffprof.s_cycles);
      Alcotest.(check int) (what ^ " alloc entries") 1 (List.length side.Diffprof.s_alloc)
  in
  check_side "bare" profile;
  check_side "wrapped" (Json.Obj [ ("tool", Json.Str "asc-profile"); ("profile", profile) ]);
  (match Diffprof.of_json (Json.Obj [ ("nope", Json.Int 1) ]) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "schema-less document loaded");
  let side = Result.get_ok (Diffprof.of_json profile) in
  let cyc, words = Diffprof.diff_sides ~base:side ~actual:side () in
  Alcotest.(check bool) "self diff cycles empty" true (Diffprof.is_empty cyc);
  Alcotest.(check bool) "self diff words empty" true (Diffprof.is_empty words)

let test_diffprof_doc () =
  let doc a b =
    Json.Obj
      [ ( "rows",
          Json.List
            [ Json.Obj
                [ ("name", Json.Str "getpid");
                  ( "verification",
                    Json.Obj [ ("control_flow", Json.Int a); ("call_mac", Json.Int b) ] ) ] ] ) ]
  in
  let deltas = Diffprof.diff_doc ~base:(doc 100 40) ~actual:(doc 160 42) in
  (match deltas with
   | top :: _ ->
     Alcotest.(check string) "largest mover first"
       "$.rows[0].verification.control_flow" top.Diffprof.l_path;
     Alcotest.(check (float 0.001)) "signed delta" 60.0
       (top.Diffprof.l_actual -. top.Diffprof.l_base);
     Alcotest.(check (option string)) "step classified" (Some "control_flow")
       (Diffprof.step_of_path top.Diffprof.l_path)
   | [] -> Alcotest.fail "no doc deltas");
  Alcotest.(check int) "both movers found" 2 (List.length deltas);
  Alcotest.(check string) "empty diff renders empty" ""
    (Diffprof.render_doc_blame (Diffprof.diff_doc ~base:(doc 1 2) ~actual:(doc 1 2)));
  let blame = Diffprof.render_doc_blame deltas in
  Alcotest.(check bool) "blame tags the step frame" true
    (contains blame "[<kernel:control_flow>]")

(* frames drawn from the shapes the profiler really emits, plus
   arbitrary names *)
let frame_gen =
  QCheck.Gen.(
    oneof
      [ oneofl [ "<kernel:call_mac>"; "<kernel:string_mac>"; "<kernel:control_flow>";
                 "<kernel:ext>" ];
        map2 (Printf.sprintf "%s@site_0x%x") (oneofl [ "getpid"; "open"; "write" ])
          (int_bound 0xffff);
        oneofl [ "main"; "f"; "g"; "interpret"; "dispatch" ] ])

let entries_gen =
  QCheck.Gen.(
    list_size (0 -- 12)
      (pair (list_size (1 -- 5) frame_gen) (int_range 0 10_000)))

let qcheck_diffprof_self_empty =
  QCheck.Test.make ~name:"diff of a profile against itself is empty" ~count:200
    (QCheck.make QCheck.Gen.(pair entries_gen (int_bound 50)))
    (fun (entries, noise) ->
      let rp = Diffprof.diff ~noise ~base:entries ~actual:entries ~resource:"cycles" () in
      Diffprof.is_empty rp && Diffprof.folded_diff rp = "" && Diffprof.blame_table rp = "")

let qcheck_diffprof_stack_conservation =
  (* with no noise floor, the per-stack deltas account exactly for the
     total movement between the two sides *)
  QCheck.Test.make ~name:"stack deltas sum to the total delta at noise 0" ~count:200
    (QCheck.make QCheck.Gen.(pair entries_gen entries_gen))
    (fun (base, actual) ->
      let rp = Diffprof.diff ~base ~actual ~resource:"cycles" () in
      let sum = List.fold_left (fun acc d -> acc + Diffprof.d_delta d) 0 rp.Diffprof.rp_stacks in
      sum = rp.Diffprof.rp_total_actual - rp.Diffprof.rp_total_base)

(* --- fleet health rules --- *)

module Health = Asc_obs.Health

let row ?(reasons = []) ?(interval_calls = 100) ?(interval_denies = 0) ?(p99 = 2000)
    ?(interval_alloc_words = 0) ts =
  Json.Obj
    [ ("ts", Json.Int ts);
      ("interval_calls", Json.Int interval_calls);
      ("interval_denies", Json.Int interval_denies);
      ("interval_alloc_words", Json.Int interval_alloc_words);
      ("p99", Json.Int p99);
      ("reasons", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) reasons)) ]

let deny_rule ?(window = 1) ?(r_for = 2) ?(cool = 2) () =
  Health.{ r_name = "deny"; r_signal = Deny_rate; r_op = Gt; r_threshold = 1.0;
           r_window = window; r_for; r_cool = cool }

let events trs = List.map (fun tr -> Health.event_label tr.Health.tr_event) trs

let test_health_hysteresis () =
  let t = Health.create [ deny_rule () ] in
  (* breach, breach -> armed then fired; healthy, healthy -> cleared *)
  let rows =
    [ row ~interval_denies:5 1;    (* breach 1: arms *)
      row ~interval_denies:5 2;    (* breach 2: fires (for=2) *)
      row ~interval_denies:5 3;    (* still firing: no transition *)
      row 4;                       (* healthy 1: cooling *)
      row 5 ]                      (* healthy 2: clears (cool=2) *)
  in
  let trs = Health.observe_all t rows in
  Alcotest.(check (list string)) "armed/fired/cleared" [ "armed"; "fired"; "cleared" ]
    (events trs);
  Alcotest.(check (list string)) "nothing left firing" [] (Health.firing t);
  (* transitions are timestamped with the triggering row *)
  Alcotest.(check (list int)) "transition timestamps" [ 1; 2; 5 ]
    (List.map (fun tr -> tr.Health.tr_ts) trs);
  (* one noisy interval disarms without firing *)
  let t2 = Health.create [ deny_rule () ] in
  let trs2 = Health.observe_all t2 [ row ~interval_denies:5 1; row 2 ] in
  Alcotest.(check (list string)) "armed then disarmed" [ "armed"; "disarmed" ] (events trs2)

let test_health_burn_rate () =
  (* window=3: fires on the windowed mean, not the raw interval *)
  let rule = Health.{ (deny_rule ~window:3 ~r_for:1 ~cool:1 ()) with r_threshold = 3.0 } in
  let t = Health.create [ rule ] in
  (* deny rates 12%, 0%, 0%: means 12, 6, 4 — all breach 3% *)
  let trs1 = Health.observe t (row ~interval_denies:12 1) in
  Alcotest.(check (list string)) "first interval fires" [ "fired" ] (events trs1);
  ignore (Health.observe t (row 2));
  let trs3 = Health.observe t (row 3) in
  Alcotest.(check (list string)) "mean still above threshold" [] (events trs3);
  Alcotest.(check (list string)) "still firing on the mean" [ "deny" ] (Health.firing t);
  (* a fourth quiet interval drops the mean to 0 and clears *)
  let trs4 = Health.observe t (row 4) in
  Alcotest.(check (list string)) "cleared when the window drains" [ "cleared" ] (events trs4)

let test_health_reason_deltas () =
  (* precomp hit rate comes from deltas of the cumulative reason counters *)
  let rule =
    Health.{ r_name = "pc"; r_signal = Precomp_hit_rate; r_op = Lt; r_threshold = 40.0;
             r_window = 1; r_for = 1; r_cool = 1 }
  in
  let t = Health.create [ rule ] in
  (* first row: 90/100 precomp hits — healthy *)
  let trs1 = Health.observe t (row ~reasons:[ ("precomp_hit", 90) ] 1) in
  Alcotest.(check (list string)) "90% hit rate healthy" [] (events trs1);
  (* second row: cumulative 100, so only 10 new hits over 100 calls — fires *)
  let trs2 = Health.observe t (row ~reasons:[ ("precomp_hit", 100) ] 2) in
  Alcotest.(check (list string)) "10% hit rate fires" [ "fired" ] (events trs2)

let test_health_undefined_signal () =
  let t = Health.create [ deny_rule ~r_for:1 () ] in
  (* zero interval_calls: the rate is undefined, state must not move *)
  let trs = Health.observe t (row ~interval_calls:0 ~interval_denies:0 1) in
  Alcotest.(check (list string)) "no transitions" [] (events trs);
  Alcotest.(check (list string)) "not firing" [] (Health.firing t)

let test_health_spec_roundtrip () =
  let rules =
    Health.default_rules
    @ [ Health.{ r_name = "ratio"; r_signal = Ratio ("interval_denies", "interval_calls");
                 r_op = Ge; r_threshold = 2.5; r_window = 4; r_for = 2; r_cool = 3 };
        Health.{ r_name = "field"; r_signal = Field "p95"; r_op = Le; r_threshold = 10.0;
                 r_window = 1; r_for = 1; r_cool = 1 } ]
  in
  let spec = Json.Obj [ ("rules", Json.List (List.map Health.rule_to_json rules)) ] in
  (match Health.rules_of_json spec with
   | Ok parsed -> Alcotest.(check bool) "round-trip equal" true (parsed = rules)
   | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (match Health.rules_of_string "{\"rules\": [{\"name\": \"x\"}]}" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "rule without signal accepted");
  (match Health.rules_of_string "{}" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "spec without rules accepted");
  Alcotest.check_raises "duplicate names rejected"
    (Invalid_argument "Health.create: duplicate rule name \"deny\"") (fun () ->
      ignore (Health.create [ deny_rule (); deny_rule () ]))

let qcheck_health_conservation =
  (* whatever the rule parameters and the deny pattern, every fired alert
     is either cleared or still firing: fired = cleared + |firing| — and
     arm/disarm bookkeeping balances the same way *)
  QCheck.Test.make ~name:"rule transitions conserve: fired = cleared + firing" ~count:300
    QCheck.(triple (list (int_bound 8)) (pair (int_range 1 4) (int_range 1 4))
              (int_range 1 3))
    (fun (denies, (r_for, cool), window) ->
      let t = Health.create [ deny_rule ~window ~r_for ~cool () ] in
      List.iteri (fun i d -> ignore (Health.observe t (row ~interval_denies:d (i + 1)))) denies;
      let armed, disarmed, fired, cleared = Health.counts t in
      let firing = List.length (Health.firing t) in
      let pending =
        (* armed but not yet fired or disarmed: at most one (single rule) *)
        armed - disarmed
        - (if r_for > 1 then fired else 0 (* for=1 fires without arming *))
      in
      fired = cleared + firing && pending >= 0 && pending <= 1)

(* --- bounded history files --- *)

module History = Asc_obs.History

let temp_dir () =
  let path = Filename.temp_file "asc_history" "" in
  Sys.remove path;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let hrow i = Json.Obj [ ("n", Json.Int i) ]

let test_history_append_read () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Alcotest.(check bool) "missing file reads empty" true
    (History.read ~dir ~name:"t4" = Ok []);
  for i = 1 to 5 do History.append ~dir ~name:"t4" (hrow i) done;
  (match History.read ~dir ~name:"t4" with
   | Ok rows -> Alcotest.(check int) "uncapped grows" 5 (List.length rows)
   | Error e -> Alcotest.fail e);
  (* a second bench file in the same dir is independent *)
  History.append ~dir ~name:"t5" (hrow 0);
  (match History.read ~dir ~name:"t5" with
   | Ok [ _ ] -> ()
   | _ -> Alcotest.fail "second file wrong")

let test_history_keep_truncates () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  for i = 1 to 7 do History.append ~dir ~name:"t4" ~keep:3 (hrow i) done;
  (match History.read ~dir ~name:"t4" with
   | Ok rows ->
     Alcotest.(check int) "capped at keep" 3 (List.length rows);
     Alcotest.(check (list int)) "newest rows survive, oldest first" [ 5; 6; 7 ]
       (List.filter_map (fun r -> Option.bind (Json.member "n" r) Json.to_int) rows)
   | Error e -> Alcotest.fail e);
  (* the cap applies on append: an uncapped append after a capped one grows *)
  History.append ~dir ~name:"t4" (hrow 8);
  (match History.read ~dir ~name:"t4" with
   | Ok rows -> Alcotest.(check int) "append without keep grows" 4 (List.length rows)
   | Error e -> Alcotest.fail e);
  Alcotest.check_raises "keep < 1 rejected"
    (Invalid_argument "History.append: keep must be >= 1") (fun () ->
      History.append ~dir ~name:"t4" ~keep:0 (hrow 9));
  (* malformed rows are reported with file and line *)
  let oc = open_out_gen [ Open_append ] 0o644 (Filename.concat dir "t4.jsonl") in
  output_string oc "{nope\n";
  close_out oc;
  match History.read ~dir ~name:"t4" with
  | Error e -> Alcotest.(check bool) "error names the line" true (contains e "t4.jsonl:5")
  | Ok _ -> Alcotest.fail "malformed line parsed"

let () =
  Alcotest.run "asc_obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter + gauge" `Quick test_counter_gauge;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "reset keeps handles" `Quick test_reset;
          Alcotest.test_case "to_json round-trips" `Quick test_metrics_json;
          QCheck_alcotest.to_alcotest qcheck_histogram_conservation ] );
      ( "quantiles",
        [ Alcotest.test_case "log-linear bucket layout" `Quick test_log_linear_buckets;
          Alcotest.test_case "edge cases" `Quick test_quantile_exact_cases;
          QCheck_alcotest.to_alcotest qcheck_quantile_error_bound ] );
      ("ring", [ Alcotest.test_case "bounded fifo" `Quick test_ring ]);
      ( "trace",
        [ Alcotest.test_case "span clock arithmetic" `Quick test_span_clock;
          Alcotest.test_case "span records on raise" `Quick test_span_records_on_raise;
          Alcotest.test_case "chrome round-trip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "chrome metadata events" `Quick test_chrome_metadata;
          Alcotest.test_case "json-lines" `Quick test_json_lines;
          Alcotest.test_case "bounded collector" `Quick test_trace_bounded ] );
      ( "baseline",
        [ Alcotest.test_case "within tolerance" `Quick test_baseline_within_tolerance;
          Alcotest.test_case "regression detected" `Quick test_baseline_regression_detected;
          Alcotest.test_case "near-zero floor" `Quick test_baseline_near_zero_floor;
          Alcotest.test_case "global absolute floor" `Quick test_baseline_abs_tolerance;
          Alcotest.test_case "per-field tolerance spec" `Quick test_baseline_per_field_spec;
          Alcotest.test_case "schema must match exactly" `Quick test_baseline_schema_strict ] );
      ( "json",
        [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
          Alcotest.test_case "malformed inputs" `Quick test_json_errors;
          QCheck_alcotest.to_alcotest qcheck_json_roundtrip ] );
      ( "authlog",
        [ Alcotest.test_case "chain verifies" `Quick test_authlog_chain;
          Alcotest.test_case "eviction promotes the anchor" `Quick test_authlog_eviction;
          Alcotest.test_case "single-bit flips detected" `Quick test_authlog_bitflip;
          Alcotest.test_case "truncation detected" `Quick test_authlog_truncation;
          Alcotest.test_case "reordering detected" `Quick test_authlog_reorder ] );
      ( "diffprof",
        [ Alcotest.test_case "rollups + ranking + noise floor" `Quick test_diffprof_rollups;
          Alcotest.test_case "profile json loading" `Quick test_diffprof_of_json;
          Alcotest.test_case "document attribution" `Quick test_diffprof_doc;
          QCheck_alcotest.to_alcotest qcheck_diffprof_self_empty;
          QCheck_alcotest.to_alcotest qcheck_diffprof_stack_conservation ] );
      ( "health",
        [ Alcotest.test_case "arm/fire/clear hysteresis" `Quick test_health_hysteresis;
          Alcotest.test_case "burn-rate window" `Quick test_health_burn_rate;
          Alcotest.test_case "cumulative reason deltas" `Quick test_health_reason_deltas;
          Alcotest.test_case "undefined signal is inert" `Quick test_health_undefined_signal;
          Alcotest.test_case "rule spec round-trip" `Quick test_health_spec_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_health_conservation ] );
      ( "history",
        [ Alcotest.test_case "append + read" `Quick test_history_append_read;
          Alcotest.test_case "--history-keep truncation" `Quick test_history_keep_truncates ] ) ]
