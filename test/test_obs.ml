(* Tests for the observability library: the metrics registry (hot-path
   counters, gauges, fixed-bucket histograms), the bounded ring buffer, the
   span tracer and its exporters, and the self-contained JSON
   emitter/parser that backs them. *)

module Json = Asc_obs.Json
module Ring = Asc_obs.Ring
module Clock = Asc_obs.Clock
module Metrics = Asc_obs.Metrics
module Trace = Asc_obs.Trace

(* --- metrics registry --- *)

let test_counter_gauge () =
  let r = Metrics.create () in
  let c = Metrics.counter r "calls" in
  Metrics.inc c;
  Metrics.inc c;
  Metrics.add c 40;
  Alcotest.(check int) "counter" 42 (Metrics.counter_value c);
  Alcotest.(check (option int)) "by name" (Some 42) (Metrics.value r "calls");
  let g = Metrics.gauge r "depth" in
  Metrics.set g 7;
  Metrics.set g 3;
  Alcotest.(check int) "gauge keeps last" 3 (Metrics.gauge_value g);
  (* get-or-create returns the same cell *)
  Metrics.inc (Metrics.counter r "calls");
  Alcotest.(check int) "same handle" 43 (Metrics.counter_value c);
  Alcotest.(check (list string)) "names sorted" [ "calls"; "depth" ] (Metrics.names r)

let test_kind_mismatch () =
  let r = Metrics.create () in
  ignore (Metrics.counter r "x");
  Alcotest.check_raises "counter vs gauge"
    (Invalid_argument "Metrics: \"x\" already registered as another kind") (fun () ->
      ignore (Metrics.gauge r "x"))

let test_histogram_bucket_edges () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:[ 10; 100; 1000 ] r "lat" in
  (* exactly on a bound lands in that bucket (bounds are inclusive) *)
  List.iter (Metrics.observe h) [ 0; 10; 11; 100; 1000; 1001 ];
  let s = Metrics.histogram_value h in
  Alcotest.(check (list (pair int int)))
    "bucket counts"
    [ (10, 2); (100, 2); (1000, 1) ]
    s.Metrics.h_buckets;
  Alcotest.(check int) "overflow" 1 s.Metrics.h_overflow;
  Alcotest.(check int) "count" 6 s.Metrics.h_count;
  Alcotest.(check int) "sum" (0 + 10 + 11 + 100 + 1000 + 1001) s.Metrics.h_sum;
  Alcotest.(check (option int)) "histograms have no scalar value" None (Metrics.value r "lat")

let test_reset () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  let h = Metrics.histogram r "h" in
  Metrics.add c 5;
  Metrics.observe h 123;
  Metrics.reset r;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_value h).Metrics.h_count;
  (* old handles still feed the registry *)
  Metrics.inc c;
  Alcotest.(check (option int)) "handle alive" (Some 1) (Metrics.value r "c")

let test_metrics_json () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "a") 3;
  Metrics.set (Metrics.gauge r "b") (-2);
  Metrics.observe (Metrics.histogram ~buckets:[ 5 ] r "c") 4;
  let doc = Metrics.to_json r in
  (* round-trips through the parser *)
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "metrics json does not parse: %s" e
  | Ok parsed ->
    let items = Option.get (Json.to_list parsed) in
    Alcotest.(check int) "three instruments" 3 (List.length items);
    let first = List.hd items in
    Alcotest.(check (option string)) "sorted by name" (Some "a")
      (Option.bind (Json.member "name" first) Json.to_str);
    Alcotest.(check (option int)) "counter value" (Some 3)
      (Option.bind (Json.member "value" first) Json.to_int)

(* --- ring buffer --- *)

let test_ring () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Ring.length r);
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (Ring.to_list r);
  List.iter (Ring.push r) [ 4; 5 ];
  Alcotest.(check (list int)) "evicts oldest" [ 3; 4; 5 ] (Ring.to_list r);
  Alcotest.(check int) "pushed counts everything" 5 (Ring.pushed r);
  Alcotest.(check int) "dropped" 2 (Ring.dropped r);
  Alcotest.(check int) "fold sees retained" 12 (Ring.fold (fun acc x -> acc + x) 0 r);
  Ring.clear r;
  Alcotest.(check (list int)) "cleared" [] (Ring.to_list r);
  Alcotest.(check int) "clear resets the totals" 0 (Ring.pushed r);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Ring.create: capacity must be >= 1") (fun () ->
      ignore (Ring.create ~capacity:0))

(* --- span tracing + exporters --- *)

let test_span_clock () =
  let t = Trace.create () in
  let clock = Clock.create () in
  let v =
    Trace.span t ~cat:"phase" ~clock "outer" (fun () ->
        Clock.advance clock 10;
        Trace.span t ~clock "inner" (fun () ->
            Clock.advance clock 5;
            17))
  in
  Alcotest.(check int) "body result" 17 v;
  match Trace.events t with
  | [ inner; outer ] ->
    (* inner completes (and is recorded) first *)
    Alcotest.(check string) "inner name" "inner" inner.Trace.ev_name;
    Alcotest.(check int) "inner ts" 10 inner.Trace.ev_ts;
    Alcotest.(check int) "inner dur" 5 inner.Trace.ev_dur;
    Alcotest.(check string) "outer name" "outer" outer.Trace.ev_name;
    Alcotest.(check int) "outer ts" 0 outer.Trace.ev_ts;
    Alcotest.(check int) "outer dur" 15 outer.Trace.ev_dur
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_records_on_raise () =
  let t = Trace.create () in
  let clock = Clock.create () in
  (try
     Trace.span t ~clock "boom" (fun () ->
         Clock.advance clock 3;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (Trace.length t);
  Alcotest.(check int) "duration kept" 3 (List.hd (Trace.events t)).Trace.ev_dur

let test_chrome_roundtrip () =
  let t = Trace.create () in
  Trace.complete t ~cat:"syscall" ~track:2
    ~args:[ ("site", Json.Int 0x40); ("verdict", Json.Str "allow \"quoted\"") ]
    ~name:"open" ~ts:100 ~dur:25 ();
  Trace.complete t ~name:"read" ~ts:125 ~dur:7 ();
  let s = Trace.chrome_string t in
  match Json.parse s with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok doc ->
    let events = Option.get (Option.bind (Json.member "traceEvents" doc) Json.to_list) in
    Alcotest.(check int) "two events" 2 (List.length events);
    let first = List.hd events in
    let get k conv = Option.bind (Json.member k first) conv in
    Alcotest.(check (option string)) "name" (Some "open") (get "name" Json.to_str);
    Alcotest.(check (option string)) "phase is complete" (Some "X") (get "ph" Json.to_str);
    Alcotest.(check (option int)) "ts" (Some 100) (get "ts" Json.to_int);
    Alcotest.(check (option int)) "dur" (Some 25) (get "dur" Json.to_int);
    Alcotest.(check (option int)) "tid" (Some 2) (get "tid" Json.to_int);
    let args = Option.get (get "args" Option.some) in
    Alcotest.(check (option string)) "escaped arg survives" (Some "allow \"quoted\"")
      (Option.bind (Json.member "verdict" args) Json.to_str)

let test_json_lines () =
  let t = Trace.create () in
  Trace.complete t ~name:"a" ~ts:0 ~dur:1 ();
  Trace.complete t ~name:"b" ~ts:1 ~dur:2 ();
  let lines = String.split_on_char '\n' (String.trim (Trace.to_json_lines t)) in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "line %S does not parse: %s" line e)
    lines

let test_trace_bounded () =
  let t = Trace.create ~capacity:2 () in
  for i = 1 to 5 do
    Trace.complete t ~name:"e" ~ts:i ~dur:1 ()
  done;
  Alcotest.(check int) "bounded" 2 (Trace.length t);
  Alcotest.(check int) "dropped" 3 (Trace.dropped t);
  Alcotest.(check (list int)) "newest kept" [ 4; 5 ]
    (List.map (fun e -> e.Trace.ev_ts) (Trace.events t))

(* --- JSON parser --- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\nd\tune\x01deux");
        ("i", Json.Int (-123));
        ("big", Json.Int max_int);
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Str "x"; Json.Obj [] ]);
        ("empty", Json.Obj []) ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "round-trip equal" true (parsed = doc)
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e

let test_json_unicode_escape () =
  match Json.parse {|"a\u00e9A\u20ac"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "utf-8 decoded" "a\xc3\xa9A\xe2\x82\xac" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_errors () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "01"; "{\"a\" 1}"; "" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    bad;
  (* trailing garbage is rejected *)
  match Json.parse "1 2" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ()

let qcheck_json_roundtrip =
  (* strings chosen to exercise escaping; structure exercises nesting *)
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [ return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) int;
                map (fun s -> Json.Str s) (string_size (0 -- 10)) ]
          in
          if n = 0 then leaf
          else
            frequency
              [ (2, leaf);
                (1, map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2))));
                ( 1,
                  map
                    (fun kvs -> Json.Obj kvs)
                    (list_size (0 -- 4)
                       (pair (string_size (0 -- 6)) (self (n / 2)))) ) ]))
  in
  QCheck.Test.make ~name:"json print/parse round-trip" ~count:200 (QCheck.make gen) (fun doc ->
      match Json.parse (Json.to_string doc) with
      | Ok parsed -> parsed = doc
      | Error _ -> false)

let () =
  Alcotest.run "asc_obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter + gauge" `Quick test_counter_gauge;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "reset keeps handles" `Quick test_reset;
          Alcotest.test_case "to_json round-trips" `Quick test_metrics_json ] );
      ("ring", [ Alcotest.test_case "bounded fifo" `Quick test_ring ]);
      ( "trace",
        [ Alcotest.test_case "span clock arithmetic" `Quick test_span_clock;
          Alcotest.test_case "span records on raise" `Quick test_span_records_on_raise;
          Alcotest.test_case "chrome round-trip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "json-lines" `Quick test_json_lines;
          Alcotest.test_case "bounded collector" `Quick test_trace_bounded ] );
      ( "json",
        [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
          Alcotest.test_case "malformed inputs" `Quick test_json_errors;
          QCheck_alcotest.to_alcotest qcheck_json_roundtrip ] ) ]
