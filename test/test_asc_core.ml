(* Tests for the paper's core mechanism: descriptors, authenticated strings,
   encoded policies, patterns, and the full install -> enforce -> attack
   loop. *)

open Asc_core
module Cmac = Asc_crypto.Cmac

let key = Cmac.of_raw (Asc_crypto.Hex.decode "000102030405060708090a0b0c0d0e0f")

(* --- descriptor --- *)

let test_descriptor_bits () =
  let d = Descriptor.empty in
  Alcotest.(check bool) "marker" true (Descriptor.is_authenticated d);
  Alcotest.(check bool) "no cf" false (Descriptor.has_control_flow d);
  let d = Descriptor.with_control_flow d in
  let d = Descriptor.with_const_arg d 1 in
  let d = Descriptor.with_const_arg d 4 in
  let d = Descriptor.with_string_arg d 0 in
  Alcotest.(check bool) "cf" true (Descriptor.has_control_flow d);
  Alcotest.(check (list int)) "const args" [ 1; 4 ] (Descriptor.const_args d);
  Alcotest.(check (list int)) "string args" [ 0 ] (Descriptor.string_args d);
  Alcotest.check_raises "bad idx" (Invalid_argument "Descriptor: argument index out of range")
    (fun () -> ignore (Descriptor.with_const_arg d 6))

let prop_descriptor_roundtrip =
  QCheck.Test.make ~name:"descriptor bits roundtrip" ~count:200
    QCheck.(pair (list_of_size (Gen.int_bound 5) (int_bound 5)) (list_of_size (Gen.int_bound 5) (int_bound 5)))
    (fun (consts, strings) ->
      let consts = List.sort_uniq compare consts and strings = List.sort_uniq compare strings in
      let d = List.fold_left Descriptor.with_const_arg Descriptor.empty consts in
      let d = List.fold_left Descriptor.with_string_arg d strings in
      Descriptor.const_args d = consts && Descriptor.string_args d = strings)

(* --- authenticated strings --- *)

let test_auth_string_roundtrip () =
  let s = "/dev/console" in
  let built = Auth_string.build key s in
  Alcotest.(check int) "size" (Auth_string.total_size s) (String.length built);
  (* place it in a fake memory and read the header back through a pointer *)
  let mem = Bytes.make 128 '\000' in
  Bytes.blit_string built 0 mem 10 (String.length built);
  let ptr = 10 + Auth_string.header_size in
  let byte_at i = if i >= 0 && i < 128 then Some (Char.code (Bytes.get mem i)) else None in
  match Auth_string.read_header byte_at ~ptr with
  | None -> Alcotest.fail "header unreadable"
  | Some (len, mac) ->
    Alcotest.(check int) "length" (String.length s) len;
    Alcotest.(check bool) "mac matches contents" true
      (Cmac.equal_tags mac (Auth_string.mac_of key s))

let test_auth_string_bad_header () =
  let byte_at _ = Some 0xff in
  (* length = 0xffffffff -> implausible *)
  Alcotest.(check bool) "implausible length rejected" true
    (Auth_string.read_header byte_at ~ptr:100 = None)

(* --- encoded policies --- *)

let sample_encoded ?(site = 0x2000) () =
  let d = Descriptor.empty |> Descriptor.with_control_flow in
  let d = Descriptor.with_const_arg d 1 in
  let d = Descriptor.with_string_arg d 0 in
  { Encoded.e_number = 5;
    e_site = site;
    e_descriptor = d;
    e_block = (1 lsl 20) + 7;
    e_const_args = [ (1, 64) ];
    e_string_args =
      [ (0, { Encoded.as_addr = 0x5014; as_len = 12; as_mac = String.make 16 'm' }) ];
    e_ext = None;
    e_control = (Some ({ Encoded.as_addr = 0x5100; as_len = 16; as_mac = String.make 16 'p' }, 0x5200)) }

let test_encoded_deterministic () =
  let e = sample_encoded () in
  Alcotest.(check string) "stable" (Encoded.encode e) (Encoded.encode e);
  let e' = sample_encoded ~site:0x2008 () in
  Alcotest.(check bool) "site changes encoding" true (Encoded.encode e <> Encoded.encode e')

let test_encoded_descriptor_mismatch () =
  let e = sample_encoded () in
  let bad = { e with Encoded.e_const_args = [] } in
  Alcotest.check_raises "missing const arg"
    (Invalid_argument "Encoded: constant args disagree with descriptor") (fun () ->
      ignore (Encoded.encode bad))

let prop_predset_membership =
  QCheck.Test.make ~name:"predset membership" ~count:200
    QCheck.(pair (small_list (int_bound 10000)) (int_bound 10000))
    (fun (preds, probe) ->
      let contents = Encoded.predset_contents preds in
      Encoded.predset_mem contents probe = List.mem probe preds)

(* --- patterns (§5.1) --- *)

let test_pattern_paper_example () =
  (* §5.1's worked example: pattern "/tmp/{foo,bar}*baz", argument
     "/tmp/foofoobaz", proof hint (0, 3) *)
  let p = Patterns.compile_exn "/tmp/{foo,bar}*baz" in
  Alcotest.(check bool) "matches" true (Patterns.matches p "/tmp/foofoobaz");
  Alcotest.(check bool) "hint (0,3) verifies" true
    (Patterns.verify_with_hint p "/tmp/foofoobaz" ~hint:[ 0; 3 ]);
  Alcotest.(check bool) "wrong hint rejected" false
    (Patterns.verify_with_hint p "/tmp/foofoobaz" ~hint:[ 1; 3 ]);
  Alcotest.(check bool) "bar branch" true (Patterns.matches p "/tmp/barXbaz");
  Alcotest.(check bool) "non-match" false (Patterns.matches p "/etc/passwd");
  Alcotest.(check (option (list int))) "derived hint" (Some [ 0; 3 ])
    (Patterns.derive_hint p "/tmp/foofoobaz")

let test_pattern_syntax_errors () =
  (match Patterns.compile "/tmp/{foo" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unclosed brace accepted");
  match Patterns.compile "a}b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unmatched brace accepted"

let test_pattern_star_and_question () =
  let p = Patterns.compile_exn "/tmp/????.*" in
  Alcotest.(check bool) "question marks" true (Patterns.matches p "/tmp/abcd.log");
  Alcotest.(check bool) "length enforced" false (Patterns.matches p "/tmp/abc.log")

let prop_pattern_hint_complete =
  (* whenever the matcher succeeds, derive_hint produces a verifying hint *)
  let pat_gen =
    QCheck.Gen.(
      map (String.concat "")
        (list_size (int_range 1 6)
           (oneofl [ "a"; "b"; "/"; "*"; "?"; "{ab,c}" ])))
  in
  let str_gen = QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; '/' ]) (int_bound 8)) in
  QCheck.Test.make ~name:"derive_hint completeness" ~count:500
    (QCheck.make ~print:(fun (p, s) -> p ^ " ~ " ^ s) QCheck.Gen.(pair pat_gen str_gen))
    (fun (pat, s) ->
      match Patterns.compile pat with
      | Error _ -> QCheck.assume_fail ()
      | Ok p ->
        (match (Patterns.matches p s, Patterns.derive_hint p s) with
         | false, None -> true
         | true, Some h -> Patterns.verify_with_hint p s ~hint:h
         | true, None -> false
         | false, Some _ -> false))

let prop_pattern_hint_sound =
  (* the security direction: if the kernel's linear verifier accepts a hint,
     the string genuinely matches the pattern — a forged hint can never
     smuggle a non-matching argument past the check *)
  let pat_gen =
    QCheck.Gen.(
      map (String.concat "")
        (list_size (int_range 1 6) (oneofl [ "a"; "b"; "/"; "*"; "?"; "{ab,c}" ])))
  in
  let str_gen = QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; '/' ]) (int_bound 8)) in
  let hint_gen = QCheck.Gen.(list_size (int_bound 4) (int_range (-1) 9)) in
  QCheck.Test.make ~name:"hint verification soundness" ~count:2000
    (QCheck.make
       ~print:(fun (p, s, h) ->
         Printf.sprintf "%s ~ %s hint=(%s)" p s (String.concat "," (List.map string_of_int h)))
       QCheck.Gen.(triple pat_gen str_gen hint_gen))
    (fun (pat, s, hint) ->
      match Patterns.compile pat with
      | Error _ -> QCheck.assume_fail ()
      | Ok p -> (not (Patterns.verify_with_hint p s ~hint)) || Patterns.matches p s)

(* --- full pipeline: install, enforce, attack --- *)

open Oskernel

let num sem = Option.get (Personality.number_of Personality.linux sem)

(* A libc-styled victim: prints a message, opens a config file, exits. *)
let program_src =
  Printf.sprintf
    {|
_start: movi r1, 1
        movi r2, msg
        movi r3, 6
        call write
        movi r1, path
        movi r2, 0
        movi r3, 0
        call open
        movi r1, 0
        call exit
        halt
write:  movi r0, %d
        sys
        ret
open:   movi r0, %d
        sys
        ret
exit:   movi r0, %d
        sys
        ret
        .rodata
msg:    .asciz "hello"
path:   .asciz "/etc/motd"
|}
    (num Syscall.Write) (num Syscall.Open) (num Syscall.Exit)

let install_exn ?options src =
  let img = Svm.Asm.assemble_exn src in
  match Installer.install ~key ~personality:Personality.linux ?options ~program:"victim" img with
  | Ok inst -> inst
  | Error e -> Alcotest.failf "install failed: %s" e

let run_installed ?(patch = fun _ -> ()) ?(stdin = "") ?(normalize_paths = false)
    ?(wrap = fun m -> m) (inst : Installer.installed) =
  let kernel = Kernel.create () in
  let checker = Checker.monitor ~kernel ~key ~normalize_paths () in
  Kernel.set_monitor kernel (Some (wrap checker));
  let proc = Kernel.spawn kernel ~stdin ~program:"victim" inst.Installer.image in
  patch proc.Process.machine;
  let stop = Kernel.run kernel proc ~max_cycles:50_000_000 in
  (kernel, proc, stop)

let test_install_reports_policy () =
  let inst = install_exn program_src in
  Alcotest.(check int) "three sites" 3 inst.Installer.sites;
  let pol = inst.Installer.policy in
  Alcotest.(check int) "three distinct calls" 3 (List.length (Policy.distinct_calls pol));
  (* write's buffer is an input pointer: protected by its *address* (the
     paper's read-only-string case); open's pathname is a full
     authenticated string *)
  let write_site =
    List.find (fun s -> s.Policy.s_sem = Some Syscall.Write) pol.Policy.sites
  in
  (match write_site.Policy.s_args.(1) with
   | Policy.A_data _ -> ()
   | _ -> Alcotest.fail "write arg 1 should be address-constrained");
  (match write_site.Policy.s_args.(0) with
   | Policy.A_const 1 -> ()
   | _ -> Alcotest.fail "write arg 0 should be fd 1");
  let open_site = List.find (fun s -> s.Policy.s_sem = Some Syscall.Open) pol.Policy.sites in
  (match open_site.Policy.s_args.(0) with
   | Policy.A_string "/etc/motd" -> ()
   | _ -> Alcotest.fail "open arg 0 should be the authenticated string \"/etc/motd\"");
  (* control-flow chain: write <- start, open <- write, exit <- open *)
  (match write_site.Policy.s_preds with
   | Some [ p ] -> Alcotest.(check int) "write preceded by start" (1 lsl 20) p
   | _ -> Alcotest.fail "write should have exactly the start predecessor");
  let exit_site = List.find (fun s -> s.Policy.s_sem = Some Syscall.Exit) pol.Policy.sites in
  (match exit_site.Policy.s_preds with
   | Some [ p ] -> Alcotest.(check int) "exit preceded by open" open_site.Policy.s_block p
   | _ -> Alcotest.fail "exit should have one predecessor")

let test_installed_binary_runs_clean () =
  let inst = install_exn program_src in
  let kernel, proc, stop = run_installed inst in
  (match stop with
   | Svm.Machine.Halted 0 -> ()
   | Svm.Machine.Killed r -> Alcotest.failf "killed: %s" r
   | _ -> Alcotest.fail "did not exit 0");
  Alcotest.(check string) "output intact" "hello\000" (Kernel.stdout_of proc);
  Alcotest.(check (list string))
    "no audit entries" []
    (List.map Kernel.audit_to_string (Kernel.audit_log kernel))

let test_unauthenticated_blocked () =
  (* running the ORIGINAL binary under enforcement must be blocked *)
  let img = Svm.Asm.assemble_exn program_src in
  let kernel = Kernel.create () in
  Kernel.set_monitor kernel (Some (Checker.monitor ~kernel ~key ()));
  let proc = Kernel.spawn kernel ~program:"victim" img in
  match Kernel.run kernel proc ~max_cycles:1_000_000 with
  | Svm.Machine.Killed reason ->
    Alcotest.(check string) "reason" "unauthenticated system call" reason
  | _ -> Alcotest.fail "unauthenticated call was not blocked"

let find_sys_slots (m : Svm.Machine.t) =
  (* scan low memory for Sys instructions *)
  let slots = ref [] in
  let i = ref Svm.Asm.text_base in
  let continue = ref true in
  while !continue do
    (match Svm.Machine.read_mem m ~addr:!i ~len:8 with
     | None -> continue := false
     | Some bytes ->
       if bytes = "\x00\x00\x00\x00\x00\x00\x00\x00" && !i > Svm.Asm.text_base + 64 then
         continue := false
       else begin
         (match Svm.Isa.decode (Bytes.of_string bytes) ~pos:0 with
          | Some Svm.Isa.Sys -> slots := !i :: !slots
          | _ -> ());
         i := !i + 8
       end)
  done;
  List.rev !slots

let test_tampered_string_detected () =
  (* flip a byte of the authenticated string contents in .asc *)
  let inst = install_exn program_src in
  let asc = Option.get (Svm.Obj_file.section_named inst.Installer.image ".asc") in
  let patch (m : Svm.Machine.t) =
    (* find "/etc/motd" inside the .asc section and corrupt it *)
    let found = ref false in
    for a = asc.Svm.Obj_file.sec_addr to asc.Svm.Obj_file.sec_addr + asc.Svm.Obj_file.sec_size - 10 do
      if not !found then
        match Svm.Machine.read_mem m ~addr:a ~len:9 with
        | Some "/etc/motd" ->
          found := true;
          ignore (Svm.Machine.write_byte m (a + 5) (Char.code 'p'))
        | _ -> ()
    done;
    if not !found then Alcotest.fail "string not found in .asc"
  in
  let _, _, stop = run_installed ~patch inst in
  match stop with
  | Svm.Machine.Killed reason ->
    Alcotest.(check bool) ("killed: " ^ reason) true
      (String.length reason > 0)
  | _ -> Alcotest.fail "string tampering not detected"

let test_tampered_argument_detected () =
  (* change the constant fd argument (movi r1, 1 -> movi r1, 2) in text:
     the kernel's encoded call then differs from the policy -> MAC mismatch *)
  let inst = install_exn program_src in
  let patch (m : Svm.Machine.t) =
    let a = ref Svm.Asm.text_base in
    let patched = ref false in
    while not !patched do
      (match Svm.Machine.read_mem m ~addr:!a ~len:8 with
       | Some bytes ->
         (match Svm.Isa.decode (Bytes.of_string bytes) ~pos:0 with
          | Some (Svm.Isa.Movi (1, 1)) ->
            let b = Bytes.create 8 in
            Svm.Isa.encode (Svm.Isa.Movi (1, 2)) b ~pos:0;
            ignore (Svm.Machine.write_mem m ~addr:!a (Bytes.to_string b));
            patched := true
          | _ -> ())
       | None -> Alcotest.fail "movi r1,1 not found");
      a := !a + 8
    done
  in
  let _, _, stop = run_installed ~patch inst in
  match stop with
  | Svm.Machine.Killed "call MAC mismatch" -> ()
  | Svm.Machine.Killed r -> Alcotest.failf "unexpected reason: %s" r
  | _ -> Alcotest.fail "argument tampering not detected"

let test_control_flow_violation_detected () =
  (* nop out the first syscall (write): getpid then executes with
     lastBlock = start sentinel, which is not in its predecessor set *)
  let inst = install_exn program_src in
  let patch (m : Svm.Machine.t) =
    match find_sys_slots m with
    | first :: _ ->
      let b = Bytes.create 8 in
      Svm.Isa.encode Svm.Isa.Nop b ~pos:0;
      ignore (Svm.Machine.write_mem m ~addr:first (Bytes.to_string b))
    | [] -> Alcotest.fail "no sys found"
  in
  let _, _, stop = run_installed ~patch inst in
  match stop with
  | Svm.Machine.Killed reason ->
    let is_cf =
      String.length reason >= 22 && String.sub reason 0 22 = "control-flow violation"
    in
    Alcotest.(check bool) ("cf violation: " ^ reason) true is_cf
  | _ -> Alcotest.fail "control-flow skip not detected"

let test_policy_state_replay_detected () =
  (* capture lastBlock/lbMAC after the first syscall and replay it before
     the third: the kernel-side counter (nonce) must catch it *)
  let inst = install_exn program_src in
  let saved = ref None in
  let calls = ref 0 in
  let wrap (checker : Kernel.monitor) =
    { Kernel.monitor_name = "replay-attacker";
      pre_syscall =
        (fun p ~site ~number ->
          incr calls;
          let m = p.Process.machine in
          let lbp = m.Svm.Machine.regs.(10) in
          (if !calls = 3 then
             match !saved with
             | Some bytes -> ignore (Svm.Machine.write_mem m ~addr:lbp bytes)
             | None -> ());
          let verdict = checker.Kernel.pre_syscall p ~site ~number in
          (if !calls = 1 then
             match Svm.Machine.read_mem m ~addr:lbp ~len:24 with
             | Some bytes -> saved := Some bytes
             | None -> ());
          verdict);
      post_syscall = Kernel.no_post }
  in
  let _, _, stop = run_installed ~wrap inst in
  match stop with
  | Svm.Machine.Killed "policy state corrupted" -> ()
  | Svm.Machine.Killed r -> Alcotest.failf "unexpected reason: %s" r
  | _ -> Alcotest.fail "replay not detected"

let test_block_ids_globally_unique () =
  (* §5.5 Frankenstein countermeasure: two programs installed with distinct
     program ids have disjoint block-id spaces *)
  let inst_a =
    install_exn
      ~options:{ Installer.default_options with program_id = 1 }
      program_src
  in
  let inst_b =
    install_exn
      ~options:{ Installer.default_options with program_id = 2 }
      program_src
  in
  let blocks p = List.map (fun s -> s.Policy.s_block) p.Installer.policy.Policy.sites in
  List.iter
    (fun b -> Alcotest.(check bool) "disjoint" false (List.mem b (blocks inst_b)))
    (blocks inst_a)

let test_program_id_range () =
  let img = Svm.Asm.assemble_exn program_src in
  (match
     Asc_core.Installer.install ~key ~personality:Personality.linux
       ~options:{ Asc_core.Installer.default_options with program_id = 2047 }
       ~program:"hi" img
   with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "max id rejected: %s" e);
  match
    Asc_core.Installer.install ~key ~personality:Personality.linux
      ~options:{ Asc_core.Installer.default_options with program_id = 2048 }
      ~program:"hi" img
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range program id accepted"

let test_install_rejects_opaque () =
  (* the opaque block must be statically reachable (the branch's fall-through)
     or dead-code elimination would legitimately drop it *)
  let src =
    "_start: movi r1, 1\n beq r1, r1, over\n .byte 0xff,0xff,0xff,0xff,0xff,0xff,0xff,0xff\nover: halt"
  in
  let img = Svm.Asm.assemble_exn src in
  (match Installer.install ~key ~personality:Personality.linux ~program:"x" img with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "opaque binary installed");
  (* ... but policy generation still works, with a warning (the OpenBSD
     close-stub scenario of Table 2) *)
  match Installer.generate_policy ~personality:Personality.linux ~program:"x" img with
  | Ok pol -> Alcotest.(check bool) "warning recorded" true (pol.Policy.warnings <> [])
  | Error e -> Alcotest.failf "policy generation failed: %s" e

let test_authenticated_overhead_charged () =
  (* the authenticated run must consume more cycles than the plain run *)
  let img = Svm.Asm.assemble_exn program_src in
  let inst = install_exn program_src in
  let kernel1 = Kernel.create () in
  let p1 = Kernel.spawn kernel1 ~program:"v" img in
  ignore (Kernel.run kernel1 p1 ~max_cycles:50_000_000);
  let _, p2, _ = run_installed inst in
  Alcotest.(check bool) "authenticated costs more cycles" true
    (p2.Process.machine.Svm.Machine.cycles > p1.Process.machine.Svm.Machine.cycles + 3 * 3000)

let suite_mechanism =
  [ Alcotest.test_case "descriptor bits" `Quick test_descriptor_bits;
    Alcotest.test_case "auth string roundtrip" `Quick test_auth_string_roundtrip;
    Alcotest.test_case "auth string bad header" `Quick test_auth_string_bad_header;
    Alcotest.test_case "encoded deterministic" `Quick test_encoded_deterministic;
    Alcotest.test_case "encoded/descriptor consistency" `Quick test_encoded_descriptor_mismatch;
    Alcotest.test_case "pattern: paper example + hints" `Quick test_pattern_paper_example;
    Alcotest.test_case "pattern: syntax errors" `Quick test_pattern_syntax_errors;
    Alcotest.test_case "pattern: star and question" `Quick test_pattern_star_and_question ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_descriptor_roundtrip; prop_predset_membership; prop_pattern_hint_complete;
        prop_pattern_hint_sound ]

let suite_pipeline =
  [ Alcotest.test_case "install reports policy" `Quick test_install_reports_policy;
    Alcotest.test_case "installed binary runs clean" `Quick test_installed_binary_runs_clean;
    Alcotest.test_case "unauthenticated call blocked" `Quick test_unauthenticated_blocked;
    Alcotest.test_case "tampered string detected" `Quick test_tampered_string_detected;
    Alcotest.test_case "tampered argument detected" `Quick test_tampered_argument_detected;
    Alcotest.test_case "control-flow violation detected" `Quick test_control_flow_violation_detected;
    Alcotest.test_case "policy-state replay detected" `Quick test_policy_state_replay_detected;
    Alcotest.test_case "block ids globally unique" `Quick test_block_ids_globally_unique;
    Alcotest.test_case "opaque binaries rejected for install" `Quick test_install_rejects_opaque;
    Alcotest.test_case "program id range" `Quick test_program_id_range;
    Alcotest.test_case "verification cycles charged" `Quick test_authenticated_overhead_charged ]

let () =
  Alcotest.run "asc_core"
    [ ("mechanism", suite_mechanism); ("pipeline", suite_pipeline) ]
