(* Tests for the workload suite: every program must compile on both OS
   personalities, run to a clean exit, behave identically when authenticated,
   and the policy/trace structure must support the paper's experiments. *)

open Oskernel

let key = Asc_crypto.Cmac.of_raw "workload-test-k!"

let check_clean_run what (stop : Svm.Machine.stop) =
  match stop with
  | Svm.Machine.Halted 0 -> ()
  | Svm.Machine.Halted v -> Alcotest.failf "%s: exit %d" what v
  | Svm.Machine.Faulted (_, pc) -> Alcotest.failf "%s: fault at 0x%x" what pc
  | Svm.Machine.Killed r -> Alcotest.failf "%s: killed (%s)" what r
  | Svm.Machine.Cycle_limit -> Alcotest.failf "%s: cycle limit" what

let all_programs = Workloads.Registry.table5 ~scale:1 @ Workloads.Registry.policy_programs

let test_all_compile_both_os () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      List.iter
        (fun personality ->
          match Minic.Driver.compile ~personality w.Workloads.Registry.source with
          | Ok _ -> ()
          | Error e ->
            Alcotest.failf "%s on %s: %s" w.Workloads.Registry.name
              (Personality.os_name personality) e)
        [ Personality.linux; Personality.openbsd ])
    all_programs

let test_all_run_clean () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let image = Workloads.Registry.compile ~personality:Personality.linux w in
      let _, _, stop = Workloads.Registry.run ~personality:Personality.linux ~image w in
      check_clean_run w.Workloads.Registry.name stop)
    all_programs

let test_output_identical_when_authenticated () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let personality = Personality.linux in
      let plain = Workloads.Registry.compile ~personality w in
      let auth =
        match Asc_core.Installer.install ~key ~personality ~program:w.Workloads.Registry.name plain with
        | Ok inst -> inst.Asc_core.Installer.image
        | Error e -> Alcotest.failf "install %s: %s" w.Workloads.Registry.name e
      in
      let _, p1, s1 = Workloads.Registry.run ~personality ~image:plain w in
      let kernel2 = Kernel.create ~personality () in
      w.Workloads.Registry.setup kernel2;
      Kernel.set_monitor kernel2 (Some (Asc_core.Checker.monitor ~kernel:kernel2 ~key ()));
      let p2 = Kernel.spawn kernel2 ~stdin:w.Workloads.Registry.stdin ~program:w.Workloads.Registry.name auth in
      let s2 = Kernel.run kernel2 p2 ~max_cycles:2_000_000_000 in
      check_clean_run (w.Workloads.Registry.name ^ " (authenticated)") s2;
      (match s1 with
       | Svm.Machine.Halted 0 -> ()
       | _ -> Alcotest.failf "%s plain run failed" w.Workloads.Registry.name);
      Alcotest.(check string)
        (w.Workloads.Registry.name ^ " stdout identical")
        (Kernel.stdout_of p1) (Kernel.stdout_of p2);
      (* the authenticated run costs more cycles *)
      Alcotest.(check bool)
        (w.Workloads.Registry.name ^ " overhead positive")
        true
        (Workloads.Registry.cycles_of p2 > Workloads.Registry.cycles_of p1))
    (Workloads.Registry.policy_programs @ [ List.hd (Workloads.Registry.table5 ~scale:1) ])

let test_cpu_vs_syscall_intensity () =
  (* syscall-bound programs must make proportionally more syscalls per cycle
     than CPU-bound ones, or Table 6's shape cannot emerge *)
  let density (w : Workloads.Registry.t) =
    let personality = Personality.linux in
    let image = Workloads.Registry.compile ~personality w in
    let kernel = Kernel.create ~personality () in
    w.Workloads.Registry.setup kernel;
    kernel.Kernel.tracing <- true;
    let proc = Kernel.spawn kernel ~stdin:w.Workloads.Registry.stdin ~program:w.Workloads.Registry.name image in
    (match Kernel.run kernel proc ~max_cycles:2_000_000_000 with
     | Svm.Machine.Halted _ -> ()
     | _ -> Alcotest.failf "%s did not halt" w.Workloads.Registry.name);
    let calls = List.length (Kernel.trace kernel) in
    float_of_int calls /. float_of_int (Workloads.Registry.cycles_of proc)
  in
  let get name =
    match Workloads.Registry.by_name ~scale:1 name with
    | Some w -> w
    | None -> Alcotest.failf "unknown workload %s" name
  in
  let d_crafty = density (get "crafty") in
  let d_pyramid = density (get "pyramid") in
  Alcotest.(check bool) "pyramid >> crafty syscall density" true (d_pyramid > d_crafty *. 5.)

let test_policy_breadth_ordering () =
  (* Table 1's shape: screen > calc > bison in distinct system calls *)
  let breadth name =
    let w = Option.get (Workloads.Registry.by_name ~scale:1 name) in
    let img = Workloads.Registry.compile ~personality:Personality.linux w in
    match
      Asc_core.Installer.generate_policy ~personality:Personality.linux ~program:name img
    with
    | Ok pol -> List.length (Asc_core.Policy.distinct_calls pol)
    | Error e -> Alcotest.failf "policy %s: %s" name e
  in
  let b = breadth "bison" and c = breadth "calc" and s = breadth "screen" in
  Alcotest.(check bool) (Printf.sprintf "screen(%d) > calc(%d)" s c) true (s > c);
  Alcotest.(check bool) (Printf.sprintf "calc(%d) > bison(%d)" c b) true (c > b)

let test_andrew_runs () =
  let r = Workloads.Andrew.run ~iterations:1 () in
  Alcotest.(check int) "no failures" 0 r.Workloads.Andrew.failures;
  Alcotest.(check bool) "many tasks" true (r.Workloads.Andrew.tasks > 50);
  Alcotest.(check bool)
    (Printf.sprintf "thousands of syscalls (%d)" r.Workloads.Andrew.syscalls)
    true
    (r.Workloads.Andrew.syscalls > 1000)

let test_andrew_authenticated_small_overhead () =
  let plain = Workloads.Andrew.run ~iterations:1 () in
  let auth = Workloads.Andrew.run ~authenticated:true ~iterations:1 () in
  Alcotest.(check int) "authenticated run clean" 0 auth.Workloads.Andrew.failures;
  let overhead =
    float_of_int (auth.Workloads.Andrew.cycles - plain.Workloads.Andrew.cycles)
    /. float_of_int plain.Workloads.Andrew.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.2f%% positive and modest" (overhead *. 100.))
    true
    (overhead > 0. && overhead < 0.60)

let test_victim_programs () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      match Minic.Driver.compile ~personality:Personality.linux w.Workloads.Registry.source with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" w.Workloads.Registry.name e)
    [ Workloads.Registry.victim; Workloads.Registry.ls; Workloads.Registry.sh ]

let () =
  Alcotest.run "workloads"
    [ ( "workloads",
        [ Alcotest.test_case "all compile on both OSes" `Quick test_all_compile_both_os;
          Alcotest.test_case "all run clean" `Slow test_all_run_clean;
          Alcotest.test_case "authenticated output identical" `Slow
            test_output_identical_when_authenticated;
          Alcotest.test_case "cpu vs syscall density" `Quick test_cpu_vs_syscall_intensity;
          Alcotest.test_case "policy breadth ordering" `Quick test_policy_breadth_ordering;
          Alcotest.test_case "andrew benchmark runs" `Slow test_andrew_runs;
          Alcotest.test_case "andrew authenticated overhead" `Slow
            test_andrew_authenticated_small_overhead;
          Alcotest.test_case "victim programs compile" `Quick test_victim_programs ] ) ]
