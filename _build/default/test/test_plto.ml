(* Tests for the binary rewriter: disassembly, CFG, stub inlining, constant
   propagation, system-call graph, and relocation-correct re-emission. *)

open Plto

let disasm_exn ?first_bid src =
  let img = Svm.Asm.assemble_exn src in
  match Disasm.disassemble ?first_bid img with
  | Ok p -> p
  | Error e -> Alcotest.failf "disassembly failed: %s" e

(* A program shaped like compiled code: two callers invoke the same libc-style
   write stub with different constant arguments; an error path calls exit. *)
let two_caller_src =
  {|
_start: movi r1, 1
        movi r2, msg_a
        movi r3, 6
        call writestub
        movi r1, 1
        movi r2, msg_b
        movi r3, 4
        call writestub
        movi r1, 0
        call exitstub
        halt
writestub: movi r0, 4
        sys
        ret
exitstub: movi r0, 1
        sys
        ret
        .rodata
msg_a:  .asciz "hello"
msg_b:  .asciz "bye"
|}

let test_disasm_blocks () =
  let p = disasm_exn two_caller_src in
  (* call sites split blocks: _start gives 3 blocks (one per call) + halt
     block + 2 stub blocks = 6 *)
  Alcotest.(check int) "block count" 6 (List.length p.Ir.blocks);
  Alcotest.(check int) "entry is first block" 1 p.Ir.entry;
  let stub_blocks = List.filter Ir.has_sys p.Ir.blocks in
  Alcotest.(check int) "two sys blocks" 2 (List.length stub_blocks)

let test_disasm_movi_classification () =
  let p = disasm_exn two_caller_src in
  let entry = Ir.find_block p p.Ir.entry in
  let kinds =
    List.filter_map
      (function
       | Ir.Movi (_, Ir.DataRef _) -> Some `Data
       | Ir.Movi (_, Ir.Const _) -> Some `Const
       | Ir.Movi (_, (Ir.CodeRef _ | Ir.NewRef _)) -> Some `Other
       | Ir.Plain _ | Ir.Sys -> None)
      entry.Ir.body
  in
  Alcotest.(check (list bool)) "const, data, const"
    [ false; true; false ]
    (List.map (fun k -> k = `Data) kinds)

let test_disasm_opaque () =
  (* raw bytes in the text path: an undecodable slot becomes an opaque block
     and a warning, like PLTO on the odd OpenBSD close stub *)
  let src =
    {|
_start: movi r0, 1
        jmp done
        .byte 0xff,0xee,0xdd,0xcc,0xbb,0xaa,0x99,0x88
done:   halt
|}
  in
  let p = disasm_exn src in
  let opaque = List.filter (fun b -> b.Ir.opaque <> None) p.Ir.blocks in
  Alcotest.(check int) "one opaque block" 1 (List.length opaque);
  Alcotest.(check bool) "warning reported" true
    (List.exists
       (fun w ->
         String.length w >= 19 && String.sub w 0 19 = "cannot disassemble ")
       p.Ir.warnings);
  (* an opaque program cannot be re-emitted *)
  match Emit.emit p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "emitted a program with opaque blocks"

let test_cfg_and_callgraph () =
  let p = disasm_exn two_caller_src in
  let calls = Cfg.call_edges p in
  Alcotest.(check int) "three call edges" 3 (List.length calls);
  let entries = Cfg.function_entries p in
  (* _start + 2 stubs *)
  Alcotest.(check int) "three functions" 3 (List.length entries);
  (* reachability: all blocks reachable here *)
  Alcotest.(check int) "all reachable" (List.length p.Ir.blocks)
    (Hashtbl.length (Cfg.reachable p))

let test_inline_stubs () =
  let p = disasm_exn two_caller_src in
  Alcotest.(check int) "two stubs detected" 2 (List.length (Inline.stub_entries p));
  let n = Inline.inline_stubs p in
  Alcotest.(check int) "three sites inlined" 3 n;
  (* after inlining, sys sites live in the caller blocks *)
  let sys_blocks = List.filter Ir.has_sys p.Ir.blocks in
  Alcotest.(check int) "five sys-bearing blocks" 5 (List.length sys_blocks);
  let removed = Opt.remove_unreachable p in
  Alcotest.(check int) "stub bodies removed" 2 removed

let test_dataflow_constants () =
  let p = disasm_exn two_caller_src in
  ignore (Inline.inline_stubs p);
  ignore (Opt.remove_unreachable p);
  let states = Dataflow.sys_states p in
  Alcotest.(check int) "three sys sites" 3 (List.length states);
  (* first site: r0=4 (write), r1=1, r2=msg_a (data), r3=6 *)
  (match states with
   | (_, _, st) :: _ ->
     (match st.(0) with
      | Dataflow.Vals [ { av_kind = Dataflow.KConst; av_val = 4; _ } ] -> ()
      | _ -> Alcotest.fail "r0 should be const 4");
     (match st.(2) with
      | Dataflow.Vals [ { av_kind = Dataflow.KData; av_defs = [ _ ]; _ } ] -> ()
      | _ -> Alcotest.fail "r2 should be a data address with one def");
     (match st.(3) with
      | Dataflow.Vals [ { av_val = 6; _ } ] -> ()
      | _ -> Alcotest.fail "r3 should be const 6")
   | [] -> Alcotest.fail "no states")

let test_dataflow_merge_to_multivalue () =
  (* two paths set r1 to different constants before one sys *)
  let src =
    {|
_start: movi r5, 0
        beq r5, r5, a
        movi r1, 10
        jmp c
a:      movi r1, 20
c:      movi r0, 4
        sys
        halt
|}
  in
  let p = disasm_exn src in
  match Dataflow.sys_states p with
  | [ (_, _, st) ] ->
    (match st.(1) with
     | Dataflow.Vals vs ->
       let vals = List.sort compare (List.map (fun v -> v.Dataflow.av_val) vs) in
       Alcotest.(check (list int)) "both constants survive" [ 10; 20 ] vals
     | _ -> Alcotest.fail "r1 should be a two-value set")
  | _ -> Alcotest.fail "expected one sys site"

let test_dataflow_sys_result_is_res () =
  let src =
    {|
_start: movi r0, 5
        sys
        mov r1, r0
        movi r0, 3
        sys
        halt
|}
  in
  let p = disasm_exn src in
  ignore (Inline.split_multi_sys p);
  match Dataflow.sys_states p with
  | [ _; (_, _, st2) ] ->
    (match st2.(1) with
     | Dataflow.Res -> ()
     | _ -> Alcotest.fail "r1 at second sys should be a syscall result (fd tracking)")
  | l -> Alcotest.failf "expected two sys sites, got %d" (List.length l)

let test_split_multi_sys () =
  let src = "_start: movi r0, 20\n sys\n sys\n sys\n halt" in
  let p = disasm_exn src in
  let n = Inline.split_multi_sys p in
  Alcotest.(check int) "two splits" 2 n;
  List.iter
    (fun b -> Alcotest.(check bool) "at most one sys" true (Ir.sys_count b <= 1))
    p.Ir.blocks;
  (* behavior preserved: re-emit and decode count of sys = 3 *)
  match Emit.emit p with
  | Error e -> Alcotest.fail e
  | Ok (img, _) ->
    let text = Svm.Obj_file.text_section img in
    let b = Bytes.of_string text.Svm.Obj_file.sec_payload in
    let count = ref 0 in
    let i = ref 0 in
    while !i < Bytes.length b do
      (match Svm.Isa.decode b ~pos:!i with Some Svm.Isa.Sys -> incr count | _ -> ());
      i := !i + Svm.Isa.instr_size
    done;
    Alcotest.(check int) "three sys instructions" 3 !count

let test_syscall_graph () =
  let p = disasm_exn two_caller_src in
  ignore (Inline.inline_stubs p);
  ignore (Opt.remove_unreachable p);
  let graph = Syscall_graph.compute p ~start_bid:0 in
  match graph with
  | [ (b1, p1); (b2, p2); (b3, p3) ] ->
    Alcotest.(check (list int)) "first write preceded by start" [ 0 ] p1;
    Alcotest.(check (list int)) "second write preceded by first" [ b1 ] p2;
    Alcotest.(check (list int)) "exit preceded by second" [ b2 ] p3;
    Alcotest.(check bool) "distinct sites" true (b1 <> b2 && b2 <> b3)
  | l -> Alcotest.failf "expected 3 sites, got %d" (List.length l)

let test_syscall_graph_loop () =
  (* a syscall in a loop is its own predecessor *)
  let src =
    {|
_start: movi r4, 0
        movi r5, 3
loop:   movi r0, 20
        sys
        addi r4, r4, 1
        blt r4, r5, loop
        halt
|}
  in
  let p = disasm_exn src in
  match Syscall_graph.compute p ~start_bid:0 with
  | [ (b, preds) ] ->
    Alcotest.(check (list int)) "start and itself" [ 0; b ] (List.sort compare preds)
  | _ -> Alcotest.fail "expected one site"

let test_syscall_graph_interprocedural () =
  (* f() makes a syscall; main calls f twice; second call's syscall can be
     preceded by the first via the return edge *)
  let src =
    {|
_start: call f
        call f
        halt
f:      movi r0, 20
        sys
        ret
|}
  in
  let p = disasm_exn src in
  match Syscall_graph.compute p ~start_bid:0 with
  | [ (b, preds) ] ->
    Alcotest.(check (list int)) "start and itself (via return+recall)" [ 0; b ]
      (List.sort compare preds)
  | _ -> Alcotest.fail "expected one (shared) site"

(* --- round trip: rewrite must preserve behavior --- *)

let run_image img ~stdin =
  let kernel = Oskernel.Kernel.create () in
  let proc = Oskernel.Kernel.spawn kernel ~stdin ~program:"t" img in
  let stop = Oskernel.Kernel.run kernel proc ~max_cycles:10_000_000 in
  (stop, Oskernel.Kernel.stdout_of proc)

let test_emit_identity_roundtrip () =
  let img = Svm.Asm.assemble_exn two_caller_src in
  let p = disasm_exn two_caller_src in
  match Emit.emit p with
  | Error e -> Alcotest.fail e
  | Ok (img', _) ->
    let stop1, out1 = run_image img ~stdin:"" in
    let stop2, out2 = run_image img' ~stdin:"" in
    Alcotest.(check string) "stdout preserved" out1 out2;
    Alcotest.(check bool) "both exit" true (stop1 = stop2)

let test_emit_after_transform_roundtrip () =
  let p = disasm_exn two_caller_src in
  ignore (Inline.inline_stubs p);
  ignore (Opt.remove_unreachable p);
  match Emit.emit p with
  | Error e -> Alcotest.fail e
  | Ok (img', _) ->
    let stop, out = run_image img' ~stdin:"" in
    Alcotest.(check string) "stdout after inlining" "hello\000bye\000" out;
    (match stop with
     | Svm.Machine.Halted 0 -> ()
     | _ -> Alcotest.fail "did not exit cleanly")

let test_emit_extra_section_and_growth () =
  (* insert instructions so text grows past the old rodata base, forcing the
     data sections to move; add an .asc-style extra section and reference it *)
  let p = disasm_exn two_caller_src in
  ignore (Inline.inline_stubs p);
  (* pad every block with register setup so layout genuinely changes *)
  List.iter
    (fun (b : Ir.block) ->
      if b.Ir.opaque = None then
        b.Ir.body <-
          Ir.Movi (9, Ir.NewRef (".asc", 0)) :: Ir.Movi (10, Ir.NewRef (".asc", 16)) :: b.Ir.body)
    p.Ir.blocks;
  let filled = ref None in
  let fill layout =
    filled := Some (Emit.base_of layout ".asc");
    [ (".asc", String.make 32 'M') ]
  in
  match Emit.emit ~extra_sections:[ (".asc", Svm.Obj_file.Data, 32) ] ~fill p with
  | Error e -> Alcotest.fail e
  | Ok (img', layout) ->
    let asc_base = Option.get !filled in
    Alcotest.(check bool) "asc placed above data" true (asc_base > Svm.Asm.text_base);
    (match Svm.Obj_file.section_named img' ".asc" with
     | Some s ->
       Alcotest.(check string) "payload written" (String.make 32 'M') s.Svm.Obj_file.sec_payload;
       Alcotest.(check int) "payload at base" asc_base s.Svm.Obj_file.sec_addr
     | None -> Alcotest.fail "missing .asc section");
    (* data moved but program still behaves identically *)
    let _, out = run_image img' ~stdin:"" in
    Alcotest.(check string) "stdout preserved across data move" "hello\000bye\000" out;
    ignore layout

let test_emit_is_redisassemblable () =
  (* output must be a relocatable binary: disassemble the rewritten binary *)
  let p = disasm_exn two_caller_src in
  ignore (Inline.inline_stubs p);
  ignore (Opt.remove_unreachable p);
  match Emit.emit p with
  | Error e -> Alcotest.fail e
  | Ok (img', _) ->
    (match Disasm.disassemble img' with
     | Ok p2 ->
       Alcotest.(check int) "same sys count" 3
         (List.fold_left (fun a b -> a + Ir.sys_count b) 0 p2.Ir.blocks)
     | Error e -> Alcotest.failf "re-disassembly failed: %s" e)

let prop_roundtrip_random_linear_programs =
  (* random straight-line programs with data refs survive rewrite unchanged *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (oneof
           [ map2
               (fun r v -> Printf.sprintf "movi r%d, %d" (1 + (abs r mod 10)) (abs v mod 1000))
               int int;
             map2
               (fun a b ->
                 Printf.sprintf "add r%d, r%d, r1" (1 + (abs a mod 10)) (1 + (abs b mod 10)))
               int int;
             return "movi r2, blob" ]))
  in
  QCheck.Test.make ~name:"rewrite preserves linear programs" ~count:50
    (QCheck.make ~print:(String.concat "; ") gen)
    (fun instrs ->
      let src =
        "_start: "
        ^ String.concat "\n " instrs
        ^ "\n mov r0, r5\n halt\n .data\nblob: .word 7\n"
      in
      let img = Svm.Asm.assemble_exn src in
      match Disasm.disassemble img with
      | Error _ -> false
      | Ok p ->
        (match Emit.emit p with
         | Error _ -> false
         | Ok (img', _) ->
           let m1 = Svm.Loader.load img in
           let m2 = Svm.Loader.load img' in
           let on_sys _ = Svm.Machine.Sys_kill "no sys expected" in
           let s1 = Svm.Machine.run m1 ~on_sys ~max_cycles:100000 in
           let s2 = Svm.Machine.run m2 ~on_sys ~max_cycles:100000 in
           (* same halt status; r5 arbitrary but equal *)
           s1 = s2))

let suite =
  [ Alcotest.test_case "disasm block structure" `Quick test_disasm_blocks;
    Alcotest.test_case "movi classification via relocs" `Quick test_disasm_movi_classification;
    Alcotest.test_case "opaque blocks + warning" `Quick test_disasm_opaque;
    Alcotest.test_case "cfg + callgraph" `Quick test_cfg_and_callgraph;
    Alcotest.test_case "stub inlining" `Quick test_inline_stubs;
    Alcotest.test_case "const prop at sys sites" `Quick test_dataflow_constants;
    Alcotest.test_case "multi-value merge" `Quick test_dataflow_merge_to_multivalue;
    Alcotest.test_case "sys result tracked as Res" `Quick test_dataflow_sys_result_is_res;
    Alcotest.test_case "split multi-sys blocks" `Quick test_split_multi_sys;
    Alcotest.test_case "syscall graph linear" `Quick test_syscall_graph;
    Alcotest.test_case "syscall graph loop" `Quick test_syscall_graph_loop;
    Alcotest.test_case "syscall graph interprocedural" `Quick test_syscall_graph_interprocedural;
    Alcotest.test_case "emit identity roundtrip" `Quick test_emit_identity_roundtrip;
    Alcotest.test_case "emit after transforms" `Quick test_emit_after_transform_roundtrip;
    Alcotest.test_case "extra section + data move" `Quick test_emit_extra_section_and_growth;
    Alcotest.test_case "output is relocatable again" `Quick test_emit_is_redisassemblable ]
  @ [ QCheck_alcotest.to_alcotest prop_roundtrip_random_linear_programs ]

let () = Alcotest.run "plto" [ ("plto", suite) ]
