(* Tests for the §5 extensions: metapolicies/templates (§5.2), capability
   tracking (§5.3), multi-value argument sets and pattern constraints
   (§5.1) wired through the installer and kernel checker, and in-kernel
   file-name normalization (§5.4). *)

open Oskernel
module Cmac = Asc_crypto.Cmac

let key = Cmac.of_raw "extension-test-k"
let personality = Personality.linux

let compile = Minic.Driver.compile_exn ~personality

let install ?options ?overrides src =
  let img = compile src in
  match Asc_core.Installer.install ~key ~personality ?options ?overrides ~program:"ext" img with
  | Ok inst -> inst
  | Error e -> Alcotest.failf "install: %s" e

let run ?(setup = fun _ -> ()) ?(monitors = []) ?(stdin = "") image =
  let kernel = Kernel.create ~personality () in
  setup kernel;
  let ms = List.map (fun f -> f kernel) monitors in
  (match ms with
   | [] -> ()
   | _ -> Kernel.set_monitor kernel (Some (Kernel.compose_monitors "composed" ms)));
  let proc = Kernel.spawn kernel ~stdin ~program:"ext" image in
  let stop = Kernel.run kernel proc ~max_cycles:100_000_000 in
  (kernel, proc, stop)

let checker kernel = Asc_core.Checker.monitor ~kernel ~key ()
let checker_norm kernel = Asc_core.Checker.monitor ~kernel ~key ~normalize_paths:true ()
let captrack _kernel = Asc_core.Captrack.monitor_for personality

(* ---- metapolicy (§5.2) ---- *)

(* a program whose open path is computed at runtime: static analysis cannot
   constrain it, leaving a template hole *)
let dynamic_open_src =
  {|
char path[32];
int main() {
  strcpy(path, "/tmp/");
  path[5] = 'a' + getpid() % 3;
  path[6] = 0;
  int fd = open(path, 65, 420);
  if (fd >= 0) { close(fd); }
  return 0;
}
|}

let test_metapolicy_finds_holes () =
  let img = compile dynamic_open_src in
  match Asc_core.Installer.generate_policy ~personality ~program:"dyn" img with
  | Error e -> Alcotest.failf "policy: %s" e
  | Ok pol ->
    let holes = Asc_core.Metapolicy.check Asc_core.Metapolicy.strict_exec pol in
    Alcotest.(check bool) "one hole for open's path" true
      (List.exists
         (fun h -> h.Asc_core.Metapolicy.h_sem = Syscall.Open && h.Asc_core.Metapolicy.h_arg = 0)
         holes);
    (* a static program satisfies the same metapolicy *)
    let img2 = compile {|int main() { int fd = open("/etc/motd", 0, 0); close(fd); return 0; }|} in
    (match Asc_core.Installer.generate_policy ~personality ~program:"static" img2 with
     | Ok pol2 ->
       Alcotest.(check bool) "static program satisfied" true
         (Asc_core.Metapolicy.satisfied Asc_core.Metapolicy.strict_exec pol2)
     | Error e -> Alcotest.failf "policy2: %s" e)

let test_template_fill_and_enforce () =
  (* the admin fills the hole with the pattern "/tmp/*"; the kernel then
     enforces it via the extension block *)
  let img = compile dynamic_open_src in
  let pol =
    match Asc_core.Installer.generate_policy ~personality ~program:"dyn" img with
    | Ok p -> p
    | Error e -> Alcotest.failf "policy: %s" e
  in
  let holes = Asc_core.Metapolicy.check Asc_core.Metapolicy.strict_exec pol in
  let fillings = List.map (fun h -> (h, Asc_core.Policy.A_pattern "/tmp/*")) holes in
  let overrides = Asc_core.Metapolicy.to_overrides fillings in
  let inst = install ~overrides dynamic_open_src in
  let _, _, stop = run ~monitors:[ checker ] inst.Asc_core.Installer.image in
  (match stop with
   | Svm.Machine.Halted 0 -> ()
   | Svm.Machine.Killed r -> Alcotest.failf "legit run killed: %s" r
   | _ -> Alcotest.fail "abnormal run");
  (* the completed policy pretty-prints the pattern *)
  let filled = Asc_core.Metapolicy.fill pol fillings in
  Alcotest.(check bool) "pattern recorded" true
    (List.exists
       (fun s ->
         Array.exists
           (fun a -> a = Asc_core.Policy.A_pattern "/tmp/*")
           s.Asc_core.Policy.s_args)
       filled.Asc_core.Policy.sites)

let test_pattern_violation_blocked () =
  (* same dynamic-open program but the admin restricts to "/etc/*": the
     program's /tmp/x open must be denied *)
  let img = compile dynamic_open_src in
  let pol =
    match Asc_core.Installer.generate_policy ~personality ~program:"dyn" img with
    | Ok p -> p
    | Error e -> Alcotest.failf "policy: %s" e
  in
  let holes = Asc_core.Metapolicy.check Asc_core.Metapolicy.strict_exec pol in
  let overrides =
    Asc_core.Metapolicy.to_overrides
      (List.map (fun h -> (h, Asc_core.Policy.A_pattern "/etc/*")) holes)
  in
  let inst = install ~overrides dynamic_open_src in
  let _, _, stop = run ~monitors:[ checker ] inst.Asc_core.Installer.image in
  match stop with
  | Svm.Machine.Killed reason ->
    Alcotest.(check bool) ("pattern denial: " ^ reason) true (String.length reason > 0)
  | _ -> Alcotest.fail "pattern violation not blocked"

let test_string_override_rejected () =
  let img = compile dynamic_open_src in
  match
    Asc_core.Installer.install ~key ~personality
      ~overrides:[ ((1 lsl 20) + 5, 0, Asc_core.Policy.A_string "/tmp/a") ]
      ~program:"dyn" img
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hand-supplied string constraint accepted"

(* ---- multi-value sets (§5.1 via use_extensions) ---- *)

let two_fd_src =
  {|
int main() {
  int which = getpid() % 2;
  int fd;
  if (which) { fd = 1; } else { fd = 2; }
  write(fd, "x", 1);
  return 0;
}
|}

let test_one_of_enforced () =
  let options = { Asc_core.Installer.default_options with use_extensions = true } in
  let inst = install ~options two_fd_src in
  (* policy records the two-value set *)
  Alcotest.(check bool) "A_one_of in policy" true
    (List.exists
       (fun s ->
         Array.exists
           (fun a ->
             match a with Asc_core.Policy.A_one_of [ 1; 2 ] -> true | _ -> false)
           s.Asc_core.Policy.s_args)
       inst.Asc_core.Installer.policy.Asc_core.Policy.sites);
  (* the legitimate run passes *)
  let _, _, stop = run ~monitors:[ checker ] inst.Asc_core.Installer.image in
  (match stop with
   | Svm.Machine.Halted 0 -> ()
   | Svm.Machine.Killed r -> Alcotest.failf "legit run killed: %s" r
   | _ -> Alcotest.fail "abnormal");
  (* tampering the fd to 3 at runtime violates the set *)
  let patch (m : Svm.Machine.t) =
    (* find 'movi r1, 1' and 'movi r1, 2' feeding the write and bump them *)
    let a = ref Svm.Asm.text_base in
    let patched = ref false in
    while not !patched && !a < 0x20000 do
      (match Svm.Machine.read_mem m ~addr:!a ~len:8 with
       | Some bytes ->
         (match Svm.Isa.decode (Bytes.of_string bytes) ~pos:0 with
          | Some (Svm.Isa.Movi (4, 1)) | Some (Svm.Isa.Movi (4, 2)) -> ()
          | _ -> ())
       | None -> ());
      a := !a + 8
    done
  in
  ignore patch;
  (* direct register attack instead: wrap the checker and corrupt r1 before
     the call reaches it -- the set check reads the live register *)
  let kernel = Kernel.create ~personality () in
  let real = Asc_core.Checker.monitor ~kernel ~key () in
  let corrupt =
    { Kernel.monitor_name = "corrupt";
      pre_syscall =
        (fun p ~site ~number ->
          let m = p.Process.machine in
          if Personality.sem_of personality number = Some Syscall.Write then
            m.Svm.Machine.regs.(1) <- 7;
          real.Kernel.pre_syscall p ~site ~number);
      post_syscall = Kernel.no_post }
  in
  Kernel.set_monitor kernel (Some corrupt);
  let proc = Kernel.spawn kernel ~program:"ext" inst.Asc_core.Installer.image in
  match Kernel.run kernel proc ~max_cycles:100_000_000 with
  | Svm.Machine.Killed reason ->
    Alcotest.(check bool) ("set denial: " ^ reason) true (String.length reason > 0)
  | _ -> Alcotest.fail "out-of-set value not blocked"

(* ---- capability tracking (§5.3) ---- *)

let test_captrack_allows_legitimate () =
  let src =
    {|
int main() {
  int fd = open("/etc/motd", 0, 0);
  if (fd < 0) { return 1; }
  char buf[16];
  read(fd, buf, 16);
  close(fd);
  return 0;
}
|}
  in
  let inst = install src in
  let setup (k : Kernel.t) =
    match Vfs.create_file k.Kernel.vfs ~cwd:"/" "/etc/motd" ~contents:"hi" with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "setup"
  in
  let _, _, stop = run ~setup ~monitors:[ checker; captrack ] inst.Asc_core.Installer.image in
  match stop with
  | Svm.Machine.Halted 0 -> ()
  | Svm.Machine.Killed r -> Alcotest.failf "legit fd use killed: %s" r
  | _ -> Alcotest.fail "abnormal"

let test_captrack_blocks_forged_fd () =
  (* reads descriptor 7 without ever opening anything *)
  let src = {|
int main() {
  char buf[8];
  read(7, buf, 8);
  return 0;
}
|} in
  let inst = install src in
  let _, _, stop = run ~monitors:[ checker; captrack ] inst.Asc_core.Installer.image in
  match stop with
  | Svm.Machine.Killed reason ->
    Alcotest.(check bool) ("forged fd: " ^ reason) true (String.length reason > 0)
  | _ -> Alcotest.fail "forged descriptor not blocked"

let test_captrack_fd_reuse_after_close () =
  (* close then re-open: the same descriptor number must be re-issued *)
  let src =
    {|
int main() {
  int a = open("/tmp/f", 65, 420);
  close(a);
  int b = open("/tmp/f", 0, 0);
  char buf[4];
  read(b, buf, 4);
  close(b);
  return 0;
}
|}
  in
  let inst = install src in
  let _, _, stop = run ~monitors:[ checker; captrack ] inst.Asc_core.Installer.image in
  match stop with
  | Svm.Machine.Halted 0 -> ()
  | Svm.Machine.Killed r -> Alcotest.failf "fd reuse killed: %s" r
  | _ -> Alcotest.fail "abnormal"

(* ---- file name normalization (§5.4) ---- *)

let motd_reader =
  {|
int main() {
  int fd = open("/tmp/foo", 0, 0);
  if (fd < 0) { return 1; }
  char buf[16];
  read(fd, buf, 16);
  close(fd);
  return 0;
}
|}

let test_normalize_blocks_symlink_swap () =
  let inst = install motd_reader in
  (* the attacker points /tmp/foo at /etc/passwd before the run *)
  let setup (k : Kernel.t) =
    (match Vfs.create_file k.Kernel.vfs ~cwd:"/" "/etc/passwd" ~contents:"secret" with
     | Ok () -> ()
     | Error _ -> Alcotest.fail "setup");
    match Vfs.symlink k.Kernel.vfs ~cwd:"/" ~target:"/etc/passwd" ~linkpath:"/tmp/foo" with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "symlink"
  in
  let _, _, stop = run ~setup ~monitors:[ checker_norm ] inst.Asc_core.Installer.image in
  match stop with
  | Svm.Machine.Killed reason ->
    Alcotest.(check bool) ("symlink swap: " ^ reason) true (String.length reason > 0)
  | _ -> Alcotest.fail "symlink redirection not blocked"

let test_normalize_allows_plain_file () =
  let inst = install motd_reader in
  let setup (k : Kernel.t) =
    match Vfs.create_file k.Kernel.vfs ~cwd:"/" "/tmp/foo" ~contents:"data" with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "setup"
  in
  let _, _, stop = run ~setup ~monitors:[ checker_norm ] inst.Asc_core.Installer.image in
  match stop with
  | Svm.Machine.Halted 0 -> ()
  | Svm.Machine.Killed r -> Alcotest.failf "plain file killed: %s" r
  | _ -> Alcotest.fail "abnormal"

let () =
  Alcotest.run "extensions"
    [ ( "metapolicy",
        [ Alcotest.test_case "holes found" `Quick test_metapolicy_finds_holes;
          Alcotest.test_case "template fill + enforce" `Quick test_template_fill_and_enforce;
          Alcotest.test_case "pattern violation blocked" `Quick test_pattern_violation_blocked;
          Alcotest.test_case "string override rejected" `Quick test_string_override_rejected ] );
      ( "value-sets",
        [ Alcotest.test_case "one-of recorded and enforced" `Quick test_one_of_enforced ] );
      ( "captrack",
        [ Alcotest.test_case "legitimate fd flow" `Quick test_captrack_allows_legitimate;
          Alcotest.test_case "forged fd blocked" `Quick test_captrack_blocks_forged_fd;
          Alcotest.test_case "fd reuse after close" `Quick test_captrack_fd_reuse_after_close ] );
      ( "normalize",
        [ Alcotest.test_case "symlink swap blocked" `Quick test_normalize_blocks_symlink_swap;
          Alcotest.test_case "plain file allowed" `Quick test_normalize_allows_plain_file ] ) ]
