(* Tests for the SVM substrate: ISA encode/decode, SEF serialize/parse,
   assembler, loader and interpreter semantics. *)

open Svm

(* --- ISA --- *)

let arbitrary_instr =
  let open QCheck.Gen in
  let reg = int_range 0 15 in
  let imm = int_range (-1000000) 1000000 in
  let addr = int_range 0 0xfffff in
  let binop =
    oneofl
      [ Isa.Add; Isa.Sub; Isa.Mul; Isa.Div; Isa.Mod; Isa.And; Isa.Or; Isa.Xor;
        Isa.Shl; Isa.Shr; Isa.Slt; Isa.Sle; Isa.Seq; Isa.Sne ]
  in
  let cond = oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge; Isa.Le; Isa.Gt ] in
  let gen =
    oneof
      [ return Isa.Halt; return Isa.Nop; return Isa.Ret; return Isa.Sys;
        map2 (fun r v -> Isa.Movi (r, v)) reg imm;
        map2 (fun a b -> Isa.Mov (a, b)) reg reg;
        map3 (fun a b o -> Isa.Ld (a, b, o)) reg reg imm;
        map3 (fun a o b -> Isa.St (a, o, b)) reg imm reg;
        map3 (fun a b o -> Isa.Ldb (a, b, o)) reg reg imm;
        map3 (fun a o b -> Isa.Stb (a, o, b)) reg imm reg;
        (binop >>= fun op -> map3 (fun a b c -> Isa.Binop (op, a, b, c)) reg reg reg);
        map3 (fun a b v -> Isa.Addi (a, b, v)) reg reg imm;
        (cond >>= fun c ->
         map3 (fun a b t -> Isa.Br (c, a, b, t)) reg reg addr);
        map (fun t -> Isa.Jmp t) addr;
        map (fun r -> Isa.Jr r) reg;
        map (fun t -> Isa.Call t) addr;
        map (fun r -> Isa.Callr r) reg;
        map (fun r -> Isa.Push r) reg;
        map (fun r -> Isa.Pop r) reg;
        map (fun r -> Isa.Rdcyc r) reg ]
  in
  QCheck.make ~print:(Format.asprintf "%a" Isa.pp) gen

let prop_isa_roundtrip =
  QCheck.Test.make ~name:"isa encode/decode roundtrip" ~count:1000 arbitrary_instr
    (fun i ->
      let b = Bytes.create Isa.instr_size in
      Isa.encode i b ~pos:0;
      Isa.decode b ~pos:0 = Some i)

let test_decode_garbage () =
  let b = Bytes.make 8 '\xff' in
  Alcotest.(check bool) "0xff opcode invalid" true (Isa.decode b ~pos:0 = None);
  let b2 = Bytes.create 8 in
  Isa.encode (Isa.Binop (Isa.Add, 1, 2, 3)) b2 ~pos:0;
  Bytes.set b2 2 '\xee' (* corrupt rt byte *);
  Alcotest.(check bool) "binop with bad rt invalid" true (Isa.decode b2 ~pos:0 = None)

let test_encode_bounds () =
  let b = Bytes.create 8 in
  Alcotest.check_raises "bad reg" (Invalid_argument "Isa.encode: bad register") (fun () ->
      Isa.encode (Isa.Mov (16, 0)) b ~pos:0);
  Alcotest.check_raises "imm too big" (Invalid_argument "Isa.encode: immediate out of range")
    (fun () -> Isa.encode (Isa.Movi (0, 1 lsl 40)) b ~pos:0)

(* --- SEF --- *)

let sample_image () =
  Asm.assemble_exn
    {|
_start: movi r1, 5
        movi r2, msg      ; address -> reloc
        call double
        halt
double: add r0, r1, r1
        ret
        .rodata
msg:    .asciz "hello"
        .data
ptr:    .addr msg
val:    .word 42
|}

let test_sef_roundtrip () =
  let img = sample_image () in
  let s = Obj_file.serialize img in
  match Obj_file.parse s with
  | Error e -> Alcotest.fail e
  | Ok img' ->
    Alcotest.(check int) "entry" img.Obj_file.entry img'.Obj_file.entry;
    Alcotest.(check int) "sections" (List.length img.sections) (List.length img'.sections);
    Alcotest.(check int) "symbols" (List.length img.symbols) (List.length img'.symbols);
    Alcotest.(check int) "relocs" (List.length img.relocs) (List.length img'.relocs);
    Alcotest.(check string) "text payload" (Obj_file.text_section img).sec_payload
      (Obj_file.text_section img').sec_payload

let test_sef_bad_magic () =
  match Obj_file.parse "NOPE rest" with
  | Error e -> Alcotest.(check string) "magic error" "bad magic" e
  | Ok _ -> Alcotest.fail "parsed garbage"

let test_sef_truncated () =
  let img = sample_image () in
  let s = Obj_file.serialize img in
  match Obj_file.parse (String.sub s 0 (String.length s / 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parsed truncated image"

let test_symbols_and_sections () =
  let img = sample_image () in
  Alcotest.(check bool) "has _start" true (Obj_file.find_symbol img "_start" <> None);
  Alcotest.(check bool) "has double" true (Obj_file.find_symbol img "double" <> None);
  let msg_addr = Option.get (Obj_file.find_symbol img "msg") in
  (match Obj_file.section_containing img msg_addr with
   | Some s -> Alcotest.(check string) "msg in rodata" ".rodata" s.sec_name
   | None -> Alcotest.fail "msg not in any section");
  (* the reloc for `movi r2, msg` is in text at instruction 1's imm field *)
  let text = Obj_file.text_section img in
  let expected_rel = text.sec_addr + Isa.instr_size + 4 in
  Alcotest.(check bool) "movi reloc present" true
    (List.exists (fun r -> r.Obj_file.rel_at = expected_rel) img.relocs);
  (* the .addr directive produced a data reloc *)
  let ptr_addr = Option.get (Obj_file.find_symbol img "ptr") in
  Alcotest.(check bool) "data reloc present" true
    (List.exists (fun r -> r.Obj_file.rel_at = ptr_addr) img.relocs)

let test_asm_errors () =
  let expect_err src frag =
    match Asm.assemble src with
    | Ok _ -> Alcotest.failf "expected error mentioning %S" frag
    | Error e ->
      if not (String.length e.msg >= String.length frag) then Alcotest.failf "weird error";
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" e.msg frag)
        true (contains e.msg frag)
  in
  expect_err "_start: bogus r1, r2\n halt" "unknown instruction";
  expect_err "_start: movi r99, 1\n halt" "bad register";
  expect_err "_start: jmp nowhere\n halt" "undefined label";
  expect_err "_start: halt\n_start: halt" "duplicate label";
  expect_err "x: halt" "_start"

(* --- machine semantics --- *)

let run_asm ?(max_cycles = 1_000_000) ?(on_sys = fun _ -> Machine.Sys_kill "unexpected sys")
    src =
  let img = Asm.assemble_exn src in
  let m = Loader.load img in
  let stop = Machine.run m ~on_sys ~max_cycles in
  (m, stop)

let check_halted what expected ((_ : Machine.t), stop) =
  match stop with
  | Machine.Halted v -> Alcotest.(check int) what expected v
  | Machine.Faulted (_, pc) -> Alcotest.failf "%s: faulted at 0x%x" what pc
  | Machine.Killed r -> Alcotest.failf "%s: killed: %s" what r
  | Machine.Cycle_limit -> Alcotest.failf "%s: cycle limit" what

let test_arith () =
  check_halted "arith" 7
    (run_asm
       {|
_start: movi r1, 10
        movi r2, 3
        div r3, r1, r2    ; 3
        mod r4, r1, r2    ; 1
        add r0, r3, r4    ; 4
        movi r5, 3
        add r0, r0, r5    ; 7
        halt
|})

let test_call_ret_stack () =
  check_halted "call/ret" 21
    (run_asm
       {|
_start: movi r1, 5
        call f
        halt
f:      push r1
        movi r2, 16
        add r1, r1, r2
        pop r2            ; r2 = 5
        add r0, r1, r2    ; 21+5? r1=21, r2=5 -> 26? no: r1=5+16=21, r0=21+5=26
        movi r3, 5
        sub r0, r0, r3    ; 21
        ret
|})

let test_memory_ops () =
  check_halted "ld/st/ldb/stb" 0x7f
    (run_asm
       {|
_start: movi r1, buf
        movi r2, 0x7f
        st [r1+0], r2
        ldb r0, [r1+0]
        halt
        .data
buf:    .word 0
|})

let test_branches_loop () =
  (* sum 1..10 = 55 *)
  check_halted "loop" 55
    (run_asm
       {|
_start: movi r1, 0        ; i
        movi r2, 0        ; sum
        movi r3, 10
loop:   bge r1, r3, done
        addi r1, r1, 1
        add r2, r2, r1
        jmp loop
done:   mov r0, r2
        halt
|})

let test_fault_div_zero () =
  let _, stop = run_asm "_start: movi r1, 1\n movi r2, 0\n div r0, r1, r2\n halt" in
  match stop with
  | Machine.Faulted (Machine.Div_by_zero, _) -> ()
  | _ -> Alcotest.fail "expected div-by-zero fault"

let test_fault_bad_address () =
  let _, stop = run_asm "_start: movi r1, 0x7fffffff\n ld r0, [r1+0]\n halt" in
  match stop with
  | Machine.Faulted (Machine.Bad_address _, _) -> ()
  | _ -> Alcotest.fail "expected bad-address fault"

let test_fault_bad_opcode () =
  (* jump into the data section, which holds non-instruction bytes *)
  let _, stop =
    run_asm "_start: jmp data\n halt\n .data\ndata: .byte 0xff,0xff,0xff,0xff,0xff,0xff,0xff,0xff"
  in
  match stop with
  | Machine.Faulted (Machine.Bad_opcode _, _) -> ()
  | _ -> Alcotest.fail "expected bad-opcode fault"

let test_cycle_limit () =
  let _, stop = run_asm ~max_cycles:1000 "_start: jmp _start" in
  match stop with
  | Machine.Cycle_limit -> ()
  | _ -> Alcotest.fail "expected cycle limit"

let test_sys_hook () =
  (* the kernel hook sees the call site and sets a return value *)
  let img =
    Asm.assemble_exn
      {|
_start: movi r0, 39       ; syscall number
        movi r1, 7
        sys
        halt
|}
  in
  let m = Loader.load img in
  let sites = ref [] in
  let on_sys (mach : Machine.t) =
    sites := (mach.pc - Isa.instr_size) :: !sites;
    let number = mach.regs.(0) and arg = mach.regs.(1) in
    mach.regs.(0) <- (number * 100) + arg;
    Machine.Sys_continue
  in
  (match Machine.run m ~on_sys ~max_cycles:100000 with
   | Machine.Halted v -> Alcotest.(check int) "sys result" 3907 v
   | _ -> Alcotest.fail "did not halt");
  Alcotest.(check int) "one sys" 1 (List.length !sites);
  Alcotest.(check int) "call site is the SYS pc" (Asm.text_base + (2 * Isa.instr_size))
    (List.hd !sites)

let test_sys_kill () =
  let _, stop =
    run_asm ~on_sys:(fun _ -> Machine.Sys_kill "policy violation") "_start: sys\n halt"
  in
  match stop with
  | Machine.Killed r -> Alcotest.(check string) "reason" "policy violation" r
  | _ -> Alcotest.fail "expected kill"

let test_stack_overflow_overwrites_return () =
  (* A function stores past the end of a stack buffer and clobbers its own
     return address, redirecting control — the attack primitive the paper's
     monitor must confine. *)
  let src =
    {|
_start: call victim
        movi r0, 1        ; normal return path
        halt
evil:   movi r0, 666
        halt
victim: addi r13, r13, -16  ; 16-byte local buffer; saved ret is at [r13+16]
        movi r1, evil
        st [r13+16], r1     ; "overflow": overwrite return address
        addi r13, r13, 16
        ret
|}
  in
  check_halted "hijacked return" 666 (run_asm src)

let test_rdcyc_monotonic () =
  let m, stop =
    run_asm
      {|
_start: rdcyc r1
        movi r3, 0
        movi r4, 100
l:      bge r3, r4, d
        addi r3, r3, 1
        jmp l
d:      rdcyc r2
        sub r0, r2, r1
        halt
|}
  in
  (match stop with
   | Machine.Halted delta -> Alcotest.(check bool) "cycles advanced" true (delta > 100)
   | _ -> Alcotest.fail "did not halt");
  Alcotest.(check bool) "machine counter grew" true (m.Machine.cycles > 0)

let test_loader_brk () =
  let img = sample_image () in
  let brk = Loader.initial_brk img in
  Alcotest.(check int) "brk page aligned" 0 (brk mod Asm.page_size);
  List.iter
    (fun (s : Obj_file.section) ->
      Alcotest.(check bool) (s.sec_name ^ " below brk") true (s.sec_addr + s.sec_size <= brk))
    img.Obj_file.sections

let prop_asm_pp_roundtrip =
  (* Isa.pp output must reassemble to the same instruction. *)
  QCheck.Test.make ~name:"pp/assemble roundtrip" ~count:500 arbitrary_instr (fun i ->
      (* discard instructions whose immediates the assembler would reject *)
      let ok_target t = t >= 0 in
      let valid =
        match i with
        | Isa.Br (_, _, _, t) | Isa.Jmp t | Isa.Call t -> ok_target t
        | _ -> true
      in
      QCheck.assume valid;
      let src = Format.asprintf "_start: %a\n halt" Isa.pp i in
      match Asm.assemble src with
      | Error _ -> false
      | Ok img ->
        let text = Obj_file.text_section img in
        Isa.decode (Bytes.of_string text.sec_payload) ~pos:0 = Some i)

let suite =
  [ Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
    Alcotest.test_case "encode bounds" `Quick test_encode_bounds;
    Alcotest.test_case "sef roundtrip" `Quick test_sef_roundtrip;
    Alcotest.test_case "sef bad magic" `Quick test_sef_bad_magic;
    Alcotest.test_case "sef truncated" `Quick test_sef_truncated;
    Alcotest.test_case "symbols sections relocs" `Quick test_symbols_and_sections;
    Alcotest.test_case "assembler errors" `Quick test_asm_errors;
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "call/ret/stack" `Quick test_call_ret_stack;
    Alcotest.test_case "memory ops" `Quick test_memory_ops;
    Alcotest.test_case "branch loop" `Quick test_branches_loop;
    Alcotest.test_case "div by zero faults" `Quick test_fault_div_zero;
    Alcotest.test_case "bad address faults" `Quick test_fault_bad_address;
    Alcotest.test_case "bad opcode faults" `Quick test_fault_bad_opcode;
    Alcotest.test_case "cycle limit" `Quick test_cycle_limit;
    Alcotest.test_case "sys hook sees call site" `Quick test_sys_hook;
    Alcotest.test_case "sys kill" `Quick test_sys_kill;
    Alcotest.test_case "stack smash hijacks return" `Quick test_stack_overflow_overwrites_return;
    Alcotest.test_case "rdcyc monotonic" `Quick test_rdcyc_monotonic;
    Alcotest.test_case "loader brk" `Quick test_loader_brk ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_isa_roundtrip; prop_asm_pp_roundtrip ]

let () = Alcotest.run "svm" [ ("svm", suite) ]
