(* System-level property tests.

   The central soundness claim of the paper's approach is "no false alarms":
   a conservative static policy admits every behavior of the uncompromised
   program, so an installed binary running under enforcement must never be
   killed and must behave exactly like the original. We check that on
   randomly generated MiniC programs.

   Dually, robustness: random byte mutations of an installed binary must
   never crash the kernel or the checker (OCaml exception) — every run ends
   in Halted / Faulted / Killed / Cycle_limit. *)

open Oskernel
module Cmac = Asc_crypto.Cmac

let key = Cmac.of_raw "property-test-k!"
let personality = Personality.linux

(* ---- random MiniC program generator ---- *)

(* Generates small programs over: int locals, arithmetic, if/while, calls to
   a fixed set of syscall-wrappers and helper functions, stack and global
   buffers, string literals. All generated programs terminate (loops are
   bounded counters). *)
let loop_counter = ref 0

let fresh_loop_var () =
  incr loop_counter;
  Printf.sprintf "k%d" !loop_counter

let gen_program =
  let open QCheck.Gen in
  let var i = Printf.sprintf "v%d" (i mod 4) in
  let rec gen_expr depth =
    if depth = 0 then
      oneof
        [ map (fun v -> string_of_int (abs v mod 1000)) int;
          map var (int_bound 3) ]
    else
      oneof
        [ map (fun v -> string_of_int (abs v mod 1000)) int;
          map var (int_bound 3);
          (let* a = gen_expr (depth - 1) in
           let* b = gen_expr (depth - 1) in
           let* op = oneofl [ "+"; "-"; "*" ] in
           return (Printf.sprintf "(%s %s %s)" a op b));
          (let* a = gen_expr (depth - 1) in
           return (Printf.sprintf "(%s / 7)" a)) ]
  in
  let gen_io_stmt =
    let* choice = int_bound 7 in
    let u = fresh_loop_var () in
    return
      (match choice with
       | 0 -> "getpid();"
       | 1 -> "puts_str(\"tick\\n\");"
       | 2 -> "write(1, \"ab\", 2);"
       | 3 ->
         Printf.sprintf
           "{ int fd%s = open(\"/tmp/p\", 65, 420); if (fd%s >= 0) { write(fd%s, \"x\", 1); close(fd%s); } }"
           u u u u
       | 4 -> Printf.sprintf "{ char tb%s[16]; gettimeofday(tb%s, 0); }" u u
       | 5 -> Printf.sprintf "{ char st%s[16]; stat(\"/tmp/p\", st%s); }" u u
       | 6 -> "access(\"/etc/q\", 4);"
       | _ -> "nanosleep(0, 0);")
  in
  let rec gen_stmt depth =
    if depth = 0 then
      oneof
        [ (let* i = int_bound 3 in
           let* e = gen_expr 1 in
           return (Printf.sprintf "%s = %s;" (var i) e));
          gen_io_stmt ]
    else
      oneof
        [ (let* i = int_bound 3 in
           let* e = gen_expr 2 in
           return (Printf.sprintf "%s = %s;" (var i) e));
          gen_io_stmt;
          (let* c = gen_expr 1 in
           let* a = gen_stmt (depth - 1) in
           let* b = gen_stmt (depth - 1) in
           return (Printf.sprintf "if (%s > 3) { %s } else { %s }" c a b));
          (let* body = gen_stmt (depth - 1) in
           let k = fresh_loop_var () in
           return
             (Printf.sprintf "{ int %s; for (%s = 0; %s < 3; %s = %s + 1) { %s } }" k k k k k
                body)) ]
  in
  let* stmts = list_size (int_range 1 8) (gen_stmt 2) in
  let body = String.concat "\n  " stmts in
  return
    (Printf.sprintf
       "int v0; int v1; int v2; int v3;\nint main() {\n  %s\n  return v0 %% 100;\n}" body)

let arbitrary_program = QCheck.make ~print:(fun s -> s) gen_program

exception Load_rejected

(* Kernel.spawn refuses images whose sections fall outside memory (the
   moral equivalent of execve returning ENOEXEC); surface that as its own
   outcome so robustness properties can distinguish it from a crash. *)
let run_image ?monitor_of image =
  let kernel = Kernel.create ~personality () in
  kernel.Kernel.tracing <- true;
  (match monitor_of with
   | Some f -> Kernel.set_monitor kernel (Some (f kernel))
   | None -> ());
  let proc =
    try Kernel.spawn kernel ~program:"prop" image
    with Invalid_argument _ -> raise Load_rejected
  in
  let stop = Kernel.run kernel proc ~max_cycles:200_000_000 in
  let sems = List.filter_map (fun t -> t.Kernel.t_sem) (Kernel.trace kernel) in
  (stop, Kernel.stdout_of proc, sems)

let prop_no_false_alarms =
  QCheck.Test.make ~name:"installed programs never trip the checker" ~count:60
    arbitrary_program (fun src ->
      match Minic.Driver.compile ~personality src with
      | Error e -> QCheck.Test.fail_reportf "generated program does not compile: %s" e
      | Ok img ->
        (match Asc_core.Installer.install ~key ~personality ~program:"prop" img with
         | Error e -> QCheck.Test.fail_reportf "install failed: %s" e
         | Ok inst ->
           let stop0, out0, sems0 = run_image img in
           let stop1, out1, sems1 =
             run_image
               ~monitor_of:(fun kernel -> Asc_core.Checker.monitor ~kernel ~key ())
               inst.Asc_core.Installer.image
           in
           (match (stop0, stop1) with
            | Svm.Machine.Halted a, Svm.Machine.Halted b ->
              a = b && out0 = out1 && sems0 = sems1
            | Svm.Machine.Killed r, _ | _, Svm.Machine.Killed r ->
              QCheck.Test.fail_reportf "killed: %s" r
            | _ -> QCheck.Test.fail_reportf "abnormal termination")))

let prop_extensions_no_false_alarms =
  QCheck.Test.make ~name:"value-set extensions never trip the checker" ~count:30
    arbitrary_program (fun src ->
      match Minic.Driver.compile ~personality src with
      | Error _ -> false
      | Ok img ->
        let options = { Asc_core.Installer.default_options with use_extensions = true } in
        (match Asc_core.Installer.install ~key ~personality ~options ~program:"prop" img with
         | Error e -> QCheck.Test.fail_reportf "install failed: %s" e
         | Ok inst ->
           (match
              run_image
                ~monitor_of:(fun kernel -> Asc_core.Checker.monitor ~kernel ~key ())
                inst.Asc_core.Installer.image
            with
            | Svm.Machine.Halted _, _, _ -> true
            | Svm.Machine.Killed r, _, _ -> QCheck.Test.fail_reportf "killed: %s" r
            | _ -> false)))

(* ---- mutation fuzzing: the kernel/checker must never crash ---- *)

let fixed_victim =
  lazy
    (let src =
       {|
int main() {
  int fd = open("/tmp/f", 65, 420);
  write(fd, "fuzzdata", 8);
  close(fd);
  puts_str("done\n");
  return 0;
}
|}
     in
     let img = Minic.Driver.compile_exn ~personality src in
     match Asc_core.Installer.install ~key ~personality ~program:"fuzz" img with
     | Ok inst -> Svm.Obj_file.serialize inst.Asc_core.Installer.image
     | Error e -> failwith e)

let prop_mutation_robustness =
  QCheck.Test.make ~name:"byte mutations never crash the kernel" ~count:300
    QCheck.(pair small_nat (int_bound 255))
    (fun (pos, byte) ->
      let serialized = Lazy.force fixed_victim in
      let b = Bytes.of_string serialized in
      let pos = 8 + (pos * 131 mod (Bytes.length b - 8)) in
      Bytes.set b pos (Char.chr byte);
      match Svm.Obj_file.parse (Bytes.to_string b) with
      | Error _ -> true (* corrupt image rejected at parse time *)
      | Ok img ->
        (match
           run_image ~monitor_of:(fun kernel -> Asc_core.Checker.monitor ~kernel ~key ()) img
         with
         | (Svm.Machine.Halted _ | Svm.Machine.Faulted _ | Svm.Machine.Killed _
           | Svm.Machine.Cycle_limit), _, _ -> true
         | exception Load_rejected -> true (* refused before any code ran *)
         | exception (Failure _ | Invalid_argument _ | Not_found) -> false))

(* a mutated run that completes must not have gained syscall behavior the
   policy never named *)
let prop_mutation_confined =
  QCheck.Test.make ~name:"mutations cannot add unauthorized syscalls" ~count:300
    QCheck.(pair small_nat (int_bound 255))
    (fun (pos, byte) ->
      let serialized = Lazy.force fixed_victim in
      let baseline_sems =
        match Svm.Obj_file.parse serialized with
        | Ok img ->
          let _, _, sems =
            run_image ~monitor_of:(fun kernel -> Asc_core.Checker.monitor ~kernel ~key ()) img
          in
          List.sort_uniq compare sems
        | Error _ -> assert false
      in
      let b = Bytes.of_string serialized in
      let pos = 8 + (pos * 131 mod (Bytes.length b - 8)) in
      Bytes.set b pos (Char.chr byte);
      match Svm.Obj_file.parse (Bytes.to_string b) with
      | Error _ -> true
      | Ok img ->
        (match
           run_image ~monitor_of:(fun kernel -> Asc_core.Checker.monitor ~kernel ~key ()) img
         with
         | exception Load_rejected -> true
         | _, _, sems ->
           (* whatever happened, the completed syscalls stay within the
              program's policy set *)
           List.for_all (fun s -> List.mem s baseline_sems) (List.sort_uniq compare sems)))

(* ---- model-based VFS testing ---- *)

type model_op =
  | M_create of string * string
  | M_mkdir of string
  | M_unlink of string
  | M_rename of string * string
  | M_read of string

let model_paths = [ "/a"; "/b"; "/d/x"; "/d/y"; "/d" ]

let gen_op =
  let open QCheck.Gen in
  let path = oneofl model_paths in
  oneof
    [ map2 (fun p c -> M_create (p, c)) path (string_size ~gen:(char_range 'a' 'z') (int_bound 8));
      map (fun p -> M_mkdir p) path;
      map (fun p -> M_unlink p) path;
      map2 (fun a b -> M_rename (a, b)) path path;
      map (fun p -> M_read p) path ]

let print_op = function
  | M_create (p, c) -> Printf.sprintf "create %s %S" p c
  | M_mkdir p -> "mkdir " ^ p
  | M_unlink p -> "unlink " ^ p
  | M_rename (a, b) -> Printf.sprintf "rename %s %s" a b
  | M_read p -> "read " ^ p

(* reference model: a flat map from paths to [`File of string | `Dir],
   with /d the only possible directory *)
module SM = Map.Make (String)

let model_apply (model : [ `File of string | `Dir ] SM.t) op =
  let parent_ok p =
    match String.rindex_opt p '/' with
    | Some 0 -> true
    | Some i ->
      let parent = String.sub p 0 i in
      (match SM.find_opt parent model with Some `Dir -> true | _ -> false)
    | None -> false
  in
  match op with
  | M_create (p, c) ->
    (match SM.find_opt p model with
     | Some `Dir -> (model, `Err)
     | _ when not (parent_ok p) -> (model, `Err)
     | _ -> (SM.add p (`File c) model, `Ok))
  | M_mkdir p ->
    if SM.mem p model || not (parent_ok p) then (model, `Err)
    else (SM.add p `Dir model, `Ok)
  | M_unlink p ->
    (match SM.find_opt p model with
     | Some (`File _) -> (SM.remove p model, `Ok)
     | _ -> (model, `Err))
  | M_rename (a, b) ->
    (match SM.find_opt a model with
     | None -> (model, `Err)
     | Some _ when not (parent_ok b) -> (model, `Err)
     | Some `Dir -> (model, `Skip) (* directory renames: not modeled *)
     | Some (`File _ as v) ->
       (match SM.find_opt b model with
        | Some `Dir -> (model, `Err) (* a directory destination is refused *)
        | _ -> if a = b then (model, `Ok) else (SM.add b v (SM.remove a model), `Ok)))
  | M_read p ->
    (match SM.find_opt p model with
     | Some (`File c) -> (model, `Read c)
     | _ -> (model, `Err))

let prop_vfs_matches_model =
  QCheck.Test.make ~name:"vfs agrees with a reference model" ~count:300
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map print_op ops))
       QCheck.Gen.(list_size (int_range 1 25) gen_op))
    (fun ops ->
      let fs = Vfs.create () in
      let ok = ref true in
      let _ =
        List.fold_left
          (fun model op ->
            let model', expected = model_apply model op in
            (match expected with
             | `Skip -> ()
             | `Ok | `Err | `Read _ ->
               let actual =
                 match op with
                 | M_create (p, c) ->
                   (match Vfs.create_file fs ~cwd:"/" p ~contents:c with
                    | Ok () -> `Ok
                    | Error _ -> `Err)
                 | M_mkdir p ->
                   (match Vfs.mkdir fs ~cwd:"/" p with Ok () -> `Ok | Error _ -> `Err)
                 | M_unlink p ->
                   (match Vfs.unlink fs ~cwd:"/" p with Ok () -> `Ok | Error _ -> `Err)
                 | M_rename (a, b) ->
                   (match Vfs.rename fs ~cwd:"/" ~src:a ~dst:b with
                    | Ok () -> `Ok
                    | Error _ -> `Err)
                 | M_read p ->
                   (match Vfs.read_file fs ~cwd:"/" p with
                    | Ok c -> `Read c
                    | Error _ -> `Err)
               in
               if actual <> expected then ok := false);
            model')
          SM.empty ops
      in
      !ok)

(* ---- branchy rewriter round-trips ---- *)

let gen_branchy =
  let open QCheck.Gen in
  (* a chain of labeled blocks with arithmetic, conditional jumps forward,
     and a final halt returning an accumulator *)
  let* nblocks = int_range 2 6 in
  let* ops =
    list_size (return nblocks)
      (list_size (int_range 1 4)
         (oneof
            [ map2 (fun r v -> Printf.sprintf "movi r%d, %d" (1 + (abs r mod 6)) (abs v mod 500)) int int;
              map2 (fun a b -> Printf.sprintf "add r%d, r%d, r7" (1 + (abs a mod 6)) (1 + (abs b mod 6))) int int;
              return "addi r7, r7, 3" ]))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "_start: movi r7, 1\n";
  List.iteri
    (fun i block ->
      Buffer.add_string buf (Printf.sprintf "blk%d:\n" i);
      List.iter (fun ins -> Buffer.add_string buf ("        " ^ ins ^ "\n")) block;
      if i < nblocks - 1 then
        Buffer.add_string buf
          (Printf.sprintf "        blt r7, r%d, blk%d\n" (1 + (i mod 6)) (i + 1)))
    ops;
  Buffer.add_string buf "        mov r0, r7\n        halt\n";
  return (Buffer.contents buf)

let prop_branchy_roundtrip =
  QCheck.Test.make ~name:"rewrite preserves branchy programs" ~count:100
    (QCheck.make ~print:(fun s -> s) gen_branchy)
    (fun src ->
      let img = Svm.Asm.assemble_exn src in
      match Plto.Disasm.disassemble img with
      | Error _ -> false
      | Ok p ->
        ignore (Plto.Opt.remove_unreachable p);
        (match Plto.Emit.emit p with
         | Error _ -> false
         | Ok (img', _) ->
           let run i =
             let m = Svm.Loader.load i in
             Svm.Machine.run m ~on_sys:(fun _ -> Svm.Machine.Sys_kill "none") ~max_cycles:100000
           in
           run img = run img'))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_no_false_alarms; prop_extensions_no_false_alarms; prop_mutation_robustness;
      prop_mutation_confined; prop_vfs_matches_model; prop_branchy_roundtrip ]

let () = Alcotest.run "properties" [ ("properties", suite) ]
