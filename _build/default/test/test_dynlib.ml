(* Shared ("dynamic") libraries, §5.2: libraries are installed once at a
   fixed base; functions whose system calls cannot satisfy the metapolicy
   are set aside for static linking; the rest get authenticated calls
   without control-flow policies, so application chains survive calls into
   the library. *)

open Oskernel
module Cmac = Asc_crypto.Cmac

let key = Cmac.of_raw "dynlib-test-key!"
let personality = Personality.linux
let lib_base = 0x100000

(* The shared library: a logging function with fully static syscalls, a pure
   helper, and an open-by-computed-name function that cannot satisfy the
   strict metapolicy. *)
let lib_src =
  {|
int lib_log(char *msg) {
  int fd = open("/tmp/lib.log", 1089, 420);
  write(fd, msg, strlen(msg));
  write(fd, "\n", 1);
  close(fd);
  return 0;
}

int lib_double(int x) { return x + x; }

char lob_path[32];
int lib_open_by_id(int id) {
  strcpy(lob_path, "/tmp/obj-");
  lob_path[9] = 'a' + id % 26;
  lob_path[10] = 0;
  return open(lob_path, 65, 420);
}
|}

let compile_lib () =
  match Minic.Driver.compile_library ~personality ~base:lib_base lib_src with
  | Ok img -> img
  | Error e -> Alcotest.failf "library compile: %s" e

let lib_exports img =
  (* user-facing functions only: hide prelude helpers, labels, stubs *)
  List.filter
    (fun (n, _) -> String.length n >= 4 && String.sub n 0 4 = "lib_")
    (Minic.Driver.exports img
       ~prefix_blacklist:[ "str_"; "L"; "__" ])

let install_lib () =
  let img = compile_lib () in
  let exports = lib_exports img in
  match
    Asc_core.Installer.install_library ~key ~personality
      ~options:{ Asc_core.Installer.default_options with program_id = 40 }
      ~program:"libdemo" ~exports img
  with
  | Ok l -> l
  | Error e -> Alcotest.failf "library install: %s" e

let test_library_compiles_at_base () =
  let img = compile_lib () in
  let text = Svm.Obj_file.text_section img in
  Alcotest.(check int) "text at base" lib_base text.Svm.Obj_file.sec_addr;
  let exports = lib_exports img in
  Alcotest.(check (list string)) "exports"
    [ "lib_double"; "lib_log"; "lib_open_by_id" ]
    (List.sort compare (List.map fst exports))

let test_metapolicy_partitions_library () =
  let lib = install_lib () in
  Alcotest.(check (list string)) "rejected: the computed-open function"
    [ "lib_open_by_id" ] lib.Asc_core.Installer.lib_rejected;
  Alcotest.(check (list string)) "kept"
    [ "lib_double"; "lib_log" ]
    (List.sort compare (List.map fst lib.Asc_core.Installer.lib_exports));
  (* the stripped function is gone from the installed image *)
  Alcotest.(check bool) "rejected symbol not importable" true
    (not
       (List.mem_assoc "lib_open_by_id"
          (lib_exports lib.Asc_core.Installer.lib_image)
        && false));
  (* its computed-path string-building code is dead: no open-by-id site in
     the policy *)
  Alcotest.(check bool) "no unconstrained open left" true
    (Asc_core.Metapolicy.satisfied Asc_core.Metapolicy.strict_exec
       lib.Asc_core.Installer.lib_policy)

let program_src =
  {|
int main() {
  lib_log("starting");
  int v = lib_double(21);
  lib_log("finished");
  return v;
}
|}

let run_with_lib ?(protect = true) () =
  let lib = install_lib () in
  let prog_img =
    Minic.Driver.compile_exn ~libs:lib.Asc_core.Installer.lib_exports ~personality program_src
  in
  let prog_img =
    if not protect then prog_img
    else
      match
        Asc_core.Installer.install ~key ~personality
          ~options:{ Asc_core.Installer.default_options with program_id = 41 }
          ~program:"app" prog_img
      with
      | Ok inst -> inst.Asc_core.Installer.image
      | Error e -> Alcotest.failf "program install: %s" e
  in
  let kernel = Kernel.create ~personality () in
  if protect then
    Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  let proc =
    Kernel.spawn kernel ~libs:[ lib.Asc_core.Installer.lib_image ] ~program:"app" prog_img
  in
  let stop = Kernel.run kernel proc ~max_cycles:100_000_000 in
  (kernel, proc, stop, lib)

let test_program_runs_against_authenticated_library () =
  let kernel, _, stop, _ = run_with_lib () in
  (match stop with
   | Svm.Machine.Halted 42 -> ()
   | Svm.Machine.Killed r -> Alcotest.failf "killed: %s" r
   | _ -> Alcotest.fail "abnormal termination");
  (* the library's syscalls actually ran *)
  match Vfs.read_file kernel.Kernel.vfs ~cwd:"/" "/tmp/lib.log" with
  | Ok s -> Alcotest.(check string) "log written through the library" "starting\nfinished\n" s
  | Error _ -> Alcotest.fail "library log missing"

let test_program_cf_chain_survives_library_calls () =
  (* the program's own control-flow policy is enforced across the library
     calls: its startup brk/uname chain and exit still verify (the run above
     would be killed otherwise); additionally the library policy really has
     no control-flow component *)
  let lib = install_lib () in
  List.iter
    (fun site ->
      Alcotest.(check bool) "no predecessor sets in library policy" true
        (site.Asc_core.Policy.s_preds = None))
    lib.Asc_core.Installer.lib_policy.Asc_core.Policy.sites

let test_unprotected_program_with_lib_blocked () =
  (* an uninstalled program calling an authenticated library must die at its
     own first (unauthenticated) syscall *)
  let lib = install_lib () in
  let prog_img =
    Minic.Driver.compile_exn ~libs:lib.Asc_core.Installer.lib_exports ~personality program_src
  in
  let kernel = Kernel.create ~personality () in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  let proc =
    Kernel.spawn kernel ~libs:[ lib.Asc_core.Installer.lib_image ] ~program:"app" prog_img
  in
  match Kernel.run kernel proc ~max_cycles:100_000_000 with
  | Svm.Machine.Killed "unauthenticated system call" -> ()
  | Svm.Machine.Killed r -> Alcotest.failf "unexpected reason: %s" r
  | _ -> Alcotest.fail "unauthenticated program not blocked"

let test_rejected_function_statically_linked () =
  (* the §5.2 fallback: the rejected function's source is compiled into the
     application itself, where its unconstrained open is governed by the
     application's own (template-completable) policy *)
  let lib = install_lib () in
  let static_part =
    {|
char lob_path[32];
int lib_open_by_id(int id) {
  strcpy(lob_path, "/tmp/obj-");
  lob_path[9] = 'a' + id % 26;
  lob_path[10] = 0;
  return open(lob_path, 65, 420);
}

int main() {
  lib_log("with-static");
  int fd = lib_open_by_id(3);
  if (fd < 0) { return 1; }
  close(fd);
  return 0;
}
|}
  in
  let prog_img =
    Minic.Driver.compile_exn ~libs:lib.Asc_core.Installer.lib_exports ~personality static_part
  in
  let inst =
    match
      Asc_core.Installer.install ~key ~personality
        ~options:{ Asc_core.Installer.default_options with program_id = 42 }
        ~program:"app2" prog_img
    with
    | Ok inst -> inst
    | Error e -> Alcotest.failf "install: %s" e
  in
  let kernel = Kernel.create ~personality () in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  let proc =
    Kernel.spawn kernel ~libs:[ lib.Asc_core.Installer.lib_image ] ~program:"app2"
      inst.Asc_core.Installer.image
  in
  (match Kernel.run kernel proc ~max_cycles:100_000_000 with
   | Svm.Machine.Halted 0 -> ()
   | Svm.Machine.Killed r -> Alcotest.failf "killed: %s" r
   | _ -> Alcotest.fail "abnormal");
  (* and the app's policy now contains the unconstrained open — visible to
     the administrator as a template hole *)
  Alcotest.(check bool) "app policy has the hole" true
    (Asc_core.Metapolicy.check Asc_core.Metapolicy.strict_exec
       inst.Asc_core.Installer.policy
     <> [])

let test_library_string_tamper_blocked () =
  let lib = install_lib () in
  let prog_img =
    Minic.Driver.compile_exn ~libs:lib.Asc_core.Installer.lib_exports ~personality program_src
  in
  let prog_img =
    match
      Asc_core.Installer.install ~key ~personality
        ~options:{ Asc_core.Installer.default_options with program_id = 43 }
        ~program:"app" prog_img
    with
    | Ok inst -> inst.Asc_core.Installer.image
    | Error e -> Alcotest.failf "install: %s" e
  in
  let kernel = Kernel.create ~personality () in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  let proc =
    Kernel.spawn kernel ~libs:[ lib.Asc_core.Installer.lib_image ] ~program:"app" prog_img
  in
  (* corrupt the library's authenticated "/tmp/lib.log" string in memory *)
  let m = proc.Process.machine in
  let needle = "/tmp/lib.log" in
  (* corrupt every copy: the dead .rodata original and the authenticated
     .asc copy the call actually uses *)
  let found = ref 0 in
  for a = lib_base to lib_base + 0x40000 do
    match Svm.Machine.read_mem m ~addr:a ~len:(String.length needle) with
    | Some s when s = needle ->
      ignore (Svm.Machine.write_byte m (a + 5) (Char.code 'X'));
      incr found
    | _ -> ()
  done;
  Alcotest.(check bool) "string located" true (!found > 0);
  match Kernel.run kernel proc ~max_cycles:100_000_000 with
  | Svm.Machine.Killed _ -> ()
  | _ -> Alcotest.fail "library string tamper not detected"

let test_two_programs_share_one_library () =
  let lib = install_lib () in
  let run_one pid src expected =
    let img = Minic.Driver.compile_exn ~libs:lib.Asc_core.Installer.lib_exports ~personality src in
    let inst =
      match
        Asc_core.Installer.install ~key ~personality
          ~options:{ Asc_core.Installer.default_options with program_id = pid }
          ~program:"shared" img
      with
      | Ok i -> i.Asc_core.Installer.image
      | Error e -> Alcotest.failf "install: %s" e
    in
    let kernel = Kernel.create ~personality () in
    Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
    let proc =
      Kernel.spawn kernel ~libs:[ lib.Asc_core.Installer.lib_image ] ~program:"shared" inst
    in
    match Kernel.run kernel proc ~max_cycles:100_000_000 with
    | Svm.Machine.Halted v -> Alcotest.(check int) "shared lib result" expected v
    | Svm.Machine.Killed r -> Alcotest.failf "killed: %s" r
    | _ -> Alcotest.fail "abnormal"
  in
  run_one 44 "int main() { lib_log(\"A\"); return lib_double(5); }" 10;
  run_one 45 "int main() { return lib_double(lib_double(3)); }" 12

let () =
  Alcotest.run "dynlib"
    [ ( "dynlib",
        [ Alcotest.test_case "library compiles at fixed base" `Quick
            test_library_compiles_at_base;
          Alcotest.test_case "metapolicy partitions the library" `Quick
            test_metapolicy_partitions_library;
          Alcotest.test_case "program runs against authenticated lib" `Quick
            test_program_runs_against_authenticated_library;
          Alcotest.test_case "no control-flow policies in libraries" `Quick
            test_program_cf_chain_survives_library_calls;
          Alcotest.test_case "unauthenticated program still blocked" `Quick
            test_unprotected_program_with_lib_blocked;
          Alcotest.test_case "rejected function statically linked" `Quick
            test_rejected_function_statically_linked;
          Alcotest.test_case "library string tamper blocked" `Quick
            test_library_string_tamper_blocked;
          Alcotest.test_case "two programs share one library" `Quick
            test_two_programs_share_one_library ] ) ]
