(* The §4.1 / §5.5 attack experiments. Each attack must genuinely succeed
   against the unprotected system (the vulnerability is real) and be blocked
   by authenticated system calls. *)

let check_succeeded what = function
  | Attacks.Succeeded _ -> ()
  | o -> Alcotest.failf "%s: expected success, got %a" what Attacks.pp_outcome o

let check_blocked what = function
  | Attacks.Blocked _ -> ()
  | o -> Alcotest.failf "%s: expected block, got %a" what Attacks.pp_outcome o

let test_shellcode_unprotected () =
  check_succeeded "shellcode vs unprotected" (Attacks.shellcode ~protected:false)

let test_shellcode_blocked () =
  check_blocked "shellcode vs ASC" (Attacks.shellcode ~protected:true)

let test_mimicry_unprotected () =
  check_succeeded "mimicry vs unprotected" (Attacks.mimicry ~protected:false)

let test_mimicry_blocked () =
  check_blocked "mimicry vs ASC" (Attacks.mimicry ~protected:true)

let test_ncd_unprotected () =
  check_succeeded "non-control-data vs unprotected" (Attacks.non_control_data ~protected:false)

let test_ncd_blocked () =
  check_blocked "non-control-data vs ASC" (Attacks.non_control_data ~protected:true)

let test_frankenstein_cross_blocked () =
  check_blocked "frankenstein cross-app" (Attacks.frankenstein ~cross:true)

let test_frankenstein_single_app_confined () =
  check_succeeded "frankenstein single-app chain" (Attacks.frankenstein ~cross:false)

let () =
  Alcotest.run "attacks"
    [ ( "attacks",
        [ Alcotest.test_case "shellcode succeeds unprotected" `Quick test_shellcode_unprotected;
          Alcotest.test_case "shellcode blocked by ASC" `Quick test_shellcode_blocked;
          Alcotest.test_case "mimicry succeeds unprotected" `Quick test_mimicry_unprotected;
          Alcotest.test_case "mimicry blocked by ASC" `Quick test_mimicry_blocked;
          Alcotest.test_case "non-control-data succeeds unprotected" `Quick test_ncd_unprotected;
          Alcotest.test_case "non-control-data blocked by ASC" `Quick test_ncd_blocked;
          Alcotest.test_case "frankenstein cross-app blocked" `Quick
            test_frankenstein_cross_blocked;
          Alcotest.test_case "frankenstein confined to one app" `Quick
            test_frankenstein_single_app_confined ] ) ]
