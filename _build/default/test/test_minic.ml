(* Tests for the MiniC compiler: language semantics via compiled programs
   running on the simulated kernel, libc behavior, per-OS libc quirks, and
   compatibility with the ASC installer. *)

open Oskernel

let run ?(stdin = "") ?(personality = Personality.linux) ?(setup = fun _ -> ()) src =
  let img = Minic.Driver.compile_exn ~personality src in
  let kernel = Kernel.create ~personality () in
  setup kernel;
  let proc = Kernel.spawn kernel ~stdin ~program:"minic" img in
  let stop = Kernel.run kernel proc ~max_cycles:200_000_000 in
  (kernel, proc, stop)

let exit_code what (_, _, stop) =
  match (stop : Svm.Machine.stop) with
  | Svm.Machine.Halted v -> v
  | Svm.Machine.Faulted (_, pc) -> Alcotest.failf "%s: faulted at 0x%x" what pc
  | Svm.Machine.Killed r -> Alcotest.failf "%s: killed (%s)" what r
  | Svm.Machine.Cycle_limit -> Alcotest.failf "%s: cycle limit" what

let stdout_of (_, proc, _) = Kernel.stdout_of proc

let check_exit what expected src = Alcotest.(check int) what expected (exit_code what (run src))

let test_arith_and_precedence () =
  check_exit "precedence" 14 "int main() { return 2 + 3 * 4; }";
  check_exit "parens" 20 "int main() { return (2 + 3) * 4; }";
  check_exit "div mod" 3 "int main() { return 17 / 5 + 17 % 5 - 2; }";
  check_exit "unary" 5 "int main() { return -(-5); }";
  check_exit "bitops" 9 "int main() { return (12 & 10) | (4 ^ 6) >> 1; }";
  check_exit "shift" 40 "int main() { return 5 << 3; }"

let test_comparisons_and_logic () =
  check_exit "lt" 1 "int main() { return 3 < 4; }";
  check_exit "ge" 0 "int main() { return 3 >= 4; }";
  check_exit "and short circuit" 7
    "int g = 7; int side() { g = 0; return 1; } int main() { int x; x = 0 && side(); return g; }";
  check_exit "or short circuit" 7
    "int g = 7; int side() { g = 0; return 1; } int main() { int x; x = 1 || side(); return g; }";
  check_exit "not" 1 "int main() { return !0; }"

let test_control_flow () =
  check_exit "if else" 10 "int main() { if (3 > 2) { return 10; } else { return 20; } }";
  check_exit "while sum" 55
    "int main() { int i = 1; int s = 0; while (i <= 10) { s = s + i; i = i + 1; } return s; }";
  check_exit "for loop" 45
    "int main() { int s = 0; int i; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }";
  check_exit "break" 5
    "int main() { int i; for (i = 0; i < 100; i = i + 1) { if (i == 5) { break; } } return i; }";
  check_exit "continue" 25
    "int main() { int s = 0; int i; for (i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { continue; } s = s + i; } return s; }"

let test_functions_and_recursion () =
  check_exit "fib" 55
    "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } int main() { return fib(10); }";
  check_exit "six args" 21
    "int add6(int a, int b, int c, int d, int e, int f) { return a+b+c+d+e+f; } int main() { return add6(1,2,3,4,5,6); }";
  check_exit "mutual" 1
    "int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); } int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); } int main() { return is_even(10); }"

let test_arrays_and_strings () =
  check_exit "int array" 30
    "int main() { int a[10]; int i; for (i = 0; i < 10; i = i + 1) { a[i] = i; } return a[4] + a[7] * a[2] + a[9] + a[3]; }";
  check_exit "char array" 98
    "int main() { char b[8]; b[0] = 'a'; b[1] = b[0] + 1; return b[1]; }";
  check_exit "global array" 42
    "int g[20]; int main() { g[19] = 42; return g[19]; }";
  check_exit "strlen" 5 {|int main() { return strlen("hello"); }|};
  check_exit "strcmp eq" 0 {|int main() { return strcmp("abc", "abc"); }|};
  check_exit "strcmp lt" 1 {|int main() { return strcmp("abd", "abc") > 0; }|};
  check_exit "strcpy" 3
    {|int main() { char b[16]; strcpy(b, "xyz"); return strlen(b); }|};
  check_exit "atoi" 1234 {|int main() { return atoi("1234"); }|};
  check_exit "atoi negative" (-56) {|int main() { return atoi("-56"); }|}

let test_globals () =
  check_exit "global init" 10 "int g = 10; int main() { return g; }";
  check_exit "global mutation" 11 "int g = 10; int main() { g = g + 1; return g; }";
  check_exit "global string ptr" 3 {|char *msg = "abc"; int main() { return strlen(msg); }|}

let test_pointer_arith () =
  check_exit "ptr offset" 99
    {|int main() { char b[8]; strcpy(b, "xcx"); char *p; p = b + 1; return p[0]; }|}

let test_io_and_kernel () =
  let r = run {|int main() { puts_str("hi there\n"); return 0; }|} in
  Alcotest.(check string) "stdout" "hi there\n" (stdout_of r);
  let r2 =
    run ~stdin:"alpha\nbeta\n"
      {|int main() { char b[64]; read_line(0, b); puts_str(b); return 0; }|}
  in
  Alcotest.(check string) "read_line" "alpha" (stdout_of r2);
  let r3 = run {|int main() { print_int(-3041); return 0; }|} in
  Alcotest.(check string) "print_int" "-3041" (stdout_of r3);
  let r4 = run {|int main() { print_int(0); return 0; }|} in
  Alcotest.(check string) "print_int zero" "0" (stdout_of r4)

let test_file_io () =
  let setup (k : Kernel.t) =
    match Vfs.create_file k.Kernel.vfs ~cwd:"/" "/etc/data" ~contents:"payload!" with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "setup"
  in
  let src =
    {|
int main() {
  char buf[32];
  int fd = open("/etc/data", 0, 0);
  if (fd < 0) { return 1; }
  int n = read(fd, buf, 32);
  close(fd);
  buf[n] = 0;
  int out = open("/tmp/copy", 65, 420);
  write(out, buf, n);
  close(out);
  return n;
}
|}
  in
  let kernel, _, stop = run ~setup src in
  Alcotest.(check int) "copied 8 bytes" 8
    (match stop with Svm.Machine.Halted v -> v | _ -> -1);
  match Vfs.read_file kernel.Kernel.vfs ~cwd:"/" "/tmp/copy" with
  | Ok s -> Alcotest.(check string) "file copied" "payload!" s
  | Error _ -> Alcotest.fail "copy missing"

let test_malloc () =
  check_exit "malloc" 15
    {|
int main() {
  int a = malloc(64);
  int b = malloc(64);
  if (a == b) { return 1; }
  if (b < a + 64) { return 2; }
  char *p = a;
  p[0] = 15;
  return p[0];
}
|}

let test_buffer_overflow_is_possible () =
  (* write past a small buffer: corrupts the frame; must not be prevented *)
  let src =
    {|
int main() {
  char b[8];
  int i;
  for (i = 0; i < 64; i = i + 1) { b[i] = 65; }
  return 0;
}
|}
  in
  let _, _, stop = run src in
  match stop with
  | Svm.Machine.Faulted _ | Svm.Machine.Halted _ -> () (* anything but a language-level block *)
  | Svm.Machine.Killed r -> Alcotest.failf "unexpected kill: %s" r
  | Svm.Machine.Cycle_limit -> Alcotest.fail "runaway"

let test_blocks_and_scoping () =
  check_exit "bare blocks" 6
    "int main() { int a = 1; { int b = 2; { int c = 3; a = a + b + c; } } return a; }";
  check_exit "block statement in if" 4
    "int main() { int x = 0; if (1) { { x = 4; } } return x; }"

let test_parse_errors () =
  let expect_error src =
    match Minic.Driver.compile ~personality:Personality.linux src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad program: %s" src
  in
  expect_error "int main() { return 1 }";
  expect_error "int main() { x = 1; return 0; }";
  expect_error "int main() { int a[3]; a = 1; return 0; }";
  expect_error "int main( { return 0; }";
  expect_error "int main() { return \"unterminated; }"

let test_openbsd_compile_and_run () =
  (* the BSD libc (issetugid/sysctl startup, __syscall mmap, jr-based close)
     must still execute correctly *)
  let src =
    {|
int main() {
  int fd = open("/etc/x", 65, 420);
  write(fd, "q", 1);
  close(fd);
  int m = mmap(0, 8192, 0, 0, 0, 0);
  if (m == 0) { return 2; }
  return 7;
}
|}
  in
  let r = run ~personality:Personality.openbsd src in
  Alcotest.(check int) "openbsd run" 7 (exit_code "openbsd" r)

let test_syscall_trace_differs_by_os () =
  let src = "int main() { return 0; }" in
  let trace personality =
    let img = Minic.Driver.compile_exn ~personality src in
    let kernel = Kernel.create ~personality () in
    kernel.Kernel.tracing <- true;
    let proc = Kernel.spawn kernel ~program:"t" img in
    ignore (Kernel.run kernel proc ~max_cycles:10_000_000);
    List.filter_map (fun t -> t.Kernel.t_sem) (Kernel.trace kernel)
  in
  let lin = trace Personality.linux and bsd = trace Personality.openbsd in
  Alcotest.(check bool) "linux startup uses uname" true (List.mem Syscall.Uname lin);
  Alcotest.(check bool) "bsd startup uses issetugid" true (List.mem Syscall.Issetugid bsd);
  Alcotest.(check bool) "traces differ" true (lin <> bsd)

let test_installs_and_enforces () =
  (* the full-stack test: compile MiniC, install, run under the checker *)
  let key = Asc_crypto.Cmac.of_raw (String.make 16 'k') in
  let src =
    {|
int main() {
  int fd = open("/tmp/out", 65, 420);
  write(fd, "data", 4);
  close(fd);
  return 5;
}
|}
  in
  let img = Minic.Driver.compile_exn ~personality:Personality.linux src in
  match
    Asc_core.Installer.install ~key ~personality:Personality.linux ~program:"minicprog" img
  with
  | Error e -> Alcotest.failf "install: %s" e
  | Ok inst ->
    let kernel = Kernel.create () in
    Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
    let proc = Kernel.spawn kernel ~program:"minicprog" inst.Asc_core.Installer.image in
    (match Kernel.run kernel proc ~max_cycles:100_000_000 with
     | Svm.Machine.Halted 5 -> ()
     | Svm.Machine.Killed r -> Alcotest.failf "killed: %s" r
     | _ -> Alcotest.fail "did not exit 5");
    (match Vfs.read_file kernel.Kernel.vfs ~cwd:"/" "/tmp/out" with
     | Ok s -> Alcotest.(check string) "file written under enforcement" "data" s
     | Error _ -> Alcotest.fail "file missing");
    (* the policy includes the open string *)
    let pol = inst.Asc_core.Installer.policy in
    Alcotest.(check bool) "policy names /tmp/out" true
      (List.exists
         (fun s ->
           Array.exists
             (fun a -> a = Asc_core.Policy.A_string "/tmp/out")
             s.Asc_core.Policy.s_args)
         pol.Asc_core.Policy.sites)

let prop_constant_folding_agrees =
  (* random arithmetic expressions evaluate like OCaml *)
  let open QCheck in
  let rec expr_gen depth =
    let open Gen in
    if depth = 0 then map (fun v -> (string_of_int v, v)) (int_range 0 100)
    else
      oneof
        [ map (fun v -> (string_of_int v, v)) (int_range 0 100);
          (let* l, lv = expr_gen (depth - 1) in
           let* r, rv = expr_gen (depth - 1) in
           let* op = oneofl [ "+"; "-"; "*" ] in
           let v =
             match op with "+" -> lv + rv | "-" -> lv - rv | _ -> lv * rv
           in
           return (Printf.sprintf "(%s %s %s)" l op r, v)) ]
  in
  Test.make ~name:"minic arithmetic agrees with ocaml" ~count:25
    (make ~print:fst (expr_gen 3))
    (fun (src, expected) ->
      let program = Printf.sprintf "int main() { return (%s) %% 256; }" src in
      let v = exit_code "arith" (run program) in
      v = ((expected mod 256) + 256) mod 256
      || v = expected mod 256 (* negative results pass through exit as-is *))

let suite =
  [ Alcotest.test_case "arithmetic + precedence" `Quick test_arith_and_precedence;
    Alcotest.test_case "comparisons + short circuit" `Quick test_comparisons_and_logic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions + recursion" `Quick test_functions_and_recursion;
    Alcotest.test_case "arrays + strings" `Quick test_arrays_and_strings;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "pointer arithmetic" `Quick test_pointer_arith;
    Alcotest.test_case "console io" `Quick test_io_and_kernel;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "malloc" `Quick test_malloc;
    Alcotest.test_case "buffer overflow possible" `Quick test_buffer_overflow_is_possible;
    Alcotest.test_case "bare blocks" `Quick test_blocks_and_scoping;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "openbsd libc runs" `Quick test_openbsd_compile_and_run;
    Alcotest.test_case "per-os startup syscalls" `Quick test_syscall_trace_differs_by_os;
    Alcotest.test_case "install + enforce a minic program" `Quick test_installs_and_enforces ]
  @ [ QCheck_alcotest.to_alcotest prop_constant_folding_agrees ]

let () = Alcotest.run "minic" [ ("minic", suite) ]
