(* Cross-cutting integration tests: authenticated execve chains (the
   per-process nonce and the fresh image's policy state must line up),
   broader syscall coverage through compiled programs, and checker
   robustness on malformed extension blocks. *)

open Oskernel
module Cmac = Asc_crypto.Cmac

let key = Cmac.of_raw "integration-key!"
let personality = Personality.linux

let install ~program_id ~program src =
  let img = Minic.Driver.compile_exn ~personality src in
  match
    Asc_core.Installer.install ~key ~personality
      ~options:{ Asc_core.Installer.default_options with program_id }
      ~program img
  with
  | Ok inst -> inst.Asc_core.Installer.image
  | Error e -> Alcotest.failf "install %s: %s" program e

(* --- authenticated execve chain --- *)

let test_execve_chain_under_enforcement () =
  (* A (id 1) writes, then execs B (id 2); B makes its own syscalls. The
     kernel-side nonce counter resets on exec, and B's image carries a fresh
     lastBlock sentinel, so B's control-flow chain verifies from scratch. *)
  let b_img =
    install ~program_id:2 ~program:"progB"
      {|
int main() {
  puts_str("B running\n");
  int fd = open("/tmp/b.out", 65, 420);
  write(fd, "B", 1);
  close(fd);
  return 9;
}
|}
  in
  let a_img =
    install ~program_id:1 ~program:"progA"
      {|
int main() {
  puts_str("A before exec\n");
  execve("/bin/progB", 0, 0);
  puts_str("unreachable\n");
  return 1;
}
|}
  in
  let kernel = Kernel.create ~personality () in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  Kernel.install_binary kernel ~path:"/bin/progB" b_img;
  let proc = Kernel.spawn kernel ~program:"progA" a_img in
  (match Kernel.run kernel proc ~max_cycles:100_000_000 with
   | Svm.Machine.Halted 9 -> ()
   | Svm.Machine.Killed r -> Alcotest.failf "killed: %s" r
   | _ -> Alcotest.fail "chain did not reach B's exit");
  Alcotest.(check string) "both programs' output" "A before exec\nB running\n"
    (Kernel.stdout_of proc);
  (match Vfs.read_file kernel.Kernel.vfs ~cwd:"/" "/tmp/b.out" with
   | Ok s -> Alcotest.(check string) "B's file" "B" s
   | Error _ -> Alcotest.fail "B's file missing");
  (* B makes 7 monitored calls after exec: startup brk + uname, the
     puts_str write, open, write, close, exit. Were the nonce NOT reset,
     B's first control-flow check would already have killed the process;
     the exact count pins the reset. *)
  Alcotest.(check int) "nonce reset on exec" 7 proc.Process.counter

let test_execve_unauthenticated_target_blocked () =
  (* exec'ing an ORIGINAL (uninstalled) binary under enforcement: the new
     image's first syscall is unauthenticated and the process dies *)
  let plain_b = Minic.Driver.compile_exn ~personality "int main() { getpid(); return 0; }" in
  let a_img =
    install ~program_id:1 ~program:"progA"
      {|int main() { execve("/bin/plain", 0, 0); return 1; }|}
  in
  let kernel = Kernel.create ~personality () in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  Kernel.install_binary kernel ~path:"/bin/plain" plain_b;
  let proc = Kernel.spawn kernel ~program:"progA" a_img in
  match Kernel.run kernel proc ~max_cycles:100_000_000 with
  | Svm.Machine.Killed "unauthenticated system call" -> ()
  | Svm.Machine.Killed r -> Alcotest.failf "unexpected: %s" r
  | _ -> Alcotest.fail "unauthenticated exec target not blocked"

(* --- broader syscall coverage through compiled programs --- *)

let run_minic ?(setup = fun _ -> ()) ?(stdin = "") src =
  let img = Minic.Driver.compile_exn ~personality src in
  let kernel = Kernel.create ~personality () in
  setup kernel;
  let proc = Kernel.spawn kernel ~stdin ~program:"it" img in
  let stop = Kernel.run kernel proc ~max_cycles:100_000_000 in
  (kernel, proc, stop)

let expect_exit what expected (_, _, stop) =
  match (stop : Svm.Machine.stop) with
  | Svm.Machine.Halted v -> Alcotest.(check int) what expected v
  | Svm.Machine.Killed r -> Alcotest.failf "%s killed: %s" what r
  | _ -> Alcotest.failf "%s abnormal" what

let test_lseek_and_dup () =
  expect_exit "lseek/dup" 0
    (run_minic
       {|
int main() {
  int fd = open("/tmp/seek", 65, 420);
  write(fd, "abcdef", 6);
  lseek(fd, 1, 0);
  int fd2 = dup(fd);
  char b[4];
  /* dup shares the file offset */
  read(fd2, b, 2);
  if (b[0] != 'b' || b[1] != 'c') { return 1; }
  lseek(fd, 0, 2);
  write(fd, "!", 1);
  close(fd2);
  close(fd);
  int r = open("/tmp/seek", 0, 0);
  char all[16];
  int n = read(r, all, 16);
  if (n != 7) { return 2; }
  if (all[6] != '!') { return 3; }
  close(r);
  return 0;
}
|})

let test_symlink_rename_readlink () =
  expect_exit "symlink/readlink/rename" 0
    (run_minic
       {|
char target[32];
int main() {
  int fd = open("/tmp/orig", 65, 420);
  write(fd, "x", 1);
  close(fd);
  if (symlink("/tmp/orig", "/tmp/ln") != 0) { return 1; }
  int n = readlink("/tmp/ln", target, 32);
  if (n != 9) { return 2; }
  /* open through the link */
  int via = open("/tmp/ln", 0, 0);
  if (via < 0) { return 3; }
  close(via);
  if (rename("/tmp/orig", "/tmp/moved") != 0) { return 4; }
  /* the link now dangles */
  if (open("/tmp/ln", 0, 0) >= 0) { return 5; }
  if (unlink("/tmp/ln") != 0) { return 6; }
  return 0;
}
|})

let test_chdir_getcwd () =
  expect_exit "chdir/getcwd" 0
    (run_minic
       {|
char cwd[64];
int main() {
  mkdir("/work", 493);
  if (chdir("/work") != 0) { return 1; }
  getcwd(cwd, 64);
  if (strcmp(cwd, "/work") != 0) { return 2; }
  /* relative paths resolve against the cwd */
  int fd = open("rel.txt", 65, 420);
  write(fd, "r", 1);
  close(fd);
  if (open("/work/rel.txt", 0, 0) < 0) { return 3; }
  return 0;
}
|})

let test_writev_and_fstat () =
  expect_exit "writev/fstat" 0
    (run_minic
       {|
int iov[4];
char part1[8];
char part2[8];
char st[16];
int main() {
  strcpy(part1, "hel");
  strcpy(part2, "lo");
  iov[0] = part1;
  iov[1] = 3;
  iov[2] = part2;
  iov[3] = 2;
  int fd = open("/tmp/v", 65, 420);
  if (writev(fd, iov, 2) != 5) { return 1; }
  if (fstat(fd, st) != 0) { return 2; }
  if (st[0] != 5) { return 3; }
  close(fd);
  return 0;
}
|})

let test_sendto_socket () =
  expect_exit "socket/sendto" 0
    (run_minic
       {|
int main() {
  int s = socket(1, 1, 0);
  if (s < 0) { return 1; }
  if (connect(s, "addr", 4) != 0) { return 2; }
  if (sendto(s, "ping", 4, 0, 0, 0) != 4) { return 3; }
  char b[8];
  if (recvfrom(s, b, 8, 0, 0, 0) != 0) { return 4; }
  close(s);
  return 0;
}
|})

(* --- checker robustness on malformed extension blocks --- *)

let checker_verdict ~patch_ext =
  (* build an installed program with a one_of extension, then corrupt the
     extension contents *after* install but keep its MAC consistent?  no —
     corrupt both content and observe the checker deny gracefully *)
  let src =
    {|
int main() {
  int fd;
  if (getpid() % 2) { fd = 1; } else { fd = 2; }
  write(fd, "x", 1);
  return 0;
}
|}
  in
  let img = Minic.Driver.compile_exn ~personality src in
  let inst =
    match
      Asc_core.Installer.install ~key ~personality
        ~options:{ Asc_core.Installer.default_options with use_extensions = true }
        ~program:"ext" img
    with
    | Ok i -> i
    | Error e -> Alcotest.failf "install: %s" e
  in
  let kernel = Kernel.create ~personality () in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  let proc = Kernel.spawn kernel ~program:"ext" inst.Asc_core.Installer.image in
  patch_ext proc.Process.machine inst.Asc_core.Installer.image;
  Kernel.run kernel proc ~max_cycles:100_000_000

let test_truncated_ext_block_denied () =
  (* shrink the recorded length in the extension AS header: the MAC over
     {addr,len,mac} in the encoded call changes -> call MAC mismatch; no
     crash *)
  let patch m img =
    let asc = Option.get (Svm.Obj_file.section_named img ".asc") in
    (* find an AS whose contents start with an ext entry (argidx<6, kind 1) *)
    let base = asc.Svm.Obj_file.sec_addr in
    let found = ref false in
    for off = 0 to asc.Svm.Obj_file.sec_size - 24 do
      if not !found then begin
        match Svm.Machine.read_mem m ~addr:(base + off) ~len:4 with
        | Some l4 ->
          let len =
            Char.code l4.[0] lor (Char.code l4.[1] lsl 8) lor (Char.code l4.[2] lsl 16)
          in
          (match Svm.Machine.read_mem m ~addr:(base + off + 20) ~len:2 with
           | Some e2
             when len > 2 && len < 64 && Char.code e2.[0] < 6 && Char.code e2.[1] = 1 ->
             ignore (Svm.Machine.write_byte m (base + off) 1);
             found := true
           | _ -> ())
        | None -> ()
      end
    done;
    Alcotest.(check bool) "ext AS located" true !found
  in
  match checker_verdict ~patch_ext:patch with
  | Svm.Machine.Killed _ -> ()
  | _ -> Alcotest.fail "corrupted extension header not denied"

let test_policy_pretty_printer () =
  let img =
    Minic.Driver.compile_exn ~personality
      {|int main() { int fd = open("/etc/x", 0, 0); close(fd); return 0; }|}
  in
  match Asc_core.Installer.generate_policy ~personality ~program:"pp" img with
  | Error e -> Alcotest.failf "policy: %s" e
  | Ok pol ->
    let text =
      String.concat "\n"
        (List.map (Format.asprintf "%a" Asc_core.Policy.pp_site) pol.Asc_core.Policy.sites)
    in
    let contains needle =
      let nh = String.length text and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "mentions open" true (contains "Permit open");
    Alcotest.(check bool) "mentions the path" true (contains "\"/etc/x\"");
    Alcotest.(check bool) "mentions predecessors" true (contains "Possible predecessors")

let () =
  Alcotest.run "integration"
    [ ( "integration",
        [ Alcotest.test_case "authenticated execve chain" `Quick
            test_execve_chain_under_enforcement;
          Alcotest.test_case "unauthenticated exec target blocked" `Quick
            test_execve_unauthenticated_target_blocked;
          Alcotest.test_case "lseek + dup share offsets" `Quick test_lseek_and_dup;
          Alcotest.test_case "symlink/readlink/rename" `Quick test_symlink_rename_readlink;
          Alcotest.test_case "chdir/getcwd + relative paths" `Quick test_chdir_getcwd;
          Alcotest.test_case "writev + fstat" `Quick test_writev_and_fstat;
          Alcotest.test_case "sockets" `Quick test_sendto_socket;
          Alcotest.test_case "corrupted extension denied" `Quick
            test_truncated_ext_block_denied;
          Alcotest.test_case "policy pretty printer" `Quick test_policy_pretty_printer ] ) ]
