(* Tests for the Systrace-style baseline: training, alias generalization,
   enforcement, and the ASC-vs-Systrace comparison methodology of Tables
   1-2. *)

open Oskernel

let bison = Option.get (Workloads.Registry.by_name ~scale:1 "bison")

let trained_policy ?(use_aliases = true) personality =
  let image = Workloads.Registry.compile ~personality bison in
  Systrace.train ~personality ~image
    ~runs:[ bison.Workloads.Registry.setup ]
    ~stdins:[ bison.Workloads.Registry.stdin ]
    ~use_aliases

let test_training_observes_normal_path () =
  let p = trained_policy Personality.linux in
  Alcotest.(check bool) "open observed" true (Syscall.Set.mem Syscall.Open p.Systrace.named);
  Alcotest.(check bool) "write observed" true (Syscall.Set.mem Syscall.Write p.Systrace.named);
  (* the error path (missing grammar -> kill) was never exercised *)
  Alcotest.(check bool) "kill NOT observed" false (Syscall.Set.mem Syscall.Kill p.Systrace.named)

let test_static_policy_superset_of_trained () =
  let personality = Personality.linux in
  let image = Workloads.Registry.compile ~personality bison in
  let trained = trained_policy ~use_aliases:false personality in
  match Asc_core.Installer.generate_policy ~personality ~program:"bison" image with
  | Error e -> Alcotest.failf "asc policy: %s" e
  | Ok asc ->
    let asc_sems = Syscall.Set.of_list (Asc_core.Policy.distinct_sems asc) in
    (* conservative static analysis covers everything training saw... *)
    Syscall.Set.iter
      (fun s ->
        Alcotest.(check bool)
          (Printf.sprintf "ASC includes observed %s" (Syscall.name s))
          true (Syscall.Set.mem s asc_sems))
      trained.Systrace.named;
    (* ...plus the rare paths training missed (no false alarms possible) *)
    let extra = Syscall.Set.diff asc_sems trained.Systrace.named in
    Alcotest.(check bool) "ASC finds calls training missed" true
      (Syscall.Set.mem Syscall.Kill extra)

let test_aliases_overpermit () =
  let p = trained_policy Personality.linux in
  let granted = Systrace.granted p in
  (* bison never calls rmdir, but fswrite grants it -- Table 2's rmdir row *)
  Alcotest.(check bool) "rmdir not observed" false (Syscall.Set.mem Syscall.Rmdir p.Systrace.named);
  Alcotest.(check bool) "rmdir granted via fswrite" true (Syscall.Set.mem Syscall.Rmdir granted);
  Alcotest.(check bool) "readlink granted via fsread" true
    (Syscall.Set.mem Syscall.Readlink granted)

let test_rule_count_smaller_than_asc () =
  (* Table 1's shape: the published (trained) policy lists fewer calls than
     the conservative static policy *)
  let personality = Personality.openbsd in
  let image = Workloads.Registry.compile ~personality bison in
  let trained = trained_policy personality in
  match Asc_core.Installer.generate_policy ~personality ~program:"bison" image with
  | Error e -> Alcotest.failf "asc policy: %s" e
  | Ok asc ->
    let asc_count = List.length (Asc_core.Policy.distinct_calls asc) in
    let sys_count = Systrace.named_rule_count trained in
    Alcotest.(check bool)
      (Printf.sprintf "systrace rules (%d) < ASC calls (%d)" sys_count asc_count)
      true (sys_count < asc_count)

let test_enforcement_allows_trained_run () =
  let personality = Personality.linux in
  let image = Workloads.Registry.compile ~personality bison in
  let policy = trained_policy personality in
  let kernel = Kernel.create ~personality () in
  bison.Workloads.Registry.setup kernel;
  Kernel.set_monitor kernel (Some (Systrace.monitor ~personality policy));
  let proc = Kernel.spawn kernel ~stdin:"" ~program:"bison" image in
  match Kernel.run kernel proc ~max_cycles:500_000_000 with
  | Svm.Machine.Halted 0 -> ()
  | s ->
    Alcotest.failf "trained run blocked: %s"
      (match s with Svm.Machine.Killed r -> r | _ -> "abnormal exit")

let test_enforcement_false_alarm_on_rare_path () =
  (* run bison WITHOUT its grammar file: the legitimate error path trips the
     trained policy -- the false-alarm problem the paper attributes to
     training *)
  let personality = Personality.linux in
  let image = Workloads.Registry.compile ~personality bison in
  let policy = trained_policy ~use_aliases:false personality in
  let kernel = Kernel.create ~personality () in
  (* no setup: /src/grammar.y missing *)
  Kernel.set_monitor kernel (Some (Systrace.monitor ~personality policy));
  let proc = Kernel.spawn kernel ~stdin:"" ~program:"bison" image in
  match Kernel.run kernel proc ~max_cycles:500_000_000 with
  | Svm.Machine.Killed reason ->
    Alcotest.(check bool) ("false alarm: " ^ reason) true (String.length reason > 0)
  | _ -> Alcotest.fail "expected a false alarm on the unexercised error path"

let test_user_space_cost_higher_per_call () =
  (* the daemon pays two context switches per call; a syscall-dense run under
     systrace must burn more cycles than unmonitored *)
  let personality = Personality.linux in
  let image = Workloads.Registry.compile ~personality bison in
  let run monitor =
    let kernel = Kernel.create ~personality () in
    bison.Workloads.Registry.setup kernel;
    Kernel.set_monitor kernel monitor;
    let proc = Kernel.spawn kernel ~stdin:"" ~program:"bison" image in
    (match Kernel.run kernel proc ~max_cycles:500_000_000 with
     | Svm.Machine.Halted 0 -> ()
     | _ -> Alcotest.fail "run failed");
    proc.Process.machine.Svm.Machine.cycles
  in
  let baseline = run None in
  let policy = trained_policy personality in
  let monitored = run (Some (Systrace.monitor ~personality policy)) in
  Alcotest.(check bool) "systrace adds cost" true (monitored > baseline)

let () =
  Alcotest.run "systrace"
    [ ( "systrace",
        [ Alcotest.test_case "training observes normal path" `Quick
            test_training_observes_normal_path;
          Alcotest.test_case "static superset of trained" `Quick
            test_static_policy_superset_of_trained;
          Alcotest.test_case "aliases over-permit" `Quick test_aliases_overpermit;
          Alcotest.test_case "rule count below ASC" `Quick test_rule_count_smaller_than_asc;
          Alcotest.test_case "trained run allowed" `Quick test_enforcement_allows_trained_run;
          Alcotest.test_case "false alarm on rare path" `Quick
            test_enforcement_false_alarm_on_rare_path;
          Alcotest.test_case "user-space monitor costs more" `Quick
            test_user_space_cost_higher_per_call ] ) ]
