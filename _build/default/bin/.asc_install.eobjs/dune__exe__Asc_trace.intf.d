bin/asc_trace.mli:
