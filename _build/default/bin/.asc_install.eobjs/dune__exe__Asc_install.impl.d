bin/asc_install.ml: Arg Asc_core Cmd Cmdliner Common Filename Format List Minic Oskernel Result Svm Term
