bin/asc_run.ml: Arg Asc_core Cmd Cmdliner Common Filename Format Kernel List Oskernel Printf Process Result String Svm Term Vfs Workloads
