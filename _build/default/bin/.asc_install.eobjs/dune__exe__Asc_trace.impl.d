bin/asc_trace.ml: Arg Array Cmd Cmdliner Common Filename Format Hashtbl Kernel List Oskernel Printf Result String Svm Syscall Term Workloads
