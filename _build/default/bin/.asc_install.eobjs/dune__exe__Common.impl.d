bin/common.ml: Asc_crypto Filename Minic Oskernel Personality Printf String Svm Workloads
