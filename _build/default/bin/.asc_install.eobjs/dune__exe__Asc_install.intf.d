bin/asc_install.mli:
