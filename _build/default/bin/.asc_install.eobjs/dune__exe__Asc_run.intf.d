bin/asc_run.mli:
