(* Shared helpers for the command-line tools. *)

open Oskernel

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let personality_of_string = function
  | "linux" -> Ok Personality.linux
  | "openbsd" -> Ok Personality.openbsd
  | s -> Error (Printf.sprintf "unknown OS personality %S (expected linux or openbsd)" s)

(* Load an input program: a SEF binary, or MiniC source (.mc/.c), or a named
   built-in workload (workload:NAME). *)
let load_program ~personality path =
  if String.length path > 9 && String.sub path 0 9 = "workload:" then begin
    let name = String.sub path 9 (String.length path - 9) in
    match Workloads.Registry.by_name ~scale:1 name with
    | Some w -> Ok (Workloads.Registry.compile ~personality w, Some w)
    | None -> Error (Printf.sprintf "unknown workload %S" name)
  end
  else begin
    let contents = try Ok (read_file path) with Sys_error e -> Error e in
    match contents with
    | Error e -> Error e
    | Ok contents ->
      if Filename.check_suffix path ".mc" || Filename.check_suffix path ".c" then
        match Minic.Driver.compile ~personality contents with
        | Ok img -> Ok (img, None)
        | Error e -> Error e
      else
        (match Svm.Obj_file.parse contents with
         | Ok img -> Ok (img, None)
         | Error e -> Error (Printf.sprintf "not a SEF binary (%s)" e))
  end

let key_of_hex hex =
  match Asc_crypto.Hex.decode hex with
  | raw when String.length raw = 16 -> Ok (Asc_crypto.Cmac.of_raw raw)
  | _ -> Error "key must be 32 hex digits (128 bits)"
  | exception Invalid_argument e -> Error e
