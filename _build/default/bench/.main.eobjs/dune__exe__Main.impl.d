bench/main.ml: Analyze Array Bechamel Benchmark Format Hashtbl List Measure Microbench Staged Sys Tables Test Time Toolkit Unix
