bench/microbench.ml: Array Asc_core Asc_crypto Format Kernel Lazy List Option Oskernel Personality Printf Process String Svm Syscall Systrace
