bench/main.mli:
