bench/tables.ml: Asc_core Asc_crypto Attacks Format Kernel List Option Oskernel Personality Plto Printf Process String Svm Syscall Systrace Workloads
