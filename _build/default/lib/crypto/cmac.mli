(** CMAC (OMAC1) over AES-128, per RFC 4493 / Iwata-Kurosawa "OMAC: One-Key
    CBC MAC" — the MAC construction the paper's prototype uses
    ("AES-CBC-OMAC", producing a 128-bit code). *)

type key
(** A CMAC key: the expanded AES key plus the two derived subkeys. *)

val of_raw : string -> key
(** [of_raw raw] derives a CMAC key from a 16-byte raw AES key.
    @raise Invalid_argument if [raw] is not 16 bytes. *)

val mac : key -> string -> string
(** [mac k msg] returns the 16-byte CMAC tag of [msg] (any length,
    including empty). *)

val mac_bytes : key -> bytes -> pos:int -> len:int -> string
(** [mac_bytes k b ~pos ~len] MACs the slice [b.[pos .. pos+len-1]]. *)

val equal_tags : string -> string -> bool
(** Constant-time comparison of two 16-byte tags. Returns [false] when
    lengths differ. *)

val tag_len : int
(** Length of a tag in bytes (16). *)
