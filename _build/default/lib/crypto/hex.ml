let encode s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: non-hex character"

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  String.init (n / 2) (fun i -> Char.chr ((nibble h.[2 * i] lsl 4) lor nibble h.[(2 * i) + 1]))
