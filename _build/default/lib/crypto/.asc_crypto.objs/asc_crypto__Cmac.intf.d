lib/crypto/cmac.mli:
