lib/crypto/aes.mli:
