lib/crypto/hex.mli:
