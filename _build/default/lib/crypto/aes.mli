(** AES-128 block cipher (FIPS-197), pure OCaml.

    This replaces the Gladman AES library used by the paper's prototype for
    its AES-CBC-OMAC message authentication codes. Only encryption is needed
    (CMAC never decrypts). *)

type key
(** An expanded AES-128 key schedule. *)

val expand : string -> key
(** [expand raw] expands a 16-byte raw key. @raise Invalid_argument if
    [raw] is not exactly 16 bytes. *)

val encrypt_block : key -> bytes -> pos:int -> bytes -> dst_pos:int -> unit
(** [encrypt_block k src ~pos dst ~dst_pos] encrypts the 16-byte block of
    [src] at [pos] into [dst] at [dst_pos]. [src] and [dst] may alias. *)

val encrypt : key -> string -> string
(** [encrypt k block] encrypts a single 16-byte block given as a string.
    Convenience wrapper for tests. *)
