type key = { aes : Aes.key; k1 : bytes; k2 : bytes }

let tag_len = 16

(* Left shift of a 16-byte block by one bit; XORs in the GF(2^128) reduction
   constant 0x87 when the input block's MSB was set, per RFC 4493. *)
let double block =
  let msb_set = Char.code (Bytes.get block 0) land 0x80 <> 0 in
  let out = Bytes.create 16 in
  let carry = ref 0 in
  for i = 15 downto 0 do
    let b = Char.code (Bytes.get block i) in
    Bytes.set out i (Char.chr (((b lsl 1) lor !carry) land 0xff));
    carry := b lsr 7
  done;
  if msb_set then Bytes.set out 15 (Char.chr (Char.code (Bytes.get out 15) lxor 0x87));
  out

let of_raw raw =
  let aes = Aes.expand raw in
  let zero = Bytes.make 16 '\000' in
  let l = Bytes.create 16 in
  Aes.encrypt_block aes zero ~pos:0 l ~dst_pos:0;
  let k1 = double l in
  let k2 = double k1 in
  { aes; k1; k2 }

let xor_into dst src =
  for i = 0 to 15 do
    Bytes.set dst i (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let mac_bytes key msg ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length msg then
    invalid_arg "Cmac.mac_bytes: slice out of bounds";
  let n_full = len / 16 and rem = len mod 16 in
  (* Number of blocks processed before the (padded or complete) last block. *)
  let head_blocks = if len = 0 then 0 else if rem = 0 then n_full - 1 else n_full in
  let x = Bytes.make 16 '\000' in
  let block = Bytes.create 16 in
  for i = 0 to head_blocks - 1 do
    Bytes.blit msg (pos + (16 * i)) block 0 16;
    xor_into x block;
    Aes.encrypt_block key.aes x ~pos:0 x ~dst_pos:0
  done;
  let last = Bytes.make 16 '\000' in
  let complete = len > 0 && rem = 0 in
  if complete then begin
    Bytes.blit msg (pos + (16 * head_blocks)) last 0 16;
    xor_into last key.k1
  end
  else begin
    let tail = len - (16 * head_blocks) in
    Bytes.blit msg (pos + (16 * head_blocks)) last 0 tail;
    Bytes.set last tail '\x80';
    xor_into last key.k2
  end;
  xor_into x last;
  Aes.encrypt_block key.aes x ~pos:0 x ~dst_pos:0;
  Bytes.to_string x

let mac key msg = mac_bytes key (Bytes.unsafe_of_string msg) ~pos:0 ~len:(String.length msg)

let equal_tags a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end
