(** Hexadecimal encoding helpers used by tests, the installer's debug dumps
    and the audit log. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of [s]. *)

val decode : string -> string
(** [decode h] parses a hex string (case-insensitive, no separators).
    @raise Invalid_argument on odd length or non-hex characters. *)
