lib/svm/obj_file.ml: Buffer Char Format List Printf String
