lib/svm/machine.mli: Bytes
