lib/svm/loader.mli: Machine Obj_file
