lib/svm/obj_file.mli: Format
