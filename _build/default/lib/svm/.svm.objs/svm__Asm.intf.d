lib/svm/asm.mli: Format Obj_file
