lib/svm/isa.mli: Format
