lib/svm/asm.ml: Buffer Bytes Char Format Hashtbl Int64 Isa List Obj_file String
