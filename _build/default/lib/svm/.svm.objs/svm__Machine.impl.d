lib/svm/machine.ml: Array Bytes Char Cost_model Int64 Isa String
