lib/svm/isa.ml: Bytes Char Format Int32
