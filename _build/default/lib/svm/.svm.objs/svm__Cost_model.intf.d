lib/svm/cost_model.mli: Isa
