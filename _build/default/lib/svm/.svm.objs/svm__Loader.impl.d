lib/svm/loader.ml: Array Asm Isa List Machine Obj_file Printf
