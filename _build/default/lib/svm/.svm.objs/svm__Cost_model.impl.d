lib/svm/cost_model.ml: Isa
