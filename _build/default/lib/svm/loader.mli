(** Program loader: places a SEF image into a fresh machine.

    Layout matches {!Asm}: sections at their linked addresses, stack at the
    top of memory growing down, heap (managed by the kernel's [brk]) starting
    at the first page boundary past the highest section. *)

val load : ?mem_size:int -> Obj_file.t -> Machine.t
(** Machine with the image loaded, [pc] at the entry point and [sp] at the
    stack top. @raise Invalid_argument if a section falls outside memory. *)

val initial_brk : Obj_file.t -> int
(** First heap address: the page boundary after the highest section end. *)
