(** SEF — the SVM executable format.

    SEF stands in for ELF. A SEF image is a set of sections placed at fixed
    virtual addresses, a symbol table, an entry point, and — crucially for
    this reproduction — a relocation table marking every 32-bit field (in
    code immediates or in data) that holds an absolute virtual address. The
    paper's installer "requires relocatable binaries (binaries in which the
    locations of addresses are marked), so that addresses can be adjusted as
    code transformations move data and code locations"; the relocation table
    provides exactly that. *)

type section_kind = Text | Rodata | Data | Bss

type section = {
  sec_name : string;
  sec_kind : section_kind;
  sec_addr : int;           (** virtual base address *)
  sec_size : int;           (** size in bytes *)
  sec_payload : string;     (** [sec_size] bytes; empty for [Bss] *)
}

type symbol = { sym_name : string; sym_addr : int }

type reloc = { rel_at : int }
(** Virtual address of a 32-bit little-endian field whose value is an
    absolute virtual address. *)

type t = {
  entry : int;
  sections : section list;
  symbols : symbol list;
  relocs : reloc list;
}

val serialize : t -> string
(** Flat binary encoding (magic ["SEF1"]). *)

val parse : string -> (t, string) result
(** Inverse of {!serialize}. Returns [Error] with a diagnostic on a
    malformed image. *)

val find_symbol : t -> string -> int option
(** Address of a symbol by name. *)

val section_named : t -> string -> section option

val section_containing : t -> int -> section option
(** The section whose address range contains the given virtual address. *)

val text_section : t -> section
(** The [Text] section. @raise Not_found if the image has none. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line-per-section human-readable summary. *)
