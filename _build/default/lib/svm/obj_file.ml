type section_kind = Text | Rodata | Data | Bss

type section = {
  sec_name : string;
  sec_kind : section_kind;
  sec_addr : int;
  sec_size : int;
  sec_payload : string;
}

type symbol = { sym_name : string; sym_addr : int }
type reloc = { rel_at : int }

type t = {
  entry : int;
  sections : section list;
  symbols : symbol list;
  relocs : reloc list;
}

let magic = "SEF1"

let kind_code = function Text -> 0 | Rodata -> 1 | Data -> 2 | Bss -> 3

let kind_of_code = function
  | 0 -> Ok Text | 1 -> Ok Rodata | 2 -> Ok Data | 3 -> Ok Bss
  | n -> Error (Printf.sprintf "bad section kind %d" n)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let serialize t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_u32 buf t.entry;
  put_u32 buf (List.length t.sections);
  List.iter
    (fun s ->
      put_str buf s.sec_name;
      Buffer.add_char buf (Char.chr (kind_code s.sec_kind));
      put_u32 buf s.sec_addr;
      put_u32 buf s.sec_size;
      if s.sec_kind <> Bss then Buffer.add_string buf s.sec_payload)
    t.sections;
  put_u32 buf (List.length t.symbols);
  List.iter
    (fun s ->
      put_str buf s.sym_name;
      put_u32 buf s.sym_addr)
    t.symbols;
  put_u32 buf (List.length t.relocs);
  List.iter (fun r -> put_u32 buf r.rel_at) t.relocs;
  Buffer.contents buf

exception Malformed of string

let parse s =
  let pos = ref 0 in
  let need n what =
    if !pos + n > String.length s then raise (Malformed ("truncated at " ^ what))
  in
  let u32 what =
    need 4 what;
    let v =
      Char.code s.[!pos]
      lor (Char.code s.[!pos + 1] lsl 8)
      lor (Char.code s.[!pos + 2] lsl 16)
      lor (Char.code s.[!pos + 3] lsl 24)
    in
    pos := !pos + 4;
    v
  in
  let str what =
    let n = u32 what in
    need n what;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  let byte what =
    need 1 what;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  try
    need 4 "magic";
    if String.sub s 0 4 <> magic then Error "bad magic"
    else begin
      pos := 4;
      let entry = u32 "entry" in
      let nsec = u32 "section count" in
      let sections =
        List.init nsec (fun _ ->
            let sec_name = str "section name" in
            let kind =
              match kind_of_code (byte "section kind") with
              | Ok k -> k
              | Error e -> raise (Malformed e)
            in
            let sec_addr = u32 "section addr" in
            let sec_size = u32 "section size" in
            let sec_payload =
              if kind = Bss then ""
              else begin
                need sec_size "section payload";
                let p = String.sub s !pos sec_size in
                pos := !pos + sec_size;
                p
              end
            in
            { sec_name; sec_kind = kind; sec_addr; sec_size; sec_payload })
      in
      let nsym = u32 "symbol count" in
      let symbols =
        List.init nsym (fun _ ->
            let sym_name = str "symbol name" in
            let sym_addr = u32 "symbol addr" in
            { sym_name; sym_addr })
      in
      let nrel = u32 "reloc count" in
      let relocs = List.init nrel (fun _ -> { rel_at = u32 "reloc" }) in
      Ok { entry; sections; symbols; relocs }
    end
  with Malformed m -> Error m

let find_symbol t name =
  List.find_map (fun s -> if s.sym_name = name then Some s.sym_addr else None) t.symbols

let section_named t name = List.find_opt (fun s -> s.sec_name = name) t.sections

let section_containing t addr =
  List.find_opt (fun s -> addr >= s.sec_addr && addr < s.sec_addr + s.sec_size) t.sections

let text_section t = List.find (fun s -> s.sec_kind = Text) t.sections

let pp_summary ppf t =
  Format.fprintf ppf "entry=0x%x@\n" t.entry;
  List.iter
    (fun s ->
      let kind =
        match s.sec_kind with Text -> "text" | Rodata -> "rodata" | Data -> "data" | Bss -> "bss"
      in
      Format.fprintf ppf "%-10s %-6s addr=0x%06x size=%d@\n" s.sec_name kind s.sec_addr
        s.sec_size)
    t.sections;
  Format.fprintf ppf "%d symbols, %d relocs" (List.length t.symbols) (List.length t.relocs)
