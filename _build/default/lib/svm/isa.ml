type reg = int

let num_regs = 16
let sp = 13
let fp = 12

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor | Shl | Shr
  | Slt | Sle | Seq | Sne

type cond = Eq | Ne | Lt | Ge | Le | Gt

type instr =
  | Halt
  | Nop
  | Movi of reg * int
  | Mov of reg * reg
  | Ld of reg * reg * int
  | St of reg * int * reg
  | Ldb of reg * reg * int
  | Stb of reg * int * reg
  | Binop of binop * reg * reg * reg
  | Addi of reg * reg * int
  | Br of cond * reg * reg * int
  | Jmp of int
  | Jr of reg
  | Call of int
  | Callr of reg
  | Ret
  | Push of reg
  | Pop of reg
  | Sys
  | Rdcyc of reg

let instr_size = 8

(* Opcode assignments. Binops occupy 0x10..0x1d, branches 0x20..0x25. *)
let op_halt = 0x00
let op_nop = 0x01
let op_movi = 0x02
let op_mov = 0x03
let op_ld = 0x04
let op_st = 0x05
let op_ldb = 0x06
let op_stb = 0x07
let op_addi = 0x08
let op_jmp = 0x30
let op_jr = 0x31
let op_call = 0x32
let op_callr = 0x33
let op_ret = 0x34
let op_push = 0x35
let op_pop = 0x36
let op_sys = 0x37
let op_rdcyc = 0x38

let binop_code = function
  | Add -> 0x10 | Sub -> 0x11 | Mul -> 0x12 | Div -> 0x13 | Mod -> 0x14
  | And -> 0x15 | Or -> 0x16 | Xor -> 0x17 | Shl -> 0x18 | Shr -> 0x19
  | Slt -> 0x1a | Sle -> 0x1b | Seq -> 0x1c | Sne -> 0x1d

let binop_of_code = function
  | 0x10 -> Some Add | 0x11 -> Some Sub | 0x12 -> Some Mul | 0x13 -> Some Div
  | 0x14 -> Some Mod | 0x15 -> Some And | 0x16 -> Some Or | 0x17 -> Some Xor
  | 0x18 -> Some Shl | 0x19 -> Some Shr | 0x1a -> Some Slt | 0x1b -> Some Sle
  | 0x1c -> Some Seq | 0x1d -> Some Sne | _ -> None

let cond_code = function Eq -> 0x20 | Ne -> 0x21 | Lt -> 0x22 | Ge -> 0x23 | Le -> 0x24 | Gt -> 0x25

let cond_of_code = function
  | 0x20 -> Some Eq | 0x21 -> Some Ne | 0x22 -> Some Lt | 0x23 -> Some Ge
  | 0x24 -> Some Le | 0x25 -> Some Gt | _ -> None

let check_reg r = if r < 0 || r >= num_regs then invalid_arg "Isa.encode: bad register"

let check_imm v =
  if v < -0x8000_0000 || v > 0xffff_ffff then invalid_arg "Isa.encode: immediate out of range"

(* Layout: [opcode][ (rd<<4)|rs ][rt][0][imm32 LE]. Immediates are stored as
   their low 32 bits and decoded with sign extension, except that addresses
   in [0, 2^31) round-trip unchanged either way. *)
let put b ~pos ~opcode ~rd ~rs ~rt ~imm =
  check_reg rd; check_reg rs; check_reg rt; check_imm imm;
  Bytes.set b pos (Char.chr opcode);
  Bytes.set b (pos + 1) (Char.chr ((rd lsl 4) lor rs));
  Bytes.set b (pos + 2) (Char.chr rt);
  Bytes.set b (pos + 3) '\000';
  Bytes.set_int32_le b (pos + 4) (Int32.of_int imm)

let encode i b ~pos =
  match i with
  | Halt -> put b ~pos ~opcode:op_halt ~rd:0 ~rs:0 ~rt:0 ~imm:0
  | Nop -> put b ~pos ~opcode:op_nop ~rd:0 ~rs:0 ~rt:0 ~imm:0
  | Movi (rd, v) -> put b ~pos ~opcode:op_movi ~rd ~rs:0 ~rt:0 ~imm:v
  | Mov (rd, rs) -> put b ~pos ~opcode:op_mov ~rd ~rs ~rt:0 ~imm:0
  | Ld (rd, rs, off) -> put b ~pos ~opcode:op_ld ~rd ~rs ~rt:0 ~imm:off
  | St (rd, off, rs) -> put b ~pos ~opcode:op_st ~rd ~rs ~rt:0 ~imm:off
  | Ldb (rd, rs, off) -> put b ~pos ~opcode:op_ldb ~rd ~rs ~rt:0 ~imm:off
  | Stb (rd, off, rs) -> put b ~pos ~opcode:op_stb ~rd ~rs ~rt:0 ~imm:off
  | Binop (op, rd, rs, rt) -> put b ~pos ~opcode:(binop_code op) ~rd ~rs ~rt ~imm:0
  | Addi (rd, rs, v) -> put b ~pos ~opcode:op_addi ~rd ~rs ~rt:0 ~imm:v
  | Br (c, rs, rt, target) -> put b ~pos ~opcode:(cond_code c) ~rd:0 ~rs ~rt ~imm:target
  | Jmp target -> put b ~pos ~opcode:op_jmp ~rd:0 ~rs:0 ~rt:0 ~imm:target
  | Jr rs -> put b ~pos ~opcode:op_jr ~rd:0 ~rs ~rt:0 ~imm:0
  | Call target -> put b ~pos ~opcode:op_call ~rd:0 ~rs:0 ~rt:0 ~imm:target
  | Callr rs -> put b ~pos ~opcode:op_callr ~rd:0 ~rs ~rt:0 ~imm:0
  | Ret -> put b ~pos ~opcode:op_ret ~rd:0 ~rs:0 ~rt:0 ~imm:0
  | Push rs -> put b ~pos ~opcode:op_push ~rd:0 ~rs ~rt:0 ~imm:0
  | Pop rd -> put b ~pos ~opcode:op_pop ~rd ~rs:0 ~rt:0 ~imm:0
  | Sys -> put b ~pos ~opcode:op_sys ~rd:0 ~rs:0 ~rt:0 ~imm:0
  | Rdcyc rd -> put b ~pos ~opcode:op_rdcyc ~rd ~rs:0 ~rt:0 ~imm:0

let decode b ~pos =
  if pos + instr_size > Bytes.length b then None
  else begin
    let opcode = Char.code (Bytes.get b pos) in
    let regs = Char.code (Bytes.get b (pos + 1)) in
    let rd = regs lsr 4 and rs = regs land 0xf in
    let rt = Char.code (Bytes.get b (pos + 2)) in
    let imm = Int32.to_int (Bytes.get_int32_le b (pos + 4)) in
    (* The rt byte names a register only for binops and branches; validate it
       there so garbage bytes decode to None instead of a bad register. *)
    let rt_valid = rt < num_regs in
    if opcode = op_halt then Some Halt
    else if opcode = op_nop then Some Nop
    else if opcode = op_movi then Some (Movi (rd, imm))
    else if opcode = op_mov then Some (Mov (rd, rs))
    else if opcode = op_ld then Some (Ld (rd, rs, imm))
    else if opcode = op_st then Some (St (rd, imm, rs))
    else if opcode = op_ldb then Some (Ldb (rd, rs, imm))
    else if opcode = op_stb then Some (Stb (rd, imm, rs))
    else if opcode = op_addi then Some (Addi (rd, rs, imm))
    else
      match binop_of_code opcode with
      | Some op -> if rt_valid then Some (Binop (op, rd, rs, rt)) else None
      | None ->
        match cond_of_code opcode with
        | Some c -> if rt_valid then Some (Br (c, rs, rt, imm land 0xffff_ffff)) else None
        | None ->
          if opcode = op_jmp then Some (Jmp (imm land 0xffff_ffff))
          else if opcode = op_jr then Some (Jr rs)
          else if opcode = op_call then Some (Call (imm land 0xffff_ffff))
          else if opcode = op_callr then Some (Callr rs)
          else if opcode = op_ret then Some Ret
          else if opcode = op_push then Some (Push rs)
          else if opcode = op_pop then Some (Pop rd)
          else if opcode = op_sys then Some Sys
          else if opcode = op_rdcyc then Some (Rdcyc rd)
          else None
  end

let imm_is_code_target = function
  | Br _ | Jmp _ | Call _ -> true
  | Halt | Nop | Movi _ | Mov _ | Ld _ | St _ | Ldb _ | Stb _ | Binop _ | Addi _
  | Jr _ | Callr _ | Ret | Push _ | Pop _ | Sys | Rdcyc _ -> false

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Slt -> "slt" | Sle -> "sle" | Seq -> "seq" | Sne -> "sne"

let cond_name = function
  | Eq -> "beq" | Ne -> "bne" | Lt -> "blt" | Ge -> "bge" | Le -> "ble" | Gt -> "bgt"

let pp ppf i =
  let r n = Format.sprintf "r%d" n in
  match i with
  | Halt -> Format.fprintf ppf "halt"
  | Nop -> Format.fprintf ppf "nop"
  | Movi (rd, v) -> Format.fprintf ppf "movi %s, %d" (r rd) v
  | Mov (rd, rs) -> Format.fprintf ppf "mov %s, %s" (r rd) (r rs)
  | Ld (rd, rs, off) -> Format.fprintf ppf "ld %s, [%s%+d]" (r rd) (r rs) off
  | St (rd, off, rs) -> Format.fprintf ppf "st [%s%+d], %s" (r rd) off (r rs)
  | Ldb (rd, rs, off) -> Format.fprintf ppf "ldb %s, [%s%+d]" (r rd) (r rs) off
  | Stb (rd, off, rs) -> Format.fprintf ppf "stb [%s%+d], %s" (r rd) off (r rs)
  | Binop (op, rd, rs, rt) ->
    Format.fprintf ppf "%s %s, %s, %s" (binop_name op) (r rd) (r rs) (r rt)
  | Addi (rd, rs, v) -> Format.fprintf ppf "addi %s, %s, %d" (r rd) (r rs) v
  | Br (c, rs, rt, t) -> Format.fprintf ppf "%s %s, %s, 0x%x" (cond_name c) (r rs) (r rt) t
  | Jmp t -> Format.fprintf ppf "jmp 0x%x" t
  | Jr rs -> Format.fprintf ppf "jr %s" (r rs)
  | Call t -> Format.fprintf ppf "call 0x%x" t
  | Callr rs -> Format.fprintf ppf "callr %s" (r rs)
  | Ret -> Format.fprintf ppf "ret"
  | Push rs -> Format.fprintf ppf "push %s" (r rs)
  | Pop rd -> Format.fprintf ppf "pop %s" (r rd)
  | Sys -> Format.fprintf ppf "sys"
  | Rdcyc rd -> Format.fprintf ppf "rdcyc %s" (r rd)
