let initial_brk (img : Obj_file.t) =
  let top =
    List.fold_left
      (fun acc s -> max acc (s.Obj_file.sec_addr + s.Obj_file.sec_size))
      Asm.text_base img.Obj_file.sections
  in
  (top + Asm.page_size - 1) / Asm.page_size * Asm.page_size

let load ?(mem_size = Machine.default_mem_size) (img : Obj_file.t) =
  let m = Machine.create ~mem_size in
  List.iter
    (fun (s : Obj_file.section) ->
      if s.sec_addr < 0 || s.sec_addr + s.sec_size > mem_size then
        invalid_arg
          (Printf.sprintf "Loader.load: section %s [0x%x, +%d] outside memory" s.sec_name
             s.sec_addr s.sec_size);
      match s.sec_kind with
      | Obj_file.Bss -> () (* memory is already zeroed *)
      | Obj_file.Text | Obj_file.Rodata | Obj_file.Data ->
        if not (Machine.write_mem m ~addr:s.sec_addr s.sec_payload) then
          invalid_arg "Loader.load: section write failed")
    img.sections;
  m.pc <- img.entry;
  m.regs.(Isa.sp) <- Machine.stack_top m;
  m
