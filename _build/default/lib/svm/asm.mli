(** Two-pass assembler for SVM assembly, producing relocatable SEF images.

    Accepted syntax (one statement per line; [;] or [#] start a comment):
    - sections: [.text] [.rodata] [.data] [.bss]
    - labels: [ident:] (may share a line with an instruction or directive)
    - data directives: [.word v,...] (8-byte little-endian words),
      [.addr label] (8-byte word holding a relocated address),
      [.byte v,...], [.ascii "s"], [.asciz "s"], [.space n], [.align n]
    - instructions exactly as printed by {!Isa.pp}; immediate operands may be
      decimal, [0x] hex, negative, a [label], or [label+off].

    Label references used as immediates produce relocation entries, so the
    output is a relocatable binary in the paper's sense. The entry point is
    the [_start] symbol. Section layout: [.text] at {!text_base}, then
    [.rodata], [.data], [.bss], each aligned to {!page_size}. *)

val text_base : int
val page_size : int

type error = { line : int; msg : string }

val assemble :
  ?text_base:int ->
  ?entry:string ->
  ?externals:(string * int) list ->
  string ->
  (Obj_file.t, error) result
(** [text_base] overrides the default code base (used to place shared
    libraries at their fixed, per-library load addresses). [entry] names
    the entry symbol (default [_start]). [externals] resolves otherwise
    undefined labels to absolute addresses — the import table against a
    library's exports. *)

val assemble_exn :
  ?text_base:int -> ?entry:string -> ?externals:(string * int) list -> string -> Obj_file.t
(** @raise Failure with a formatted message on assembly errors. *)

val pp_error : Format.formatter -> error -> unit
