(** The SVM instruction set.

    SVM is the RISC-like instruction set of the simulated machine that stands
    in for x86 in this reproduction. Every instruction encodes to exactly
    {!instr_size} bytes, which keeps disassembly trivial while preserving the
    properties the paper's installer relies on: system calls are a single
    [SYS] instruction (the [int 0x80] analogue) with the system call number
    placed in register [r0] beforehand, and absolute code addresses appear as
    32-bit immediates covered by relocation entries. *)

type reg = int
(** A register index in [0, 15]. *)

val num_regs : int

(** r13: stack pointer. [Push]/[Pop] use it implicitly. *)
val sp : reg

(** r12: frame pointer by convention (not enforced). *)
val fp : reg

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor | Shl | Shr
  | Slt  (** set if less-than (signed), result 1/0 *)
  | Sle  (** set if less-or-equal *)
  | Seq  (** set if equal *)
  | Sne  (** set if not equal *)

type cond = Eq | Ne | Lt | Ge | Le | Gt

type instr =
  | Halt
  | Nop
  | Movi of reg * int      (** rd <- signed 32-bit immediate *)
  | Mov of reg * reg
  | Ld of reg * reg * int  (** rd <- mem64\[rs + off\] *)
  | St of reg * int * reg  (** mem64\[rd + off\] <- rs *)
  | Ldb of reg * reg * int (** rd <- zero-extended mem8\[rs + off\] *)
  | Stb of reg * int * reg (** mem8\[rd + off\] <- low byte of rs *)
  | Binop of binop * reg * reg * reg  (** rd <- rs op rt *)
  | Addi of reg * reg * int
  | Br of cond * reg * reg * int  (** if rs cond rt then pc <- absolute target *)
  | Jmp of int             (** absolute *)
  | Jr of reg              (** computed jump: pc <- rs *)
  | Call of int            (** push return address, pc <- absolute target *)
  | Callr of reg           (** computed call *)
  | Ret
  | Push of reg
  | Pop of reg
  | Sys                    (** trap to kernel; number in r0, args in r1..r6 *)
  | Rdcyc of reg           (** rd <- cycle counter (the rdtsc analogue) *)

val instr_size : int
(** Size in bytes of every encoded instruction (8). *)

val encode : instr -> bytes -> pos:int -> unit
(** Encode an instruction at [pos]. @raise Invalid_argument if an operand is
    out of range (register not in \[0,15\], immediate outside 32 bits). *)

val decode : bytes -> pos:int -> instr option
(** Decode the instruction at [pos]; [None] if the opcode byte is invalid
    (the disassembler reports such bytes as undisassemblable, like PLTO). *)

val imm_is_code_target : instr -> bool
(** Whether the instruction's immediate field holds an absolute code address
    (Jmp/Call/Br targets) that relocation must adjust. *)

val pp : Format.formatter -> instr -> unit
(** Assembly-style printing, parseable back by {!Asm}. *)
