let text_base = 0x1000
let page_size = 0x1000

type error = { line : int; msg : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.msg

exception Err of error

let err line fmt = Format.kasprintf (fun msg -> raise (Err { line; msg })) fmt

(* ----- lexical helpers ----- *)

let strip_comment line =
  let cut = ref (String.length line) in
  (try
     String.iteri
       (fun i c -> if (c = ';' || c = '#') && i < !cut then begin cut := i; raise Exit end)
       line
   with Exit -> ());
  String.sub line 0 !cut

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '.' || c = '$'

let parse_int ~line s =
  let s = String.trim s in
  let neg, s = if String.length s > 0 && s.[0] = '-' then (true, String.sub s 1 (String.length s - 1)) else (false, s) in
  let v =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      int_of_string_opt ("0x" ^ String.sub s 2 (String.length s - 2))
    else int_of_string_opt s
  in
  match v with
  | Some v -> if neg then -v else v
  | None -> err line "bad integer %S" s

(* An immediate operand: either a literal value or a label (plus offset)
   that resolves to an address and yields a relocation. *)
type imm = Lit of int | Ref of string * int

let parse_imm ~line s =
  let s = String.trim s in
  if s = "" then err line "empty operand"
  else if s.[0] = '-' || (s.[0] >= '0' && s.[0] <= '9') then Lit (parse_int ~line s)
  else
    match String.index_opt s '+' with
    | Some i ->
      let base = String.trim (String.sub s 0 i) in
      let off = parse_int ~line (String.sub s (i + 1) (String.length s - i - 1)) in
      Ref (base, off)
    | None ->
      if String.for_all is_ident_char s then Ref (s, 0) else err line "bad operand %S" s

let parse_reg ~line s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && (s.[0] = 'r' || s.[0] = 'R') then
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some r when r >= 0 && r < Isa.num_regs -> r
    | Some _ | None -> err line "bad register %S" s
  else if s = "sp" then Isa.sp
  else if s = "fp" then Isa.fp
  else err line "bad register %S" s

(* Memory operand: [rN], [rN+off], [rN-off], [rN+label]? offsets only. *)
let parse_mem ~line s =
  let s = String.trim s in
  let n = String.length s in
  if n < 3 || s.[0] <> '[' || s.[n - 1] <> ']' then err line "bad memory operand %S" s
  else begin
    let inner = String.sub s 1 (n - 2) in
    let split_at i =
      let reg = parse_reg ~line (String.sub inner 0 i) in
      let sign = if inner.[i] = '-' then -1 else 1 in
      let off = parse_int ~line (String.sub inner (i + 1) (String.length inner - i - 1)) in
      (reg, sign * off)
    in
    match String.index_opt inner '+' with
    | Some i -> split_at i
    | None ->
      (match String.index_opt inner '-' with
       | Some i -> split_at i
       | None -> (parse_reg ~line inner, 0))
  end

let split_operands s =
  (* split on commas not inside brackets or quotes *)
  let out = ref [] and buf = Buffer.create 16 and depth = ref 0 and in_str = ref false in
  String.iter
    (fun c ->
      if !in_str then begin
        Buffer.add_char buf c;
        if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true; Buffer.add_char buf c
        | '[' -> incr depth; Buffer.add_char buf c
        | ']' -> decr depth; Buffer.add_char buf c
        | ',' when !depth = 0 -> out := Buffer.contents buf :: !out; Buffer.clear buf
        | _ -> Buffer.add_char buf c)
    s;
  out := Buffer.contents buf :: !out;
  List.rev_map String.trim !out

let parse_string_lit ~line s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then err line "expected string literal"
  else begin
    let buf = Buffer.create n in
    let i = ref 1 in
    while !i < n - 1 do
      let c = s.[!i] in
      if c = '\\' && !i + 1 < n - 1 then begin
        (match s.[!i + 1] with
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | '0' -> Buffer.add_char buf '\000'
         | '\\' -> Buffer.add_char buf '\\'
         | '"' -> Buffer.add_char buf '"'
         | c -> err line "bad escape \\%c" c);
        i := !i + 2
      end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    done;
    Buffer.contents buf
  end

(* ----- statement representation ----- *)

type operand_instr = {
  mnemonic : string;
  operands : string list;
  src_line : int;
}

type item =
  | Instr of operand_instr
  | Bytes_item of string              (* literal bytes *)
  | Word_item of imm list * int       (* 8-byte words; line *)
  | Space of int
  | Align of int

type statement = { sec : Obj_file.section_kind; labels : string list; item : item option; line : int }

(* ----- pass 1: parse lines into statements ----- *)

let parse_line ~line sec text =
  let text = String.trim (strip_comment text) in
  if text = "" then (sec, [])
  else begin
    (* peel leading labels *)
    let rec peel acc rest =
      match String.index_opt rest ':' with
      | Some i when i > 0 && rest.[0] <> '.' && String.for_all is_ident_char (String.sub rest 0 i) ->
        let label = String.sub rest 0 i in
        let rest' = String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) in
        peel (label :: acc) rest'
      | Some _ | None -> (List.rev acc, rest)
    in
    let labels, rest = peel [] text in
    if rest = "" then (sec, [ { sec; labels; item = None; line } ])
    else if rest.[0] = '.' then begin
      let dir, arg =
        match String.index_opt rest ' ' with
        | Some i -> (String.sub rest 0 i, String.trim (String.sub rest (i + 1) (String.length rest - i - 1)))
        | None -> (rest, "")
      in
      match dir with
      | ".text" -> (Obj_file.Text, [ { sec = Obj_file.Text; labels; item = None; line } ])
      | ".rodata" -> (Obj_file.Rodata, [ { sec = Obj_file.Rodata; labels; item = None; line } ])
      | ".data" -> (Obj_file.Data, [ { sec = Obj_file.Data; labels; item = None; line } ])
      | ".bss" -> (Obj_file.Bss, [ { sec = Obj_file.Bss; labels; item = None; line } ])
      | ".global" | ".globl" -> (sec, [ { sec; labels; item = None; line } ])
      | ".word" ->
        let imms = List.map (parse_imm ~line) (split_operands arg) in
        (sec, [ { sec; labels; item = Some (Word_item (imms, line)); line } ])
      | ".addr" ->
        let imms = List.map (parse_imm ~line) (split_operands arg) in
        (sec, [ { sec; labels; item = Some (Word_item (imms, line)); line } ])
      | ".byte" ->
        let bytes =
          List.map (fun s -> Char.chr (parse_int ~line s land 0xff)) (split_operands arg)
        in
        (sec, [ { sec; labels; item = Some (Bytes_item (String.init (List.length bytes) (List.nth bytes))); line } ])
      | ".ascii" ->
        (sec, [ { sec; labels; item = Some (Bytes_item (parse_string_lit ~line arg)); line } ])
      | ".asciz" ->
        (sec, [ { sec; labels; item = Some (Bytes_item (parse_string_lit ~line arg ^ "\000")); line } ])
      | ".space" -> (sec, [ { sec; labels; item = Some (Space (parse_int ~line arg)); line } ])
      | ".align" -> (sec, [ { sec; labels; item = Some (Align (parse_int ~line arg)); line } ])
      | d -> err line "unknown directive %s" d
    end
    else begin
      let mnemonic, arg =
        match String.index_opt rest ' ' with
        | Some i -> (String.sub rest 0 i, String.trim (String.sub rest (i + 1) (String.length rest - i - 1)))
        | None -> (rest, "")
      in
      let operands = if arg = "" then [] else split_operands arg in
      (sec, [ { sec; labels; item = Some (Instr { mnemonic; operands; src_line = line }); line } ])
    end
  end

(* ----- instruction assembly ----- *)

type penc = {
  instr : imm option -> Isa.instr;  (* given resolved imm (if any) build instr *)
  imm_ref : imm option;             (* unresolved immediate, if symbolic *)
}

let binop_of_mnemonic = function
  | "add" -> Some Isa.Add | "sub" -> Some Isa.Sub | "mul" -> Some Isa.Mul
  | "div" -> Some Isa.Div | "mod" -> Some Isa.Mod | "and" -> Some Isa.And
  | "or" -> Some Isa.Or | "xor" -> Some Isa.Xor | "shl" -> Some Isa.Shl
  | "shr" -> Some Isa.Shr | "slt" -> Some Isa.Slt | "sle" -> Some Isa.Sle
  | "seq" -> Some Isa.Seq | "sne" -> Some Isa.Sne
  | _ -> None

let cond_of_mnemonic = function
  | "beq" -> Some Isa.Eq | "bne" -> Some Isa.Ne | "blt" -> Some Isa.Lt
  | "bge" -> Some Isa.Ge | "ble" -> Some Isa.Le | "bgt" -> Some Isa.Gt
  | _ -> None

let value_of = function Lit v -> Some v | Ref _ -> None

let encode_instr ~line { mnemonic; operands; _ } =
  let reg = parse_reg ~line in
  let mem = parse_mem ~line in
  let imm = parse_imm ~line in
  let fixed i = { instr = (fun _ -> i); imm_ref = None } in
  match (binop_of_mnemonic mnemonic, cond_of_mnemonic mnemonic, mnemonic, operands) with
  | Some op, _, _, [ a; b; c ] -> fixed (Isa.Binop (op, reg a, reg b, reg c))
  | Some _, _, _, _ -> err line "%s expects 3 registers" mnemonic
  | None, Some c, _, [ a; b; t ] ->
    let rs = reg a and rt = reg b and target = imm t in
    (match value_of target with
     | Some v -> fixed (Isa.Br (c, rs, rt, v))
     | None ->
       { instr =
           (function
            | Some (Lit v) -> Isa.Br (c, rs, rt, v)
            | _ -> assert false);
         imm_ref = Some target })
  | None, Some _, _, _ -> err line "%s expects rs, rt, target" mnemonic
  | None, None, "halt", [] -> fixed Isa.Halt
  | None, None, "nop", [] -> fixed Isa.Nop
  | None, None, "ret", [] -> fixed Isa.Ret
  | None, None, "sys", [] -> fixed Isa.Sys
  | None, None, "movi", [ a; b ] ->
    let rd = reg a and v = imm b in
    (match value_of v with
     | Some v -> fixed (Isa.Movi (rd, v))
     | None ->
       { instr = (function Some (Lit v) -> Isa.Movi (rd, v) | _ -> assert false);
         imm_ref = Some v })
  | None, None, "mov", [ a; b ] -> fixed (Isa.Mov (reg a, reg b))
  | None, None, "ld", [ a; b ] ->
    let rd = reg a and rs, off = mem b in
    fixed (Isa.Ld (rd, rs, off))
  | None, None, "ldb", [ a; b ] ->
    let rd = reg a and rs, off = mem b in
    fixed (Isa.Ldb (rd, rs, off))
  | None, None, "st", [ a; b ] ->
    let rd, off = mem a and rs = reg b in
    fixed (Isa.St (rd, off, rs))
  | None, None, "stb", [ a; b ] ->
    let rd, off = mem a and rs = reg b in
    fixed (Isa.Stb (rd, off, rs))
  | None, None, "addi", [ a; b; c ] ->
    (match imm c with
     | Lit v -> fixed (Isa.Addi (reg a, reg b, v))
     | Ref _ -> err line "addi immediate must be literal")
  | None, None, "jmp", [ t ] ->
    (match imm t with
     | Lit v -> fixed (Isa.Jmp v)
     | Ref _ as r ->
       { instr = (function Some (Lit v) -> Isa.Jmp v | _ -> assert false); imm_ref = Some r })
  | None, None, "call", [ t ] ->
    (match imm t with
     | Lit v -> fixed (Isa.Call v)
     | Ref _ as r ->
       { instr = (function Some (Lit v) -> Isa.Call v | _ -> assert false); imm_ref = Some r })
  | None, None, "jr", [ a ] -> fixed (Isa.Jr (reg a))
  | None, None, "callr", [ a ] -> fixed (Isa.Callr (reg a))
  | None, None, "push", [ a ] -> fixed (Isa.Push (reg a))
  | None, None, "pop", [ a ] -> fixed (Isa.Pop (reg a))
  | None, None, "rdcyc", [ a ] -> fixed (Isa.Rdcyc (reg a))
  | None, None, m, _ -> err line "unknown instruction %S" m

(* ----- assembly driver ----- *)

type chunk =
  | C_instr of penc * int (* line *)
  | C_bytes of string
  | C_word of imm * int   (* one 8-byte word; line *)
  | C_space of int
  | C_align of int

let align_to a v = if a <= 1 then v else (v + a - 1) / a * a

let chunk_parsed_size offset = function
  | C_instr _ -> Isa.instr_size
  | C_bytes s -> String.length s
  | C_word _ -> 8
  | C_space n -> n
  | C_align a -> align_to a offset - offset

let assemble ?text_base:(base_override = text_base) ?(entry = "_start")
    ?(externals = []) source =
  try
    let lines = String.split_on_char '\n' source in
    let statements = ref [] in
    let _ =
      List.fold_left
        (fun (sec, lineno) text ->
          let sec', stmts = parse_line ~line:lineno sec text in
          List.iter (fun s -> statements := s :: !statements) stmts;
          (sec', lineno + 1))
        (Obj_file.Text, 1) lines
    in
    let statements = List.rev !statements in
    (* Collect chunks per section, with labels bound to offsets. *)
    let sections = [ Obj_file.Text; Obj_file.Rodata; Obj_file.Data; Obj_file.Bss ] in
    let chunks = Hashtbl.create 8 (* kind -> chunk list ref (reversed) *) in
    let offsets = Hashtbl.create 8 in
    List.iter
      (fun k ->
        Hashtbl.replace chunks k (ref []);
        Hashtbl.replace offsets k (ref 0))
      sections;
    let labels = Hashtbl.create 64 (* name -> (kind, offset) *) in
    let add_chunk sec c =
      let off = Hashtbl.find offsets sec in
      let lst = Hashtbl.find chunks sec in
      lst := (!off, c) :: !lst;
      off := !off + chunk_parsed_size !off c
    in
    List.iter
      (fun st ->
        let off = Hashtbl.find offsets st.sec in
        List.iter
          (fun l ->
            if Hashtbl.mem labels l then err st.line "duplicate label %s" l;
            Hashtbl.replace labels l (st.sec, !off))
          st.labels;
        match st.item with
        | None -> ()
        | Some (Instr oi) -> add_chunk st.sec (C_instr (encode_instr ~line:st.line oi, st.line))
        | Some (Bytes_item s) ->
          if st.sec = Obj_file.Bss then err st.line "data bytes in .bss"
          else add_chunk st.sec (C_bytes s)
        | Some (Word_item (imms, line)) ->
          if st.sec = Obj_file.Bss then err st.line "data words in .bss"
          else List.iter (fun i -> add_chunk st.sec (C_word (i, line))) imms
        | Some (Space n) -> add_chunk st.sec (C_space n)
        | Some (Align a) -> add_chunk st.sec (C_align a))
      statements;
    (* Lay out sections. *)
    let size_of k = !(Hashtbl.find offsets k) in
    let text_addr = base_override in
    let rodata_addr = align_to page_size (text_addr + size_of Obj_file.Text) in
    let data_addr = align_to page_size (rodata_addr + size_of Obj_file.Rodata) in
    let bss_addr = align_to page_size (data_addr + size_of Obj_file.Data) in
    let base_of = function
      | Obj_file.Text -> text_addr
      | Obj_file.Rodata -> rodata_addr
      | Obj_file.Data -> data_addr
      | Obj_file.Bss -> bss_addr
    in
    let resolve ~line = function
      | Lit v -> v
      | Ref (name, off) ->
        (match Hashtbl.find_opt labels name with
         | Some (k, o) -> base_of k + o + off
         | None ->
           (match List.assoc_opt name externals with
            | Some addr -> addr + off
            | None -> err line "undefined label %s" name))
    in
    (* Emit payloads and relocations. *)
    let relocs = ref [] in
    let emit_section kind name =
      let size = size_of kind in
      let base = base_of kind in
      let payload = Bytes.make size '\000' in
      let items = List.rev !(Hashtbl.find chunks kind) in
      List.iter
        (fun (off, c) ->
          match c with
          | C_instr (p, line) ->
            let resolved =
              match p.imm_ref with
              | None -> None
              | Some r ->
                let v = resolve ~line r in
                (* symbolic immediates are addresses: mark for relocation *)
                relocs := { Obj_file.rel_at = base + off + 4 } :: !relocs;
                Some (Lit v)
            in
            Isa.encode (p.instr resolved) payload ~pos:off
          | C_bytes s -> Bytes.blit_string s 0 payload off (String.length s)
          | C_word (i, line) ->
            let v = resolve ~line i in
            Bytes.set_int64_le payload off (Int64.of_int v);
            (match i with
             | Ref _ -> relocs := { Obj_file.rel_at = base + off } :: !relocs
             | Lit _ -> ())
          | C_space _ | C_align _ -> ())
        items;
      { Obj_file.sec_name = name; sec_kind = kind; sec_addr = base; sec_size = size;
        sec_payload = (if kind = Obj_file.Bss then "" else Bytes.to_string payload) }
    in
    let secs =
      [ emit_section Obj_file.Text ".text";
        emit_section Obj_file.Rodata ".rodata";
        emit_section Obj_file.Data ".data";
        emit_section Obj_file.Bss ".bss" ]
    in
    let secs = List.filter (fun s -> s.Obj_file.sec_size > 0 || s.Obj_file.sec_kind = Obj_file.Text) secs in
    let symbols =
      Hashtbl.fold
        (fun name (k, off) acc -> { Obj_file.sym_name = name; sym_addr = base_of k + off } :: acc)
        labels []
      |> List.sort (fun a b -> compare a.Obj_file.sym_addr b.Obj_file.sym_addr)
    in
    let entry =
      match Hashtbl.find_opt labels entry with
      | Some (k, off) -> base_of k + off
      | None -> err 0 "no %s symbol" entry
    in
    Ok { Obj_file.entry; sections = secs; symbols; relocs = List.rev !relocs }
  with Err e -> Error e

let assemble_exn ?text_base ?entry ?externals source =
  match assemble ?text_base ?entry ?externals source with
  | Ok t -> t
  | Error e -> failwith (Format.asprintf "assembly failed: %a" pp_error e)
