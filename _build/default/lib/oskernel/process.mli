(** A simulated user process: an SVM machine plus kernel-side state (file
    descriptors, break, cwd) and the per-process monitor state the paper's
    kernel keeps — the nonce [counter] used by the online memory checker for
    the control-flow policy state (§3.2). *)

type fd_kind =
  | Console_in
  | Console_out
  | Console_err
  | File of { path : string; mutable pos : int; append : bool }
  | Dir of { path : string; mutable consumed : bool }
  | Sock of { mutable sent : int }

type t = {
  pid : int;
  machine : Svm.Machine.t;
  mutable program : string;
  mutable brk_addr : int;
  mutable heap_start : int;
  mutable mmap_next : int;
  mutable cwd : string;
  fds : (int, fd_kind) Hashtbl.t;
  mutable next_fd : int;
  mutable counter : int;     (** ASC per-process nonce (kernel memory) *)
  mutable stdin : string;
  mutable stdin_pos : int;
  stdout : Buffer.t;
  stderr : Buffer.t;
}

val create : pid:int -> program:string -> machine:Svm.Machine.t -> heap_start:int -> t
(** Fresh process with fds 0/1/2 bound to the console, cwd [/], break at
    [heap_start] and the mmap region above the heap. *)

val fresh_fd : t -> fd_kind -> int
val fd : t -> int -> fd_kind option
val close_fd : t -> int -> bool

val reset_for_exec : t -> program:string -> heap_start:int -> unit
(** State reset performed by a successful [execve]: non-std fds closed,
    break and mmap region reset, monitor counter cleared. *)
