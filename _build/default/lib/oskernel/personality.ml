type t = {
  os_name : string;
  direct : (Syscall.sem * int) list;        (* sem <-> trap number *)
  indirect_only : (Syscall.sem * int) list; (* reachable via Indirect only *)
}

let os_name t = t.os_name

(* Numbers loosely follow the real tables; only distinctness and stability
   matter to the reproduction. *)
let linux =
  { os_name = "Linux(sim)";
    direct =
      [ (Syscall.Exit, 1); (Syscall.Read, 3); (Syscall.Write, 4); (Syscall.Open, 5);
        (Syscall.Close, 6); (Syscall.Unlink, 10); (Syscall.Execve, 11); (Syscall.Chdir, 12);
        (Syscall.Time, 13); (Syscall.Chmod, 15); (Syscall.Lseek, 19); (Syscall.Getpid, 20);
        (Syscall.Getuid, 24); (Syscall.Access, 33); (Syscall.Kill, 37); (Syscall.Rename, 38);
        (Syscall.Mkdir, 39); (Syscall.Rmdir, 40); (Syscall.Dup, 41); (Syscall.Brk, 45);
        (Syscall.Getgid, 47); (Syscall.Geteuid, 49); (Syscall.Ioctl, 54); (Syscall.Fcntl, 55);
        (Syscall.Dup2, 63); (Syscall.Getppid, 64); (Syscall.Sigaction, 67);
        (Syscall.Gettimeofday, 78); (Syscall.Symlink, 83); (Syscall.Readlink, 85);
        (Syscall.Mmap, 90); (Syscall.Munmap, 91); (Syscall.Fstatfs, 100); (Syscall.Stat, 106);
        (Syscall.Fstat, 108); (Syscall.Uname, 122); (Syscall.Getdirentries, 141);
        (Syscall.Select, 142); (Syscall.Writev, 146); (Syscall.Nanosleep, 162);
        (Syscall.Getcwd, 183); (Syscall.Sysconf, 199); (Syscall.Madvise, 219);
        (Syscall.Socket, 359); (Syscall.Bind, 361); (Syscall.Connect, 362);
        (Syscall.Sendto, 369); (Syscall.Recvfrom, 371) ];
    indirect_only = [] }

let openbsd =
  { os_name = "OpenBSD(sim)";
    direct =
      [ (Syscall.Exit, 1); (Syscall.Read, 3); (Syscall.Write, 4); (Syscall.Open, 5);
        (Syscall.Close, 6); (Syscall.Unlink, 10); (Syscall.Chdir, 12); (Syscall.Chmod, 15);
        (Syscall.Brk, 17); (Syscall.Getpid, 20); (Syscall.Getuid, 24); (Syscall.Geteuid, 25);
        (Syscall.Recvfrom, 29); (Syscall.Access, 33); (Syscall.Kill, 37); (Syscall.Stat, 38);
        (Syscall.Getppid, 39); (Syscall.Dup, 41); (Syscall.Getgid, 43); (Syscall.Sigaction, 46);
        (Syscall.Ioctl, 54); (Syscall.Symlink, 57); (Syscall.Readlink, 58);
        (Syscall.Execve, 59); (Syscall.Fstatfs, 64); (Syscall.Munmap, 73);
        (Syscall.Madvise, 75); (Syscall.Dup2, 90); (Syscall.Fcntl, 92); (Syscall.Select, 93);
        (Syscall.Socket, 97); (Syscall.Connect, 98); (Syscall.Bind, 104);
        (Syscall.Gettimeofday, 116); (Syscall.Writev, 121); (Syscall.Rename, 128);
        (Syscall.Sendto, 133); (Syscall.Mkdir, 136); (Syscall.Rmdir, 137);
        (Syscall.Uname, 164); (Syscall.Fstat, 189); (Syscall.Indirect, 198);
        (Syscall.Lseek, 199); (Syscall.Sysconf, 201); (Syscall.Sysctl, 202);
        (Syscall.Nanosleep, 240); (Syscall.Issetugid, 253); (Syscall.Getcwd, 304);
        (Syscall.Getdirentries, 312); (Syscall.Time, 337) ];
    indirect_only = [ (Syscall.Mmap, 197) ] }

let number_of t sem = List.assoc_opt sem t.direct

let sem_of t n =
  let rev tbl = List.find_map (fun (s, m) -> if m = n then Some s else None) tbl in
  match rev t.direct with
  | Some s -> Some s
  | None -> rev t.indirect_only

let indirect_target t n =
  if not (List.mem_assoc Syscall.Indirect t.direct) then None else sem_of t n
