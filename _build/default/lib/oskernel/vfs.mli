(** In-memory Unix-like filesystem with directories, regular files and
    symbolic links.

    Symlinks matter to the reproduction: §5.4 of the paper discusses the
    classic monitor race where a policy permits [/tmp/foo] but an attacker
    points a symlink there, so policies must refer to *normalized* names.
    {!normalize} implements in-kernel resolution of symlinks, [.] and
    [..]. *)

type t

val create : unit -> t
(** Fresh filesystem containing only the root directory. *)

type stat = { st_size : int; st_kind : [ `File | `Dir | `Symlink ] }

(** All path arguments are absolute or resolved against [cwd]. *)

val normalize : t -> cwd:string -> string -> (string, Errno.t) result
(** Canonical absolute path after resolving [.], [..] and symlinks in every
    component (bounded depth; [Error ELOOP] on cycles). The final component
    need not exist, but its parent must. *)

val mkdir : t -> cwd:string -> string -> (unit, Errno.t) result
val rmdir : t -> cwd:string -> string -> (unit, Errno.t) result
val symlink : t -> cwd:string -> target:string -> linkpath:string -> (unit, Errno.t) result
val readlink : t -> cwd:string -> string -> (string, Errno.t) result
val unlink : t -> cwd:string -> string -> (unit, Errno.t) result
val rename : t -> cwd:string -> src:string -> dst:string -> (unit, Errno.t) result
val stat : t -> cwd:string -> string -> (stat, Errno.t) result
val exists : t -> cwd:string -> string -> bool
val is_dir : t -> cwd:string -> string -> bool

val create_file : t -> cwd:string -> string -> contents:string -> (unit, Errno.t) result
(** Create or truncate a regular file. Parent directories must exist. *)

val read_file : t -> cwd:string -> string -> (string, Errno.t) result
val file_size : t -> cwd:string -> string -> (int, Errno.t) result

val read_at : t -> cwd:string -> string -> pos:int -> len:int -> (string, Errno.t) result
(** Read up to [len] bytes at offset [pos]; short reads at EOF. *)

val write_at : t -> cwd:string -> string -> pos:int -> string -> (int, Errno.t) result
(** Write at offset [pos], extending the file as needed (zero-filled gap). *)

val truncate : t -> cwd:string -> string -> (unit, Errno.t) result
val readdir : t -> cwd:string -> string -> (string list, Errno.t) result
(** Entry names, sorted. *)

val mkdir_p : t -> string -> unit
(** Create an absolute directory path and all missing ancestors; used by
    harnesses to set up images. @raise Invalid_argument on non-directory
    conflicts. *)
