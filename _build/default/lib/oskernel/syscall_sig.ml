type param =
  | P_int
  | P_fd
  | P_path
  | P_in
  | P_out

let params (s : Syscall.sem) =
  match s with
  | Syscall.Exit -> [ P_int ]
  | Syscall.Open -> [ P_path; P_int; P_int ]
  | Syscall.Close -> [ P_fd ]
  | Syscall.Read -> [ P_fd; P_out; P_int ]
  | Syscall.Write -> [ P_fd; P_in; P_int ]
  | Syscall.Lseek -> [ P_fd; P_int; P_int ]
  | Syscall.Brk -> [ P_int ]
  | Syscall.Mmap -> [ P_int; P_int; P_int; P_int; P_fd; P_int ]
  | Syscall.Munmap -> [ P_int; P_int ]
  | Syscall.Madvise -> [ P_int; P_int; P_int ]
  | Syscall.Getpid | Syscall.Getppid | Syscall.Getuid | Syscall.Geteuid | Syscall.Getgid
  | Syscall.Issetugid -> []
  | Syscall.Gettimeofday -> [ P_out; P_out ]
  | Syscall.Time -> [ P_out ]
  | Syscall.Nanosleep -> [ P_in; P_out ]
  | Syscall.Kill -> [ P_int; P_int ]
  | Syscall.Sigaction -> [ P_int; P_in; P_out ]
  | Syscall.Uname -> [ P_out ]
  | Syscall.Sysconf -> [ P_int ]
  | Syscall.Sysctl -> [ P_in; P_int; P_out; P_out; P_in; P_int ]
  | Syscall.Fstatfs -> [ P_fd; P_out ]
  | Syscall.Mkdir -> [ P_path; P_int ]
  | Syscall.Rmdir -> [ P_path ]
  | Syscall.Unlink -> [ P_path ]
  | Syscall.Readlink -> [ P_path; P_out; P_int ]
  | Syscall.Symlink -> [ P_path; P_path ]
  | Syscall.Rename -> [ P_path; P_path ]
  | Syscall.Stat -> [ P_path; P_out ]
  | Syscall.Fstat -> [ P_fd; P_out ]
  | Syscall.Access -> [ P_path; P_int ]
  | Syscall.Chdir -> [ P_path ]
  | Syscall.Getcwd -> [ P_out; P_int ]
  | Syscall.Chmod -> [ P_path; P_int ]
  | Syscall.Dup -> [ P_fd ]
  | Syscall.Dup2 -> [ P_fd; P_fd ]
  | Syscall.Fcntl -> [ P_fd; P_int; P_int ]
  | Syscall.Ioctl -> [ P_fd; P_int; P_in ]
  | Syscall.Getdirentries -> [ P_fd; P_out; P_int ]
  | Syscall.Socket -> [ P_int; P_int; P_int ]
  | Syscall.Connect -> [ P_fd; P_in; P_int ]
  | Syscall.Bind -> [ P_fd; P_in; P_int ]
  | Syscall.Sendto -> [ P_fd; P_in; P_int; P_int; P_in; P_int ]
  | Syscall.Recvfrom -> [ P_fd; P_out; P_int; P_int; P_out; P_out ]
  | Syscall.Writev -> [ P_fd; P_in; P_int ]
  | Syscall.Execve -> [ P_path; P_in; P_in ]
  | Syscall.Select -> [ P_int; P_out; P_out; P_out; P_in ]
  | Syscall.Indirect -> [ P_int; P_int; P_int; P_int; P_int; P_int ]

let arity s = List.length (params s)
