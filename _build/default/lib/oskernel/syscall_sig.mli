(** Per-syscall parameter signatures.

    The installer uses these to interpret what static analysis found for
    each argument: pathname arguments can be protected as authenticated
    strings, output-only pointer arguments (where the kernel stores the
    result) are never constrained, and file-descriptor arguments feed the
    capability-tracking statistics (Table 3's o/p and fds columns). *)

type param =
  | P_int    (** plain integer/flags argument *)
  | P_fd     (** file descriptor from an earlier open/socket *)
  | P_path   (** NUL-terminated pathname — authenticatable string *)
  | P_in     (** input buffer pointer (contents vary at runtime) *)
  | P_out    (** output pointer: the kernel writes the result here *)

val params : Syscall.sem -> param list
(** Parameter list; its length is the call's arity (≤ 6). *)

val arity : Syscall.sem -> int
