lib/oskernel/syscall.ml: Format List Set Stdlib
