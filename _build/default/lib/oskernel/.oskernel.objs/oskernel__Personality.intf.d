lib/oskernel/personality.mli: Syscall
