lib/oskernel/syscall_sig.ml: List Syscall
