lib/oskernel/vfs.mli: Errno
