lib/oskernel/vfs.ml: Bytes Errno Hashtbl List Printf Result String
