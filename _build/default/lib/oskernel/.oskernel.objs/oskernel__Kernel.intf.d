lib/oskernel/kernel.mli: Personality Process Svm Syscall Vfs
