lib/oskernel/syscall.mli: Format Set
