lib/oskernel/personality.ml: List Syscall
