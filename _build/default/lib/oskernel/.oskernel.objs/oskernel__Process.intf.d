lib/oskernel/process.mli: Buffer Hashtbl Svm
