lib/oskernel/kernel.ml: Array Buffer Bytes Cost_model Errno Format Hashtbl Isa List Loader Machine Obj_file Personality Printf Process String Svm Syscall Vfs
