lib/oskernel/syscall_sig.mli: Syscall
