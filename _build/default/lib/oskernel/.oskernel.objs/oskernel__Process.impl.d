lib/oskernel/process.ml: Buffer Hashtbl Svm
