type sem =
  | Exit
  | Open
  | Close
  | Read
  | Write
  | Lseek
  | Brk
  | Mmap
  | Munmap
  | Madvise
  | Getpid
  | Getppid
  | Getuid
  | Geteuid
  | Getgid
  | Issetugid
  | Gettimeofday
  | Time
  | Nanosleep
  | Kill
  | Sigaction
  | Uname
  | Sysconf
  | Sysctl
  | Fstatfs
  | Mkdir
  | Rmdir
  | Unlink
  | Readlink
  | Symlink
  | Rename
  | Stat
  | Fstat
  | Access
  | Chdir
  | Getcwd
  | Chmod
  | Dup
  | Dup2
  | Fcntl
  | Ioctl
  | Getdirentries
  | Socket
  | Connect
  | Bind
  | Sendto
  | Recvfrom
  | Writev
  | Execve
  | Select
  | Indirect

let all =
  [ Exit; Open; Close; Read; Write; Lseek; Brk; Mmap; Munmap; Madvise; Getpid; Getppid;
    Getuid; Geteuid; Getgid; Issetugid; Gettimeofday; Time; Nanosleep; Kill; Sigaction;
    Uname; Sysconf; Sysctl; Fstatfs; Mkdir; Rmdir; Unlink; Readlink; Symlink; Rename;
    Stat; Fstat; Access; Chdir; Getcwd; Chmod; Dup; Dup2; Fcntl; Ioctl; Getdirentries;
    Socket; Connect; Bind; Sendto; Recvfrom; Writev; Execve; Select; Indirect ]

let name = function
  | Exit -> "exit"
  | Open -> "open"
  | Close -> "close"
  | Read -> "read"
  | Write -> "write"
  | Lseek -> "lseek"
  | Brk -> "brk"
  | Mmap -> "mmap"
  | Munmap -> "munmap"
  | Madvise -> "madvise"
  | Getpid -> "getpid"
  | Getppid -> "getppid"
  | Getuid -> "getuid"
  | Geteuid -> "geteuid"
  | Getgid -> "getgid"
  | Issetugid -> "issetugid"
  | Gettimeofday -> "gettimeofday"
  | Time -> "time"
  | Nanosleep -> "nanosleep"
  | Kill -> "kill"
  | Sigaction -> "sigaction"
  | Uname -> "uname"
  | Sysconf -> "sysconf"
  | Sysctl -> "sysctl"
  | Fstatfs -> "fstatfs"
  | Mkdir -> "mkdir"
  | Rmdir -> "rmdir"
  | Unlink -> "unlink"
  | Readlink -> "readlink"
  | Symlink -> "symlink"
  | Rename -> "rename"
  | Stat -> "stat"
  | Fstat -> "fstat"
  | Access -> "access"
  | Chdir -> "chdir"
  | Getcwd -> "getcwd"
  | Chmod -> "chmod"
  | Dup -> "dup"
  | Dup2 -> "dup2"
  | Fcntl -> "fcntl"
  | Ioctl -> "ioctl"
  | Getdirentries -> "getdirentries"
  | Socket -> "socket"
  | Connect -> "connect"
  | Bind -> "bind"
  | Sendto -> "sendto"
  | Recvfrom -> "recvfrom"
  | Writev -> "writev"
  | Execve -> "execve"
  | Select -> "select"
  | Indirect -> "__syscall"

let of_name n = List.find_opt (fun s -> name s = n) all
let pp ppf s = Format.pp_print_string ppf (name s)
let compare = Stdlib.compare

module Set = Set.Make (struct
  type t = sem

  let compare = Stdlib.compare
end)
