(** OS personalities: the syscall-number tables of the two simulated
    operating systems.

    The paper ports its policy generator from Linux to OpenBSD and finds
    that "there are significant differences in the system calls needed for
    the same application running on different operating systems". We model
    the two relevant differences:
    - different syscall numbering (and a few operations present on one OS
      only), and
    - the OpenBSD quirk that libc implements [mmap] by calling the generic
      indirect [__syscall] with the real syscall number as first argument
      (Table 2's [__syscall]/[mmap] rows). *)

type t

val linux : t
(** Linux-like personality: every operation has a direct number. *)

val openbsd : t
(** OpenBSD-like personality: [mmap] is reached via {!Syscall.Indirect};
    additionally its libc start-up uses [issetugid]/[sysctl], which do not
    exist on the Linux-like personality. *)

val os_name : t -> string

val number_of : t -> Syscall.sem -> int option
(** Trap number for an operation; [None] if the OS does not expose it
    directly (e.g. [mmap] on the OpenBSD-like personality, [issetugid] on
    the Linux-like one). *)

val sem_of : t -> int -> Syscall.sem option
(** Operation for a trap number. *)

val indirect_target : t -> int -> Syscall.sem option
(** [indirect_target t n] is the operation selected by first argument [n]
    of an {!Syscall.Indirect} call (OpenBSD [__syscall] semantics); [None]
    if the personality has no indirect call or the number is unknown. *)
