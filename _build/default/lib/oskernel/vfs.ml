type file = { mutable data : Bytes.t }

type node =
  | File of file
  | Dir of (string, node) Hashtbl.t
  | Symlink of string

type t = { root : (string, node) Hashtbl.t }

type stat = { st_size : int; st_kind : [ `File | `Dir | `Symlink ] }

let create () = { root = Hashtbl.create 16 }

let ( let* ) = Result.bind

let split_path path = List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' path)

let absolute ~cwd path = if String.length path > 0 && path.[0] = '/' then path else cwd ^ "/" ^ path

(* Resolve a path to canonical components. [keep_last_symlink] controls
   whether a symlink in the final component is followed (open/read) or kept
   (readlink/unlink/lstat-style access). *)
let resolve_components fs ~cwd ~keep_last_symlink path =
  let max_links = 16 in
  let rec walk canonical node remaining budget =
    if budget < 0 then Error Errno.ELOOP
    else
      match remaining with
      | [] -> Ok (List.rev canonical)
      | ".." :: rest ->
        (match canonical with
         | [] -> walk [] node rest budget (* /.. = / *)
         | _ :: up ->
           (* re-walk from the root along the shortened canonical prefix *)
           let prefix = List.rev up in
           walk_from_root prefix rest budget)
      | comp :: rest ->
        (match node with
         | Dir entries ->
           (match Hashtbl.find_opt entries comp with
            | None ->
              (* the final component may be absent (creation target) *)
              if rest = [] then Ok (List.rev (comp :: canonical)) else Error Errno.ENOENT
            | Some (Symlink target) when rest <> [] || not keep_last_symlink ->
              let target_comps = split_path target in
              if String.length target > 0 && target.[0] = '/' then
                walk_from_root_follow target_comps rest (budget - 1)
              else walk_from_canonical canonical target_comps rest (budget - 1)
            | Some child -> walk (comp :: canonical) child rest budget)
         | File _ | Symlink _ -> Error Errno.ENOTDIR)
  and walk_from_root comps rest budget =
    (* walk the canonical prefix (already resolved, no symlinks) then rest *)
    let rec descend canonical node = function
      | [] -> walk canonical node rest budget
      | c :: more ->
        (match node with
         | Dir entries ->
           (match Hashtbl.find_opt entries c with
            | Some child -> descend (c :: canonical) child more
            | None -> Error Errno.ENOENT)
         | File _ | Symlink _ -> Error Errno.ENOTDIR)
    in
    descend [] (Dir fs.root) comps
  and walk_from_root_follow comps rest budget =
    (* absolute symlink target: restart from root with target ++ rest *)
    walk [] (Dir fs.root) (comps @ rest) budget
  and walk_from_canonical canonical comps rest budget =
    (* relative symlink target: resolve against the link's directory *)
    let dir_prefix = List.rev canonical in
    let rec descend can node = function
      | [] -> walk can node (comps @ rest) budget
      | c :: more ->
        (match node with
         | Dir entries ->
           (match Hashtbl.find_opt entries c with
            | Some child -> descend (c :: can) child more
            | None -> Error Errno.ENOENT)
         | File _ | Symlink _ -> Error Errno.ENOTDIR)
    in
    descend [] (Dir fs.root) dir_prefix
  in
  walk [] (Dir fs.root) (split_path (absolute ~cwd path)) max_links

let components_to_path comps = "/" ^ String.concat "/" comps

let normalize fs ~cwd path =
  let* comps = resolve_components fs ~cwd ~keep_last_symlink:false path in
  Ok (components_to_path comps)

(* Locate the parent directory table and leaf name of a canonical path. *)
let parent_and_leaf fs comps =
  match List.rev comps with
  | [] -> Error Errno.EINVAL
  | leaf :: rev_parents ->
    let rec descend tbl = function
      | [] -> Ok (tbl, leaf)
      | c :: more ->
        (match Hashtbl.find_opt tbl c with
         | Some (Dir sub) -> descend sub more
         | Some (File _ | Symlink _) -> Error Errno.ENOTDIR
         | None -> Error Errno.ENOENT)
    in
    descend fs.root (List.rev rev_parents)

let lookup fs ~cwd ~keep_last_symlink path =
  let* comps = resolve_components fs ~cwd ~keep_last_symlink path in
  if comps = [] then Ok (Dir fs.root)
  else
    let* tbl, leaf = parent_and_leaf fs comps in
    match Hashtbl.find_opt tbl leaf with
    | Some n -> Ok n
    | None -> Error Errno.ENOENT

let stat fs ~cwd path =
  let* n = lookup fs ~cwd ~keep_last_symlink:false path in
  match n with
  | File f -> Ok { st_size = Bytes.length f.data; st_kind = `File }
  | Dir _ -> Ok { st_size = 0; st_kind = `Dir }
  | Symlink _ -> Ok { st_size = 0; st_kind = `Symlink }

let exists fs ~cwd path = Result.is_ok (lookup fs ~cwd ~keep_last_symlink:false path)

let is_dir fs ~cwd path =
  match lookup fs ~cwd ~keep_last_symlink:false path with
  | Ok (Dir _) -> true
  | Ok (File _ | Symlink _) | Error _ -> false

let with_parent fs ~cwd path f =
  let* comps = resolve_components fs ~cwd ~keep_last_symlink:true path in
  let* tbl, leaf = parent_and_leaf fs comps in
  f tbl leaf

let mkdir fs ~cwd path =
  with_parent fs ~cwd path (fun tbl leaf ->
      if Hashtbl.mem tbl leaf then Error Errno.EEXIST
      else begin
        Hashtbl.replace tbl leaf (Dir (Hashtbl.create 8));
        Ok ()
      end)

let rmdir fs ~cwd path =
  with_parent fs ~cwd path (fun tbl leaf ->
      match Hashtbl.find_opt tbl leaf with
      | Some (Dir sub) ->
        if Hashtbl.length sub > 0 then Error Errno.ENOTEMPTY
        else begin
          Hashtbl.remove tbl leaf;
          Ok ()
        end
      | Some (File _ | Symlink _) -> Error Errno.ENOTDIR
      | None -> Error Errno.ENOENT)

let symlink fs ~cwd ~target ~linkpath =
  with_parent fs ~cwd linkpath (fun tbl leaf ->
      if Hashtbl.mem tbl leaf then Error Errno.EEXIST
      else begin
        Hashtbl.replace tbl leaf (Symlink target);
        Ok ()
      end)

let readlink fs ~cwd path =
  let* n = lookup fs ~cwd ~keep_last_symlink:true path in
  match n with
  | Symlink target -> Ok target
  | File _ | Dir _ -> Error Errno.EINVAL

let unlink fs ~cwd path =
  with_parent fs ~cwd path (fun tbl leaf ->
      match Hashtbl.find_opt tbl leaf with
      | Some (File _ | Symlink _) ->
        Hashtbl.remove tbl leaf;
        Ok ()
      | Some (Dir _) -> Error Errno.EISDIR
      | None -> Error Errno.ENOENT)

(* resolve both ends before mutating anything, so a failing destination
   cannot lose the source *)
let rename fs ~cwd ~src ~dst =
  let* src_tbl, src_leaf = with_parent fs ~cwd src (fun tbl leaf -> Ok (tbl, leaf)) in
  let* node =
    match Hashtbl.find_opt src_tbl src_leaf with
    | Some n -> Ok n
    | None -> Error Errno.ENOENT
  in
  let* dst_tbl, dst_leaf = with_parent fs ~cwd dst (fun tbl leaf -> Ok (tbl, leaf)) in
  match Hashtbl.find_opt dst_tbl dst_leaf with
  | Some (Dir _) -> Error Errno.EISDIR (* never silently replace a directory *)
  | Some (File _ | Symlink _) | None ->
    Hashtbl.remove src_tbl src_leaf;
    Hashtbl.replace dst_tbl dst_leaf node;
    Ok ()

let create_file fs ~cwd path ~contents =
  with_parent fs ~cwd path (fun tbl leaf ->
      match Hashtbl.find_opt tbl leaf with
      | Some (Dir _) -> Error Errno.EISDIR
      | Some (Symlink _) -> Error Errno.EINVAL (* resolved earlier; defensive *)
      | Some (File f) ->
        f.data <- Bytes.of_string contents;
        Ok ()
      | None ->
        Hashtbl.replace tbl leaf (File { data = Bytes.of_string contents });
        Ok ())

let find_file fs ~cwd path =
  let* n = lookup fs ~cwd ~keep_last_symlink:false path in
  match n with
  | File f -> Ok f
  | Dir _ -> Error Errno.EISDIR
  | Symlink _ -> Error Errno.ELOOP

let read_file fs ~cwd path =
  let* f = find_file fs ~cwd path in
  Ok (Bytes.to_string f.data)

let file_size fs ~cwd path =
  let* f = find_file fs ~cwd path in
  Ok (Bytes.length f.data)

let read_at fs ~cwd path ~pos ~len =
  let* f = find_file fs ~cwd path in
  if pos < 0 || len < 0 then Error Errno.EINVAL
  else begin
    let avail = max 0 (Bytes.length f.data - pos) in
    Ok (Bytes.sub_string f.data (min pos (Bytes.length f.data)) (min len avail))
  end

let write_at fs ~cwd path ~pos data =
  let* f = find_file fs ~cwd path in
  if pos < 0 then Error Errno.EINVAL
  else begin
    let needed = pos + String.length data in
    if needed > Bytes.length f.data then begin
      let grown = Bytes.make needed '\000' in
      Bytes.blit f.data 0 grown 0 (Bytes.length f.data);
      f.data <- grown
    end;
    Bytes.blit_string data 0 f.data pos (String.length data);
    Ok (String.length data)
  end

let truncate fs ~cwd path =
  let* f = find_file fs ~cwd path in
  f.data <- Bytes.create 0;
  Ok ()

let readdir fs ~cwd path =
  let* n = lookup fs ~cwd ~keep_last_symlink:false path in
  match n with
  | Dir entries ->
    Ok (List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) entries []))
  | File _ | Symlink _ -> Error Errno.ENOTDIR

let mkdir_p fs path =
  let comps = split_path path in
  let rec descend tbl = function
    | [] -> ()
    | c :: more ->
      (match Hashtbl.find_opt tbl c with
       | Some (Dir sub) -> descend sub more
       | Some (File _ | Symlink _) ->
         invalid_arg (Printf.sprintf "Vfs.mkdir_p: %s is not a directory" c)
       | None ->
         let sub = Hashtbl.create 8 in
         Hashtbl.replace tbl c (Dir sub);
         descend sub more)
  in
  descend fs.root comps
