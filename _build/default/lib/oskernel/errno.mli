(** Unix-style error numbers returned (negated) by simulated system calls. *)

type t =
  | EPERM
  | ENOENT
  | EBADF
  | EACCES
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOTTY
  | ENOSYS
  | ELOOP
  | ENOTEMPTY
  | ENOMEM
  | EFAULT

val code : t -> int
(** Positive error code; syscalls return [- code e]. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
