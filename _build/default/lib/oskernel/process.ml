type fd_kind =
  | Console_in
  | Console_out
  | Console_err
  | File of { path : string; mutable pos : int; append : bool }
  | Dir of { path : string; mutable consumed : bool }
  | Sock of { mutable sent : int }

type t = {
  pid : int;
  machine : Svm.Machine.t;
  mutable program : string;
  mutable brk_addr : int;
  mutable heap_start : int;
  mutable mmap_next : int;
  mutable cwd : string;
  fds : (int, fd_kind) Hashtbl.t;
  mutable next_fd : int;
  mutable counter : int;
  mutable stdin : string;
  mutable stdin_pos : int;
  stdout : Buffer.t;
  stderr : Buffer.t;
}

(* The mmap region sits halfway between the heap start and the stack. *)
let mmap_base machine heap_start =
  let top = Svm.Machine.stack_top machine in
  heap_start + ((top - heap_start) / 2)

let std_fds fds =
  Hashtbl.replace fds 0 Console_in;
  Hashtbl.replace fds 1 Console_out;
  Hashtbl.replace fds 2 Console_err

let create ~pid ~program ~machine ~heap_start =
  let fds = Hashtbl.create 16 in
  std_fds fds;
  { pid;
    machine;
    program;
    brk_addr = heap_start;
    heap_start;
    mmap_next = mmap_base machine heap_start;
    cwd = "/";
    fds;
    next_fd = 3;
    counter = 0;
    stdin = "";
    stdin_pos = 0;
    stdout = Buffer.create 256;
    stderr = Buffer.create 64 }

let fresh_fd t kind =
  let n = t.next_fd in
  t.next_fd <- n + 1;
  Hashtbl.replace t.fds n kind;
  n

let fd t n = Hashtbl.find_opt t.fds n

let close_fd t n =
  if Hashtbl.mem t.fds n then begin
    Hashtbl.remove t.fds n;
    true
  end
  else false

let reset_for_exec t ~program ~heap_start =
  t.program <- program;
  t.brk_addr <- heap_start;
  t.heap_start <- heap_start;
  t.mmap_next <- mmap_base t.machine heap_start;
  t.counter <- 0;
  Hashtbl.reset t.fds;
  std_fds t.fds;
  t.next_fd <- 3
