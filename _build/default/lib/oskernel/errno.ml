type t =
  | EPERM
  | ENOENT
  | EBADF
  | EACCES
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOTTY
  | ENOSYS
  | ELOOP
  | ENOTEMPTY
  | ENOMEM
  | EFAULT

let code = function
  | EPERM -> 1
  | ENOENT -> 2
  | EBADF -> 9
  | EACCES -> 13
  | EEXIST -> 17
  | ENOTDIR -> 20
  | EISDIR -> 21
  | EINVAL -> 22
  | EMFILE -> 24
  | ENOTTY -> 25
  | ENOSYS -> 38
  | ELOOP -> 40
  | ENOTEMPTY -> 39
  | ENOMEM -> 12
  | EFAULT -> 14

let name = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | EBADF -> "EBADF"
  | EACCES -> "EACCES"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | EMFILE -> "EMFILE"
  | ENOTTY -> "ENOTTY"
  | ENOSYS -> "ENOSYS"
  | ELOOP -> "ELOOP"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ENOMEM -> "ENOMEM"
  | EFAULT -> "EFAULT"

let pp ppf e = Format.pp_print_string ppf (name e)
