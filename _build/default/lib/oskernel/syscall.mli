(** OS-independent system-call semantics.

    Each simulated OS personality maps its own syscall *numbers* onto these
    shared semantic operations, the way Linux and OpenBSD assign different
    numbers (and different libc call patterns) to the same operations. *)

type sem =
  | Exit
  | Open
  | Close
  | Read
  | Write
  | Lseek
  | Brk
  | Mmap
  | Munmap
  | Madvise
  | Getpid
  | Getppid
  | Getuid
  | Geteuid
  | Getgid
  | Issetugid
  | Gettimeofday
  | Time
  | Nanosleep
  | Kill
  | Sigaction
  | Uname
  | Sysconf
  | Sysctl
  | Fstatfs
  | Mkdir
  | Rmdir
  | Unlink
  | Readlink
  | Symlink
  | Rename
  | Stat
  | Fstat
  | Access
  | Chdir
  | Getcwd
  | Chmod
  | Dup
  | Dup2
  | Fcntl
  | Ioctl
  | Getdirentries
  | Socket
  | Connect
  | Bind
  | Sendto
  | Recvfrom
  | Writev
  | Execve
  | Select
  | Indirect  (** the OpenBSD-style [__syscall] generic indirect call *)

val all : sem list
val name : sem -> string
val of_name : string -> sem option
val pp : Format.formatter -> sem -> unit

val compare : sem -> sem -> int

module Set : Set.S with type elt = sem
