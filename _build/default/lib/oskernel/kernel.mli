(** The simulated kernel: system-call dispatch, the software trap handler,
    and the monitor hook where the paper's 248-line kernel modification
    plugs in.

    The kernel exposes a single [monitor] slot invoked on every trap before
    dispatch. The authenticated-system-call checker ([Asc_core.Checker])
    registers here, as does the Systrace-style user-space baseline; a
    machine with no monitor runs unprotected, which is the paper's
    "original binaries" baseline. *)

type verdict =
  | Allow
  | Deny of string  (** process is terminated; reason is audited *)

type monitor = {
  monitor_name : string;
  pre_syscall : Process.t -> site:int -> number:int -> verdict;
      (** Called with the trap site (address of the [Sys] instruction) and
          raw trap number before dispatch. May read/write process memory
          (policy state updates) and charge cycles to the machine. *)
  post_syscall : Process.t -> site:int -> sem:Syscall.sem option -> result:int -> unit;
      (** Called after dispatch with the resolved operation and its result;
          used by capability tracking (§5.3) to observe returned file
          descriptors. *)
}

val no_post : Process.t -> site:int -> sem:Syscall.sem option -> result:int -> unit
(** A post hook that does nothing. *)

val compose_monitors : string -> monitor list -> monitor
(** Run pre hooks in order (first [Deny] wins) and all post hooks. *)

type trace_entry = {
  t_sem : Syscall.sem option;  (** [None] for unknown trap numbers *)
  t_number : int;
  t_site : int;
  t_args : int array;          (** r1..r6 at trap time *)
  t_result : int;
}

type t = {
  vfs : Vfs.t;
  pers : Personality.t;
  mutable next_pid : int;
  mutable monitor : monitor option;
  mutable tracing : bool;
  mutable trace : trace_entry list;  (** newest first; see {!trace} *)
  mutable audit : string list;       (** newest first *)
}

val create : ?personality:Personality.t -> unit -> t
(** Fresh kernel (default personality {!Personality.linux}) with an empty
    filesystem containing [/], [/tmp], [/etc], [/bin], [/dev]. *)

val set_monitor : t -> monitor option -> unit

val install_binary : t -> path:string -> Svm.Obj_file.t -> unit
(** Serialize a SEF image into the VFS so [execve] can load it. *)

val spawn :
  t -> ?stdin:string -> ?libs:Svm.Obj_file.t list -> program:string -> Svm.Obj_file.t ->
  Process.t
(** Create a process running the given image. [libs] are shared-library
    images mapped into the address space at their fixed (prelinked) bases;
    their sections must not overlap the program's or each other's.
    @raise Invalid_argument on a malformed image or an overlap. *)

val spawn_path : t -> ?stdin:string -> string -> (Process.t, string) result
(** Load and spawn the SEF binary installed at a VFS path. *)

val run : t -> Process.t -> max_cycles:int -> Svm.Machine.stop
(** Run the process to completion (exit, fault, kill or cycle budget). *)

val trace : t -> trace_entry list
(** Completed trace, oldest first. *)

val clear_trace : t -> unit

val audit_log : t -> string list
(** Audit entries, oldest first. *)

val stdout_of : Process.t -> string
val stderr_of : Process.t -> string
