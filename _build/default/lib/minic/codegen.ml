open Ast

exception Gen_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Gen_error m)) fmt

type var_loc =
  | Local of int * var_type   (* fp-relative offset (positive), type *)
  | Global of string * var_type

type env = {
  buf : Buffer.t;
  mutable label_counter : int;
  strings : (string, string) Hashtbl.t;  (* literal -> label *)
  mutable string_counter : int;
  mutable vars : (string * var_loc) list; (* current function scope *)
  globals : (string, var_type) Hashtbl.t;
  mutable break_labels : string list;
  mutable continue_labels : string list;
}

let emit env fmt = Format.kasprintf (fun s -> Buffer.add_string env.buf ("        " ^ s ^ "\n")) fmt
let emit_label env l = Buffer.add_string env.buf (l ^ ":\n")

let fresh_label env prefix =
  let n = env.label_counter in
  env.label_counter <- n + 1;
  Printf.sprintf "L%s_%d" prefix n

let intern_string env s =
  match Hashtbl.find_opt env.strings s with
  | Some l -> l
  | None ->
    let l = Printf.sprintf "str_%d" env.string_counter in
    env.string_counter <- env.string_counter + 1;
    Hashtbl.replace env.strings s l;
    l

let lookup env x =
  match List.assoc_opt x env.vars with
  | Some loc -> loc
  | None ->
    (match Hashtbl.find_opt env.globals x with
     | Some t -> Global (x, t)
     | None -> fail "undeclared variable %s" x)

let scale_of = function
  | T_char_arr _ | T_char_ptr -> 1
  | T_int_arr _ | T_int -> 8

let is_byte t = scale_of t = 1

(* Address of the array/pointed-to data for variable [x] into r15. For
   declared arrays this is the storage address; for scalars (pointers) it is
   the *value* of the variable. *)
let base_into_r15 env x =
  match lookup env x with
  | Local (off, (T_int_arr _ | T_char_arr _)) -> emit env "addi r15, r12, -%d" off
  | Local (off, (T_int | T_char_ptr)) -> emit env "ld r15, [r12-%d]" off
  | Global (l, (T_int_arr _ | T_char_arr _)) -> emit env "movi r15, %s" l
  | Global (l, (T_int | T_char_ptr)) ->
    emit env "movi r15, %s" l;
    emit env "ld r15, [r15+0]"

let elem_type env x =
  match lookup env x with
  | Local (_, t) | Global (_, t) -> t

let rec gen_expr env (e : expr) =
  match e with
  | Int v -> emit env "movi r1, %d" v
  | Chr c -> emit env "movi r1, %d" (Char.code c)
  | Str s -> emit env "movi r1, %s" (intern_string env s)
  | Var x ->
    (match lookup env x with
     | Local (off, (T_int | T_char_ptr)) -> emit env "ld r1, [r12-%d]" off
     | Local (off, (T_int_arr _ | T_char_arr _)) -> emit env "addi r1, r12, -%d" off
     | Global (l, (T_int | T_char_ptr)) ->
       emit env "movi r15, %s" l;
       emit env "ld r1, [r15+0]"
     | Global (l, (T_int_arr _ | T_char_arr _)) -> emit env "movi r1, %s" l)
  | Addr x ->
    (match lookup env x with
     | Local (off, _) -> emit env "addi r1, r12, -%d" off
     | Global (l, _) -> emit env "movi r1, %s" l)
  | Index (x, idx) ->
    gen_expr env idx;
    emit env "push r1";
    base_into_r15 env x;
    emit env "pop r1";
    let t = elem_type env x in
    if not (is_byte t) then begin
      emit env "movi r2, 3";
      emit env "shl r1, r1, r2"
    end;
    emit env "add r15, r15, r1";
    if is_byte t then emit env "ldb r1, [r15+0]" else emit env "ld r1, [r15+0]"
  | Unop (Neg, e) ->
    gen_expr env e;
    emit env "movi r2, 0";
    emit env "sub r1, r2, r1"
  | Unop (Not, e) ->
    gen_expr env e;
    emit env "movi r2, 0";
    emit env "seq r1, r1, r2"
  | Unop (BNot, e) ->
    gen_expr env e;
    emit env "movi r2, -1";
    emit env "xor r1, r1, r2"
  | Binop (LAnd, a, b) ->
    let l_false = fresh_label env "and_f" and l_end = fresh_label env "and_e" in
    gen_expr env a;
    emit env "movi r2, 0";
    emit env "beq r1, r2, %s" l_false;
    gen_expr env b;
    emit env "movi r2, 0";
    emit env "sne r1, r1, r2";
    emit env "jmp %s" l_end;
    emit_label env l_false;
    emit env "movi r1, 0";
    emit_label env l_end
  | Binop (LOr, a, b) ->
    let l_true = fresh_label env "or_t" and l_end = fresh_label env "or_e" in
    gen_expr env a;
    emit env "movi r2, 0";
    emit env "bne r1, r2, %s" l_true;
    gen_expr env b;
    emit env "movi r2, 0";
    emit env "sne r1, r1, r2";
    emit env "jmp %s" l_end;
    emit_label env l_true;
    emit env "movi r1, 1";
    emit_label env l_end
  | Binop (op, a, b) ->
    gen_expr env a;
    emit env "push r1";
    gen_expr env b;
    emit env "mov r2, r1";
    emit env "pop r1";
    (match op with
     | Add -> emit env "add r1, r1, r2"
     | Sub -> emit env "sub r1, r1, r2"
     | Mul -> emit env "mul r1, r1, r2"
     | Div -> emit env "div r1, r1, r2"
     | Mod -> emit env "mod r1, r1, r2"
     | And -> emit env "and r1, r1, r2"
     | Or -> emit env "or r1, r1, r2"
     | Xor -> emit env "xor r1, r1, r2"
     | Shl -> emit env "shl r1, r1, r2"
     | Shr -> emit env "shr r1, r1, r2"
     | Eq -> emit env "seq r1, r1, r2"
     | Ne -> emit env "sne r1, r1, r2"
     | Lt -> emit env "slt r1, r1, r2"
     | Le -> emit env "sle r1, r1, r2"
     | Gt -> emit env "slt r1, r2, r1"
     | Ge -> emit env "sle r1, r2, r1"
     | LAnd | LOr -> assert false)
  | Call (f, args) ->
    let n = List.length args in
    if n > 6 then fail "%s: more than 6 arguments" f;
    (* literal arguments load directly into their registers (after the
       spill/fill of computed ones), the way real compilers materialize
       constants — this is what lets the installer's reaching-definitions
       analysis see constant syscall arguments *)
    let is_literal = function Int _ | Chr _ | Str _ -> true | _ -> false in
    let indexed = List.mapi (fun i a -> (i + 1, a)) args in
    let computed = List.filter (fun (_, a) -> not (is_literal a)) indexed in
    List.iter
      (fun (_, a) ->
        gen_expr env a;
        emit env "push r1")
      computed;
    List.iter (fun (i, _) -> emit env "pop r%d" i) (List.rev computed);
    List.iter
      (fun (i, a) ->
        match a with
        | Int v -> emit env "movi r%d, %d" i v
        | Chr c -> emit env "movi r%d, %d" i (Char.code c)
        | Str s -> emit env "movi r%d, %s" i (intern_string env s)
        | _ -> ())
      (List.filter (fun (_, a) -> is_literal a) indexed);
    emit env "call %s" f;
    emit env "mov r1, r0"
  | Assign (LVar x, rhs) ->
    gen_expr env rhs;
    (match lookup env x with
     | Local (off, (T_int | T_char_ptr)) -> emit env "st [r12-%d], r1" off
     | Global (l, (T_int | T_char_ptr)) ->
       emit env "movi r15, %s" l;
       emit env "st [r15+0], r1"
     | Local (_, (T_int_arr _ | T_char_arr _)) | Global (_, (T_int_arr _ | T_char_arr _)) ->
       fail "cannot assign to array %s" x)
  | Assign (LIndex (x, idx), rhs) ->
    gen_expr env rhs;
    emit env "push r1";
    gen_expr env idx;
    emit env "push r1";
    base_into_r15 env x;
    emit env "pop r1";
    let t = elem_type env x in
    if not (is_byte t) then begin
      emit env "movi r2, 3";
      emit env "shl r1, r1, r2"
    end;
    emit env "add r15, r15, r1";
    emit env "pop r1";
    if is_byte t then emit env "stb [r15+0], r1" else emit env "st [r15+0], r1"

let gen_cond env cond l_false =
  gen_expr env cond;
  emit env "movi r2, 0";
  emit env "beq r1, r2, %s" l_false

let rec gen_stmt env (s : stmt) =
  match s with
  | Block stmts -> List.iter (gen_stmt env) stmts
  | Expr e -> gen_expr env e
  | Decl (_, x, init) ->
    (match init with
     | None -> ()
     | Some e -> gen_expr env (Assign (LVar x, e)))
  | If (cond, then_, else_) ->
    let l_else = fresh_label env "else" and l_end = fresh_label env "fi" in
    gen_cond env cond l_else;
    List.iter (gen_stmt env) then_;
    emit env "jmp %s" l_end;
    emit_label env l_else;
    List.iter (gen_stmt env) else_;
    emit_label env l_end
  | While (cond, body) ->
    let l_top = fresh_label env "wh" and l_end = fresh_label env "od" in
    env.break_labels <- l_end :: env.break_labels;
    env.continue_labels <- l_top :: env.continue_labels;
    emit_label env l_top;
    gen_cond env cond l_end;
    List.iter (gen_stmt env) body;
    emit env "jmp %s" l_top;
    emit_label env l_end;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels <- List.tl env.continue_labels
  | For (init, cond, step, body) ->
    let l_top = fresh_label env "for" in
    let l_step = fresh_label env "fstep" in
    let l_end = fresh_label env "rof" in
    Option.iter (fun e -> gen_expr env e) init;
    env.break_labels <- l_end :: env.break_labels;
    env.continue_labels <- l_step :: env.continue_labels;
    emit_label env l_top;
    Option.iter (fun c -> gen_cond env c l_end) cond;
    List.iter (gen_stmt env) body;
    emit_label env l_step;
    Option.iter (fun e -> gen_expr env e) step;
    emit env "jmp %s" l_top;
    emit_label env l_end;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels <- List.tl env.continue_labels
  | Return e ->
    (match e with
     | Some e ->
       gen_expr env e;
       emit env "mov r0, r1"
     | None -> emit env "movi r0, 0");
    emit env "mov r13, r12";
    emit env "pop r12";
    emit env "ret"
  | Break ->
    (match env.break_labels with
     | l :: _ -> emit env "jmp %s" l
     | [] -> fail "break outside loop")
  | Continue ->
    (match env.continue_labels with
     | l :: _ -> emit env "jmp %s" l
     | [] -> fail "continue outside loop")

(* collect every declaration in a function body (flat namespace) *)
let rec collect_decls acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Decl (t, x, _) ->
        if List.mem_assoc x acc then fail "duplicate local %s" x else (x, t) :: acc
      | Block b -> collect_decls acc b
      | If (_, a, b) -> collect_decls (collect_decls acc a) b
      | While (_, b) -> collect_decls acc b
      | For (_, _, _, b) -> collect_decls acc b
      | Expr _ | Return _ | Break | Continue -> acc)
    acc stmts

let size_of = function
  | T_int | T_char_ptr -> 8
  | T_int_arr n -> 8 * n
  | T_char_arr n -> (n + 7) / 8 * 8

let gen_func env (f : func) =
  if List.length f.f_params > 6 then fail "%s: more than 6 parameters" f.f_name;
  (* layout: params first, then locals *)
  let decls = List.rev (collect_decls [] f.f_body) in
  let vars = ref [] in
  let cursor = ref 0 in
  let place (x, t) =
    cursor := !cursor + size_of t;
    vars := (x, Local (!cursor, t)) :: !vars
  in
  List.iter (fun (t, x) -> place (x, t)) f.f_params;
  List.iter place decls;
  let frame = (!cursor + 7) / 8 * 8 in
  env.vars <- !vars;
  emit_label env f.f_name;
  emit env "push r12";
  emit env "mov r12, r13";
  if frame > 0 then emit env "addi r13, r13, -%d" frame;
  List.iteri
    (fun i (_, x) ->
      match List.assoc x !vars with
      | Local (off, _) -> emit env "st [r12-%d], r%d" off (i + 1)
      | Global _ -> assert false)
    f.f_params;
  List.iter (gen_stmt env) f.f_body;
  (* default return 0 *)
  emit env "movi r0, 0";
  emit env "mov r13, r12";
  emit env "pop r12";
  emit env "ret";
  env.vars <- []

let const_init env (g : global) =
  match g.g_init with
  | None -> None
  | Some (Int v) -> Some (`Int v)
  | Some (Str s) -> Some (`Str (intern_string env s))
  | Some (Chr c) -> Some (`Int (Char.code c))
  | Some _ -> fail "global %s: initializer must be a literal" g.g_name

let compile (p : program) =
  try
    let env =
      { buf = Buffer.create 4096;
        label_counter = 0;
        strings = Hashtbl.create 32;
        string_counter = 0;
        vars = [];
        globals = Hashtbl.create 32;
        break_labels = [];
        continue_labels = [] }
    in
    List.iter (fun g -> Hashtbl.replace env.globals g.g_name g.g_type) p.globals;
    Buffer.add_string env.buf "        .text\n";
    List.iter (gen_func env) p.funcs;
    (* globals with initializers in .data, zeroed ones in .bss *)
    let inits = List.map (fun g -> (g, const_init env g)) p.globals in
    Buffer.add_string env.buf "        .data\n";
    List.iter
      (fun ((g : global), init) ->
        match init with
        | Some (`Int v) -> Buffer.add_string env.buf (Printf.sprintf "%s: .word %d\n" g.g_name v)
        | Some (`Str l) -> Buffer.add_string env.buf (Printf.sprintf "%s: .addr %s\n" g.g_name l)
        | None -> ())
      inits;
    Buffer.add_string env.buf "        .bss\n";
    List.iter
      (fun ((g : global), init) ->
        if init = None then
          Buffer.add_string env.buf
            (Printf.sprintf "%s: .space %d\n" g.g_name (size_of g.g_type)))
      inits;
    (* string literals *)
    Buffer.add_string env.buf "        .rodata\n";
    let strs = Hashtbl.fold (fun s l acc -> (l, s) :: acc) env.strings [] in
    List.iter
      (fun (l, s) ->
        let escaped =
          String.concat ""
            (List.map
               (fun c ->
                 match c with
                 | '\n' -> "\\n"
                 | '\t' -> "\\t"
                 | '\000' -> "\\0"
                 | '"' -> "\\\""
                 | '\\' -> "\\\\"
                 | c -> String.make 1 c)
               (List.init (String.length s) (String.get s)))
        in
        Buffer.add_string env.buf (Printf.sprintf "%s: .asciz \"%s\"\n" l escaped))
      (List.sort compare strs);
    Ok (Buffer.contents env.buf)
  with Gen_error m -> Error m
