(** Recursive-descent parser for MiniC.

    Grammar sketch:
    {v
    program  := (global | func)*
    global   := type ident ('[' INT ']')? ('=' const)? ';'
    func     := ('int'|'char' '*') ident '(' params ')' '{' stmt* '}'
    stmt     := decl | if | while | for | return | break | continue
              | expr ';' | '{' stmt* '}'
    expr     := assignment with C-like precedence, short-circuit && and ||
    v} *)

val parse : string -> (Ast.program, string) result
