let entry_glue =
  {|        .text
_start: call __os_init
        call main
        mov r1, r0
        call exit
        halt
|}

let assembly ~personality src =
  match Parser.parse (Libc.prelude ^ "\n" ^ src) with
  | Error e -> Error ("parse error: " ^ e)
  | Ok ast ->
    (match Codegen.compile ast with
     | Error e -> Error ("codegen error: " ^ e)
     | Ok program_asm ->
       Ok
         (entry_glue ^ program_asm ^ Libc.os_init_asm personality
          ^ Libc.stubs_asm personality))

let compile ?(libs = []) ~personality src =
  match assembly ~personality src with
  | Error e -> Error e
  | Ok asm ->
    (match Svm.Asm.assemble ~externals:libs asm with
     | Ok img -> Ok img
     | Error e -> Error (Format.asprintf "assembly error: %a" Svm.Asm.pp_error e))

let compile_exn ?libs ~personality src =
  match compile ?libs ~personality src with
  | Ok img -> img
  | Error e -> failwith e

(* A library has no entry glue; it is entered only through its exported
   functions. The assembler still needs an entry symbol, so the library's
   first function serves (the value is unused at run time). *)
let compile_library ~personality ~base src =
  match Parser.parse (Libc.prelude ^ "\n" ^ src) with
  | Error e -> Error ("parse error: " ^ e)
  | Ok ast ->
    (match ast.Ast.funcs with
     | [] -> Error "library has no functions"
     | first :: _ ->
       (match Codegen.compile ast with
        | Error e -> Error ("codegen error: " ^ e)
        | Ok program_asm ->
          let asm = program_asm ^ Libc.stubs_asm personality in
          (match Svm.Asm.assemble ~text_base:base ~entry:first.Ast.f_name asm with
           | Ok img -> Ok img
           | Error e -> Error (Format.asprintf "assembly error: %a" Svm.Asm.pp_error e))))

let exports (img : Svm.Obj_file.t) ~prefix_blacklist =
  let text = Svm.Obj_file.text_section img in
  let in_text a = a >= text.Svm.Obj_file.sec_addr
                  && a < text.Svm.Obj_file.sec_addr + text.Svm.Obj_file.sec_size in
  List.filter_map
    (fun (sym : Svm.Obj_file.symbol) ->
      let hidden =
        List.exists
          (fun p ->
            String.length sym.sym_name >= String.length p
            && String.sub sym.sym_name 0 (String.length p) = p)
          prefix_blacklist
      in
      if in_text sym.sym_addr && not hidden then Some (sym.sym_name, sym.sym_addr) else None)
    img.Svm.Obj_file.symbols
