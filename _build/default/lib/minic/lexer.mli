(** Hand-rolled lexer for MiniC. *)

type token =
  | INT of int
  | CHAR of char
  | STRING of string
  | IDENT of string
  | KW of string     (** int, char, if, else, while, for, return, break, continue *)
  | PUNCT of string  (** operators and delimiters, longest-match *)
  | EOF

type t = { tok : token; line : int }

val tokenize : string -> (t list, string) result
(** Comments are [// ...] and [/* ... */]. Errors carry the line number. *)
