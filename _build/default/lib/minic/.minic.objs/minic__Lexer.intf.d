lib/minic/lexer.mli:
