lib/minic/codegen.ml: Ast Buffer Char Format Hashtbl List Option Printf String
