lib/minic/libc.ml: Buffer List Oskernel Personality Printf Syscall
