lib/minic/libc.mli: Oskernel
