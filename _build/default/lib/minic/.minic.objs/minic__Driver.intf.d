lib/minic/driver.mli: Oskernel Svm
