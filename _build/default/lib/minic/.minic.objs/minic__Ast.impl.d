lib/minic/ast.ml:
