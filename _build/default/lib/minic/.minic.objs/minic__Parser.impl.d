lib/minic/parser.ml: Ast Format Lexer List Printf
