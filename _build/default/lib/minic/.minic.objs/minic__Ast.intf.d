lib/minic/ast.mli:
