lib/minic/driver.ml: Ast Codegen Format Libc List Parser String Svm
