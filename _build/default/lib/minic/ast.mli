(** Abstract syntax of MiniC, the small C-like language used to write the
    benchmark workloads.

    MiniC is deliberately C-shaped so the compiled binaries have the
    structure the paper's installer expects: word-sized [int]s, byte
    buffers on the stack (overflowable — the attack experiments depend on
    it), string literals in [.rodata], and system calls made only through
    libc stubs. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr  (** short-circuit *)

type unop = Neg | Not | BNot

type expr =
  | Int of int
  | Chr of char
  | Str of string            (** address of a NUL-terminated rodata literal *)
  | Var of string
  | Index of string * expr   (** array/pointer indexing; scale from type *)
  | Addr of string           (** &var / bare array name: address *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Assign of lvalue * expr

and lvalue =
  | LVar of string
  | LIndex of string * expr

type var_type =
  | T_int        (** 64-bit word *)
  | T_char_ptr   (** word holding a byte address; indexing scales by 1 *)
  | T_int_arr of int
  | T_char_arr of int

type stmt =
  | Block of stmt list
  | Expr of expr
  | Decl of var_type * string * expr option
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of expr option * expr option * expr option * stmt list
  | Return of expr option
  | Break
  | Continue

type func = {
  f_name : string;
  f_params : (var_type * string) list;  (** scalars only: T_int / T_char_ptr *)
  f_body : stmt list;
}

type global = {
  g_type : var_type;
  g_name : string;
  g_init : expr option;  (** constant [Int] or [Str] only *)
}

type program = {
  globals : global list;
  funcs : func list;
}
