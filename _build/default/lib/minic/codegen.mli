(** MiniC → SVM assembly.

    Conventions (shared with the libc stubs and the ASC installer):
    - arguments and results: args in r1–r6, result in r0;
    - r12 is the frame pointer, r13 the stack pointer;
    - expression evaluation uses r1/r2/r15 only, spilling via the stack;
    - r7–r11 and r14 are never live across a call or system call — they are
      the scratch registers the installer's inserted policy loads use.

    Stack frames grow buffers upward toward the saved frame pointer and
    return address, so out-of-bounds writes into a stack buffer can
    overwrite the return address (the attack experiments rely on this,
    mirroring the x86 layout the paper assumes). *)

val compile : Ast.program -> (string, string) result
(** Assembly text for the program's functions and globals (no entry glue,
    no libc — {!Driver} adds those). *)
