type token =
  | INT of int
  | CHAR of char
  | STRING of string
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type t = { tok : token; line : int }

let keywords = [ "int"; "char"; "if"; "else"; "while"; "for"; "return"; "break"; "continue" ]

(* longest first *)
let puncts =
  [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "<"; ">"; "=";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "!"; "~" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let error = ref None in
  let fail msg = error := Some (Printf.sprintf "line %d: %s" !line msg) in
  let escape c =
    match c with
    | 'n' -> Some '\n'
    | 't' -> Some '\t'
    | '0' -> Some '\000'
    | 'r' -> Some '\r'
    | '\\' -> Some '\\'
    | '\'' -> Some '\''
    | '"' -> Some '"'
    | _ -> None
  in
  while !i < n && !error = None do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while !i + 1 < n && not !closed do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail "unterminated comment"
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X') then begin
        i := !i + 2;
        while !i < n && (is_digit src.[!i] || (Char.lowercase_ascii src.[!i] >= 'a' && Char.lowercase_ascii src.[!i] <= 'f')) do incr i done
      end
      else while !i < n && is_digit src.[!i] do incr i done;
      match int_of_string_opt (String.sub src start (!i - start)) with
      | Some v -> toks := { tok = INT v; line = !line } :: !toks
      | None -> fail "bad integer literal"
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && (is_alpha src.[!i] || is_digit src.[!i]) do incr i done;
      let word = String.sub src start (!i - start) in
      let tok = if List.mem word keywords then KW word else IDENT word in
      toks := { tok; line = !line } :: !toks
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while !i < n && not !closed && !error = None do
        if src.[!i] = '"' then begin closed := true; incr i end
        else if src.[!i] = '\\' && !i + 1 < n then begin
          (match escape src.[!i + 1] with
           | Some e -> Buffer.add_char buf e
           | None -> fail "bad escape in string");
          i := !i + 2
        end
        else begin
          if src.[!i] = '\n' then incr line;
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed && !error = None then fail "unterminated string";
      toks := { tok = STRING (Buffer.contents buf); line = !line } :: !toks
    end
    else if c = '\'' then begin
      if !i + 2 < n && src.[!i + 1] = '\\' then begin
        match escape src.[!i + 2] with
        | Some e when !i + 3 < n && src.[!i + 3] = '\'' ->
          toks := { tok = CHAR e; line = !line } :: !toks;
          i := !i + 4
        | Some _ | None -> fail "bad character literal"
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then begin
        toks := { tok = CHAR src.[!i + 1]; line = !line } :: !toks;
        i := !i + 3
      end
      else fail "bad character literal"
    end
    else begin
      match
        List.find_opt
          (fun p ->
            let lp = String.length p in
            !i + lp <= n && String.sub src !i lp = p)
          puncts
      with
      | Some p ->
        toks := { tok = PUNCT p; line = !line } :: !toks;
        i := !i + String.length p
      | None -> fail (Printf.sprintf "unexpected character %C" c)
    end
  done;
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev ({ tok = EOF; line = !line } :: !toks))
