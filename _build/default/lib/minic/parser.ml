open Ast

exception Parse_error of string

type state = { mutable toks : Lexer.t list }

let fail (st : state) fmt =
  let line = match st.toks with { line; _ } :: _ -> line | [] -> 0 in
  Format.kasprintf (fun m -> raise (Parse_error (Printf.sprintf "line %d: %s" line m))) fmt

let peek st = match st.toks with t :: _ -> t.Lexer.tok | [] -> Lexer.EOF

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let eat_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p -> advance st
  | _ -> fail st "expected %S" p

let ident st =
  match peek st with
  | Lexer.IDENT x ->
    advance st;
    x
  | _ -> fail st "expected identifier"

let is_punct st p = peek st = Lexer.PUNCT p
let is_kw st k = peek st = Lexer.KW k

(* ---- expressions: precedence climbing ---- *)

let binop_of = function
  | "*" -> Some (Mul, 10) | "/" -> Some (Div, 10) | "%" -> Some (Mod, 10)
  | "+" -> Some (Add, 9) | "-" -> Some (Sub, 9)
  | "<<" -> Some (Shl, 8) | ">>" -> Some (Shr, 8)
  | "<" -> Some (Lt, 7) | "<=" -> Some (Le, 7) | ">" -> Some (Gt, 7) | ">=" -> Some (Ge, 7)
  | "==" -> Some (Eq, 6) | "!=" -> Some (Ne, 6)
  | "&" -> Some (And, 5)
  | "^" -> Some (Xor, 4)
  | "|" -> Some (Or, 3)
  | "&&" -> Some (LAnd, 2)
  | "||" -> Some (LOr, 1)
  | _ -> None

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_binary st 1 in
  if is_punct st "=" then begin
    advance st;
    let rhs = parse_assign st in
    match lhs with
    | Var x -> Assign (LVar x, rhs)
    | Index (x, e) -> Assign (LIndex (x, e), rhs)
    | _ -> fail st "invalid assignment target"
  end
  else lhs

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PUNCT p ->
      (match binop_of p with
       | Some (op, prec) when prec >= min_prec ->
         advance st;
         let rhs = parse_binary st (prec + 1) in
         lhs := Binop (op, !lhs, rhs)
       | Some _ | None -> continue := false)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    Unop (Neg, parse_unary st)
  | Lexer.PUNCT "!" ->
    advance st;
    Unop (Not, parse_unary st)
  | Lexer.PUNCT "~" ->
    advance st;
    Unop (BNot, parse_unary st)
  | Lexer.PUNCT "&" ->
    advance st;
    Addr (ident st)
  | _ -> parse_postfix st

and parse_postfix st =
  match peek st with
  | Lexer.INT v ->
    advance st;
    Int v
  | Lexer.CHAR c ->
    advance st;
    Chr c
  | Lexer.STRING s ->
    advance st;
    Str s
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    eat_punct st ")";
    e
  | Lexer.IDENT x ->
    advance st;
    if is_punct st "(" then begin
      advance st;
      let args = ref [] in
      if not (is_punct st ")") then begin
        args := [ parse_expr st ];
        while is_punct st "," do
          advance st;
          args := parse_expr st :: !args
        done
      end;
      eat_punct st ")";
      Call (x, List.rev !args)
    end
    else if is_punct st "[" then begin
      advance st;
      let e = parse_expr st in
      eat_punct st "]";
      Index (x, e)
    end
    else Var x
  | _ -> fail st "expected expression"

(* ---- statements ---- *)

let parse_var_type st =
  if is_kw st "int" then begin
    advance st;
    `Int
  end
  else if is_kw st "char" then begin
    advance st;
    if is_punct st "*" then begin
      advance st;
      `Char_ptr
    end
    else `Char
  end
  else fail st "expected type"

let rec parse_stmt st =
  if is_punct st "{" then begin
    advance st;
    let stmts = ref [] in
    while not (is_punct st "}") do
      stmts := parse_stmt st :: !stmts
    done;
    advance st;
    Block (List.rev !stmts)
  end
  else if is_kw st "int" || is_kw st "char" then begin
    let base = parse_var_type st in
    let name = ident st in
    let vt =
      if is_punct st "[" then begin
        advance st;
        let size = match peek st with
          | Lexer.INT v -> advance st; v
          | _ -> fail st "array size must be a literal"
        in
        eat_punct st "]";
        match base with
        | `Int -> T_int_arr size
        | `Char -> T_char_arr size
        | `Char_ptr -> fail st "array of pointers not supported"
      end
      else
        match base with
        | `Int -> T_int
        | `Char_ptr -> T_char_ptr
        | `Char -> fail st "plain char variables not supported; use int or char[]"
    in
    let init =
      if is_punct st "=" then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    eat_punct st ";";
    Decl (vt, name, init)
  end
  else if is_kw st "if" then begin
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    let then_ = parse_block_or_stmt st in
    let else_ =
      if is_kw st "else" then begin
        advance st;
        parse_block_or_stmt st
      end
      else []
    in
    If (cond, then_, else_)
  end
  else if is_kw st "while" then begin
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    While (cond, parse_block_or_stmt st)
  end
  else if is_kw st "for" then begin
    advance st;
    eat_punct st "(";
    let init = if is_punct st ";" then None else Some (parse_expr st) in
    eat_punct st ";";
    let cond = if is_punct st ";" then None else Some (parse_expr st) in
    eat_punct st ";";
    let step = if is_punct st ")" then None else Some (parse_expr st) in
    eat_punct st ")";
    For (init, cond, step, parse_block_or_stmt st)
  end
  else if is_kw st "return" then begin
    advance st;
    let e = if is_punct st ";" then None else Some (parse_expr st) in
    eat_punct st ";";
    Return e
  end
  else if is_kw st "break" then begin
    advance st;
    eat_punct st ";";
    Break
  end
  else if is_kw st "continue" then begin
    advance st;
    eat_punct st ";";
    Continue
  end
  else begin
    let e = parse_expr st in
    eat_punct st ";";
    Expr e
  end

and parse_block_or_stmt st =
  if is_punct st "{" then begin
    advance st;
    let stmts = ref [] in
    while not (is_punct st "}") do
      stmts := parse_stmt st :: !stmts
    done;
    advance st;
    List.rev !stmts
  end
  else [ parse_stmt st ]

(* ---- top level ---- *)

let parse_program st =
  let globals = ref [] in
  let funcs = ref [] in
  while peek st <> Lexer.EOF do
    let base = parse_var_type st in
    let name = ident st in
    if is_punct st "(" then begin
      advance st;
      let params = ref [] in
      if not (is_punct st ")") then begin
        let param () =
          let pt = parse_var_type st in
          let pname = ident st in
          let vt =
            match pt with
            | `Int -> T_int
            | `Char_ptr -> T_char_ptr
            | `Char -> fail st "plain char parameters not supported"
          in
          (vt, pname)
        in
        params := [ param () ];
        while is_punct st "," do
          advance st;
          params := param () :: !params
        done
      end;
      eat_punct st ")";
      eat_punct st "{";
      let body = ref [] in
      while not (is_punct st "}") do
        body := parse_stmt st :: !body
      done;
      advance st;
      funcs := { f_name = name; f_params = List.rev !params; f_body = List.rev !body } :: !funcs
    end
    else begin
      let vt =
        if is_punct st "[" then begin
          advance st;
          let size =
            match peek st with
            | Lexer.INT v -> advance st; v
            | _ -> fail st "array size must be a literal"
          in
          eat_punct st "]";
          match base with
          | `Int -> T_int_arr size
          | `Char -> T_char_arr size
          | `Char_ptr -> fail st "array of pointers not supported"
        end
        else
          match base with
          | `Int -> T_int
          | `Char_ptr -> T_char_ptr
          | `Char -> fail st "plain char globals not supported"
      in
      let init =
        if is_punct st "=" then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      eat_punct st ";";
      globals := { g_type = vt; g_name = name; g_init = init } :: !globals
    end
  done;
  { globals = List.rev !globals; funcs = List.rev !funcs }

let parse src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks ->
    let st = { toks } in
    (try Ok (parse_program st) with Parse_error m -> Error m)
