(** End-to-end MiniC compilation: source → relocatable SEF binary.

    Links, in order: entry glue ([_start] calls the per-OS [__os_init],
    then [main], then [exit] with main's result), the user program compiled
    together with the MiniC prelude, and the personality's libc stubs.
    Unused stubs are removed later by the installer's dead-code
    elimination, so a program's policy only names the system calls it can
    actually reach. *)

val compile :
  ?libs:(string * int) list ->
  personality:Oskernel.Personality.t ->
  string ->
  (Svm.Obj_file.t, string) result
(** Compile MiniC source text. [libs] is an import table (function name →
    absolute address, typically a shared library's {!exports}): calls to
    otherwise-undefined functions resolve against it. *)

val compile_exn :
  ?libs:(string * int) list -> personality:Oskernel.Personality.t -> string -> Svm.Obj_file.t
(** @raise Failure with the diagnostic. *)

val compile_library :
  personality:Oskernel.Personality.t ->
  base:int ->
  string ->
  (Svm.Obj_file.t, string) result
(** Compile MiniC source as a shared library placed at the fixed code base
    [base] (our equivalent of a prelinked shared object: call sites have
    known addresses, which the §5.2 installer needs to protect them). The
    library is self-contained — it carries its own copies of the prelude
    and the libc syscall stubs — and has no [_start]; its entry point is
    its first function. *)

val exports : Svm.Obj_file.t -> prefix_blacklist:string list -> (string * int) list
(** The importable symbols of a library image: text symbols except internal
    ones (labels starting with a blacklisted prefix, e.g. ["str_"; "L"]
    and the libc stubs are kept — callers may want them resolved from the
    library too). *)

val assembly :
  personality:Oskernel.Personality.t ->
  string ->
  (string, string) result
(** The full linked assembly text (for inspection and tests). *)
