open Oskernel

let plain_stub name number = Printf.sprintf "%s: movi r0, %d\n        sys\n        ret\n" name number

(* OpenBSD mmap: shift the six user arguments up one register, pass the real
   syscall number (197) as the first argument of __syscall (198). Only five
   user arguments survive the shift; mmap's offset argument is dropped, as
   the simulated kernel ignores it. *)
let openbsd_mmap_stub ~indirect_number ~mmap_number =
  Printf.sprintf
    {|mmap:   mov r6, r5
        mov r5, r4
        mov r4, r3
        mov r3, r2
        mov r2, r1
        movi r1, %d
        movi r0, %d
        sys
        ret
|}
    mmap_number indirect_number

(* OpenBSD close: the sys instruction lives at a misaligned address reached
   through a computed jump. The 8-byte-aligned disassembler sees junk at
   +24 (opaque block) and never sees the sys at +28, so `close` is missing
   from statically generated policies — Table 2's close row. The code is
   perfectly executable: jr lands at +28 where a valid SYS encoding starts,
   followed by RET at +36. *)
let openbsd_close_stub number =
  Printf.sprintf
    {|close:  movi r0, %d
        movi r15, close+28
        jr r15
        .byte 0xff,0xff,0xff,0xff
        .byte 0x37,0,0,0,0,0,0,0
        .byte 0x34,0,0,0,0,0,0,0
        .byte 0,0,0,0
|}
    number

let stubs_asm pers =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "        .text\n";
  let is_openbsd = Personality.number_of pers Syscall.Indirect <> None in
  List.iter
    (fun sem ->
      match Personality.number_of pers sem with
      | None -> ()
      | Some n ->
        (match sem with
         | Syscall.Indirect -> () (* not exposed as a stub *)
         | Syscall.Close when is_openbsd -> Buffer.add_string buf (openbsd_close_stub n)
         | _ -> Buffer.add_string buf (plain_stub (Syscall.name sem) n)))
    Syscall.all;
  if is_openbsd then begin
    match
      ( Personality.number_of pers Syscall.Indirect,
        Personality.indirect_target pers 197 )
    with
    | Some ind, Some Syscall.Mmap ->
      Buffer.add_string buf (openbsd_mmap_stub ~indirect_number:ind ~mmap_number:197)
    | _ -> ()
  end;
  Buffer.contents buf

let os_init_asm pers =
  let is_openbsd = Personality.number_of pers Syscall.Indirect <> None in
  if is_openbsd then
    {|        .text
__os_init:
        call issetugid
        movi r1, __ctl_buf
        movi r2, 2
        movi r3, __ctl_buf
        movi r4, 8
        movi r5, 0
        movi r6, 0
        call sysctl
        movi r1, 0
        call brk
        ret
        .bss
__ctl_buf: .space 64
|}
  else
    {|        .text
__os_init:
        movi r1, 0
        call brk
        movi r1, __uts_buf
        call uname
        ret
        .bss
__uts_buf: .space 64
|}

let prelude =
  {|
int strlen(char *s) { int n = 0; while (s[n] != 0) { n = n + 1; } return n; }

int strcpy(char *d, char *s) {
  int i = 0;
  while (s[i] != 0) { d[i] = s[i]; i = i + 1; }
  d[i] = 0;
  return i;
}

int strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] != 0 && a[i] == b[i]) { i = i + 1; }
  return a[i] - b[i];
}

int memset(char *p, int c, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { p[i] = c; }
  return 0;
}

int memcpy(char *d, char *s, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { d[i] = s[i]; }
  return 0;
}

int puts_str(char *s) { return write(1, s, strlen(s)); }

int print_int(int v) {
  char tmp[32];
  int i = 31;
  int neg = 0;
  if (v < 0) { neg = 1; v = 0 - v; }
  if (v == 0) { i = i - 1; tmp[i] = '0'; }
  while (v > 0) { i = i - 1; tmp[i] = '0' + v % 10; v = v / 10; }
  if (neg) { i = i - 1; tmp[i] = '-'; }
  return write(1, tmp + i, 31 - i);
}

int atoi(char *s) {
  int v = 0;
  int i = 0;
  int neg = 0;
  if (s[0] == '-') { neg = 1; i = 1; }
  while (s[i] >= '0' && s[i] <= '9') { v = v * 10 + (s[i] - '0'); i = i + 1; }
  if (neg) { return 0 - v; }
  return v;
}

/* deliberately unbounded, like gets(3): the attack experiments overflow
   stack buffers through this */
int read_line(int fd, char *buf) {
  int i = 0;
  char c[8];
  while (read(fd, c, 1) == 1) {
    if (c[0] == '\n') { break; }
    buf[i] = c[0];
    i = i + 1;
  }
  buf[i] = 0;
  return i;
}

/* buffered "argv": one read, then parse fields in memory */
int read_args(char *buf, int maxn) {
  int n = read(0, buf, maxn);
  if (n < 0) { n = 0; }
  buf[n] = 0;
  return n;
}

int arg_field(char *args, int idx, char *out) {
  int i = 0;
  int field = 0;
  while (field < idx && args[i] != 0) {
    if (args[i] == '\n') { field = field + 1; }
    i = i + 1;
  }
  int o = 0;
  while (args[i] != 0 && args[i] != '\n') { out[o] = args[i]; i = i + 1; o = o + 1; }
  out[o] = 0;
  return o;
}

int __heap_ptr;
int __heap_end;

int malloc(int n) {
  int p;
  if (__heap_ptr == 0) { __heap_ptr = brk(0); __heap_end = __heap_ptr; }
  n = (n + 7) / 8 * 8;
  if (__heap_ptr + n > __heap_end) { __heap_end = brk(__heap_ptr + n + 65536); }
  p = __heap_ptr;
  __heap_ptr = __heap_ptr + n;
  return p;
}

int free(int p) { return 0; }

int __seed = 123456789;

int srand(int s) { __seed = s; return 0; }

int rand() {
  __seed = (__seed * 1103515245 + 12345) % 2147483648;
  if (__seed < 0) { __seed = 0 - __seed; }
  return __seed;
}

int abs(int v) { if (v < 0) { return 0 - v; } return v; }
int min(int a, int b) { if (a < b) { return a; } return b; }
int max(int a, int b) { if (a > b) { return a; } return b; }
|}
