(** The MiniC C library.

    Two layers:
    - {!stubs_asm}: per-personality system-call stubs in assembly — one tiny
      [movi r0, N; sys; ret] function per syscall, exactly the stub shape
      the installer detects and inlines. The OpenBSD-like personality has
      two deliberate quirks from Table 2: [mmap] shifts its arguments and
      traps through the generic [__syscall] number, and [close] reaches its
      [sys] instruction through a misaligned computed jump that an aligned
      disassembler cannot decode (PLTO's "unusual implementation ... that
      PLTO currently cannot disassemble").
    - {!prelude}: portable helpers written in MiniC itself (strlen, strcpy,
      print_int, malloc over [brk], and the deliberately unbounded
      [read_line] — the buffer-overflow primitive the attack experiments
      exploit).

    {!os_init_asm} provides the per-OS startup shim ([__os_init]) whose
    extra system calls (glibc-style [brk]/[uname] vs. BSD-style
    [issetugid]/[sysctl]) make policies differ across operating systems as
    in Table 1. *)

val stubs_asm : Oskernel.Personality.t -> string
val os_init_asm : Oskernel.Personality.t -> string
val prelude : string
