let remove_unreachable ?roots t =
  let live = Cfg.reachable ?roots t in
  let before = List.length t.Ir.blocks in
  t.Ir.blocks <- List.filter (fun (b : Ir.block) -> Hashtbl.mem live b.bid) t.Ir.blocks;
  before - List.length t.Ir.blocks

let remove_nops t =
  let removed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let keep =
        List.filter
          (fun (i : Ir.tinstr) ->
            match i with
            | Ir.Plain Svm.Isa.Nop ->
              incr removed;
              false
            | Ir.Plain _ | Ir.Movi _ | Ir.Sys -> true)
          b.body
      in
      b.body <- keep)
    t.Ir.blocks;
  !removed
