open Svm

type layout = {
  block_addr : (int, int) Hashtbl.t;
  section_base : (string * int) list;
  data_shift : int -> int option;
}

let addr_of_instr layout ~bid ~idx = Hashtbl.find layout.block_addr bid + (idx * Isa.instr_size)
let base_of layout name = List.assoc name layout.section_base

let align_to a v = (v + a - 1) / a * a

let term_to_instr layout (term : Ir.term) =
  let addr bid = Hashtbl.find layout.block_addr bid in
  match term with
  | Ir.Fall -> None
  | Ir.Jump bid -> Some (Isa.Jmp (addr bid))
  | Ir.Branch (c, rs, rt, bid) -> Some (Isa.Br (c, rs, rt, addr bid))
  | Ir.CallT bid -> Some (Isa.Call (addr bid))
  | Ir.CallExt a -> Some (Isa.Call a)
  | Ir.CallInd r -> Some (Isa.Callr r)
  | Ir.JumpInd r -> Some (Isa.Jr r)
  | Ir.Return -> Some Isa.Ret
  | Ir.Stop -> Some Isa.Halt

let emit ?(extra_sections = []) ?(fill = fun _ -> []) (t : Ir.t) =
  let exception Fail of string in
  try
    (* keep the image's own code base: programs stay at Asm.text_base,
       shared libraries at their fixed per-library load address *)
    let out_base =
      match Obj_file.text_section t.Ir.source with
      | sec -> sec.Obj_file.sec_addr
      | exception Not_found -> Asm.text_base
    in
    List.iter
      (fun (b : Ir.block) ->
        if b.Ir.opaque <> None then
          raise (Fail (Printf.sprintf "block %d is opaque (undisassembled); cannot rewrite" b.bid)))
      t.Ir.blocks;
    (* 1. lay out code *)
    let block_addr = Hashtbl.create 64 in
    let text_size =
      List.fold_left
        (fun addr (b : Ir.block) ->
          Hashtbl.replace block_addr b.bid addr;
          addr + Ir.block_size b)
        out_base t.Ir.blocks
      - out_base
    in
    (* 2. lay out original data sections, then extra sections *)
    let data_sections =
      List.filter (fun (s : Obj_file.section) -> s.sec_kind <> Obj_file.Text) t.Ir.source.sections
    in
    let cursor = ref (align_to Asm.page_size (out_base + text_size)) in
    let moved =
      List.map
        (fun (s : Obj_file.section) ->
          let base = !cursor in
          cursor := align_to Asm.page_size (base + s.sec_size);
          (s, base))
        data_sections
    in
    let extras =
      List.map
        (fun (name, kind, size) ->
          let base = !cursor in
          cursor := align_to Asm.page_size (base + size);
          (name, kind, size, base))
        extra_sections
    in
    let section_base =
      ((".text", out_base) :: List.map (fun ((s : Obj_file.section), b) -> (s.sec_name, b)) moved)
      @ List.map (fun (n, _, _, b) -> (n, b)) extras
    in
    let data_shift addr =
      List.find_map
        (fun ((s : Obj_file.section), base) ->
          if addr >= s.sec_addr && addr < s.sec_addr + s.sec_size then
            Some (addr - s.sec_addr + base)
          else None)
        moved
    in
    let layout = { block_addr; section_base; data_shift } in
    (* map any original address (text block start or data) to its new home *)
    let orig_block_addr = Hashtbl.create 64 in
    List.iter
      (fun (b : Ir.block) ->
        match b.Ir.orig_addr with
        | Some a -> Hashtbl.replace orig_block_addr a (Hashtbl.find block_addr b.bid)
        | None -> ())
      t.Ir.blocks;
    let map_old_addr a what =
      match data_shift a with
      | Some a' -> a'
      | None ->
        (match Hashtbl.find_opt orig_block_addr a with
         | Some a' -> a'
         | None -> raise (Fail (Printf.sprintf "%s: cannot relocate address 0x%x" what a)))
    in
    (* 3. encode text *)
    let text = Bytes.make text_size '\000' in
    let relocs = ref [] in
    let add_reloc at = relocs := { Obj_file.rel_at = at } :: !relocs in
    let resolve_simm = function
      | Ir.Const v -> (v, false)
      | Ir.DataRef a ->
        (match data_shift a with
         | Some a' -> (a', true)
         | None -> raise (Fail (Printf.sprintf "movi data address 0x%x outside data sections" a)))
      | Ir.CodeRef bid ->
        (match Hashtbl.find_opt block_addr bid with
         | Some a -> (a, true)
         | None -> raise (Fail (Printf.sprintf "movi references unknown block %d" bid)))
      | Ir.NewRef (sec, off) ->
        (match List.assoc_opt sec layout.section_base with
         | Some base -> (base + off, true)
         | None -> raise (Fail (Printf.sprintf "movi references unknown section %s" sec)))
    in
    List.iter
      (fun (b : Ir.block) ->
        let addr = Hashtbl.find block_addr b.bid in
        let pos = ref (addr - out_base) in
        let put i = Isa.encode i text ~pos:!pos; pos := !pos + Isa.instr_size in
        List.iter
          (fun (ti : Ir.tinstr) ->
            match ti with
            | Ir.Plain i -> put i
            | Ir.Sys -> put Isa.Sys
            | Ir.Movi (rd, simm) ->
              let v, relocated = resolve_simm simm in
              if relocated then add_reloc (out_base + !pos + 4);
              put (Isa.Movi (rd, v)))
          b.body;
        match term_to_instr layout b.term with
        | None -> ()
        | Some i ->
          if Isa.imm_is_code_target i then add_reloc (out_base + !pos + 4);
          put i)
      t.Ir.blocks;
    (* 4. rebuild data sections, remapping relocated pointer fields *)
    let old_relocs_in (s : Obj_file.section) =
      List.filter
        (fun (r : Obj_file.reloc) -> r.rel_at >= s.sec_addr && r.rel_at < s.sec_addr + s.sec_size)
        t.Ir.source.relocs
    in
    let new_data_sections =
      List.map
        (fun ((s : Obj_file.section), base) ->
          let payload =
            if s.sec_kind = Obj_file.Bss then ""
            else begin
              let p = Bytes.of_string s.sec_payload in
              List.iter
                (fun (r : Obj_file.reloc) ->
                  let off = r.rel_at - s.sec_addr in
                  let old_v = Int32.to_int (Bytes.get_int32_le p off) land 0xffff_ffff in
                  let new_v = map_old_addr old_v (Printf.sprintf "data reloc in %s" s.sec_name) in
                  Bytes.set_int32_le p off (Int32.of_int new_v);
                  add_reloc (base + off))
                (old_relocs_in s);
              Bytes.to_string p
            end
          in
          { Obj_file.sec_name = s.sec_name; sec_kind = s.sec_kind; sec_addr = base;
            sec_size = s.sec_size; sec_payload = payload })
        moved
    in
    (* 5. extra sections, filled by the caller with the final layout known *)
    let payloads = fill layout in
    let extra_secs =
      List.map
        (fun (name, kind, size, base) ->
          let payload =
            if kind = Obj_file.Bss then ""
            else
              match List.assoc_opt name payloads with
              | Some p when String.length p = size -> p
              | Some p ->
                raise
                  (Fail
                     (Printf.sprintf "fill for %s returned %d bytes, expected %d" name
                        (String.length p) size))
              | None -> String.make size '\000'
          in
          { Obj_file.sec_name = name; sec_kind = kind; sec_addr = base; sec_size = size;
            sec_payload = payload })
        extras
    in
    (* 6. symbols and entry *)
    let symbols =
      List.filter_map
        (fun (sym : Obj_file.symbol) ->
          match Hashtbl.find_opt orig_block_addr sym.sym_addr with
          | Some a -> Some { sym with sym_addr = a }
          | None ->
            (match data_shift sym.sym_addr with
             | Some a -> Some { sym with sym_addr = a }
             | None -> Some sym))
        t.Ir.source.symbols
    in
    let entry =
      match Hashtbl.find_opt block_addr t.Ir.entry with
      | Some a -> a
      | None -> raise (Fail "entry block missing from layout")
    in
    let text_sec =
      { Obj_file.sec_name = ".text"; sec_kind = Obj_file.Text; sec_addr = out_base;
        sec_size = text_size; sec_payload = Bytes.to_string text }
    in
    let img =
      { Obj_file.entry;
        sections = (text_sec :: new_data_sections) @ extra_secs;
        symbols;
        relocs = List.rev !relocs }
    in
    Ok (img, layout)
  with
  | Fail m -> Error m
  | Not_found -> Error "emit: dangling block reference"
