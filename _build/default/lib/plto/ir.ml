type simm =
  | Const of int
  | DataRef of int
  | CodeRef of int
  | NewRef of string * int

type tinstr =
  | Plain of Svm.Isa.instr
  | Movi of Svm.Isa.reg * simm
  | Sys

type term =
  | Fall
  | Jump of int
  | Branch of Svm.Isa.cond * Svm.Isa.reg * Svm.Isa.reg * int
  | CallT of int
  | CallExt of int
  | CallInd of Svm.Isa.reg
  | JumpInd of Svm.Isa.reg
  | Return
  | Stop

type block = {
  bid : int;
  mutable body : tinstr list;
  mutable term : term;
  orig_addr : int option;
  opaque : string option;
}

type t = {
  mutable blocks : block list;
  entry : int;
  source : Svm.Obj_file.t;
  mutable next_bid : int;
  mutable warnings : string list;
}

let find_block t bid = List.find (fun b -> b.bid = bid) t.blocks

let block_table t =
  let tbl = Hashtbl.create (List.length t.blocks) in
  List.iter (fun b -> Hashtbl.replace tbl b.bid b) t.blocks;
  tbl

let fresh_bid t =
  let b = t.next_bid in
  t.next_bid <- b + 1;
  b

let index_of t bid =
  let rec go i = function
    | [] -> raise Not_found
    | b :: _ when b.bid = bid -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.blocks

let next_in_layout t bid =
  let rec go = function
    | [] | [ _ ] -> None
    | b :: next :: _ when b.bid = bid -> Some next
    | _ :: rest -> go rest
  in
  go t.blocks

let term_instrs = function
  | Fall -> 0
  | Jump _ | Branch _ | CallT _ | CallExt _ | CallInd _ | JumpInd _ | Return | Stop -> 1

let block_size b =
  match b.opaque with
  | Some raw -> String.length raw
  | None -> Svm.Isa.instr_size * (List.length b.body + term_instrs b.term)

let has_sys b = List.exists (fun i -> i = Sys) b.body
let sys_count b = List.length (List.filter (fun i -> i = Sys) b.body)

let instr_count t =
  List.fold_left (fun acc b -> acc + (block_size b / Svm.Isa.instr_size)) 0 t.blocks

let pp_simm ppf = function
  | Const v -> Format.fprintf ppf "%d" v
  | DataRef a -> Format.fprintf ppf "data:0x%x" a
  | CodeRef bid -> Format.fprintf ppf "block:%d" bid
  | NewRef (sec, off) -> Format.fprintf ppf "%s+%d" sec off

let pp_tinstr ppf = function
  | Plain i -> Svm.Isa.pp ppf i
  | Movi (r, s) -> Format.fprintf ppf "movi r%d, %a" r pp_simm s
  | Sys -> Format.fprintf ppf "sys"

let pp_term ppf = function
  | Fall -> Format.fprintf ppf "fall"
  | Jump bid -> Format.fprintf ppf "jump B%d" bid
  | Branch (_, rs, rt, bid) -> Format.fprintf ppf "branch r%d,r%d -> B%d (else fall)" rs rt bid
  | CallT bid -> Format.fprintf ppf "call B%d" bid
  | CallExt addr -> Format.fprintf ppf "call ext:0x%x" addr
  | CallInd r -> Format.fprintf ppf "callr r%d" r
  | JumpInd r -> Format.fprintf ppf "jr r%d" r
  | Return -> Format.fprintf ppf "ret"
  | Stop -> Format.fprintf ppf "halt"

let pp_block ppf b =
  (match b.opaque with
   | Some raw -> Format.fprintf ppf "B%d: <opaque %d bytes>@\n" b.bid (String.length raw)
   | None ->
     Format.fprintf ppf "B%d:@\n" b.bid;
     List.iter (fun i -> Format.fprintf ppf "  %a@\n" pp_tinstr i) b.body;
     Format.fprintf ppf "  => %a@\n" pp_term b.term)

let pp ppf t =
  Format.fprintf ppf "entry B%d@\n" t.entry;
  List.iter (pp_block ppf) t.blocks
