let next_bid_opt t bid =
  match Ir.next_in_layout t bid with
  | Some b -> [ b.Ir.bid ]
  | None -> []

let intra_succs t (b : Ir.block) =
  match b.term with
  | Ir.Fall -> next_bid_opt t b.bid
  | Ir.Jump target -> [ target ]
  | Ir.Branch (_, _, _, target) -> target :: next_bid_opt t b.bid
  | Ir.CallT _ | Ir.CallExt _ | Ir.CallInd _ -> next_bid_opt t b.bid
  | Ir.JumpInd _ -> []
  | Ir.Return | Ir.Stop -> []

let call_edges t =
  List.filter_map
    (fun (b : Ir.block) ->
      match b.term with Ir.CallT f -> Some (b.bid, f) | _ -> None)
    t.Ir.blocks

let address_taken t =
  List.concat_map
    (fun (b : Ir.block) ->
      List.filter_map
        (function Ir.Movi (_, Ir.CodeRef bid) -> Some bid | Ir.Movi _ | Ir.Plain _ | Ir.Sys -> None)
        b.body)
    t.Ir.blocks

let function_entries t =
  let tbl = Hashtbl.create 16 in
  Hashtbl.replace tbl t.Ir.entry ();
  List.iter (fun (_, f) -> Hashtbl.replace tbl f ()) (call_edges t);
  List.iter (fun bid -> Hashtbl.replace tbl bid ()) (address_taken t);
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare

let function_blocks t entry_bid =
  let seen = Hashtbl.create 16 in
  let rec go bid =
    if not (Hashtbl.mem seen bid) then begin
      Hashtbl.replace seen bid ();
      match Ir.find_block t bid with
      | b -> List.iter go (intra_succs t b)
      | exception Not_found -> ()
    end
  in
  go entry_bid;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

let reachable ?(roots = []) t =
  let seen = Hashtbl.create 64 in
  let rec go bid =
    if not (Hashtbl.mem seen bid) then begin
      Hashtbl.replace seen bid ();
      match Ir.find_block t bid with
      | b ->
        List.iter go (intra_succs t b);
        (match b.term with Ir.CallT f -> go f | _ -> ());
        List.iter
          (function Ir.Movi (_, Ir.CodeRef c) -> go c | Ir.Movi _ | Ir.Plain _ | Ir.Sys -> ())
          b.body
      | exception Not_found -> ()
    end
  in
  go t.Ir.entry;
  List.iter go roots;
  seen
