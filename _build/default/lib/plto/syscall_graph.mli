(** The system-call graph: which system calls can immediately precede a
    given system call.

    "The graph giving all possible system call orderings is calculated
    from the full call graph, which gives all possible orderings of all
    basic blocks" (§4.1). The computation runs over the interprocedural
    supergraph (intra edges, call edges, and return edges from each
    function's return blocks to its call continuations) and is
    conservative: every path in an execution's block sequence is a path
    here. The virtual start node [start_bid] precedes every system call
    reachable before any other system call executes. *)

val compute : Ir.t -> start_bid:int -> (int * int list) list
(** For every block containing a [Sys] (callers must have run
    {!Inline.split_multi_sys} so there is at most one per block), the
    sorted list of possible predecessor system-call blocks, possibly
    including [start_bid]. Result is in layout order. *)

val supergraph : Ir.t -> (int, int list) Hashtbl.t
(** Adjacency of the interprocedural block graph (exposed for tests). *)
