open Svm

let disassemble ?(first_bid = 1) (img : Obj_file.t) =
  match Obj_file.text_section img with
  | exception Not_found -> Error "no text section"
  | text ->
    let base = text.sec_addr in
    let size = text.sec_size in
    if size mod Isa.instr_size <> 0 then Error "text size not a multiple of 8"
    else begin
      let n = size / Isa.instr_size in
      if n = 0 then Error "empty text section"
      else begin
        let payload = Bytes.of_string text.sec_payload in
        let decoded = Array.init n (fun i -> Isa.decode payload ~pos:(i * Isa.instr_size)) in
        let warnings = ref [] in
        let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
        let in_text addr = addr >= base && addr < base + size in
        let slot_of addr =
          if in_text addr && (addr - base) mod Isa.instr_size = 0 then
            Some ((addr - base) / Isa.instr_size)
          else None
        in
        let leader = Array.make (n + 1) false in
        leader.(0) <- true;
        let mark addr what =
          match slot_of addr with
          | Some s -> leader.(s) <- true
          | None -> warn "%s target 0x%x is not a valid instruction address" what addr
        in
        (* entry and text symbols *)
        (match slot_of img.entry with
         | Some s -> leader.(s) <- true
         | None -> ());
        List.iter
          (fun (sym : Obj_file.symbol) ->
            match slot_of sym.sym_addr with Some s -> leader.(s) <- true | None -> ())
          img.symbols;
        (* relocation-marked code addresses in movi immediates *)
        let reloc_imm = Hashtbl.create 64 in
        List.iter
          (fun (r : Obj_file.reloc) ->
            if in_text r.rel_at then Hashtbl.replace reloc_imm r.rel_at ())
          img.relocs;
        Array.iteri
          (fun i ins ->
            match ins with
            | Some (Isa.Movi (_, v)) when Hashtbl.mem reloc_imm (base + (i * Isa.instr_size) + 4) ->
              (match slot_of v with Some s -> leader.(s) <- true | None -> ())
            | Some _ | None -> ())
          decoded;
        (* control transfers *)
        Array.iteri
          (fun i ins ->
            match ins with
            | None ->
              leader.(i) <- true;
              if i + 1 <= n then leader.(min (i + 1) n) <- true
            | Some instr ->
              let break_after () = if i + 1 < n then leader.(i + 1) <- true in
              (match instr with
               | Isa.Br (_, _, _, t) ->
                 mark t "branch";
                 break_after ()
               | Isa.Jmp t ->
                 mark t "jump";
                 break_after ()
               | Isa.Call t ->
                 if in_text t then mark t "call";
                 break_after ()
               | Isa.Jr _ | Isa.Callr _ | Isa.Ret | Isa.Halt -> break_after ()
               | Isa.Nop | Isa.Movi _ | Isa.Mov _ | Isa.Ld _ | Isa.St _ | Isa.Ldb _
               | Isa.Stb _ | Isa.Binop _ | Isa.Addi _ | Isa.Push _ | Isa.Pop _ | Isa.Sys
               | Isa.Rdcyc _ -> ()))
          decoded;
        (* assign block ids to leader slots in order *)
        let bid_of_slot = Array.make n (-1) in
        let count = ref 0 in
        for i = 0 to n - 1 do
          if leader.(i) then begin
            bid_of_slot.(i) <- first_bid + !count;
            incr count
          end
        done;
        let bid_of_addr addr what =
          match slot_of addr with
          | Some s when bid_of_slot.(s) >= 0 -> Some bid_of_slot.(s)
          | Some _ | None ->
            warn "%s 0x%x does not resolve to a block" what addr;
            None
        in
        (* build blocks *)
        let blocks = ref [] in
        let i = ref 0 in
        while !i < n do
          let start = !i in
          let bid = bid_of_slot.(start) in
          let stop = ref (start + 1) in
          while !stop < n && not leader.(!stop) do incr stop done;
          let addr_of s = base + (s * Isa.instr_size) in
          (match decoded.(start) with
           | None ->
             (* opaque slot: its own block, raw bytes preserved *)
             warn "cannot disassemble instruction at 0x%x" (addr_of start);
             let raw = Bytes.sub_string payload (start * Isa.instr_size) Isa.instr_size in
             blocks :=
               { Ir.bid; body = []; term = Ir.Stop; orig_addr = Some (addr_of start);
                 opaque = Some raw }
               :: !blocks
           | Some _ ->
             let body = ref [] in
             let term = ref Ir.Fall in
             for s = start to !stop - 1 do
               match decoded.(s) with
               | None -> () (* unreachable: undecodable slots are leaders *)
               | Some instr ->
                 let imm_relocated = Hashtbl.mem reloc_imm (addr_of s + 4) in
                 let is_last = s = !stop - 1 in
                 (match instr with
                  | Isa.Br (c, rs, rt, t) when is_last ->
                    (match bid_of_addr t "branch target" with
                     | Some tb -> term := Ir.Branch (c, rs, rt, tb)
                     | None -> term := Ir.Stop)
                  | Isa.Jmp t when is_last ->
                    (match bid_of_addr t "jump target" with
                     | Some tb -> term := Ir.Jump tb
                     | None -> term := Ir.Stop)
                  | Isa.Call t when is_last ->
                    if not (in_text t) then term := Ir.CallExt t
                    else
                      (match bid_of_addr t "call target" with
                       | Some tb -> term := Ir.CallT tb
                       | None -> term := Ir.Stop)
                  | Isa.Jr r when is_last -> term := Ir.JumpInd r
                  | Isa.Callr r when is_last -> term := Ir.CallInd r
                  | Isa.Ret when is_last -> term := Ir.Return
                  | Isa.Halt when is_last -> term := Ir.Stop
                  | Isa.Br _ | Isa.Jmp _ | Isa.Call _ | Isa.Jr _ | Isa.Callr _ | Isa.Ret
                  | Isa.Halt ->
                    (* transfers are always last: leaders break after them *)
                    assert false
                  | Isa.Sys -> body := Ir.Sys :: !body
                  | Isa.Movi (rd, v) ->
                    let simm =
                      if not imm_relocated then Ir.Const v
                      else
                        match slot_of v with
                        | Some s' when bid_of_slot.(s') >= 0 -> Ir.CodeRef bid_of_slot.(s')
                        | Some _ | None ->
                          if in_text v then begin
                            warn "code address 0x%x in movi is not a block start" v;
                            Ir.Const v
                          end
                          else Ir.DataRef v
                    in
                    body := Ir.Movi (rd, simm) :: !body
                  | Isa.Nop | Isa.Mov _ | Isa.Ld _ | Isa.St _ | Isa.Ldb _ | Isa.Stb _
                  | Isa.Binop _ | Isa.Addi _ | Isa.Push _ | Isa.Pop _ | Isa.Rdcyc _ ->
                    body := Ir.Plain instr :: !body)
             done;
             (* a final block that runs off the end of text must not fall *)
             let term = if !stop = n && !term = Ir.Fall then Ir.Stop else !term in
             blocks :=
               { Ir.bid; body = List.rev !body; term; orig_addr = Some (addr_of start);
                 opaque = None }
               :: !blocks);
          i := !stop
        done;
        let blocks = List.rev !blocks in
        let entry =
          match slot_of img.entry with
          | Some s when bid_of_slot.(s) >= 0 -> bid_of_slot.(s)
          | Some _ | None -> first_bid
        in
        Ok
          { Ir.blocks;
            entry;
            source = img;
            next_bid = first_bid + !count;
            warnings = List.rev !warnings }
      end
    end
