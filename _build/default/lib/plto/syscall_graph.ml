let supergraph t =
  let adj = Hashtbl.create 64 in
  let add src dst =
    Hashtbl.replace adj src (dst :: (try Hashtbl.find adj src with Not_found -> []))
  in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace adj b.bid []) t.Ir.blocks;
  List.iter
    (fun (b : Ir.block) -> List.iter (fun s -> add b.bid s) (Cfg.intra_succs t b))
    t.Ir.blocks;
  (* call edges *)
  List.iter (fun (caller, f) -> add caller f) (Cfg.call_edges t);
  (* return edges: f's return blocks -> continuations of calls to f *)
  let entries = Cfg.function_entries t in
  let members = List.map (fun f -> (f, Cfg.function_blocks t f)) entries in
  let tbl = Ir.block_table t in
  let return_blocks f =
    match List.assoc_opt f members with
    | None -> []
    | Some blocks ->
      List.filter
        (fun bid ->
          match Hashtbl.find_opt tbl bid with
          | Some b -> b.Ir.term = Ir.Return
          | None -> false)
        blocks
  in
  List.iter
    (fun (b : Ir.block) ->
      match b.term with
      | Ir.CallT f ->
        (match Ir.next_in_layout t b.bid with
         | Some cont -> List.iter (fun r -> add r cont.Ir.bid) (return_blocks f)
         | None -> ())
      | Ir.CallInd _ ->
        (* conservative: an indirect call may reach any function *)
        (match Ir.next_in_layout t b.bid with
         | Some cont ->
           List.iter
             (fun f ->
               add b.bid f;
               List.iter (fun r -> add r cont.Ir.bid) (return_blocks f))
             entries
         | None -> List.iter (fun f -> add b.bid f) entries)
      | _ -> ())
    t.Ir.blocks;
  adj

let compute t ~start_bid =
  let adj = supergraph t in
  let tbl = Ir.block_table t in
  let sys_blocks =
    List.filter_map
      (fun (b : Ir.block) -> if Ir.has_sys b then Some b.Ir.bid else None)
      t.Ir.blocks
  in
  let is_sys = Hashtbl.create 16 in
  List.iter (fun bid -> Hashtbl.replace is_sys bid ()) sys_blocks;
  let preds = Hashtbl.create 16 in
  List.iter (fun bid -> Hashtbl.replace preds bid []) sys_blocks;
  let record target src =
    Hashtbl.replace preds target (src :: (try Hashtbl.find preds target with Not_found -> []))
  in
  let succs bid = try Hashtbl.find adj bid with Not_found -> [] in
  (* Propagate source [s] forward until hitting system-call blocks. *)
  let flood source starts =
    let seen = Hashtbl.create 64 in
    let q = Queue.create () in
    List.iter (fun b -> Queue.add b q) starts;
    while not (Queue.is_empty q) do
      let bid = Queue.pop q in
      if not (Hashtbl.mem seen bid) then begin
        Hashtbl.replace seen bid ();
        if Hashtbl.mem is_sys bid then record bid source
        else if Hashtbl.mem tbl bid then List.iter (fun s -> Queue.add s q) (succs bid)
      end
    done
  in
  flood start_bid [ t.Ir.entry ];
  List.iter (fun s -> flood s (succs s)) sys_blocks;
  List.filter_map
    (fun (b : Ir.block) ->
      if Ir.has_sys b then
        Some (b.Ir.bid, List.sort_uniq compare (try Hashtbl.find preds b.Ir.bid with Not_found -> []))
      else None)
    t.Ir.blocks
