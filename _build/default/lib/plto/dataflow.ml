type kind = KConst | KData

type aval = {
  av_kind : kind;
  av_val : int;
  av_defs : (int * int) list;
}

type reg_state =
  | Bot
  | Any
  | Res
  | Vals of aval list

type state = reg_state array

let max_vals = 4

let merge_vals xs ys =
  let add acc v =
    match List.find_opt (fun w -> w.av_kind = v.av_kind && w.av_val = v.av_val) acc with
    | Some w ->
      let merged = { w with av_defs = List.sort_uniq compare (w.av_defs @ v.av_defs) } in
      merged :: List.filter (fun u -> u != w) acc
    | None -> v :: acc
  in
  let all = List.fold_left add xs ys in
  if List.length all > max_vals then Any else Vals (List.sort compare all)

let meet a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Any, _ | _, Any -> Any
  | Res, Res -> Res
  | Res, Vals _ | Vals _, Res -> Any
  | Vals xs, Vals ys -> merge_vals xs ys

(* The full abstract state: registers, frame-pointer-relative scalar slots
   (so constants survive the compiler's store/load of locals), and the spill
   stack (so constants survive push/pop argument shuffling). Soundness
   assumptions, both standard for compiled code: stores through computed
   addresses never hit the spill region below the frame, and functions
   restore the stack pointer on return. Any store whose base is not the
   frame pointer kills all slots; calls kill all slots (the callee may hold
   pointers into the caller's frame). *)
type full = {
  f_regs : state;
  mutable f_slots : (int * reg_state) list; (* negative fp offset -> value *)
  mutable f_stack : reg_state list option;  (* None = unknown depth *)
  mutable f_reached : bool; (* false = bottom element: identity for meet *)
}

let all_any () =
  { f_regs = Array.make Svm.Isa.num_regs Any; f_slots = []; f_stack = Some []; f_reached = true }

let all_bot () =
  { f_regs = Array.make Svm.Isa.num_regs Bot; f_slots = []; f_stack = Some []; f_reached = false }

let copy_full f =
  { f_regs = Array.copy f.f_regs; f_slots = f.f_slots; f_stack = f.f_stack;
    f_reached = f.f_reached }

let meet_slots a b =
  List.filter_map
    (fun (off, v) ->
      match List.assoc_opt off b with
      | Some w ->
        (match meet v w with
         | Bot -> None
         | m -> Some (off, m))
      | None -> None)
    a

let meet_stack a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some xs, Some ys ->
    if List.length xs <> List.length ys then None else Some (List.map2 meet xs ys)

let meet_full a b =
  if not a.f_reached then copy_full b
  else if not b.f_reached then copy_full a
  else
    { f_regs = Array.init (Array.length a.f_regs) (fun i -> meet a.f_regs.(i) b.f_regs.(i));
      f_slots = meet_slots a.f_slots b.f_slots;
      f_stack = meet_stack a.f_stack b.f_stack;
      f_reached = true }

let equal_full a b =
  a.f_reached = b.f_reached && a.f_regs = b.f_regs && a.f_slots = b.f_slots
  && a.f_stack = b.f_stack

let slot_get f off = match List.assoc_opt off f.f_slots with Some v -> v | None -> Any
let slot_set f off v = f.f_slots <- (off, v) :: List.remove_assoc off f.f_slots
let kill_slots f = f.f_slots <- []

let transfer_instr bid idx (f : full) instr =
  let st = f.f_regs in
  let set r v = st.(r) <- v in
  match (instr : Ir.tinstr) with
  | Ir.Sys -> set 0 Res
  | Ir.Movi (rd, Ir.Const v) ->
    set rd (Vals [ { av_kind = KConst; av_val = v; av_defs = [ (bid, idx) ] } ])
  | Ir.Movi (rd, Ir.DataRef a) ->
    set rd (Vals [ { av_kind = KData; av_val = a; av_defs = [ (bid, idx) ] } ])
  | Ir.Movi (rd, (Ir.CodeRef _ | Ir.NewRef _)) -> set rd Any
  | Ir.Plain i ->
    (match i with
     | Svm.Isa.Mov (rd, rs) ->
       if rd = Svm.Isa.fp then kill_slots f;
       set rd st.(rs)
     | Svm.Isa.Addi (rd, rs, c) ->
       if rd = Svm.Isa.fp then kill_slots f;
       (match st.(rs) with
        | Vals vs ->
          set rd (Vals (List.map (fun v -> { v with av_val = v.av_val + c; av_defs = [] }) vs))
        | Bot -> set rd Bot
        | Any | Res -> set rd Any)
     | Svm.Isa.Push rs ->
       (match f.f_stack with
        | Some xs -> f.f_stack <- Some (st.(rs) :: xs)
        | None -> ())
     | Svm.Isa.Pop rd ->
       if rd = Svm.Isa.fp then kill_slots f;
       (match f.f_stack with
        | Some (v :: rest) ->
          f.f_stack <- Some rest;
          set rd v
        | Some [] | None ->
          f.f_stack <- None;
          set rd Any)
     | Svm.Isa.St (base, off, rs) ->
       if base = Svm.Isa.fp && off < 0 then slot_set f off st.(rs) else kill_slots f
     | Svm.Isa.Stb (_, _, _) -> kill_slots f
     | Svm.Isa.Ld (rd, base, off) ->
       if rd = Svm.Isa.fp then kill_slots f;
       if base = Svm.Isa.fp && off < 0 then set rd (slot_get f off) else set rd Any
     | Svm.Isa.Ldb (rd, _, _) ->
       if rd = Svm.Isa.fp then kill_slots f;
       set rd Any
     | Svm.Isa.Binop (_, rd, _, _) | Svm.Isa.Rdcyc rd | Svm.Isa.Movi (rd, _) ->
       if rd = Svm.Isa.fp then kill_slots f;
       set rd Any
     | Svm.Isa.Nop -> ()
     | Svm.Isa.Halt | Svm.Isa.Br _ | Svm.Isa.Jmp _ | Svm.Isa.Jr _ | Svm.Isa.Call _
     | Svm.Isa.Callr _ | Svm.Isa.Ret | Svm.Isa.Sys -> ())

let transfer_block (b : Ir.block) (entry : full) =
  let f = copy_full entry in
  List.iteri (fun idx i -> transfer_instr b.Ir.bid idx f i) b.Ir.body;
  (match b.Ir.term with
   | Ir.CallT _ | Ir.CallExt _ | Ir.CallInd _ ->
     Array.fill f.f_regs 0 (Array.length f.f_regs) Any;
     kill_slots f
     (* spill-stack values live at or above the caller's stack pointer and
        survive the call *)
   | Ir.Fall | Ir.Jump _ | Ir.Branch _ | Ir.JumpInd _ | Ir.Return | Ir.Stop -> ());
  f

let analyze_full t =
  let tbl = Ir.block_table t in
  let entries_any = Hashtbl.create 16 in
  Hashtbl.replace entries_any t.Ir.entry ();
  List.iter (fun (_, f) -> Hashtbl.replace entries_any f ()) (Cfg.call_edges t);
  List.iter (fun bid -> Hashtbl.replace entries_any bid ()) (Cfg.address_taken t);
  let in_states = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace in_states b.Ir.bid
        (if Hashtbl.mem entries_any b.Ir.bid then all_any () else all_bot ()))
    t.Ir.blocks;
  let worklist = Queue.create () in
  let in_queue = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.block) ->
      Queue.add b.Ir.bid worklist;
      Hashtbl.replace in_queue b.Ir.bid ())
    t.Ir.blocks;
  while not (Queue.is_empty worklist) do
    let bid = Queue.pop worklist in
    Hashtbl.remove in_queue bid;
    match Hashtbl.find_opt tbl bid with
    | None -> ()
    | Some b when b.Ir.opaque <> None -> ()
    | Some b ->
      let entry_state = Hashtbl.find in_states bid in
      if entry_state.f_reached then begin
      let out = transfer_block b entry_state in
      List.iter
        (fun s ->
          match Hashtbl.find_opt in_states s with
          | None -> ()
          | Some cur ->
            let merged =
              if Hashtbl.mem entries_any s then cur (* pinned to all-Any *)
              else meet_full cur out
            in
            if not (equal_full merged cur) then begin
              Hashtbl.replace in_states s merged;
              if not (Hashtbl.mem in_queue s) then begin
                Hashtbl.replace in_queue s ();
                Queue.add s worklist
              end
            end)
        (Cfg.intra_succs t b)
      end
  done;
  in_states

let analyze t =
  let full = analyze_full t in
  let out = Hashtbl.create (Hashtbl.length full) in
  Hashtbl.iter (fun bid f -> Hashtbl.replace out bid f.f_regs) full;
  out

let sys_states t =
  let in_states = analyze_full t in
  List.concat_map
    (fun (b : Ir.block) ->
      if not (Ir.has_sys b) then []
      else begin
        let entry =
          match Hashtbl.find_opt in_states b.Ir.bid with
          | Some s -> s
          | None -> all_any ()
        in
        let f = copy_full entry in
        let acc = ref [] in
        List.iteri
          (fun idx i ->
            if i = Ir.Sys then acc := (b.Ir.bid, idx, Array.copy f.f_regs) :: !acc;
            transfer_instr b.Ir.bid idx f i)
          b.Ir.body;
        List.rev !acc
      end)
    t.Ir.blocks
