(** Post-inlining cleanups, standing in for PLTO's optimizations (the paper
    uses PLTO-optimized binaries as its measurement baseline so that
    authenticated and unauthenticated binaries differ only in the
    authentication machinery). *)

val remove_unreachable : ?roots:int list -> Ir.t -> int
(** Delete blocks unreachable from the entry (considering calls and
    address-taken references); returns the number removed. Safe with
    respect to fall-through adjacency: an unreachable block is never a
    live fall-through target. *)

val remove_nops : Ir.t -> int
(** Drop [nop] body instructions; returns the number removed. *)
