(** Disassembler: SEF image → {!Ir} program.

    Decodes the text section, discovers basic-block leaders (entry point,
    branch/call targets, post-transfer instructions, text symbols, and
    relocation-marked code addresses) and classifies [movi] immediates as
    plain constants, data addresses or code addresses using the image's
    relocation table — the information the paper's installer requires
    ("relocatable binaries ... in which the locations of addresses are
    marked").

    Undecodable slots become *opaque* blocks and produce warnings instead of
    failures, mirroring PLTO: "PLTO always reports when it cannot
    completely disassemble a binary". Programs containing opaque blocks can
    still be analysed for policies but cannot be re-emitted. *)

val disassemble : ?first_bid:int -> Svm.Obj_file.t -> (Ir.t, string) result
(** [first_bid] (default 1) is the id given to the first block; the
    installer passes a program-unique base so that block identifiers are
    unique across all programs on the machine (the §5.5 Frankenstein
    countermeasure). Ids [first_bid - 1] and below are reserved (the
    syscall graph uses [first_bid - 1] as the virtual start node). *)
