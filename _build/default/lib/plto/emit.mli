(** Re-emission of a (possibly transformed) {!Ir} program as a SEF image.

    Code is laid out from {!Svm.Asm.text_base} in block layout order; the
    original data sections follow (page-aligned, original order), then any
    sections added by the rewriter. Because rewriting typically grows the
    text, the data sections move: every relocation-marked address — [movi]
    immediates, pointers stored in data — is remapped, and a fresh
    relocation table is produced so the output is itself a relocatable
    binary that can be disassembled and rewritten again. *)

type layout = {
  block_addr : (int, int) Hashtbl.t;     (** bid → new address *)
  section_base : (string * int) list;    (** section name → new base *)
  data_shift : int -> int option;        (** old data address → new *)
}

val addr_of_instr : layout -> bid:int -> idx:int -> int
(** Final address of a body instruction, e.g. of a [Sys] at body index
    [idx] — the call site the kernel will observe.
    @raise Not_found if the block is not in the layout. *)

val base_of : layout -> string -> int
(** Base address of a section by name. @raise Not_found. *)

val emit :
  ?extra_sections:(string * Svm.Obj_file.section_kind * int) list ->
  ?fill:(layout -> (string * string) list) ->
  Ir.t ->
  (Svm.Obj_file.t * layout, string) result
(** Emit the program. [extra_sections] reserves named sections (with sizes)
    after the original data; [fill] is called once the layout is fixed and
    must return the payload for each non-[Bss] extra section (size must
    match). Fails if the program contains opaque blocks or an immediate
    does not fit. *)
