(** Forward constant propagation over registers — the "standard reaching
    definitions analysis" the paper's installer applies to classify system
    call arguments as [String] / [Immediate] / [Unknown] (§4.1).

    The abstract value of a register is a small set of possible constants,
    each tagged with whether it came from a plain immediate or a
    relocation-marked data address, plus the [movi] definition sites that
    produced it (so the installer can re-point string arguments at their
    authenticated-string copies). Values merging beyond {!max_vals}
    alternatives, or flowing from loads, arithmetic or call returns,
    degrade to [Any]. System call results are tracked as the distinct
    [Res] value to support the capability-tracking statistics (Table 3's
    "fds" column). *)

type kind = KConst | KData

type aval = {
  av_kind : kind;
  av_val : int;                (** constant, or original data address *)
  av_defs : (int * int) list;  (** (bid, body index) of defining [movi]s;
                                   empty when derived (not re-pointable) *)
}

type reg_state =
  | Bot          (** unreached *)
  | Any
  | Res          (** result of some earlier system call *)
  | Vals of aval list

type state = reg_state array
(** One entry per register. *)

val max_vals : int

val meet : reg_state -> reg_state -> reg_state

val analyze : Ir.t -> (int, state) Hashtbl.t
(** Entry state of every reachable block (fixpoint). *)

val sys_states : Ir.t -> (int * int * state) list
(** [(bid, body_index, state_before_sys)] for every [Sys] in the program,
    in layout order. The state reflects all transfers up to (but not
    including) the [Sys]. *)
