(** Control-flow queries over {!Ir} programs: intra-procedural successor
    edges, the call graph, function membership and reachability. *)

val intra_succs : Ir.t -> Ir.block -> int list
(** Successor block ids within the same function. Calls fall through to
    their continuation (the next block); [Return]/[Stop] have none;
    indirect jumps conservatively have none (and are absent from the
    compiler-generated programs this rewriter targets). *)

val call_edges : Ir.t -> (int * int) list
(** [(caller block, callee entry block)] for every direct call. *)

val function_entries : Ir.t -> int list
(** Program entry, direct-call targets, and address-taken blocks. *)

val function_blocks : Ir.t -> int -> int list
(** Blocks of the function entered at the given bid (intra traversal). *)

val reachable : ?roots:int list -> Ir.t -> (int, unit) Hashtbl.t
(** Blocks reachable from the entry (plus [roots], e.g. a shared library's
    exported functions) following intra edges, call edges and address-taken
    references. *)

val address_taken : Ir.t -> int list
(** Blocks whose id appears in a [CodeRef] immediate. *)
