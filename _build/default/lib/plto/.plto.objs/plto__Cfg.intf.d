lib/plto/cfg.mli: Hashtbl Ir
