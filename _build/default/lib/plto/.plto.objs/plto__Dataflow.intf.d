lib/plto/dataflow.mli: Hashtbl Ir
