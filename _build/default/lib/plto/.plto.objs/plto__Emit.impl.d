lib/plto/emit.ml: Asm Bytes Hashtbl Int32 Ir Isa List Obj_file Printf String Svm
