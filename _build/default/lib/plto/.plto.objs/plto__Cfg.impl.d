lib/plto/cfg.ml: Hashtbl Ir List
