lib/plto/disasm.mli: Ir Svm
