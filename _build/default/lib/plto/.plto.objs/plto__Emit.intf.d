lib/plto/emit.mli: Hashtbl Ir Svm
