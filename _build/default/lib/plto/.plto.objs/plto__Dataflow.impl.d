lib/plto/dataflow.ml: Array Cfg Hashtbl Ir List Queue Svm
