lib/plto/opt.ml: Cfg Hashtbl Ir List Svm
