lib/plto/inline.mli: Ir
