lib/plto/inline.ml: Cfg Hashtbl Ir List Svm
