lib/plto/syscall_graph.ml: Cfg Hashtbl Ir List Queue
