lib/plto/ir.mli: Format Hashtbl Svm
