lib/plto/disasm.ml: Array Bytes Format Hashtbl Ir Isa List Obj_file Svm
