lib/plto/syscall_graph.mli: Hashtbl Ir
