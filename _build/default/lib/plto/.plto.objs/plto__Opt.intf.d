lib/plto/opt.mli: Ir
