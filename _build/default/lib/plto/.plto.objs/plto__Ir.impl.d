lib/plto/ir.ml: Format Hashtbl List String Svm
