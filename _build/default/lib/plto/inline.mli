(** System-call stub inlining.

    Libc makes system calls from small stubs ([open:], [write:], …) invoked
    by many callers; with one stub per call there would be a single policy
    per system call. The paper's installer therefore "analyz\[es\] the call
    graph to identify blocks that invoke these stubs and inline\[s\] the
    stubs", giving every original call site its own policy (§4.1). *)

val is_stub : Ir.t -> int -> bool
(** Whether the function entered at this bid is an inlinable syscall stub:
    a single block ending in [Return] whose body is straight-line register
    setup around exactly one [Sys]. *)

val stub_entries : Ir.t -> int list
(** Call targets that are inlinable stubs. *)

val inline_stubs : Ir.t -> int
(** Inline every direct call to a stub into its call site; returns the
    number of sites inlined. Unreachable stub bodies are left for
    {!Opt.remove_unreachable}. *)

val split_multi_sys : Ir.t -> int
(** Split blocks containing more than one [Sys] so each system call lives
    in its own basic block (policies identify calls by basic block);
    returns the number of splits performed. *)
