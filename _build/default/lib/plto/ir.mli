(** Intermediate representation used by the binary rewriter.

    A program is a sequence of basic blocks in layout order. Code addresses
    are symbolic ([CodeRef] block ids), so blocks can be moved, split and
    extended freely; data addresses stay literal ([DataRef]) and are
    remapped by the emitter when sections move; [NewRef] addresses point
    into sections the rewriter itself adds (the installer's [.asc] section).

    Invariants:
    - a block's [body] contains no control transfers; the single transfer is
      the block's [term];
    - [Branch]'s fall-through successor and [CallT]'s return continuation
      are the next block in layout order, so transformations must preserve
      adjacency when they matter (they all do here: we never reorder). *)

type simm =
  | Const of int            (** plain constant; never remapped *)
  | DataRef of int          (** original virtual address in a data section *)
  | CodeRef of int          (** block id; resolves to the block's address *)
  | NewRef of string * int  (** offset into a rewriter-added section *)

type tinstr =
  | Plain of Svm.Isa.instr  (** no control flow, no address immediate *)
  | Movi of Svm.Isa.reg * simm
  | Sys

type term =
  | Fall                    (** fall through to the next block *)
  | Jump of int
  | Branch of Svm.Isa.cond * Svm.Isa.reg * Svm.Isa.reg * int  (** taken bid *)
  | CallT of int            (** direct call; continue at next block *)
  | CallExt of int          (** call to a fixed address outside this image
                                (a shared-library export); continue at next
                                block *)
  | CallInd of Svm.Isa.reg
  | JumpInd of Svm.Isa.reg
  | Return
  | Stop

type block = {
  bid : int;
  mutable body : tinstr list;
  mutable term : term;
  orig_addr : int option;       (** original address (provenance) *)
  opaque : string option;       (** raw bytes when undisassemblable *)
}

type t = {
  mutable blocks : block list;  (** layout order *)
  entry : int;
  source : Svm.Obj_file.t;
  mutable next_bid : int;
  mutable warnings : string list;
}

val find_block : t -> int -> block
(** @raise Not_found on an unknown id. *)

val block_table : t -> (int, block) Hashtbl.t
(** Fresh id → block index; build once before hot loops. *)

val fresh_bid : t -> int

val index_of : t -> int -> int
(** Position of a block in layout order. *)

val next_in_layout : t -> int -> block option
(** The block after the given one in layout order (fall-through target). *)

val block_size : block -> int
(** Encoded size in bytes (body + terminator, or opaque payload). *)

val has_sys : block -> bool
val sys_count : block -> int

val instr_count : t -> int
(** Total encodable instructions (opaque blocks count their slots). *)

val pp_block : Format.formatter -> block -> unit
val pp : Format.formatter -> t -> unit
