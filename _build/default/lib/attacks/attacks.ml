open Svm
open Oskernel
module Cmac = Asc_crypto.Cmac

type outcome =
  | Succeeded of string
  | Blocked of string
  | Crashed of string

let pp_outcome ppf = function
  | Succeeded e -> Format.fprintf ppf "SUCCEEDED (%s)" e
  | Blocked r -> Format.fprintf ppf "BLOCKED (%s)" r
  | Crashed r -> Format.fprintf ppf "CRASHED (%s)" r

let key = Cmac.of_raw "attack-demo-key!"
let personality = Personality.linux

let num sem = Option.get (Personality.number_of personality sem)

let compile src = Minic.Driver.compile_exn ~personality src

let install ~program_id ~program img =
  let options = { Asc_core.Installer.default_options with program_id } in
  match Asc_core.Installer.install ~key ~personality ~options ~program img with
  | Ok inst -> inst.Asc_core.Installer.image
  | Error e -> failwith (Printf.sprintf "install %s: %s" program e)

let victim_plain = lazy (compile Workloads.W_tools.victim)
let victim_auth = lazy (install ~program_id:1 ~program:"victim" (Lazy.force victim_plain))
let ls_plain = lazy (compile Workloads.W_tools.ls)
let ls_auth = lazy (install ~program_id:2 ~program:"ls" (Lazy.force ls_plain))
let sh_plain = lazy (compile Workloads.W_tools.sh)
let sh_auth = lazy (install ~program_id:3 ~program:"sh" (Lazy.force sh_plain))

(* ----- locating the stack buffer (attacker reconnaissance) ----- *)

(* get_filename's frame: char buf[32] at fp-40 (below the out-param slot),
   so the saved frame pointer sits at buf+40 and the return address at
   buf+48. *)
let ret_distance = 48

let le64 v = String.init 8 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

(* The threat model grants the attacker simulators and debuggers: run the
   victim on a marker payload whose smashed return address points into
   zeroed memory (opcode 0 halts), freezing the machine with the buffer
   intact, then scan memory for the marker. *)
let probe_buffer_addr image =
  let marker = "PROBE_MARKER_XYZQ" in
  (* slots smashed on the way to the return address: the out parameter (must
     stay a valid pointer or strcpy faults first) and the saved frame
     pointer; the return address lands in zeroed memory (opcode 0 halts) *)
  let payload =
    marker
    ^ String.make (32 - String.length marker) 'P'
    ^ le64 0x100000 (* out param: scratch memory *)
    ^ String.make 8 'P' (* saved fp *)
    ^ le64 0x200000 (* return address: zeroed memory halts *)
  in
  let kernel = Kernel.create ~personality () in
  let proc = Kernel.spawn kernel ~stdin:payload ~program:"victim" image in
  ignore (Kernel.run kernel proc ~max_cycles:50_000_000);
  let mem = proc.Process.machine.Machine.mem in
  let n = Bytes.length mem in
  let mlen = String.length marker in
  let rec scan i =
    if i + mlen > n then failwith "attacks: probe marker not found"
    else if Bytes.sub_string mem i mlen = marker then i
    else scan (i + 1)
  in
  (* the buffer lives on the stack, above the data sections *)
  scan (n / 2)

let check_no_newline payload what =
  String.iteri
    (fun i c ->
      if c = '\n' then
        failwith
          (Printf.sprintf "attacks: %s payload contains a newline at byte %d; cannot be \
                           delivered through read_line" what i))
    payload

let run_victim ~protected ~payload ?(patch = fun (_ : Machine.t) -> ()) () =
  let kernel = Kernel.create ~personality () in
  if protected then
    Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  kernel.Kernel.tracing <- true;
  let ls = Lazy.force (if protected then ls_auth else ls_plain) in
  let sh = Lazy.force (if protected then sh_auth else sh_plain) in
  Kernel.install_binary kernel ~path:"/bin/ls" ls;
  Kernel.install_binary kernel ~path:"/bin/sh" sh;
  let image = Lazy.force (if protected then victim_auth else victim_plain) in
  let proc = Kernel.spawn kernel ~stdin:payload ~program:"victim" image in
  patch proc.Process.machine;
  let stop = Kernel.run kernel proc ~max_cycles:100_000_000 in
  (kernel, proc, stop)

let classify ~goal (kernel, proc, stop) =
  let out = Kernel.stdout_of proc in
  match stop with
  | Machine.Killed reason -> Blocked reason
  | Machine.Halted _ | Machine.Faulted _ | Machine.Cycle_limit ->
    (match goal kernel out with
     | Some evidence -> Succeeded evidence
     | None ->
       (match stop with
        | Machine.Faulted (_, pc) -> Crashed (Printf.sprintf "fault at 0x%x" pc)
        | _ -> Crashed "goal not reached"))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let pwned_goal _kernel out = if contains out "pwned shell" then Some "shell executed" else None

(* ----- attack 1: classic shellcode injection ----- *)

let shellcode ~protected =
  let image = Lazy.force (if protected then victim_auth else victim_plain) in
  let buf = probe_buffer_addr image in
  (* shellcode: execve("/bin/sh") with the string carried in the payload *)
  let code = Bytes.create 24 in
  Isa.encode (Isa.Movi (1, buf + 24)) code ~pos:0;
  Isa.encode (Isa.Movi (0, num Syscall.Execve)) code ~pos:8;
  Isa.encode Isa.Sys code ~pos:16;
  let payload =
    Bytes.to_string code ^ "/bin/sh\000" (* at buf+24 *)
    ^ le64 buf (* out param: self-copy keeps the payload intact *)
    ^ String.make 8 'F' (* saved fp *)
    ^ le64 buf (* return address -> shellcode *)
  in
  check_no_newline payload "shellcode";
  classify ~goal:pwned_goal (run_victim ~protected ~payload ())

(* ----- attack 2: mimicry via authenticated calls from another binary ----- *)

(* Extract, from an installed image, the byte run of [movi...movi sys]
   implementing one authenticated call site. *)
let extract_auth_site image =
  let text = Obj_file.text_section image in
  let payload = Bytes.of_string text.Obj_file.sec_payload in
  let slots = Bytes.length payload / Isa.instr_size in
  let decode i = Isa.decode payload ~pos:(i * Isa.instr_size) in
  let sites = ref [] in
  for i = 0 to slots - 1 do
    if decode i = Some Isa.Sys then begin
      (* walk back over the contiguous movi run *)
      let rec back j =
        if j < 0 then 0
        else
          match decode j with
          | Some (Isa.Movi _) -> back (j - 1)
          | _ -> j + 1
      in
      let start = back (i - 1) in
      if i - start >= 5 then
        sites :=
          ( text.Obj_file.sec_addr + (start * Isa.instr_size),
            Bytes.sub_string payload (start * Isa.instr_size)
              ((i - start + 1) * Isa.instr_size) )
          :: !sites
    end
  done;
  List.rev !sites

let mimicry ~protected =
  (* donor application: makes a socket call the victim never makes *)
  let donor_src = "int main() { socket(1, 1, 0); return 0; }" in
  let donor = install ~program_id:9 ~program:"donor" (compile donor_src) in
  let image = Lazy.force (if protected then victim_auth else victim_plain) in
  let buf = probe_buffer_addr image in
  let socket_number = num Syscall.Socket in
  (* pick the donor site that actually issues socket() *)
  let is_socket_site bytes =
    let b = Bytes.of_string bytes in
    let rec scan i =
      if i + Isa.instr_size > Bytes.length b then false
      else
        match Isa.decode b ~pos:i with
        | Some (Isa.Movi (0, v)) when v = socket_number -> true
        | _ -> scan (i + Isa.instr_size)
    in
    scan 0
  in
  let sites = List.filter (fun (_, bytes) -> is_socket_site bytes) (extract_auth_site donor) in
  let usable =
    List.filter_map
      (fun (_, bytes) ->
        (* splice after the return-address slot; ends with a halt *)
        let halt = Bytes.create 8 in
        Isa.encode Isa.Halt halt ~pos:0;
        let payload =
          String.make 32 'A'
          ^ le64 buf (* out param: harmless self-copy *)
          ^ String.make 8 'A' (* saved fp *)
          ^ le64 (buf + ret_distance + 8) (* return into the spliced code *)
          ^ bytes ^ Bytes.to_string halt
        in
        if String.contains payload '\n' then None else Some payload)
      sites
  in
  match usable with
  | [] -> failwith "attacks: no newline-free mimicry payload found"
  | payload :: _ ->
    let goal kernel _out =
      let made_socket =
        List.exists
          (fun t -> t.Kernel.t_sem = Some Syscall.Socket && t.Kernel.t_number = socket_number)
          (Kernel.trace kernel)
      in
      if made_socket then Some "foreign authenticated syscall executed" else None
    in
    classify ~goal (run_victim ~protected ~payload ())

(* ----- attack 3: non-control data ----- *)

(* "tried to replace the argument /bin/ls of the existing authenticated
   execve system call with /bin/sh": a pure data overwrite — control flow
   is never hijacked. We grant the attacker an arbitrary-write primitive
   (e.g. a heap overflow) by patching the string in process memory. *)
let non_control_data ~protected =
  let patch (m : Machine.t) =
    (* overwrite every occurrence of "/bin/ls" in writable+readable memory *)
    let needle = "/bin/ls" in
    let mem = m.Machine.mem in
    let found = ref 0 in
    for a = 0 to Bytes.length mem - String.length needle - 1 do
      if Bytes.sub_string mem a (String.length needle) = needle then begin
        Bytes.blit_string "/bin/sh" 0 mem a 7;
        incr found
      end
    done;
    if !found = 0 then failwith "attacks: /bin/ls not found in memory"
  in
  classify ~goal:pwned_goal (run_victim ~protected ~payload:"notes.txt\n" ~patch ())

(* ----- §5.5: Frankenstein ----- *)

let padding_src =
  let buf = Buffer.create 20000 in
  Buffer.add_string buf "int never = 0;\nint pad(int x) {\n";
  for _ = 1 to 2500 do
    Buffer.add_string buf "  x = x + 3;\n"
  done;
  Buffer.add_string buf "  return x;\n}\n";
  Buffer.contents buf

(* Application A: padded so that its call sites and .asc land far above
   application B's whole image, letting the Frankenstein composition place
   both binaries' fragments in one address space at their original
   (MAC-bound) addresses. *)
let app_a_src =
  padding_src ^ "int main() { if (never) { pad(1); } socket(1, 1, 0); return 0; }"

let app_b_src = "int main() { getpid(); time(0); return 0; }"

let frankenstein ~cross =
  let a_img = install ~program_id:21 ~program:"appA" (compile app_a_src) in
  let b_img = install ~program_id:22 ~program:"appB" (compile app_b_src) in
  let b_extent =
    List.fold_left
      (fun acc (s : Obj_file.section) -> max acc (s.sec_addr + s.sec_size))
      0 b_img.Obj_file.sections
  in
  (* pick an A site above B's extent *)
  let a_sites = List.filter (fun (addr, _) -> addr > b_extent) (extract_auth_site a_img) in
  let a_site_addr, a_site_bytes =
    match a_sites with
    | s :: _ -> s
    | [] -> failwith "attacks: padding failed to lift appA's sites above appB"
  in
  let kernel = Kernel.create ~personality () in
  Kernel.set_monitor kernel (Some (Asc_core.Checker.monitor ~kernel ~key ()));
  kernel.Kernel.tracing <- true;
  let proc = Kernel.spawn kernel ~program:"frankenstein" b_img in
  let m = proc.Process.machine in
  (* splice A's authenticated site and A's high sections (rodata/.asc) *)
  ignore (Machine.write_mem m ~addr:a_site_addr a_site_bytes);
  let halt = Bytes.create 8 in
  Isa.encode Isa.Halt halt ~pos:0;
  ignore
    (Machine.write_mem m
       ~addr:(a_site_addr + String.length a_site_bytes)
       (Bytes.to_string halt));
  List.iter
    (fun (s : Obj_file.section) ->
      if s.sec_addr > b_extent && s.sec_kind <> Obj_file.Text then
        ignore (Machine.write_mem m ~addr:s.sec_addr s.sec_payload))
    a_img.Obj_file.sections;
  if cross then begin
    (* after B executes its getpid call, divert into A's spliced call *)
    let text = Obj_file.text_section b_img in
    let payload = Bytes.of_string text.Obj_file.sec_payload in
    let slots = Bytes.length payload / Isa.instr_size in
    let getpid_number = num Syscall.Getpid in
    let rec getpid_sys i saw_getpid =
      if i >= slots then failwith "attacks: appB getpid site not found"
      else
        match Isa.decode payload ~pos:(i * Isa.instr_size) with
        | Some (Isa.Movi (0, v)) when v = getpid_number -> getpid_sys (i + 1) true
        | Some Isa.Sys when saw_getpid -> i
        | Some (Isa.Movi _) -> getpid_sys (i + 1) saw_getpid
        | _ -> getpid_sys (i + 1) false
    in
    let sys_slot = getpid_sys 0 false in
    let jmp = Bytes.create 8 in
    Isa.encode (Isa.Jmp a_site_addr) jmp ~pos:0;
    ignore
      (Machine.write_mem m
         ~addr:(text.Obj_file.sec_addr + ((sys_slot + 1) * Isa.instr_size))
         (Bytes.to_string jmp))
  end;
  let stop = Kernel.run kernel proc ~max_cycles:100_000_000 in
  match stop with
  | Machine.Killed reason -> Blocked reason
  | Machine.Halted _ ->
    if cross then Crashed "cross-application call was not blocked"
    else Succeeded "single-application chain permitted"
  | Machine.Faulted (_, pc) -> Crashed (Printf.sprintf "fault at 0x%x" pc)
  | Machine.Cycle_limit -> Crashed "cycle limit"
