let header_size = 20
let max_len = 1 lsl 20

let mac_of key contents = Asc_crypto.Cmac.mac key contents

let build key contents =
  let b = Buffer.create (header_size + String.length contents) in
  let len = String.length contents in
  Buffer.add_char b (Char.chr (len land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_string b (mac_of key contents);
  Buffer.add_string b contents;
  Buffer.contents b

let total_size contents = header_size + String.length contents

let read_header byte_at ~ptr =
  let base = ptr - header_size in
  let get i = byte_at (base + i) in
  match (get 0, get 1, get 2, get 3) with
  | Some b0, Some b1, Some b2, Some b3 ->
    let len = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
    if len < 0 || len > max_len then None
    else begin
      let mac = Bytes.create 16 in
      let ok = ref true in
      for i = 0 to 15 do
        match get (4 + i) with
        | Some b -> Bytes.set mac i (Char.chr b)
        | None -> ok := false
      done;
      if !ok then Some (len, Bytes.to_string mac) else None
    end
  | _ -> None
