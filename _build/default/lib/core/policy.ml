type arg_policy =
  | A_any
  | A_const of int
  | A_data of int
  | A_string of string
  | A_one_of of int list
  | A_pattern of string

type arg_analysis =
  | An_out
  | An_const
  | An_multi of int
  | An_sys_result
  | An_unknown

type site = {
  s_block : int;
  s_number : int;
  s_sem : Oskernel.Syscall.sem option;
  s_args : arg_policy array;
  s_analysis : arg_analysis array;
  s_params : Oskernel.Syscall_sig.param array;
  s_preds : int list option;
}

type t = {
  program : string;
  os : string;
  sites : site list;
  warnings : string list;
}

let distinct_calls t = List.sort_uniq compare (List.map (fun s -> s.s_number) t.sites)

let distinct_sems t = List.sort_uniq compare (List.filter_map (fun s -> s.s_sem) t.sites)

type coverage = {
  c_sites : int;
  c_calls : int;
  c_args : int;
  c_out : int;
  c_auth : int;
  c_mv : int;
  c_fds : int;
}

let coverage t =
  let sites = List.length t.sites in
  let calls = List.length (distinct_calls t) in
  let fold f init = List.fold_left (fun acc s -> Array.fold_left f acc s.s_analysis) init t.sites in
  let args = List.fold_left (fun acc s -> acc + Array.length s.s_args) 0 t.sites in
  let out = fold (fun acc a -> if a = An_out then acc + 1 else acc) 0 in
  let auth =
    List.fold_left
      (fun acc s ->
        Array.fold_left
          (fun acc p ->
            match p with
            | A_const _ | A_data _ | A_string _ -> acc + 1
            | A_any | A_one_of _ | A_pattern _ -> acc)
          acc s.s_args)
      0 t.sites
  in
  let mv = fold (fun acc a -> match a with An_multi _ -> acc + 1 | _ -> acc) 0 in
  let fds =
    List.fold_left
      (fun acc s ->
        let n = ref acc in
        Array.iteri
          (fun i a ->
            if a = An_sys_result && i < Array.length s.s_params
               && s.s_params.(i) = Oskernel.Syscall_sig.P_fd
            then incr n)
          s.s_analysis;
        !n)
      0 t.sites
  in
  { c_sites = sites; c_calls = calls; c_args = args; c_out = out; c_auth = auth; c_mv = mv;
    c_fds = fds }

let pp_arg ppf (i, a) =
  match a with
  | A_any -> Format.fprintf ppf "Parameter %d equals ANY" i
  | A_const v -> Format.fprintf ppf "Parameter %d equals value %d" i v
  | A_data v -> Format.fprintf ppf "Parameter %d equals address 0x%x" i v
  | A_string s -> Format.fprintf ppf "Parameter %d equals %S" i s
  | A_one_of vs ->
    Format.fprintf ppf "Parameter %d in {%s}" i (String.concat "," (List.map string_of_int vs))
  | A_pattern p -> Format.fprintf ppf "Parameter %d matches %S" i p

let pp_site ppf s =
  let name =
    match s.s_sem with
    | Some sem -> Oskernel.Syscall.name sem
    | None -> Printf.sprintf "syscall#%d" s.s_number
  in
  Format.fprintf ppf "Permit %s in basic block %d@\n" name s.s_block;
  Array.iteri (fun i a -> Format.fprintf ppf "    %a@\n" pp_arg (i, a)) s.s_args;
  match s.s_preds with
  | None -> ()
  | Some preds ->
    Format.fprintf ppf "    Possible predecessors %s@\n"
      (String.concat ", " (List.map string_of_int preds))

let pp_coverage_header ppf () =
  Format.fprintf ppf "%-10s %6s %6s %6s %6s %6s %6s %6s" "prog" "sites" "calls" "args" "o/p"
    "auth" "mv" "fds"

let pp_coverage_row ppf (name, c) =
  Format.fprintf ppf "%-10s %6d %6d %6d %6d %6d %6d %6d" name c.c_sites c.c_calls c.c_args
    c.c_out c.c_auth c.c_mv c.c_fds
