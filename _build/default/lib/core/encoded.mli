(** The encoded policy / encoded call byte string (§3.3–§3.4).

    The installer concatenates the policy elements into a self-contained
    byte string (the {e encoded policy}) and MACs it; at run time the
    kernel rebuilds the same byte string from the call's actual behavior
    (the {e encoded call}) and compares MACs. The two are equal exactly when the
    call complies with its policy, so one shared encoder is used by both
    sides — any asymmetry would be a soundness bug.

    Layout (all integers little-endian):
    - u32 syscall number, u32 call site, u32 policy descriptor, u64 block id
    - per numeric-constrained argument (descriptor bits 0–5, ascending):
      u8 index, u64 value
    - per string argument (descriptor bits 8–13, ascending):
      u8 index, u32 string address, u32 length, 16-byte string MAC
    - if the extension bit is set: u32 address, u32 length, 16-byte MAC of
      the extension block
    - if the control-flow bit is set: u32 predecessor-set address,
      u32 length, 16-byte MAC, u32 policy-state (lastBlock) address *)

type as_ref = {
  as_addr : int;   (** address of the string contents (header precedes it) *)
  as_len : int;
  as_mac : string; (** 16 bytes *)
}

type t = {
  e_number : int;
  e_site : int;
  e_descriptor : Descriptor.t;
  e_block : int;
  e_const_args : (int * int) list;    (** must match descriptor bits 0–5 *)
  e_string_args : (int * as_ref) list;(** must match descriptor bits 8–13 *)
  e_ext : as_ref option;
  e_control : (as_ref * int) option;  (** predecessor set, lastBlock addr *)
}

val encode : t -> string
(** @raise Invalid_argument if the argument lists disagree with the
    descriptor bits or a MAC is not 16 bytes. *)

val predset_contents : int list -> string
(** Serialization of a predecessor set as AS contents: sorted unique u64
    little-endian block ids. *)

val predset_mem : string -> int -> bool
(** Membership test on serialized predecessor-set contents. *)

val state_bytes : counter:int -> last_block:int -> string
(** The 16 bytes MAC'd for the policy state: u64 counter, u64 lastBlock
    (the counter is the kernel-side nonce of the online memory checker). *)
