lib/core/descriptor.mli: Format
