lib/core/auth_string.ml: Asc_crypto Buffer Bytes Char String
