lib/core/descriptor.ml: Format List String
