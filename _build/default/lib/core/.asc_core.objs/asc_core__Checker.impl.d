lib/core/checker.ml: Array Asc_crypto Auth_string Char Cost_model Descriptor Encoded Format Kernel List Machine Option Oskernel Patterns Personality Printf Process String Svm Syscall_sig Vfs
