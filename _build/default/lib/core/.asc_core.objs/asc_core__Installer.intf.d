lib/core/installer.mli: Asc_crypto Metapolicy Oskernel Policy Svm
