lib/core/encoded.ml: Buffer Char Descriptor List String
