lib/core/auth_string.mli: Asc_crypto
