lib/core/metapolicy.ml: Array Format List Oskernel Policy
