lib/core/metapolicy.mli: Format Oskernel Policy
