lib/core/patterns.mli:
