lib/core/captrack.ml: Array Hashtbl Kernel List Oskernel Personality Printf Process Svm Syscall Syscall_sig
