lib/core/encoded.mli: Descriptor
