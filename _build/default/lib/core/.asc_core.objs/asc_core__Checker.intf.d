lib/core/checker.mli: Asc_crypto Oskernel
