lib/core/policy.ml: Array Format List Oskernel Printf String
