lib/core/captrack.mli: Oskernel
