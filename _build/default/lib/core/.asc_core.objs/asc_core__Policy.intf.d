lib/core/policy.mli: Format Oskernel
