lib/core/patterns.ml: List String
