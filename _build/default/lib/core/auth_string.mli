(** Authenticated strings (§3.2): "a new authenticated string (AS)
    abstraction that is represented as the tuple
    [{length, MAC, string}], where [length] is a 4 byte entry, [MAC] is a
    128 bit message authentication code computed over the contents of the
    string, and [string] is the contents of the string."

    The argument pointer passed to the kernel points at [string]; the
    20-byte [{length, MAC}] header sits immediately before it. *)

val header_size : int
(** 20 bytes: 4-byte little-endian length + 16-byte MAC. *)

val build : Asc_crypto.Cmac.key -> string -> string
(** Serialized AS: header followed by contents. *)

val total_size : string -> int
(** [header_size + length contents]. *)

val mac_of : Asc_crypto.Cmac.key -> string -> string
(** The 16-byte content MAC (as stored in the header). *)

val read_header : (int -> int option) -> ptr:int -> (int * string) option
(** [read_header byte_at ~ptr] reads the [{length, MAC}] header preceding a
    string pointer from application memory via [byte_at]; [None] if any
    byte is unreadable or the length is implausible (negative or > 1 MiB). *)
