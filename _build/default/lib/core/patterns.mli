(** Argument patterns with proof-carrying verification (§5.1).

    Patterns are globs over pathnames: literal characters, [?] (any one
    character), [*] (any sequence), and [{a,b,c}] alternation — the paper's
    example is ["/tmp/{foo,bar}*baz"].

    Two verification modes are provided:
    - {!matches} — ordinary backtracking matcher (what a kernel that "performs
      regular expression matching" would run);
    - {!verify_with_hint} — the paper's program-checking scheme: "the
      untrusted application performs the regular expression matching for the
      kernel, and presents the kernel with a proof that the argument matches
      the pattern". The hint is one integer per [*] / [{…}] in the pattern
      (number of characters consumed, or alternative index), and the kernel
      only does a single linear scan. {!derive_hint} computes the hint the
      way the application-side library would. *)

type t

val compile : string -> (t, string) result
(** Parse a glob. [Error] explains the syntax problem (e.g. unclosed brace). *)

val compile_exn : string -> t
val source : t -> string

val matches : t -> string -> bool
(** Backtracking match of the full string. *)

val derive_hint : t -> string -> int list option
(** A hint such that {!verify_with_hint} succeeds, when the string matches. *)

val verify_with_hint : t -> string -> hint:int list -> bool
(** Single-pass verification: O(|pattern| + |string|), no backtracking. A
    wrong hint fails even if the string does match. *)

val hint_cost : t -> string -> int
(** Modeled cycle cost of the hint verification (linear scan), for the
    pattern-checking ablation bench. *)

val match_cost : t -> string -> int
(** Modeled cycle cost of the backtracking matcher (counts visited
    configurations), for comparison. *)
