open Oskernel

let monitor_for personality =
  (* pid -> live descriptor set *)
  let live : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let set_of pid =
    match Hashtbl.find_opt live pid with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.replace live pid s;
      s
  in
  let issued (p : Process.t) fd = fd >= 0 && fd <= 2 || Hashtbl.mem (set_of p.Process.pid) fd in
  let sem_of (p : Process.t) number =
    match Personality.sem_of personality number with
    | Some Syscall.Indirect ->
      Personality.indirect_target personality p.Process.machine.Svm.Machine.regs.(1)
    | other -> other
  in
  { Kernel.monitor_name = "captrack";
    pre_syscall =
      (fun p ~site:_ ~number ->
        match sem_of p number with
        | None -> Kernel.Allow
        | Some sem ->
          let params = Syscall_sig.params sem in
          let bad =
            List.exists
              (fun (i, prm) ->
                prm = Syscall_sig.P_fd && not (issued p p.Process.machine.Svm.Machine.regs.(i + 1)))
              (List.mapi (fun i prm -> (i, prm)) params)
          in
          if bad then
            Kernel.Deny
              (Printf.sprintf "capability violation: %s used a descriptor never issued"
                 (Syscall.name sem))
          else Kernel.Allow);
    post_syscall =
      (fun p ~site:_ ~sem ~result ->
        match sem with
        | Some (Syscall.Open | Syscall.Socket | Syscall.Dup | Syscall.Dup2) when result >= 0 ->
          Hashtbl.replace (set_of p.Process.pid) result ()
        | Some Syscall.Close ->
          Hashtbl.remove (set_of p.Process.pid) p.Process.machine.Svm.Machine.regs.(1)
        | Some Syscall.Execve when result = 0 ->
          (* new program image: previously issued descriptors are revoked *)
          Hashtbl.reset (set_of p.Process.pid)
        | Some _ | None -> ()) }

let monitor () = monitor_for Personality.linux
