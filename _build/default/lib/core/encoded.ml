type as_ref = {
  as_addr : int;
  as_len : int;
  as_mac : string;
}

type t = {
  e_number : int;
  e_site : int;
  e_descriptor : Descriptor.t;
  e_block : int;
  e_const_args : (int * int) list;
  e_string_args : (int * as_ref) list;
  e_ext : as_ref option;
  e_control : (as_ref * int) option;
}

let u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let u64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_as_ref buf r =
  if String.length r.as_mac <> 16 then invalid_arg "Encoded: string MAC must be 16 bytes";
  u32 buf r.as_addr;
  u32 buf r.as_len;
  Buffer.add_string buf r.as_mac

let encode e =
  let buf = Buffer.create 96 in
  u32 buf e.e_number;
  u32 buf e.e_site;
  u32 buf e.e_descriptor;
  u64 buf e.e_block;
  let const_idx = List.map fst e.e_const_args in
  if List.sort compare const_idx <> Descriptor.const_args e.e_descriptor then
    invalid_arg "Encoded: constant args disagree with descriptor";
  List.iter
    (fun (i, v) ->
      Buffer.add_char buf (Char.chr i);
      u64 buf v)
    (List.sort compare e.e_const_args);
  let str_idx = List.map fst e.e_string_args in
  if List.sort compare str_idx <> Descriptor.string_args e.e_descriptor then
    invalid_arg "Encoded: string args disagree with descriptor";
  List.iter
    (fun (i, r) ->
      Buffer.add_char buf (Char.chr i);
      add_as_ref buf r)
    (List.sort (fun (a, _) (b, _) -> compare a b) e.e_string_args);
  (match (Descriptor.has_ext e.e_descriptor, e.e_ext) with
   | true, Some r -> add_as_ref buf r
   | false, None -> ()
   | true, None | false, Some _ -> invalid_arg "Encoded: ext disagrees with descriptor");
  (match (Descriptor.has_control_flow e.e_descriptor, e.e_control) with
   | true, Some (r, lbptr) ->
     add_as_ref buf r;
     u32 buf lbptr
   | false, None -> ()
   | true, None | false, Some _ -> invalid_arg "Encoded: control flow disagrees with descriptor");
  Buffer.contents buf

let predset_contents preds =
  let preds = List.sort_uniq compare preds in
  let buf = Buffer.create (8 * List.length preds) in
  List.iter (u64 buf) preds;
  Buffer.contents buf

let predset_mem contents bid =
  let n = String.length contents / 8 in
  let rec go i =
    if i >= n then false
    else begin
      let v = ref 0 in
      for k = 7 downto 0 do
        v := (!v lsl 8) lor Char.code contents.[(8 * i) + k]
      done;
      !v = bid || go (i + 1)
    end
  in
  go 0

let state_bytes ~counter ~last_block =
  let buf = Buffer.create 16 in
  u64 buf counter;
  u64 buf last_block;
  Buffer.contents buf
