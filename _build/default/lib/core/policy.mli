(** System-call policies (§2.1, §3.1).

    A site policy constrains one system-call site: the call number, the
    call site, constant argument values (numeric or string), optionally a
    small set of allowed values or a pattern (§5 extensions), and the set
    of system-call blocks that may immediately precede it. A program's
    overall policy is the collection of its site policies. *)

type arg_policy =
  | A_any
  | A_const of int             (** exact numeric value *)
  | A_data of int              (** exact pointer value, given as the
                                   *original* data address (remapped at
                                   emission when sections move) *)
  | A_string of string         (** exact string contents (authenticated
                                   string; the pointer is re-pointed into
                                   the AS copy) *)
  | A_one_of of int list       (** §5 extension: small allowed-value set *)
  | A_pattern of string        (** §5 extension: glob pattern on a string *)

(** How the static analysis classified the argument — kept separately from
    the enforced policy for the Table 3 coverage statistics. *)
type arg_analysis =
  | An_out               (** output-only parameter; never constrained *)
  | An_const             (** single known value (authenticatable) *)
  | An_multi of int      (** small set of known values (mv column) *)
  | An_sys_result        (** value returned by an earlier syscall *)
  | An_unknown

type site = {
  s_block : int;                 (** globally unique basic-block id *)
  s_number : int;                (** trap number *)
  s_sem : Oskernel.Syscall.sem option;
  s_args : arg_policy array;     (** length = arity *)
  s_analysis : arg_analysis array;
  s_params : Oskernel.Syscall_sig.param array;
  s_preds : int list option;     (** control-flow policy; [None] = absent *)
}

type t = {
  program : string;
  os : string;
  sites : site list;
  warnings : string list;
}

val distinct_calls : t -> int list
(** Sorted distinct trap numbers (Table 1's "number of system calls"). *)

val distinct_sems : t -> Oskernel.Syscall.sem list
(** Distinct operations named in the policy. Note that an OpenBSD-style
    [mmap] reached through [__syscall] appears as [__syscall] (with its
    first argument constrained to the mmap number), exactly as in Table 2:
    "With Systrace, this indirection is hidden from users since its policy
    does not explicitly allow [__syscall]." *)

type coverage = {
  c_sites : int;
  c_calls : int;
  c_args : int;
  c_out : int;
  c_auth : int;
  c_mv : int;
  c_fds : int;
}
(** The columns of Table 3. *)

val coverage : t -> coverage

val pp_site : Format.formatter -> site -> unit
(** Human-readable rendering in the style of the paper's policy examples
    ("Permit open from block 1234 / Parameter 0 equals ..."). *)

val pp_coverage_header : Format.formatter -> unit -> unit
val pp_coverage_row : Format.formatter -> string * coverage -> unit
