type elem =
  | Lit of char
  | Any_one
  | Star
  | Alt of string list

type t = { src : string; elems : elem list }

let source t = t.src

let compile src =
  let n = String.length src in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match src.[i] with
      | '*' -> go (i + 1) (Star :: acc)
      | '?' -> go (i + 1) (Any_one :: acc)
      | '{' ->
        (match String.index_from_opt src i '}' with
         | None -> Error "unclosed '{' in pattern"
         | Some close ->
           let inner = String.sub src (i + 1) (close - i - 1) in
           let alts = String.split_on_char ',' inner in
           if List.exists (fun a -> String.contains a '*' || String.contains a '{') alts then
             Error "nested pattern constructs in alternation are not supported"
           else go (close + 1) (Alt alts :: acc))
      | '}' -> Error "unmatched '}' in pattern"
      | c -> go (i + 1) (Lit c :: acc)
  in
  match go 0 [] with
  | Ok elems -> Ok { src; elems }
  | Error e -> Error e

let compile_exn src =
  match compile src with Ok t -> t | Error e -> invalid_arg ("Patterns.compile: " ^ e)

(* Backtracking matcher; [steps] counts visited configurations for the cost
   model. *)
let matches_counted t s =
  let steps = ref 0 in
  let n = String.length s in
  let rec go elems i =
    incr steps;
    match elems with
    | [] -> i = n
    | Lit c :: rest -> i < n && s.[i] = c && go rest (i + 1)
    | Any_one :: rest -> i < n && go rest (i + 1)
    | Star :: rest ->
      let rec try_len k = if i + k > n then false else go rest (i + k) || try_len (k + 1) in
      try_len 0
    | Alt alts :: rest ->
      List.exists
        (fun a ->
          let la = String.length a in
          i + la <= n && String.sub s i la = a && go rest (i + la))
        alts
  in
  let r = go t.elems 0 in
  (r, !steps)

let matches t s = fst (matches_counted t s)

let derive_hint t s =
  let n = String.length s in
  (* search like [matches] but record choices *)
  let rec go elems i acc =
    match elems with
    | [] -> if i = n then Some (List.rev acc) else None
    | Lit c :: rest -> if i < n && s.[i] = c then go rest (i + 1) acc else None
    | Any_one :: rest -> if i < n then go rest (i + 1) acc else None
    | Star :: rest ->
      let rec try_len k =
        if i + k > n then None
        else
          match go rest (i + k) (k :: acc) with
          | Some h -> Some h
          | None -> try_len (k + 1)
      in
      try_len 0
    | Alt alts :: rest ->
      let rec try_alt j = function
        | [] -> None
        | a :: more ->
          let la = String.length a in
          if i + la <= n && String.sub s i la = a then
            match go rest (i + la) (j :: acc) with
            | Some h -> Some h
            | None -> try_alt (j + 1) more
          else try_alt (j + 1) more
      in
      try_alt 0 alts
  in
  go t.elems 0 []

let verify_with_hint t s ~hint =
  let n = String.length s in
  let rec go elems i hint =
    match elems with
    | [] -> i = n && hint = []
    | Lit c :: rest -> i < n && s.[i] = c && go rest (i + 1) hint
    | Any_one :: rest -> i < n && go rest (i + 1) hint
    | Star :: rest ->
      (match hint with
       | k :: hint' -> k >= 0 && i + k <= n && go rest (i + k) hint'
       | [] -> false)
    | Alt alts :: rest ->
      (match hint with
       | j :: hint' when j >= 0 ->
         (match List.nth_opt alts j with
          | Some a ->
            let la = String.length a in
            i + la <= n && String.sub s i la = a && go rest (i + la) hint'
          | None -> false)
       | _ :: _ | [] -> false)
  in
  go t.elems 0 hint

(* Cost models: a few cycles per character examined; the backtracking cost
   additionally counts every configuration the search visits. *)
let hint_cost t s = 4 * (List.length t.elems + String.length s)

let match_cost t s =
  let _, steps = matches_counted t s in
  4 * steps
