(** The 32-bit policy descriptor (§3.2): "a 32-bit integer that encodes
    information about which properties of the system call are constrained
    by its policy ... bits to indicate whether the value of each argument
    is determined by the policy ... whether the control flow policy for the
    call is specified."

    Bit layout:
    - bit 31 — authenticated-call marker (always set by the installer)
    - bit 30 — control-flow policy present
    - bit 29 — call site constrained (always set in the basic scheme)
    - bit 28 — extension block present (§5 argument sets / patterns)
    - bits 0–5  — argument [i]'s numeric value is constrained
    - bits 8–13 — argument [i] is an authenticated-string pointer *)

type t = int

val empty : t
(** Marker and call-site bits set, nothing else. *)

val with_control_flow : t -> t
val with_const_arg : t -> int -> t
val with_string_arg : t -> int -> t
val with_ext : t -> t

val is_authenticated : t -> bool
val has_control_flow : t -> bool
val has_ext : t -> bool
val const_args : t -> int list
(** Indices with the numeric-constraint bit, ascending. *)

val string_args : t -> int list

val pp : Format.formatter -> t -> unit
