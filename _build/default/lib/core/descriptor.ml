type t = int

let marker_bit = 1 lsl 31
let cf_bit = 1 lsl 30
let site_bit = 1 lsl 29
let ext_bit = 1 lsl 28

let empty = marker_bit lor site_bit
let with_control_flow d = d lor cf_bit

let check_idx i = if i < 0 || i > 5 then invalid_arg "Descriptor: argument index out of range"

let with_const_arg d i =
  check_idx i;
  d lor (1 lsl i)

let with_string_arg d i =
  check_idx i;
  d lor (1 lsl (8 + i))

let with_ext d = d lor ext_bit

let is_authenticated d = d land marker_bit <> 0
let has_control_flow d = d land cf_bit <> 0
let has_ext d = d land ext_bit <> 0

let bits_set d shift = List.filter (fun i -> d land (1 lsl (shift + i)) <> 0) [ 0; 1; 2; 3; 4; 5 ]
let const_args d = bits_set d 0
let string_args d = bits_set d 8

let pp ppf d =
  Format.fprintf ppf "0x%08x{%s%sconst=%s strings=%s}" (d land 0xffff_ffff)
    (if is_authenticated d then "auth " else "")
    (if has_control_flow d then "cf " else "")
    (String.concat "," (List.map string_of_int (const_args d)))
    (String.concat "," (List.map string_of_int (string_args d)))
