type requirement = {
  rq_sem : Oskernel.Syscall.sem;
  rq_args : int list;
}

type t = requirement list

let strict_exec =
  [ { rq_sem = Oskernel.Syscall.Execve; rq_args = [ 0 ] };
    { rq_sem = Oskernel.Syscall.Open; rq_args = [ 0 ] };
    { rq_sem = Oskernel.Syscall.Connect; rq_args = [ 1 ] } ]

type hole = {
  h_block : int;
  h_sem : Oskernel.Syscall.sem;
  h_arg : int;
}

(* Whether the generated constraint pins the argument's *meaning*. An
   address-only constraint (A_data) is enough for numeric arguments but not
   for a pathname, whose bytes at that address may be computed at run
   time. *)
let constrained (s : Policy.site) i =
  let is_path =
    i < Array.length s.s_params && s.s_params.(i) = Oskernel.Syscall_sig.P_path
  in
  match s.s_args.(i) with
  | Policy.A_const _ | Policy.A_one_of _ -> true
  | Policy.A_string _ | Policy.A_pattern _ -> true
  | Policy.A_data _ -> not is_path
  | Policy.A_any -> false

let check meta (p : Policy.t) =
  List.concat_map
    (fun (s : Policy.site) ->
      match s.s_sem with
      | None -> []
      | Some sem ->
        (match List.find_opt (fun r -> r.rq_sem = sem) meta with
         | None -> []
         | Some r ->
           List.filter_map
             (fun i ->
               if i < Array.length s.s_args && not (constrained s i) then
                 Some { h_block = s.s_block; h_sem = sem; h_arg = i }
               else None)
             r.rq_args))
    p.sites

let satisfied meta p = check meta p = []

type filling = hole * Policy.arg_policy

let fill (p : Policy.t) fillings =
  { p with
    Policy.sites =
      List.map
        (fun (s : Policy.site) ->
          let args = Array.copy s.s_args in
          List.iter
            (fun ((h : hole), v) ->
              if h.h_block = s.s_block && h.h_arg < Array.length args then
                args.(h.h_arg) <- v)
            fillings;
          { s with s_args = args })
        p.Policy.sites }

let to_overrides fillings =
  List.map (fun ((h : hole), v) -> (h.h_block, h.h_arg, v)) fillings

let pp_hole ppf h =
  Format.fprintf ppf "block %d: %s argument %d must be constrained" h.h_block
    (Oskernel.Syscall.name h.h_sem) h.h_arg
