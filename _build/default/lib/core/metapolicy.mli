(** Metapolicies and policy templates (§5.2).

    "An ASC metapolicy is a specification that dictates how strict a policy
    is required for each system call ... If the policy generator cannot
    determine all the argument values required by the metapolicy based on
    static analysis, it generates a policy template with spaces for the
    additional required arguments. An administrator can then hand-specify a
    value or a pattern for an argument."

    Workflow: {!check} a generated policy against the metapolicy; each
    unmet requirement is a {!hole}; the administrator {!fill}s holes with
    concrete values or patterns; {!Installer.install} accepts the filled
    values as [overrides]. *)

type requirement = {
  rq_sem : Oskernel.Syscall.sem;
  rq_args : int list;  (** argument indices that must be constrained *)
}

type t = requirement list

val strict_exec : t
(** A typical metapolicy: [execve]'s path, [open]'s path and [connect]'s
    address must be constrained. *)

type hole = {
  h_block : int;                       (** site's basic block *)
  h_sem : Oskernel.Syscall.sem;
  h_arg : int;                         (** unconstrained required argument *)
}

val check : t -> Policy.t -> hole list
(** Requirements the statically generated policy leaves unmet. *)

val satisfied : t -> Policy.t -> bool

type filling = hole * Policy.arg_policy
(** Administrator-supplied constraint for a hole (a value, a string, or a
    pattern — from application knowledge or dynamic profiling). *)

val fill : Policy.t -> filling list -> Policy.t
(** The completed policy (for inspection/printing). *)

val to_overrides : filling list -> (int * int * Policy.arg_policy) list
(** The installer-facing form: (block, arg index, constraint). *)

val pp_hole : Format.formatter -> hole -> unit
