(** Capability tracking (§5.3): "the ability to specify that an argument to
    a system call be based on arguments or return values of previous system
    calls. An example would be a policy for a read system call that
    requires that the file descriptor argument be a value returned by a
    previous open system call."

    This implements the refined scheme the section sketches: a set of
    currently active descriptors, added to by [open]/[socket]/[dup] and
    removed from by [close], so repeated opens, multiple live descriptors
    and descriptor reuse after close all behave correctly. The set lives in
    kernel memory keyed by pid; the paper's alternative — an authenticated
    dictionary kept in application memory — is a possible optimization
    noted in DESIGN.md.

    Compose with the ASC checker via {!Oskernel.Kernel.compose_monitors}. *)

val monitor : unit -> Oskernel.Kernel.monitor
(** Denies any call whose file-descriptor argument (per
    {!Oskernel.Syscall_sig}) names a descriptor that was never issued to
    the process (std streams 0–2 are always granted). Needs the kernel's
    personality implicitly through the trap numbers, so it resolves
    semantics via the process's kernel — pass the same personality the
    kernel uses. *)

val monitor_for : Oskernel.Personality.t -> Oskernel.Kernel.monitor
(** Explicit-personality variant. *)
