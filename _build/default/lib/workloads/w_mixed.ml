(* Mixed CPU/syscall programs (Table 5: gcc, vortex) and the syscall-bound
   ones (pyramid, gzip). *)

(* A toy compiler: reads a source file of integer expression statements,
   constant-folds them, writes an "object" file (gcc). *)
let gcc_like ~scale =
  Printf.sprintf
    {|
char line[256];
char outbuf[4096];
int opos;
int pos;
int len;
char src[8192];

int peekc() { if (pos < len) { return src[pos]; } return 0; }
int nextc() { int c = peekc(); pos = pos + 1; return c; }

int parse_num() {
  int v = 0;
  while (peekc() >= '0' && peekc() <= '9') { v = v * 10 + (nextc() - '0'); }
  return v;
}

int parse_factor() {
  if (peekc() == '(') { nextc(); int v = parse_expr_(); nextc(); return v; }
  return parse_num();
}

int parse_term() {
  int v = parse_factor();
  while (peekc() == '*' || peekc() == '/') {
    int op = nextc();
    int r = parse_factor();
    if (op == '*') { v = v * r; } else { if (r != 0) { v = v / r; } }
  }
  return v;
}

int parse_expr_() {
  int v = parse_term();
  while (peekc() == '+' || peekc() == '-') {
    int op = nextc();
    int r = parse_term();
    if (op == '+') { v = v + r; } else { v = v - r; }
  }
  return v;
}

int main() {
  int fd = open("/src/input.mc", 0, 0);
  if (fd < 0) { kill(getpid(), 6); return 1; }
  len = read(fd, src, 8192);
  close(fd);
  int out = open("/tmp/a.out", 65, 420);
  int round;
  int sum = 0;
  for (round = 0; round < %d; round = round + 1) {
    pos = 0;
    while (pos < len) {
      int v = parse_expr_();
      if (peekc() == '\n' || peekc() == ';') { nextc(); }
      sum = sum + v;
      if (round == 0) {
        int o = v;
        if (o < 0) { o = 0 - o; }
        while (o > 0 && opos < 4000) { outbuf[opos] = 'A' + o %% 26; o = o / 26; opos = opos + 1; }
        outbuf[opos] = '\n';
        opos = opos + 1;
        if (opos > 3500) { write(out, outbuf, opos); opos = 0; }
      }
    }
  }
  if (opos > 0) { write(out, outbuf, opos); }
  close(out);
  print_int(sum);
  puts_str("\n");
  return 0;
}
|}
    scale

(* An object-oriented-database analogue (vortex): an in-memory hash table of
   records with periodic checkpoints to disk. *)
let vortex ~scale =
  Printf.sprintf
    {|
int keys[1024];
int vals[1024];
int used[1024];
char rec[32];

int hput(int k, int v) {
  int h = (k * 2654435761) %% 1024;
  if (h < 0) { h = 0 - h; }
  int probe = 0;
  while (used[h] && keys[h] != k && probe < 1024) { h = (h + 1) %% 1024; probe = probe + 1; }
  used[h] = 1;
  keys[h] = k;
  vals[h] = v;
  return h;
}

int hget(int k) {
  int h = (k * 2654435761) %% 1024;
  if (h < 0) { h = 0 - h; }
  int probe = 0;
  while (used[h] && probe < 1024) {
    if (keys[h] == k) { return vals[h]; }
    h = (h + 1) %% 1024;
    probe = probe + 1;
  }
  return -1;
}

char ckbuf[2048];

int checkpoint(int gen) {
  int fd = open("/tmp/vortex.ckpt", 65, 420);
  int i;
  int n = 0;
  int o = 0;
  for (i = 0; i < 1024; i = i + 1) {
    if (used[i]) {
      ckbuf[o] = 'R';
      ckbuf[o + 1] = keys[i] %% 256;
      ckbuf[o + 2] = vals[i] %% 256;
      ckbuf[o + 3] = gen %% 256;
      o = o + 4;
      if (o > 2000) { write(fd, ckbuf, o); o = 0; }
      n = n + 1;
    }
  }
  if (o > 0) { write(fd, ckbuf, o); }
  close(fd);
  return n;
}

int main() {
  int round;
  int hits = 0;
  srand(11);
  for (round = 0; round < %d; round = round + 1) {
    int i;
    for (i = 0; i < 4000; i = i + 1) { hput(rand() %% 700, rand()); }
    for (i = 0; i < 4000; i = i + 1) { if (hget(rand() %% 700) >= 0) { hits = hits + 1; } }
    checkpoint(round);
  }
  print_int(hits);
  puts_str("\n");
  return 0;
}
|}
    scale

(* Multidimensional database index creation (pyramid): builds a directory
   pyramid with one small record file per cell — syscall-dominated. *)
let pyramid ~scale =
  Printf.sprintf
    {|
char path[64];
char rec[16];

int build_name(int level, int cell) {
  strcpy(path, "/tmp/idx/L");
  int n = strlen(path);
  path[n] = '0' + level;
  path[n + 1] = 0;
  mkdir(path, 493);
  n = n + 1;
  path[n] = '/';
  path[n + 1] = 'c';
  n = n + 2;
  int c = cell;
  if (c == 0) { path[n] = '0'; n = n + 1; }
  while (c > 0) { path[n] = '0' + c %% 10; c = c / 10; n = n + 1; }
  path[n] = 0;
  return n;
}

int main() {
  mkdir("/tmp/idx", 493);
  int level;
  int total = 0;
  for (level = 0; level < %d; level = level + 1) {
    int cells = 1 << level;
    if (cells > 64) { cells = 64; }
    int cell;
    for (cell = 0; cell < cells; cell = cell + 1) {
      build_name(level, cell);
      /* digest of the cell's data points: the index computation itself */
      int acc = level * 77 + cell;
      int k;
      for (k = 0; k < 5000; k = k + 1) { acc = acc * 31 + (k ^ acc >> 7); }
      int fd = open(path, 65, 420);
      if (fd >= 0) {
        rec[0] = 'I';
        rec[1] = level;
        rec[2] = cell %% 256;
        rec[3] = acc %% 256;
        write(fd, rec, 4);
        close(fd);
        total = total + 1;
      }
    }
  }
  /* verify a few entries by stat */
  int i;
  char st[16];
  for (i = 0; i < 5; i = i + 1) {
    build_name(i %% %d, 0);
    stat(path, st);
  }
  print_int(total);
  puts_str("\n");
  return 0;
}
|}
    scale (max 1 scale)

(* File compression tool (gzip the application, not the SPEC variant):
   RLE-compresses an input file in chunks — syscall-heavy per unit of CPU. *)
let gzip_tool ~input ~output =
  Printf.sprintf
    {|
char inbuf[512];
char outbuf[1040];

int main() {
  int fd = open(%S, 0, 0);
  if (fd < 0) { return 1; }
  int out = open(%S, 65, 420);
  int n = read(fd, inbuf, 512);
  int total = 0;
  while (n > 0) {
    int i = 0;
    int o = 0;
    while (i < n) {
      /* the LZ window search that dominates real gzip's CPU profile *
         (output stays plain RLE for a trivially correct decoder) */
      int w = i - 96;
      if (w < 0) { w = 0; }
      int j;
      int bestlen = 0;
      for (j = w; j < i; j = j + 1) {
        int l = 0;
        while (i + l < n && inbuf[j + l] == inbuf[i + l] && l < 63) { l = l + 1; }
        if (l > bestlen) { bestlen = l; }
      }
      int run = 1;
      while (i + run < n && inbuf[i + run] == inbuf[i] && run < 200) { run = run + 1; }
      outbuf[o] = run;
      outbuf[o + 1] = inbuf[i];
      o = o + 2;
      i = i + run;
    }
    write(out, outbuf, o);
    total = total + o;
    n = read(fd, inbuf, 512);
  }
  close(fd);
  close(out);
  print_int(total);
  puts_str("\n");
  return 0;
}
|}
    input output
